// Compiler-pipeline walkthrough: builds a loop's dependence graph by hand
// (the way a front end like ICTINEO would), runs every stage of the
// MIRS_HC pipeline explicitly, and dumps the intermediate artifacts:
// the DDG, the MII analysis, the HRMS priority order, the final kernel
// with its communication/spill operations, and the generated VLIW code.
//
//   $ ./examples/compiler_pipeline [rf-config]     (default 4C16S64/2-1)
#include <cstdio>
#include <string>

#include "core/mirs.h"
#include "ddg/mii.h"
#include "hwmodel/characterize.h"
#include "sched/codegen.h"
#include "sched/lifetime.h"
#include "sched/ordering.h"
#include "workload/kernels.h"

using namespace hcrf;

int main(int argc, char** argv) {
  const std::string rf = argc > 1 ? argv[1] : "4C16S64/2-1";

  // Stage 0: the "front end" -- Livermore kernel 1 (hydro fragment):
  //   x[i] = q + y[i] * (r*z[i+10] + t*z[i+11])
  const workload::Loop loop = workload::MakeHydro();
  const DDG& g = loop.ddg;
  std::printf("== front end: %s, %d ops, %d invariants\n", g.name().c_str(),
              g.NumNodes(), g.num_invariants());
  for (NodeId v = 0; v < g.NumSlots(); ++v) {
    if (!g.IsAlive(v)) continue;
    std::printf("  %%%d = %s", v, std::string(ToString(g.node(v).op)).c_str());
    for (const Edge& e : g.InEdges(v)) {
      std::printf("  <-%%%d(d%d)", e.src, e.distance);
    }
    std::printf("\n");
  }

  // Stage 1: machine characterization.
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse(rf));
  const hw::Characterization hwc =
      hw::Characterize(m, hw::RFModelMode::kPaperTable);
  m = hw::ApplyCharacterization(m, hw::RFModelMode::kPaperTable);
  std::printf("\n== target: %s  clock %.3f ns  lat add/mul %d, div %d, "
              "load %d, LoadR/StoreR %d\n",
              rf.c_str(), m.clock_ns, m.lat.fadd, m.lat.fdiv, m.lat.load_hit,
              m.lat.loadr);

  // Stage 2: MII analysis.
  const MIIInfo mii = ComputeMII(g, m);
  std::printf("\n== MII: res %d, rec %d -> %d\n", mii.res_mii, mii.rec_mii,
              mii.MII());

  // Stage 3: HRMS ordering.
  std::printf("\n== HRMS priority order:");
  for (NodeId v : sched::HrmsOrder(g, m.lat)) std::printf(" %%%d", v);
  std::printf("\n");

  // Stage 4: MIRS_HC.
  const core::ScheduleResult sr = core::MirsHC(g, m);
  if (!sr.ok) {
    std::printf("scheduling failed\n");
    return 1;
  }
  std::printf("\n== schedule: II %d (MII %d), SC %d, bound %s, "
              "comm ops %d (LoadR %d / StoreR %d / Move %d)\n",
              sr.ii, sr.mii, sr.sc, std::string(ToString(sr.bound)).c_str(),
              sr.stats.comm_ops, sr.stats.loadr_ops, sr.stats.storer_ops,
              sr.stats.move_ops);

  // Stage 5: register pressure per bank.
  const sched::PressureReport pr =
      sched::ComputePressure(sr.graph, sr.schedule, m, sr.overrides);
  std::printf("\n== MaxLive: shared %d/%d", pr.shared_maxlive,
              m.rf.shared_regs);
  for (size_t c = 0; c < pr.cluster_maxlive.size(); ++c) {
    std::printf("  cl%zu %d/%d", c, pr.cluster_maxlive[c], m.rf.cluster_regs);
  }
  std::printf("\n");

  // Stage 6: code generation.
  std::printf("\n== kernel\n%s",
              sched::RenderKernel(sr.graph, sr.schedule, m).c_str());
  const sched::CodegenStats cg = sched::ComputeCodegenStats(sr.graph, sr.schedule);
  std::printf("\ncode size: %d ops (kernel %d + prologue/epilogue %d)\n",
              cg.code_size_ops, cg.kernel_ops,
              cg.code_size_ops - cg.kernel_ops);
  return 0;
}
