// Design-space exploration: the paper's core argument is that the RF
// organization spans a trade-off surface between IPC, cycle time and area.
// This example sweeps a user-selectable set of organizations over a small
// workload, prints the trade-off table, and marks the Pareto-optimal
// configurations (execution time vs area) -- the "larger design
// exploration space" the abstract advertises.
//
//   $ ./examples/design_space [loops]      (default 120 synthetic loops)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "hwmodel/characterize.h"
#include "perf/runner.h"
#include "workload/perfect_synth.h"

using namespace hcrf;

namespace {

struct Point {
  std::string name;
  double area = 0;
  double clock = 0;
  double cycles = 0;
  double time = 0;
  bool pareto = false;
};

}  // namespace

int main(int argc, char** argv) {
  const int nloops = argc > 1 ? std::atoi(argv[1]) : 120;
  workload::SynthParams params;
  params.num_loops = nloops;
  const workload::Suite suite = workload::PerfectSynthetic(params);

  const char* configs[] = {
      "S128",        "S64",         "S32",         "1C64S32/3-2",
      "1C32S64/4-2", "2C64/1-1",    "2C32/1-1",    "2C64S32/2-1",
      "2C32S32/3-1", "4C64/1-1",    "4C32/1-1",    "4C32S16/1-1",
      "4C16S16/2-1", "8C32S16/1-1", "8C16S16/1-1", "4C16S64/2-1",
      "8C16S32/1-1"};

  std::vector<Point> points;
  for (const char* name : configs) {
    MachineConfig m = MachineConfig::WithRF(RFConfig::Parse(name));
    const hw::Characterization c =
        hw::Characterize(m, hw::RFModelMode::kPaperTable);
    m = hw::ApplyCharacterization(m, hw::RFModelMode::kPaperTable);
    const perf::SuiteMetrics sm = perf::RunSuite(suite, m);
    Point p;
    p.name = name;
    p.area = c.total_area_mlambda2;
    p.clock = c.clock_ns;
    p.cycles = static_cast<double>(sm.ExecCycles());
    p.time = p.cycles * c.clock_ns;
    points.push_back(p);
  }

  // Pareto front on (time, area), both minimized.
  for (Point& p : points) {
    p.pareto = true;
    for (const Point& q : points) {
      if (q.time <= p.time && q.area <= p.area &&
          (q.time < p.time || q.area < p.area)) {
        p.pareto = false;
        break;
      }
    }
  }

  std::printf("Design space over %d loops (ideal memory):\n\n", nloops);
  std::printf("%-14s %10s %9s %14s %12s %s\n", "config", "area Ml^2",
              "clock ns", "cycles", "time (ms)", "pareto");
  for (const Point& p : points) {
    std::printf("%-14s %10.2f %9.3f %14.0f %12.4f %s\n", p.name.c_str(),
                p.area, p.clock, p.cycles, p.time * 1e-6,
                p.pareto ? "  *" : "");
  }
  std::printf("\n'*' marks execution-time/area Pareto-optimal organizations."
              "\nHierarchical-clustered configurations should dominate the "
              "front, as in the paper.\n");
  return 0;
}
