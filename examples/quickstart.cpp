// Quickstart: schedule one classic loop (daxpy) on four register-file
// organizations -- monolithic, clustered, hierarchical, and the paper's
// hierarchical-clustered proposal -- and print the resulting kernels and
// the hardware trade-off behind them.
//
//   $ ./examples/quickstart
#include <iostream>

#include "core/mirs.h"
#include "hwmodel/characterize.h"
#include "sched/codegen.h"
#include "workload/kernels.h"

using namespace hcrf;

namespace {

void ScheduleAndShow(const workload::Loop& loop, const std::string& rf_name) {
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse(rf_name));
  // Derive the clock and latency table from the RF organization.
  const hw::Characterization hw = hw::Characterize(m);
  m = hw::ApplyCharacterization(m);

  const core::ScheduleResult sr = core::MirsHC(loop.ddg, m);
  std::cout << "=== " << loop.ddg.name() << " on " << rf_name
            << " (" << ToString(m.rf.Kind()) << ")\n";
  if (!sr.ok) {
    std::cout << "  scheduling failed\n";
    return;
  }
  std::cout << "  clock " << hw.clock_ns << " ns  (logic depth "
            << hw.logic_depth_fo4 << " FO4, RF access "
            << hw.critical_access_ns << " ns, area "
            << hw.total_area_mlambda2 << " Mlambda^2)\n";
  std::cout << "  MII " << sr.mii << " (res " << sr.res_mii << ", rec "
            << sr.rec_mii << ") -> II " << sr.ii << ", SC " << sr.sc
            << ", bound: " << ToString(sr.bound) << "\n";
  std::cout << "  comm ops " << sr.stats.comm_ops << " (LoadR "
            << sr.stats.loadr_ops << ", StoreR " << sr.stats.storer_ops
            << ", Move " << sr.stats.move_ops << "), spill to memory "
            << sr.stats.spill_loads + sr.stats.spill_stores << "\n";
  const long n = loop.TotalIterations();
  const long cycles =
      static_cast<long>(sr.ii) * (n + (sr.sc - 1) * loop.invocations);
  std::cout << "  " << n << " iterations -> " << cycles << " cycles, "
            << cycles * m.clock_ns * 1e-3 << " us\n";
  std::cout << sched::RenderKernel(sr.graph, sr.schedule, m) << "\n";
}

}  // namespace

int main() {
  const workload::Loop daxpy = workload::MakeDaxpy(1000);
  ScheduleAndShow(daxpy, "S128");
  ScheduleAndShow(daxpy, "4C32");
  ScheduleAndShow(daxpy, "1C64S64");
  ScheduleAndShow(daxpy, "4C16S64");

  std::cout << "Hierarchical-clustered RFs trade a few extra cycles for a\n"
               "much shorter clock; see bench/ for the full paper tables.\n";
  return 0;
}
