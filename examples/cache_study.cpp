// Cache/prefetch study: runs one memory-intensive kernel under a real
// memory system on a monolithic and a hierarchical-clustered machine, with
// the three binding-prefetch policies, and reports useful vs stall cycles.
// Demonstrates the paper's Section 6.2 claim: binding prefetching converts
// stall cycles into register pressure, and the hierarchical organization
// absorbs that pressure in the shared bank.
//
//   $ ./examples/cache_study
#include <cstdio>

#include "core/mirs.h"
#include "hwmodel/characterize.h"
#include "memsim/prefetch.h"
#include "memsim/replay.h"
#include "sched/lifetime.h"
#include "workload/kernels.h"

using namespace hcrf;

namespace {

void Study(const workload::Loop& loop, const char* rf) {
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse(rf));
  m = hw::ApplyCharacterization(m, hw::RFModelMode::kPaperTable);
  std::printf("-- %s on %s (clock %.3f ns, miss %d cycles)\n",
              loop.ddg.name().c_str(), rf, m.clock_ns, m.lat.load_miss);
  std::printf("   %-10s %8s %8s %10s %10s %8s\n", "policy", "II", "SC",
              "useful", "stall", "shared");
  for (const memsim::PrefetchMode mode :
       {memsim::PrefetchMode::kNone, memsim::PrefetchMode::kAll,
        memsim::PrefetchMode::kSelective}) {
    const sched::LatencyOverrides ov =
        memsim::ClassifyBindingPrefetch(loop.ddg, m, loop.trip, mode);
    const core::ScheduleResult sr = core::MirsHC(loop.ddg, m, {}, ov);
    if (!sr.ok) {
      std::printf("   %-10s scheduling failed\n",
                  std::string(ToString(mode)).c_str());
      continue;
    }
    const memsim::ReplayResult rr = memsim::ReplayLoop(loop, sr, m);
    const sched::PressureReport pr =
        sched::ComputePressure(sr.graph, sr.schedule, m, sr.overrides);
    std::printf("   %-10s %8d %8d %10ld %10ld %8d\n",
                std::string(ToString(mode)).c_str(), sr.ii, sr.sc,
                rr.useful_cycles, rr.stall_cycles, pr.shared_maxlive);
  }
}

}  // namespace

int main() {
  std::printf("Binding prefetch study (useful vs stall cycles; 'shared' = "
              "MaxLive of the shared bank)\n\n");
  workload::Loop big_stream = workload::MakeHydro(8192);
  big_stream.invocations = 4;
  Study(big_stream, "S64");
  std::printf("\n");
  Study(big_stream, "4C16S64/2-1");
  std::printf("\n");
  workload::Loop strided = workload::MakeVadd(4096);
  strided.invocations = 2;
  Study(strided, "4C16S64/2-1");
  std::printf(
      "\nExpected shape: prefetching eliminates stalls at the cost of\n"
      "shared-bank pressure; 'selective' keeps the stall win without\n"
      "penalizing recurrence-bound loops.\n");
  return 0;
}
