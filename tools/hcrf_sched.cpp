// hcrf_sched: the scheduling service's command-line driver.
//
//   hcrf_sched schedule <loop.hcl> [options]   schedule one graph file
//   hcrf_sched run <manifest> [options]        run a batch manifest
//   hcrf_sched sweep <spec.hcl> [options]      run a design-space sweep
//   hcrf_sched dump <file>                     parse + canonical re-dump
//   hcrf_sched validate <file.hcl>             strict load + graph check
//   hcrf_sched export [options]                write a suite as .hcl corpus
//   hcrf_sched stats [dir]                     metrics registry (+ cache census)
//   hcrf_sched smoke <manifest>                cold+warm cache self-check
//   hcrf_sched bench [options]                 engine A/B perf baseline
//   hcrf_sched repro [options]                 paper-reproduction experiments
//   hcrf_sched serve --socket=PATH [options]   resident scheduling daemon
//   hcrf_sched submit [manifest] [options]     client for a running daemon
//
// The scheduling commands (schedule / run / bench / repro) additionally
// accept `--trace=FILE` (write a Chrome trace_event JSON of the run; open
// in Perfetto or chrome://tracing) and `--stats[=json]` (dump the metrics
// registry after the run). Tracing is a pure observer: schedules and
// serialized stats are bit-identical with or without it.
//
// Run `hcrf_sched help` for per-command options. Exit status: 0 on
// success, 1 on bad usage / failed requests / failed self-check.
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "experiment/experiment.h"
#include "experiment/run.h"
#include "hwmodel/characterize.h"
#include "io/hcl.h"
#include "machine/machine_config.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perf/bench.h"
#include "perf/runner.h"
#include "service/batch.h"
#include "service/client.h"
#include "service/sched_cache.h"
#include "service/server.h"
#include "service/session.h"
#include "service/sweep.h"
#include "workload/suite_cache.h"

namespace {

namespace fs = std::filesystem;
using namespace hcrf;

int Usage() {
  std::fprintf(stderr, R"(usage: hcrf_sched <command> [args]

commands:
  schedule <loop.hcl>    schedule one dependence-graph file
      --rf=NAME            RF organization (paper notation; default S128)
      --machine=FILE       full `hcl 1 machine` document instead of --rf
      --no-characterize    skip the hardware model (keep baseline clock)
      --budget=X --max-ii=N --policy=NAME --non-iterative
      --speculate=K        race K candidate IIs per wave (bit-identical
                           schedules; K < 2 = serial)
      --eager              race the first wave too (with --speculate)
      --cache=DIR          persistent schedule cache
      --cache-mem=N        in-memory hot tier bounded to N entries
                           (stacks in front of --cache with write-behind)
      --cache-mem-bytes=B  hot-tier byte bound (default 64 MiB)
      --out=FILE           write the result document (default stdout)
      --trace=FILE         write a Chrome trace_event JSON of the run
      --stats[=json]       dump the metrics registry after the run
  run <manifest>         run every request of a batch manifest
      --cache=DIR --cache-mem=N --cache-mem-bytes=B
      --threads=N --out-dir=DIR --quiet
      --speculate=K --eager  speculative II racing inside each request
      --trace=FILE --stats[=json]
  sweep <spec.hcl>       run a design-space sweep over RF organizations
      --cache=DIR          persistent schedule cache
      --cache-mem=N --cache-mem-bytes=B  in-memory hot tier
      --threads=N
      --out-dir=DIR        write <name>.csv and <name>.md (default .)
      --quiet              don't print the markdown report
      --smoke              run cold then warm against a fresh cache; the
                           warm run must be fully cache-served with
                           bit-identical reports
  dump <file>            parse any .hcl document, re-dump canonically
  validate <file.hcl>    strict parse + structural check, print a summary
  export                 write a workload suite as a .hcl corpus
      --suite=kernels|synth  (default kernels)
      --n=N                  cap the number of exported loops
      --rf=NAME              RF the generated manifest schedules on
                             (default 4C16S64/2-1, the paper's proposal)
      --out=DIR              corpus directory (default corpus)
  stats [dir]            dump the process metrics registry (counters,
                         gauges, latency histograms); with a directory,
                         folds a disk census of that schedule cache in as
                         sched_cache.disk_entries / sched_cache.disk_bytes
      --json               JSON instead of the aligned table
                         (`cache-stats <dir>` is the pre-PR7 alias)
  smoke <manifest>       run twice (cold, warm cache); verify the warm run
                         hits the cache and its output is bit-identical
  bench                  time the scheduling hot path: reference engine vs
                         incremental vs speculative II racing, asserting
                         all modes produce bit-identical schedules (exit 1
                         if not); reports per-loop latency tails
                         (p50/p95/p99/max) and speculation telemetry
      --out=FILE           write the BENCH_*.json report (default
                           BENCH_PR10.json; '-' = stdout only)
      --baseline=FILE      compare against a checked-in BENCH_*.json:
                           exit 1 when any comparable leg's p95 regresses
                           by more than 15%% (legs that are incomparable —
                           e.g. a degraded speculation pool on either
                           host — are skipped, never failed)
      --rf=A,B,...         organizations to bench (paper notation)
      --reps=N             kernel-suite repetitions per timed mode
      --synth-n=N          synthetic loops per case (default: whole suite)
      --speculate=K        candidate IIs per speculative wave (default 4;
                           K < 2 skips the speculative leg)
      --eager              race the first wave too
      --smoke              small slice + one organization: the identity
                           assertions (incl. one speculative case) at CI
                           cost
      --baseline-seconds=X --current-seconds=Y --baseline-note=STR
                           record a comparison against a separately timed
                           older binary (e.g. the pre-PR engine) in the
                           report's pre_pr block
      --trace=FILE --stats[=json]
  repro                  run the registered paper-reproduction experiments
                         (figures 1/4/6, tables 1-6, the ablations) through
                         the cache-backed batch service and render the
                         delta-vs-paper report with pass/fail verdicts
      --list               list the registered experiments and exit
      --only=A,B           run a subset (names from --list)
      --out=DIR            write repro.csv and repro.md (default .)
      --cache=DIR          persistent schedule cache
      --cache-mem=N --cache-mem-bytes=B  in-memory hot tier
      --threads=N --quiet
      --smoke              bounded slice of each experiment, cold run then
                           warm run against a fresh cache; the warm run
                           must be fully cache-served with bit-identical
                           reports
      --trace=FILE --stats[=json]
  serve                  resident scheduling daemon on a Unix socket: one
                         long-lived cache stack + session shared by every
                         submission (line-framed protocol, see `submit`).
                         SIGTERM/SIGINT drain gracefully: in-flight
                         requests finish and cache writes settle first.
      --socket=PATH        listening Unix-socket path (required)
      --cache=DIR          persistent schedule cache (disk tier)
      --cache-mem=N        in-memory hot tier bounded to N entries
      --cache-mem-bytes=B  hot-tier byte bound (default 64 MiB)
      --threads=N --speculate=K --eager
      --max-inflight=N     connections in service at once before the
                           server answers `busy` (default 4)
      --timeout-ms=N       per-connection socket timeout (default 30000)
  submit                 client for a running daemon: resolves a batch
                         manifest locally and submits it over the socket
      <manifest>           manifest to resolve and submit
      --socket=PATH        daemon socket path (required)
      --delta=N:LAT[,...]  what-if submission: perturb producer latencies
                           (node N of each loop -> LAT cycles) and submit
                           as a `delta` request; the daemon warm-starts
                           from its near-key cache seeds and repairs the
                           perturbation instead of rescheduling cold.
                           Node ids are per-loop; an entry beyond a
                           loop's node count is ignored for that loop
      --ping               health check instead of a manifest
      --stats              daemon metrics registry (JSON) instead
      --cache-stats        daemon cache counters + disk census instead
      --out-dir=DIR --quiet --timeout-ms=N
                         exit status 2 when the daemon answers `busy`
)");
  return 1;
}

/// `--key=value` / `--flag` parsing over argv[from..).
struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;

  static Args Parse(int argc, char** argv, int from) {
    Args a;
    for (int i = from; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const size_t eq = arg.find('=');
        if (eq == std::string::npos) {
          a.flags.emplace_back(arg.substr(2), "");
        } else {
          a.flags.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
        }
      } else {
        a.positional.push_back(arg);
      }
    }
    return a;
  }

  const std::string* Flag(const std::string& name) const {
    for (const auto& [k, v] : flags) {
      if (k == name) return &v;
    }
    return nullptr;
  }
};

/// Validated numeric flag parsing: the whole value must parse (bare
/// std::stoi/std::stod silently truncate trailing garbage like
/// `--max-ii=4abc` and throw context-free exceptions on `--threads=x`);
/// failures name the offending flag.
long ParseLongFlag(const char* flag, const std::string& value) {
  const std::optional<long> v = io::TryParseLong(value);
  if (!v) {
    throw std::runtime_error(std::string("--") + flag +
                             ": expected an integer, got '" + value + "'");
  }
  return *v;
}

int ParseIntFlag(const char* flag, const std::string& value) {
  const long v = ParseLongFlag(flag, value);
  if (v < INT32_MIN || v > INT32_MAX) {
    throw std::runtime_error(std::string("--") + flag + ": value '" + value +
                             "' is out of range");
  }
  return static_cast<int>(v);
}

double ParseDoubleFlag(const char* flag, const std::string& value) {
  const std::optional<double> v = io::TryParseDouble(value);
  if (!v) {
    throw std::runtime_error(std::string("--") + flag +
                             ": expected a number, got '" + value + "'");
  }
  return *v;
}

/// Rejects flags outside `known` (typo safety for a service entry point).
bool CheckFlags(const Args& a, std::initializer_list<const char*> known) {
  for (const auto& [k, v] : a.flags) {
    bool ok = false;
    for (const char* name : known) {
      if (k == name) ok = true;
    }
    if (!ok) {
      std::fprintf(stderr, "hcrf_sched: unknown option --%s\n", k.c_str());
      return false;
    }
  }
  return true;
}

/// `--cache-mem=N` / `--cache-mem-bytes=B`: the memory-tier bounds every
/// scheduling command shares. N = 0 keeps the hot tier off; the byte
/// bound refines an enabled tier, so it requires `--cache-mem`.
void CacheMemFromFlags(const Args& args, long* entries, long* bytes) {
  if (const std::string* v = args.Flag("cache-mem")) {
    *entries = ParseLongFlag("cache-mem", *v);
    if (*entries < 0) {
      throw std::runtime_error(
          "--cache-mem: expected a non-negative entry count, got '" + *v +
          "'");
    }
  }
  if (const std::string* v = args.Flag("cache-mem-bytes")) {
    *bytes = ParseLongFlag("cache-mem-bytes", *v);
    if (*bytes < 0) {
      throw std::runtime_error(
          "--cache-mem-bytes: expected a non-negative byte count, got '" +
          *v + "'");
    }
    if (*entries <= 0) {
      throw std::runtime_error(
          "--cache-mem-bytes requires --cache-mem=N to enable the tier");
    }
  }
}

/// `--stats[=json]`: dump the whole metrics registry after the command.
void MaybeDumpStats(const Args& args) {
  const std::string* v = args.Flag("stats");
  if (v == nullptr) return;
  if (!v->empty() && *v != "json") {
    throw std::runtime_error("--stats: expected --stats or --stats=json");
  }
  const std::string out = *v == "json" ? obs::Registry::Shared().Json()
                                       : obs::Registry::Shared().Table();
  std::fwrite(out.data(), 1, out.size(), stdout);
}

/// `--trace=FILE`: brackets the command body with the flight recorder and
/// writes the Chrome trace_event JSON when it returns. The export happens
/// after the body — i.e. after every ParallelFor / TaskGroup wait — so the
/// tracer's quiescence contract holds (pool workers are parked, no spans
/// in flight). Also applies `--stats` after the body, traced or not.
template <typename Body>
int RunTraced(const Args& args, Body&& body) {
  const std::string* trace = args.Flag("trace");
  if (trace != nullptr && trace->empty()) {
    throw std::runtime_error("--trace: expected --trace=FILE");
  }
  if (trace != nullptr) {
    obs::Tracer::SetThreadName("main");
    obs::Tracer::Shared().Start();
  }
  int rc;
  try {
    rc = body();
  } catch (...) {
    if (trace != nullptr) obs::Tracer::Shared().Stop();
    throw;
  }
  if (trace != nullptr) {
    obs::Tracer::Shared().Stop();
    io::WriteFileAtomic(*trace, obs::Tracer::Shared().ExportJson());
    std::printf("trace: %s\n", trace->c_str());
  }
  MaybeDumpStats(args);
  return rc;
}

MachineConfig MachineFromFlags(const Args& args) {
  if (const std::string* path = args.Flag("machine")) {
    return io::LoadMachineFile(*path);
  }
  const std::string* rf = args.Flag("rf");
  MachineConfig m =
      MachineConfig::WithRF(RFConfig::Parse(rf != nullptr ? *rf : "S128"));
  if (args.Flag("no-characterize") == nullptr &&
      !m.rf.UnboundedClusterRegs() && !m.rf.UnboundedSharedRegs()) {
    m = hw::ApplyCharacterization(m, hw::RFModelMode::kPaperTable);
  }
  return m;
}

core::MirsOptions OptionsFromFlags(const Args& args) {
  core::MirsOptions opt;
  if (const std::string* v = args.Flag("budget")) {
    opt.budget_ratio = ParseDoubleFlag("budget", *v);
  }
  if (const std::string* v = args.Flag("max-ii")) {
    opt.max_ii = ParseIntFlag("max-ii", *v);
  }
  if (args.Flag("non-iterative") != nullptr) opt.iterative = false;
  if (const std::string* v = args.Flag("policy")) {
    const std::optional<core::ClusterPolicy> p = io::ClusterPolicyFromName(*v);
    if (!p) throw std::runtime_error("unknown --policy=" + *v);
    opt.cluster_policy = *p;
  }
  if (const std::string* v = args.Flag("speculate")) {
    opt.speculate_k = ParseIntFlag("speculate", *v);
    if (opt.speculate_k < 0) {
      throw std::runtime_error("--speculate: expected a non-negative count, "
                               "got '" + *v + "'");
    }
  }
  if (args.Flag("eager") != nullptr) opt.speculate_eager = true;
  return opt;
}

void PrintItem(const service::BatchItem& item) {
  if (!item.ok) {
    std::printf("%-28s FAILED  %s\n", item.id.c_str(), item.error.c_str());
    return;
  }
  std::printf("%-28s II %3d (MII %3d)  SC %2d  bound %-7s %s  %.3f ms\n",
              item.id.c_str(), item.result.ii, item.result.mii,
              item.result.sc,
              std::string(core::ToString(item.result.bound)).c_str(),
              item.cache_hit ? "cache-hit " : "scheduled ",
              item.seconds * 1e3);
}

int CmdSchedule(const Args& args) {
  if (args.positional.size() != 1 ||
      !CheckFlags(args, {"rf", "machine", "no-characterize", "budget",
                         "max-ii", "policy", "non-iterative", "speculate",
                         "eager", "cache", "cache-mem", "cache-mem-bytes",
                         "out", "trace", "stats"})) {
    return Usage();
  }
  const auto loop =
      std::make_shared<const workload::Loop>(io::LoadLoopFile(args.positional[0]));
  const MachineConfig m = MachineFromFlags(args);
  const core::MirsOptions opt = OptionsFromFlags(args);

  service::BatchRequest req;
  req.id = loop->ddg.name().empty() ? args.positional[0] : loop->ddg.name();
  req.loop = loop;
  req.machine = m;
  req.options = opt;

  service::BatchOptions bopt;
  if (const std::string* c = args.Flag("cache")) bopt.cache_dir = *c;
  CacheMemFromFlags(args, &bopt.cache_mem_entries, &bopt.cache_mem_bytes);
  const service::BatchReport report = service::RunBatch({req}, bopt);
  const service::BatchItem& item = report.items[0];
  PrintItem(item);
  if (!item.ok) return 1;

  const std::string text = io::DumpResult(item.result);
  if (const std::string* out = args.Flag("out")) {
    io::WriteFileAtomic(*out, text);
  } else {
    std::fwrite(text.data(), 1, text.size(), stdout);
  }
  return 0;
}

int RunManifestOnce(const std::string& manifest,
                    const service::BatchOptions& bopt, bool quiet,
                    const std::string* out_dir,
                    service::BatchReport* out_report) {
  const service::BatchReport report = service::RunManifest(manifest, bopt);
  for (const service::BatchItem& item : report.items) {
    if (!quiet) PrintItem(item);
    if (out_dir != nullptr && item.ok) {
      std::string stem = item.id;
      for (char& c : stem) {
        if (c == '/' || c == '\\') c = '_';
      }
      io::WriteFileAtomic((fs::path(*out_dir) / (stem + ".hclr")).string(),
                          io::DumpResult(item.result));
    }
  }
  std::printf(
      "batch: %zu requests, %d scheduled, %d cache hits, %d failed, "
      "%.3f s wall\n",
      report.items.size(), report.scheduled, report.hits, report.failed,
      report.seconds);
  if (!bopt.cache_dir.empty()) {
    std::printf("cache: %ld hits, %ld misses, %ld rejects, %ld writes (%s)\n",
                report.cache.hits, report.cache.misses, report.cache.rejects,
                report.cache.writes, bopt.cache_dir.c_str());
  }
  if (bopt.cache_mem_entries > 0) {
    std::printf(
        "mem-cache: %ld hits, %ld near hits, %ld near misses, %ld writes, "
        "%ld evictions, %ld oversize; %ld entries, %ld bytes resident\n",
        report.mem_cache.hits, report.mem_cache.near_hits,
        report.mem_cache.near_misses, report.mem_cache.writes,
        report.mem_cache.evictions, report.mem_cache.oversize,
        report.mem_cache.entries, report.mem_cache.bytes);
  }
  if (out_report != nullptr) *out_report = report;
  return report.failed == 0 ? 0 : 1;
}

int CmdRun(const Args& args) {
  if (args.positional.size() != 1 ||
      !CheckFlags(args, {"cache", "cache-mem", "cache-mem-bytes", "threads",
                         "out-dir", "quiet", "speculate", "eager", "trace",
                         "stats"})) {
    return Usage();
  }
  service::BatchOptions bopt;
  if (const std::string* c = args.Flag("cache")) bopt.cache_dir = *c;
  CacheMemFromFlags(args, &bopt.cache_mem_entries, &bopt.cache_mem_bytes);
  if (const std::string* t = args.Flag("threads")) {
    bopt.threads = ParseIntFlag("threads", *t);
  }
  if (const std::string* v = args.Flag("speculate")) {
    bopt.speculate_k = ParseIntFlag("speculate", *v);
    if (bopt.speculate_k < 0) {
      throw std::runtime_error("--speculate: expected a non-negative count, "
                               "got '" + *v + "'");
    }
  }
  if (args.Flag("eager") != nullptr) bopt.speculate_eager = true;
  return RunManifestOnce(args.positional[0], bopt,
                         args.Flag("quiet") != nullptr, args.Flag("out-dir"),
                         nullptr);
}

void PrintSweepSummary(const service::SweepReport& report,
                       const std::string& cache_dir) {
  std::printf(
      "sweep %s: %zu organizations x %zu loops, %d scheduled, %d cache "
      "hits, %d failed, %.3f s wall\n",
      report.name.c_str(), report.orgs.size(), report.loops.size(),
      report.scheduled, report.hits, report.failed, report.seconds);
  for (const std::string& s : report.skipped) {
    std::printf("  skipped %s\n", s.c_str());
  }
  if (!cache_dir.empty()) {
    std::printf("cache: %ld hits, %ld misses, %ld rejects, %ld writes (%s)\n",
                report.cache.hits, report.cache.misses, report.cache.rejects,
                report.cache.writes, cache_dir.c_str());
  }
  const perf::MiiCacheStats mii = perf::GetMiiCacheStats();
  std::printf("mii-cache: %ld hits, %ld misses, %ld entries, %ld evictions\n",
              mii.hits, mii.misses, mii.entries, mii.evictions);
}

int CmdSweep(const Args& args) {
  if (args.positional.size() != 1 ||
      !CheckFlags(args, {"cache", "cache-mem", "cache-mem-bytes", "threads",
                         "out-dir", "quiet", "smoke"})) {
    return Usage();
  }
  const std::string& spec_path = args.positional[0];
  const service::SweepSpec spec = service::LoadSweepSpecFile(spec_path);
  const std::string base_dir = fs::path(spec_path).parent_path().string();

  service::SweepOptions sopt;
  if (const std::string* c = args.Flag("cache")) sopt.cache_dir = *c;
  CacheMemFromFlags(args, &sopt.cache_mem_entries, &sopt.cache_mem_bytes);
  if (const std::string* t = args.Flag("threads")) {
    sopt.threads = ParseIntFlag("threads", *t);
  }

  const bool smoke = args.Flag("smoke") != nullptr;
  std::error_code ec;
  if (smoke) {
    // Same cold-cache contract as `hcrf_sched smoke`: never delete a
    // user-supplied directory, refuse one with existing contents.
    if (sopt.cache_dir.empty()) {
      sopt.cache_dir =
          (fs::temp_directory_path() /
           ("hcrf-sweep-smoke-" + std::to_string(::getpid())))
              .string();
      fs::remove_all(sopt.cache_dir, ec);
    } else if (fs::exists(sopt.cache_dir, ec) &&
               !fs::is_empty(sopt.cache_dir, ec)) {
      std::fprintf(stderr,
                   "sweep --smoke: --cache=%s exists and is not empty; the "
                   "cold run needs a fresh cache\n",
                   sopt.cache_dir.c_str());
      return 1;
    }
  }

  // Unschedulable (org, loop) cells are sweep *data* — the paper's grid
  // includes organizations where loops legitimately fail — so they do not
  // fail the command; only smoke-check violations below do.
  service::SweepReport report;
  bool ok = true;
  if (smoke) {
    // Cold and warm legs share ONE resident session: the warm run probes
    // the same cache stack the cold run populated, so with --cache-mem it
    // is served from the memory tier. (The pre-session smoke built a
    // fresh cache per run and could only ever warm-hit disk.)
    service::ServiceConfig config;
    config.cache_dir = sopt.cache_dir;
    config.cache_mem_entries = sopt.cache_mem_entries;
    config.cache_mem_bytes = sopt.cache_mem_bytes;
    config.threads = sopt.threads;
    config.rf_model = sopt.rf_model;
    service::SchedulerService session(config);
    report = service::RunSweep(spec, base_dir, session);
    session.Drain();  // cold writes land before the warm leg probes disk
    PrintSweepSummary(report, sopt.cache_dir);
    const service::SweepReport warm =
        service::RunSweep(spec, base_dir, session);
    PrintSweepSummary(warm, sopt.cache_dir);
    if (warm.scheduled != 0 ||
        warm.hits != static_cast<int>(warm.cells.size())) {
      std::fprintf(stderr,
                   "sweep --smoke: warm run expected all cache hits, got %d "
                   "hits / %d scheduled\n",
                   warm.hits, warm.scheduled);
      ok = false;
    }
    if (service::SweepCsv(warm) != service::SweepCsv(report) ||
        service::SweepMarkdown(warm) != service::SweepMarkdown(report)) {
      std::fprintf(stderr,
                   "sweep --smoke: warm reports differ from cold reports\n");
      ok = false;
    }
    if (sopt.cache_mem_entries > 0 && session.memory_stats().hits <= 0) {
      std::fprintf(stderr,
                   "sweep --smoke: --cache-mem warm run never hit the "
                   "memory tier\n");
      ok = false;
    }
    if (args.Flag("cache") == nullptr) fs::remove_all(sopt.cache_dir, ec);
    std::printf("sweep smoke: %s\n", ok ? "PASS" : "FAIL");
  } else {
    report = service::RunSweep(spec, base_dir, sopt);
    PrintSweepSummary(report, sopt.cache_dir);
  }
  const std::string csv = service::SweepCsv(report);
  const std::string md = service::SweepMarkdown(report);

  const std::string* out_dir = args.Flag("out-dir");
  const std::string dir = out_dir != nullptr ? *out_dir : ".";
  fs::create_directories(dir, ec);
  const std::string csv_path =
      (fs::path(dir) / (report.name + ".csv")).string();
  const std::string md_path = (fs::path(dir) / (report.name + ".md")).string();
  io::WriteFileAtomic(csv_path, csv);
  io::WriteFileAtomic(md_path, md);
  std::printf("reports: %s %s\n", csv_path.c_str(), md_path.c_str());
  if (args.Flag("quiet") == nullptr) {
    std::fwrite(md.data(), 1, md.size(), stdout);
  }
  return ok ? 0 : 1;
}

int CmdDump(const Args& args) {
  if (args.positional.size() != 1 || !CheckFlags(args, {})) return Usage();
  const std::string& path = args.positional[0];
  const std::string text = io::ReadFile(path);
  // Dispatch on the document kind named in the header's third token.
  std::string kind;
  const size_t nl = text.find('\n');
  const std::string header = text.substr(0, nl);
  const size_t last_space = header.rfind(' ');
  if (last_space != std::string::npos) kind = header.substr(last_space + 1);
  std::string out;
  if (kind == "loop") {
    out = io::DumpLoop(io::ParseLoop(text, path));
  } else if (kind == "machine") {
    out = io::DumpMachine(io::ParseMachine(text, path));
  } else if (kind == "options") {
    out = io::DumpOptions(io::ParseOptions(text, path));
  } else if (kind == "result") {
    out = io::DumpResult(io::ParseResult(text, path));
  } else {
    std::fprintf(stderr, "%s: unrecognized document kind '%s'\n",
                 path.c_str(), kind.c_str());
    return 1;
  }
  std::fwrite(out.data(), 1, out.size(), stdout);
  return 0;
}

int CmdValidate(const Args& args) {
  if (args.positional.size() != 1 || !CheckFlags(args, {})) return Usage();
  const std::string& path = args.positional[0];
  const workload::Loop loop = io::LoadLoopFile(path);
  const DDG& g = loop.ddg;
  const DDG::OpCounts counts = g.CountOps(LatencyTable{});
  std::printf(
      "%s: ok\n  name %s\n  nodes %d (compute %d, memory %d, comm %d)\n"
      "  edges %d\n  invariants %d\n  trip %ld x %ld invocations\n",
      path.c_str(), g.name().empty() ? "<anonymous>" : g.name().c_str(),
      g.NumNodes(), counts.compute, counts.memory, counts.comm, g.NumEdges(),
      g.num_invariants(), loop.trip, loop.invocations);
  return 0;
}

int CmdExport(const Args& args) {
  if (!args.positional.empty() ||
      !CheckFlags(args, {"suite", "n", "rf", "out"})) {
    return Usage();
  }
  const std::string* suite_flag = args.Flag("suite");
  const std::string suite_name =
      suite_flag != nullptr ? *suite_flag : "kernels";
  const std::string* out_flag = args.Flag("out");
  const std::string out_dir = out_flag != nullptr ? *out_flag : "corpus";
  const std::string* rf_flag = args.Flag("rf");
  const std::string rf = rf_flag != nullptr ? *rf_flag : "4C16S64/2-1";

  const workload::Suite* suite = workload::SharedSuiteByName(suite_name);
  if (suite == nullptr) {
    std::fprintf(stderr, "hcrf_sched: unknown --suite=%s\n",
                 suite_name.c_str());
    return 1;
  }
  size_t n = suite->size();
  if (const std::string* nv = args.Flag("n")) {
    const long parsed = ParseLongFlag("n", *nv);
    if (parsed < 0) {
      throw std::runtime_error("--n: expected a non-negative count, got '" +
                               *nv + "'");
    }
    n = std::min(n, static_cast<size_t>(parsed));
  }

  std::string manifest = "hcl 1 manifest\n";
  for (size_t i = 0; i < n; ++i) {
    const workload::Loop& loop = (*suite)[i];
    const std::string stem = loop.ddg.name().empty()
                                 ? suite_name + "-" + std::to_string(i)
                                 : loop.ddg.name();
    const std::string rel = suite_name + "/" + stem + ".hcl";
    io::WriteFileAtomic((fs::path(out_dir) / rel).string(),
                        io::DumpLoop(loop));
    manifest += "request graph " + rel + " rf " + rf + "\n";
  }
  manifest += "end\n";
  const std::string manifest_path =
      (fs::path(out_dir) / (suite_name + ".manifest")).string();
  io::WriteFileAtomic(manifest_path, manifest);
  std::printf("exported %zu loops to %s/%s/ and %s\n", n, out_dir.c_str(),
              suite_name.c_str(), manifest_path.c_str());
  return 0;
}

// Metrics-registry dump (`stats`, with `cache-stats` as the pre-PR7
// alias). A fresh process has mostly-zero instruments — the interesting
// use is `--stats` on the scheduling commands, which dumps the registry
// the run just populated — but a cache directory argument always works:
// its disk census is folded into the registry as gauges so the table and
// the JSON render it like every other instrument.
int CmdStats(const Args& args) {
  if (args.positional.size() > 1 || !CheckFlags(args, {"json"})) {
    return Usage();
  }
  if (!args.positional.empty()) {
    const service::ScheduleCache::DirStats ds =
        service::ScheduleCache::Scan(args.positional[0]);
    obs::GetGauge("sched_cache.disk_entries").Set(ds.entries);
    obs::GetGauge("sched_cache.disk_bytes").Set(ds.bytes);
    if (args.Flag("json") == nullptr) {
      std::printf("%s: %ld entries, %ld bytes\n", args.positional[0].c_str(),
                  ds.entries, ds.bytes);
    }
  }
  const std::string out = args.Flag("json") != nullptr
                              ? obs::Registry::Shared().Json()
                              : obs::Registry::Shared().Table();
  std::fwrite(out.data(), 1, out.size(), stdout);
  return 0;
}

// Cold run, then warm run against the same fresh cache; the warm run must
// be served entirely from the cache and produce bit-identical results.
// This is the CI smoke and the acceptance check of the subsystem.
int CmdSmoke(const Args& args) {
  if (args.positional.size() != 1 || !CheckFlags(args, {"cache"})) {
    return Usage();
  }
  service::BatchOptions bopt;
  std::error_code ec;
  if (const std::string* c = args.Flag("cache")) {
    // Never delete a user-supplied directory; the cold run just needs it
    // empty, so refuse anything with existing contents.
    bopt.cache_dir = *c;
    if (fs::exists(bopt.cache_dir, ec) && !fs::is_empty(bopt.cache_dir, ec)) {
      std::fprintf(stderr,
                   "smoke: --cache=%s exists and is not empty; smoke needs a "
                   "cold cache and will not delete user data\n",
                   bopt.cache_dir.c_str());
      return 1;
    }
  } else {
    bopt.cache_dir =
        (fs::temp_directory_path() /
         ("hcrf-smoke-cache-" + std::to_string(::getpid())))
            .string();
    fs::remove_all(bopt.cache_dir, ec);
  }

  std::printf("== cold run ==\n");
  service::BatchReport cold;
  if (RunManifestOnce(args.positional[0], bopt, /*quiet=*/true, nullptr,
                      &cold) != 0) {
    std::fprintf(stderr, "smoke: cold run had failures\n");
    return 1;
  }
  std::printf("== warm run ==\n");
  service::BatchReport warm;
  if (RunManifestOnce(args.positional[0], bopt, /*quiet=*/true, nullptr,
                      &warm) != 0) {
    std::fprintf(stderr, "smoke: warm run had failures\n");
    return 1;
  }

  bool ok = true;
  if (warm.hits <= 0 || warm.scheduled != 0) {
    std::fprintf(stderr,
                 "smoke: warm run expected all cache hits, got %d hits / %d "
                 "scheduled\n",
                 warm.hits, warm.scheduled);
    ok = false;
  }
  if (cold.items.size() != warm.items.size()) {
    std::fprintf(stderr, "smoke: item count mismatch\n");
    ok = false;
  } else {
    for (size_t i = 0; i < cold.items.size(); ++i) {
      if (io::DumpResult(cold.items[i].result) !=
          io::DumpResult(warm.items[i].result)) {
        std::fprintf(stderr, "smoke: result %s differs between runs\n",
                     cold.items[i].id.c_str());
        ok = false;
      }
    }
  }
  if (args.Flag("cache") == nullptr) fs::remove_all(bopt.cache_dir, ec);
  std::printf("smoke: %s (%d loops, warm run served %d from cache)\n",
              ok ? "PASS" : "FAIL", static_cast<int>(warm.items.size()),
              warm.hits);
  return ok ? 0 : 1;
}

// Service-timing leg of the bench: the kernel corpus scheduled through
// service::RunBatch against a fresh temp cache (cold), then again over
// the populated cache (warm). The per-request phase decomposition
// (queue / cache probe / MII / schedule / serialize) shows where a
// request's wall time goes on each path; the leg lives here rather than
// in perf::RunBench because the service layer sits above perf.
perf::ServiceLeg RunServiceTimingLeg() {
  perf::ServiceLeg leg;
  const workload::Suite* suite = workload::SharedSuiteByName("kernels");
  if (suite == nullptr || suite->size() == 0) return leg;
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("4C16S64/2-1"));
  m = hw::ApplyCharacterization(m, hw::RFModelMode::kPaperTable);

  std::vector<service::BatchRequest> requests;
  requests.reserve(suite->size());
  for (size_t i = 0; i < suite->size(); ++i) {
    const workload::Loop& loop = (*suite)[i];
    service::BatchRequest req;
    // Non-owning alias: the shared suite outlives the batch.
    req.loop = std::shared_ptr<const workload::Loop>(
        std::shared_ptr<const void>(), &loop);
    req.id = loop.ddg.name().empty() ? "kernel-" + std::to_string(i)
                                     : loop.ddg.name();
    req.machine = m;
    requests.push_back(std::move(req));
  }

  service::BatchOptions sopt;
  std::error_code ec;
  sopt.cache_dir = (fs::temp_directory_path() /
                    ("hcrf-bench-service-" + std::to_string(::getpid())))
                       .string();
  fs::remove_all(sopt.cache_dir, ec);

  const auto phases = [](const service::RequestTiming& t) {
    perf::ServicePhaseSeconds p;
    p.queue = t.queue_seconds;
    p.cache_probe = t.cache_probe_seconds;
    p.mii = t.mii_seconds;
    p.schedule = t.schedule_seconds;
    p.serialize = t.serialize_seconds;
    return p;
  };
  const service::BatchReport cold = service::RunBatch(requests, sopt);
  const service::BatchReport warm = service::RunBatch(requests, sopt);
  fs::remove_all(sopt.cache_dir, ec);

  leg.present = true;
  leg.requests = static_cast<int>(cold.items.size());
  leg.warm_hits = warm.hits;
  leg.cold_seconds = cold.seconds;
  leg.warm_seconds = warm.seconds;
  leg.cold = phases(cold.timing);
  leg.warm = phases(warm.timing);
  return leg;
}

// Engine A/B perf baseline: times the incremental hot path against the
// non-incremental reference and asserts schedules stay bit-identical.
// Writes the BENCH_*.json trajectory artifact; CI runs `bench --smoke`.
int CmdBench(const Args& args) {
  if (!args.positional.empty() ||
      !CheckFlags(args, {"out", "rf", "reps", "synth-n", "speculate",
                         "eager", "smoke", "baseline", "baseline-seconds",
                         "current-seconds", "baseline-note", "trace",
                         "stats"})) {
    return Usage();
  }
  perf::BenchOptions bopt;
  bopt.smoke = args.Flag("smoke") != nullptr;
  if (const std::string* v = args.Flag("speculate")) {
    bopt.speculate_k = ParseIntFlag("speculate", *v);
    if (bopt.speculate_k < 0) {
      throw std::runtime_error("--speculate: expected a non-negative count, "
                               "got '" + *v + "'");
    }
  }
  bopt.speculate_eager = args.Flag("eager") != nullptr;
  if (const std::string* rf = args.Flag("rf")) {
    bopt.rf_names.clear();
    size_t start = 0;
    while (start <= rf->size()) {
      const size_t comma = rf->find(',', start);
      const std::string name = rf->substr(
          start, comma == std::string::npos ? std::string::npos
                                            : comma - start);
      if (!name.empty()) bopt.rf_names.push_back(name);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    if (bopt.rf_names.empty()) {
      throw std::runtime_error("--rf: expected a comma-separated list of "
                               "organizations");
    }
  }
  if (const std::string* v = args.Flag("reps")) {
    bopt.kernel_reps = ParseIntFlag("reps", *v);
    if (bopt.kernel_reps < 1) {
      throw std::runtime_error("--reps: expected a positive count, got '" +
                               *v + "'");
    }
  }
  if (const std::string* v = args.Flag("synth-n")) {
    bopt.synth_loops = ParseIntFlag("synth-n", *v);
    if (bopt.synth_loops < 1) {
      throw std::runtime_error("--synth-n: expected a positive count, got '" +
                               *v + "'");
    }
  }

  perf::BenchReport report = perf::RunBench(bopt);
  report.service = RunServiceTimingLeg();
  // Optional comparison against a separately timed older binary (see the
  // BENCH_*.json notes in README.md): both numbers must come from the same
  // command, run the same way.
  if (const std::string* v = args.Flag("baseline-seconds")) {
    report.pre_pr.present = true;
    report.pre_pr.baseline_seconds = ParseDoubleFlag("baseline-seconds", *v);
    const std::string* cur = args.Flag("current-seconds");
    if (cur == nullptr) {
      throw std::runtime_error(
          "--baseline-seconds requires --current-seconds (same workload, "
          "this binary)");
    }
    report.pre_pr.current_seconds = ParseDoubleFlag("current-seconds", *cur);
    if (const std::string* note = args.Flag("baseline-note")) {
      report.pre_pr.note = *note;
    }
  }
  for (const perf::BenchCase& c : report.cases) {
    std::printf(
        "%-8s x %-12s %4d loops x%-3d  ref %8.3f s  incr %8.3f s  "
        "speedup %5.2fx  %s\n",
        c.suite.c_str(), c.rf.c_str(), c.loops, c.reps, c.reference_seconds,
        c.incremental_seconds, c.Speedup(),
        c.identical ? "identical" : "MISMATCH");
    if (c.speculative_seconds > 0) {
      std::printf(
          "         spec %8.3f s  p95 %.3f -> %.3f ms (%.2fx)  "
          "raced %d won %d lost %d cancelled %d  parallelism %.2f\n",
          c.speculative_seconds, c.serial_latency.p95 * 1e3,
          c.speculative_latency.p95 * 1e3, c.SpecP95Speedup(), c.spec_raced,
          c.spec_wins, c.spec_losses, c.spec_cancelled,
          c.EffectiveParallelism());
    }
  }
  std::printf(
      "total: ref %.3f s, incr %.3f s, speedup %.2fx, %.0f placements/s, "
      "%.0f ejections/s, schedules %s\n",
      report.reference_seconds, report.incremental_seconds, report.Speedup(),
      report.incremental_seconds > 0
          ? static_cast<double>(report.placements) / report.incremental_seconds
          : 0.0,
      report.incremental_seconds > 0
          ? static_cast<double>(report.ejections) / report.incremental_seconds
          : 0.0,
      report.identical ? "bit-identical" : "DIVERGED");
  if (report.pre_pr.present) {
    std::printf("pre-PR baseline: %.3f s -> %.3f s, speedup %.2fx (%s)\n",
                report.pre_pr.baseline_seconds, report.pre_pr.current_seconds,
                report.pre_pr.Speedup(), report.pre_pr.note.c_str());
  }
  if (report.service.present) {
    std::printf(
        "service: %d requests  cold %.3f s (mii %.3f, schedule %.3f, "
        "serialize %.3f)  warm %.3f s (%d hits, probe %.3f)\n",
        report.service.requests, report.service.cold_seconds,
        report.service.cold.mii, report.service.cold.schedule,
        report.service.cold.serialize, report.service.warm_seconds,
        report.service.warm_hits, report.service.warm.cache_probe);
  }
  for (const perf::DeltaCase& d : report.delta) {
    std::printf(
        "delta    x %-12s %4d loops x%-3d  cold %8.3f s  warm %8.3f s  "
        "p50 %5.2fx  p95 %5.2fx\n",
        d.rf.c_str(), d.loops, d.reps, d.cold_seconds, d.warm_seconds,
        d.P50Speedup(), d.P95Speedup());
    std::printf(
        "         repair %ld vs rebuild %ld placements, %ld seeded, "
        "%d fallbacks, %d skipped, II %s\n",
        d.repair_placements, d.rebuild_placements, d.seeded, d.fallbacks,
        d.skipped, d.ii_never_worse ? "never worse" : "WORSE THAN COLD");
  }
  if (report.host.degraded) {
    std::fprintf(stderr,
                 "bench: warning: speculation pool has no workers "
                 "(single-core host) — the speculative leg raced inline "
                 "and its numbers are not comparable across hosts "
                 "(host marked \"degraded\": true in the report)\n");
  }

  const std::string* out = args.Flag("out");
  const std::string path = out != nullptr ? *out : "BENCH_PR10.json";
  if (path != "-") {
    io::WriteFileAtomic(path, perf::BenchJson(report));
    std::printf("report: %s\n", path.c_str());
  }
  if (!report.identical) {
    std::fprintf(stderr,
                 "bench: incremental/speculative engine diverged from the "
                 "reference schedules\n");
    return 1;
  }
  for (const perf::DeltaCase& d : report.delta) {
    if (!d.ii_never_worse) {
      std::fprintf(stderr,
                   "bench: a warm-started schedule regressed past its cold "
                   "II on the delta leg\n");
      return 1;
    }
  }
  if (const std::string* b = args.Flag("baseline")) {
    const perf::BaselineCheck check =
        perf::CompareAgainstBaseline(report, io::ReadFile(*b));
    for (const perf::BaselineCaseCheck& chk : check.checks) {
      std::printf("baseline %-8s x %-12s %-16s %9.3f -> %9.3f ms  %s\n",
                  chk.suite.c_str(), chk.rf.c_str(), chk.metric.c_str(),
                  chk.baseline * 1e3, chk.current * 1e3,
                  chk.skipped ? "skipped (incomparable)"
                  : chk.regressed
                      ? "REGRESSED"
                      : "ok");
    }
    if (!check.ok) {
      std::fprintf(stderr, "bench: --baseline=%s: %s\n", b->c_str(),
                   check.error.c_str());
      return 1;
    }
    std::printf("baseline: %d compared, %d skipped, %d regressions (%s)\n",
                check.compared, check.skipped, check.regressions,
                b->c_str());
    if (check.regressions > 0) {
      std::fprintf(stderr,
                   "bench: p95 regression of more than 15%% against %s\n",
                   b->c_str());
      return 1;
    }
  }
  return 0;
}

void PrintReproSummary(const experiment::ReproReport& report,
                       const std::string& cache_dir) {
  int cells = 0, failed_cells = 0;
  for (const experiment::ExperimentResult& e : report.experiments) {
    cells += e.cells;
    failed_cells += e.cells_failed;
  }
  std::printf(
      "repro: %zu experiments, %d cells in %d deduplicated requests, "
      "%d scheduled, %d cache hits, %d failed cells, %.3f s wall\n",
      report.experiments.size(), cells, report.requests, report.scheduled,
      report.hits, failed_cells, report.seconds);
  std::printf(
      "timing: probe %.3f s, mii %.3f s, schedule %.3f s, serialize %.3f s "
      "(summed per-request phases)\n",
      report.timing.cache_probe_seconds, report.timing.mii_seconds,
      report.timing.schedule_seconds, report.timing.serialize_seconds);
  if (!cache_dir.empty()) {
    std::printf("cache: %ld hits, %ld misses, %ld rejects, %ld writes (%s)\n",
                report.cache.hits, report.cache.misses, report.cache.rejects,
                report.cache.writes, cache_dir.c_str());
  }
  int na = 0;
  for (const experiment::ExperimentResult& e : report.experiments) {
    for (const experiment::RefCheck& c : e.refs) {
      if (!c.enforced) ++na;
    }
  }
  std::printf("refs: %d checked, %d pass, %d out of tolerance, %d n/a\n",
              report.RefChecks(), report.RefPasses(), report.ref_failures,
              na);
  for (const experiment::ExperimentResult& e : report.experiments) {
    for (const experiment::RefCheck& c : e.refs) {
      if (c.enforced && !c.passed) {
        std::fprintf(stderr, "repro: %s %s/%s: measured %g vs paper %g (%s)\n",
                     e.name.c_str(), c.ref->row.c_str(),
                     c.ref->metric.c_str(), c.measured, c.ref->paper,
                     c.verdict.c_str());
      }
    }
  }
}

// Runs the registered paper-reproduction experiments through the batch
// service. `--smoke` is the subsystem's acceptance check: bounded slices,
// cold run then warm run against a fresh cache; the warm run must be
// served entirely from the cache with byte-identical CSV/markdown.
int CmdRepro(const Args& args) {
  if (!args.positional.empty() ||
      !CheckFlags(args, {"list", "only", "out", "cache", "cache-mem",
                         "cache-mem-bytes", "threads", "quiet", "smoke",
                         "trace", "stats"})) {
    return Usage();
  }
  if (args.Flag("list") != nullptr) {
    std::printf("%-20s %-9s %-28s %s\n", "name", "cells", "workload",
                "title");
    for (const experiment::Experiment& e : experiment::Registry()) {
      const std::string workload =
          e.workload.suite.empty()
              ? "hardware model only"
              : e.workload.suite +
                    (e.workload.slice > 0
                         ? "[" + std::to_string(e.workload.slice) + "]"
                         : "") +
                    " x " + std::to_string(e.machines.size()) + "m x " +
                    std::to_string(e.engines.size()) + "e";
      std::printf("%-20s %-9zu %-28s %s\n", e.name.c_str(),
                  e.CellsPerLoop(), workload.c_str(), e.title.c_str());
    }
    return 0;
  }

  std::vector<const experiment::Experiment*> selection;
  if (const std::string* only = args.Flag("only")) {
    size_t start = 0;
    while (start <= only->size()) {
      const size_t comma = only->find(',', start);
      const std::string name = only->substr(
          start,
          comma == std::string::npos ? std::string::npos : comma - start);
      if (!name.empty()) {
        const experiment::Experiment* e = experiment::FindExperiment(name);
        if (e == nullptr) {
          std::fprintf(stderr,
                       "hcrf_sched: unknown experiment '%s' (see repro "
                       "--list)\n",
                       name.c_str());
          return 1;
        }
        selection.push_back(e);
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    if (selection.empty()) {
      std::fprintf(stderr, "hcrf_sched: --only selected no experiments\n");
      return 1;
    }
  }

  experiment::ReproOptions ropt;
  ropt.smoke = args.Flag("smoke") != nullptr;
  if (const std::string* c = args.Flag("cache")) ropt.cache_dir = *c;
  CacheMemFromFlags(args, &ropt.cache_mem_entries, &ropt.cache_mem_bytes);
  if (const std::string* t = args.Flag("threads")) {
    ropt.threads = ParseIntFlag("threads", *t);
  }

  std::error_code ec;
  if (ropt.smoke) {
    // Same cold-cache contract as the other smoke commands: never delete a
    // user-supplied directory, refuse one with existing contents.
    if (ropt.cache_dir.empty()) {
      ropt.cache_dir =
          (fs::temp_directory_path() /
           ("hcrf-repro-smoke-" + std::to_string(::getpid())))
              .string();
      fs::remove_all(ropt.cache_dir, ec);
    } else if (fs::exists(ropt.cache_dir, ec) &&
               !fs::is_empty(ropt.cache_dir, ec)) {
      std::fprintf(stderr,
                   "repro --smoke: --cache=%s exists and is not empty; the "
                   "cold run needs a fresh cache\n",
                   ropt.cache_dir.c_str());
      return 1;
    }
  }

  experiment::ReproReport report;
  bool ok = true;
  if (ropt.smoke) {
    // As in `sweep --smoke`: one resident session carries both legs, so
    // the warm run probes the cache stack the cold run populated (the
    // memory tier with --cache-mem, the disk tier otherwise).
    service::ServiceConfig config;
    config.cache_dir = ropt.cache_dir;
    config.cache_mem_entries = ropt.cache_mem_entries;
    config.cache_mem_bytes = ropt.cache_mem_bytes;
    config.threads = ropt.threads;
    service::SchedulerService session(config);
    report = experiment::RunExperiments(selection, ropt, session);
    session.Drain();  // cold writes land before the warm leg probes disk
    PrintReproSummary(report, ropt.cache_dir);
    ok = report.ref_failures == 0;
    const experiment::ReproReport warm =
        experiment::RunExperiments(selection, ropt, session);
    PrintReproSummary(warm, ropt.cache_dir);
    if (warm.scheduled != 0 || warm.hits != warm.requests) {
      std::fprintf(stderr,
                   "repro --smoke: warm run expected all cache hits, got %d "
                   "hits / %d scheduled of %d requests\n",
                   warm.hits, warm.scheduled, warm.requests);
      ok = false;
    }
    if (experiment::ReproCsv(warm) != experiment::ReproCsv(report) ||
        experiment::ReproMarkdown(warm) != experiment::ReproMarkdown(report)) {
      std::fprintf(stderr,
                   "repro --smoke: warm reports differ from cold reports\n");
      ok = false;
    }
    if (ropt.cache_mem_entries > 0 && session.memory_stats().hits <= 0) {
      std::fprintf(stderr,
                   "repro --smoke: --cache-mem warm run never hit the "
                   "memory tier\n");
      ok = false;
    }
    if (warm.ref_failures != 0) ok = false;
    if (args.Flag("cache") == nullptr) fs::remove_all(ropt.cache_dir, ec);
    std::printf("repro smoke: %s\n", ok ? "PASS" : "FAIL");
  } else {
    report = experiment::RunExperiments(selection, ropt);
    PrintReproSummary(report, ropt.cache_dir);
    ok = report.ref_failures == 0;
  }
  const std::string csv = experiment::ReproCsv(report);
  const std::string md = experiment::ReproMarkdown(report);

  const std::string* out_dir = args.Flag("out");
  const std::string dir = out_dir != nullptr ? *out_dir : ".";
  fs::create_directories(dir, ec);
  const std::string csv_path = (fs::path(dir) / "repro.csv").string();
  const std::string md_path = (fs::path(dir) / "repro.md").string();
  io::WriteFileAtomic(csv_path, csv);
  io::WriteFileAtomic(md_path, md);
  std::printf("reports: %s %s\n", csv_path.c_str(), md_path.c_str());
  if (args.Flag("quiet") == nullptr) {
    std::fwrite(md.data(), 1, md.size(), stdout);
  }
  return ok ? 0 : 1;
}

// The resident daemon's stop request: signal handlers may only touch
// lock-free state, and Server::RequestStop() is async-signal-safe by
// contract (one write() to the self-pipe).
std::atomic<service::Server*> g_serve_instance{nullptr};

extern "C" void HandleServeSignal(int) {
  service::Server* server =
      g_serve_instance.load(std::memory_order_relaxed);
  if (server != nullptr) server->RequestStop();
}

// Resident scheduling daemon: one SchedulerService (cache stack, thread
// budget, speculation config) serving line-framed submissions on a Unix
// socket until SIGTERM/SIGINT drains it.
int CmdServe(const Args& args) {
  if (!args.positional.empty() ||
      !CheckFlags(args, {"socket", "cache", "cache-mem", "cache-mem-bytes",
                         "threads", "speculate", "eager", "max-inflight",
                         "timeout-ms"})) {
    return Usage();
  }
  const std::string* socket = args.Flag("socket");
  if (socket == nullptr || socket->empty()) {
    std::fprintf(stderr, "serve: --socket=PATH is required\n");
    return 1;
  }
  service::ServerOptions sopt;
  sopt.socket_path = *socket;
  if (const std::string* v = args.Flag("max-inflight")) {
    sopt.max_inflight = ParseIntFlag("max-inflight", *v);
    if (sopt.max_inflight < 1) {
      throw std::runtime_error(
          "--max-inflight: expected a positive count, got '" + *v + "'");
    }
  }
  if (const std::string* v = args.Flag("timeout-ms")) {
    sopt.read_timeout_ms = ParseIntFlag("timeout-ms", *v);
    if (sopt.read_timeout_ms < 0) {
      throw std::runtime_error(
          "--timeout-ms: expected a non-negative timeout, got '" + *v + "'");
    }
  }
  if (const std::string* c = args.Flag("cache")) {
    sopt.service.cache_dir = *c;
  }
  CacheMemFromFlags(args, &sopt.service.cache_mem_entries,
                    &sopt.service.cache_mem_bytes);
  if (const std::string* t = args.Flag("threads")) {
    sopt.service.threads = ParseIntFlag("threads", *t);
  }
  if (const std::string* v = args.Flag("speculate")) {
    sopt.service.speculate_k = ParseIntFlag("speculate", *v);
    if (sopt.service.speculate_k < 0) {
      throw std::runtime_error("--speculate: expected a non-negative count, "
                               "got '" + *v + "'");
    }
  }
  if (args.Flag("eager") != nullptr) sopt.service.speculate_eager = true;

  service::Server server(sopt);
  server.Start();
  g_serve_instance.store(&server, std::memory_order_relaxed);
  // Socket writes already use MSG_NOSIGNAL (wire::Conn::WriteAll), but a
  // resident daemon must survive EPIPE from any fd — e.g. stdout piped
  // to a scripted client that exits after the readiness line.
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGTERM, HandleServeSignal);
  std::signal(SIGINT, HandleServeSignal);
  std::printf("serve: listening on %s (max-inflight %d, cache %s, "
              "cache-mem %ld)\n",
              sopt.socket_path.c_str(), sopt.max_inflight,
              sopt.service.cache_dir.empty() ? "off"
                                             : sopt.service.cache_dir.c_str(),
              sopt.service.cache_mem_entries);
  std::fflush(stdout);  // readiness marker for scripted clients
  server.Serve();
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  g_serve_instance.store(nullptr, std::memory_order_relaxed);
  std::printf("serve: drained (%ld connections served, %ld bounced busy)\n",
              server.served(), server.bounced());
  return 0;
}

void PrintWireItem(const std::string& id, const service::wire::ReplyItem& item) {
  if (!item.ok) {
    std::printf("%-28s FAILED  %s\n", id.c_str(), item.error.c_str());
    return;
  }
  std::printf("%-28s II %3d (MII %3d)  SC %2d  bound %-7s %s\n", id.c_str(),
              item.result.ii, item.result.mii, item.result.sc,
              std::string(core::ToString(item.result.bound)).c_str(),
              item.cache_hit ? "cache-hit " : "scheduled ");
}

// Daemon client: resolves a manifest locally (same loader as `run`) and
// submits the batch over the socket; `--ping` / `--stats` /
// `--cache-stats` query the daemon instead. Exit 2 = server saturated.
int CmdSubmit(const Args& args) {
  if (!CheckFlags(args, {"socket", "delta", "ping", "stats", "cache-stats",
                         "out-dir", "quiet", "timeout-ms"})) {
    return Usage();
  }
  const std::string* socket = args.Flag("socket");
  if (socket == nullptr || socket->empty()) {
    std::fprintf(stderr, "submit: --socket=PATH is required\n");
    return 1;
  }
  int timeout_ms = 120000;
  if (const std::string* v = args.Flag("timeout-ms")) {
    timeout_ms = ParseIntFlag("timeout-ms", *v);
    if (timeout_ms < 0) {
      throw std::runtime_error(
          "--timeout-ms: expected a non-negative timeout, got '" + *v + "'");
    }
  }
  const bool ping = args.Flag("ping") != nullptr;
  const bool stats = args.Flag("stats") != nullptr;
  const bool cache_stats = args.Flag("cache-stats") != nullptr;
  if (ping + stats + cache_stats > 1) {
    std::fprintf(stderr,
                 "submit: --ping/--stats/--cache-stats are exclusive\n");
    return 1;
  }
  const bool query = ping || stats || cache_stats;
  if (args.positional.size() != (query ? 0u : 1u)) return Usage();

  service::Client client(*socket, timeout_ms);
  if (ping) {
    if (!client.Ping()) {
      std::fprintf(stderr, "submit: server busy\n");
      return 2;
    }
    std::printf("ok\n");
    return 0;
  }
  if (stats || cache_stats) {
    const std::string payload = stats ? client.Stats() : client.CacheStats();
    std::fwrite(payload.data(), 1, payload.size(), stdout);
    return 0;
  }

  // `--delta=N:LAT[,...]`: the what-if perturbation list, parsed up
  // front so a malformed spec fails before anything is submitted.
  std::vector<std::pair<int, int>> delta;
  if (const std::string* spec = args.Flag("delta")) {
    size_t start = 0;
    while (start <= spec->size()) {
      const size_t comma = spec->find(',', start);
      const std::string pair = spec->substr(
          start,
          comma == std::string::npos ? std::string::npos : comma - start);
      if (!pair.empty()) {
        const size_t colon = pair.find(':');
        if (colon == std::string::npos) {
          throw std::runtime_error("--delta: expected NODE:LATENCY, got '" +
                                   pair + "'");
        }
        const int node = ParseIntFlag("delta", pair.substr(0, colon));
        const int latency = ParseIntFlag("delta", pair.substr(colon + 1));
        if (node < 0 || latency < 1) {
          throw std::runtime_error(
              "--delta: node must be >= 0 and latency >= 1 in '" + pair +
              "'");
        }
        delta.emplace_back(node, latency);
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }

  const std::string& manifest_path = args.positional[0];
  const std::vector<service::ManifestEntry> entries =
      service::LoadManifestFile(manifest_path);
  const std::string base_dir =
      fs::path(manifest_path).parent_path().string();
  std::vector<service::BatchRequest> requests;
  requests.reserve(entries.size());
  for (const service::ManifestEntry& entry : entries) {
    // Unlike `run`, a client fails fast on an unloadable entry: nothing
    // has been submitted yet, so there is no partial batch to salvage.
    requests.push_back(service::ResolveManifestEntry(
        entry, base_dir, hw::RFModelMode::kPaperTable));
    if (args.Flag("delta") != nullptr) {
      // Node ids are per-loop: an entry beyond this loop's slot count
      // simply has no node to perturb there.
      service::BatchRequest& req = requests.back();
      const NodeId slots = req.loop->ddg.NumSlots();
      req.overrides.producer_latency.assign(static_cast<size_t>(slots), 0);
      for (const auto& [node, latency] : delta) {
        if (node < slots) {
          req.overrides.producer_latency[static_cast<size_t>(node)] = latency;
        }
      }
    }
  }

  const service::SubmitReply reply = args.Flag("delta") != nullptr
                                         ? client.SubmitDelta(requests)
                                         : client.Submit(requests);
  if (reply.busy) {
    std::fprintf(stderr,
                 "submit: server busy (max-inflight reached); retry later\n");
    return 2;
  }
  if (reply.items.size() != requests.size()) {
    std::fprintf(stderr, "submit: server returned %zu items for %zu requests\n",
                 reply.items.size(), requests.size());
    return 1;
  }
  const bool quiet = args.Flag("quiet") != nullptr;
  const std::string* out_dir = args.Flag("out-dir");
  int failed = 0, hits = 0;
  for (size_t i = 0; i < reply.items.size(); ++i) {
    const service::wire::ReplyItem& item = reply.items[i];
    if (!item.ok) ++failed;
    if (item.cache_hit) ++hits;
    if (!quiet) PrintWireItem(requests[i].id, item);
    if (out_dir != nullptr && item.ok) {
      std::string stem = requests[i].id;
      for (char& c : stem) {
        if (c == '/' || c == '\\') c = '_';
      }
      io::WriteFileAtomic((fs::path(*out_dir) / (stem + ".hclr")).string(),
                          io::DumpResult(item.result));
    }
  }
  std::printf("submit: %zu requests, %d cache hits, %d failed (%s)\n",
              requests.size(), hits, failed, socket->c_str());
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  const Args args = Args::Parse(argc, argv, 2);
  try {
    if (cmd == "schedule") {
      return RunTraced(args, [&] { return CmdSchedule(args); });
    }
    if (cmd == "run") return RunTraced(args, [&] { return CmdRun(args); });
    if (cmd == "sweep") return CmdSweep(args);
    if (cmd == "dump") return CmdDump(args);
    if (cmd == "validate") return CmdValidate(args);
    if (cmd == "export") return CmdExport(args);
    if (cmd == "stats" || cmd == "cache-stats") return CmdStats(args);
    if (cmd == "smoke") return CmdSmoke(args);
    if (cmd == "bench") return RunTraced(args, [&] { return CmdBench(args); });
    if (cmd == "repro") return RunTraced(args, [&] { return CmdRepro(args); });
    if (cmd == "serve") return CmdServe(args);
    if (cmd == "submit") return CmdSubmit(args);
    if (cmd == "help" || cmd == "--help" || cmd == "-h") {
      Usage();
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hcrf_sched: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "hcrf_sched: unknown command '%s'\n", cmd.c_str());
  return Usage();
}
