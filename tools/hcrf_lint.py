#!/usr/bin/env python3
"""Project lint: repo-specific invariants generic tools cannot express.

Wired as a ctest (`hcrf_lint`) and a CI step. Rules, each with the failure
mode it guards against:

  bare-assert     `assert()` compiles away in release builds — exactly
                  where the big sweeps run — so engine invariants must use
                  HCRF_CHECK (src/core/check.h), which always fires.
  console-io      Library code must not print: stdout/stderr belong to the
                  CLI and the report writers. Printing is allowed in the
                  io/ and obs/ layers (serialization and dump surfaces)
                  and in the individually-justified files below.
  nondeterminism  Schedules, sweeps and the synthetic workload must be
                  bit-reproducible across runs and machines; rand()/
                  srand()/std::random_device are banned in src/ (seeded
                  mt19937 et al. are fine — the seed is part of the spec).
  naked-thread    All parallelism goes through perf::ThreadPool /
                  perf::SpeculationPool so saturation, tracing and
                  shutdown stay centralized; raw std::thread construction
                  outside src/perf/ is a smell (std::thread::id and
                  std::this_thread remain free).
  raw-socket      Socket syscalls (socket/bind/listen/accept/connect/
                  setsockopt/recv/send) concentrate in the daemon's
                  endpoint files, where admission control, timeouts and
                  the drain discipline live; anywhere else they are a
                  second, unreviewed network surface. Framed byte IO on
                  an already-connected fd (wire.cpp) is allowlisted for
                  exactly one syscall: send(MSG_NOSIGNAL), which cannot
                  create or accept a connection and exists so a peer
                  closing mid-write yields EPIPE instead of SIGPIPE.
  placement-funnel
                  Every engine placement/removal must ride the
                  SchedState::Assign/Unassign funnels, which feed the
                  incremental pressure tracker and the cluster usage
                  counters — a direct PartialSchedule::Assign/Unassign
                  (`sched->Assign(...)`, `schedule.Assign(...)`) outside
                  src/sched/ silently desyncs both. Warm-start seeding
                  made this an explicit rule: replayed seed placements
                  are ordinary placements and must be funneled too.
  header-compile  Every header under src/ must compile on its own (a
                  header that leans on its includer's includes breaks the
                  next refactor).
  hygiene         No tabs, no trailing whitespace, newline at EOF.

Usage: hcrf_lint.py --root REPO [--compiler c++] [--skip-headers]
Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

import argparse
import concurrent.futures
import os
import re
import subprocess
import sys
import tempfile

# --------------------------------------------------------------------------
# Per-file opt-outs. Every entry must carry a justification — an entry
# without a reason a reviewer can check is a finding in itself.
# --------------------------------------------------------------------------
CONSOLE_IO_ALLOWLIST = {
    "src/core/check.h":
        "invariant-failure diagnostics: prints context to stderr on the "
        "abort path, where no report writer can run anymore",
    "src/core/engine.cpp":
        "HCRF_DEBUG-gated stderr diagnostics (budget exhaustion, lifetime "
        "dumps, validation failures); silent unless the env switch is set",
    "src/core/comm_rewrite.cpp":
        "HCRF_DEBUG-gated stderr diagnostics for rewrite bookkeeping; "
        "silent unless the env switch is set",
    "src/perf/tables.h":
        "the bench layer's report-rendering surface: Print(std::ostream&) "
        "defaults to std::cout for the CLI table dumps",
}

# Directories whose job is writing bytes out: serialization (io/) and the
# observability dump surfaces (obs/).
CONSOLE_IO_ALLOWED_DIRS = ("src/io/", "src/obs/")

# The daemon's two socket endpoints. Everything that can open, accept or
# configure a connection must sit behind these files' admission/timeout/
# drain discipline (service/server.h documents it).
SOCKET_ALLOWLIST = {
    "src/service/server.cpp":
        "the daemon's listening surface: socket/bind/listen/accept and "
        "per-connection timeouts, behind Server's admission control and "
        "graceful-drain contract",
    "src/service/client.cpp":
        "the daemon client's connecting surface: socket/connect plus "
        "timeouts for the one-request-per-connection wire protocol",
    "src/service/wire.cpp":
        "framed byte IO on already-connected fds: send(MSG_NOSIGNAL) so "
        "a peer closing mid-write surfaces as EPIPE, not SIGPIPE; no "
        "syscall here can create or accept a connection",
}

# Raw thread construction is the thread-pool layer's privilege.
NAKED_THREAD_ALLOWED_DIRS = ("src/perf/",)

# Direct placement-table writes are the schedule layer's privilege; the
# engine goes through the SchedState funnels so the pressure tracker and
# cluster counters never miss a delta.
PLACEMENT_FUNNEL_ALLOWLIST = {
    "src/core/sched_state.h":
        "the funnels themselves: SchedState::Assign/Unassign wrap the "
        "placement-table write with the pressure-tracker and cluster-"
        "counter deltas every other engine layer must ride through",
    "src/io/hcl.cpp":
        "deserialization: rebuilding a PartialSchedule from a parsed "
        "result document, where no SchedState (and nothing incremental "
        "to desync) exists",
}
PLACEMENT_FUNNEL_ALLOWED_DIRS = ("src/sched/",)

SOURCE_EXTENSIONS = (".h", ".cpp")


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line
    structure, so rules never fire on prose or format strings."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(" ")
            elif c == "\n":  # unterminated (raw string etc.) — bail to code
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def iter_source_files(root, subdir):
    base = os.path.join(root, subdir)
    for dirpath, _, filenames in os.walk(base):
        for name in sorted(filenames):
            if name.endswith(SOURCE_EXTENSIONS):
                full = os.path.join(dirpath, name)
                yield os.path.relpath(full, root).replace(os.sep, "/")


class Linter:
    def __init__(self, root):
        self.root = root
        self.findings = []

    def report(self, path, line, rule, message):
        self.findings.append((path, line, rule, message))

    def read(self, rel):
        with open(os.path.join(self.root, rel), encoding="utf-8") as f:
            return f.read()

    # -- text rules --------------------------------------------------------

    def lint_src_file(self, rel):
        raw = self.read(rel)
        code = strip_comments_and_strings(raw)
        lines = code.splitlines()
        in_allowed_io_dir = rel.startswith(CONSOLE_IO_ALLOWED_DIRS)
        io_allowlisted = rel in CONSOLE_IO_ALLOWLIST
        thread_allowed = rel.startswith(NAKED_THREAD_ALLOWED_DIRS)

        for lineno, line in enumerate(lines, start=1):
            if re.search(r"(?<!static_)\bassert\s*\(", line):
                self.report(rel, lineno, "bare-assert",
                            "assert() vanishes in release builds; use "
                            "HCRF_CHECK (src/core/check.h)")
            if not in_allowed_io_dir and not io_allowlisted:
                if re.search(r"#\s*include\s*<iostream>", line):
                    self.report(rel, lineno, "console-io",
                                "<iostream> in library code outside io/obs")
                if re.search(r"std::(cout|cerr|clog)\b", line):
                    self.report(rel, lineno, "console-io",
                                "console stream in library code outside "
                                "io/obs")
                if re.search(r"(?<![\w:])(?:std::)?(?:f|v)?printf\s*\(|"
                             r"(?<![\w:])(?:std::)?(?:fputs|puts|putchar)"
                             r"\s*\(", line):
                    if "snprintf" not in line:
                        self.report(rel, lineno, "console-io",
                                    "printf-family output in library code "
                                    "outside io/obs (snprintf-to-buffer is "
                                    "fine)")
            if re.search(r"(?<![\w:])(?:std::)?s?rand\s*\(|"
                         r"\brandom_device\b", line):
                self.report(rel, lineno, "nondeterminism",
                            "rand()/srand()/random_device in a "
                            "deterministic layer; use a seeded engine")
            if not thread_allowed and re.search(r"std::thread(?![\w:])",
                                                line):
                self.report(rel, lineno, "naked-thread",
                            "raw std::thread outside perf/; go through "
                            "perf::ThreadPool / perf::SpeculationPool")
            if (not rel.startswith(PLACEMENT_FUNNEL_ALLOWED_DIRS)
                    and rel not in PLACEMENT_FUNNEL_ALLOWLIST):
                if re.search(r"\bsched(?:ule)?\s*(?:->|\.)\s*"
                             r"(?:Assign|Unassign)\s*\(", line):
                    self.report(rel, lineno, "placement-funnel",
                                "direct PartialSchedule placement write "
                                "outside sched/; go through the "
                                "SchedState::Assign/Unassign funnels")
            if rel not in SOCKET_ALLOWLIST:
                if re.search(r"#\s*include\s*<sys/(socket|un)\.h>", line):
                    self.report(rel, lineno, "raw-socket",
                                "socket headers outside the daemon "
                                "endpoints (service/server.cpp, "
                                "service/client.cpp)")
                if re.search(r"(?<![\w:.])(?:::)?(socket|bind|listen|"
                             r"accept4?|connect|setsockopt|recvfrom|"
                             r"recvmsg|recv|sendto|sendmsg|send)\s*\(",
                             line):
                    self.report(rel, lineno, "raw-socket",
                                "socket syscall outside the daemon "
                                "endpoints; route connections through "
                                "service::Server / service::Client")

    def lint_hygiene(self, rel):
        raw = self.read(rel)
        for lineno, line in enumerate(raw.splitlines(), start=1):
            if "\t" in line:
                self.report(rel, lineno, "hygiene", "tab character")
            if line != line.rstrip():
                self.report(rel, lineno, "hygiene", "trailing whitespace")
        if raw and not raw.endswith("\n"):
            self.report(rel, len(raw.splitlines()), "hygiene",
                        "missing newline at end of file")

    def check_allowlist_is_current(self):
        for rel in CONSOLE_IO_ALLOWLIST:
            if not os.path.exists(os.path.join(self.root, rel)):
                self.report(rel, 1, "console-io",
                            "stale allowlist entry: file no longer exists")
        for rel in SOCKET_ALLOWLIST:
            if not os.path.exists(os.path.join(self.root, rel)):
                self.report(rel, 1, "raw-socket",
                            "stale allowlist entry: file no longer exists")
        for rel in PLACEMENT_FUNNEL_ALLOWLIST:
            if not os.path.exists(os.path.join(self.root, rel)):
                self.report(rel, 1, "placement-funnel",
                            "stale allowlist entry: file no longer exists")

    # -- header self-sufficiency ------------------------------------------

    def check_headers_compile(self, compiler, jobs):
        headers = [rel for rel in iter_source_files(self.root, "src")
                   if rel.endswith(".h")]
        include_dir = os.path.join(self.root, "src")

        def compile_one(rel):
            with tempfile.TemporaryDirectory() as tmp:
                tu = os.path.join(tmp, "tu.cpp")
                with open(tu, "w", encoding="utf-8") as f:
                    f.write(f'#include "{rel[len("src/"):]}"\n')
                proc = subprocess.run(
                    [compiler, "-std=c++20", "-fsyntax-only",
                     "-I", include_dir, tu],
                    capture_output=True, text=True)
                return rel, proc.returncode, proc.stderr

        with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as ex:
            for rel, rc, stderr in ex.map(compile_one, headers):
                if rc != 0:
                    first = stderr.strip().splitlines()
                    detail = first[0] if first else "compiler error"
                    self.report(rel, 1, "header-compile",
                                f"header does not compile on its own: "
                                f"{detail}")
        return len(headers)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", required=True, help="repository root")
    parser.add_argument("--compiler", default="c++",
                        help="C++ compiler for the header-compile rule")
    parser.add_argument("--skip-headers", action="store_true",
                        help="skip the (slower) header-compile rule")
    parser.add_argument("--jobs", type=int,
                        default=max(1, (os.cpu_count() or 2) - 1))
    args = parser.parse_args()

    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"hcrf_lint: no src/ under {root}", file=sys.stderr)
        return 2

    linter = Linter(root)
    linter.check_allowlist_is_current()

    src_files = list(iter_source_files(root, "src"))
    for rel in src_files:
        linter.lint_src_file(rel)
        linter.lint_hygiene(rel)
    hygiene_only = [rel for sub in ("tests", "tools")
                    for rel in iter_source_files(root, sub)]
    for rel in hygiene_only:
        linter.lint_hygiene(rel)

    headers_checked = 0
    if not args.skip_headers:
        headers_checked = linter.check_headers_compile(args.compiler,
                                                       args.jobs)

    for path, line, rule, message in sorted(linter.findings):
        print(f"{path}:{line}: [{rule}] {message}")
    print(f"hcrf_lint: {len(src_files)} src files, "
          f"{len(hygiene_only)} test/tool files, "
          f"{headers_checked} headers compiled, "
          f"{len(linter.findings)} finding(s)")
    return 1 if linter.findings else 0


if __name__ == "__main__":
    sys.exit(main())
