// Ablation: the Budget_Ratio knob of MIRS_HC's iterative backtracking.
// Low ratios give up early (II bumps instead of ejection work, worse
// SigmaII but fast); high ratios buy schedule quality with scheduling
// time. The paper does not publish its ratio; this bench justifies our
// default of 6 attempts per node.
#include <cstdio>

#include "bench_util.h"

using namespace hcrf;

int main() {
  std::printf("Ablation: Budget_Ratio on a %zu-loop slice, 4C16S64/2-1\n\n",
              bench::SuiteSlice(300).size());
  const workload::Suite suite = bench::SuiteSlice(300);
  const MachineConfig m = bench::MakeMachine("4C16S64/2-1");

  std::printf("%-8s %-10s %-8s %-10s %-8s\n", "ratio", "SigmaII", "%MII",
              "sched s", "failed");
  for (double ratio : {1.0, 2.0, 4.0, 6.0, 8.0, 16.0}) {
    perf::RunOptions opt;
    opt.mirs.budget_ratio = ratio;
    const perf::SuiteMetrics sm = perf::RunSuite(suite, m, opt);
    std::printf("%-8.0f %-10ld %-8.1f %-10.2f %-8d\n", ratio, sm.sum_ii,
                sm.PctAtMII(), sm.sched_seconds, sm.failed);
  }
  return 0;
}
