// Shared helpers for the paper-reproduction benchmarks: configured
// machines, the cached synthetic suite and paper reference values.
//
// Hardware numbers for the named paper configurations use
// RFModelMode::kPaperTable (access/area calibrated from Table 5), so the
// clock and latency columns match the paper exactly; the analytic model is
// validated separately by table2/table5 and the hwmodel tests.
#pragma once

#include <string>

#include "hwmodel/characterize.h"
#include "machine/machine_config.h"
#include "perf/runner.h"
#include "perf/tables.h"
#include "workload/suite_cache.h"
#include "workload/workload.h"

namespace hcrf::bench {

/// The synthetic Perfect Club stand-in
/// (workload::SharedSyntheticSuite(), shared with the corpus exporter).
const workload::Suite& TheSuite();

/// A smaller slice of the suite for expensive sweeps (ablation benches);
/// `n` loops, deterministic.
workload::Suite SuiteSlice(size_t n);

/// Baseline resources (8 FUs + 4 memory ports) with the named RF
/// organization and, when `characterize` is set, the clock/latency table
/// implied by the hardware model.
MachineConfig MakeMachine(const std::string& rf_name, bool characterize = true,
                          hw::RFModelMode mode = hw::RFModelMode::kPaperTable);

/// The paper's Table 5 configuration list with its published lp-sp values.
struct PaperConfig {
  const char* name;  ///< Parseable ("1C64S32/3-2").
  const char* label; ///< As printed in the paper ("1C64S32").
};
inline constexpr PaperConfig kTable5Configs[] = {
    {"S128", "S128"},
    {"S64", "S64"},
    {"S32", "S32"},
    {"1C64S32/3-2", "1C64S32"},
    {"1C32S64/4-2", "1C32S64"},
    {"2C64/1-1", "2C64"},
    {"2C32/1-1", "2C32"},
    {"2C64S32/2-1", "2C64S32"},
    {"2C32S32/3-1", "2C32S32"},
    {"4C64/1-1", "4C64"},
    {"4C32/1-1", "4C32"},
    {"4C32S16/1-1", "4C32S16"},
    {"4C16S16/2-1", "4C16S16"},
    {"8C32S16/1-1", "8C32S16"},
    {"8C16S16/1-1", "8C16S16"},
};

}  // namespace hcrf::bench
