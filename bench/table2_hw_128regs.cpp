// Reproduces Table 2: access time and area of three equal-capacity
// (128-register) organizations with lp=sp=1, from the analytic register-
// file model (the paper used CACTI 3.0 adapted to RFs at 0.10 um).
//
// Paper reference:
//   Config    access C / S (ns)    area C / S / total (1e6 lambda^2)
//   S128      -     / 1.145        -     / 14.91 / 14.91
//   4C32      0.475 / -            1.07  / -     /  4.29
//   1C64S64   0.979 / 0.610        10.79 /  2.47 / 13.26
#include <cstdio>

#include "bench_util.h"

using namespace hcrf;

namespace {

void Row(const char* name, double paper_c_t, double paper_s_t,
         double paper_total_area, hw::RFModelMode mode) {
  MachineConfig m =
      MachineConfig::WithRF(RFConfig::Parse(name));
  // Table 2 uses lp=sp=1 for all organizations.
  if (m.rf.HasClusters()) {
    m.rf.lp = 1;
    m.rf.sp = 1;
  }
  const hw::Characterization c = hw::Characterize(m, mode);
  std::printf("%-9s  C %.3f ns (paper %.3f)   S %.3f ns (paper %.3f)   "
              "total area %6.2f (paper %5.2f)\n",
              name, c.cluster_bank.access_ns, paper_c_t,
              c.shared_bank.access_ns, paper_s_t, c.total_area_mlambda2,
              paper_total_area);
}

}  // namespace

int main() {
  std::printf("Table 2: access time and area, 128-register organizations "
              "(lp=sp=1)\n\n");
  std::printf("-- analytic model --\n");
  Row("S128", 0.0, 1.145, 14.91, hw::RFModelMode::kAnalytic);
  Row("4C32", 0.475, 0.0, 4.29, hw::RFModelMode::kAnalytic);
  Row("1C64S64", 0.979, 0.610, 13.26, hw::RFModelMode::kAnalytic);
  std::printf("\nNote: Table 2's 1C64S64 banks (lp=sp=1) do not appear in "
              "Table 5, so both\ncolumns come from the analytic fit there; "
              "see EXPERIMENTS.md for fit quality.\n");
  return 0;
}
