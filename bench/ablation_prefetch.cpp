// Ablation: binding-prefetch policy (paper Section 6.2). Selective binding
// prefetching ([30]) should keep most of the stall reduction of
// prefetch-everything ([4]) while avoiding its RecMII and prologue
// penalties; hierarchical organizations absorb the extra register pressure
// in the shared bank.
#include <cstdio>

#include "bench_util.h"

using namespace hcrf;

int main() {
  std::printf("Ablation: binding prefetch policy (real memory, 300-loop "
              "slice)\n\n");
  const workload::Suite suite = bench::SuiteSlice(300);

  for (const char* rf : {"S64", "4C32/1-1", "4C32S16/1-1"}) {
    const MachineConfig m = bench::MakeMachine(rf);
    std::printf("-- %s --\n", rf);
    std::printf("%-12s %-14s %-14s %-12s %-8s\n", "policy", "useful cyc",
                "stall cyc", "SigmaII", "failed");
    for (memsim::PrefetchMode mode :
         {memsim::PrefetchMode::kNone, memsim::PrefetchMode::kAll,
          memsim::PrefetchMode::kSelective}) {
      perf::RunOptions opt;
      opt.prefetch = mode;
      opt.simulate_memory = true;
      const perf::SuiteMetrics sm = perf::RunSuite(suite, m, opt);
      std::printf("%-12s %-14ld %-14ld %-12ld %-8d\n",
                  std::string(ToString(mode)).c_str(), sm.useful_cycles,
                  sm.stall_cycles, sm.sum_ii, sm.failed);
    }
    std::printf("\n");
  }
  return 0;
}
