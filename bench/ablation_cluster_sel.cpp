// Ablation: the Select_Cluster heuristic (paper Section 5.1) against naive
// round-robin and first-fit policies, and the sensitivity of the pure
// clustered organization to the number of inter-cluster buses (a parameter
// the paper does not publish; our default is x/2).
#include <cstdio>

#include "bench_util.h"

using namespace hcrf;

namespace {

void Policies(const char* rf) {
  const workload::Suite suite = bench::SuiteSlice(300);
  const MachineConfig m = bench::MakeMachine(rf);
  std::printf("-- cluster selection on %s --\n", rf);
  std::printf("%-12s %-10s %-8s %-8s %-10s %-10s\n", "policy", "SigmaII",
              "%MII", "failed", "ejections", "restarts");
  // Policies are exercised through the ClusterSelector interface: the
  // engine builds one selector per run from the factory, so one RunOptions
  // value is safe to share across the parallel suite runner's threads.
  const core::ClusterSelectorFactory factories[] = {
      core::MakeClusterSelectorFactory(core::ClusterPolicy::kBalanced),
      core::MakeClusterSelectorFactory(core::ClusterPolicy::kRoundRobin),
      core::MakeClusterSelectorFactory(core::ClusterPolicy::kFirstFit),
  };
  for (const core::ClusterSelectorFactory& make : factories) {
    perf::RunOptions opt;
    opt.mirs.cluster_selector = make;
    const perf::SuiteMetrics sm = perf::RunSuite(suite, m, opt);
    std::printf("%-12s %-10ld %-8.1f %-8d %-10ld %-10ld\n",
                std::string(make()->name()).c_str(), sm.sum_ii, sm.PctAtMII(),
                sm.failed, sm.ejections, sm.ii_restarts);
  }
  std::printf("\n");
}

void Buses() {
  const workload::Suite suite = bench::SuiteSlice(300);
  std::printf("-- bus count on 4C32 (default nb = x/2 = 2) --\n");
  std::printf("%-8s %-10s %-8s %-8s\n", "buses", "SigmaII", "%MII", "failed");
  for (int nb : {1, 2, 3, 4}) {
    MachineConfig m = bench::MakeMachine("4C32/1-1");
    m.rf.buses = nb;
    const perf::SuiteMetrics sm = perf::RunSuite(suite, m);
    std::printf("%-8d %-10ld %-8.1f %-8d\n", nb, sm.sum_ii, sm.PctAtMII(),
                sm.failed);
  }
}

}  // namespace

int main() {
  std::printf("Ablation: cluster selection policy and bus bandwidth\n\n");
  Policies("4C32/1-1");
  Policies("4C16S64/2-1");
  Buses();
  return 0;
}
