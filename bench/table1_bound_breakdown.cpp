// Reproduces Table 1: classification of loops (and their execution cycles)
// by what bounds their II -- functional units, memory ports, recurrences or
// communication -- for three equal-capacity (128-register) organizations:
// monolithic S128, clustered 4C32 and hierarchical 1C64S64.
//
// Paper reference (percent of loops / exec cycles x1e9):
//   S128:    FU 20.0/5.148  Mem 50.9/2.305  Rec 29.1/3.607  Com 0.0/0.000
//   4C32:    FU 17.6/4.249  Mem 50.3/1.960  Rec 29.2/5.888  Com 2.9/1.709
//   1C64S64: FU 19.2/4.914  Mem 50.1/2.235  Rec 29.9/4.577  Com 0.8/0.001
// Totals: 11.06 / 13.81 / 11.73 (x1e9 cycles); the reproduced claim is the
// *relative* growth (4C32 ~1.25x, 1C64S64 ~1.06x of S128) and the shift of
// loops into the Com class under clustering.
#include <cstdio>

#include "bench_util.h"

using namespace hcrf;

namespace {

struct PaperRow {
  double pct[4];  // FU, Mem, Rec, Com
};

void RunConfig(const char* name, const PaperRow& paper, double* total_cycles) {
  const MachineConfig m = bench::MakeMachine(name);
  perf::RunOptions opt;
  const perf::SuiteMetrics sm = perf::RunSuite(bench::TheSuite(), m, opt);

  std::printf("%-10s", name);
  const char* cls[4] = {"FU", "MemPort", "Rec", "Com"};
  // Metrics order in SuiteMetrics: FU, MemPort, Rec, Comm.
  for (int b = 0; b < 4; ++b) {
    const double pct = 100.0 * sm.bound_count[static_cast<size_t>(b)] /
                       std::max(1, sm.num_loops - sm.failed);
    std::printf("  %s %5.1f%% (paper %4.1f%%) cyc %.3fe9", cls[b], pct,
                paper.pct[b],
                static_cast<double>(
                    sm.bound_cycles[static_cast<size_t>(b)]) /
                    1e9);
  }
  std::printf("\n  total cycles %.4fe9, failed %d, sched %.1fs\n",
              static_cast<double>(sm.ExecCycles()) / 1e9, sm.failed,
              sm.sched_seconds);
  *total_cycles = static_cast<double>(sm.ExecCycles());
}

}  // namespace

int main() {
  std::printf(
      "Table 1: loop classification by II bound, 128-register organizations "
      "(ideal memory)\n\n");
  double s128 = 0;
  double c4 = 0;
  double h1 = 0;
  RunConfig("S128", {{20.0, 50.9, 29.1, 0.0}}, &s128);
  RunConfig("4C32", {{17.6, 50.3, 29.2, 2.9}}, &c4);
  RunConfig("1C64S64", {{19.2, 50.1, 29.9, 0.8}}, &h1);

  std::printf("\nRelative total cycles (paper): 4C32/S128 = %.3f (1.249), "
              "1C64S64/S128 = %.3f (1.061)\n",
              c4 / s128, h1 / s128);
  return 0;
}
