// Reproduces Table 5: the hardware evaluation of all 15 register-file
// configurations -- per-bank access time and area, total area, logic depth
// (FO4), clock cycle, and the memory/FU latencies in cycles of each clock.
//
// Two blocks are printed: one from the analytic RF model end to end, and
// one with the published access/area values (kPaperTable) feeding the same
// FO4 clock and latency-scaling rules -- the latter reproduces the paper's
// clock and latency columns exactly (see tests/test_hwmodel.cpp).
#include <cstdio>

#include "bench_util.h"

using namespace hcrf;

namespace {

struct PaperRow {
  double access_c, access_s, area_total;
  int depth;
  double clock;
  int mem, fu;
};

constexpr PaperRow kPaper[] = {
    {0.0, 1.145, 14.91, 31, 1.181, 2, 4},   {0.0, 1.021, 12.20, 27, 1.037, 3, 4},
    {0.0, 0.685, 7.50, 18, 0.713, 3, 4},    {0.943, 0.485, 11.37, 25, 0.965, 3, 4},
    {0.666, 0.493, 8.12, 17, 0.677, 3, 4},  {0.686, 0.0, 7.98, 18, 0.713, 3, 4},
    {0.532, 0.0, 4.88, 13, 0.533, 4, 6},    {0.626, 0.493, 7.12, 16, 0.641, 3, 5},
    {0.515, 0.510, 5.83, 13, 0.533, 4, 6},  {0.531, 0.0, 5.21, 13, 0.533, 4, 6},
    {0.475, 0.0, 4.29, 12, 0.497, 4, 6},    {0.442, 0.456, 4.38, 11, 0.461, 4, 7},
    {0.393, 0.483, 4.49, 10, 0.425, 4, 7},  {0.400, 0.532, 5.84, 10, 0.425, 4, 7},
    {0.360, 0.532, 4.82, 9, 0.389, 5, 8},
};

void Block(hw::RFModelMode mode) {
  std::printf("%-9s %-5s  %-18s %-18s %-10s %-12s %-12s %-9s\n", "Config",
              "lp-sp", "accessC ns(paper)", "accessS ns(paper)",
              "area(per)", "depth(paper)", "clock(paper)", "Mem/FU(p)");
  int i = 0;
  for (const auto& pc : bench::kTable5Configs) {
    const PaperRow& p = kPaper[i++];
    MachineConfig m = MachineConfig::WithRF(RFConfig::Parse(pc.name));
    const hw::Characterization c = hw::Characterize(m, mode);
    std::printf(
        "%-9s %d-%d    %6.3f (%6.3f)    %6.3f (%6.3f)    %5.2f(%5.2f) "
        "%3d (%2d)      %.3f (%.3f) %d/%d (%d/%d)\n",
        pc.label, m.rf.clusters > 0 ? m.rf.lp : 0,
        m.rf.clusters > 0 ? m.rf.sp : 0, c.cluster_bank.access_ns, p.access_c,
        c.shared_bank.access_ns, p.access_s, c.total_area_mlambda2,
        p.area_total, c.logic_depth_fo4, p.depth, c.clock_ns, p.clock,
        c.lat.load_hit, c.lat.fadd, p.mem, p.fu);
  }
}

}  // namespace

int main() {
  std::printf("Table 5: hardware evaluation of the 15 RF configurations\n");
  std::printf("\n-- analytic RF model --\n");
  Block(hw::RFModelMode::kAnalytic);
  std::printf("\n-- published bank values + FO4/latency rules --\n");
  Block(hw::RFModelMode::kPaperTable);
  return 0;
}
