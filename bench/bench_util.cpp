#include "bench_util.h"

namespace hcrf::bench {

const workload::Suite& TheSuite() { return workload::SharedSyntheticSuite(); }

workload::Suite SuiteSlice(size_t n) {
  return workload::SuiteSlice(TheSuite(), n);
}

MachineConfig MakeMachine(const std::string& rf_name, bool characterize,
                          hw::RFModelMode mode) {
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse(rf_name));
  if (characterize && !m.rf.UnboundedClusterRegs() &&
      !m.rf.UnboundedSharedRegs()) {
    m = hw::ApplyCharacterization(m, mode);
  }
  return m;
}

}  // namespace hcrf::bench
