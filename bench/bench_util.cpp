#include "bench_util.h"

namespace hcrf::bench {

const workload::Suite& TheSuite() {
  static const workload::Suite suite = workload::PerfectSynthetic();
  return suite;
}

workload::Suite SuiteSlice(size_t n) {
  const workload::Suite& full = TheSuite();
  workload::Suite out;
  const size_t stride = std::max<size_t>(1, full.size() / n);
  for (size_t i = 0; i < full.size() && out.size() < n; i += stride) {
    out.Add(full[i]);
  }
  return out;
}

MachineConfig MakeMachine(const std::string& rf_name, bool characterize,
                          hw::RFModelMode mode) {
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse(rf_name));
  if (characterize && !m.rf.UnboundedClusterRegs() &&
      !m.rf.UnboundedSharedRegs()) {
    m = hw::ApplyCharacterization(m, mode);
  }
  return m;
}

}  // namespace hcrf::bench
