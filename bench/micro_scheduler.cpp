// Google-benchmark microbenchmarks of the scheduler stack: MirsHC
// end-to-end on the classic kernels for each organization family, plus the
// MII computation and pressure analysis building blocks.
#include <benchmark/benchmark.h>

#include "core/mirs.h"
#include "ddg/mii.h"
#include "hwmodel/characterize.h"
#include "sched/lifetime.h"
#include "workload/kernels.h"
#include "workload/perfect_synth.h"

using namespace hcrf;

namespace {

MachineConfig Machine(const char* rf) {
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse(rf));
  return hw::ApplyCharacterization(m, hw::RFModelMode::kPaperTable);
}

void BM_MirsHC_Daxpy(benchmark::State& state, const char* rf) {
  const workload::Loop loop = workload::MakeDaxpy();
  const MachineConfig m = Machine(rf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::MirsHC(loop.ddg, m));
  }
}
BENCHMARK_CAPTURE(BM_MirsHC_Daxpy, S128, "S128");
BENCHMARK_CAPTURE(BM_MirsHC_Daxpy, C4, "4C32/1-1");
BENCHMARK_CAPTURE(BM_MirsHC_Daxpy, H1, "1C32S64/4-2");
BENCHMARK_CAPTURE(BM_MirsHC_Daxpy, HC8, "8C16S16/1-1");

void BM_MirsHC_Hydro(benchmark::State& state, const char* rf) {
  const workload::Loop loop = workload::MakeHydro();
  const MachineConfig m = Machine(rf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::MirsHC(loop.ddg, m));
  }
}
BENCHMARK_CAPTURE(BM_MirsHC_Hydro, S128, "S128");
BENCHMARK_CAPTURE(BM_MirsHC_Hydro, HC4, "4C32S16/1-1");

void BM_MirsHC_SyntheticMix(benchmark::State& state) {
  workload::SynthParams p;
  p.num_loops = 32;
  const workload::Suite suite = workload::PerfectSynthetic(p);
  const MachineConfig m = Machine("4C16S16/2-1");
  for (auto _ : state) {
    for (const auto& loop : suite.loops()) {
      benchmark::DoNotOptimize(core::MirsHC(loop.ddg, m));
    }
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * 32);
}
BENCHMARK(BM_MirsHC_SyntheticMix)->Unit(benchmark::kMillisecond);

void BM_ComputeMII(benchmark::State& state) {
  const workload::Loop loop = workload::MakeNorm2();
  const MachineConfig m = MachineConfig::Baseline();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeMII(loop.ddg, m));
  }
}
BENCHMARK(BM_ComputeMII);

void BM_Pressure(benchmark::State& state) {
  const workload::Loop loop = workload::MakeCmul();
  const MachineConfig m = Machine("S128");
  const core::ScheduleResult sr = core::MirsHC(loop.ddg, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::ComputePressure(sr.graph, sr.schedule, m, sr.overrides));
  }
}
BENCHMARK(BM_Pressure);

}  // namespace

BENCHMARK_MAIN();
