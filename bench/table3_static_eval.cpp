// Reproduces Table 3: static evaluation of MIRS_HC with unlimited
// registers, with unlimited and limited communication bandwidth. Reports,
// per organization: percentage of loops scheduled at their MII, the
// accumulated II over the workbench, and the scheduler's running time.
//
// Paper reference (unlimited bw -> limited bw):
//   S(inf)        99.5% / 5261 / 27.9s
//   1C(inf)S(inf) 99.5% / 5555 -> 4-2: 99.4% / 5560
//   2C(inf)       98.7% / 5274 -> 1-1: 97.8% / 5283
//   2C(inf)S(inf) 98.6% / 5565 -> 3-1: 95.4% / 5623
//   4C(inf)       96.2% / 5324 -> 1-1: 92.4% / 5393
//   4C(inf)S(inf) 96.5% / 5604 -> 2-1: 96.3% / 5616
//   8C(inf)S(inf) 91.7% / 5748 -> 1-1: 90.7% / 5764
// Absolute Sigma-II differs (different workbench); the reproduced claims
// are the ~10% IPC degradation ceiling and the growth of scheduling time
// with RF complexity (up to an order of magnitude).
#include <cstdio>

#include "bench_util.h"

using namespace hcrf;

namespace {

struct Case {
  const char* unlimited;
  const char* limited;
  double paper_pct_u, paper_sii_u;
  double paper_pct_l, paper_sii_l;
};

constexpr Case kCases[] = {
    {"Sinf", nullptr, 99.5, 5261, 0, 0},
    {"1CinfSinf/inf-inf", "1CinfSinf/4-2", 99.5, 5555, 99.4, 5560},
    {"2Cinf/inf-inf", "2Cinf/1-1", 98.7, 5274, 97.8, 5283},
    {"2CinfSinf/inf-inf", "2CinfSinf/3-1", 98.6, 5565, 95.4, 5623},
    {"4Cinf/inf-inf", "4Cinf/1-1", 96.2, 5324, 92.4, 5393},
    {"4CinfSinf/inf-inf", "4CinfSinf/2-1", 96.5, 5604, 96.3, 5616},
    {"8CinfSinf/inf-inf", "8CinfSinf/1-1", 91.7, 5748, 90.7, 5764},
};

void Run(const char* name, double paper_pct, double paper_sii) {
  const MachineConfig m = bench::MakeMachine(name, /*characterize=*/false);
  const perf::SuiteMetrics sm = perf::RunSuite(bench::TheSuite(), m);
  std::printf("  %-20s %%MII %5.1f (paper %5.1f)   SigmaII %6ld (paper %4.0f)"
              "   sched %6.2fs   failed %d\n",
              name, sm.PctAtMII(), paper_pct, sm.sum_ii, paper_sii,
              sm.sched_seconds, sm.failed);
}

}  // namespace

int main() {
  std::printf("Table 3: static evaluation, unlimited registers, ideal "
              "memory\n\n-- unlimited communication bandwidth --\n");
  for (const Case& c : kCases) Run(c.unlimited, c.paper_pct_u, c.paper_sii_u);
  std::printf("\n-- limited communication bandwidth (paper's lp-sp) --\n");
  for (const Case& c : kCases) {
    if (c.limited != nullptr) Run(c.limited, c.paper_pct_l, c.paper_sii_l);
  }
  return 0;
}
