// Reproduces Figure 4: cumulative distribution of loops over the number of
// LoadR (lp) and StoreR (sp) ports per distributed bank they require on
// average, assuming unbounded inter-level bandwidth and an unbounded
// shared bank. This is the experiment behind the paper's port design rule
// (lp-sp = 4-2 / 3-1 / 2-1 / 1-1 for 1/2/4/8 clusters: >95% of loops not
// communication limited).
//
// Paper anchors: at 4 clusters, 87.2% of loops need lp<=1 and 99.3% need
// lp<=2; 97.3% need sp<=1.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/mirs.h"

using namespace hcrf;

namespace {

void RunClusterDegree(int x) {
  // Distributed bank sizes from Section 4: 32 registers for 1-2 clusters,
  // 16 for 4-8 (minimum for schedulability); unbounded here since Figure 4
  // assumes unbounded resources -- only port *demand* is measured.
  const std::string name = std::to_string(x) + "CinfSinf/inf-inf";
  const MachineConfig m = bench::MakeMachine(name, /*characterize=*/false);

  const workload::Suite& suite = bench::TheSuite();
  std::vector<double> lp_demand;
  std::vector<double> sp_demand;
  for (size_t i = 0; i < suite.size(); ++i) {
    const core::ScheduleResult sr = core::MirsHC(suite[i].ddg, m);
    if (!sr.ok) continue;
    lp_demand.push_back(static_cast<double>(sr.stats.loadr_ops) /
                        (static_cast<double>(sr.ii) * x));
    sp_demand.push_back(static_cast<double>(sr.stats.storer_ops) /
                        (static_cast<double>(sr.ii) * x));
  }

  auto cdf = [](std::vector<double>& v, double k) {
    const auto n = static_cast<double>(v.size());
    const auto c = std::count_if(v.begin(), v.end(),
                                 [k](double d) { return d <= k + 1e-9; });
    return 100.0 * static_cast<double>(c) / n;
  };

  std::printf("  %d cluster(s):  lp CDF:", x);
  for (int k = 0; k <= 4; ++k) std::printf(" <=%d:%5.1f%%", k, cdf(lp_demand, k));
  std::printf("\n                 sp CDF:");
  for (int k = 0; k <= 4; ++k) std::printf(" <=%d:%5.1f%%", k, cdf(sp_demand, k));
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Figure 4: CDF of per-bank LoadR/StoreR port demand "
              "(unbounded registers and bandwidth)\n");
  std::printf("Paper anchors: 4 clusters: lp<=1 87.2%%, lp<=2 99.3%%; sp<=1 "
              "97.3%%.\nDesign rule: smallest lp/sp covering >95%% of "
              "loops.\n\n");
  for (int x : {1, 2, 4, 8}) RunClusterDegree(x);
  return 0;
}
