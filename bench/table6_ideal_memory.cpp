// Reproduces Table 6: execution cycles, memory traffic and execution time
// (relative to the monolithic S64 baseline) of the 15 register-file
// configurations under an ideal memory system.
//
// Paper reference (ExeC x1e9, MemTrf x1e9, relative ExeT, speedup):
//   S128     11.06 17.54 1.085 0.921 | 2C64S32 12.87 17.54 0.685 1.460
//   S64      11.61 25.77 1.000 1.000 | 2C32S32 14.75 17.54 0.653 1.531
//   S32      17.72 33.27 1.049 0.953 | 4C64    13.74 17.54 0.608 1.645
//   1C64S32  12.05 17.54 0.966 1.035 | 4C32    13.77 21.45 0.568 1.761
//   1C32S64  14.05 17.54 0.790 1.266 | 4C32S16 14.76 17.54 0.565 1.770
//   2C64     11.60 18.30 0.687 1.456 | 4C16S16 16.91 17.54 0.597 1.675
//   2C32     16.01 28.89 0.709 1.410 | 8C32S16 14.60 17.54 0.515 1.942
//                                    | 8C16S16 15.84 17.54 0.511 1.957
// The reproduced claims: who wins (hierarchical-clustered 8-cluster
// designs fastest), the ~factor of speedups, and which configurations pay
// extra memory traffic (spill: S64, S32, 2C32, 4C32, 2C64 slightly).
#include <cstdio>

#include "bench_util.h"

using namespace hcrf;

namespace {

struct PaperRow {
  double exec, traffic, time_rel, speedup;
};

constexpr PaperRow kPaper[] = {
    {11.06, 17.54, 1.085, 0.921}, {11.61, 25.77, 1.000, 1.000},
    {17.72, 33.27, 1.049, 0.953}, {12.05, 17.54, 0.966, 1.035},
    {14.05, 17.54, 0.790, 1.266}, {11.60, 18.30, 0.687, 1.456},
    {16.01, 28.89, 0.709, 1.410}, {12.87, 17.54, 0.685, 1.460},
    {14.75, 17.54, 0.653, 1.531}, {13.74, 17.54, 0.608, 1.645},
    {13.77, 21.45, 0.568, 1.761}, {14.76, 17.54, 0.565, 1.770},
    {16.91, 17.54, 0.597, 1.675}, {14.60, 17.54, 0.515, 1.942},
    {15.84, 17.54, 0.511, 1.957},
};

}  // namespace

int main() {
  std::printf("Table 6: performance evaluation, ideal memory (relative to "
              "S64)\n\n");

  // Baseline first.
  const MachineConfig base = bench::MakeMachine("S64");
  const perf::SuiteMetrics base_sm = perf::RunSuite(bench::TheSuite(), base);
  const double base_time = base_sm.ExecTimeSeconds(base.clock_ns);

  std::printf("%-9s %-6s %-16s %-16s %-15s %-15s\n", "Config", "lp-sp",
              "ExeC rel(paper)", "MemTrf rel(papr)", "ExeT rel(paper)",
              "Speedup(paper)");
  int i = 0;
  for (const auto& pc : bench::kTable5Configs) {
    const PaperRow& p = kPaper[i++];
    const MachineConfig m = bench::MakeMachine(pc.name);
    const perf::SuiteMetrics sm = perf::RunSuite(bench::TheSuite(), m);
    const double time = sm.ExecTimeSeconds(m.clock_ns);
    const double cyc_rel = static_cast<double>(sm.ExecCycles()) /
                           static_cast<double>(base_sm.ExecCycles());
    const double trf_rel = static_cast<double>(sm.mem_traffic) /
                           static_cast<double>(base_sm.mem_traffic);
    std::printf("%-9s %d-%d    %6.3f (%6.3f)  %6.3f (%6.3f)  %6.3f (%6.3f) "
                " %6.3f (%6.3f)%s\n",
                pc.label, m.rf.clusters > 0 ? m.rf.lp : 0,
                m.rf.clusters > 0 ? m.rf.sp : 0, cyc_rel, p.exec / 11.61,
                trf_rel, p.traffic / 25.77, time / base_time,
                p.time_rel, base_time / time, p.speedup,
                sm.failed > 0 ? "  [FAILED LOOPS]" : "");
  }
  std::printf("\n(ExeC and MemTrf shown relative to S64; paper columns "
              "rescaled the same way.)\n");
  return 0;
}
