// Reproduces Figure 1: IPC achieved by the workbench as a function of the
// machine's resources (x functional units + y memory ports), monolithic
// register file with unbounded registers.
//
// Paper reference: the curve grows from about 4 IPC at 4+2 to about 8-9 at
// 12+6, passing 6.2 at the baseline 8+4 (efficiency > 0.5).
#include <cstdio>

#include "bench_util.h"

using namespace hcrf;

int main() {
  std::printf("Figure 1: IPC vs machine resources (monolithic RF, unbounded "
              "registers, ideal memory)\n\n");
  const int shapes[][2] = {{4, 2}, {6, 3}, {8, 4}, {10, 5}, {12, 6}};
  const double paper_ipc[] = {3.9, 5.1, 6.2, 7.2, 8.1};  // read off Figure 1
  std::printf("%-8s %-12s %-12s %s\n", "FUs+MP", "IPC", "paper~", "efficiency");
  int i = 0;
  for (const auto& s : shapes) {
    MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("Sinf"));
    m.num_fus = s[0];
    m.num_mem_ports = s[1];
    const perf::SuiteMetrics sm = perf::RunSuite(bench::TheSuite(), m);
    const double ipc = sm.IPC();
    std::printf("%d+%-6d %-12.2f %-12.1f %.2f\n", s[0], s[1], ipc,
                paper_ipc[i++], ipc / (s[0] + s[1]));
  }
  return 0;
}
