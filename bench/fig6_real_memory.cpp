// Reproduces Figure 6: real-memory evaluation with selective binding
// prefetching. For a representative subset of configurations the figure
// splits relative execution cycles and relative execution time into useful
// and stall components (all relative to the useful cycles / time of S64).
//
// Paper's qualitative claims reproduced here:
//  * the centralized organization executes the fewest cycles, but the
//    picture inverts once multiplied by the cycle time;
//  * every hierarchical-clustered organization beats monolithic S64
//    (best speedup about 1.46);
//  * at equal clustering degree the hierarchical organization tolerates
//    memory latency better than the pure clustered one (fewer stalls:
//    4C32S16 vs 4C32).
#include <cstdio>

#include "bench_util.h"

using namespace hcrf;

int main() {
  std::printf("Figure 6: real memory + selective binding prefetching "
              "(relative to S64 useful)\n\n");

  perf::RunOptions opt;
  opt.prefetch = memsim::PrefetchMode::kSelective;
  opt.simulate_memory = true;

  const MachineConfig base = bench::MakeMachine("S64");
  const perf::SuiteMetrics bm = perf::RunSuite(bench::TheSuite(), base, opt);
  const double base_cycles = static_cast<double>(bm.useful_cycles);
  const double base_time = base_cycles * base.clock_ns;

  const char* configs[] = {"S64",         "2C64/1-1",    "4C32/1-1",
                           "1C32S64/4-2", "2C32S32/3-1", "4C32S16/1-1",
                           "8C16S16/1-1"};

  std::printf("%-12s %-10s %-10s %-10s %-10s %-10s %s\n", "Config",
              "cyc usefl", "cyc stall", "time usfl", "time stll",
              "speedup", "(relative to S64 useful)");
  for (const char* name : configs) {
    const MachineConfig m = bench::MakeMachine(name);
    const perf::SuiteMetrics sm = perf::RunSuite(bench::TheSuite(), m, opt);
    const double cu = static_cast<double>(sm.useful_cycles) / base_cycles;
    const double cs = static_cast<double>(sm.stall_cycles) / base_cycles;
    const double tu = static_cast<double>(sm.useful_cycles) * m.clock_ns /
                      base_time;
    const double ts = static_cast<double>(sm.stall_cycles) * m.clock_ns /
                      base_time;
    const double base_total =
        static_cast<double>(bm.useful_cycles + bm.stall_cycles) *
        base.clock_ns;
    const double total =
        static_cast<double>(sm.useful_cycles + sm.stall_cycles) * m.clock_ns;
    std::printf("%-12s %-10.3f %-10.3f %-10.3f %-10.3f %-10.3f%s\n",
                RFConfig::Parse(name).ShortName().c_str(), cu, cs, tu, ts,
                base_total / total, sm.failed ? "  [FAILED LOOPS]" : "");
  }
  std::printf("\nPaper: best hierarchical-clustered speedup ~1.46 vs S64; "
              "4C32 ~1.39; hierarchical\nconfigurations show smaller stall "
              "fractions than equal-degree clustered ones.\n");
  return 0;
}
