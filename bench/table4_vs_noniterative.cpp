// Reproduces Table 4: MIRS_HC (iterative, with backtracking) against a
// non-iterative scheduler in the style of [36] (Zalamea et al., MICRO-33)
// on a hierarchical non-clustered register file. For each loop the two
// achieved IIs are compared; the table reports how many loops each
// scheduler wins and the accumulated II within each category.
//
// Paper reference:
//   [36] better:  15 loops, SigmaII 300 vs 319
//   equal:      1105 loops, 4302
//   MIRS_HC better: 138 loops, 1736 vs 1475
//   total SigmaII: 6338 ([36]) vs 6096 (MIRS_HC), i.e. MIRS_HC -242.
#include <cstdio>

#include "bench_util.h"

using namespace hcrf;

int main() {
  std::printf("Table 4: non-iterative [36]-style vs MIRS_HC, hierarchical "
              "non-clustered RF (1C32S64)\n\n");
  const MachineConfig m = bench::MakeMachine("1C32S64/4-2");

  perf::RunOptions iterative;
  perf::RunOptions noniter;
  noniter.mirs.iterative = false;

  const auto a = perf::RunSuiteDetailed(bench::TheSuite(), m, noniter);
  const auto b = perf::RunSuiteDetailed(bench::TheSuite(), m, iterative);

  long n_better = 0, n_equal = 0, n_worse = 0;
  long sii_nb_a = 0, sii_nb_b = 0;  // where non-iterative is better
  long sii_eq = 0;
  long sii_mb_a = 0, sii_mb_b = 0;  // where MIRS_HC is better
  long tot_a = 0, tot_b = 0;
  int failed_a = 0;

  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].ok || !b[i].ok) {
      if (!a[i].ok) ++failed_a;
      continue;
    }
    tot_a += a[i].ii;
    tot_b += b[i].ii;
    if (a[i].ii < b[i].ii) {
      ++n_better;
      sii_nb_a += a[i].ii;
      sii_nb_b += b[i].ii;
    } else if (a[i].ii == b[i].ii) {
      ++n_equal;
      sii_eq += a[i].ii;
    } else {
      ++n_worse;
      sii_mb_a += a[i].ii;
      sii_mb_b += b[i].ii;
    }
  }

  std::printf("%-28s %8s %10s %10s\n", "", "#loops", "SII[36]", "SII[HC]");
  std::printf("  [36] better than MIRS_HC  %8ld %10ld %10ld   (paper 15, "
              "300, 319)\n", n_better, sii_nb_a, sii_nb_b);
  std::printf("  equal                     %8ld %10ld %10ld   (paper 1105, "
              "4302)\n", n_equal, sii_eq, sii_eq);
  std::printf("  MIRS_HC better            %8ld %10ld %10ld   (paper 138, "
              "1736, 1475)\n", n_worse, sii_mb_a, sii_mb_b);
  std::printf("  total                     %8zu %10ld %10ld   (paper 1258, "
              "6338, 6096)\n", a.size(), tot_a, tot_b);
  std::printf("\nMIRS_HC reduces SigmaII by %ld (paper: 242); non-iterative "
              "failed on %d loops\n", tot_a - tot_b, failed_a);
  return 0;
}
