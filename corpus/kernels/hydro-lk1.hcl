hcl 1 loop
trip 990
invocations 1
name hydro-lk1
invariants 3
slots 9
node 0 load mem 0 0 8
node 1 load mem 1 80 8
node 2 load mem 1 88 8
node 3 fmul inv 1 1
node 4 fmul inv 1 2
node 5 fadd
node 6 fmul
node 7 fadd inv 1 0
node 8 store mem 2 0 8
edge 0 6 flow 0
edge 1 3 flow 0
edge 2 4 flow 0
edge 3 5 flow 0
edge 4 5 flow 0
edge 5 6 flow 0
edge 6 7 flow 0
edge 7 8 flow 0
end
