hcl 1 loop
trip 1000
invocations 1
name fir4
invariants 4
slots 12
node 0 load mem 0 0 8
node 1 load mem 0 8 8
node 2 load mem 0 16 8
node 3 load mem 0 24 8
node 4 fmul inv 1 0
node 5 fmul inv 1 1
node 6 fmul inv 1 2
node 7 fmul inv 1 3
node 8 fadd
node 9 fadd
node 10 fadd
node 11 store mem 1 0 8
edge 0 4 flow 0
edge 1 5 flow 0
edge 2 6 flow 0
edge 3 7 flow 0
edge 4 8 flow 0
edge 5 8 flow 0
edge 6 9 flow 0
edge 7 9 flow 0
edge 8 10 flow 0
edge 9 10 flow 0
edge 10 11 flow 0
end
