hcl 1 loop
trip 600
invocations 1
name horner
invariants 1
slots 3
node 0 load mem 0 0 8
node 1 fmul inv 1 0
node 2 fadd
edge 0 2 flow 0
edge 1 2 flow 0
edge 2 1 flow 1
end
