hcl 1 loop
trip 800
invocations 1
name cmul
invariants 0
slots 12
node 0 load mem 0 0 16
node 1 load mem 0 8 16
node 2 load mem 1 0 16
node 3 load mem 1 8 16
node 4 fmul
node 5 fmul
node 6 fmul
node 7 fmul
node 8 fadd
node 9 fadd
node 10 store mem 2 0 16
node 11 store mem 2 8 16
edge 0 4 flow 0
edge 0 6 flow 0
edge 1 5 flow 0
edge 1 7 flow 0
edge 2 4 flow 0
edge 2 7 flow 0
edge 3 5 flow 0
edge 3 6 flow 0
edge 4 8 flow 0
edge 5 8 flow 0
edge 6 9 flow 0
edge 7 9 flow 0
edge 8 10 flow 0
edge 9 11 flow 0
end
