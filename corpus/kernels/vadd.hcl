hcl 1 loop
trip 1000
invocations 1
name vadd
invariants 0
slots 4
node 0 load mem 0 0 8
node 1 load mem 1 0 8
node 2 fadd
node 3 store mem 2 0 8
edge 0 2 flow 0
edge 1 2 flow 0
edge 2 3 flow 0
end
