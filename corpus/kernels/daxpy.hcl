hcl 1 loop
trip 1000
invocations 1
name daxpy
invariants 1
slots 5
node 0 load mem 0 0 8
node 1 load mem 1 0 8
node 2 fmul inv 1 0
node 3 fadd
node 4 store mem 1 0 8
edge 0 2 flow 0
edge 1 3 flow 0
edge 2 3 flow 0
edge 3 4 flow 0
end
