hcl 1 loop
trip 1000
invocations 1
name stencil3
invariants 1
slots 7
node 0 load mem 0 -8 8
node 1 load mem 0 0 8
node 2 load mem 0 8 8
node 3 fadd
node 4 fadd
node 5 fmul inv 1 0
node 6 store mem 1 0 8
edge 0 3 flow 0
edge 1 3 flow 0
edge 2 4 flow 0
edge 3 4 flow 0
edge 4 5 flow 0
edge 5 6 flow 0
end
