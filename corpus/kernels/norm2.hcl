hcl 1 loop
trip 500
invocations 1
name norm2
invariants 0
slots 7
node 0 load mem 0 0 8
node 1 load mem 1 0 8
node 2 fmul
node 3 fmul
node 4 fadd
node 5 fsqrt
node 6 fadd
edge 0 2 flow 0
edge 0 2 flow 0
edge 1 3 flow 0
edge 1 3 flow 0
edge 2 4 flow 0
edge 3 4 flow 0
edge 4 5 flow 0
edge 5 6 flow 0
edge 6 6 flow 1
end
