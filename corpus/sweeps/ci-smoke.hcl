hcl 1 sweep
name ci-smoke
graph ../kernels/daxpy.hcl
graph ../kernels/dot.hcl
graph ../kernels/stencil3.hcl
rf S128
grid clusters 2 4
grid cluster_regs 16
grid shared_regs 64
characterize 1
end
