hcl 1 sweep
name paper-organizations
suite kernels
suite synth
rf S128
rf 4C32
rf 1C64S64
rf 2C32S64
rf 4C16S64
rf 8C8S64
characterize 1
end
