hcl 1 sweep
name kernel-paper-grid
suite kernels
rf S128
rf S64
rf S32
rf 1C64S32/3-2
rf 1C32S64/4-2
rf 2C64/1-1
rf 2C32/1-1
rf 2C64S32/2-1
rf 2C32S32/3-1
rf 4C64/1-1
rf 4C32/1-1
rf 4C32S16/1-1
rf 4C16S16/2-1
rf 8C32S16/1-1
rf 8C16S16/1-1
rf 4C16S64/2-1
characterize 1
end
