hcl 1 loop
trip 523
invocations 4
name synth-stream-0
invariants 5
slots 43
node 0 load mem 1 48 8
node 1 fadd
node 2 load mem 2 -16 8
node 3 fmul
node 4 store mem 3 0 8
node 5 load mem 0 96 8
node 6 fmul
node 7 load mem 3 56 8
node 8 fmul
node 9 store mem 4 0 1720
node 10 load mem 2 72 8
node 11 load mem 0 40 8
node 12 fadd inv 1 4
node 13 fadd
node 14 fadd
node 15 store mem 5 0 8
node 16 load mem 6 32 16
node 17 load mem 6 40 8
node 18 fadd
node 19 load mem 6 80 672
node 20 load mem 7 8 8
node 21 fadd
node 22 fmul
node 23 fmul
node 24 fadd
node 25 fmul
node 26 store mem 8 0 8
node 27 load mem 2 40 8
node 28 load mem 6 48 16
node 29 fmul
node 30 load mem 7 32 2192
node 31 fmul
node 32 fmul
node 33 store mem 9 0 3280
node 34 load mem 6 56 8
node 35 load mem 1 8 8
node 36 fadd
node 37 load mem 4 64 8
node 38 load mem 3 96 8
node 39 fmul inv 1 2
node 40 fadd
node 41 fmul
node 42 store mem 10 0 8
edge 0 1 flow 0
edge 1 3 flow 0
edge 2 3 flow 0
edge 3 4 flow 0
edge 3 25 flow 12
edge 5 6 flow 0
edge 6 8 flow 0
edge 7 8 flow 0
edge 8 9 flow 0
edge 8 23 flow 11
edge 8 24 flow 14
edge 10 13 flow 0
edge 11 12 flow 0
edge 12 13 flow 0
edge 13 14 flow 0
edge 14 15 flow 0
edge 16 18 flow 0
edge 17 18 flow 0
edge 18 22 flow 0
edge 19 21 flow 0
edge 20 21 flow 0
edge 21 22 flow 0
edge 22 23 flow 0
edge 23 24 flow 0
edge 24 25 flow 0
edge 25 26 flow 0
edge 25 32 flow 11
edge 27 29 flow 0
edge 28 29 flow 0
edge 29 31 flow 0
edge 30 31 flow 0
edge 31 32 flow 0
edge 32 33 flow 0
edge 34 36 flow 0
edge 35 36 flow 0
edge 36 41 flow 0
edge 37 40 flow 0
edge 38 39 flow 0
edge 39 40 flow 0
edge 40 41 flow 0
edge 41 42 flow 0
end
