hcl 1 loop
trip 27604
invocations 2
name synth-compute-14
invariants 1
slots 62
node 0 load mem 1 72 8
node 1 fmul inv 1 0
node 2 load mem 0 8 808
node 3 fadd
node 4 fdiv
node 5 load mem 0 72 2424
node 6 fadd inv 1 0
node 7 fmul
node 8 load mem 1 32 8
node 9 fadd
node 10 load mem 2 8 8
node 11 fadd
node 12 load mem 1 0 8
node 13 load mem 2 64 8
node 14 fmul
node 15 load mem 2 80 8
node 16 fadd
node 17 fadd
node 18 fadd
node 19 store mem 3 0 672
node 20 load mem 0 56 8
node 21 fmul
node 22 load mem 0 16 16
node 23 fmul
node 24 load mem 3 88 8
node 25 fadd inv 1 0
node 26 fadd
node 27 load mem 2 -16 8
node 28 fmul inv 1 0
node 29 fmul
node 30 fmul
node 31 fmul
node 32 fmul
node 33 fadd
node 34 fadd
node 35 fmul
node 36 fadd
node 37 fadd
node 38 fmul
node 39 store mem 4 0 2224
node 40 load mem 2 0 8
node 41 load mem 3 72 16
node 42 fmul
node 43 load mem 3 80 16
node 44 fadd inv 1 0
node 45 load mem 4 80 16
node 46 fadd
node 47 fadd
node 48 load mem 1 72 8
node 49 fadd
node 50 load mem 4 -16 4024
node 51 load mem 1 16 8
node 52 fmul inv 1 0
node 53 fadd inv 1 0
node 54 fadd
node 55 load mem 5 24 8
node 56 fadd
node 57 fadd
node 58 fmul
node 59 fadd
node 60 fadd
node 61 store mem 6 0 8
edge 0 1 flow 0
edge 1 3 flow 0
edge 2 3 flow 0
edge 3 4 flow 0
edge 4 7 flow 0
edge 5 6 flow 0
edge 6 7 flow 0
edge 7 18 flow 0
edge 8 9 flow 0
edge 9 11 flow 0
edge 10 11 flow 0
edge 11 17 flow 0
edge 12 14 flow 0
edge 13 14 flow 0
edge 14 16 flow 0
edge 15 16 flow 0
edge 16 17 flow 0
edge 17 18 flow 0
edge 18 19 flow 0
edge 18 30 flow 5
edge 18 31 flow 13
edge 18 32 flow 12
edge 18 33 flow 13
edge 18 34 flow 5
edge 18 35 flow 10
edge 18 36 flow 7
edge 18 37 flow 12
edge 18 38 flow 8
edge 20 21 flow 0
edge 21 23 flow 0
edge 22 23 flow 0
edge 23 26 flow 0
edge 24 25 flow 0
edge 25 26 flow 0
edge 26 29 flow 0
edge 27 28 flow 0
edge 28 29 flow 0
edge 29 30 flow 0
edge 30 31 flow 0
edge 31 32 flow 0
edge 32 33 flow 0
edge 33 34 flow 0
edge 34 35 flow 0
edge 35 36 flow 0
edge 36 37 flow 0
edge 37 38 flow 0
edge 38 39 flow 0
edge 38 59 flow 9
edge 38 60 flow 10
edge 40 42 flow 0
edge 41 42 flow 0
edge 42 47 flow 0
edge 43 44 flow 0
edge 44 46 flow 0
edge 45 46 flow 0
edge 46 47 flow 0
edge 47 49 flow 0
edge 48 49 flow 0
edge 49 58 flow 0
edge 50 54 flow 0
edge 51 52 flow 0
edge 52 53 flow 0
edge 53 54 flow 0
edge 54 56 flow 0
edge 55 56 flow 0
edge 56 57 flow 0
edge 57 58 flow 0
edge 58 59 flow 0
edge 59 60 flow 0
edge 60 61 flow 0
end
