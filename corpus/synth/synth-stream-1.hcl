hcl 1 loop
trip 3163
invocations 1
name synth-stream-1
invariants 5
slots 90
node 0 load mem 0 80 8
node 1 load mem 1 72 8
node 2 fmul
node 3 load mem 2 96 8
node 4 fmul
node 5 load mem 2 48 8
node 6 load mem 2 80 16
node 7 fadd
node 8 fmul
node 9 fmul
node 10 store mem 3 0 8
node 11 load mem 1 -8 8
node 12 load mem 0 16 8
node 13 fmul
node 14 load mem 2 88 888
node 15 fadd
node 16 load mem 0 40 8
node 17 fadd
node 18 fadd
node 19 fmul
node 20 store mem 4 0 8
node 21 load mem 1 -8 8
node 22 fmul
node 23 load mem 4 32 8
node 24 load mem 5 40 3856
node 25 fadd
node 26 fadd
node 27 load mem 2 96 8
node 28 fadd
node 29 fmul
node 30 fmul
node 31 fmul
node 32 fmul
node 33 store mem 6 0 8
node 34 load mem 5 16 8
node 35 load mem 4 24 8
node 36 fadd inv 1 1
node 37 fadd
node 38 load mem 5 80 888
node 39 fadd
node 40 load mem 7 -8 16
node 41 fadd
node 42 store mem 8 0 8
node 43 load mem 5 16 8
node 44 load mem 3 48 856
node 45 fmul
node 46 load mem 3 -16 1760
node 47 fmul inv 1 3
node 48 fadd
node 49 load mem 1 72 8
node 50 fmul
node 51 store mem 9 0 8
node 52 load mem 2 64 8
node 53 load mem 3 40 16
node 54 fmul
node 55 load mem 10 32 8
node 56 fadd
node 57 fmul
node 58 fadd
node 59 store mem 11 0 8
node 60 load mem 7 64 8
node 61 load mem 0 96 8
node 62 fmul
node 63 load mem 10 56 1152
node 64 fadd
node 65 load mem 0 32 8
node 66 load mem 2 0 8
node 67 fmul
node 68 load mem 8 24 8
node 69 fadd
node 70 fmul
node 71 fadd
node 72 fadd
node 73 fadd
node 74 fadd
node 75 fmul
node 76 fadd
node 77 fadd
node 78 store mem 12 0 8
node 79 load mem 8 24 16
node 80 load mem 10 40 8
node 81 fadd inv 1 1
node 82 fmul
node 83 load mem 6 -16 8
node 84 load mem 1 80 8
node 85 fadd
node 86 fmul
node 87 load mem 7 80 8
node 88 fadd
node 89 store mem 13 0 1280
edge 0 2 flow 0
edge 1 2 flow 0
edge 2 4 flow 0
edge 3 4 flow 0
edge 4 9 flow 0
edge 5 7 flow 0
edge 6 7 flow 0
edge 7 8 flow 0
edge 8 9 flow 0
edge 9 10 flow 0
edge 9 18 flow 10
edge 9 19 flow 13
edge 9 29 flow 10
edge 9 31 flow 10
edge 9 72 flow 12
edge 9 74 flow 11
edge 11 13 flow 0
edge 12 13 flow 0
edge 13 15 flow 0
edge 14 15 flow 0
edge 15 17 flow 0
edge 16 17 flow 0
edge 17 18 flow 0
edge 18 19 flow 0
edge 19 20 flow 0
edge 19 30 flow 8
edge 19 32 flow 13
edge 19 58 flow 10
edge 19 71 flow 7
edge 19 77 flow 9
edge 21 22 flow 0
edge 22 26 flow 0
edge 23 25 flow 0
edge 24 25 flow 0
edge 25 26 flow 0
edge 26 28 flow 0
edge 27 28 flow 0
edge 28 29 flow 0
edge 29 30 flow 0
edge 30 31 flow 0
edge 31 32 flow 0
edge 32 33 flow 0
edge 32 75 flow 14
edge 34 37 flow 0
edge 35 36 flow 0
edge 36 37 flow 0
edge 37 39 flow 0
edge 38 39 flow 0
edge 39 41 flow 0
edge 40 41 flow 0
edge 41 42 flow 0
edge 43 45 flow 0
edge 44 45 flow 0
edge 45 48 flow 0
edge 46 47 flow 0
edge 47 48 flow 0
edge 48 50 flow 0
edge 49 50 flow 0
edge 50 51 flow 0
edge 50 76 flow 7
edge 52 54 flow 0
edge 53 54 flow 0
edge 54 56 flow 0
edge 55 56 flow 0
edge 56 57 flow 0
edge 57 58 flow 0
edge 58 59 flow 0
edge 58 73 flow 7
edge 60 62 flow 0
edge 61 62 flow 0
edge 62 64 flow 0
edge 63 64 flow 0
edge 64 70 flow 0
edge 65 67 flow 0
edge 66 67 flow 0
edge 67 69 flow 0
edge 68 69 flow 0
edge 69 70 flow 0
edge 70 71 flow 0
edge 71 72 flow 0
edge 72 73 flow 0
edge 73 74 flow 0
edge 74 75 flow 0
edge 75 76 flow 0
edge 76 77 flow 0
edge 77 78 flow 0
edge 79 82 flow 0
edge 80 81 flow 0
edge 81 82 flow 0
edge 82 86 flow 0
edge 83 85 flow 0
edge 84 85 flow 0
edge 85 86 flow 0
edge 86 88 flow 0
edge 87 88 flow 0
edge 88 89 flow 0
end
