hcl 1 loop
trip 14311
invocations 1
name synth-compute-9
invariants 5
slots 32
node 0 load mem 0 8 8
node 1 load mem 1 0 8
node 2 fadd inv 1 3
node 3 fadd
node 4 load mem 1 24 1176
node 5 fmul inv 1 2
node 6 fmul
node 7 load mem 1 -8 8
node 8 fadd
node 9 fadd
node 10 store mem 2 0 1664
node 11 load mem 0 -8 8
node 12 load mem 1 24 8
node 13 fadd
node 14 load mem 3 56 8
node 15 fmul
node 16 load mem 2 40 8
node 17 load mem 4 72 3400
node 18 fadd inv 1 1
node 19 fadd
node 20 load mem 1 56 8
node 21 fadd
node 22 fadd
node 23 load mem 1 24 8
node 24 fsqrt
node 25 load mem 3 16 8
node 26 fmul inv 1 1
node 27 fmul
node 28 load mem 0 56 696
node 29 fmul
node 30 fmul
node 31 store mem 5 0 8
edge 0 3 flow 0
edge 1 2 flow 0
edge 2 3 flow 0
edge 3 6 flow 0
edge 4 5 flow 0
edge 5 6 flow 0
edge 6 8 flow 0
edge 7 8 flow 0
edge 8 9 flow 0
edge 9 10 flow 0
edge 11 13 flow 0
edge 12 13 flow 0
edge 13 15 flow 0
edge 14 15 flow 0
edge 15 22 flow 0
edge 16 19 flow 0
edge 17 18 flow 0
edge 18 19 flow 0
edge 19 21 flow 0
edge 20 21 flow 0
edge 21 22 flow 0
edge 22 30 flow 0
edge 23 24 flow 0
edge 24 27 flow 0
edge 25 26 flow 0
edge 26 27 flow 0
edge 27 29 flow 0
edge 28 29 flow 0
edge 29 30 flow 0
edge 30 31 flow 0
end
