hcl 1 loop
trip 694
invocations 6
name synth-stream-7
invariants 2
slots 34
node 0 load mem 0 -8 8
node 1 load mem 1 96 8
node 2 fadd
node 3 load mem 2 -16 8
node 4 fmul inv 1 0
node 5 fadd inv 1 1
node 6 fadd
node 7 store mem 3 0 8
node 8 load mem 3 32 1648
node 9 load mem 4 -16 8
node 10 fmul inv 1 0
node 11 fadd
node 12 load mem 4 72 8
node 13 fadd inv 1 0
node 14 load mem 3 72 8
node 15 fadd
node 16 fadd
node 17 fmul
node 18 store mem 5 0 8
node 19 load mem 2 24 8
node 20 load mem 1 -8 3056
node 21 fmul
node 22 load mem 3 16 8
node 23 load mem 0 0 8
node 24 fadd
node 25 fadd
node 26 store mem 6 0 8
node 27 load mem 1 80 16
node 28 fadd
node 29 load mem 0 64 8
node 30 load mem 5 96 8
node 31 fadd
node 32 fadd
node 33 store mem 7 0 8
edge 0 2 flow 0
edge 1 2 flow 0
edge 2 6 flow 0
edge 3 4 flow 0
edge 4 5 flow 0
edge 5 6 flow 0
edge 6 7 flow 0
edge 6 17 flow 10
edge 8 11 flow 0
edge 9 10 flow 0
edge 10 11 flow 0
edge 11 16 flow 0
edge 12 13 flow 0
edge 13 15 flow 0
edge 14 15 flow 0
edge 15 16 flow 0
edge 16 17 flow 0
edge 17 18 flow 0
edge 19 21 flow 0
edge 20 21 flow 0
edge 21 25 flow 0
edge 22 24 flow 0
edge 23 24 flow 0
edge 24 25 flow 0
edge 25 26 flow 0
edge 27 28 flow 0
edge 28 32 flow 0
edge 29 31 flow 0
edge 30 31 flow 0
edge 31 32 flow 0
edge 32 33 flow 0
end
