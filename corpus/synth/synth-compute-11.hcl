hcl 1 loop
trip 1619
invocations 2
name synth-compute-11
invariants 1
slots 34
node 0 load mem 1 0 8
node 1 load mem 0 88 8
node 2 fmul inv 1 0
node 3 fmul inv 1 0
node 4 fmul
node 5 load mem 0 72 8
node 6 fadd
node 7 load mem 0 72 16
node 8 fmul
node 9 load mem 0 -8 16
node 10 load mem 2 32 8
node 11 fadd
node 12 fadd
node 13 fmul
node 14 store mem 3 0 8
node 15 load mem 4 24 8
node 16 load mem 2 56 528
node 17 fadd
node 18 load mem 5 8 1040
node 19 fadd
node 20 fadd
node 21 store mem 6 0 16
node 22 load mem 0 88 8
node 23 load mem 4 56 1424
node 24 fadd
node 25 load mem 6 24 1320
node 26 fmul
node 27 load mem 7 32 1104
node 28 load mem 4 72 16
node 29 fmul
node 30 load mem 2 24 8
node 31 fmul
node 32 fadd
node 33 store mem 8 0 8
edge 0 4 flow 0
edge 1 2 flow 0
edge 2 3 flow 0
edge 3 4 flow 0
edge 4 6 flow 0
edge 5 6 flow 0
edge 6 13 flow 0
edge 7 8 flow 0
edge 8 12 flow 0
edge 9 11 flow 0
edge 10 11 flow 0
edge 11 12 flow 0
edge 12 13 flow 0
edge 13 14 flow 0
edge 15 17 flow 0
edge 16 17 flow 0
edge 17 19 flow 0
edge 18 19 flow 0
edge 19 20 flow 0
edge 20 21 flow 0
edge 22 24 flow 0
edge 23 24 flow 0
edge 24 26 flow 0
edge 25 26 flow 0
edge 26 32 flow 0
edge 27 29 flow 0
edge 28 29 flow 0
edge 29 31 flow 0
edge 30 31 flow 0
edge 31 32 flow 0
edge 32 33 flow 0
end
