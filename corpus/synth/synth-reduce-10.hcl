hcl 1 loop
trip 177
invocations 1
name synth-reduce-10
invariants 4
slots 64
node 0 load mem 1 88 8
node 1 load mem 1 80 552
node 2 fmul inv 1 1
node 3 fmul
node 4 fadd
node 5 load mem 0 72 8
node 6 load mem 0 16 8
node 7 fadd inv 1 2
node 8 fmul inv 1 0
node 9 fadd
node 10 load mem 2 -16 8
node 11 load mem 2 16 680
node 12 fadd
node 13 fmul
node 14 fmul
node 15 fadd
node 16 load mem 1 56 16
node 17 load mem 3 56 16
node 18 fmul inv 1 2
node 19 fadd
node 20 load mem 0 24 8
node 21 fadd inv 1 1
node 22 fadd inv 1 1
node 23 fmul inv 1 3
node 24 load mem 1 88 896
node 25 fmul
node 26 fmul
node 27 load mem 1 32 8
node 28 fadd
node 29 fadd
node 30 load mem 3 16 8
node 31 load mem 2 56 8
node 32 fmul
node 33 load mem 1 96 8
node 34 fmul
node 35 load mem 2 80 8
node 36 load mem 4 0 8
node 37 fadd
node 38 load mem 4 32 8
node 39 fmul
node 40 fmul
node 41 fmul
node 42 load mem 3 24 8
node 43 load mem 2 -16 16
node 44 fmul
node 45 load mem 4 48 8
node 46 fmul
node 47 load mem 1 56 1584
node 48 fadd
node 49 fadd
node 50 load mem 2 72 8
node 51 fmul
node 52 load mem 5 56 8
node 53 fadd
node 54 load mem 3 40 8
node 55 load mem 5 40 8
node 56 fadd
node 57 load mem 6 32 8
node 58 fmul
node 59 fadd
node 60 fadd
node 61 fmul
node 62 fmul
node 63 fmul
edge 0 3 flow 0
edge 1 2 flow 0
edge 2 3 flow 0
edge 3 4 flow 0
edge 4 14 flow 0
edge 5 9 flow 0
edge 6 7 flow 0
edge 7 8 flow 0
edge 8 9 flow 0
edge 9 13 flow 0
edge 10 12 flow 0
edge 11 12 flow 0
edge 12 13 flow 0
edge 13 14 flow 0
edge 14 15 flow 0
edge 14 61 flow 13
edge 14 62 flow 5
edge 15 15 flow 1
edge 16 19 flow 0
edge 17 18 flow 0
edge 18 19 flow 0
edge 19 26 flow 0
edge 20 21 flow 0
edge 21 22 flow 0
edge 22 23 flow 0
edge 23 25 flow 0
edge 24 25 flow 0
edge 25 26 flow 0
edge 26 28 flow 0
edge 27 28 flow 0
edge 28 29 flow 0
edge 29 29 flow 1
edge 30 32 flow 0
edge 31 32 flow 0
edge 32 34 flow 0
edge 33 34 flow 0
edge 34 40 flow 0
edge 35 37 flow 0
edge 36 37 flow 0
edge 37 39 flow 0
edge 38 39 flow 0
edge 39 40 flow 0
edge 40 41 flow 0
edge 40 60 flow 5
edge 41 41 flow 1
edge 42 44 flow 0
edge 43 44 flow 0
edge 44 46 flow 0
edge 45 46 flow 0
edge 46 48 flow 0
edge 47 48 flow 0
edge 48 49 flow 0
edge 49 49 flow 1
edge 50 51 flow 0
edge 51 53 flow 0
edge 52 53 flow 0
edge 53 59 flow 0
edge 54 56 flow 0
edge 55 56 flow 0
edge 56 58 flow 0
edge 57 58 flow 0
edge 58 59 flow 0
edge 59 60 flow 0
edge 60 61 flow 0
edge 61 62 flow 0
edge 62 63 flow 0
edge 63 63 flow 1
end
