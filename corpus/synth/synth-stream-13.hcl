hcl 1 loop
trip 295
invocations 1
name synth-stream-13
invariants 4
slots 118
node 0 load mem 3 16 8
node 1 fmul inv 1 3
node 2 fdiv
node 3 load mem 1 48 8
node 4 fadd
node 5 load mem 0 48 8
node 6 fadd inv 1 3
node 7 fadd
node 8 load mem 3 32 720
node 9 fadd
node 10 fmul
node 11 store mem 4 0 8
node 12 load mem 3 96 16
node 13 fmul
node 14 load mem 2 8 3488
node 15 load mem 2 0 8
node 16 fadd inv 1 2
node 17 fadd
node 18 fadd
node 19 load mem 2 56 16
node 20 load mem 0 80 16
node 21 fadd
node 22 load mem 0 32 16
node 23 fmul
node 24 fadd
node 25 fmul
node 26 store mem 5 0 8
node 27 load mem 1 56 1816
node 28 load mem 6 88 8
node 29 fadd
node 30 load mem 6 -16 8
node 31 load mem 3 -8 8
node 32 fadd
node 33 fadd
node 34 load mem 1 0 8
node 35 load mem 3 80 8
node 36 fadd
node 37 load mem 5 -8 8
node 38 fmul
node 39 fmul
node 40 fadd
node 41 store mem 7 0 3816
node 42 load mem 7 -8 744
node 43 fmul
node 44 load mem 1 16 8
node 45 fmul
node 46 load mem 7 16 8
node 47 load mem 8 88 8
node 48 fmul
node 49 load mem 0 48 8
node 50 fmul
node 51 fadd
node 52 fadd
node 53 fmul
node 54 store mem 9 0 16
node 55 load mem 4 24 8
node 56 fmul inv 1 2
node 57 load mem 3 48 8
node 58 fadd
node 59 load mem 6 72 8
node 60 fmul
node 61 load mem 4 56 1400
node 62 fadd inv 1 3
node 63 fmul inv 1 2
node 64 fmul
node 65 fmul
node 66 store mem 10 0 8
node 67 load mem 9 96 8
node 68 load mem 2 64 8
node 69 fadd
node 70 load mem 5 24 8
node 71 fadd
node 72 fmul
node 73 load mem 4 56 8
node 74 fadd
node 75 fadd
node 76 store mem 11 0 3360
node 77 load mem 3 -16 8
node 78 fdiv
node 79 load mem 6 96 8
node 80 load mem 11 -16 16
node 81 fmul
node 82 fadd
node 83 fadd
node 84 fmul
node 85 fmul
node 86 store mem 12 0 8
node 87 load mem 4 48 8
node 88 load mem 13 24 8
node 89 fmul
node 90 fdiv
node 91 load mem 7 72 8
node 92 load mem 13 -16 8
node 93 fadd
node 94 load mem 11 64 8
node 95 load mem 0 96 16
node 96 fadd
node 97 fmul
node 98 fadd
node 99 store mem 14 0 16
node 100 load mem 12 72 528
node 101 load mem 3 40 8
node 102 fadd
node 103 fmul
node 104 fadd
node 105 fadd
node 106 store mem 15 0 8
node 107 load mem 0 80 8
node 108 load mem 11 64 3048
node 109 fadd
node 110 load mem 9 56 8
node 111 fadd inv 1 0
node 112 fadd
node 113 load mem 8 -8 8
node 114 fadd inv 1 2
node 115 fmul
node 116 fadd
node 117 store mem 16 0 2088
edge 0 1 flow 0
edge 1 2 flow 0
edge 2 4 flow 0
edge 3 4 flow 0
edge 4 10 flow 0
edge 5 6 flow 0
edge 6 7 flow 0
edge 7 9 flow 0
edge 8 9 flow 0
edge 9 10 flow 0
edge 10 11 flow 0
edge 10 25 flow 12
edge 10 84 flow 12
edge 12 13 flow 0
edge 13 18 flow 0
edge 14 17 flow 0
edge 15 16 flow 0
edge 16 17 flow 0
edge 17 18 flow 0
edge 18 24 flow 0
edge 19 21 flow 0
edge 20 21 flow 0
edge 21 23 flow 0
edge 22 23 flow 0
edge 23 24 flow 0
edge 24 25 flow 0
edge 25 26 flow 0
edge 25 40 flow 7
edge 25 52 flow 12
edge 25 53 flow 6
edge 25 75 flow 6
edge 27 29 flow 0
edge 28 29 flow 0
edge 29 33 flow 0
edge 30 32 flow 0
edge 31 32 flow 0
edge 32 33 flow 0
edge 33 39 flow 0
edge 34 36 flow 0
edge 35 36 flow 0
edge 36 38 flow 0
edge 37 38 flow 0
edge 38 39 flow 0
edge 39 40 flow 0
edge 40 41 flow 0
edge 42 43 flow 0
edge 43 45 flow 0
edge 44 45 flow 0
edge 45 51 flow 0
edge 46 48 flow 0
edge 47 48 flow 0
edge 48 50 flow 0
edge 49 50 flow 0
edge 50 51 flow 0
edge 51 52 flow 0
edge 52 53 flow 0
edge 53 54 flow 0
edge 53 65 flow 6
edge 53 85 flow 6
edge 55 56 flow 0
edge 56 58 flow 0
edge 57 58 flow 0
edge 58 60 flow 0
edge 59 60 flow 0
edge 60 64 flow 0
edge 61 62 flow 0
edge 62 63 flow 0
edge 63 64 flow 0
edge 64 65 flow 0
edge 65 66 flow 0
edge 67 69 flow 0
edge 68 69 flow 0
edge 69 72 flow 0
edge 70 71 flow 0
edge 71 72 flow 0
edge 72 74 flow 0
edge 73 74 flow 0
edge 74 75 flow 0
edge 75 76 flow 0
edge 75 105 flow 9
edge 77 78 flow 0
edge 78 82 flow 0
edge 79 81 flow 0
edge 80 81 flow 0
edge 81 82 flow 0
edge 82 83 flow 0
edge 83 84 flow 0
edge 84 85 flow 0
edge 85 86 flow 0
edge 87 89 flow 0
edge 88 89 flow 0
edge 89 90 flow 0
edge 90 98 flow 0
edge 91 93 flow 0
edge 92 93 flow 0
edge 93 97 flow 0
edge 94 96 flow 0
edge 95 96 flow 0
edge 96 97 flow 0
edge 97 98 flow 0
edge 98 99 flow 0
edge 98 116 flow 14
edge 100 102 flow 0
edge 101 102 flow 0
edge 102 103 flow 0
edge 103 104 flow 0
edge 104 105 flow 0
edge 105 106 flow 0
edge 107 109 flow 0
edge 108 109 flow 0
edge 109 112 flow 0
edge 110 111 flow 0
edge 111 112 flow 0
edge 112 115 flow 0
edge 113 114 flow 0
edge 114 115 flow 0
edge 115 116 flow 0
edge 116 117 flow 0
end
