hcl 1 loop
trip 153
invocations 1
name synth-reduce-15
invariants 2
slots 13
node 0 load mem 2 72 8
node 1 load mem 1 32 8
node 2 fadd
node 3 load mem 0 80 8
node 4 fmul
node 5 fadd
node 6 load mem 0 64 8
node 7 fmul inv 1 1
node 8 load mem 0 40 8
node 9 fadd
node 10 load mem 3 24 8
node 11 fadd
node 12 fadd
edge 0 2 flow 0
edge 1 2 flow 0
edge 2 4 flow 0
edge 3 4 flow 0
edge 4 5 flow 0
edge 5 5 flow 1
edge 6 7 flow 0
edge 7 9 flow 0
edge 8 9 flow 0
edge 9 11 flow 0
edge 10 11 flow 0
edge 11 12 flow 0
edge 12 12 flow 1
end
