hcl 1 loop
trip 15951
invocations 1
name synth-compute-8
invariants 4
slots 26
node 0 load mem 2 8 16
node 1 load mem 3 -8 8
node 2 fmul
node 3 load mem 4 24 8
node 4 fdiv
node 5 fmul
node 6 load mem 1 -8 8
node 7 fadd
node 8 load mem 1 80 848
node 9 load mem 2 -8 16
node 10 fmul
node 11 load mem 3 0 3144
node 12 fadd
node 13 fmul
node 14 load mem 3 -8 8
node 15 load mem 2 24 8
node 16 fadd
node 17 load mem 3 40 8
node 18 fadd inv 1 2
node 19 load mem 2 24 8
node 20 fmul inv 1 3
node 21 fmul
node 22 fadd
node 23 fadd
node 24 fadd
node 25 store mem 5 0 1112
edge 0 2 flow 0
edge 1 2 flow 0
edge 2 5 flow 0
edge 3 4 flow 0
edge 4 5 flow 0
edge 5 7 flow 0
edge 6 7 flow 0
edge 7 24 flow 0
edge 8 10 flow 0
edge 9 10 flow 0
edge 10 13 flow 0
edge 11 12 flow 0
edge 12 13 flow 0
edge 13 23 flow 0
edge 14 16 flow 0
edge 15 16 flow 0
edge 16 22 flow 0
edge 17 18 flow 0
edge 18 21 flow 0
edge 19 20 flow 0
edge 20 21 flow 0
edge 21 22 flow 0
edge 22 23 flow 0
edge 23 24 flow 0
edge 24 25 flow 0
end
