hcl 1 loop
trip 166
invocations 4
name synth-reduce-6
invariants 0
slots 17
node 0 load mem 0 -16 664
node 1 load mem 1 8 8
node 2 fadd
node 3 fadd
node 4 load mem 0 24 16
node 5 load mem 3 96 3024
node 6 fadd
node 7 fadd
node 8 fadd
node 9 load mem 2 8 16
node 10 load mem 2 40 8
node 11 fmul
node 12 fmul
node 13 fadd
node 14 fmul
node 15 fmul
node 16 fmul
edge 0 2 flow 0
edge 1 2 flow 0
edge 2 3 flow 0
edge 2 7 flow 5
edge 2 13 flow 13
edge 2 14 flow 7
edge 2 15 flow 5
edge 3 3 flow 1
edge 4 6 flow 0
edge 5 6 flow 0
edge 6 7 flow 0
edge 7 8 flow 0
edge 7 12 flow 7
edge 8 8 flow 1
edge 9 11 flow 0
edge 10 11 flow 0
edge 11 12 flow 0
edge 12 13 flow 0
edge 13 14 flow 0
edge 14 15 flow 0
edge 15 16 flow 0
edge 16 16 flow 2
end
