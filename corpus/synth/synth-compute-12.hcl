hcl 1 loop
trip 37594
invocations 3
name synth-compute-12
invariants 5
slots 4
node 0 load mem 0 88 16
node 1 fsqrt
node 2 fdiv
node 3 store mem 2 0 8
edge 0 1 flow 0
edge 1 2 flow 0
edge 2 3 flow 0
end
