hcl 1 loop
trip 202
invocations 5
name synth-reduce-3
invariants 4
slots 21
node 0 load mem 1 72 656
node 1 load mem 0 72 8
node 2 fadd
node 3 fmul
node 4 load mem 3 24 8
node 5 load mem 2 16 8
node 6 fmul
node 7 fadd
node 8 load mem 0 80 16
node 9 fadd
node 10 fmul
node 11 fmul
node 12 fmul
node 13 load mem 3 88 8
node 14 fadd
node 15 fmul
node 16 fadd
node 17 load mem 3 64 8
node 18 load mem 2 56 8
node 19 fadd
node 20 fmul
edge 0 2 flow 0
edge 1 2 flow 0
edge 2 3 flow 0
edge 2 11 flow 8
edge 3 3 flow 2
edge 4 6 flow 0
edge 5 6 flow 0
edge 6 7 flow 0
edge 6 10 flow 10
edge 6 15 flow 12
edge 7 7 flow 1
edge 8 9 flow 0
edge 9 10 flow 0
edge 10 11 flow 0
edge 11 12 flow 0
edge 12 12 flow 2
edge 13 14 flow 0
edge 14 15 flow 0
edge 15 16 flow 0
edge 16 16 flow 1
edge 17 19 flow 0
edge 18 19 flow 0
edge 19 20 flow 0
edge 20 20 flow 2
end
