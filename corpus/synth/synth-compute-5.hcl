hcl 1 loop
trip 7899
invocations 2
name synth-compute-5
invariants 4
slots 36
node 0 load mem 1 -16 2080
node 1 load mem 2 80 8
node 2 fmul inv 1 2
node 3 fadd
node 4 load mem 3 56 8
node 5 fadd
node 6 load mem 1 96 8
node 7 fadd
node 8 load mem 2 96 1936
node 9 fadd
node 10 fadd
node 11 store mem 4 0 8
node 12 load mem 5 0 8
node 13 fadd
node 14 load mem 6 32 16
node 15 fadd
node 16 fadd
node 17 load mem 0 72 8
node 18 load mem 7 -16 8
node 19 fadd
node 20 fadd
node 21 fadd
node 22 fmul
node 23 fmul
node 24 store mem 8 0 8
node 25 load mem 0 80 16
node 26 load mem 5 32 16
node 27 fadd
node 28 fdiv
node 29 load mem 0 -16 8
node 30 load mem 6 0 8
node 31 fmul
node 32 load mem 2 80 8
node 33 fadd
node 34 fadd
node 35 store mem 9 0 8
edge 0 3 flow 0
edge 1 2 flow 0
edge 2 3 flow 0
edge 3 5 flow 0
edge 4 5 flow 0
edge 5 10 flow 0
edge 6 7 flow 0
edge 7 9 flow 0
edge 8 9 flow 0
edge 9 10 flow 0
edge 10 11 flow 0
edge 10 22 flow 11
edge 10 23 flow 11
edge 12 13 flow 0
edge 13 16 flow 0
edge 14 15 flow 0
edge 15 16 flow 0
edge 16 21 flow 0
edge 17 19 flow 0
edge 18 19 flow 0
edge 19 20 flow 0
edge 20 21 flow 0
edge 21 22 flow 0
edge 22 23 flow 0
edge 23 24 flow 0
edge 25 27 flow 0
edge 26 27 flow 0
edge 27 28 flow 0
edge 28 34 flow 0
edge 29 31 flow 0
edge 30 31 flow 0
edge 31 33 flow 0
edge 32 33 flow 0
edge 33 34 flow 0
edge 34 35 flow 0
end
