hcl 1 loop
trip 3062
invocations 1
name synth-stream-4
invariants 5
slots 80
node 0 load mem 3 -16 8
node 1 fmul
node 2 load mem 1 24 8
node 3 fadd inv 1 3
node 4 fadd
node 5 store mem 4 0 8
node 6 load mem 3 8 8
node 7 load mem 5 -16 8
node 8 fadd
node 9 load mem 2 88 8
node 10 load mem 0 80 8
node 11 fmul
node 12 fadd
node 13 fadd
node 14 store mem 6 0 8
node 15 load mem 5 48 8
node 16 load mem 7 -16 8
node 17 fadd
node 18 load mem 6 -16 16
node 19 fmul
node 20 fmul
node 21 store mem 8 0 8
node 22 load mem 3 16 8
node 23 fadd inv 1 4
node 24 load mem 9 32 1304
node 25 fadd
node 26 load mem 5 64 16
node 27 fadd
node 28 fadd
node 29 fadd
node 30 store mem 10 0 8
node 31 load mem 4 0 16
node 32 load mem 7 88 16
node 33 fadd
node 34 fadd
node 35 fadd
node 36 store mem 11 0 1096
node 37 load mem 10 0 8
node 38 load mem 11 -8 16
node 39 fadd
node 40 load mem 2 64 8
node 41 fmul
node 42 store mem 12 0 8
node 43 load mem 0 -16 8
node 44 fmul
node 45 fdiv
node 46 fadd
node 47 store mem 13 0 736
node 48 load mem 5 40 16
node 49 load mem 9 80 8
node 50 fadd
node 51 load mem 12 72 1024
node 52 fadd
node 53 fmul
node 54 fmul
node 55 fadd
node 56 fadd
node 57 fmul
node 58 store mem 14 0 8
node 59 load mem 13 32 3608
node 60 load mem 8 56 8
node 61 fadd
node 62 load mem 0 64 8
node 63 load mem 0 0 8
node 64 fadd
node 65 fadd
node 66 fadd
node 67 fadd
node 68 fmul
node 69 fmul
node 70 fmul
node 71 fadd
node 72 store mem 15 0 8
node 73 load mem 2 64 8
node 74 fmul
node 75 load mem 8 -8 8
node 76 load mem 6 40 16
node 77 fmul
node 78 fadd
node 79 store mem 16 0 8
edge 0 1 flow 0
edge 1 4 flow 0
edge 2 3 flow 0
edge 3 4 flow 0
edge 4 5 flow 0
edge 4 13 flow 14
edge 4 20 flow 9
edge 4 29 flow 6
edge 6 8 flow 0
edge 7 8 flow 0
edge 8 12 flow 0
edge 9 11 flow 0
edge 10 11 flow 0
edge 11 12 flow 0
edge 12 13 flow 0
edge 13 14 flow 0
edge 15 17 flow 0
edge 16 17 flow 0
edge 17 19 flow 0
edge 18 19 flow 0
edge 19 20 flow 0
edge 20 21 flow 0
edge 20 28 flow 6
edge 20 46 flow 8
edge 20 54 flow 12
edge 20 66 flow 13
edge 20 67 flow 5
edge 22 23 flow 0
edge 23 25 flow 0
edge 24 25 flow 0
edge 25 27 flow 0
edge 26 27 flow 0
edge 27 28 flow 0
edge 28 29 flow 0
edge 29 30 flow 0
edge 29 35 flow 12
edge 29 53 flow 10
edge 31 33 flow 0
edge 32 33 flow 0
edge 33 34 flow 0
edge 34 35 flow 0
edge 35 36 flow 0
edge 35 55 flow 13
edge 35 56 flow 12
edge 35 69 flow 13
edge 37 39 flow 0
edge 38 39 flow 0
edge 39 41 flow 0
edge 40 41 flow 0
edge 41 42 flow 0
edge 41 70 flow 8
edge 43 44 flow 0
edge 44 45 flow 0
edge 45 46 flow 0
edge 46 47 flow 0
edge 46 57 flow 12
edge 46 68 flow 7
edge 46 71 flow 5
edge 48 50 flow 0
edge 49 50 flow 0
edge 50 52 flow 0
edge 51 52 flow 0
edge 52 53 flow 0
edge 53 54 flow 0
edge 54 55 flow 0
edge 55 56 flow 0
edge 56 57 flow 0
edge 57 58 flow 0
edge 59 61 flow 0
edge 60 61 flow 0
edge 61 65 flow 0
edge 62 64 flow 0
edge 63 64 flow 0
edge 64 65 flow 0
edge 65 66 flow 0
edge 66 67 flow 0
edge 67 68 flow 0
edge 68 69 flow 0
edge 69 70 flow 0
edge 70 71 flow 0
edge 71 72 flow 0
edge 73 74 flow 0
edge 74 78 flow 0
edge 75 77 flow 0
edge 76 77 flow 0
edge 77 78 flow 0
edge 78 79 flow 0
end
