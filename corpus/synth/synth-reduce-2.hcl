hcl 1 loop
trip 968
invocations 1
name synth-reduce-2
invariants 3
slots 6
node 0 load mem 1 88 1128
node 1 fdiv
node 2 fadd
node 3 load mem 2 0 8
node 4 fmul
node 5 fmul
edge 0 1 flow 0
edge 1 2 flow 0
edge 2 2 flow 1
edge 3 4 flow 0
edge 4 5 flow 0
edge 5 5 flow 1
end
