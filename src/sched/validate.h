// Ground-truth checker for modulo schedules. Every schedule accepted by a
// scheduler in this library must pass Validate; the test suite enforces
// this across the whole workload and all RF organizations.
//
// Checked invariants:
//  1. Dependences: cycle(src) + latency(e) <= cycle(dst) + distance(e)*II
//     for every alive edge.
//  2. Resources: rebuilding a modulo reservation table from scratch admits
//     every placement (FUs, memory ports, lp/sp transfer ports, buses,
//     unpipelined occupancy).
//  3. Bank consistency: for every flow edge the producer's value lives in
//     the bank the consumer reads from (communication ops must have been
//     inserted wherever the organization requires them).
//  4. Capacity: MaxLive of every bank does not exceed its register count.
//  5. Completeness: every alive node is scheduled and every node's cluster
//     index is within range.
#pragma once

#include <string>

#include "ddg/ddg.h"
#include "machine/machine_config.h"
#include "sched/lifetime.h"
#include "sched/schedule.h"

namespace hcrf::sched {

struct ValidationResult {
  bool ok = true;
  std::string error;  ///< First violated invariant, human readable.
};

ValidationResult Validate(const DDG& g, const PartialSchedule& sched,
                          const MachineConfig& m,
                          const LatencyOverrides& overrides = {});

}  // namespace hcrf::sched
