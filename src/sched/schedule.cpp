#include "sched/schedule.h"

#include <algorithm>
#include <limits>

namespace hcrf::sched {

int PartialSchedule::MinCycle() const {
  int m = std::numeric_limits<int>::max();
  for (const Placement& p : slots_) {
    if (p.scheduled) m = std::min(m, p.cycle);
  }
  return m == std::numeric_limits<int>::max() ? 0 : m;
}

int PartialSchedule::MaxCycle() const {
  int m = std::numeric_limits<int>::min();
  for (const Placement& p : slots_) {
    if (p.scheduled) m = std::max(m, p.cycle);
  }
  return m == std::numeric_limits<int>::min() ? 0 : m;
}

int PartialSchedule::StageCount() const {
  if (num_scheduled_ == 0) return 1;
  const int min_cycle = MinCycle();
  const int max_cycle = MaxCycle();
  // Normalize the minimum into [0, II) and count spanned stages.
  const int base = min_cycle - (((min_cycle % ii_) + ii_) % ii_);
  return (max_cycle - base) / ii_ + 1;
}

void PartialSchedule::Normalize() {
  if (num_scheduled_ == 0) return;
  const int min_cycle = MinCycle();
  const int shift = ((min_cycle % ii_) + ii_) % ii_ - min_cycle;
  if (shift == 0) return;
  for (Placement& p : slots_) {
    if (p.scheduled) p.cycle += shift;
  }
}

}  // namespace hcrf::sched
