// VLIW code generation from a complete modulo schedule: kernel table
// (II rows, one column per issue resource), register assignment with
// modulo-renaming copies elided (we assume rotating register files as in
// the Cydra-5/HP-PlayDoh lineage the paper builds on), and prologue /
// epilogue stage counts.
//
// The emitted text is assembly-like, intended for the examples and for
// debugging schedulers; it is not bit-exact machine code.
#pragma once

#include <string>

#include "ddg/ddg.h"
#include "machine/machine_config.h"
#include "sched/schedule.h"

namespace hcrf::sched {

struct CodegenStats {
  int ii = 0;
  int stage_count = 0;
  int kernel_ops = 0;
  int prologue_stages = 0;  ///< SC - 1 filling stages.
  int code_size_ops = 0;    ///< kernel + prologue + epilogue op slots.
};

/// Renders the kernel as text. One line per kernel row; each scheduled
/// operation is shown as  op%id [cl<cluster>] (stage s).
std::string RenderKernel(const DDG& g, const PartialSchedule& sched,
                         const MachineConfig& m);

/// Summary statistics used by the examples and by code-size accounting.
CodegenStats ComputeCodegenStats(const DDG& g, const PartialSchedule& sched);

}  // namespace hcrf::sched
