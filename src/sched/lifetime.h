// Register-pressure analysis of a (partial) modulo schedule.
//
// A value defined by node u is live from its issue cycle (the destination
// register is reserved when the operation issues -- there is no renaming
// in a VLIW) until its last scheduled read (max over flow consumers v of
// cycle(v) + distance * II). MaxLive of a bank is the maximum number of
// simultaneously live values mapped to it over one kernel iteration,
// counting the extra copies required by lifetimes longer than II.
//
// Loop invariants pin one register in every cluster bank from which they
// are read directly, plus one in the shared bank of hierarchical and
// monolithic organizations (the master copy; paper Section 5.1).
#pragma once

#include <vector>

#include "core/check.h"
#include "ddg/ddg.h"
#include "machine/machine_config.h"
#include "sched/banks.h"
#include "sched/schedule.h"

namespace hcrf::sched {

/// Lifetime of one value in one bank, used for spill-candidate ranking.
struct ValueLifetime {
  NodeId def = kNoNode;
  BankId bank = kSharedBank;
  int start = 0;  ///< Issue cycle of the producer.
  int end = 0;    ///< Last read cycle (>= start); empty when end == start.
  int uses = 0;   ///< Scheduled flow consumers.
  /// Registers this lifetime occupies at its widest kernel row.
  int Length() const { return end - start; }
};

struct PressureReport {
  /// MaxLive per cluster bank (size = number of clusters; empty for
  /// monolithic organizations).
  std::vector<int> cluster_maxlive;
  /// MaxLive of the shared bank (0 if the organization has none).
  int shared_maxlive = 0;
  /// All value lifetimes with a scheduled producer.
  std::vector<ValueLifetime> values;

  int MaxLiveOf(BankId bank) const {
    if (bank == kSharedBank) return shared_maxlive;
    // Monolithic organizations have no cluster banks (cluster_maxlive is
    // empty); an unchecked index here was out-of-bounds UB.
    HCRF_CHECK(bank >= 0 &&
                   static_cast<size_t>(bank) < cluster_maxlive.size(),
               "MaxLiveOf(%d): organization has %zu cluster bank(s)", bank,
               cluster_maxlive.size());
    return cluster_maxlive[static_cast<size_t>(bank)];
  }
};

/// Per-load override of the flow latency used when the scheduler applies
/// binding prefetching (loads scheduled with miss latency). Empty = none.
struct LatencyOverrides {
  /// For node ids < size(): if >0, the producer latency to use for flow
  /// edges out of that node.
  std::vector<int> producer_latency;

  int For(NodeId n, int fallback) const {
    if (static_cast<size_t>(n) < producer_latency.size() &&
        producer_latency[static_cast<size_t>(n)] > 0) {
      return producer_latency[static_cast<size_t>(n)];
    }
    return fallback;
  }
};

/// Latency of the value produced by `src` as seen by consumers.
int ProducerLatency(const DDG& g, NodeId src, const LatencyTable& lat,
                    const LatencyOverrides& overrides);

/// Dependence latency of edge `e` (flow edges honour overrides).
int DependenceLatency(const DDG& g, const Edge& e, const LatencyTable& lat,
                      const LatencyOverrides& overrides);

/// Computes bank pressure for the scheduled subset of `g`.
PressureReport ComputePressure(const DDG& g, const PartialSchedule& sched,
                               const MachineConfig& m,
                               const LatencyOverrides& overrides = {});

}  // namespace hcrf::sched
