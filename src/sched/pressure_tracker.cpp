#include "sched/pressure_tracker.h"

#include <algorithm>

#include "core/check.h"

namespace hcrf::sched {

PressureTracker::~PressureTracker() { Detach(); }

void PressureTracker::Attach(DDG& g, const PartialSchedule& sched,
                             const MachineConfig& m,
                             const LatencyOverrides& overrides) {
  Detach();
  g_ = &g;
  sched_ = &sched;
  m_ = &m;
  overrides_ = &overrides;
  ii_ = sched.ii();
  has_shared_ = m.rf.HasSharedBank();

  // Re-zero in place (Attach runs once per II attempt; reusing the buffers
  // keeps the attempt loop free of vector-of-vector reallocation).
  const size_t banks = static_cast<size_t>(m.rf.clusters) + 1;
  rows_.resize(banks);
  for (auto& r : rows_) r.assign(static_cast<size_t>(ii_), 0);
  uniform_.assign(banks, 0);
  pinned_.assign(banks, 0);
  row_max_.assign(banks, 0);
  row_dirty_.assign(banks, 0);

  const size_t slots = static_cast<size_t>(g.NumSlots());
  contrib_.assign(slots, Contribution{});
  node_dirty_.assign(slots, 0);
  dirty_nodes_.clear();
  if (inv_reads_.size() < slots) inv_reads_.resize(slots);
  for (InvReads& snap : inv_reads_) {
    snap.bank_index = -1;
    snap.invs.clear();
  }
  inv_bank_readers_.resize(static_cast<size_t>(g.num_invariants()));
  for (auto& r : inv_bank_readers_) r.assign(banks, 0);
  inv_any_readers_.assign(static_cast<size_t>(g.num_invariants()), 0);

  g.SetListener(this);

  // Fold in anything already scheduled (a fresh attempt has nothing, but
  // Attach makes no assumption).
  for (NodeId u = 0; u < g.NumSlots(); ++u) {
    if (!g.IsAlive(u) || !sched.IsScheduled(u)) continue;
    Refresh(u);
    AddInvariantReads(u);
  }
}

void PressureTracker::Detach() {
  if (g_ != nullptr && g_->listener() == this) g_->SetListener(nullptr);
  g_ = nullptr;
  sched_ = nullptr;
  m_ = nullptr;
  overrides_ = nullptr;
}

void PressureTracker::GrowSlots(NodeId u) {
  contrib_.resize(static_cast<size_t>(u) + 1);
  node_dirty_.resize(contrib_.size(), 0);
  if (inv_reads_.size() < contrib_.size()) inv_reads_.resize(contrib_.size());
}

void PressureTracker::AddContribution(const Contribution& c, int sign) {
  const size_t b = static_cast<size_t>(c.bank_index);
  const int len = c.end - c.start;
  if (len <= 0) return;
  uniform_[b] += sign * static_cast<long>(len / ii_);
  const int rem = len % ii_;
  if (rem > 0) {
    auto& rows = rows_[b];
    for (int cyc = c.start; cyc < c.start + rem; ++cyc) {
      rows[RowOf(cyc)] += sign;
    }
    row_dirty_[b] = 1;
  }
}

void PressureTracker::Refresh(NodeId u) {
  EnsureSlot(u);
  Contribution& c = contrib_[static_cast<size_t>(u)];
  if (c.active) {
    AddContribution(c, -1);
    c.active = false;
  }
  if (!g_->IsAlive(u) || !sched_->IsScheduled(u)) return;
  const Node& n = g_->node(u);
  if (!DefinesValue(n.op)) return;

  const RFConfig& rf = m_->rf;
  const BankId bank = DefBank(n.op, sched_->ClusterOf(u), rf);
  // Mirrors ComputePressure: hierarchical shared-bank values are deposited
  // on arrival (writeback decoupling), first-level values at issue.
  int start = sched_->CycleOf(u);
  if (bank == kSharedBank && rf.IsHierarchical()) {
    start += ProducerLatency(*g_, u, m_->lat, *overrides_);
  }
  int end = start;
  int uses = 0;
  for (const Edge& e : g_->OutEdges(u)) {
    if (e.kind != DepKind::kFlow || !sched_->IsScheduled(e.dst)) continue;
    ++uses;
    end = std::max(end, sched_->CycleOf(e.dst) + e.distance * ii_);
  }
  c.start = start;
  c.end = end;
  c.uses = uses;
  c.bank_index = static_cast<int>(BankIndex(bank));
  c.active = true;
  AddContribution(c, +1);
}

void PressureTracker::MarkPlacementDirty(NodeId u) {
  MarkDirty(u);
  for (const Edge& e : g_->InEdges(u)) {
    if (e.kind == DepKind::kFlow && e.src != u) MarkDirty(e.src);
  }
}

void PressureTracker::FlushDirty() {
  for (size_t i = 0; i < dirty_nodes_.size(); ++i) {
    const NodeId u = dirty_nodes_[i];
    node_dirty_[static_cast<size_t>(u)] = 0;
    Refresh(u);
  }
  dirty_nodes_.clear();
}

void PressureTracker::OnPlaced(NodeId u) {
  if (!attached()) return;
  MarkPlacementDirty(u);
  AddInvariantReads(u);
}

void PressureTracker::OnUnplaced(NodeId u) {
  if (!attached()) return;
  MarkPlacementDirty(u);
  RemoveInvariantReads(u);
}

void PressureTracker::OnFlowEdgeAdded(const Edge& e) { MarkDirty(e.src); }

void PressureTracker::OnFlowEdgeRemoved(const Edge& e) { MarkDirty(e.src); }

void PressureTracker::OnNodeRemoved(NodeId v) {
  // The dead node's contribution is dropped at the next flush (Refresh on
  // a tombstone subtracts and deactivates); its detached producer edges
  // were notified individually by RemoveNode.
  MarkDirty(v);
  RemoveInvariantReads(v);
}

void PressureTracker::BumpInvariant(std::int32_t inv, size_t bank_index,
                                    int delta) {
  if (static_cast<size_t>(inv) >= inv_any_readers_.size()) return;
  int& bank_readers = inv_bank_readers_[static_cast<size_t>(inv)][bank_index];
  const int was_bank = bank_readers;
  bank_readers += delta;
  int& any = inv_any_readers_[static_cast<size_t>(inv)];
  const int was_any = any;
  any += delta;

  // A cluster bank (or the shared bank of an organization without the
  // master-copy rule, which cannot occur today) is pinned while it has a
  // direct reader; the shared master copy is pinned while the invariant
  // has any reader at all.
  if (bank_index != 0 || !has_shared_) {
    if (was_bank == 0 && bank_readers > 0) ++pinned_[bank_index];
    if (was_bank > 0 && bank_readers == 0) --pinned_[bank_index];
  }
  if (has_shared_) {
    if (was_any == 0 && any > 0) ++pinned_[0];
    if (was_any > 0 && any == 0) --pinned_[0];
  }
}

void PressureTracker::AddInvariantReads(NodeId u) {
  EnsureSlot(u);
  const Node& n = g_->node(u);
  if (n.invariant_uses.empty()) return;
  InvReads& snap = inv_reads_[static_cast<size_t>(u)];
  snap.bank_index = static_cast<int>(
      BankIndex(ReadBank(n.op, sched_->ClusterOf(u), m_->rf)));
  snap.invs.assign(n.invariant_uses.begin(), n.invariant_uses.end());
  for (std::int32_t inv : snap.invs) {
    BumpInvariant(inv, static_cast<size_t>(snap.bank_index), +1);
  }
}

void PressureTracker::RemoveInvariantReads(NodeId u) {
  EnsureSlot(u);
  InvReads& snap = inv_reads_[static_cast<size_t>(u)];
  if (snap.bank_index < 0) return;
  for (std::int32_t inv : snap.invs) {
    BumpInvariant(inv, static_cast<size_t>(snap.bank_index), -1);
  }
  snap.bank_index = -1;
  snap.invs.clear();
}

void PressureTracker::ResyncInvariantReads(NodeId u) {
  if (!attached()) return;
  RemoveInvariantReads(u);
  if (g_->IsAlive(u) && sched_->IsScheduled(u)) AddInvariantReads(u);
}

int PressureTracker::MaxLive(BankId bank) {
  FlushDirty();
  const size_t b = BankIndex(bank);
  HCRF_CHECK(b < rows_.size(),
             "PressureTracker::MaxLive: bank %d outside the %zu banks of "
             "the attached organization",
             bank, rows_.size());
  if (row_dirty_[b]) {
    row_max_[b] = *std::max_element(rows_[b].begin(), rows_[b].end());
    row_dirty_[b] = 0;
  }
  return static_cast<int>(row_max_[b] + uniform_[b] +
                          static_cast<long>(pinned_[b]));
}

PressureReport PressureTracker::Report() {
  FlushDirty();
  PressureReport report;
  report.cluster_maxlive.resize(static_cast<size_t>(m_->rf.clusters));
  for (int c = 0; c < m_->rf.clusters; ++c) {
    report.cluster_maxlive[static_cast<size_t>(c)] = MaxLive(c);
  }
  report.shared_maxlive = MaxLive(kSharedBank);
  // contrib_ is active exactly for the nodes ComputePressure emits a
  // ValueLifetime for, and slots are id-ordered, so the list comes out in
  // the reference order.
  const NodeId slots = g_->NumSlots();
  for (NodeId u = 0; u < slots && static_cast<size_t>(u) < contrib_.size();
       ++u) {
    const Contribution& c = contrib_[static_cast<size_t>(u)];
    if (!c.active) continue;
    report.values.push_back(
        ValueLifetime{u, BankOf(c.bank_index), c.start, c.end, c.uses});
  }
  return report;
}

void PressureTracker::CrossValidate(const char* where) {
  HCRF_CHECK(attached(), "PressureTracker::CrossValidate(%s): not attached",
             where);
  const PressureReport pr = ComputePressure(*g_, *sched_, *m_, *overrides_);
  const PressureReport got = Report();
  HCRF_CHECK(got.shared_maxlive == pr.shared_maxlive,
             "incremental pressure tracker diverged at %s: shared bank "
             "MaxLive %d, ComputePressure says %d (graph '%s', II=%d)",
             where, got.shared_maxlive, pr.shared_maxlive, g_->name().c_str(),
             ii_);
  for (int c = 0; c < m_->rf.clusters; ++c) {
    HCRF_CHECK(got.cluster_maxlive[static_cast<size_t>(c)] ==
                   pr.cluster_maxlive[static_cast<size_t>(c)],
               "incremental pressure tracker diverged at %s: cluster %d "
               "MaxLive %d, ComputePressure says %d (graph '%s', II=%d)",
               where, c, got.cluster_maxlive[static_cast<size_t>(c)],
               pr.cluster_maxlive[static_cast<size_t>(c)], g_->name().c_str(),
               ii_);
  }
  HCRF_CHECK(got.values.size() == pr.values.size(),
             "incremental pressure tracker diverged at %s: %zu tracked "
             "value lifetimes, ComputePressure says %zu (graph '%s', II=%d)",
             where, got.values.size(), pr.values.size(), g_->name().c_str(),
             ii_);
  for (size_t i = 0; i < got.values.size(); ++i) {
    const ValueLifetime& a = got.values[i];
    const ValueLifetime& b = pr.values[i];
    HCRF_CHECK(a.def == b.def && a.bank == b.bank && a.start == b.start &&
                   a.end == b.end && a.uses == b.uses,
               "incremental pressure tracker diverged at %s: value %zu is "
               "def %d bank %d [%d,%d) uses %d, ComputePressure says def %d "
               "bank %d [%d,%d) uses %d (graph '%s', II=%d)",
               where, i, a.def, a.bank, a.start, a.end, a.uses, b.def, b.bank,
               b.start, b.end, b.uses, g_->name().c_str(), ii_);
  }
}

}  // namespace hcrf::sched
