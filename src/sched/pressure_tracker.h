// Incremental register-pressure tracker: maintains per-bank MaxLive of a
// partial modulo schedule under place / eject / spill / edge-rewrite
// deltas, so the spill engine's capacity checks are O(1)-amortized instead
// of rerunning ComputePressure (O(nodes + edges + II)) over all values.
//
// Invariant mirrored from lifetime.cpp::ComputePressure: the pressure of a
// bank at kernel row r is
//
//     sum over values v in the bank of   floor(len(v)/II)
//                                      + [r in the len(v) mod II rows after
//                                         start(v)]
//   + one register per loop invariant read from the bank (plus the shared
//     master copy in organizations with a shared bank),
//
// and MaxLive is the maximum over rows. The tracker splits this into three
// per-bank components it can update independently:
//   rows_[b][r]   the distance-dependent `len mod II` part,
//   uniform_[b]   whole-kernel registers (the floor(len/II) wraps),
//   pinned_[b]    invariant pins,
// so MaxLive(b) = max_r rows_[b][r] + uniform_[b] + pinned_[b], with the
// row maximum cached per bank and recomputed lazily (O(II)) when rows
// changed.
//
// A value's lifetime depends only on its producer's placement and the
// placements of its flow consumers, so every mutation invalidates a known
// set of nodes: the node itself plus its flow producers for placement
// changes, the edge's producer for edge rewires. Mutations only *mark*
// those nodes dirty (O(1) amortized per event); the queries re-derive each
// dirty node's contribution once (subtract cached, recompute from the
// graph, add back). This lazy coalescing is what makes the force-and-eject
// churn cheap: a node placed and ejected five times between two capacity
// checks is refreshed once, not ten times.
//
// Placement deltas arrive through SchedState's tracked Assign/Unplace;
// graph deltas (communication chains, spill reroutes, tombstoning) arrive
// through the DdgListener hooks; invariant-use edits (the spill engine
// un-pins invariants) arrive through ResyncInvariantReads and are applied
// eagerly (they are O(uses) counter bumps).
//
// CrossValidate() recomputes the ground truth with ComputePressure and
// HCRF_CHECKs both agree; the spill engine runs it in debug builds (and
// when HCRF_CHECK_PRESSURE is set) on every capacity check.
#pragma once

#include <vector>

#include "ddg/ddg.h"
#include "machine/machine_config.h"
#include "sched/banks.h"
#include "sched/lifetime.h"
#include "sched/schedule.h"

namespace hcrf::sched {

class PressureTracker final : public DdgListener {
 public:
  PressureTracker() = default;
  ~PressureTracker() override;

  // Non-copyable: installed as a graph listener by address.
  PressureTracker(const PressureTracker&) = delete;
  PressureTracker& operator=(const PressureTracker&) = delete;

  /// Starts tracking a fresh attempt: clears all state, sizes the per-bank
  /// rows for `sched.ii()`, installs itself as `g`'s mutation listener and
  /// folds in everything already scheduled (normally nothing). All four
  /// references must outlive the tracker or the next Attach/Detach.
  void Attach(DDG& g, const PartialSchedule& sched, const MachineConfig& m,
              const LatencyOverrides& overrides);

  /// Stops tracking and uninstalls the graph listener. Safe to call when
  /// already detached. Must be called before the tracked graph or schedule
  /// is moved away / destroyed.
  void Detach();

  bool attached() const { return g_ != nullptr; }

  /// Placement deltas (call after PartialSchedule::Assign / Unassign).
  void OnPlaced(NodeId u);
  void OnUnplaced(NodeId u);

  /// Re-derives `u`'s invariant-read pins after its Node::invariant_uses
  /// was edited in place (the spill engine's invariant un-pinning).
  void ResyncInvariantReads(NodeId u);

  // DdgListener.
  void OnFlowEdgeAdded(const Edge& e) override;
  void OnFlowEdgeRemoved(const Edge& e) override;
  void OnNodeRemoved(NodeId v) override;

  /// Current MaxLive of a bank (kSharedBank or a cluster index), equal to
  /// ComputePressure().MaxLiveOf(bank) at all times. Amortized O(1) per
  /// mutation; a query pays O(dirty nodes) + O(II) for banks whose rows
  /// changed since the last query.
  int MaxLive(BankId bank);

  /// Materializes the full PressureReport (per-bank MaxLive plus the
  /// ValueLifetime list the spill policy ranks) from tracked state: O(live
  /// values), no edge walk. Field-for-field equal to ComputePressure() —
  /// the spill engine's slow path feeds it to the victim policies, so the
  /// decisions match the reference path's exactly.
  PressureReport Report();

  /// Recomputes the ground truth with ComputePressure and HCRF_CHECKs that
  /// every bank and every value lifetime agrees; `where` names the call
  /// site in the failure message.
  void CrossValidate(const char* where);

 private:
  /// One value's currently-added pressure contribution (bank/start/end/uses
  /// mirror the ValueLifetime ComputePressure would emit for the node).
  struct Contribution {
    int start = 0;
    int end = 0;
    int uses = 0;
    int bank_index = 0;
    bool active = false;
  };
  /// One node's currently-added invariant pins (bank < 0 = none).
  struct InvReads {
    int bank_index = -1;
    std::vector<std::int32_t> invs;
  };

  size_t BankIndex(BankId bank) const {
    return static_cast<size_t>(bank == kSharedBank ? 0 : bank + 1);
  }
  BankId BankOf(int bank_index) const {
    return bank_index == 0 ? kSharedBank : bank_index - 1;
  }
  size_t RowOf(int cycle) const {
    const int r = cycle % ii_;
    return static_cast<size_t>(r < 0 ? r + ii_ : r);
  }
  void EnsureSlot(NodeId u) {
    if (static_cast<size_t>(u) >= contrib_.size()) GrowSlots(u);
  }
  void GrowSlots(NodeId u);

  void MarkDirty(NodeId u) {
    EnsureSlot(u);
    if (!node_dirty_[static_cast<size_t>(u)]) {
      node_dirty_[static_cast<size_t>(u)] = 1;
      dirty_nodes_.push_back(u);
    }
  }
  /// Marks `u` and its flow producers (whose lifetimes read from u's
  /// placement) dirty — the invalidation set of a placement change.
  void MarkPlacementDirty(NodeId u);
  /// Re-derives every dirty node's contribution.
  void FlushDirty();

  /// Subtract-recompute-add of one node's value contribution.
  void Refresh(NodeId u);
  void AddContribution(const Contribution& c, int sign);

  void AddInvariantReads(NodeId u);
  void RemoveInvariantReads(NodeId u);
  void BumpInvariant(std::int32_t inv, size_t bank_index, int delta);

  DDG* g_ = nullptr;
  const PartialSchedule* sched_ = nullptr;
  const MachineConfig* m_ = nullptr;
  const LatencyOverrides* overrides_ = nullptr;
  int ii_ = 1;
  bool has_shared_ = false;

  std::vector<std::vector<long>> rows_;  // [bank_index][row]
  std::vector<long> uniform_;            // [bank_index]
  std::vector<int> pinned_;              // [bank_index]
  std::vector<long> row_max_;            // [bank_index], cached
  std::vector<char> row_dirty_;          // [bank_index]

  std::vector<Contribution> contrib_;  // [node]
  std::vector<char> node_dirty_;       // [node]
  std::vector<NodeId> dirty_nodes_;    // marked, not yet refreshed
  std::vector<InvReads> inv_reads_;    // [node]
  std::vector<std::vector<int>> inv_bank_readers_;  // [inv][bank_index]
  std::vector<int> inv_any_readers_;                // [inv]
};

}  // namespace hcrf::sched
