// Partial (and, when complete, final) modulo schedule: per-node issue cycle
// and cluster assignment at a fixed II.
//
// Cycles are absolute (possibly negative during construction); the kernel
// row of a node is `cycle mod II` and its stage is `floor(cycle / II)`
// after normalization. The stage count SC of a complete schedule is the
// number of II-cycle stages spanned by the loop body.
#pragma once

#include <vector>

#include "ddg/ddg.h"

namespace hcrf::sched {

struct Placement {
  int cycle = 0;
  int cluster = 0;      ///< 0 for monolithic organizations.
  int src_cluster = 0;  ///< Move only: the bus-drive side.
  bool scheduled = false;
};

class PartialSchedule {
 public:
  explicit PartialSchedule(int ii) : ii_(ii) {}

  /// Empties the schedule for a fresh attempt at a new II, keeping the
  /// slot buffer's capacity.
  void Reset(int ii) {
    slots_.clear();
    ii_ = ii;
    num_scheduled_ = 0;
  }

  int ii() const { return ii_; }

  void Assign(NodeId node, Placement p) {
    Ensure(node);
    p.scheduled = true;
    slots_[static_cast<size_t>(node)] = p;
    ++num_scheduled_;
  }
  void Unassign(NodeId node) {
    if (!IsScheduled(node)) return;
    slots_[static_cast<size_t>(node)].scheduled = false;
    --num_scheduled_;
  }

  bool IsScheduled(NodeId node) const {
    return static_cast<size_t>(node) < slots_.size() &&
           slots_[static_cast<size_t>(node)].scheduled;
  }
  const Placement& Of(NodeId node) const {
    return slots_[static_cast<size_t>(node)];
  }
  int CycleOf(NodeId node) const { return Of(node).cycle; }
  int ClusterOf(NodeId node) const { return Of(node).cluster; }
  int NumScheduled() const { return num_scheduled_; }

  /// Minimum cycle over scheduled nodes (0 when empty).
  int MinCycle() const;
  /// Maximum *issue* cycle over scheduled nodes (0 when empty).
  int MaxCycle() const;

  /// Stage count: number of kernel stages of the loop body. The paper's
  /// execution-cycle estimate is II*(N + (SC-1)*E).
  int StageCount() const;

  /// Shifts all cycles so the minimum cycle lands in [0, II).
  void Normalize();

 private:
  void Ensure(NodeId node) {
    if (static_cast<size_t>(node) >= slots_.size()) {
      slots_.resize(static_cast<size_t>(node) + 1);
    }
  }
  std::vector<Placement> slots_;
  int ii_;
  int num_scheduled_ = 0;
};

}  // namespace hcrf::sched
