#include "sched/codegen.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

namespace hcrf::sched {

std::string RenderKernel(const DDG& g, const PartialSchedule& sched,
                         const MachineConfig& m) {
  const int ii = sched.ii();
  // Normalized copy for stable stage numbering.
  PartialSchedule norm = sched;
  norm.Normalize();

  std::map<int, std::vector<std::string>> rows;
  for (NodeId v = 0; v < g.NumSlots(); ++v) {
    if (!g.IsAlive(v)) continue;
    const Placement& p = norm.Of(v);
    const int row = ((p.cycle % ii) + ii) % ii;
    const int stage = p.cycle / ii;
    std::ostringstream op;
    op << ToString(g.node(v).op) << "%" << v;
    if (m.NumClusters() > 1) op << " [cl" << p.cluster << "]";
    op << " (s" << stage << ")";
    rows[row].push_back(op.str());
  }

  std::ostringstream out;
  out << "; kernel II=" << ii << " SC=" << norm.StageCount() << "\n";
  for (int r = 0; r < ii; ++r) {
    out << "  cycle " << r << ": ";
    auto it = rows.find(r);
    if (it == rows.end()) {
      out << "nop\n";
      continue;
    }
    std::sort(it->second.begin(), it->second.end());
    for (size_t i = 0; i < it->second.size(); ++i) {
      if (i > 0) out << " || ";
      out << it->second[i];
    }
    out << "\n";
  }
  return out.str();
}

CodegenStats ComputeCodegenStats(const DDG& g, const PartialSchedule& sched) {
  CodegenStats s;
  s.ii = sched.ii();
  s.stage_count = sched.StageCount();
  s.kernel_ops = g.NumNodes();
  s.prologue_stages = s.stage_count - 1;
  // Prologue: stages fill one at a time; epilogue drains symmetrically. A
  // software-pipelined loop with SC stages replicates on average half the
  // kernel in each of prologue and epilogue.
  s.code_size_ops =
      s.kernel_ops + (s.stage_count - 1) * s.kernel_ops;  // prologue+epilogue
  return s;
}

}  // namespace hcrf::sched
