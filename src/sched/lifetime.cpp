#include "sched/lifetime.h"

#include <algorithm>
#include <cassert>

namespace hcrf::sched {

int ProducerLatency(const DDG& g, NodeId src, const LatencyTable& lat,
                    const LatencyOverrides& overrides) {
  return overrides.For(src, lat.Of(g.node(src).op));
}

int DependenceLatency(const DDG& g, const Edge& e, const LatencyTable& lat,
                      const LatencyOverrides& overrides) {
  if (e.kind == DepKind::kFlow) {
    return ProducerLatency(g, e.src, lat, overrides);
  }
  return g.EdgeLatency(e, lat);
}

PressureReport ComputePressure(const DDG& g, const PartialSchedule& sched,
                               const MachineConfig& m,
                               const LatencyOverrides& overrides) {
  const RFConfig& rf = m.rf;
  const int ii = sched.ii();
  const int num_clusters = rf.clusters;

  PressureReport report;
  report.cluster_maxlive.assign(static_cast<size_t>(num_clusters), 0);

  // pressure[bank index][kernel row]; bank index 0 = shared, 1.. clusters.
  std::vector<std::vector<long>> pressure(
      static_cast<size_t>(num_clusters) + 1,
      std::vector<long>(static_cast<size_t>(ii), 0));
  auto row_of = [ii](int cycle) {
    const int r = cycle % ii;
    return static_cast<size_t>(r < 0 ? r + ii : r);
  };
  auto bank_index = [](BankId b) {
    return static_cast<size_t>(b == kSharedBank ? 0 : b + 1);
  };

  // Value lifetimes.
  for (NodeId u = 0; u < g.NumSlots(); ++u) {
    if (!g.IsAlive(u) || !sched.IsScheduled(u)) continue;
    const Node& n = g.node(u);
    if (!DefinesValue(n.op)) continue;
    // First-level (cluster/monolithic) registers are reserved from issue
    // (no renaming) until the last consumer has read them. The shared bank
    // of a hierarchical organization is a decoupling buffer: values are
    // deposited on arrival (writeback), which is what makes the paper's
    // 16-register shared banks feasible at full memory-port utilization.
    const BankId def_bank = DefBank(n.op, sched.ClusterOf(u), rf);
    const int start =
        sched.CycleOf(u) + (def_bank == kSharedBank && rf.IsHierarchical()
                                ? ProducerLatency(g, u, m.lat, overrides)
                                : 0);
    int end = start;
    int uses = 0;
    for (const Edge& e : g.OutEdges(u)) {
      if (e.kind != DepKind::kFlow || !sched.IsScheduled(e.dst)) continue;
      ++uses;
      end = std::max(end, sched.CycleOf(e.dst) + e.distance * ii);
    }
    if (end < start) end = start;
    const BankId bank = def_bank;
    report.values.push_back(ValueLifetime{u, bank, start, end, uses});
    // A lifetime of length L occupies floor(L/II) registers in every
    // kernel row plus one more in L mod II consecutive rows.
    auto& per_row = pressure[bank_index(bank)];
    const int len = end - start;
    const long wraps = len / ii;
    if (wraps > 0) {
      for (int r = 0; r < ii; ++r) per_row[static_cast<size_t>(r)] += wraps;
    }
    const int rem = len % ii;
    for (int c = start; c < start + rem; ++c) ++per_row[row_of(c)];
  }

  // Loop invariants: one register in every cluster bank that reads the
  // invariant directly, plus the master copy in the shared bank (when the
  // organization has one). Pure clustered organizations keep copies only
  // in the reading clusters.
  if (g.num_invariants() > 0) {
    std::vector<std::vector<char>> used(
        static_cast<size_t>(g.num_invariants()),
        std::vector<char>(static_cast<size_t>(num_clusters) + 1, 0));
    std::vector<char> any_use(static_cast<size_t>(g.num_invariants()), 0);
    for (NodeId u = 0; u < g.NumSlots(); ++u) {
      if (!g.IsAlive(u) || !sched.IsScheduled(u)) continue;
      const Node& n = g.node(u);
      for (std::int32_t inv : n.invariant_uses) {
        any_use[static_cast<size_t>(inv)] = 1;
        const BankId bank = ReadBank(n.op, sched.ClusterOf(u), rf);
        used[static_cast<size_t>(inv)][bank_index(bank)] = 1;
      }
    }
    for (std::int32_t inv = 0; inv < g.num_invariants(); ++inv) {
      if (!any_use[static_cast<size_t>(inv)]) continue;
      // Master copy in the shared bank for organizations that have one.
      if (rf.HasSharedBank()) used[static_cast<size_t>(inv)][0] = 1;
      for (size_t b = 0; b < used[static_cast<size_t>(inv)].size(); ++b) {
        if (!used[static_cast<size_t>(inv)][b]) continue;
        for (int r = 0; r < ii; ++r) ++pressure[b][static_cast<size_t>(r)];
      }
    }
  }

  report.shared_maxlive = static_cast<int>(
      *std::max_element(pressure[0].begin(), pressure[0].end()));
  for (int c = 0; c < num_clusters; ++c) {
    report.cluster_maxlive[static_cast<size_t>(c)] = static_cast<int>(
        *std::max_element(pressure[static_cast<size_t>(c) + 1].begin(),
                          pressure[static_cast<size_t>(c) + 1].end()));
  }
  return report;
}

}  // namespace hcrf::sched
