#include "sched/validate.h"

#include <sstream>

#include "sched/banks.h"
#include "sched/mrt.h"

namespace hcrf::sched {

namespace {
std::string Describe(const DDG& g, NodeId v) {
  std::ostringstream os;
  os << "node " << v << " (" << ToString(g.node(v).op) << ")";
  return os.str();
}
}  // namespace

ValidationResult Validate(const DDG& g, const PartialSchedule& sched,
                          const MachineConfig& m,
                          const LatencyOverrides& overrides) {
  ValidationResult res;
  auto fail = [&](const std::string& msg) {
    res.ok = false;
    res.error = msg;
    return res;
  };

  std::string why;
  if (!g.Check(&why)) return fail("graph inconsistent: " + why);
  if (!m.IsValid(&why)) return fail("machine invalid: " + why);

  const int ii = sched.ii();
  const int num_clusters = m.NumClusters();

  // 5. Completeness and cluster ranges.
  for (NodeId v = 0; v < g.NumSlots(); ++v) {
    if (!g.IsAlive(v)) continue;
    if (!sched.IsScheduled(v)) {
      return fail(Describe(g, v) + " is not scheduled");
    }
    const int c = sched.ClusterOf(v);
    if (c < 0 || c >= num_clusters) {
      return fail(Describe(g, v) + " has cluster " + std::to_string(c) +
                  " out of range");
    }
  }

  // 1. Dependences.
  for (const Edge& e : g.Edges()) {
    const int lat = DependenceLatency(g, e, m.lat, overrides);
    const long lhs = sched.CycleOf(e.src) + lat;
    const long rhs =
        sched.CycleOf(e.dst) + static_cast<long>(e.distance) * ii;
    if (lhs > rhs) {
      std::ostringstream os;
      os << "dependence violated: " << Describe(g, e.src) << "@"
         << sched.CycleOf(e.src) << " + lat " << lat << " > "
         << Describe(g, e.dst) << "@" << sched.CycleOf(e.dst) << " + d"
         << e.distance << "*II" << ii;
      return fail(os.str());
    }
  }

  // 2. Resources, rebuilt from scratch.
  ModuloReservationTable mrt(m, ii);
  for (NodeId v = 0; v < g.NumSlots(); ++v) {
    if (!g.IsAlive(v)) continue;
    const Placement& p = sched.Of(v);
    const auto needs = ResourceNeeds(g.node(v).op, p.cluster, p.src_cluster, m);
    if (!mrt.CanPlace(needs, p.cycle)) {
      return fail("resource conflict placing " + Describe(g, v) + " at cycle " +
                  std::to_string(p.cycle));
    }
    mrt.Place(v, needs, p.cycle);
  }

  // 3. Bank consistency on flow edges.
  for (const Edge& e : g.Edges()) {
    if (e.kind != DepKind::kFlow) continue;
    const Node& src = g.node(e.src);
    const Node& dst = g.node(e.dst);
    const BankId def =
        DefBank(src.op, sched.ClusterOf(e.src), m.rf);
    BankId read;
    if (dst.op == OpClass::kMove) {
      // Move reads the producer's bank by construction, but the recorded
      // src_cluster must match it.
      read = def;
      if (sched.Of(e.dst).src_cluster != def) {
        return fail("move " + Describe(g, e.dst) +
                    " src_cluster does not match producer bank");
      }
      if (def == kSharedBank) {
        return fail("move " + Describe(g, e.dst) + " reads the shared bank");
      }
    } else {
      read = ReadBank(dst.op, sched.ClusterOf(e.dst), m.rf);
    }
    if (def != read) {
      std::ostringstream os;
      os << "bank mismatch: " << Describe(g, e.src) << " defines in bank "
         << def << " but " << Describe(g, e.dst) << " reads bank " << read;
      return fail(os.str());
    }
  }

  // 4. Capacities.
  const PressureReport pr = ComputePressure(g, sched, m, overrides);
  if (m.rf.HasSharedBank() &&
      pr.shared_maxlive > BankCapacity(kSharedBank, m.rf)) {
    return fail("shared bank over capacity: MaxLive " +
                std::to_string(pr.shared_maxlive) + " > " +
                std::to_string(BankCapacity(kSharedBank, m.rf)));
  }
  for (int c = 0; c < static_cast<int>(pr.cluster_maxlive.size()); ++c) {
    if (pr.cluster_maxlive[static_cast<size_t>(c)] >
        BankCapacity(c, m.rf)) {
      return fail("cluster bank " + std::to_string(c) +
                  " over capacity: MaxLive " +
                  std::to_string(pr.cluster_maxlive[static_cast<size_t>(c)]) +
                  " > " + std::to_string(BankCapacity(c, m.rf)));
    }
  }

  return res;
}

}  // namespace hcrf::sched
