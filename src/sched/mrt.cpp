#include "sched/mrt.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace hcrf::sched {

std::string_view ToString(ResKind kind) {
  switch (kind) {
    case ResKind::kFU: return "fu";
    case ResKind::kMemPort: return "memport";
    case ResKind::kLoadRPort: return "loadr-port";
    case ResKind::kStoreRPort: return "storer-port";
    case ResKind::kBusInPort: return "bus-in";
    case ResKind::kBusOutPort: return "bus-out";
    case ResKind::kBus: return "bus";
  }
  return "?";
}

std::vector<ResUse> ResourceNeeds(OpClass op, int cluster, int src_cluster,
                                  const MachineConfig& m) {
  std::vector<ResUse> needs;
  if (IsCompute(op)) {
    const int dur = IsUnpipelined(op) ? m.lat.Of(op) : 1;
    needs.push_back({ResKind::kFU, cluster, dur});
  } else if (IsMemory(op)) {
    const int c = m.rf.IsPureClustered() ? cluster : 0;
    needs.push_back({ResKind::kMemPort, c, 1});
  } else if (op == OpClass::kLoadR) {
    needs.push_back({ResKind::kLoadRPort, cluster, 1});
  } else if (op == OpClass::kStoreR) {
    needs.push_back({ResKind::kStoreRPort, cluster, 1});
  } else if (op == OpClass::kMove) {
    needs.push_back({ResKind::kBusOutPort, src_cluster, 1});
    needs.push_back({ResKind::kBusInPort, cluster, 1});
    needs.push_back({ResKind::kBus, 0, 1});
  }
  return needs;
}

ModuloReservationTable::ModuloReservationTable(const MachineConfig& m, int ii)
    : machine_(m), ii_(ii) {
  if (ii <= 0) throw std::invalid_argument("MRT: II must be positive");
  const RFConfig& rf = m.rf;
  const int clusters = m.NumClusters();
  auto clamp_ports = [](int p) {
    return std::min(p, 1 << 20);  // "unbounded" still needs finite storage
  };
  capacity_.assign(kNumResKinds, {});
  capacity_[static_cast<int>(ResKind::kFU)]
      .assign(static_cast<size_t>(clusters), m.FusPerCluster());
  if (rf.IsPureClustered()) {
    capacity_[static_cast<int>(ResKind::kMemPort)]
        .assign(static_cast<size_t>(clusters), m.MemPortsPerCluster());
  } else {
    capacity_[static_cast<int>(ResKind::kMemPort)].assign(1, m.num_mem_ports);
  }
  capacity_[static_cast<int>(ResKind::kLoadRPort)]
      .assign(static_cast<size_t>(clusters),
              rf.IsHierarchical() ? clamp_ports(rf.lp) : 0);
  capacity_[static_cast<int>(ResKind::kStoreRPort)]
      .assign(static_cast<size_t>(clusters),
              rf.IsHierarchical() ? clamp_ports(rf.sp) : 0);
  capacity_[static_cast<int>(ResKind::kBusInPort)]
      .assign(static_cast<size_t>(clusters),
              rf.IsPureClustered() ? clamp_ports(rf.lp) : 0);
  capacity_[static_cast<int>(ResKind::kBusOutPort)]
      .assign(static_cast<size_t>(clusters),
              rf.IsPureClustered() ? clamp_ports(rf.sp) : 0);
  capacity_[static_cast<int>(ResKind::kBus)].assign(
      1, rf.IsPureClustered() ? clamp_ports(rf.buses) : 0);

  occ_.resize(kNumResKinds);
  for (int k = 0; k < kNumResKinds; ++k) {
    occ_[static_cast<size_t>(k)].resize(capacity_[static_cast<size_t>(k)].size());
    for (auto& per_cluster : occ_[static_cast<size_t>(k)]) {
      per_cluster.assign(static_cast<size_t>(ii_), Slot{});
    }
  }
}

int ModuloReservationTable::Capacity(ResKind kind, int cluster) const {
  const auto& v = capacity_[static_cast<size_t>(kind)];
  if (static_cast<size_t>(cluster) >= v.size()) return 0;
  return v[static_cast<size_t>(cluster)];
}

int ModuloReservationTable::Usage(ResKind kind, int cluster, int row) const {
  const auto& v = occ_[static_cast<size_t>(kind)];
  if (static_cast<size_t>(cluster) >= v.size()) return 0;
  return static_cast<int>(
      v[static_cast<size_t>(cluster)][static_cast<size_t>(Row(row))]
          .occupants.size());
}

bool ModuloReservationTable::CanPlace(const std::vector<ResUse>& needs,
                                      int cycle) const {
  for (const ResUse& use : needs) {
    const int cap = Capacity(use.kind, use.cluster);
    if (cap <= 0) return false;
    for (int d = 0; d < use.duration; ++d) {
      const int row = Row(cycle + d);
      if (Usage(use.kind, use.cluster, row) >= cap) return false;
    }
    // Unpipelined ops longer than the kernel conflict with themselves.
    if (use.duration > ii_) return false;
  }
  return true;
}

void ModuloReservationTable::Place(NodeId node,
                                   const std::vector<ResUse>& needs,
                                   int cycle) {
  assert(!placed_.contains(node));
  assert(CanPlace(needs, cycle));
  for (const ResUse& use : needs) {
    auto& per_cluster =
        occ_[static_cast<size_t>(use.kind)][static_cast<size_t>(use.cluster)];
    for (int d = 0; d < use.duration; ++d) {
      per_cluster[static_cast<size_t>(Row(cycle + d))].occupants.push_back(
          node);
    }
  }
  placed_.emplace(node, std::make_pair(cycle, needs));
}

void ModuloReservationTable::Remove(NodeId node) {
  auto it = placed_.find(node);
  if (it == placed_.end()) return;
  const auto& [cycle, needs] = it->second;
  for (const ResUse& use : needs) {
    auto& per_cluster =
        occ_[static_cast<size_t>(use.kind)][static_cast<size_t>(use.cluster)];
    for (int d = 0; d < use.duration; ++d) {
      auto& occupants =
          per_cluster[static_cast<size_t>(Row(cycle + d))].occupants;
      auto pos = std::find(occupants.begin(), occupants.end(), node);
      assert(pos != occupants.end());
      occupants.erase(pos);
    }
  }
  placed_.erase(it);
}

std::vector<NodeId> ModuloReservationTable::ConflictingNodes(
    const std::vector<ResUse>& needs, int cycle) const {
  std::vector<NodeId> result;
  for (const ResUse& use : needs) {
    const int cap = Capacity(use.kind, use.cluster);
    if (cap <= 0) continue;  // structurally impossible; caller handles
    for (int d = 0; d < use.duration; ++d) {
      const int row = Row(cycle + d);
      const auto& occupants =
          occ_[static_cast<size_t>(use.kind)][static_cast<size_t>(use.cluster)]
              [static_cast<size_t>(row)]
                  .occupants;
      if (static_cast<int>(occupants.size()) < cap) continue;
      for (NodeId n : occupants) {
        if (std::find(result.begin(), result.end(), n) == result.end()) {
          result.push_back(n);
        }
      }
    }
  }
  return result;
}

}  // namespace hcrf::sched
