#include "sched/mrt.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "core/check.h"

namespace hcrf::sched {

std::string_view ToString(ResKind kind) {
  switch (kind) {
    case ResKind::kFU: return "fu";
    case ResKind::kMemPort: return "memport";
    case ResKind::kLoadRPort: return "loadr-port";
    case ResKind::kStoreRPort: return "storer-port";
    case ResKind::kBusInPort: return "bus-in";
    case ResKind::kBusOutPort: return "bus-out";
    case ResKind::kBus: return "bus";
  }
  return "?";
}

ResUseList ResourceNeeds(OpClass op, int cluster, int src_cluster,
                         const MachineConfig& m) {
  ResUseList needs;
  if (IsCompute(op)) {
    const int dur = IsUnpipelined(op) ? m.lat.Of(op) : 1;
    needs.Add(ResKind::kFU, cluster, dur);
  } else if (IsMemory(op)) {
    const int c = m.rf.IsPureClustered() ? cluster : 0;
    needs.Add(ResKind::kMemPort, c, 1);
  } else if (op == OpClass::kLoadR) {
    needs.Add(ResKind::kLoadRPort, cluster, 1);
  } else if (op == OpClass::kStoreR) {
    needs.Add(ResKind::kStoreRPort, cluster, 1);
  } else if (op == OpClass::kMove) {
    needs.Add(ResKind::kBusOutPort, src_cluster, 1);
    needs.Add(ResKind::kBusInPort, cluster, 1);
    needs.Add(ResKind::kBus, 0, 1);
  }
  return needs;
}

ModuloReservationTable::ModuloReservationTable(const MachineConfig& m, int ii)
    : machine_(m), ii_(ii) {
  if (ii <= 0) throw std::invalid_argument("MRT: II must be positive");
  const RFConfig& rf = m.rf;
  const int clusters = m.NumClusters();
  auto clamp_ports = [](int p) {
    return std::min(p, 1 << 20);  // "unbounded" still needs finite storage
  };
  capacity_.assign(kNumResKinds, {});
  capacity_[static_cast<int>(ResKind::kFU)]
      .assign(static_cast<size_t>(clusters), m.FusPerCluster());
  if (rf.IsPureClustered()) {
    capacity_[static_cast<int>(ResKind::kMemPort)]
        .assign(static_cast<size_t>(clusters), m.MemPortsPerCluster());
  } else {
    capacity_[static_cast<int>(ResKind::kMemPort)].assign(1, m.num_mem_ports);
  }
  capacity_[static_cast<int>(ResKind::kLoadRPort)]
      .assign(static_cast<size_t>(clusters),
              rf.IsHierarchical() ? clamp_ports(rf.lp) : 0);
  capacity_[static_cast<int>(ResKind::kStoreRPort)]
      .assign(static_cast<size_t>(clusters),
              rf.IsHierarchical() ? clamp_ports(rf.sp) : 0);
  capacity_[static_cast<int>(ResKind::kBusInPort)]
      .assign(static_cast<size_t>(clusters),
              rf.IsPureClustered() ? clamp_ports(rf.lp) : 0);
  capacity_[static_cast<int>(ResKind::kBusOutPort)]
      .assign(static_cast<size_t>(clusters),
              rf.IsPureClustered() ? clamp_ports(rf.sp) : 0);
  capacity_[static_cast<int>(ResKind::kBus)].assign(
      1, rf.IsPureClustered() ? clamp_ports(rf.buses) : 0);

  // One flat row-major array over all (kind, cluster, row) slots.
  num_units_.assign(kNumResKinds, 0);
  size_t total = 0;
  for (int k = 0; k < kNumResKinds; ++k) {
    base_[static_cast<size_t>(k)] = total;
    num_units_[static_cast<size_t>(k)] =
        static_cast<int>(capacity_[static_cast<size_t>(k)].size());
    total += capacity_[static_cast<size_t>(k)].size() *
             static_cast<size_t>(ii_);
  }
  count_.assign(total, 0);
  occupants_.assign(total, {});
}

void ModuloReservationTable::Rebind(int ii) {
  if (ii <= 0) throw std::invalid_argument("MRT: II must be positive");
  ii_ = ii;
  size_t total = 0;
  for (int k = 0; k < kNumResKinds; ++k) {
    base_[static_cast<size_t>(k)] = total;
    total += capacity_[static_cast<size_t>(k)].size() *
             static_cast<size_t>(ii_);
  }
  count_.assign(total, 0);
  if (occupants_.size() < total) occupants_.resize(total);
  for (auto& occ : occupants_) occ.clear();  // keeps each list's capacity
  for (PlacedRec& rec : placed_) rec.placed = false;
}

int ModuloReservationTable::Capacity(ResKind kind, int cluster) const {
  const auto& v = capacity_[static_cast<size_t>(kind)];
  if (static_cast<size_t>(cluster) >= v.size()) return 0;
  return v[static_cast<size_t>(cluster)];
}

int ModuloReservationTable::Usage(ResKind kind, int cluster, int row) const {
  if (cluster < 0 || cluster >= num_units_[static_cast<size_t>(kind)]) {
    return 0;
  }
  return count_[Base(kind, cluster) + static_cast<size_t>(Row(row))];
}

bool ModuloReservationTable::CanPlace(std::span<const ResUse> needs,
                                      int cycle) const {
  for (const ResUse& use : needs) {
    const int cap = Capacity(use.kind, use.cluster);
    if (cap <= 0) return false;
    const size_t base = Base(use.kind, use.cluster);
    for (int d = 0; d < use.duration; ++d) {
      if (count_[base + static_cast<size_t>(Row(cycle + d))] >= cap) {
        return false;
      }
    }
    // Unpipelined ops longer than the kernel conflict with themselves.
    if (use.duration > ii_) return false;
  }
  return true;
}

/// Per-use constants hoisted out of the per-cycle probe.
struct ModuloReservationTable::HoistedNeeds {
  int caps[kMaxResUses];
  size_t bases[kMaxResUses];
  int durs[kMaxResUses];
  size_t n = 0;
};

// Hoists the per-use capacity/base lookups; false when any use is
// structurally impossible (no capacity, duration beyond the kernel), which
// fails every cycle of a scan.
bool ModuloReservationTable::Hoist(std::span<const ResUse> needs,
                                   HoistedNeeds& h) const {
  for (const ResUse& use : needs) {
    const int cap = Capacity(use.kind, use.cluster);
    if (cap <= 0 || use.duration > ii_) return false;
    h.caps[h.n] = cap;
    h.bases[h.n] = Base(use.kind, use.cluster);
    h.durs[h.n] = use.duration;
    ++h.n;
  }
  return true;
}

bool ModuloReservationTable::Fits(const HoistedNeeds& h, int t) const {
  for (size_t i = 0; i < h.n; ++i) {
    for (int d = 0; d < h.durs[i]; ++d) {
      if (count_[h.bases[i] + static_cast<size_t>(Row(t + d))] >= h.caps[i]) {
        return false;
      }
    }
  }
  return true;
}

template <int N>
int ModuloReservationTable::ScanRowsFwd(const HoistedNeeds& h, int r0,
                                        int len) const {
  const int* cnt[N];
  int cap[N];
  for (int i = 0; i < N; ++i) {
    cnt[i] = count_.data() + h.bases[i];
    cap[i] = h.caps[i];
  }
  int done = 0;
  int r = r0;
  while (done < len) {
    // Rows are contiguous until the kernel wraps at II-1.
    const int seg = std::min(len - done, ii_ - r);
    int j = 0;
    for (; j + 8 <= seg; j += 8) {
      unsigned mask = 0;
      for (int b = 0; b < 8; ++b) {
        unsigned fit = 1;
        for (int i = 0; i < N; ++i) {
          fit &= static_cast<unsigned>(cnt[i][r + j + b] < cap[i]);
        }
        mask |= fit << b;
      }
      if (mask != 0) return done + j + std::countr_zero(mask);
    }
    for (; j < seg; ++j) {
      bool fit = true;
      for (int i = 0; i < N; ++i) fit = fit && cnt[i][r + j] < cap[i];
      if (fit) return done + j;
    }
    done += seg;
    r = 0;
  }
  return -1;
}

template <int N>
int ModuloReservationTable::ScanRowsBwd(const HoistedNeeds& h, int r0,
                                        int len) const {
  const int* cnt[N];
  int cap[N];
  for (int i = 0; i < N; ++i) {
    cnt[i] = count_.data() + h.bases[i];
    cap[i] = h.caps[i];
  }
  int done = 0;
  int r = r0;
  while (done < len) {
    // Rows are contiguous down to 0, then wrap to II-1.
    const int seg = std::min(len - done, r + 1);
    int j = 0;
    for (; j + 8 <= seg; j += 8) {
      unsigned mask = 0;
      for (int b = 0; b < 8; ++b) {
        unsigned fit = 1;
        for (int i = 0; i < N; ++i) {
          fit &= static_cast<unsigned>(cnt[i][r - j - b] < cap[i]);
        }
        mask |= fit << b;
      }
      // Bit b maps to the b-th step of the descending walk, so the lowest
      // set bit is the first (highest-cycle) hit.
      if (mask != 0) return done + j + std::countr_zero(mask);
    }
    for (; j < seg; ++j) {
      bool fit = true;
      for (int i = 0; i < N; ++i) fit = fit && cnt[i][r - j] < cap[i];
      if (fit) return done + j;
    }
    done += seg;
    r = ii_ - 1;
  }
  return -1;
}

int ModuloReservationTable::FindFirstSlotUp(std::span<const ResUse> needs,
                                            int lo, int hi) const {
  HoistedNeeds h;
  if (lo > hi || !Hoist(needs, h)) return kNoSlot;
  if (h.n == 0) return lo;
  // Occupancy is read mod II, so a candidate at t fits iff t - II did: only
  // the first II cycles of the range can differ, and the first fit (if any)
  // lies among them.
  const int len = static_cast<int>(
      std::min<long long>(static_cast<long long>(hi) - lo + 1, ii_));
  bool pipelined = true;
  for (size_t i = 0; i < h.n; ++i) pipelined = pipelined && h.durs[i] == 1;
  if (!pipelined) {
    // Unpipelined FU needs probe a row range per candidate; keep the
    // scalar hoisted probe (rare: only multi-cycle unpipelined ops).
    for (int t = lo; t < lo + len; ++t) {
      if (Fits(h, t)) return t;
    }
    return kNoSlot;
  }
  int k;
  switch (h.n) {
    case 1: k = ScanRowsFwd<1>(h, Row(lo), len); break;
    case 2: k = ScanRowsFwd<2>(h, Row(lo), len); break;
    default: k = ScanRowsFwd<3>(h, Row(lo), len); break;
  }
  return k < 0 ? kNoSlot : lo + k;
}

int ModuloReservationTable::FindFirstSlotDown(std::span<const ResUse> needs,
                                              int hi, int lo) const {
  HoistedNeeds h;
  if (hi < lo || !Hoist(needs, h)) return kNoSlot;
  if (h.n == 0) return hi;
  const int len = static_cast<int>(
      std::min<long long>(static_cast<long long>(hi) - lo + 1, ii_));
  bool pipelined = true;
  for (size_t i = 0; i < h.n; ++i) pipelined = pipelined && h.durs[i] == 1;
  if (!pipelined) {
    for (int t = hi; t > hi - len; --t) {
      if (Fits(h, t)) return t;
    }
    return kNoSlot;
  }
  int k;
  switch (h.n) {
    case 1: k = ScanRowsBwd<1>(h, Row(hi), len); break;
    case 2: k = ScanRowsBwd<2>(h, Row(hi), len); break;
    default: k = ScanRowsBwd<3>(h, Row(hi), len); break;
  }
  return k < 0 ? kNoSlot : hi - k;
}

void ModuloReservationTable::Place(NodeId node, const ResUseList& needs,
                                   int cycle) {
  HCRF_CHECK(!IsPlaced(node), "double placement of node %d", node);
  HCRF_CHECK(CanPlace(needs, cycle),
             "placing node %d at cycle %d over capacity", node, cycle);
  for (const ResUse& use : needs) {
    const size_t base = Base(use.kind, use.cluster);
    for (int d = 0; d < use.duration; ++d) {
      const size_t slot = base + static_cast<size_t>(Row(cycle + d));
      ++count_[slot];
      occupants_[slot].push_back(node);
    }
  }
  if (static_cast<size_t>(node) >= placed_.size()) {
    placed_.resize(static_cast<size_t>(node) + 1);
  }
  placed_[static_cast<size_t>(node)] = PlacedRec{needs, cycle, true};
}

void ModuloReservationTable::Remove(NodeId node) {
  if (!IsPlaced(node)) return;
  PlacedRec& rec = placed_[static_cast<size_t>(node)];
  for (const ResUse& use : rec.needs) {
    const size_t base = Base(use.kind, use.cluster);
    for (int d = 0; d < use.duration; ++d) {
      const size_t slot = base + static_cast<size_t>(Row(rec.cycle + d));
      --count_[slot];
      auto& occ = occupants_[slot];
      auto pos = std::find(occ.begin(), occ.end(), node);
      HCRF_CHECK(pos != occ.end(),
                 "node %d missing from its reserved slot occupants", node);
      occ.erase(pos);
    }
  }
  rec.placed = false;
}

void ModuloReservationTable::ConflictingNodes(std::span<const ResUse> needs,
                                              int cycle,
                                              std::vector<NodeId>& result) const {
  result.clear();
  for (const ResUse& use : needs) {
    const int cap = Capacity(use.kind, use.cluster);
    if (cap <= 0) continue;  // structurally impossible; caller handles
    const size_t base = Base(use.kind, use.cluster);
    for (int d = 0; d < use.duration; ++d) {
      const size_t slot = base + static_cast<size_t>(Row(cycle + d));
      if (count_[slot] < cap) continue;
      for (NodeId n : occupants_[slot]) {
        if (std::find(result.begin(), result.end(), n) == result.end()) {
          result.push_back(n);
        }
      }
    }
  }
}

}  // namespace hcrf::sched
