// Modulo reservation table: tracks resource usage of a partial modulo
// schedule at a fixed initiation interval II. All placements are recorded
// at `cycle mod II`; unpipelined operations occupy their functional unit
// for their full latency.
//
// Modelled resources:
//   kFU          per cluster     general-purpose functional units
//   kMemPort     per cluster for pure clustered organizations, otherwise
//                one global pool (hierarchical organizations attach the
//                memory ports to the shared bank)
//   kLoadRPort   per cluster     shared->cluster transfer ports (lp)
//   kStoreRPort  per cluster     cluster->shared transfer ports (sp)
//   kBusIn/Out   per cluster     bus receive (lp) / drive (sp) ports of
//                                pure clustered organizations
//   kBus         global          inter-cluster buses (nb)
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ddg/ddg.h"
#include "machine/machine_config.h"

namespace hcrf::sched {

enum class ResKind : std::uint8_t {
  kFU,
  kMemPort,
  kLoadRPort,
  kStoreRPort,
  kBusInPort,
  kBusOutPort,
  kBus,
};
inline constexpr int kNumResKinds = 7;

std::string_view ToString(ResKind kind);

/// One resource requirement: `count` is implicitly 1; `duration` cycles
/// starting at the placement cycle (duration > 1 only for unpipelined FUs).
struct ResUse {
  ResKind kind;
  int cluster;  ///< Cluster index, or 0 for global resources.
  int duration;
};

/// Resource requirements of one operation placement.
/// `src_cluster` is only consulted for Move (the bus-drive side).
std::vector<ResUse> ResourceNeeds(OpClass op, int cluster, int src_cluster,
                                  const MachineConfig& m);

class ModuloReservationTable {
 public:
  ModuloReservationTable(const MachineConfig& m, int ii);

  int ii() const { return ii_; }
  const MachineConfig& machine() const { return machine_; }

  /// True if all of `needs` have a free unit at `cycle` (mod II).
  bool CanPlace(const std::vector<ResUse>& needs, int cycle) const;

  /// Records the placement. Precondition: CanPlace (checked in debug).
  void Place(NodeId node, const std::vector<ResUse>& needs, int cycle);

  /// Removes a previously placed node (no-op if absent).
  void Remove(NodeId node);

  bool IsPlaced(NodeId node) const { return placed_.contains(node); }

  /// Nodes whose reservations block placing `needs` at `cycle`. Used by
  /// Force_and_Eject: ejecting these (plus dependence violators) makes the
  /// forced placement legal. Deduplicated, insertion order.
  std::vector<NodeId> ConflictingNodes(const std::vector<ResUse>& needs,
                                       int cycle) const;

  /// Occupancy of a resource at a kernel row (for debugging/validation).
  int Usage(ResKind kind, int cluster, int row) const;
  int Capacity(ResKind kind, int cluster) const;

 private:
  struct Slot {
    std::vector<NodeId> occupants;
  };
  // occ_[kind][cluster][row]
  std::vector<std::vector<std::vector<Slot>>> occ_;
  std::vector<std::vector<int>> capacity_;  // [kind][cluster]
  std::unordered_map<NodeId, std::pair<int, std::vector<ResUse>>> placed_;
  MachineConfig machine_;
  int ii_;

  int Row(int cycle) const {
    const int r = cycle % ii_;
    return r < 0 ? r + ii_ : r;
  }
};

}  // namespace hcrf::sched
