// Modulo reservation table: tracks resource usage of a partial modulo
// schedule at a fixed initiation interval II. All placements are recorded
// at `cycle mod II`; unpipelined operations occupy their functional unit
// for their full latency.
//
// Modelled resources:
//   kFU          per cluster     general-purpose functional units
//   kMemPort     per cluster for pure clustered organizations, otherwise
//                one global pool (hierarchical organizations attach the
//                memory ports to the shared bank)
//   kLoadRPort   per cluster     shared->cluster transfer ports (lp)
//   kStoreRPort  per cluster     cluster->shared transfer ports (sp)
//   kBusIn/Out   per cluster     bus receive (lp) / drive (sp) ports of
//                                pure clustered organizations
//   kBus         global          inter-cluster buses (nb)
//
// The table sits on the scheduler's hottest path (every placement probe of
// the iterative engine scans candidate cycles through CanPlace), so the
// representation is allocation-free: resource needs are fixed-capacity
// inline arrays (ResUseList), occupancy counts live in one flat row-major
// int array indexed by a precomputed (kind, cluster) base, and per-node
// placement records are a flat vector instead of a hash map. Occupant
// identities (needed only by force-and-eject and Remove) are kept in a
// parallel flat array of small vectors that the probe path never touches.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "ddg/ddg.h"
#include "machine/machine_config.h"

namespace hcrf::sched {

enum class ResKind : std::uint8_t {
  kFU,
  kMemPort,
  kLoadRPort,
  kStoreRPort,
  kBusInPort,
  kBusOutPort,
  kBus,
};
inline constexpr int kNumResKinds = 7;

std::string_view ToString(ResKind kind);

/// One resource requirement: `count` is implicitly 1; `duration` cycles
/// starting at the placement cycle (duration > 1 only for unpipelined FUs).
struct ResUse {
  ResKind kind;
  int cluster;  ///< Cluster index, or 0 for global resources.
  int duration;
};

/// No operation needs more than 3 resources (Move: bus-out + bus-in + bus).
inline constexpr int kMaxResUses = 3;

/// Fixed-capacity list of one placement's resource requirements; lives on
/// the stack (or inline in the MRT's placement records), never the heap.
struct ResUseList {
  ResUse uses[kMaxResUses] = {};
  int count = 0;

  void Add(ResKind kind, int cluster, int duration) {
    uses[count++] = ResUse{kind, cluster, duration};
  }
  const ResUse* begin() const { return uses; }
  const ResUse* end() const { return uses + count; }
  std::span<const ResUse> span() const { return {uses, static_cast<size_t>(count)}; }
  operator std::span<const ResUse>() const { return span(); }
};

/// Resource requirements of one operation placement.
/// `src_cluster` is only consulted for Move (the bus-drive side).
ResUseList ResourceNeeds(OpClass op, int cluster, int src_cluster,
                         const MachineConfig& m);

class ModuloReservationTable {
 public:
  ModuloReservationTable(const MachineConfig& m, int ii);

  /// Empties the table for a fresh attempt at a new II on the same
  /// machine, reusing every buffer (the per-II-attempt reset of the
  /// engine's escalation loop allocates nothing).
  void Rebind(int ii);

  int ii() const { return ii_; }
  const MachineConfig& machine() const { return machine_; }

  /// True if all of `needs` have a free unit at `cycle` (mod II).
  bool CanPlace(std::span<const ResUse> needs, int cycle) const;

  /// Returned by FindFirstSlot when no cycle in the range fits.
  static constexpr int kNoSlot = std::numeric_limits<int>::min();

  /// Window scans of the placement loop. Exactly equivalent to calling
  /// CanPlace on lo..hi ascending (Up) / hi..lo descending (Down); an
  /// inverted range (lo > hi) finds nothing. Internally the scans exploit
  /// that CanPlace is periodic in the cycle with period II (only the first
  /// II candidates of any range can differ) and, for pipelined needs
  /// (every duration 1), run as branchless 8-wide blocked row scans that
  /// build a fit mask per block and extract the first hit with countr_zero
  /// — the per-use capacity/base lookups hoisted out of the probe.
  int FindFirstSlotUp(std::span<const ResUse> needs, int lo, int hi) const;
  int FindFirstSlotDown(std::span<const ResUse> needs, int hi, int lo) const;

  /// Records the placement. Precondition: CanPlace (checked in debug).
  void Place(NodeId node, const ResUseList& needs, int cycle);

  /// Removes a previously placed node (no-op if absent).
  void Remove(NodeId node);

  bool IsPlaced(NodeId node) const {
    return static_cast<size_t>(node) < placed_.size() &&
           placed_[static_cast<size_t>(node)].placed;
  }

  /// Appends the nodes whose reservations block placing `needs` at `cycle`
  /// to `result` (deduplicated, insertion order; `result` is cleared
  /// first). Used by Force_and_Eject: ejecting these (plus dependence
  /// violators) makes the forced placement legal. Takes a caller-owned
  /// buffer so the engine can reuse one vector across forced placements.
  void ConflictingNodes(std::span<const ResUse> needs, int cycle,
                        std::vector<NodeId>& result) const;

  /// Occupancy of a resource at a kernel row (for debugging/validation).
  int Usage(ResKind kind, int cluster, int row) const;
  int Capacity(ResKind kind, int cluster) const;

 private:
  struct PlacedRec {
    ResUseList needs;
    int cycle = 0;
    bool placed = false;
  };
  struct HoistedNeeds;  // per-use scan constants (defined in mrt.cpp)

  bool Hoist(std::span<const ResUse> needs, HoistedNeeds& h) const;
  bool Fits(const HoistedNeeds& h, int t) const;

  /// Blocked row scans behind FindFirstSlotUp/Down for all-duration-1
  /// needs, specialized on the use count so the inner probe unrolls flat.
  /// Walk `len` rows (len <= II) from row `r0` forward (wrapping past
  /// II-1) / backward (wrapping below 0); return the step count of the
  /// first row where every use has headroom, or -1.
  template <int N>
  int ScanRowsFwd(const HoistedNeeds& h, int r0, int len) const;
  template <int N>
  int ScanRowsBwd(const HoistedNeeds& h, int r0, int len) const;

  /// Flat index of (kind, cluster) row 0; rows are contiguous per unit.
  size_t Base(ResKind kind, int cluster) const {
    return base_[static_cast<size_t>(kind)] +
           static_cast<size_t>(cluster) * static_cast<size_t>(ii_);
  }
  int Row(int cycle) const {
    const int r = cycle % ii_;
    return r < 0 ? r + ii_ : r;
  }

  std::vector<int> count_;  ///< occupancy count, [Base(kind,cluster) + row]
  /// Occupant node ids per slot, same indexing as count_. Touched only by
  /// Place/Remove/ConflictingNodes, never by the CanPlace probe path.
  std::vector<std::vector<NodeId>> occupants_;
  std::vector<std::vector<int>> capacity_;  // [kind][cluster]
  size_t base_[kNumResKinds] = {};  ///< flat offset of each kind's rows
  std::vector<int> num_units_;      ///< clusters modelled per kind
  std::vector<PlacedRec> placed_;   ///< by NodeId
  MachineConfig machine_;
  int ii_;
};

}  // namespace hcrf::sched
