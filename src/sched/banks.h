// Bank placement rules: in which register bank a value lives and from which
// bank an operation reads its operands, as a function of the RF
// organization. This is the single source of truth used by the scheduler
// (communication insertion), the lifetime/pressure analysis and the
// schedule validator.
//
// Rules (paper Sections 3-4):
//  * Monolithic: everything lives in the shared bank.
//  * Pure clustered: values live in the producer's cluster bank; memory
//    ports are per cluster, so loads define and stores read locally; Move
//    reads a remote cluster bank and defines in its own cluster.
//  * Hierarchical (clustered or not): memory ports hang off the shared
//    bank, so Load defines a shared-bank value and Store reads the shared
//    bank; StoreR defines shared, LoadR reads shared and defines in its
//    cluster; compute ops read and define in their cluster bank.
#pragma once

#include "machine/machine_config.h"
#include "machine/op.h"

namespace hcrf::sched {

/// Bank identifier: kSharedBank or a cluster index [0, x).
using BankId = int;
inline constexpr BankId kSharedBank = -1;

/// Bank in which the value defined by an op placed on `cluster` lives.
/// Precondition: DefinesValue(op).
inline BankId DefBank(OpClass op, int cluster, const RFConfig& rf) {
  if (rf.IsMonolithic()) return kSharedBank;
  if (op == OpClass::kStoreR) return kSharedBank;
  if (op == OpClass::kLoad && rf.IsHierarchical()) return kSharedBank;
  return cluster;
}

/// Bank from which an op placed on `cluster` reads its flow operands.
/// Move is special: it reads the producer's bank by construction; callers
/// must not use ReadBank for Move sources.
inline BankId ReadBank(OpClass op, int cluster, const RFConfig& rf) {
  if (rf.IsMonolithic()) return kSharedBank;
  if (op == OpClass::kLoadR) return kSharedBank;
  if (op == OpClass::kStore && rf.IsHierarchical()) return kSharedBank;
  return cluster;
}

/// Capacity of a bank in registers (kUnbounded-aware).
inline long BankCapacity(BankId bank, const RFConfig& rf) {
  if (bank == kSharedBank) {
    return rf.IsMonolithic() ? rf.shared_regs
                             : (rf.HasSharedBank() ? rf.shared_regs : 0);
  }
  return rf.cluster_regs;
}

}  // namespace hcrf::sched
