#include "sched/ordering.h"

#include <algorithm>
#include <queue>

#include "core/check.h"
#include "ddg/mii.h"

namespace hcrf::sched {

DepthHeight ComputeDepthHeight(const DDG& g, const LatencyTable& lat) {
  const size_t n = static_cast<size_t>(g.NumSlots());
  DepthHeight dh;
  dh.depth.assign(n, 0);
  dh.height.assign(n, 0);

  // Topological order of the distance-0 subgraph (acyclic by construction:
  // a valid loop has no zero-distance dependence cycles).
  std::vector<int> indeg(n, 0);
  for (NodeId v = 0; v < g.NumSlots(); ++v) {
    if (!g.IsAlive(v)) continue;
    for (const Edge& e : g.OutEdges(v)) {
      if (e.distance == 0) ++indeg[static_cast<size_t>(e.dst)];
    }
  }
  std::vector<NodeId> topo;
  topo.reserve(n);
  for (NodeId v = 0; v < g.NumSlots(); ++v) {
    if (g.IsAlive(v) && indeg[static_cast<size_t>(v)] == 0) topo.push_back(v);
  }
  for (size_t i = 0; i < topo.size(); ++i) {
    const NodeId v = topo[i];
    for (const Edge& e : g.OutEdges(v)) {
      if (e.distance != 0) continue;
      const long cand = dh.depth[static_cast<size_t>(v)] + g.EdgeLatency(e, lat);
      dh.depth[static_cast<size_t>(e.dst)] =
          std::max(dh.depth[static_cast<size_t>(e.dst)], cand);
      if (--indeg[static_cast<size_t>(e.dst)] == 0) topo.push_back(e.dst);
    }
  }
  for (size_t i = topo.size(); i-- > 0;) {
    const NodeId v = topo[i];
    for (const Edge& e : g.OutEdges(v)) {
      if (e.distance != 0) continue;
      dh.height[static_cast<size_t>(v)] =
          std::max(dh.height[static_cast<size_t>(v)],
                   dh.height[static_cast<size_t>(e.dst)] + g.EdgeLatency(e, lat));
    }
  }
  return dh;
}

namespace {

// Reachability (over all edges, any distance) from `seeds` in the given
// direction. Returns a membership bitmap.
std::vector<char> Reach(const DDG& g, const std::vector<char>& seeds,
                        bool forward) {
  std::vector<char> seen = seeds;
  std::queue<NodeId> q;
  for (NodeId v = 0; v < g.NumSlots(); ++v) {
    if (seeds[static_cast<size_t>(v)]) q.push(v);
  }
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    const auto& edges = forward ? g.OutEdges(v) : g.InEdges(v);
    for (const Edge& e : edges) {
      const NodeId w = forward ? e.dst : e.src;
      if (!seen[static_cast<size_t>(w)]) {
        seen[static_cast<size_t>(w)] = 1;
        q.push(w);
      }
    }
  }
  return seen;
}

}  // namespace

std::vector<NodeId> HrmsOrder(const DDG& g, const LatencyTable& lat) {
  const size_t n = static_cast<size_t>(g.NumSlots());
  const DepthHeight dh = ComputeDepthHeight(g, lat);

  // Recurrence sets by descending RecMII.
  struct RecSet {
    std::vector<NodeId> nodes;
    int rec_mii;
  };
  std::vector<RecSet> rec_sets;
  const std::vector<bool> on_rec = NodesOnRecurrences(g);
  for (const std::vector<NodeId>& scc : SCCs(g)) {
    const bool is_rec =
        scc.size() > 1 || (scc.size() == 1 && on_rec[static_cast<size_t>(scc[0])]);
    if (!is_rec) continue;
    rec_sets.push_back(RecSet{scc, SccRecMII(g, lat, scc)});
  }
  std::stable_sort(rec_sets.begin(), rec_sets.end(),
                   [](const RecSet& a, const RecSet& b) {
                     return a.rec_mii > b.rec_mii;
                   });

  // Build the sequence of node sets: each recurrence set is augmented with
  // the nodes on paths between it and the union of the previous sets.
  std::vector<char> placed_in_set(n, 0);
  std::vector<std::vector<NodeId>> sets;
  for (const RecSet& rs : rec_sets) {
    std::vector<NodeId> set;
    std::vector<char> cur(n, 0);
    for (NodeId v : rs.nodes) cur[static_cast<size_t>(v)] = 1;
    if (!sets.empty()) {
      std::vector<char> prev(n, 0);
      bool any_prev = false;
      for (const auto& s : sets) {
        for (NodeId v : s) {
          prev[static_cast<size_t>(v)] = 1;
          any_prev = true;
        }
      }
      if (any_prev) {
        // Path nodes: descendants of prev that are ancestors of cur, or
        // descendants of cur that are ancestors of prev.
        const auto desc_prev = Reach(g, prev, /*forward=*/true);
        const auto anc_prev = Reach(g, prev, /*forward=*/false);
        const auto desc_cur = Reach(g, cur, /*forward=*/true);
        const auto anc_cur = Reach(g, cur, /*forward=*/false);
        for (NodeId v = 0; v < g.NumSlots(); ++v) {
          const size_t i = static_cast<size_t>(v);
          if (!g.IsAlive(v) || placed_in_set[i] || cur[i]) continue;
          if ((desc_prev[i] && anc_cur[i]) || (desc_cur[i] && anc_prev[i])) {
            set.push_back(v);
            placed_in_set[i] = 1;
          }
        }
      }
    }
    for (NodeId v : rs.nodes) {
      if (!placed_in_set[static_cast<size_t>(v)]) {
        set.push_back(v);
        placed_in_set[static_cast<size_t>(v)] = 1;
      }
    }
    if (!set.empty()) sets.push_back(std::move(set));
  }
  // Remaining nodes form the final set.
  {
    std::vector<NodeId> rest;
    for (NodeId v = 0; v < g.NumSlots(); ++v) {
      if (g.IsAlive(v) && !placed_in_set[static_cast<size_t>(v)]) {
        rest.push_back(v);
      }
    }
    if (!rest.empty()) sets.push_back(std::move(rest));
  }

  // Inner ordering: alternating top-down / bottom-up sweeps (SMS).
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<char> ordered(n, 0);

  auto in_set = [&](const std::vector<NodeId>& s, std::vector<char>& bitmap) {
    std::fill(bitmap.begin(), bitmap.end(), 0);
    for (NodeId v : s) bitmap[static_cast<size_t>(v)] = 1;
  };

  std::vector<char> member(n, 0);
  for (const std::vector<NodeId>& s : sets) {
    in_set(s, member);
    std::vector<char> done(n, 0);
    size_t remaining = s.size();

    auto preds_of_ordered = [&]() {
      std::vector<NodeId> r;
      for (NodeId v : s) {
        if (done[static_cast<size_t>(v)]) continue;
        for (const Edge& e : g.OutEdges(v)) {
          if (ordered[static_cast<size_t>(e.dst)]) {
            r.push_back(v);
            break;
          }
        }
      }
      return r;
    };
    auto succs_of_ordered = [&]() {
      std::vector<NodeId> r;
      for (NodeId v : s) {
        if (done[static_cast<size_t>(v)]) continue;
        for (const Edge& e : g.InEdges(v)) {
          if (ordered[static_cast<size_t>(e.src)]) {
            r.push_back(v);
            break;
          }
        }
      }
      return r;
    };

    while (remaining > 0) {
      bool top_down = true;
      std::vector<NodeId> r = preds_of_ordered();
      if (!r.empty()) {
        top_down = false;  // these feed ordered nodes: go bottom-up
      } else {
        r = succs_of_ordered();
        if (!r.empty()) {
          top_down = true;
        } else {
          // Fresh seed: the unordered node with the greatest height
          // (critical source first).
          NodeId best = kNoNode;
          for (NodeId v : s) {
            if (done[static_cast<size_t>(v)]) continue;
            if (best == kNoNode ||
                dh.height[static_cast<size_t>(v)] >
                    dh.height[static_cast<size_t>(best)]) {
              best = v;
            }
          }
          r.push_back(best);
          top_down = true;
        }
      }

      while (!r.empty()) {
        if (top_down) {
          while (!r.empty()) {
            // Max height first (keeps critical paths tight).
            auto it = std::max_element(
                r.begin(), r.end(), [&](NodeId a, NodeId b) {
                  if (dh.height[static_cast<size_t>(a)] !=
                      dh.height[static_cast<size_t>(b)]) {
                    return dh.height[static_cast<size_t>(a)] <
                           dh.height[static_cast<size_t>(b)];
                  }
                  return a > b;
                });
            const NodeId v = *it;
            r.erase(it);
            if (done[static_cast<size_t>(v)]) continue;
            done[static_cast<size_t>(v)] = 1;
            ordered[static_cast<size_t>(v)] = 1;
            order.push_back(v);
            --remaining;
            for (const Edge& e : g.OutEdges(v)) {
              if (member[static_cast<size_t>(e.dst)] &&
                  !done[static_cast<size_t>(e.dst)]) {
                r.push_back(e.dst);
              }
            }
          }
          top_down = false;
          for (NodeId v : preds_of_ordered()) r.push_back(v);
        } else {
          while (!r.empty()) {
            auto it = std::max_element(
                r.begin(), r.end(), [&](NodeId a, NodeId b) {
                  if (dh.depth[static_cast<size_t>(a)] !=
                      dh.depth[static_cast<size_t>(b)]) {
                    return dh.depth[static_cast<size_t>(a)] <
                           dh.depth[static_cast<size_t>(b)];
                  }
                  return a > b;
                });
            const NodeId v = *it;
            r.erase(it);
            if (done[static_cast<size_t>(v)]) continue;
            done[static_cast<size_t>(v)] = 1;
            ordered[static_cast<size_t>(v)] = 1;
            order.push_back(v);
            --remaining;
            for (const Edge& e : g.InEdges(v)) {
              if (member[static_cast<size_t>(e.src)] &&
                  !done[static_cast<size_t>(e.src)]) {
                r.push_back(e.src);
              }
            }
          }
          top_down = true;
          for (NodeId v : succs_of_ordered()) r.push_back(v);
        }
      }
    }
  }

  HCRF_CHECK(order.size() == static_cast<size_t>(g.NumNodes()),
             "priority order covers %zu of %d nodes", order.size(),
             g.NumNodes());
  return order;
}

}  // namespace hcrf::sched
