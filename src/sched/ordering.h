// Register-sensitive node ordering in the spirit of HRMS (Hypernode
// Reduction Modulo Scheduling, Llosa et al. MICRO-28) as used by MIRS and
// MIRS_HC: nodes are pre-ordered so that every node (except the first of an
// independent component) has an already-ordered predecessor or successor
// when it is scheduled, which keeps lifetimes short, and recurrences are
// ordered first, most critical (highest RecMII) first.
//
// We implement the Swing-Modulo-Scheduling formulation of this ordering
// (same research group, equivalent intent): recurrence sets sorted by
// RecMII descending, each set extended with the nodes on paths to the
// previously ordered sets, inner ordering by alternating top-down /
// bottom-up sweeps prioritized by depth/height.
#pragma once

#include <vector>

#include "ddg/ddg.h"
#include "machine/machine_config.h"

namespace hcrf::sched {

/// Node priorities: position in the returned vector is the scheduling
/// order (front = highest priority).
std::vector<NodeId> HrmsOrder(const DDG& g, const LatencyTable& lat);

/// Longest path (sum of latencies over distance-0 edges) from sources to
/// each node ("depth") and to sinks ("height"); used by the ordering and
/// by the schedulers' start-cycle estimates.
struct DepthHeight {
  std::vector<long> depth;
  std::vector<long> height;
};
DepthHeight ComputeDepthHeight(const DDG& g, const LatencyTable& lat);

}  // namespace hcrf::sched
