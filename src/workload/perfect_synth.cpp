#include "workload/perfect_synth.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <vector>

namespace hcrf::workload {

namespace {

enum class Species { kStream, kCompute, kReduce, kRecur };

const char* Name(Species s) {
  switch (s) {
    case Species::kStream: return "stream";
    case Species::kCompute: return "compute";
    case Species::kReduce: return "reduce";
    case Species::kRecur: return "recur";
  }
  return "?";
}

class LoopBuilder {
 public:
  LoopBuilder(std::uint64_t seed, const SynthParams& p) : rng_(seed), p_(p) {}

  Loop Build(int index);

 private:
  using Dist = std::uniform_real_distribution<double>;

  double U() { return Dist(0.0, 1.0)(rng_); }
  int UInt(int lo, int hi) {  // inclusive
    return std::uniform_int_distribution<int>(lo, hi)(rng_);
  }
  long LogUniform(long lo, long hi) {
    const double x = std::exp(Dist(std::log(static_cast<double>(lo)),
                                   std::log(static_cast<double>(hi)))(rng_));
    return std::clamp(static_cast<long>(x), lo, hi);
  }

  Species PickSpecies() {
    const double total = p_.w_stream + p_.w_compute + p_.w_reduce + p_.w_recur;
    double x = U() * total;
    if ((x -= p_.w_stream) < 0) return Species::kStream;
    if ((x -= p_.w_compute) < 0) return Species::kCompute;
    if ((x -= p_.w_reduce) < 0) return Species::kReduce;
    return Species::kRecur;
  }

  std::int64_t PickStride() {
    const double x = U();
    if (x < 0.72) return 8;                        // unit stride
    if (x < 0.84) return 16;                       // interleaved/complex
    return 8 * LogUniform(64, 512);                // column of a 2-D array
  }

  OpClass PickComputeOp(bool heavy) {
    const double dv = heavy ? p_.div_frac : p_.div_frac / 3.0;
    const double sq = heavy ? p_.sqrt_frac : p_.sqrt_frac / 3.0;
    const double x = U();
    if (x < dv) return OpClass::kFDiv;
    if (x < dv + sq) return OpClass::kFSqrt;
    return x < dv + sq + 0.55 ? OpClass::kFAdd : OpClass::kFMul;
  }

  NodeId Leaf(DDG& g, bool heavy);
  NodeId Expr(DDG& g, int depth, bool heavy);

  std::mt19937_64 rng_;
  const SynthParams& p_;

  // Per-loop state.
  int next_array_ = 0;
  std::vector<std::int32_t> invariants_;
  /// Values produced by earlier statements, available for reuse (possibly
  /// loop-carried).
  std::vector<NodeId> prior_values_;
};

NodeId LoopBuilder::Leaf(DDG& g, bool heavy) {
  const double x = U();
  // Invariant leaves: scalars kept in registers across the loop.
  if (!invariants_.empty() && x < 0.15) {
    // An invariant cannot be a leaf by itself (it is not a node); fold it
    // into a one-operand compute op over another leaf.
    const NodeId inner = Leaf(g, heavy);
    Node n;
    n.op = PickComputeOp(heavy);
    if (IsUnpipelined(n.op)) n.op = OpClass::kFMul;
    n.invariant_uses = {invariants_[static_cast<size_t>(
        UInt(0, static_cast<int>(invariants_.size()) - 1))]};
    const NodeId id = g.AddNode(std::move(n));
    g.AddFlow(inner, id, 0);
    return id;
  }
  // A fresh load.
  Node n;
  n.op = OpClass::kLoad;
  const std::int32_t arr = UInt(0, std::max(0, next_array_ - 1) + 1);
  next_array_ = std::max(next_array_, arr + 1);
  n.mem = MemRef{arr, 8 * UInt(-2, 12), PickStride()};
  return g.AddNode(std::move(n));
}

NodeId LoopBuilder::Expr(DDG& g, int depth, bool heavy) {
  if (depth <= 0) return Leaf(g, heavy);
  const OpClass op = PickComputeOp(heavy);
  if (IsUnpipelined(op) || U() < 0.18) {
    // Unary: div/sqrt of a sub-expression (division by a leaf folded in).
    const NodeId a = Expr(g, depth - 1, heavy);
    const NodeId n = g.AddNode(op);
    g.AddFlow(a, n, 0);
    return n;
  }
  const NodeId a = Expr(g, depth - 1, heavy);
  const NodeId b = U() < 0.5 ? Leaf(g, heavy) : Expr(g, depth - 1, heavy);
  const NodeId n = g.AddNode(op);
  g.AddFlow(a, n, 0);
  g.AddFlow(b, n, 0);
  return n;
}

Loop LoopBuilder::Build(int index) {
  Loop loop;
  DDG& g = loop.ddg;
  const Species species = PickSpecies();
  g.set_name(std::string("synth-") + Name(species) + "-" +
             std::to_string(index));

  next_array_ = UInt(1, 3);
  invariants_.clear();
  prior_values_.clear();
  const int num_inv = UInt(0, 5);
  for (int i = 0; i < num_inv; ++i) invariants_.push_back(g.AddInvariant());

  const bool heavy = species == Species::kCompute;
  int statements = 1;
  int depth = 1;
  switch (species) {
    case Species::kStream:
      statements = UInt(1, p_.max_statements);
      depth = UInt(1, 3);
      break;
    case Species::kCompute:
      statements = UInt(1, 3);
      depth = UInt(2, p_.max_tree_depth);
      break;
    case Species::kReduce:
      // Wide loops: reductions coexist with independent work, so the loop
      // stays recurrence bound while sustaining useful parallelism (the
      // paper's recurrence-bound loops still reach respectable IPC).
      statements = UInt(2, 5);
      depth = UInt(1, 3);
      break;
    case Species::kRecur:
      statements = UInt(2, 4);
      depth = UInt(1, 2);
      break;
  }

  for (int s = 0; s < statements; ++s) {
    NodeId value = Expr(g, depth, heavy);
    // Loop-carried reuse of earlier statements' values: combine them into
    // this statement's result at iteration distance >= 6. These edges
    // create the long, cross-iteration lifetimes that drive the register
    // pressure the paper's evaluation depends on, without displacing any
    // memory accesses.
    while (!prior_values_.empty() && U() < p_.carried_use_prob) {
      const NodeId prev = prior_values_[static_cast<size_t>(
          UInt(0, static_cast<int>(prior_values_.size()) - 1))];
      const NodeId comb =
          g.AddNode(U() < 0.5 ? OpClass::kFAdd : OpClass::kFMul);
      g.AddFlow(value, comb, 0);
      g.AddEdge(prev, comb, DepKind::kFlow, UInt(5, 14));
      value = comb;
    }
    switch (species) {
      case Species::kStream:
      case Species::kCompute: {
        Node st;
        st.op = OpClass::kStore;
        const std::int32_t arr = next_array_++;
        st.mem = MemRef{arr, 0, PickStride()};
        const NodeId sid = g.AddNode(std::move(st));
        g.AddFlow(value, sid, 0);
        break;
      }
      case Species::kReduce: {
        // s += value; accumulator cycle of distance 1 (occasionally an
        // unrolled-by-2 reduction with distance 2).
        const NodeId acc = g.AddNode(U() < 0.3 ? OpClass::kFMul
                                               : OpClass::kFAdd);
        g.AddFlow(value, acc, 0);
        g.AddFlow(acc, acc, U() < 0.15 ? 2 : 1);
        break;
      }
      case Species::kRecur: {
        // x[i] = f(x[i-d], value): a chain of 1-3 compute ops closed into
        // a cycle with distance d. About half the recurrences are carried
        // through memory (a[i] = f(a[i-d])): the load is then part of the
        // cycle, which makes these loops sensitive to the memory latency
        // of the organization -- the effect the paper observes for
        // hierarchical RFs in Table 1.
        const int chain = UInt(1, 3);
        const int d = UInt(1, 2);
        const bool through_memory = U() < 0.5;
        NodeId first = g.AddNode(U() < 0.5 ? OpClass::kFAdd : OpClass::kFMul);
        g.AddFlow(value, first, 0);
        NodeId cur = first;
        for (int k = 1; k < chain; ++k) {
          const OpClass op = U() < 0.12 ? OpClass::kFDiv
                                        : (U() < 0.5 ? OpClass::kFAdd
                                                     : OpClass::kFMul);
          const NodeId nxt = g.AddNode(op);
          g.AddFlow(cur, nxt, 0);
          cur = nxt;
        }
        if (through_memory) {
          const std::int32_t arr = next_array_++;
          Node st;
          st.op = OpClass::kStore;
          st.mem = MemRef{arr, 0, 8};
          const NodeId sid = g.AddNode(std::move(st));
          g.AddFlow(cur, sid, 0);
          Node ld;
          ld.op = OpClass::kLoad;
          ld.mem = MemRef{arr, -8 * d, 8};
          const NodeId lid = g.AddNode(std::move(ld));
          // store a[i] -> load a[i-d] of a later iteration, then back into
          // the computation: the memory round trip closes the cycle.
          g.AddEdge(sid, lid, DepKind::kMem, d);
          g.AddFlow(lid, first, 0);
        } else {
          g.AddFlow(cur, first, d);
          // The recurrence value is usually also stored.
          if (U() < 0.7) {
            Node st;
            st.op = OpClass::kStore;
            st.mem = MemRef{next_array_++, 0, 8};
            const NodeId sid = g.AddNode(std::move(st));
            g.AddFlow(cur, sid, 0);
          }
        }
        prior_values_.push_back(cur);
        break;
      }
    }
    prior_values_.push_back(value);
  }

  // Dynamic profile. Compute-heavy loops are the hot ones in the paper's
  // cycle breakdown (Table 1), so they get larger trip counts. Trips are
  // large relative to SC*E so the software-pipeline fill/drain overhead is
  // second-order, as in the paper's whole-application measurements.
  switch (species) {
    case Species::kStream:
      loop.trip = LogUniform(200, 6144);
      break;
    case Species::kCompute:
      loop.trip = LogUniform(1024, 49152);
      break;
    case Species::kReduce:
      loop.trip = LogUniform(128, 2048);
      break;
    case Species::kRecur:
      loop.trip = LogUniform(256, 4096);
      break;
  }
  loop.invocations = LogUniform(1, 8);
  return loop;
}

}  // namespace

Suite PerfectSynthetic(const SynthParams& params) {
  Suite suite;
  for (int i = 0; i < params.num_loops; ++i) {
    // Per-loop generator stream: insensitive to generation order.
    LoopBuilder builder(params.seed * 0x9E3779B97F4A7C15ULL +
                            static_cast<std::uint64_t>(i) * 0xBF58476D1CE4E5B9ULL,
                        params);
    suite.Add(builder.Build(i));
  }
  return suite;
}

}  // namespace hcrf::workload
