// Synthetic stand-in for the paper's workbench: the 1258 software-
// pipelineable innermost loops of the Perfect Club as emitted by the
// ICTINEO front end.
//
// The generator is seeded and fully deterministic. Its knobs were tuned so
// the generated suite reproduces the paper's published aggregate
// fingerprints (see DESIGN.md "Substitutions" and the workload tests):
//   * bound-class mix under the monolithic S128 baseline close to
//     Table 1 (about 20% FU / 51% memory / 29% recurrence bound);
//   * register pressure high enough that 32/64-register organizations
//     spill while 128 registers suffice (Table 6's traffic column);
//   * inter-bank port demand matching the shape of Figure 4's CDFs.
//
// Loops are built from "statements" of four species:
//   kStream   : a[i] = expr(loads, invariants)        -- memory bound
//   kCompute  : deep expression trees, some div/sqrt  -- FU bound
//   kReduce   : s += expr(...)                        -- sum recurrence
//   kRecur    : x[i] = f(x[i-d], expr)                -- tight recurrence
#pragma once

#include <cstdint>

#include "workload/workload.h"

namespace hcrf::workload {

struct SynthParams {
  std::uint64_t seed = 20030422;  ///< Default: IPDPS'03 vintage.
  int num_loops = 1258;

  // Loop species mix (probabilities, need not be normalized).
  double w_stream = 0.47;
  double w_compute = 0.21;
  double w_reduce = 0.19;
  double w_recur = 0.13;

  // Statement/expression shape.
  int max_statements = 10;
  int max_tree_depth = 4;

  // Fraction of compute ops that are divisions / square roots in compute-
  // heavy loops (other species use about a third of this).
  double div_frac = 0.06;
  double sqrt_frac = 0.025;

  // Probability that an expression leaf reuses a value produced by an
  // earlier statement of the same loop at iteration distance >= 1. These
  // cross-statement, loop-carried uses create the long lifetimes that
  // drive register pressure.
  double carried_use_prob = 0.55;
};

/// Generates the synthetic suite. Deterministic in `params`.
Suite PerfectSynthetic(const SynthParams& params = {});

}  // namespace hcrf::workload
