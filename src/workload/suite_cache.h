// Process-wide construction of the standard workloads.
//
// Every bench binary (and now the corpus exporter) used to regenerate the
// synthetic Perfect Club stand-in on its own; this helper builds each
// standard suite once per process and shares it. Generation is seeded and
// deterministic, so sharing is purely a construction-cost optimization —
// the loops are identical across call sites.
#pragma once

#include <cstddef>
#include <string_view>

#include "workload/workload.h"

namespace hcrf::workload {

/// The default-parameter synthetic Perfect Club stand-in
/// (PerfectSynthetic()), built once per process.
const Suite& SharedSyntheticSuite();

/// The hand-written kernel suite (KernelSuite()), built once per process.
const Suite& SharedKernelSuite();

/// Shared suite by its corpus name — "kernels" or "synth" — the spelling
/// used by `hcrf_sched export --suite` and sweep-spec `suite` directives.
/// nullptr when the name is unknown.
const Suite* SharedSuiteByName(std::string_view name);

/// Deterministic strided slice of `full` with (up to) `n` loops; the
/// ablation benches use it for expensive sweeps.
Suite SuiteSlice(const Suite& full, std::size_t n);

}  // namespace hcrf::workload
