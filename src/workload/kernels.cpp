#include "workload/kernels.h"

namespace hcrf::workload {

namespace {

NodeId Ld(DDG& g, std::int32_t array, std::int64_t base, std::int64_t stride) {
  Node n;
  n.op = OpClass::kLoad;
  n.mem = MemRef{array, base, stride};
  return g.AddNode(std::move(n));
}

NodeId St(DDG& g, std::int32_t array, std::int64_t base, std::int64_t stride) {
  Node n;
  n.op = OpClass::kStore;
  n.mem = MemRef{array, base, stride};
  return g.AddNode(std::move(n));
}

NodeId Bin(DDG& g, OpClass op, NodeId a, NodeId b) {
  const NodeId n = g.AddNode(op);
  g.AddFlow(a, n, 0);
  g.AddFlow(b, n, 0);
  return n;
}

NodeId UnaryInv(DDG& g, OpClass op, NodeId a, std::int32_t inv) {
  Node n;
  n.op = op;
  n.invariant_uses = {inv};
  const NodeId id = g.AddNode(std::move(n));
  g.AddFlow(a, id, 0);
  return id;
}

}  // namespace

Loop MakeDaxpy(long trip) {
  Loop loop;
  DDG& g = loop.ddg;
  g.set_name("daxpy");
  const std::int32_t a = g.AddInvariant();
  const NodeId lx = Ld(g, 0, 0, 8);
  const NodeId ly = Ld(g, 1, 0, 8);
  const NodeId mul = UnaryInv(g, OpClass::kFMul, lx, a);  // a * x[i]
  const NodeId add = Bin(g, OpClass::kFAdd, mul, ly);
  const NodeId st = St(g, 1, 0, 8);
  g.AddFlow(add, st, 0);
  loop.trip = trip;
  return loop;
}

Loop MakeDot(long trip) {
  Loop loop;
  DDG& g = loop.ddg;
  g.set_name("dot");
  const NodeId lx = Ld(g, 0, 0, 8);
  const NodeId ly = Ld(g, 1, 0, 8);
  const NodeId mul = Bin(g, OpClass::kFMul, lx, ly);
  const NodeId add = g.AddNode(OpClass::kFAdd);  // s = s + x*y
  g.AddFlow(mul, add, 0);
  g.AddFlow(add, add, 1);  // sum recurrence, distance 1
  loop.trip = trip;
  return loop;
}

Loop MakeVadd(long trip) {
  Loop loop;
  DDG& g = loop.ddg;
  g.set_name("vadd");
  const NodeId la = Ld(g, 0, 0, 8);
  const NodeId lb = Ld(g, 1, 0, 8);
  const NodeId add = Bin(g, OpClass::kFAdd, la, lb);
  const NodeId st = St(g, 2, 0, 8);
  g.AddFlow(add, st, 0);
  loop.trip = trip;
  return loop;
}

Loop MakeStencil3(long trip) {
  Loop loop;
  DDG& g = loop.ddg;
  g.set_name("stencil3");
  const std::int32_t w = g.AddInvariant();
  const NodeId lm = Ld(g, 0, -8, 8);  // a[i-1]
  const NodeId lc = Ld(g, 0, 0, 8);   // a[i]
  const NodeId lp = Ld(g, 0, 8, 8);   // a[i+1]
  const NodeId s1 = Bin(g, OpClass::kFAdd, lm, lc);
  const NodeId s2 = Bin(g, OpClass::kFAdd, s1, lp);
  const NodeId mul = UnaryInv(g, OpClass::kFMul, s2, w);
  const NodeId st = St(g, 1, 0, 8);
  g.AddFlow(mul, st, 0);
  loop.trip = trip;
  return loop;
}

Loop MakeHydro(long trip) {
  Loop loop;
  DDG& g = loop.ddg;
  g.set_name("hydro-lk1");
  const std::int32_t q = g.AddInvariant();
  const std::int32_t r = g.AddInvariant();
  const std::int32_t t = g.AddInvariant();
  const NodeId ly = Ld(g, 0, 0, 8);        // y[i]
  const NodeId lz10 = Ld(g, 1, 80, 8);     // z[i+10]
  const NodeId lz11 = Ld(g, 1, 88, 8);     // z[i+11]
  const NodeId rz = UnaryInv(g, OpClass::kFMul, lz10, r);
  const NodeId tz = UnaryInv(g, OpClass::kFMul, lz11, t);
  const NodeId sum = Bin(g, OpClass::kFAdd, rz, tz);
  const NodeId prod = Bin(g, OpClass::kFMul, ly, sum);
  const NodeId res = UnaryInv(g, OpClass::kFAdd, prod, q);
  const NodeId st = St(g, 2, 0, 8);
  g.AddFlow(res, st, 0);
  loop.trip = trip;
  return loop;
}

Loop MakeFirstOrderRec(long trip) {
  Loop loop;
  DDG& g = loop.ddg;
  g.set_name("rec1");
  const std::int32_t a = g.AddInvariant();
  const NodeId lb = Ld(g, 0, 0, 8);
  // x = a*x + b[i]: the multiply and add form a distance-1 cycle.
  Node nm;
  nm.op = OpClass::kFMul;
  nm.invariant_uses = {a};
  const NodeId mul = g.AddNode(std::move(nm));
  const NodeId add = Bin(g, OpClass::kFAdd, mul, lb);
  g.AddFlow(add, mul, 1);
  const NodeId st = St(g, 1, 0, 8);
  g.AddFlow(add, st, 0);
  loop.trip = trip;
  return loop;
}

Loop MakeNorm2(long trip) {
  Loop loop;
  DDG& g = loop.ddg;
  g.set_name("norm2");
  const NodeId lx = Ld(g, 0, 0, 8);
  const NodeId ly = Ld(g, 1, 0, 8);
  const NodeId xx = Bin(g, OpClass::kFMul, lx, lx);
  const NodeId yy = Bin(g, OpClass::kFMul, ly, ly);
  const NodeId sum = Bin(g, OpClass::kFAdd, xx, yy);
  const NodeId root = g.AddNode(OpClass::kFSqrt);
  g.AddFlow(sum, root, 0);
  const NodeId acc = g.AddNode(OpClass::kFAdd);
  g.AddFlow(root, acc, 0);
  g.AddFlow(acc, acc, 1);
  loop.trip = trip;
  return loop;
}

Loop MakeVdiv(long trip) {
  Loop loop;
  DDG& g = loop.ddg;
  g.set_name("vdiv");
  const NodeId la = Ld(g, 0, 0, 8);
  const NodeId lb = Ld(g, 1, 0, 8);
  const NodeId div = Bin(g, OpClass::kFDiv, la, lb);
  const NodeId st = St(g, 2, 0, 8);
  g.AddFlow(div, st, 0);
  loop.trip = trip;
  return loop;
}

Loop MakeCmul(long trip) {
  Loop loop;
  DDG& g = loop.ddg;
  g.set_name("cmul");
  const NodeId ar = Ld(g, 0, 0, 16);
  const NodeId ai = Ld(g, 0, 8, 16);
  const NodeId br = Ld(g, 1, 0, 16);
  const NodeId bi = Ld(g, 1, 8, 16);
  const NodeId t1 = Bin(g, OpClass::kFMul, ar, br);
  const NodeId t2 = Bin(g, OpClass::kFMul, ai, bi);
  const NodeId t3 = Bin(g, OpClass::kFMul, ar, bi);
  const NodeId t4 = Bin(g, OpClass::kFMul, ai, br);
  const NodeId cr = Bin(g, OpClass::kFAdd, t1, t2);  // (sign folded)
  const NodeId ci = Bin(g, OpClass::kFAdd, t3, t4);
  const NodeId sr = St(g, 2, 0, 16);
  const NodeId si = St(g, 2, 8, 16);
  g.AddFlow(cr, sr, 0);
  g.AddFlow(ci, si, 0);
  loop.trip = trip;
  return loop;
}

Loop MakeMatvecRow(long trip) {
  Loop loop;
  DDG& g = loop.ddg;
  g.set_name("matvec-row");
  const NodeId la = Ld(g, 0, 0, 8);  // A[r][i], row-major contiguous
  const NodeId lx = Ld(g, 1, 0, 8);
  const NodeId mul = Bin(g, OpClass::kFMul, la, lx);
  const NodeId acc = g.AddNode(OpClass::kFAdd);
  g.AddFlow(mul, acc, 0);
  g.AddFlow(acc, acc, 1);
  loop.trip = trip;
  return loop;
}

Loop MakeHorner(long trip) {
  Loop loop;
  DDG& g = loop.ddg;
  g.set_name("horner");
  const std::int32_t x = g.AddInvariant();
  const NodeId lc = Ld(g, 0, 0, 8);
  Node nm;
  nm.op = OpClass::kFMul;
  nm.invariant_uses = {x};
  const NodeId mul = g.AddNode(std::move(nm));  // p * x
  const NodeId add = Bin(g, OpClass::kFAdd, mul, lc);
  g.AddFlow(add, mul, 1);  // p feeds next iteration's multiply
  loop.trip = trip;
  return loop;
}

Loop MakeFir4(long trip) {
  Loop loop;
  DDG& g = loop.ddg;
  g.set_name("fir4");
  const std::int32_t w0 = g.AddInvariant();
  const std::int32_t w1 = g.AddInvariant();
  const std::int32_t w2 = g.AddInvariant();
  const std::int32_t w3 = g.AddInvariant();
  const NodeId x0 = Ld(g, 0, 0, 8);
  const NodeId x1 = Ld(g, 0, 8, 8);
  const NodeId x2 = Ld(g, 0, 16, 8);
  const NodeId x3 = Ld(g, 0, 24, 8);
  const NodeId m0 = UnaryInv(g, OpClass::kFMul, x0, w0);
  const NodeId m1 = UnaryInv(g, OpClass::kFMul, x1, w1);
  const NodeId m2 = UnaryInv(g, OpClass::kFMul, x2, w2);
  const NodeId m3 = UnaryInv(g, OpClass::kFMul, x3, w3);
  const NodeId s0 = Bin(g, OpClass::kFAdd, m0, m1);
  const NodeId s1 = Bin(g, OpClass::kFAdd, m2, m3);
  const NodeId s2 = Bin(g, OpClass::kFAdd, s0, s1);
  const NodeId st = St(g, 1, 0, 8);
  g.AddFlow(s2, st, 0);
  loop.trip = trip;
  return loop;
}

Suite KernelSuite() {
  Suite suite;
  suite.Add(MakeDaxpy());
  suite.Add(MakeDot());
  suite.Add(MakeVadd());
  suite.Add(MakeStencil3());
  suite.Add(MakeHydro());
  suite.Add(MakeFirstOrderRec());
  suite.Add(MakeNorm2());
  suite.Add(MakeVdiv());
  suite.Add(MakeCmul());
  suite.Add(MakeMatvecRow());
  suite.Add(MakeHorner());
  suite.Add(MakeFir4());
  return suite;
}

}  // namespace hcrf::workload
