#include "workload/suite_cache.h"

#include <algorithm>

#include "workload/kernels.h"
#include "workload/perfect_synth.h"

namespace hcrf::workload {

const Suite& SharedSyntheticSuite() {
  static const Suite suite = PerfectSynthetic();
  return suite;
}

const Suite& SharedKernelSuite() {
  static const Suite suite = KernelSuite();
  return suite;
}

const Suite* SharedSuiteByName(std::string_view name) {
  if (name == "kernels") return &SharedKernelSuite();
  if (name == "synth") return &SharedSyntheticSuite();
  return nullptr;
}

Suite SuiteSlice(const Suite& full, std::size_t n) {
  Suite out;
  if (n == 0) return out;
  const std::size_t stride = std::max<std::size_t>(1, full.size() / n);
  for (std::size_t i = 0; i < full.size() && out.size() < n; i += stride) {
    out.Add(full[i]);
  }
  return out;
}

}  // namespace hcrf::workload
