// Hand-written dependence graphs of classic numerical kernels. These are
// the loops the paper's introduction motivates (numerical/multimedia inner
// loops); they are used by the examples, the unit tests and the
// micro-benchmarks, and they anchor the synthetic suite's realism.
#pragma once

#include "workload/workload.h"

namespace hcrf::workload {

/// y[i] = a * x[i] + y[i]          (BLAS daxpy; invariant a)
Loop MakeDaxpy(long trip = 1000);

/// s += x[i] * y[i]                (dot product; sum recurrence)
Loop MakeDot(long trip = 1000);

/// c[i] = a[i] + b[i]              (vector add; memory bound)
Loop MakeVadd(long trip = 1000);

/// b[i] = w * (a[i-1] + a[i] + a[i+1])   (3-point stencil)
Loop MakeStencil3(long trip = 1000);

/// x[i] = q + y[i]*(r*z[i+10] + t*z[i+11])  (Livermore kernel 1, hydro)
Loop MakeHydro(long trip = 990);

/// x[i] = a * x[i-1] + b[i]        (first-order linear recurrence)
Loop MakeFirstOrderRec(long trip = 1000);

/// s += sqrt(x[i]*x[i] + y[i]*y[i])  (2-norm accumulation; sqrt latency)
Loop MakeNorm2(long trip = 500);

/// c[i] = a[i] / b[i]              (element-wise division; unpipelined FU)
Loop MakeVdiv(long trip = 500);

/// (cr,ci)[i] = (ar,ai)[i] * (br,bi)[i]   (complex multiply, 4 mul 2 add)
Loop MakeCmul(long trip = 800);

/// y[r] += A[r][i] * x[i]          (matvec inner loop; y[r] reduction)
Loop MakeMatvecRow(long trip = 400);

/// Horner evaluation p = p*x + c[i]  (tight mul+add recurrence)
Loop MakeHorner(long trip = 600);

/// y[i] = sum_k w[k] * x[i+k], k unrolled 4x  (FIR tap; compute heavy)
Loop MakeFir4(long trip = 1000);

/// All kernels above, as a small named suite.
Suite KernelSuite();

}  // namespace hcrf::workload
