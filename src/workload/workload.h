// Workload abstractions: a Loop couples a dependence graph with its
// dynamic execution profile (trip count and invocation count), a Suite is
// the collection the paper's aggregate metrics run over.
//
// The paper uses the 1258 software-pipelineable innermost loops of the
// Perfect Club, compiled by ICTINEO. Neither is available offline, so
// suite.h provides (a) hand-written classic numerical kernels and (b) a
// seeded synthetic generator calibrated to the paper's published aggregate
// fingerprints (see DESIGN.md "Substitutions").
#pragma once

#include <string>
#include <vector>

#include "ddg/ddg.h"

namespace hcrf::workload {

struct Loop {
  DDG ddg;
  /// Iterations per invocation (the paper's N is trip * invocations).
  long trip = 100;
  /// Number of times the loop is started (the paper's E).
  long invocations = 1;

  long TotalIterations() const { return trip * invocations; }
};

class Suite {
 public:
  Suite() = default;
  explicit Suite(std::vector<Loop> loops) : loops_(std::move(loops)) {}

  const std::vector<Loop>& loops() const { return loops_; }
  std::vector<Loop>& loops() { return loops_; }
  size_t size() const { return loops_.size(); }
  const Loop& operator[](size_t i) const { return loops_[i]; }

  void Add(Loop loop) { loops_.push_back(std::move(loop)); }

 private:
  std::vector<Loop> loops_;
};

}  // namespace hcrf::workload
