#include "experiment/run.h"

#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "memsim/prefetch.h"
#include "perf/runner.h"
#include "service/batch.h"
#include "service/session.h"
#include "workload/suite_cache.h"

namespace hcrf::experiment {

namespace {

/// Deterministic short rendering for report cells ("%.6g": enough digits
/// for the paper's precision, stable across cold/warm runs because the
/// underlying doubles are bit-identical).
std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return std::string(buf);
}

std::string FmtDelta(double v) {
  if (v > -1e-12 && v < 1e-12) v = 0.0;  // don't print rounding noise
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.6g", v);
  return std::string(buf);
}

/// Per-experiment expansion plan: the resolved workload plus, for every
/// (machine, engine, loop) cell, the index of its deduplicated batch
/// request.
struct Plan {
  const Experiment* def = nullptr;
  std::shared_ptr<const workload::Suite> owned;  ///< Slice storage.
  std::vector<std::shared_ptr<const workload::Loop>> loops;
  std::vector<std::size_t> cell_request;
};

std::vector<std::shared_ptr<const workload::Loop>> ResolveWorkload(
    const WorkloadSpec& spec, bool smoke,
    std::shared_ptr<const workload::Suite>* owned) {
  std::vector<std::shared_ptr<const workload::Loop>> loops;
  if (spec.suite.empty()) return loops;
  const workload::Suite* base = workload::SharedSuiteByName(spec.suite);
  if (base == nullptr) {
    throw std::runtime_error("experiment references unknown suite '" +
                             spec.suite + "'");
  }
  std::size_t n = smoke ? spec.smoke_slice : spec.slice;
  if (smoke && spec.slice != 0 && spec.slice < n) n = spec.slice;
  if (n == 0 || n >= base->size()) {
    // Whole suite: the shared suites are process-static, so alias.
    loops.reserve(base->size());
    for (std::size_t i = 0; i < base->size(); ++i) {
      loops.emplace_back(std::shared_ptr<const void>(), &(*base)[i]);
    }
  } else {
    *owned =
        std::make_shared<const workload::Suite>(workload::SuiteSlice(*base, n));
    loops.reserve((*owned)->size());
    for (std::size_t i = 0; i < (*owned)->size(); ++i) {
      loops.emplace_back(*owned, &(**owned)[i]);
    }
  }
  return loops;
}

std::string LoopLabel(const workload::Loop& loop, std::size_t index) {
  return loop.ddg.name().empty() ? "loop-" + std::to_string(index)
                                 : loop.ddg.name();
}

}  // namespace

int ReproReport::RefChecks() const {
  int n = 0;
  for (const ExperimentResult& e : experiments) {
    n += static_cast<int>(e.refs.size());
  }
  return n;
}

int ReproReport::RefPasses() const {
  // Enforced passes only: non-enforced (n/a) refs are their own bucket,
  // so pass + fail + n/a partitions RefChecks().
  int n = 0;
  for (const ExperimentResult& e : experiments) {
    for (const RefCheck& c : e.refs) {
      if (c.enforced && c.passed) ++n;
    }
  }
  return n;
}

ReproReport RunExperiments(const std::vector<const Experiment*>& selection,
                           const ReproOptions& opt,
                           service::SchedulerService& session) {
  std::vector<const Experiment*> sel = selection;
  if (sel.empty()) {
    for (const Experiment& e : Registry()) sel.push_back(&e);
  }

  // Expand every scheduling cell of every experiment into one flat batch,
  // deduplicated by schedule-cache key (identical (loop, machine, options,
  // overrides) cells — within or across experiments — schedule once).
  std::vector<Plan> plans;
  std::vector<service::BatchRequest> requests;
  std::unordered_map<std::string, std::size_t> dedup;
  for (const Experiment* def : sel) {
    Plan plan;
    plan.def = def;
    plan.loops = ResolveWorkload(def->workload, opt.smoke, &plan.owned);
    plan.cell_request.reserve(def->CellsPerLoop() * plan.loops.size());
    for (const MachineVariant& mv : def->machines) {
      for (const EngineVariant& ev : def->engines) {
        for (std::size_t l = 0; l < plan.loops.size(); ++l) {
          const std::shared_ptr<const workload::Loop>& loop = plan.loops[l];
          service::BatchRequest req;
          req.id = def->name + "/" + mv.label + "/" + ev.label + "/" +
                   LoopLabel(*loop, l);
          req.loop = loop;
          req.machine = mv.machine;
          req.options = ev.options;
          if (ev.prefetch != memsim::PrefetchMode::kNone) {
            req.overrides = memsim::ClassifyBindingPrefetch(
                loop->ddg, mv.machine, loop->trip, ev.prefetch);
          }
          const std::string key =
              service::MakeCacheKey(loop->ddg, req.machine, req.options,
                                    req.overrides)
                  .Hex();
          const auto [it, inserted] = dedup.emplace(key, requests.size());
          if (inserted) requests.push_back(std::move(req));
          plan.cell_request.push_back(it->second);
        }
      }
    }
    plans.push_back(std::move(plan));
  }

  service::BatchReport batch;
  if (!requests.empty()) batch = session.RunBatch(requests);

  ReproReport report;
  report.smoke = opt.smoke;
  report.cache = batch.cache;
  report.requests = static_cast<int>(requests.size());
  report.scheduled = batch.scheduled;
  report.hits = batch.hits;
  report.seconds = batch.seconds;
  report.timing = batch.timing;

  for (const Plan& plan : plans) {
    const Experiment* def = plan.def;
    ExperimentData data;
    data.def = def;
    data.smoke = opt.smoke;
    data.loops.reserve(plan.loops.size());
    for (const auto& loop : plan.loops) data.loops.push_back(loop.get());
    data.cells.resize(plan.cell_request.size());
    for (std::size_t idx = 0; idx < plan.cell_request.size(); ++idx) {
      const std::size_t per_machine = def->engines.size() * plan.loops.size();
      const std::size_t m = idx / per_machine;
      const std::size_t e = (idx % per_machine) / plan.loops.size();
      const std::size_t l = idx % plan.loops.size();
      const service::BatchItem& item = batch.items[plan.cell_request[idx]];
      // Metrics derive deterministically from the schedule (cache-served
      // results are bit-identical to fresh ones); the memory replay runs
      // per cell, so a warm run reproduces stall cycles exactly.
      data.cells[idx] =
          perf::MetricsFromResult(*plan.loops[l], def->machines[m].machine,
                                  item.result,
                                  def->engines[e].simulate_memory);
    }

    ExperimentResult res;
    res.name = def->name;
    res.title = def->title;
    res.num_loops = plan.loops.size();
    res.cells = static_cast<int>(data.cells.size());
    for (const perf::LoopMetrics& lm : data.cells) {
      if (!lm.ok) ++res.cells_failed;
    }
    // Per-(machine, engine) failure accounting: every engine's failures
    // are counted and reported — never only one side of a comparison.
    for (std::size_t m = 0; m < def->machines.size(); ++m) {
      for (std::size_t e = 0; e < def->engines.size(); ++e) {
        int failed = 0;
        for (std::size_t l = 0; l < plan.loops.size(); ++l) {
          if (!data.At(m, e, l).ok) ++failed;
        }
        if (failed > 0) {
          res.failure_notes.push_back(
              def->machines[m].label + "/" + def->engines[e].label + ": " +
              std::to_string(failed) + " of " +
              std::to_string(plan.loops.size()) + " loops failed");
        }
      }
    }

    res.rows = def->aggregate != nullptr ? def->aggregate(data)
                                         : std::vector<MetricValue>{};

    std::map<std::pair<std::string, std::string>, double> row_values;
    for (const MetricValue& mv : res.rows) {
      row_values[{mv.row, mv.metric}] = mv.value;
    }
    for (const PaperRef* ref : RefsFor(def->name)) {
      RefCheck c;
      c.ref = ref;
      const auto it = row_values.find({ref->row, ref->metric});
      c.found = it != row_values.end();
      if (!c.found) {
        // A reference with no matching report row is a registry bug, not
        // a tolerance question: always enforced, always a failure.
        c.enforced = true;
        c.passed = false;
        c.verdict = "missing";
      } else {
        c.measured = it->second;
        c.delta = c.measured - ref->paper;
        c.passed = ref->Pass(c.measured);
        c.enforced = !(opt.smoke && ref->workload_dependent);
        c.verdict = !c.enforced ? "n/a" : (c.passed ? "pass" : "FAIL");
      }
      if (c.enforced && !c.passed) ++report.ref_failures;
      res.refs.push_back(std::move(c));
    }
    report.experiments.push_back(std::move(res));
  }
  return report;
}

ReproReport RunExperiments(const std::vector<const Experiment*>& selection,
                           const ReproOptions& opt) {
  service::ServiceConfig config;
  config.cache_dir = opt.cache_dir;
  config.cache_mem_entries = opt.cache_mem_entries;
  config.cache_mem_bytes = opt.cache_mem_bytes;
  config.threads = opt.threads;
  service::SchedulerService session(config);
  ReproReport report = RunExperiments(selection, opt, session);
  session.Drain();
  if (session.has_cache()) report.cache = session.cache_stats();
  return report;
}

std::string ReproCsv(const ReproReport& report) {
  std::string out = "experiment,row,metric,value,paper,delta,verdict\n";
  for (const ExperimentResult& e : report.experiments) {
    std::map<std::pair<std::string, std::string>, const RefCheck*> by_cell;
    for (const RefCheck& c : e.refs) {
      if (c.found) by_cell[{c.ref->row, c.ref->metric}] = &c;
    }
    for (const MetricValue& mv : e.rows) {
      out += e.name + "," + mv.row + "," + mv.metric + "," + Fmt(mv.value);
      const auto it = by_cell.find({mv.row, mv.metric});
      if (it != by_cell.end()) {
        const RefCheck& c = *it->second;
        out += "," + Fmt(c.ref->paper) + "," + FmtDelta(c.delta) + "," +
               c.verdict;
      } else {
        out += ",,,";
      }
      out += "\n";
    }
    for (const RefCheck& c : e.refs) {
      if (!c.found) {
        out += e.name + "," + c.ref->row + "," + c.ref->metric + ",," +
               Fmt(c.ref->paper) + ",,missing\n";
      }
    }
  }
  return out;
}

std::string ReproMarkdown(const ReproReport& report) {
  std::string out = "# Paper reproduction: conf_ipps_ZalameaLAV03\n\n";
  if (report.smoke) {
    out += "Smoke mode: bounded workload slices; workload-dependent "
           "reference values are reported as n/a.\n\n";
  }

  int pass = 0, fail = 0, na = 0;
  for (const ExperimentResult& e : report.experiments) {
    for (const RefCheck& c : e.refs) {
      if (c.verdict == "n/a") {
        ++na;
      } else if (c.found && c.passed) {
        ++pass;
      } else {
        ++fail;
      }
    }
  }
  out += std::to_string(report.experiments.size()) + " experiments, " +
         std::to_string(pass + fail + na) + " reference values: " +
         std::to_string(pass) + " pass, " + std::to_string(fail) +
         " fail, " + std::to_string(na) + " n/a.\n\n";

  out += "| experiment | loops | cells | failed cells | refs | pass | fail "
         "| n/a |\n|---|---|---|---|---|---|---|---|\n";
  for (const ExperimentResult& e : report.experiments) {
    int ep = 0, ef = 0, en = 0;
    for (const RefCheck& c : e.refs) {
      if (c.verdict == "n/a") {
        ++en;
      } else if (c.found && c.passed) {
        ++ep;
      } else {
        ++ef;
      }
    }
    out += "| " + e.name + " | " + std::to_string(e.num_loops) + " | " +
           std::to_string(e.cells) + " | " + std::to_string(e.cells_failed) +
           " | " + std::to_string(e.refs.size()) + " | " +
           std::to_string(ep) + " | " + std::to_string(ef) + " | " +
           std::to_string(en) + " |\n";
  }

  for (const ExperimentResult& e : report.experiments) {
    out += "\n## " + e.name + " — " + e.title + "\n\n";
    if (!e.failure_notes.empty()) {
      out += "Scheduling failures (failures are experiment data; rows are "
             "never dropped silently):\n";
      for (const std::string& note : e.failure_notes) {
        out += "* " + note + "\n";
      }
      out += "\n";
    }
    std::map<std::pair<std::string, std::string>, const RefCheck*> by_cell;
    for (const RefCheck& c : e.refs) {
      if (c.found) by_cell[{c.ref->row, c.ref->metric}] = &c;
    }
    out += "| row | metric | measured | paper | delta | verdict |\n"
           "|---|---|---|---|---|---|\n";
    for (const MetricValue& mv : e.rows) {
      out += "| " + mv.row + " | " + mv.metric + " | " + Fmt(mv.value);
      const auto it = by_cell.find({mv.row, mv.metric});
      if (it != by_cell.end()) {
        const RefCheck& c = *it->second;
        out += " | " + Fmt(c.ref->paper) + " | " + FmtDelta(c.delta) +
               " | " + c.verdict + " |\n";
      } else {
        out += " | - | - | - |\n";
      }
    }
    for (const RefCheck& c : e.refs) {
      if (!c.found) {
        out += "| " + c.ref->row + " | " + c.ref->metric + " | - | " +
               Fmt(c.ref->paper) + " | - | missing |\n";
      }
    }
  }
  return out;
}

}  // namespace hcrf::experiment
