// Experiment runner: executes registered experiments through the batch
// scheduling service and renders the paper-reproduction report.
//
// All scheduling cells of the selected experiments are expanded into ONE
// flat service::RunBatch call — deduplicated by schedule-cache key, so a
// cell shared between experiments (e.g. the characterized S128 baseline
// appears in Tables 1 and 6) is scheduled once — and backed by the
// persistent ScheduleCache: a warm rerun of the whole paper is served
// from disk. Binding-prefetch cells carry their per-loop latency
// overrides in the BatchRequest (part of the cache key); memory-system
// stall cycles are replayed deterministically after the batch.
//
// Reports are deterministic: rows, reference deltas and verdicts only, no
// timings or cache flags — a cold and a warm run emit byte-identical CSV
// and markdown, which is the subsystem's acceptance check (`repro
// --smoke` and CI enforce it).
#pragma once

#include <string>
#include <vector>

#include "experiment/experiment.h"
#include "experiment/paper_ref.h"
#include "service/batch.h"
#include "service/sched_cache.h"

namespace hcrf::service {
class SchedulerService;
}

namespace hcrf::experiment {

struct ReproOptions {
  /// Persistent schedule cache directory; empty disables caching.
  std::string cache_dir;
  /// Memory-tier entry bound (`--cache-mem`); 0 disables the hot tier.
  long cache_mem_entries = 0;
  /// Memory-tier byte bound; 0 = the MemoryTier default.
  long cache_mem_bytes = 0;
  /// Parallelism (perf::RunOptions convention: 0 = hardware concurrency).
  int threads = 0;
  /// Run each experiment on its bounded smoke slice instead of the full
  /// workload. Workload-dependent reference values are reported but not
  /// enforced (the slice shifts them by construction).
  bool smoke = false;
};

/// One reference value checked against a report row.
struct RefCheck {
  const PaperRef* ref = nullptr;
  double measured = 0.0;
  double delta = 0.0;   ///< measured - paper.
  bool found = false;   ///< The aggregation emitted the (row, metric).
  bool enforced = false;  ///< Counts toward ref_failures when failing.
  bool passed = false;
  /// "pass", "FAIL", "n/a" (workload-dependent ref on a smoke slice) or
  /// "missing" (no matching report row; always a failure).
  std::string verdict;
};

struct ExperimentResult {
  std::string name;
  std::string title;
  std::size_t num_loops = 0;
  int cells = 0;       ///< Scheduling cells (0 for hardware-model-only).
  int cells_failed = 0;
  /// Per-(machine, engine) scheduling-failure accounting: one line per
  /// variant with failures ("<machine>/<engine>: N of L loops failed").
  /// Failures are experiment data, never silently dropped rows.
  std::vector<std::string> failure_notes;
  std::vector<MetricValue> rows;
  std::vector<RefCheck> refs;  ///< In paper_ref table order.
};

struct ReproReport {
  bool smoke = false;
  std::vector<ExperimentResult> experiments;
  /// Batch/cache run metadata (stdout summary only; never in reports).
  service::ScheduleCache::Stats cache;
  int requests = 0;   ///< Deduplicated scheduling requests dispatched.
  int scheduled = 0;  ///< Fresh MirsHC runs.
  int hits = 0;       ///< Requests served from the persistent cache.
  int ref_failures = 0;  ///< Enforced reference values out of tolerance.
  double seconds = 0.0;
  /// Summed per-request phase timings of the scheduling batch (stdout
  /// summary only, like `cache`: reports stay byte-identical cold/warm).
  service::RequestTiming timing;

  int RefChecks() const;
  int RefPasses() const;
};

/// Runs the selected experiments (every registry entry when `selection`
/// is empty). Throws on an unknown suite name; per-cell scheduling
/// failures are data and surface in the results. The session form
/// schedules through an existing resident session (report.cache is the
/// per-call delta); the options form wraps a transient, drained session.
ReproReport RunExperiments(const std::vector<const Experiment*>& selection,
                           const ReproOptions& opt,
                           service::SchedulerService& session);
ReproReport RunExperiments(const std::vector<const Experiment*>& selection,
                           const ReproOptions& opt);

/// Deterministic renderings (identical cold and warm).
/// CSV: experiment,row,metric,value,paper,delta,verdict — one line per
/// report row, plus a line per unmatched reference value.
std::string ReproCsv(const ReproReport& report);
std::string ReproMarkdown(const ReproReport& report);

}  // namespace hcrf::experiment
