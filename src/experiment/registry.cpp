// The 13 registered paper-reproduction experiments. Each definition is the
// declarative replacement of one of the standalone bench/ binaries this
// subsystem retired; the aggregation kernels port those mains' arithmetic
// verbatim so `hcrf_sched repro` reproduces their numbers. Reference
// anchors live in paper_ref.cpp, keyed by the (row, metric) names emitted
// here.
#include <string>
#include <vector>

#include "experiment/experiment.h"
#include "experiment/paper_ref.h"
#include "hwmodel/characterize.h"

namespace hcrf::experiment {

const perf::LoopMetrics& ExperimentData::At(std::size_t machine,
                                            std::size_t engine,
                                            std::size_t loop) const {
  return cells[(machine * def->engines.size() + engine) * loops.size() + loop];
}

perf::SuiteMetrics ExperimentData::Sum(std::size_t machine,
                                       std::size_t engine) const {
  const std::size_t base =
      (machine * def->engines.size() + engine) * loops.size();
  const std::vector<perf::LoopMetrics> row(
      cells.begin() + static_cast<std::ptrdiff_t>(base),
      cells.begin() + static_cast<std::ptrdiff_t>(base + loops.size()));
  return perf::Aggregate(row);
}

namespace {

/// bench::MakeMachine's contract: baseline resources (8 FUs + 4 memory
/// ports), the named RF organization and, for bounded register counts,
/// the clock/latency table of the paper-calibrated hardware model.
MachineConfig Machine(const std::string& rf_name, bool characterize = true) {
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse(rf_name));
  if (characterize && !m.rf.UnboundedClusterRegs() &&
      !m.rf.UnboundedSharedRegs()) {
    m = hw::ApplyCharacterization(m, hw::RFModelMode::kPaperTable);
  }
  return m;
}

void Push(std::vector<MetricValue>& out, std::string row, const char* metric,
          double value) {
  out.push_back(MetricValue{std::move(row), metric, value});
}

// ---------------------------------------------------------------------------
// Figure 1: IPC vs machine resources (monolithic RF, unbounded registers).
// ---------------------------------------------------------------------------

std::vector<MetricValue> Fig1Aggregate(const ExperimentData& d) {
  std::vector<MetricValue> out;
  for (std::size_t m = 0; m < d.def->machines.size(); ++m) {
    const MachineVariant& mv = d.def->machines[m];
    const perf::SuiteMetrics sm = d.Sum(m, 0);
    const double ipc = sm.IPC();
    Push(out, mv.label, "ipc", ipc);
    Push(out, mv.label, "efficiency",
         ipc / (mv.machine.num_fus + mv.machine.num_mem_ports));
  }
  return out;
}

Experiment MakeFig1() {
  Experiment e;
  e.name = "fig1";
  e.title = "IPC vs machine resources (monolithic RF, unbounded registers)";
  e.workload = {"synth", 0, 8};
  const int shapes[][2] = {{4, 2}, {6, 3}, {8, 4}, {10, 5}, {12, 6}};
  for (const auto& s : shapes) {
    MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("Sinf"));
    m.num_fus = s[0];
    m.num_mem_ports = s[1];
    e.machines.push_back(
        {std::to_string(s[0]) + "+" + std::to_string(s[1]), m});
  }
  e.engines.push_back({});
  e.aggregate = Fig1Aggregate;
  return e;
}

// ---------------------------------------------------------------------------
// Figure 4: CDF of per-bank LoadR/StoreR port demand (unbounded registers
// and bandwidth) — the experiment behind the lp-sp design rule.
// ---------------------------------------------------------------------------

std::vector<MetricValue> Fig4Aggregate(const ExperimentData& d) {
  std::vector<MetricValue> out;
  for (std::size_t m = 0; m < d.def->machines.size(); ++m) {
    const MachineVariant& mv = d.def->machines[m];
    const int x = mv.machine.rf.clusters;
    std::vector<double> lp_demand;
    std::vector<double> sp_demand;
    for (std::size_t l = 0; l < d.loops.size(); ++l) {
      const perf::LoopMetrics& lm = d.At(m, 0, l);
      if (!lm.ok) continue;
      lp_demand.push_back(static_cast<double>(lm.loadr_ops) /
                          (static_cast<double>(lm.ii) * x));
      sp_demand.push_back(static_cast<double>(lm.storer_ops) /
                          (static_cast<double>(lm.ii) * x));
    }
    const auto cdf = [](const std::vector<double>& v, int k) {
      long c = 0;
      for (double demand : v) {
        if (demand <= k + 1e-9) ++c;
      }
      return v.empty() ? 0.0
                       : 100.0 * static_cast<double>(c) /
                             static_cast<double>(v.size());
    };
    for (int k = 0; k <= 4; ++k) {
      Push(out, mv.label, ("lp_le" + std::to_string(k)).c_str(),
           cdf(lp_demand, k));
    }
    for (int k = 0; k <= 4; ++k) {
      Push(out, mv.label, ("sp_le" + std::to_string(k)).c_str(),
           cdf(sp_demand, k));
    }
  }
  return out;
}

Experiment MakeFig4() {
  Experiment e;
  e.name = "fig4";
  e.title = "CDF of per-bank LoadR/StoreR port demand (lp-sp design rule)";
  e.workload = {"synth", 0, 8};
  for (int x : {1, 2, 4, 8}) {
    const std::string name = std::to_string(x) + "CinfSinf/inf-inf";
    e.machines.push_back(
        {std::to_string(x) + "C", Machine(name, /*characterize=*/false)});
  }
  e.engines.push_back({});
  e.aggregate = Fig4Aggregate;
  return e;
}

// ---------------------------------------------------------------------------
// Figure 6: real memory + selective binding prefetching, relative to the
// useful cycles / time of the S64 baseline (machines[0]).
// ---------------------------------------------------------------------------

std::vector<MetricValue> Fig6Aggregate(const ExperimentData& d) {
  std::vector<MetricValue> out;
  const perf::SuiteMetrics bm = d.Sum(0, 0);
  const MachineConfig& base = d.def->machines[0].machine;
  const double base_cycles = static_cast<double>(bm.useful_cycles);
  const double base_time = base_cycles * base.clock_ns;
  const double base_total =
      static_cast<double>(bm.useful_cycles + bm.stall_cycles) * base.clock_ns;
  for (std::size_t m = 0; m < d.def->machines.size(); ++m) {
    const MachineVariant& mv = d.def->machines[m];
    const perf::SuiteMetrics sm = d.Sum(m, 0);
    const double total =
        static_cast<double>(sm.useful_cycles + sm.stall_cycles) *
        mv.machine.clock_ns;
    Push(out, mv.label, "cyc_useful",
         static_cast<double>(sm.useful_cycles) / base_cycles);
    Push(out, mv.label, "cyc_stall",
         static_cast<double>(sm.stall_cycles) / base_cycles);
    Push(out, mv.label, "time_useful",
         static_cast<double>(sm.useful_cycles) * mv.machine.clock_ns /
             base_time);
    Push(out, mv.label, "time_stall",
         static_cast<double>(sm.stall_cycles) * mv.machine.clock_ns /
             base_time);
    Push(out, mv.label, "speedup", base_total / total);
    Push(out, mv.label, "failed", sm.failed);
  }
  return out;
}

Experiment MakeFig6() {
  Experiment e;
  e.name = "fig6";
  e.title = "Real memory + selective binding prefetching (relative to S64)";
  e.workload = {"synth", 0, 8};
  for (const char* name : {"S64", "2C64/1-1", "4C32/1-1", "1C32S64/4-2",
                           "2C32S32/3-1", "4C32S16/1-1", "8C16S16/1-1"}) {
    e.machines.push_back({RFConfig::Parse(name).ShortName(), Machine(name)});
  }
  EngineVariant ev;
  ev.label = "selective";
  ev.prefetch = memsim::PrefetchMode::kSelective;
  ev.simulate_memory = true;
  e.engines.push_back(std::move(ev));
  e.aggregate = Fig6Aggregate;
  return e;
}

// ---------------------------------------------------------------------------
// Table 1: classification of loops by what bounds their II, for three
// equal-capacity (128-register) organizations.
// ---------------------------------------------------------------------------

std::vector<MetricValue> Table1Aggregate(const ExperimentData& d) {
  std::vector<MetricValue> out;
  std::vector<double> totals;
  for (std::size_t m = 0; m < d.def->machines.size(); ++m) {
    const MachineVariant& mv = d.def->machines[m];
    const perf::SuiteMetrics sm = d.Sum(m, 0);
    const char* pct_metrics[4] = {"pct_fu", "pct_mem", "pct_rec", "pct_comm"};
    const char* cyc_metrics[4] = {"cyc_fu_e9", "cyc_mem_e9", "cyc_rec_e9",
                                  "cyc_comm_e9"};
    for (int b = 0; b < 4; ++b) {
      Push(out, mv.label, pct_metrics[b],
           100.0 * sm.bound_count[static_cast<std::size_t>(b)] /
               std::max(1, sm.num_loops - sm.failed));
      Push(out, mv.label, cyc_metrics[b],
           static_cast<double>(sm.bound_cycles[static_cast<std::size_t>(b)]) /
               1e9);
    }
    Push(out, mv.label, "exec_cycles_e9",
         static_cast<double>(sm.ExecCycles()) / 1e9);
    Push(out, mv.label, "failed", sm.failed);
    totals.push_back(static_cast<double>(sm.ExecCycles()));
  }
  Push(out, "4C32/S128", "cycles_rel", totals[1] / totals[0]);
  Push(out, "1C64S64/S128", "cycles_rel", totals[2] / totals[0]);
  return out;
}

Experiment MakeTable1() {
  Experiment e;
  e.name = "table1";
  e.title = "Loop classification by II bound, 128-register organizations";
  e.workload = {"synth", 0, 8};
  for (const char* name : {"S128", "4C32", "1C64S64"}) {
    e.machines.push_back({name, Machine(name)});
  }
  e.engines.push_back({});
  e.aggregate = Table1Aggregate;
  return e;
}

// ---------------------------------------------------------------------------
// Table 2: access time and area of three equal-capacity organizations at
// lp=sp=1, from the analytic register-file model. Hardware-model only.
// ---------------------------------------------------------------------------

std::vector<MetricValue> Table2Aggregate(const ExperimentData& d) {
  (void)d;
  std::vector<MetricValue> out;
  for (const char* name : {"S128", "4C32", "1C64S64"}) {
    MachineConfig m = MachineConfig::WithRF(RFConfig::Parse(name));
    // Table 2 uses lp=sp=1 for all organizations.
    if (m.rf.HasClusters()) {
      m.rf.lp = 1;
      m.rf.sp = 1;
    }
    const hw::Characterization c =
        hw::Characterize(m, hw::RFModelMode::kAnalytic);
    Push(out, name, "access_c_ns", c.cluster_bank.access_ns);
    Push(out, name, "access_s_ns", c.shared_bank.access_ns);
    Push(out, name, "area", c.total_area_mlambda2);
  }
  return out;
}

Experiment MakeTable2() {
  Experiment e;
  e.name = "table2";
  e.title = "Analytic RF model: access time and area at 128 registers";
  e.aggregate = Table2Aggregate;
  return e;
}

// ---------------------------------------------------------------------------
// Table 3: static evaluation with unlimited registers, unlimited and
// limited communication bandwidth.
// ---------------------------------------------------------------------------

std::vector<MetricValue> Table3Aggregate(const ExperimentData& d) {
  std::vector<MetricValue> out;
  for (std::size_t m = 0; m < d.def->machines.size(); ++m) {
    const MachineVariant& mv = d.def->machines[m];
    const perf::SuiteMetrics sm = d.Sum(m, 0);
    Push(out, mv.label, "pct_mii", sm.PctAtMII());
    Push(out, mv.label, "sigma_ii", static_cast<double>(sm.sum_ii));
    Push(out, mv.label, "failed", sm.failed);
  }
  return out;
}

Experiment MakeTable3() {
  Experiment e;
  e.name = "table3";
  e.title = "Static evaluation: unlimited registers, ideal memory";
  e.workload = {"synth", 0, 8};
  for (const char* name :
       {"Sinf", "1CinfSinf/inf-inf", "2Cinf/inf-inf", "2CinfSinf/inf-inf",
        "4Cinf/inf-inf", "4CinfSinf/inf-inf", "8CinfSinf/inf-inf",
        "1CinfSinf/4-2", "2Cinf/1-1", "2CinfSinf/3-1", "4Cinf/1-1",
        "4CinfSinf/2-1", "8CinfSinf/1-1"}) {
    e.machines.push_back({name, Machine(name, /*characterize=*/false)});
  }
  e.engines.push_back({});
  e.aggregate = Table3Aggregate;
  return e;
}

// ---------------------------------------------------------------------------
// Table 4: MIRS_HC (iterative) vs the non-iterative [36]-style comparator
// on the hierarchical non-clustered RF. Per-engine scheduling failures are
// counted explicitly: a loop is only compared when BOTH engines scheduled
// it, and every exclusion is reported (noniter_only / mirs_only / both) —
// the old standalone bench counted only the non-iterative engine's
// failures and silently dropped rows where the iterative one failed.
// ---------------------------------------------------------------------------

std::vector<MetricValue> Table4Aggregate(const ExperimentData& d) {
  long n_better = 0, n_equal = 0, n_worse = 0;
  long sii_nb_a = 0, sii_nb_b = 0;  // where the non-iterative engine wins
  long sii_eq = 0;
  long sii_mb_a = 0, sii_mb_b = 0;  // where MIRS_HC wins
  long tot_a = 0, tot_b = 0;
  long failed_a_only = 0, failed_b_only = 0, failed_both = 0;
  long compared = 0;
  for (std::size_t l = 0; l < d.loops.size(); ++l) {
    const perf::LoopMetrics& a = d.At(0, 0, l);  // non-iterative
    const perf::LoopMetrics& b = d.At(0, 1, l);  // MIRS_HC
    if (!a.ok || !b.ok) {
      if (!a.ok && !b.ok) {
        ++failed_both;
      } else if (!a.ok) {
        ++failed_a_only;
      } else {
        ++failed_b_only;
      }
      continue;
    }
    ++compared;
    tot_a += a.ii;
    tot_b += b.ii;
    if (a.ii < b.ii) {
      ++n_better;
      sii_nb_a += a.ii;
      sii_nb_b += b.ii;
    } else if (a.ii == b.ii) {
      ++n_equal;
      sii_eq += a.ii;
    } else {
      ++n_worse;
      sii_mb_a += a.ii;
      sii_mb_b += b.ii;
    }
  }
  std::vector<MetricValue> out;
  Push(out, "noniter_better", "loops", static_cast<double>(n_better));
  Push(out, "noniter_better", "sii_noniter", static_cast<double>(sii_nb_a));
  Push(out, "noniter_better", "sii_mirs", static_cast<double>(sii_nb_b));
  Push(out, "equal", "loops", static_cast<double>(n_equal));
  Push(out, "equal", "sii", static_cast<double>(sii_eq));
  Push(out, "mirs_better", "loops", static_cast<double>(n_worse));
  Push(out, "mirs_better", "sii_noniter", static_cast<double>(sii_mb_a));
  Push(out, "mirs_better", "sii_mirs", static_cast<double>(sii_mb_b));
  Push(out, "total", "loops", static_cast<double>(d.loops.size()));
  Push(out, "total", "sii_noniter", static_cast<double>(tot_a));
  Push(out, "total", "sii_mirs", static_cast<double>(tot_b));
  Push(out, "failures", "noniter_only", static_cast<double>(failed_a_only));
  Push(out, "failures", "mirs_only", static_cast<double>(failed_b_only));
  Push(out, "failures", "both", static_cast<double>(failed_both));
  Push(out, "failures", "compared", static_cast<double>(compared));
  Push(out, "summary", "sii_reduction", static_cast<double>(tot_a - tot_b));
  return out;
}

Experiment MakeTable4() {
  Experiment e;
  e.name = "table4";
  e.title = "MIRS_HC vs non-iterative [36] on the hierarchical RF (1C32S64)";
  e.workload = {"synth", 0, 8};
  e.machines.push_back({"1C32S64", Machine("1C32S64/4-2")});
  EngineVariant noniter;
  noniter.label = "noniter";
  noniter.options.iterative = false;
  e.engines.push_back(std::move(noniter));
  EngineVariant mirs;
  mirs.label = "mirs_hc";
  e.engines.push_back(std::move(mirs));
  e.aggregate = Table4Aggregate;
  return e;
}

// ---------------------------------------------------------------------------
// Table 5: hardware evaluation of all 15 configurations under both model
// modes. Hardware-model only.
// ---------------------------------------------------------------------------

std::vector<MetricValue> Table5Aggregate(const ExperimentData& d) {
  (void)d;
  std::vector<MetricValue> out;
  const struct {
    hw::RFModelMode mode;
    const char* suffix;
  } modes[] = {{hw::RFModelMode::kAnalytic, "/analytic"},
               {hw::RFModelMode::kPaperTable, "/paper"}};
  for (const auto& mode : modes) {
    for (const PaperConfig& pc : kPaperConfigs) {
      const MachineConfig m = MachineConfig::WithRF(RFConfig::Parse(pc.name));
      const hw::Characterization c = hw::Characterize(m, mode.mode);
      const std::string row = std::string(pc.label) + mode.suffix;
      Push(out, row, "access_c_ns", c.cluster_bank.access_ns);
      Push(out, row, "access_s_ns", c.shared_bank.access_ns);
      Push(out, row, "area", c.total_area_mlambda2);
      Push(out, row, "depth_fo4", c.logic_depth_fo4);
      Push(out, row, "clock_ns", c.clock_ns);
      Push(out, row, "lat_mem", c.lat.load_hit);
      Push(out, row, "lat_fu", c.lat.fadd);
    }
  }
  return out;
}

Experiment MakeTable5() {
  Experiment e;
  e.name = "table5";
  e.title = "Hardware evaluation of the 15 RF configurations";
  e.aggregate = Table5Aggregate;
  return e;
}

// ---------------------------------------------------------------------------
// Table 6: ideal-memory evaluation of the 15 configurations, relative to
// the monolithic S64 baseline (machines[1]).
// ---------------------------------------------------------------------------

std::vector<MetricValue> Table6Aggregate(const ExperimentData& d) {
  std::vector<MetricValue> out;
  const perf::SuiteMetrics base_sm = d.Sum(1, 0);  // S64
  const double base_time =
      base_sm.ExecTimeSeconds(d.def->machines[1].machine.clock_ns);
  for (std::size_t m = 0; m < d.def->machines.size(); ++m) {
    const MachineVariant& mv = d.def->machines[m];
    const perf::SuiteMetrics sm = d.Sum(m, 0);
    const double time = sm.ExecTimeSeconds(mv.machine.clock_ns);
    Push(out, mv.label, "exec_rel",
         static_cast<double>(sm.ExecCycles()) /
             static_cast<double>(base_sm.ExecCycles()));
    Push(out, mv.label, "traffic_rel",
         static_cast<double>(sm.mem_traffic) /
             static_cast<double>(base_sm.mem_traffic));
    Push(out, mv.label, "time_rel", time / base_time);
    Push(out, mv.label, "speedup", base_time / time);
    Push(out, mv.label, "failed", sm.failed);
  }
  return out;
}

Experiment MakeTable6() {
  Experiment e;
  e.name = "table6";
  e.title = "Performance evaluation, ideal memory (relative to S64)";
  e.workload = {"synth", 0, 8};
  for (const PaperConfig& pc : kPaperConfigs) {
    e.machines.push_back({pc.label, Machine(pc.name)});
  }
  e.engines.push_back({});
  e.aggregate = Table6Aggregate;
  return e;
}

// ---------------------------------------------------------------------------
// Ablations: knobs the paper does not publish. Shared row shape.
// ---------------------------------------------------------------------------

void PushSuiteRow(std::vector<MetricValue>& out, const std::string& row,
                  const perf::SuiteMetrics& sm) {
  Push(out, row, "sigma_ii", static_cast<double>(sm.sum_ii));
  Push(out, row, "pct_mii", sm.PctAtMII());
  Push(out, row, "failed", sm.failed);
}

std::vector<MetricValue> AblationBudgetAggregate(const ExperimentData& d) {
  std::vector<MetricValue> out;
  for (std::size_t e = 0; e < d.def->engines.size(); ++e) {
    PushSuiteRow(out, d.def->engines[e].label, d.Sum(0, e));
  }
  return out;
}

Experiment MakeAblationBudget() {
  Experiment e;
  e.name = "ablation_budget";
  e.title = "Budget_Ratio of the iterative backtracking (default: 6)";
  e.workload = {"synth", 300, 8};
  e.machines.push_back({"4C16S64", Machine("4C16S64/2-1")});
  for (double ratio : {1.0, 2.0, 4.0, 6.0, 8.0, 16.0}) {
    EngineVariant ev;
    ev.label = "ratio=" + std::to_string(static_cast<int>(ratio));
    ev.options.budget_ratio = ratio;
    e.engines.push_back(std::move(ev));
  }
  e.aggregate = AblationBudgetAggregate;
  return e;
}

std::vector<MetricValue> AblationClusterAggregate(const ExperimentData& d) {
  std::vector<MetricValue> out;
  for (std::size_t m = 0; m < d.def->machines.size(); ++m) {
    for (std::size_t e = 0; e < d.def->engines.size(); ++e) {
      const std::string row =
          d.def->machines[m].label + "/" + d.def->engines[e].label;
      const perf::SuiteMetrics sm = d.Sum(m, e);
      PushSuiteRow(out, row, sm);
      Push(out, row, "ejections", static_cast<double>(sm.ejections));
      Push(out, row, "restarts", static_cast<double>(sm.ii_restarts));
    }
  }
  return out;
}

Experiment MakeAblationClusterSel() {
  Experiment e;
  e.name = "ablation_cluster_sel";
  e.title = "Select_Cluster heuristic vs round-robin and first-fit";
  e.workload = {"synth", 300, 8};
  e.machines.push_back({"4C32", Machine("4C32/1-1")});
  e.machines.push_back({"4C16S64", Machine("4C16S64/2-1")});
  for (core::ClusterPolicy p :
       {core::ClusterPolicy::kBalanced, core::ClusterPolicy::kRoundRobin,
        core::ClusterPolicy::kFirstFit}) {
    EngineVariant ev;
    ev.label = std::string(core::ToString(p));
    ev.options.cluster_policy = p;
    e.engines.push_back(std::move(ev));
  }
  e.aggregate = AblationClusterAggregate;
  return e;
}

std::vector<MetricValue> AblationBusesAggregate(const ExperimentData& d) {
  std::vector<MetricValue> out;
  for (std::size_t m = 0; m < d.def->machines.size(); ++m) {
    PushSuiteRow(out, d.def->machines[m].label, d.Sum(m, 0));
  }
  return out;
}

Experiment MakeAblationBuses() {
  Experiment e;
  e.name = "ablation_buses";
  e.title = "Inter-cluster bus count on the pure clustered 4C32 (default x/2)";
  e.workload = {"synth", 300, 8};
  for (int nb : {1, 2, 3, 4}) {
    MachineConfig m = Machine("4C32/1-1");
    m.rf.buses = nb;  // after characterization, as the ablation did
    e.machines.push_back({"buses=" + std::to_string(nb), m});
  }
  e.engines.push_back({});
  e.aggregate = AblationBusesAggregate;
  return e;
}

std::vector<MetricValue> AblationPrefetchAggregate(const ExperimentData& d) {
  std::vector<MetricValue> out;
  for (std::size_t m = 0; m < d.def->machines.size(); ++m) {
    for (std::size_t e = 0; e < d.def->engines.size(); ++e) {
      const std::string row =
          d.def->machines[m].label + "/" + d.def->engines[e].label;
      const perf::SuiteMetrics sm = d.Sum(m, e);
      Push(out, row, "useful_cycles", static_cast<double>(sm.useful_cycles));
      Push(out, row, "stall_cycles", static_cast<double>(sm.stall_cycles));
      Push(out, row, "sigma_ii", static_cast<double>(sm.sum_ii));
      Push(out, row, "failed", sm.failed);
    }
  }
  return out;
}

Experiment MakeAblationPrefetch() {
  Experiment e;
  e.name = "ablation_prefetch";
  e.title = "Binding-prefetch policy under real memory";
  e.workload = {"synth", 300, 8};
  for (const char* name : {"S64", "4C32/1-1", "4C32S16/1-1"}) {
    e.machines.push_back({RFConfig::Parse(name).ShortName(), Machine(name)});
  }
  for (memsim::PrefetchMode mode :
       {memsim::PrefetchMode::kNone, memsim::PrefetchMode::kAll,
        memsim::PrefetchMode::kSelective}) {
    EngineVariant ev;
    ev.label = std::string(ToString(mode));
    ev.prefetch = mode;
    ev.simulate_memory = true;
    e.engines.push_back(std::move(ev));
  }
  e.aggregate = AblationPrefetchAggregate;
  return e;
}

}  // namespace

const std::vector<Experiment>& Registry() {
  static const std::vector<Experiment>* registry = [] {
    auto* r = new std::vector<Experiment>();
    r->push_back(MakeFig1());
    r->push_back(MakeFig4());
    r->push_back(MakeFig6());
    r->push_back(MakeTable1());
    r->push_back(MakeTable2());
    r->push_back(MakeTable3());
    r->push_back(MakeTable4());
    r->push_back(MakeTable5());
    r->push_back(MakeTable6());
    r->push_back(MakeAblationBudget());
    r->push_back(MakeAblationClusterSel());
    r->push_back(MakeAblationBuses());
    r->push_back(MakeAblationPrefetch());
    return r;
  }();
  return *registry;
}

const Experiment* FindExperiment(std::string_view name) {
  for (const Experiment& e : Registry()) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

}  // namespace hcrf::experiment
