// Published reference values of conf_ipps_ZalameaLAV03 as structured data.
//
// Every number the paper-reproduction experiments compare against — the
// Table 4 loop counts, Table 5 hardware rows, the Figure 4 CDF anchors —
// used to live as literals inside printf format strings of 13 standalone
// bench binaries. Here they are one table shared by the experiment
// reporters and the tests: each entry names the experiment, the report row
// and metric it anchors, the paper's value, and a tolerance band.
//
// Tolerance semantics: the bands are *reproduction fidelity* bands, not
// the paper's error bars. The workbench is a synthetic stand-in for the
// 1258 Perfect Club loops (see DESIGN.md "Substitutions"), so workload-
// derived absolutes (Sigma-II, IPC) land far from the published numbers
// while hardware-model columns reproduce exactly; each band is calibrated
// to the fidelity the reproduction actually achieves, with headroom, so a
// failing verdict means the reproduction *regressed*, not that the paper
// disagrees with the stand-in workbench. `workload_dependent` entries are
// only enforced on the full workload (a --smoke slice shifts them by
// construction and reports them as n/a).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hcrf::experiment {

/// One published reference value, anchored to a (row, metric) cell of the
/// named experiment's report.
struct PaperRef {
  std::string experiment;  ///< Registry name ("table4", "fig6", ...).
  std::string row;         ///< Report row label ("4C16S16", "equal", ...).
  std::string metric;      ///< Report metric name ("sigma_ii", "clock_ns").
  double paper = 0.0;      ///< The published value.
  double tol_abs = 0.0;    ///< Absolute tolerance.
  double tol_rel = 0.0;    ///< Relative tolerance (fraction of |paper|).
  /// True when the measured value depends on the workload (and therefore
  /// on the --smoke slice); false for hardware-model values, which are
  /// enforced in every mode.
  bool workload_dependent = true;

  /// Pass iff |measured - paper| <= tol_abs + tol_rel * |paper|.
  bool Pass(double measured) const;
};

/// The full reference table, built once per process.
const std::vector<PaperRef>& PaperRefs();

/// The subset anchoring one experiment, in table order.
std::vector<const PaperRef*> RefsFor(std::string_view experiment);

/// The paper's 15 register-file configurations (Tables 5 and 6) with the
/// published lp-sp port design rule baked into the parseable name.
struct PaperConfig {
  const char* name;   ///< Parseable ("1C64S32/3-2").
  const char* label;  ///< As printed in the paper ("1C64S32").
};
inline constexpr PaperConfig kPaperConfigs[15] = {
    {"S128", "S128"},
    {"S64", "S64"},
    {"S32", "S32"},
    {"1C64S32/3-2", "1C64S32"},
    {"1C32S64/4-2", "1C32S64"},
    {"2C64/1-1", "2C64"},
    {"2C32/1-1", "2C32"},
    {"2C64S32/2-1", "2C64S32"},
    {"2C32S32/3-1", "2C32S32"},
    {"4C64/1-1", "4C64"},
    {"4C32/1-1", "4C32"},
    {"4C32S16/1-1", "4C32S16"},
    {"4C16S16/2-1", "4C16S16"},
    {"8C32S16/1-1", "8C32S16"},
    {"8C16S16/1-1", "8C16S16"},
};

/// One row of the paper's Table 5 (hardware evaluation), aligned with
/// kPaperConfigs. Zero access times mean "no such bank level".
struct Table5PaperRow {
  double access_c;  ///< Cluster-bank access time, ns.
  double access_s;  ///< Shared-bank access time, ns.
  double area;      ///< Total area, 1e6 lambda^2.
  int depth;        ///< Logic depth, FO4.
  double clock;     ///< Cycle time, ns.
  int lat_mem;      ///< Load-hit latency, cycles.
  int lat_fu;       ///< FP-add latency, cycles.
};
extern const Table5PaperRow kTable5Paper[15];

/// One row of the paper's Table 6 (ideal-memory evaluation), aligned with
/// kPaperConfigs. exec/traffic are absolute (x1e9); the experiment reports
/// them relative to the S64 baseline row.
struct Table6PaperRow {
  double exec;      ///< Execution cycles, x1e9.
  double traffic;   ///< Memory traffic, x1e9.
  double time_rel;  ///< Execution time relative to S64.
  double speedup;   ///< S64 time / this time.
};
extern const Table6PaperRow kTable6Paper[15];

}  // namespace hcrf::experiment
