#include "experiment/paper_ref.h"

#include <cmath>

namespace hcrf::experiment {

bool PaperRef::Pass(double measured) const {
  return std::fabs(measured - paper) <= tol_abs + tol_rel * std::fabs(paper);
}

// Table 5, in kPaperConfigs order (the paper's own row order).
const Table5PaperRow kTable5Paper[15] = {
    {0.0, 1.145, 14.91, 31, 1.181, 2, 4},
    {0.0, 1.021, 12.20, 27, 1.037, 3, 4},
    {0.0, 0.685, 7.50, 18, 0.713, 3, 4},
    {0.943, 0.485, 11.37, 25, 0.965, 3, 4},
    {0.666, 0.493, 8.12, 17, 0.677, 3, 4},
    {0.686, 0.0, 7.98, 18, 0.713, 3, 4},
    {0.532, 0.0, 4.88, 13, 0.533, 4, 6},
    {0.626, 0.493, 7.12, 16, 0.641, 3, 5},
    {0.515, 0.510, 5.83, 13, 0.533, 4, 6},
    {0.531, 0.0, 5.21, 13, 0.533, 4, 6},
    {0.475, 0.0, 4.29, 12, 0.497, 4, 6},
    {0.442, 0.456, 4.38, 11, 0.461, 4, 7},
    {0.393, 0.483, 4.49, 10, 0.425, 4, 7},
    {0.400, 0.532, 5.84, 10, 0.425, 4, 7},
    {0.360, 0.532, 4.82, 9, 0.389, 5, 8},
};

// Table 6, in kPaperConfigs order.
const Table6PaperRow kTable6Paper[15] = {
    {11.06, 17.54, 1.085, 0.921}, {11.61, 25.77, 1.000, 1.000},
    {17.72, 33.27, 1.049, 0.953}, {12.05, 17.54, 0.966, 1.035},
    {14.05, 17.54, 0.790, 1.266}, {11.60, 18.30, 0.687, 1.456},
    {16.01, 28.89, 0.709, 1.410}, {12.87, 17.54, 0.685, 1.460},
    {14.75, 17.54, 0.653, 1.531}, {13.74, 17.54, 0.608, 1.645},
    {13.77, 21.45, 0.568, 1.761}, {14.76, 17.54, 0.565, 1.770},
    {16.91, 17.54, 0.597, 1.675}, {14.60, 17.54, 0.515, 1.942},
    {15.84, 17.54, 0.511, 1.957},
};

namespace {

// Shorthand: workload-dependent entry (enforced on the full workload only).
PaperRef W(const char* exp, std::string row, const char* metric, double paper,
           double tol_abs, double tol_rel = 0.0) {
  return PaperRef{exp, std::move(row), metric, paper, tol_abs, tol_rel, true};
}

// Hardware-model entry (workload-independent; enforced in every mode).
PaperRef H(const char* exp, std::string row, const char* metric, double paper,
           double tol_abs, double tol_rel = 0.0) {
  return PaperRef{exp, std::move(row), metric, paper, tol_abs, tol_rel, false};
}

std::vector<PaperRef> BuildRefs() {
  std::vector<PaperRef> refs;

  // ---- Figure 1: IPC vs machine resources (read off the figure) --------
  {
    const char* shapes[] = {"4+2", "6+3", "8+4", "10+5", "12+6"};
    const double ipc[] = {3.9, 5.1, 6.2, 7.2, 8.1};
    for (int i = 0; i < 5; ++i) {
      refs.push_back(W("fig1", shapes[i], "ipc", ipc[i], 0.0, 0.75));
    }
  }

  // ---- Figure 4: port-demand CDF anchors at 4 clusters -----------------
  refs.push_back(W("fig4", "4C", "lp_le1", 87.2, 8.0));
  refs.push_back(W("fig4", "4C", "lp_le2", 99.3, 3.0));
  refs.push_back(W("fig4", "4C", "sp_le1", 97.3, 4.0));

  // ---- Figure 6: real-memory speedups (qualitative anchors) ------------
  refs.push_back(W("fig6", "1C32S64", "speedup", 1.46, 0.25));
  refs.push_back(W("fig6", "4C32", "speedup", 1.39, 0.25));

  // ---- Table 1: bound-class mix of the 128-register organizations ------
  {
    const char* rows[] = {"S128", "4C32", "1C64S64"};
    const double pct[3][4] = {{20.0, 50.9, 29.1, 0.0},
                              {17.6, 50.3, 29.2, 2.9},
                              {19.2, 50.1, 29.9, 0.8}};
    const char* metrics[] = {"pct_fu", "pct_mem", "pct_rec", "pct_comm"};
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 4; ++c) {
        refs.push_back(W("table1", rows[r], metrics[c], pct[r][c], 10.0));
      }
    }
    refs.push_back(W("table1", "4C32/S128", "cycles_rel", 1.249, 0.30));
    refs.push_back(W("table1", "1C64S64/S128", "cycles_rel", 1.061, 0.15));
  }

  // ---- Table 2: analytic RF model at lp=sp=1 ---------------------------
  refs.push_back(H("table2", "S128", "access_s_ns", 1.145, 0.0, 0.25));
  refs.push_back(H("table2", "S128", "area", 14.91, 0.0, 0.45));
  refs.push_back(H("table2", "4C32", "access_c_ns", 0.475, 0.0, 0.25));
  refs.push_back(H("table2", "4C32", "area", 4.29, 0.0, 0.45));
  refs.push_back(H("table2", "1C64S64", "access_c_ns", 0.979, 0.0, 0.25));
  refs.push_back(H("table2", "1C64S64", "access_s_ns", 0.610, 0.0, 0.25));
  refs.push_back(H("table2", "1C64S64", "area", 13.26, 0.0, 0.45));

  // ---- Table 3: static evaluation with unlimited registers -------------
  {
    struct Row {
      const char* org;
      double pct, sii;
    };
    const Row rows[] = {
        {"Sinf", 99.5, 5261},
        {"1CinfSinf/inf-inf", 99.5, 5555},
        {"2Cinf/inf-inf", 98.7, 5274},
        {"2CinfSinf/inf-inf", 98.6, 5565},
        {"4Cinf/inf-inf", 96.2, 5324},
        {"4CinfSinf/inf-inf", 96.5, 5604},
        {"8CinfSinf/inf-inf", 91.7, 5748},
        {"1CinfSinf/4-2", 99.4, 5560},
        {"2Cinf/1-1", 97.8, 5283},
        {"2CinfSinf/3-1", 95.4, 5623},
        {"4Cinf/1-1", 92.4, 5393},
        {"4CinfSinf/2-1", 96.3, 5616},
        {"8CinfSinf/1-1", 90.7, 5764},
    };
    for (const Row& r : rows) {
      refs.push_back(W("table3", r.org, "pct_mii", r.pct, 0.0, 0.65));
      refs.push_back(W("table3", r.org, "sigma_ii", r.sii, 0.0, 1.7));
    }
  }

  // ---- Table 4: MIRS_HC vs the non-iterative [36] comparator -----------
  refs.push_back(W("table4", "noniter_better", "loops", 15, 25.0));
  refs.push_back(W("table4", "noniter_better", "sii_noniter", 300, 350.0));
  refs.push_back(W("table4", "noniter_better", "sii_mirs", 319, 370.0));
  refs.push_back(W("table4", "equal", "loops", 1105, 150.0));
  refs.push_back(W("table4", "equal", "sii", 4302, 0.0, 1.8));
  refs.push_back(W("table4", "mirs_better", "loops", 138, 90.0));
  refs.push_back(W("table4", "mirs_better", "sii_noniter", 1736, 0.0, 0.45));
  refs.push_back(W("table4", "mirs_better", "sii_mirs", 1475, 0.0, 0.5));
  refs.push_back(W("table4", "total", "loops", 1258, 120.0));
  refs.push_back(W("table4", "total", "sii_noniter", 6338, 0.0, 1.2));
  refs.push_back(W("table4", "total", "sii_mirs", 6096, 0.0, 1.2));
  refs.push_back(W("table4", "summary", "sii_reduction", 242, 300.0));

  // ---- Table 5: hardware evaluation, both model modes ------------------
  // The kPaperTable mode feeds the published bank values through the
  // FO4/latency rules and must reproduce the paper's derived columns
  // near-exactly; the analytic mode is the end-to-end model fit.
  for (int i = 0; i < 15; ++i) {
    const Table5PaperRow& p = kTable5Paper[i];
    const std::string paper_row = std::string(kPaperConfigs[i].label) + "/paper";
    const std::string ana_row = std::string(kPaperConfigs[i].label) + "/analytic";
    if (p.access_c > 0.0) {
      refs.push_back(H("table5", paper_row, "access_c_ns", p.access_c, 0.002));
      refs.push_back(H("table5", ana_row, "access_c_ns", p.access_c, 0.0, 0.25));
    }
    if (p.access_s > 0.0) {
      refs.push_back(H("table5", paper_row, "access_s_ns", p.access_s, 0.002));
      refs.push_back(H("table5", ana_row, "access_s_ns", p.access_s, 0.0, 0.25));
    }
    refs.push_back(H("table5", paper_row, "area", p.area, 0.02));
    refs.push_back(H("table5", ana_row, "area", p.area, 0.0, 0.25));
    refs.push_back(H("table5", paper_row, "depth_fo4", p.depth, 0.25));
    refs.push_back(H("table5", ana_row, "depth_fo4", p.depth, 0.0, 0.2));
    refs.push_back(H("table5", paper_row, "clock_ns", p.clock, 0.002));
    refs.push_back(H("table5", ana_row, "clock_ns", p.clock, 0.0, 0.15));
    refs.push_back(H("table5", paper_row, "lat_mem", p.lat_mem, 0.25));
    refs.push_back(H("table5", ana_row, "lat_mem", p.lat_mem, 0.0, 0.35));
    refs.push_back(H("table5", paper_row, "lat_fu", p.lat_fu, 0.25));
    refs.push_back(H("table5", ana_row, "lat_fu", p.lat_fu, 0.0, 0.35));
  }

  // ---- Table 6: ideal-memory evaluation relative to S64 ----------------
  {
    const double base_exec = kTable6Paper[1].exec;
    const double base_traffic = kTable6Paper[1].traffic;
    for (int i = 0; i < 15; ++i) {
      const Table6PaperRow& p = kTable6Paper[i];
      const char* row = kPaperConfigs[i].label;
      refs.push_back(W("table6", row, "exec_rel", p.exec / base_exec, 0.6));
      refs.push_back(
          W("table6", row, "traffic_rel", p.traffic / base_traffic, 0.45));
      refs.push_back(W("table6", row, "time_rel", p.time_rel, 0.45));
      refs.push_back(W("table6", row, "speedup", p.speedup, 0.65));
    }
  }

  // The ablations (budget ratio, cluster selection, bus count, prefetch
  // policy) explore knobs the paper does not publish values for; they have
  // rows but no reference anchors.
  return refs;
}

}  // namespace

const std::vector<PaperRef>& PaperRefs() {
  static const std::vector<PaperRef>* refs = new std::vector<PaperRef>(BuildRefs());
  return *refs;
}

std::vector<const PaperRef*> RefsFor(std::string_view experiment) {
  std::vector<const PaperRef*> out;
  for (const PaperRef& r : PaperRefs()) {
    if (r.experiment == experiment) out.push_back(&r);
  }
  return out;
}

}  // namespace hcrf::experiment
