// Declarative paper-reproduction experiments.
//
// Each artifact of conf_ipps_ZalameaLAV03 — Figures 1/4/6, Tables 1–6 and
// the four design ablations — is a registered Experiment: a machine axis
// (RF organizations or resource shapes), an engine-option axis (iterative
// on/off, budget ratios, prefetch policies), a workload selection, and an
// aggregation kernel that folds the per-(machine, engine, loop) metrics
// into the artifact's report rows. The specs are data; execution is the
// experiment runner's job (run.h), which dispatches every scheduling cell
// of every selected experiment through service::RunBatch — one flat,
// deduplicated, cache-backed batch on the shared thread pool, so a warm
// rerun of the whole paper is served from the persistent schedule cache.
//
// Reference values live in paper_ref.h as structured data; the runner
// joins them against the aggregation rows by (row, metric) and renders
// delta-vs-paper columns with explicit pass/fail verdicts.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "core/mirs.h"
#include "machine/machine_config.h"
#include "memsim/prefetch.h"
#include "perf/metrics.h"
#include "workload/workload.h"

namespace hcrf::experiment {

/// One point on an experiment's machine axis, fully resolved (RF parsed,
/// hardware characterization applied where the artifact calls for it).
struct MachineVariant {
  std::string label;  ///< Report label ("4C32", "8+4", "buses=2").
  MachineConfig machine;
};

/// One point on an experiment's engine-option axis.
struct EngineVariant {
  std::string label = "default";
  core::MirsOptions options;
  /// Binding-prefetch policy; non-kNone variants schedule with per-load
  /// latency overrides (computed per loop and machine by the runner).
  memsim::PrefetchMode prefetch = memsim::PrefetchMode::kNone;
  /// Replay the memory system for stall cycles (Figure 6's real memory).
  bool simulate_memory = false;
};

/// Workload selection. An empty suite name means the experiment does not
/// schedule at all (Tables 2 and 5 evaluate the hardware model only).
struct WorkloadSpec {
  std::string suite;       ///< workload::SharedSuiteByName name; "" = none.
  std::size_t slice = 0;   ///< Strided SuiteSlice size; 0 = whole suite.
  std::size_t smoke_slice = 8;  ///< Bounded slice used by --smoke.
};

/// One (row, metric, value) cell of an experiment's report.
struct MetricValue {
  std::string row;
  std::string metric;
  double value = 0.0;
};

struct Experiment;

/// Everything an aggregation kernel sees: the spec and the per-cell loop
/// metrics, indexed [machine][engine][loop]. Failed cells carry
/// ok == false; kernels must account for them explicitly (per-engine
/// failure counts are also reported generically by the runner — no row is
/// ever dropped silently).
struct ExperimentData {
  const Experiment* def = nullptr;
  bool smoke = false;  ///< Running on the bounded --smoke slice.
  std::vector<const workload::Loop*> loops;
  std::vector<perf::LoopMetrics> cells;

  const perf::LoopMetrics& At(std::size_t machine, std::size_t engine,
                              std::size_t loop) const;
  /// perf::Aggregate over one (machine, engine) row of cells.
  perf::SuiteMetrics Sum(std::size_t machine, std::size_t engine) const;
};

/// Folds the cells into report rows. Kernels are pure: deterministic rows
/// from deterministic metrics (no timings), which is what makes cold and
/// warm reports byte-identical.
using AggregateFn = std::vector<MetricValue> (*)(const ExperimentData&);

/// A registered paper artifact.
struct Experiment {
  std::string name;   ///< Stable id ("table4", "fig6", "ablation_buses").
  std::string title;  ///< One-line description for --list and reports.
  WorkloadSpec workload;
  std::vector<MachineVariant> machines;
  std::vector<EngineVariant> engines;
  AggregateFn aggregate = nullptr;

  /// Scheduling cells per run (0 for hardware-model-only experiments).
  std::size_t CellsPerLoop() const { return machines.size() * engines.size(); }
};

/// The 13 registered experiments, in paper order. Built once per process.
const std::vector<Experiment>& Registry();

/// Lookup by name; nullptr when unknown.
const Experiment* FindExperiment(std::string_view name);

}  // namespace hcrf::experiment
