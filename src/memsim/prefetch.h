// Binding-prefetch policies (paper Section 6.2, after [4] and the
// selective policy of [30]): binding prefetching schedules load operations
// assuming cache-miss latency, converting stall cycles into register
// pressure -- which the hierarchical organizations absorb in the shared
// bank.
//
// The selective policy schedules with *hit* latency: loads inside
// recurrences (lengthening a cycle raises RecMII directly), loads of loops
// with short trip counts (long prologues would dominate), and spill loads
// (excluded automatically: spill nodes are created later by the
// scheduler). All other loads are bound to miss latency.
#pragma once

#include "ddg/ddg.h"
#include "machine/machine_config.h"
#include "sched/lifetime.h"

namespace hcrf::memsim {

enum class PrefetchMode {
  kNone,       ///< All loads scheduled with hit latency.
  kAll,        ///< All loads with miss latency ([4]).
  kSelective,  ///< The paper's policy ([30]).
};

std::string_view ToString(PrefetchMode mode);

/// Trip counts below this schedule all loads with hit latency under the
/// selective policy (avoids long prologues/epilogues).
inline constexpr long kShortTripThreshold = 48;

/// Producer-latency overrides implementing the chosen policy for `loop`.
sched::LatencyOverrides ClassifyBindingPrefetch(const DDG& loop,
                                                const MachineConfig& m,
                                                long trip, PrefetchMode mode);

}  // namespace hcrf::memsim
