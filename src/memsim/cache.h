// Lockup-free L1 data cache model (paper Section 6.2): 32 KB, 32-byte
// lines, multi-ported, up to 8 outstanding misses (MSHRs), write-allocate.
// Associativity is not specified in the paper; we use 2-way LRU.
#pragma once

#include <cstdint>
#include <vector>

namespace hcrf::memsim {

struct CacheConfig {
  long size_bytes = 32 * 1024;
  int line_bytes = 32;
  int associativity = 2;
  int mshrs = 8;

  long NumSets() const { return size_bytes / (line_bytes * associativity); }
};

/// Timing-free tag array: Lookup returns hit/miss and updates LRU and
/// contents (fill on miss). Miss overlap timing is handled by LoopReplay,
/// which owns the MSHR occupancy model.
class Cache {
 public:
  explicit Cache(const CacheConfig& cfg = {});

  /// Accesses one address; returns true on hit. Misses allocate (both
  /// loads and stores: write-allocate).
  bool Access(std::uint64_t addr);

  /// True if the address's line is currently resident (no state change).
  bool Probe(std::uint64_t addr) const;

  void Reset();

  long hits() const { return hits_; }
  long misses() const { return misses_; }
  const CacheConfig& config() const { return cfg_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    bool valid = false;
    std::uint64_t lru = 0;  ///< Larger = more recently used.
  };
  CacheConfig cfg_;
  std::vector<Way> ways_;  ///< sets * associativity, set-major.
  std::uint64_t tick_ = 0;
  long hits_ = 0;
  long misses_ = 0;
};

}  // namespace hcrf::memsim
