// Steady-state replay of a scheduled loop's memory accesses through the
// lockup-free cache: the stall-cycle side of the paper's real-memory
// evaluation (Figure 6).
//
// Model: an in-order VLIW core issues the kernel every II cycles. A load
// scheduled with hit latency that misses stalls the core for the remaining
// miss latency, minus any overlap already bought by earlier outstanding
// misses (up to 8 MSHRs). Loads scheduled with miss latency (binding
// prefetching) never stall; stores allocate an MSHR but do not stall the
// core. When all MSHRs are busy the core stalls until one frees.
//
// The first invocation runs against a cold cache, later invocations
// against the warm state; we simulate one cold and one warm invocation and
// scale (the paper simulates the whole program; all Figure 6 numbers are
// relative, see DESIGN.md).
#pragma once

#include "core/mirs.h"
#include "memsim/cache.h"
#include "workload/workload.h"

namespace hcrf::memsim {

struct ReplayResult {
  long stall_cycles = 0;   ///< Total over all invocations.
  long useful_cycles = 0;  ///< II*(N + (SC-1)*E), the paper's estimate.
  long accesses = 0;
  long misses = 0;
};

/// Replays the memory accesses of `sr` (a successful schedule of `loop`)
/// and returns stall/useful cycle counts. `m` supplies the latency table
/// in effect for the configuration.
ReplayResult ReplayLoop(const workload::Loop& loop,
                        const core::ScheduleResult& sr,
                        const MachineConfig& m,
                        const CacheConfig& cache_cfg = {});

}  // namespace hcrf::memsim
