#include "memsim/prefetch.h"

#include "ddg/mii.h"

namespace hcrf::memsim {

std::string_view ToString(PrefetchMode mode) {
  switch (mode) {
    case PrefetchMode::kNone: return "none";
    case PrefetchMode::kAll: return "all-miss";
    case PrefetchMode::kSelective: return "selective";
  }
  return "?";
}

sched::LatencyOverrides ClassifyBindingPrefetch(const DDG& loop,
                                                const MachineConfig& m,
                                                long trip,
                                                PrefetchMode mode) {
  sched::LatencyOverrides ov;
  if (mode == PrefetchMode::kNone) return ov;
  ov.producer_latency.assign(static_cast<size_t>(loop.NumSlots()), 0);

  const bool selective = mode == PrefetchMode::kSelective;
  const std::vector<bool> on_rec =
      selective ? NodesOnRecurrences(loop) : std::vector<bool>();
  const bool short_trip = selective && trip < kShortTripThreshold;

  for (NodeId v = 0; v < loop.NumSlots(); ++v) {
    if (!loop.IsAlive(v) || loop.node(v).op != OpClass::kLoad) continue;
    if (short_trip) continue;
    if (selective && on_rec[static_cast<size_t>(v)]) continue;
    ov.producer_latency[static_cast<size_t>(v)] = m.lat.load_miss;
  }
  return ov;
}

}  // namespace hcrf::memsim
