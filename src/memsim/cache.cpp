#include "memsim/cache.h"

#include <cstddef>

namespace hcrf::memsim {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  ways_.assign(static_cast<size_t>(cfg_.NumSets()) *
                   static_cast<size_t>(cfg_.associativity),
               Way{});
}

void Cache::Reset() {
  for (Way& w : ways_) w = Way{};
  tick_ = 0;
  hits_ = 0;
  misses_ = 0;
}

bool Cache::Access(std::uint64_t addr) {
  const std::uint64_t line = addr / static_cast<std::uint64_t>(cfg_.line_bytes);
  const std::uint64_t set =
      line % static_cast<std::uint64_t>(cfg_.NumSets());
  const std::uint64_t tag = line / static_cast<std::uint64_t>(cfg_.NumSets());
  Way* base = &ways_[static_cast<size_t>(set) *
                     static_cast<size_t>(cfg_.associativity)];
  ++tick_;
  Way* victim = base;
  for (int a = 0; a < cfg_.associativity; ++a) {
    Way& w = base[a];
    if (w.valid && w.tag == tag) {
      w.lru = tick_;
      ++hits_;
      return true;
    }
    if (!w.valid || w.lru < victim->lru) {
      if (!victim->valid && w.valid) continue;  // prefer invalid victims
      victim = &w;
    }
  }
  // Miss: fill.
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  ++misses_;
  return false;
}

bool Cache::Probe(std::uint64_t addr) const {
  const std::uint64_t line = addr / static_cast<std::uint64_t>(cfg_.line_bytes);
  const std::uint64_t set =
      line % static_cast<std::uint64_t>(cfg_.NumSets());
  const std::uint64_t tag = line / static_cast<std::uint64_t>(cfg_.NumSets());
  const Way* base = &ways_[static_cast<size_t>(set) *
                           static_cast<size_t>(cfg_.associativity)];
  for (int a = 0; a < cfg_.associativity; ++a) {
    if (base[a].valid && base[a].tag == tag) return true;
  }
  return false;
}

}  // namespace hcrf::memsim
