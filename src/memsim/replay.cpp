#include "memsim/replay.h"

#include <algorithm>
#include <queue>
#include <vector>

namespace hcrf::memsim {

namespace {

/// Address-space layout: each array id gets its own 1 MiB region, offset by
/// a per-array scatter so regions do not alias to the same cache sets.
std::uint64_t ArrayBase(std::int32_t array_id) {
  const std::uint64_t id = static_cast<std::uint32_t>(array_id);
  return (id << 20) + ((id * 7919u) % 997u) * 32u;
}

struct MemOp {
  int cycle;          ///< Issue cycle within the (normalized) kernel body.
  bool is_load;
  bool bound_miss;    ///< Scheduled assuming miss latency (prefetched).
  std::int32_t array;
  std::int64_t base;
  std::int64_t stride;
};

}  // namespace

ReplayResult ReplayLoop(const workload::Loop& loop,
                        const core::ScheduleResult& sr,
                        const MachineConfig& m,
                        const CacheConfig& cache_cfg) {
  ReplayResult out;
  const int ii = sr.ii;
  const long n_total = loop.TotalIterations();
  out.useful_cycles =
      static_cast<long>(ii) *
      (n_total + static_cast<long>(sr.sc - 1) * loop.invocations);

  // Collect memory operations of the kernel, ordered by issue cycle.
  std::vector<MemOp> ops;
  for (NodeId v = 0; v < sr.graph.NumSlots(); ++v) {
    if (!sr.graph.IsAlive(v)) continue;
    const Node& n = sr.graph.node(v);
    if (!IsMemory(n.op) || !n.mem.has_value()) continue;
    MemOp op;
    op.cycle = sr.schedule.CycleOf(v);
    op.is_load = n.op == OpClass::kLoad;
    op.bound_miss =
        op.is_load && sr.overrides.For(v, m.lat.load_hit) >= m.lat.load_miss;
    op.array = n.mem->array_id;
    op.base = n.mem->base;
    op.stride = n.mem->stride;
    ops.push_back(op);
  }
  std::sort(ops.begin(), ops.end(),
            [](const MemOp& a, const MemOp& b) { return a.cycle < b.cycle; });
  if (ops.empty()) return out;

  Cache cache(cache_cfg);
  const int miss_lat = m.lat.load_miss;
  const int hit_lat = m.lat.load_hit;
  const int mshrs = cache_cfg.mshrs;

  // One invocation against the current cache state; returns stall cycles.
  auto run_invocation = [&]() -> long {
    long stall = 0;
    // Completion times of outstanding misses (absolute cycles).
    std::priority_queue<long, std::vector<long>, std::greater<>> inflight;
    for (long i = 0; i < loop.trip; ++i) {
      const long iter_base = i * ii + stall;
      for (const MemOp& op : ops) {
        const long issue = iter_base + op.cycle;
        // Retire completed misses.
        while (!inflight.empty() && inflight.top() <= issue) inflight.pop();
        const std::uint64_t addr = ArrayBase(op.array) +
                                   static_cast<std::uint64_t>(
                                       op.base + op.stride * i);
        ++out.accesses;
        const bool hit = cache.Access(addr);
        if (hit) continue;
        ++out.misses;
        // MSHR pressure: stall until a slot frees.
        long extra = 0;
        if (static_cast<int>(inflight.size()) >= mshrs) {
          extra = std::max(extra, inflight.top() - issue);
          inflight.pop();
        }
        const long completion = issue + extra + miss_lat;
        inflight.push(completion);
        if (op.is_load && !op.bound_miss) {
          // The core expects the value hit_lat cycles after issue.
          extra += miss_lat - hit_lat;
        }
        stall += extra;
      }
    }
    return stall;
  };

  const long cold = run_invocation();
  long warm = 0;
  if (loop.invocations > 1) {
    warm = run_invocation();
  }
  out.stall_cycles = cold + warm * (loop.invocations - 1);
  return out;
}

}  // namespace hcrf::memsim
