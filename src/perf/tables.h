// Lightweight fixed-width table rendering for the paper-reproduction
// benchmarks ("bench/" prints one table or figure per binary, with the
// paper's published value next to each measured one).
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace hcrf::perf {

class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print(std::ostream& os = std::cout) const;

  /// Formats a double with `prec` decimals.
  static std::string Num(double v, int prec = 3);
  /// Formats "measured (paper X)" pairs used throughout the benches.
  static std::string VsPaper(double measured, double paper, int prec = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hcrf::perf
