// 128-bit structural hashing shared by the process-wide caches.
//
// Two independent 64-bit accumulators (FNV-1a and a golden-ratio mixer)
// form one 128-bit key: both the MII sweep cache (perf/runner.cpp) and the
// persistent schedule cache (service/sched_cache.cpp) key correctness-
// relevant values on content, and 2^-64 collision odds over long-lived
// heavy-traffic processes are not negligible enough to trust one hash.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

namespace hcrf::perf {

struct DualHash {
  std::uint64_t a = 1469598103934665603ull;  // FNV-1a
  std::uint64_t b = 0x9e3779b97f4a7c15ull;   // golden-ratio accumulator

  void Mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      a ^= (v >> (8 * i)) & 0xff;
      a *= 1099511628211ull;
    }
    b = (b ^ (v + 0x9e3779b97f4a7c15ull + (b << 6) + (b >> 2))) *
        0xff51afd7ed558ccdull;
  }
  void MixDouble(double d) { Mix(std::bit_cast<std::uint64_t>(d)); }
};

/// Plain 64-bit FNV-1a over bytes (cache-entry checksums).
inline std::uint64_t Fnv1a(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace hcrf::perf
