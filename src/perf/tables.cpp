#include "perf/tables.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace hcrf::perf {

std::string Table::Num(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

std::string Table::VsPaper(double measured, double paper, int prec) {
  return Num(measured, prec) + " (" + Num(paper, prec) + ")";
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << "  " << std::left << std::setw(static_cast<int>(widths[i]))
         << cell;
    }
    os << "\n";
  };
  print_row(header_);
  size_t total = 2;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& r : rows_) print_row(r);
}

}  // namespace hcrf::perf
