#include "perf/bench.h"

#include <chrono>
#include <memory>
#include <utility>

#include "core/mirs.h"
#include "hwmodel/characterize.h"
#include "io/hcl.h"
#include "machine/machine_config.h"
#include "machine/rf_config.h"
#include "workload/suite_cache.h"

namespace hcrf::perf {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

MachineConfig BenchMachine(const std::string& rf_name) {
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse(rf_name));
  if (!m.rf.UnboundedClusterRegs() && !m.rf.UnboundedSharedRegs()) {
    m = hw::ApplyCharacterization(m, hw::RFModelMode::kPaperTable);
  }
  return m;
}

/// One timed mode over one (suite slice, machine) case. Returns wall
/// seconds; accumulates stats and keeps the last repetition's results for
/// the identity check.
double RunMode(const workload::Suite& suite, const MachineConfig& m,
               const std::vector<MIIInfo>& mii, bool incremental, int reps,
               long* placements, long* ejections,
               std::vector<core::ScheduleResult>* results) {
  core::MirsOptions opt;
  opt.incremental = incremental;
  double total = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const bool last = rep == reps - 1;
    if (last && results != nullptr) {
      results->clear();
      results->reserve(suite.size());
    }
    for (size_t i = 0; i < suite.size(); ++i) {
      opt.precomputed_mii = mii[i];
      const Clock::time_point t0 = Clock::now();
      core::ScheduleResult res = core::MirsHC(suite[i].ddg, m, opt);
      total += Seconds(t0, Clock::now());
      if (placements != nullptr) *placements += res.stats.attempts;
      if (ejections != nullptr) *ejections += res.stats.ejections;
      if (last && results != nullptr) results->push_back(std::move(res));
    }
  }
  return total;
}

BenchCase RunCase(const std::string& suite_name,
                  const workload::Suite& suite, const std::string& rf_name,
                  int reps) {
  BenchCase c;
  c.suite = suite_name;
  c.rf = rf_name;
  c.loops = static_cast<int>(suite.size());
  c.reps = reps;

  const MachineConfig m = BenchMachine(rf_name);
  std::vector<MIIInfo> mii;
  mii.reserve(suite.size());
  for (size_t i = 0; i < suite.size(); ++i) {
    mii.push_back(CachedMii(suite[i].ddg, m));
  }

  std::vector<core::ScheduleResult> ref_results;
  std::vector<core::ScheduleResult> inc_results;
  c.reference_seconds = RunMode(suite, m, mii, /*incremental=*/false, reps,
                                nullptr, nullptr, &ref_results);
  c.incremental_seconds = RunMode(suite, m, mii, /*incremental=*/true, reps,
                                  &c.placements, &c.ejections, &inc_results);

  for (size_t i = 0; i < suite.size(); ++i) {
    const core::ScheduleResult& a = ref_results[i];
    const core::ScheduleResult& b = inc_results[i];
    if (a.ok != b.ok) {
      c.identical = false;
      continue;
    }
    if (!a.ok) {
      ++c.failed;
      continue;
    }
    if (io::DumpResult(a) != io::DumpResult(b)) c.identical = false;
  }
  return c;
}

void Append(std::string& out, const BenchCase& c) {
  out += "    {\"suite\": \"" + c.suite + "\", \"rf\": \"" + c.rf + "\",\n";
  out += "     \"loops\": " + std::to_string(c.loops) +
         ", \"reps\": " + std::to_string(c.reps) +
         ", \"failed\": " + std::to_string(c.failed) + ",\n";
  out += "     \"identical\": " + std::string(c.identical ? "true" : "false") +
         ",\n";
  out += "     \"reference_seconds\": " + io::FormatDouble(c.reference_seconds) +
         ",\n";
  out += "     \"incremental_seconds\": " +
         io::FormatDouble(c.incremental_seconds) + ",\n";
  out += "     \"speedup\": " + io::FormatDouble(c.Speedup()) + ",\n";
  out += "     \"placements\": " + std::to_string(c.placements) +
         ", \"ejections\": " + std::to_string(c.ejections) + ",\n";
  out += "     \"placements_per_sec\": " +
         io::FormatDouble(c.incremental_seconds > 0
                              ? static_cast<double>(c.placements) /
                                    c.incremental_seconds
                              : 0.0) +
         ",\n";
  out += "     \"ejections_per_sec\": " +
         io::FormatDouble(c.incremental_seconds > 0
                              ? static_cast<double>(c.ejections) /
                                    c.incremental_seconds
                              : 0.0) +
         "}";
}

}  // namespace

BenchReport RunBench(const BenchOptions& opt) {
  BenchReport report;

  const workload::Suite& kernels = workload::SharedKernelSuite();
  const workload::Suite& synth_full = workload::SharedSyntheticSuite();

  // Explicit options always win; smoke only shrinks the unset knobs.
  std::vector<std::string> orgs = opt.rf_names;
  if (orgs.empty()) {
    orgs = opt.smoke
               ? std::vector<std::string>{"4C16S64/2-1"}
               : std::vector<std::string>{"4C16S64/2-1", "4C32/1-1", "S64"};
  }
  const int kernel_reps =
      opt.kernel_reps > 0 ? opt.kernel_reps : (opt.smoke ? 5 : 60);
  const int synth_reps = opt.synth_reps > 0 ? opt.synth_reps : 1;
  int synth_loops = opt.synth_loops;
  if (synth_loops <= 0 && opt.smoke) synth_loops = 64;
  workload::Suite synth_slice;
  const workload::Suite* synth = &synth_full;
  if (synth_loops > 0) {
    synth_slice =
        workload::SuiteSlice(synth_full, static_cast<size_t>(synth_loops));
    synth = &synth_slice;
  }

  for (const std::string& rf : orgs) {
    report.cases.push_back(RunCase("kernels", kernels, rf, kernel_reps));
    report.cases.push_back(RunCase("synth", *synth, rf, synth_reps));
  }

  for (const BenchCase& c : report.cases) {
    report.reference_seconds += c.reference_seconds;
    report.incremental_seconds += c.incremental_seconds;
    report.placements += c.placements;
    report.ejections += c.ejections;
    if (!c.identical) report.identical = false;
  }
  report.mii_cache = GetMiiCacheStats();
  return report;
}

std::string BenchJson(const BenchReport& report) {
  std::string out = "{\n";
  out += "  \"format\": \"hcrf-bench-1\",\n";
  out += "  \"generated_by\": \"hcrf_sched bench\",\n";
  out += "  \"threads\": 1,\n";
  out += "  \"identical\": " +
         std::string(report.identical ? "true" : "false") + ",\n";
  out += "  \"cases\": [\n";
  for (size_t i = 0; i < report.cases.size(); ++i) {
    Append(out, report.cases[i]);
    out += i + 1 < report.cases.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  if (report.pre_pr.present) {
    std::string note = report.pre_pr.note;
    for (char& ch : note) {
      if (ch == '"' || ch == '\\') ch = '\'';
    }
    out += "  \"pre_pr\": {\n";
    out += "    \"baseline_seconds\": " +
           io::FormatDouble(report.pre_pr.baseline_seconds) + ",\n";
    out += "    \"current_seconds\": " +
           io::FormatDouble(report.pre_pr.current_seconds) + ",\n";
    out += "    \"speedup\": " + io::FormatDouble(report.pre_pr.Speedup()) +
           ",\n";
    out += "    \"note\": \"" + note + "\"\n";
    out += "  },\n";
  }
  out += "  \"totals\": {\n";
  out += "    \"reference_seconds\": " +
         io::FormatDouble(report.reference_seconds) + ",\n";
  out += "    \"incremental_seconds\": " +
         io::FormatDouble(report.incremental_seconds) + ",\n";
  out += "    \"speedup\": " + io::FormatDouble(report.Speedup()) + ",\n";
  out += "    \"placements\": " + std::to_string(report.placements) + ",\n";
  out += "    \"ejections\": " + std::to_string(report.ejections) + ",\n";
  out += "    \"placements_per_sec\": " +
         io::FormatDouble(report.incremental_seconds > 0
                              ? static_cast<double>(report.placements) /
                                    report.incremental_seconds
                              : 0.0) +
         ",\n";
  out += "    \"ejections_per_sec\": " +
         io::FormatDouble(report.incremental_seconds > 0
                              ? static_cast<double>(report.ejections) /
                                    report.incremental_seconds
                              : 0.0) +
         "\n  },\n";
  const long lookups = report.mii_cache.hits + report.mii_cache.misses;
  out += "  \"mii_cache\": {\"hits\": " + std::to_string(report.mii_cache.hits) +
         ", \"misses\": " + std::to_string(report.mii_cache.misses) +
         ", \"hit_rate\": " +
         io::FormatDouble(lookups > 0 ? static_cast<double>(
                                            report.mii_cache.hits) /
                                            static_cast<double>(lookups)
                                      : 0.0) +
         "}\n";
  out += "}\n";
  return out;
}

}  // namespace hcrf::perf
