#include "perf/bench.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <utility>

#include "core/mirs.h"
#include "hwmodel/characterize.h"
#include "io/hcl.h"
#include "machine/machine_config.h"
#include "machine/rf_config.h"
#include "perf/thread_pool.h"
#include "workload/suite_cache.h"

namespace hcrf::perf {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

MachineConfig BenchMachine(const std::string& rf_name) {
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse(rf_name));
  if (!m.rf.UnboundedClusterRegs() && !m.rf.UnboundedSharedRegs()) {
    m = hw::ApplyCharacterization(m, hw::RFModelMode::kPaperTable);
  }
  return m;
}

LatencyQuantiles ComputeQuantiles(std::vector<double> v) {
  LatencyQuantiles q;
  if (v.empty()) return q;
  std::sort(v.begin(), v.end());
  const auto rank = [&v](double p) {
    // Nearest-rank: the smallest value with at least p of the mass below
    // or at it.
    size_t r = static_cast<size_t>(
        std::ceil(p * static_cast<double>(v.size())));
    r = std::min(std::max<size_t>(r, 1), v.size());
    return v[r - 1];
  };
  q.p50 = rank(0.50);
  q.p95 = rank(0.95);
  q.p99 = rank(0.99);
  q.max = v.back();
  return q;
}

/// Everything one timed mode produces over one (suite slice, machine) case.
struct ModeOut {
  double seconds = 0;
  std::vector<double> per_loop;  ///< Mean seconds per loop across reps.
  long placements = 0;
  long ejections = 0;
  int raced = 0;
  int wins = 0;
  int cancelled = 0;
  int discarded = 0;
  double attempt_seconds = 0;
  std::vector<core::ScheduleResult> results;  ///< Last repetition's.
};

/// One timed mode over one case: accumulates wall time (total and
/// per-loop), throughput stats, the last repetition's results for the
/// identity check, and — on the last repetition only, so the counts cover
/// one pass of the suite — the speculation telemetry.
ModeOut RunMode(const workload::Suite& suite, const MachineConfig& m,
                const std::vector<MIIInfo>& mii,
                const core::MirsOptions& mirs, int reps) {
  ModeOut out;
  out.per_loop.assign(suite.size(), 0.0);
  out.results.reserve(suite.size());
  core::MirsOptions opt = mirs;
  for (int rep = 0; rep < reps; ++rep) {
    const bool last = rep == reps - 1;
    for (size_t i = 0; i < suite.size(); ++i) {
      opt.precomputed_mii = mii[i];
      const Clock::time_point t0 = Clock::now();
      core::ScheduleResult res = core::MirsHC(suite[i].ddg, m, opt);
      const double dt = Seconds(t0, Clock::now());
      out.seconds += dt;
      out.per_loop[i] += dt;
      out.placements += res.stats.attempts;
      out.ejections += res.stats.ejections;
      if (last) {
        out.raced += res.spec.raced;
        out.wins += res.spec.raced_wins;
        out.cancelled += res.spec.cancelled;
        out.discarded += res.spec.discarded;
        out.attempt_seconds += res.spec.attempt_seconds;
        out.results.push_back(std::move(res));
      }
    }
  }
  for (double& s : out.per_loop) s /= reps;
  return out;
}

/// Dump-level identity of two modes' results; counts unschedulable loops
/// once via `failed` (only from the first comparison, against `count_fails`).
void CompareResults(const std::vector<core::ScheduleResult>& ref,
                    const std::vector<core::ScheduleResult>& alt,
                    bool count_fails, BenchCase& c) {
  for (size_t i = 0; i < ref.size(); ++i) {
    const core::ScheduleResult& a = ref[i];
    const core::ScheduleResult& b = alt[i];
    if (a.ok != b.ok) {
      c.identical = false;
      continue;
    }
    if (!a.ok) {
      if (count_fails) ++c.failed;
      continue;
    }
    if (io::DumpResult(a) != io::DumpResult(b)) c.identical = false;
  }
}

BenchCase RunCase(const std::string& suite_name,
                  const workload::Suite& suite, const std::string& rf_name,
                  int reps, int speculate_k, bool speculate_eager) {
  BenchCase c;
  c.suite = suite_name;
  c.rf = rf_name;
  c.loops = static_cast<int>(suite.size());
  c.reps = reps;

  const MachineConfig m = BenchMachine(rf_name);
  std::vector<MIIInfo> mii;
  mii.reserve(suite.size());
  for (size_t i = 0; i < suite.size(); ++i) {
    mii.push_back(CachedMii(suite[i].ddg, m));
  }

  core::MirsOptions mirs;
  mirs.incremental = false;
  const ModeOut ref = RunMode(suite, m, mii, mirs, reps);
  c.reference_seconds = ref.seconds;

  mirs.incremental = true;
  const ModeOut inc = RunMode(suite, m, mii, mirs, reps);
  c.incremental_seconds = inc.seconds;
  c.placements = inc.placements;
  c.ejections = inc.ejections;
  c.serial_latency = ComputeQuantiles(inc.per_loop);
  CompareResults(ref.results, inc.results, /*count_fails=*/true, c);

  if (speculate_k >= 2) {
    mirs.speculate_k = speculate_k;
    mirs.speculate_eager = speculate_eager;
    const ModeOut spec = RunMode(suite, m, mii, mirs, reps);
    c.speculative_seconds = spec.seconds;
    c.speculative_latency = ComputeQuantiles(spec.per_loop);
    c.spec_raced = spec.raced;
    c.spec_wins = spec.wins;
    c.spec_losses = spec.discarded;
    c.spec_cancelled = spec.cancelled;
    c.spec_attempt_seconds = spec.attempt_seconds;
    CompareResults(inc.results, spec.results, /*count_fails=*/false, c);
  }
  return c;
}

void AppendQuantiles(std::string& out, const char* key,
                     const LatencyQuantiles& q) {
  out += std::string("\"") + key + "\": {\"p50\": " + io::FormatDouble(q.p50) +
         ", \"p95\": " + io::FormatDouble(q.p95) +
         ", \"p99\": " + io::FormatDouble(q.p99) +
         ", \"max\": " + io::FormatDouble(q.max) + "}";
}

void Append(std::string& out, const BenchCase& c) {
  out += "    {\"suite\": \"" + c.suite + "\", \"rf\": \"" + c.rf + "\",\n";
  out += "     \"loops\": " + std::to_string(c.loops) +
         ", \"reps\": " + std::to_string(c.reps) +
         ", \"failed\": " + std::to_string(c.failed) + ",\n";
  out += "     \"identical\": " + std::string(c.identical ? "true" : "false") +
         ",\n";
  out += "     \"reference_seconds\": " + io::FormatDouble(c.reference_seconds) +
         ",\n";
  out += "     \"incremental_seconds\": " +
         io::FormatDouble(c.incremental_seconds) + ",\n";
  out += "     \"speculative_seconds\": " +
         io::FormatDouble(c.speculative_seconds) + ",\n";
  out += "     \"speedup\": " + io::FormatDouble(c.Speedup()) + ",\n";
  out += "     \"latency\": {";
  AppendQuantiles(out, "serial", c.serial_latency);
  out += ",\n                 ";
  AppendQuantiles(out, "speculative", c.speculative_latency);
  out += ",\n                 \"p95_speedup\": " +
         io::FormatDouble(c.SpecP95Speedup()) + "},\n";
  out += "     \"speculation\": {\"raced\": " + std::to_string(c.spec_raced) +
         ", \"wins\": " + std::to_string(c.spec_wins) +
         ", \"losses\": " + std::to_string(c.spec_losses) +
         ", \"cancelled\": " + std::to_string(c.spec_cancelled) + ",\n" +
         "                     \"attempt_seconds\": " +
         io::FormatDouble(c.spec_attempt_seconds) +
         ", \"effective_parallelism\": " +
         io::FormatDouble(c.EffectiveParallelism()) + "},\n";
  out += "     \"placements\": " + std::to_string(c.placements) +
         ", \"ejections\": " + std::to_string(c.ejections) + ",\n";
  out += "     \"placements_per_sec\": " +
         io::FormatDouble(c.incremental_seconds > 0
                              ? static_cast<double>(c.placements) /
                                    c.incremental_seconds
                              : 0.0) +
         ",\n";
  out += "     \"ejections_per_sec\": " +
         io::FormatDouble(c.incremental_seconds > 0
                              ? static_cast<double>(c.ejections) /
                                    c.incremental_seconds
                              : 0.0) +
         "}";
}

}  // namespace

BenchReport RunBench(const BenchOptions& opt) {
  BenchReport report;

  const workload::Suite& kernels = workload::SharedKernelSuite();
  const workload::Suite& synth_full = workload::SharedSyntheticSuite();

  // Explicit options always win; smoke only shrinks the unset knobs.
  std::vector<std::string> orgs = opt.rf_names;
  if (orgs.empty()) {
    orgs = opt.smoke
               ? std::vector<std::string>{"4C16S64/2-1"}
               : std::vector<std::string>{"4C16S64/2-1", "4C32/1-1", "S64"};
  }
  const int kernel_reps =
      opt.kernel_reps > 0 ? opt.kernel_reps : (opt.smoke ? 5 : 60);
  const int synth_reps = opt.synth_reps > 0 ? opt.synth_reps : 1;
  int synth_loops = opt.synth_loops;
  if (synth_loops <= 0 && opt.smoke) synth_loops = 64;
  workload::Suite synth_slice;
  const workload::Suite* synth = &synth_full;
  if (synth_loops > 0) {
    synth_slice =
        workload::SuiteSlice(synth_full, static_cast<size_t>(synth_loops));
    synth = &synth_slice;
  }

  for (const std::string& rf : orgs) {
    report.cases.push_back(RunCase("kernels", kernels, rf, kernel_reps,
                                   opt.speculate_k, opt.speculate_eager));
    report.cases.push_back(RunCase("synth", *synth, rf, synth_reps,
                                   opt.speculate_k, opt.speculate_eager));
  }

  for (const BenchCase& c : report.cases) {
    report.reference_seconds += c.reference_seconds;
    report.incremental_seconds += c.incremental_seconds;
    report.speculative_seconds += c.speculative_seconds;
    report.placements += c.placements;
    report.ejections += c.ejections;
    if (!c.identical) report.identical = false;
  }
  report.speculate_k = opt.speculate_k;
  report.speculate_eager = opt.speculate_eager;
  report.speculation_pool_workers =
      opt.speculate_k >= 2 ? SpeculationPool::Shared().num_workers() : 0;
  report.host = QueryHostInfo();
  report.mii_cache = GetMiiCacheStats();
  return report;
}

HostInfo QueryHostInfo() {
  HostInfo h;
  h.hardware_concurrency = std::thread::hardware_concurrency();
  h.thread_pool_workers = ThreadPool::Shared().num_workers();
  h.speculation_pool_workers = SpeculationPool::Shared().num_workers();
#ifdef NDEBUG
  h.build_type = "release";
#else
  h.build_type = "debug";
#endif
  return h;
}

std::string BenchJson(const BenchReport& report) {
  std::string out = "{\n";
  out += "  \"format\": \"hcrf-bench-3\",\n";
  out += "  \"generated_by\": \"hcrf_sched bench\",\n";
  out += "  \"host\": {\"hardware_concurrency\": " +
         std::to_string(report.host.hardware_concurrency) +
         ", \"thread_pool_workers\": " +
         std::to_string(report.host.thread_pool_workers) +
         ", \"speculation_pool_workers\": " +
         std::to_string(report.host.speculation_pool_workers) +
         ",\n           \"build_type\": \"" + report.host.build_type +
         "\"},\n";
  out += "  \"threads\": 1,\n";
  out += "  \"speculate_k\": " + std::to_string(report.speculate_k) + ",\n";
  out += "  \"speculate_eager\": " +
         std::string(report.speculate_eager ? "true" : "false") + ",\n";
  out += "  \"speculation_pool_workers\": " +
         std::to_string(report.speculation_pool_workers) + ",\n";
  out += "  \"identical\": " +
         std::string(report.identical ? "true" : "false") + ",\n";
  out += "  \"cases\": [\n";
  for (size_t i = 0; i < report.cases.size(); ++i) {
    Append(out, report.cases[i]);
    out += i + 1 < report.cases.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  if (report.pre_pr.present) {
    std::string note = report.pre_pr.note;
    for (char& ch : note) {
      if (ch == '"' || ch == '\\') ch = '\'';
    }
    out += "  \"pre_pr\": {\n";
    out += "    \"baseline_seconds\": " +
           io::FormatDouble(report.pre_pr.baseline_seconds) + ",\n";
    out += "    \"current_seconds\": " +
           io::FormatDouble(report.pre_pr.current_seconds) + ",\n";
    out += "    \"speedup\": " + io::FormatDouble(report.pre_pr.Speedup()) +
           ",\n";
    out += "    \"note\": \"" + note + "\"\n";
    out += "  },\n";
  }
  out += "  \"totals\": {\n";
  out += "    \"reference_seconds\": " +
         io::FormatDouble(report.reference_seconds) + ",\n";
  out += "    \"incremental_seconds\": " +
         io::FormatDouble(report.incremental_seconds) + ",\n";
  out += "    \"speculative_seconds\": " +
         io::FormatDouble(report.speculative_seconds) + ",\n";
  out += "    \"speedup\": " + io::FormatDouble(report.Speedup()) + ",\n";
  out += "    \"speculative_speedup\": " +
         io::FormatDouble(report.SpecSpeedup()) + ",\n";
  out += "    \"placements\": " + std::to_string(report.placements) + ",\n";
  out += "    \"ejections\": " + std::to_string(report.ejections) + ",\n";
  out += "    \"placements_per_sec\": " +
         io::FormatDouble(report.incremental_seconds > 0
                              ? static_cast<double>(report.placements) /
                                    report.incremental_seconds
                              : 0.0) +
         ",\n";
  out += "    \"ejections_per_sec\": " +
         io::FormatDouble(report.incremental_seconds > 0
                              ? static_cast<double>(report.ejections) /
                                    report.incremental_seconds
                              : 0.0) +
         "\n  },\n";
  if (report.service.present) {
    const auto phases = [](const ServicePhaseSeconds& p) {
      return "{\"queue\": " + io::FormatDouble(p.queue) +
             ", \"cache_probe\": " + io::FormatDouble(p.cache_probe) +
             ", \"mii\": " + io::FormatDouble(p.mii) +
             ", \"schedule\": " + io::FormatDouble(p.schedule) +
             ", \"serialize\": " + io::FormatDouble(p.serialize) + "}";
    };
    out += "  \"service\": {\n";
    out += "    \"requests\": " + std::to_string(report.service.requests) +
           ", \"warm_hits\": " + std::to_string(report.service.warm_hits) +
           ",\n";
    out += "    \"cold_seconds\": " +
           io::FormatDouble(report.service.cold_seconds) +
           ", \"warm_seconds\": " +
           io::FormatDouble(report.service.warm_seconds) + ",\n";
    out += "    \"cold_phases\": " + phases(report.service.cold) + ",\n";
    out += "    \"warm_phases\": " + phases(report.service.warm) + "\n";
    out += "  },\n";
  }
  const long lookups = report.mii_cache.hits + report.mii_cache.misses;
  out += "  \"mii_cache\": {\"hits\": " + std::to_string(report.mii_cache.hits) +
         ", \"misses\": " + std::to_string(report.mii_cache.misses) +
         ", \"hit_rate\": " +
         io::FormatDouble(lookups > 0 ? static_cast<double>(
                                            report.mii_cache.hits) /
                                            static_cast<double>(lookups)
                                      : 0.0) +
         "}\n";
  out += "}\n";
  return out;
}

}  // namespace hcrf::perf
