#include "perf/bench.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <utility>

#include "core/mirs.h"
#include "hwmodel/characterize.h"
#include "io/hcl.h"
#include "machine/machine_config.h"
#include "machine/rf_config.h"
#include "perf/thread_pool.h"
#include "workload/suite_cache.h"

namespace hcrf::perf {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

MachineConfig BenchMachine(const std::string& rf_name) {
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse(rf_name));
  if (!m.rf.UnboundedClusterRegs() && !m.rf.UnboundedSharedRegs()) {
    m = hw::ApplyCharacterization(m, hw::RFModelMode::kPaperTable);
  }
  return m;
}

LatencyQuantiles ComputeQuantiles(std::vector<double> v) {
  LatencyQuantiles q;
  if (v.empty()) return q;
  std::sort(v.begin(), v.end());
  const auto rank = [&v](double p) {
    // Nearest-rank: the smallest value with at least p of the mass below
    // or at it.
    size_t r = static_cast<size_t>(
        std::ceil(p * static_cast<double>(v.size())));
    r = std::min(std::max<size_t>(r, 1), v.size());
    return v[r - 1];
  };
  q.p50 = rank(0.50);
  q.p95 = rank(0.95);
  q.p99 = rank(0.99);
  q.max = v.back();
  return q;
}

/// Everything one timed mode produces over one (suite slice, machine) case.
struct ModeOut {
  double seconds = 0;
  std::vector<double> per_loop;  ///< Mean seconds per loop across reps.
  long placements = 0;
  long ejections = 0;
  int raced = 0;
  int wins = 0;
  int cancelled = 0;
  int discarded = 0;
  double attempt_seconds = 0;
  std::vector<core::ScheduleResult> results;  ///< Last repetition's.
};

/// One timed mode over one case: accumulates wall time (total and
/// per-loop), throughput stats, the last repetition's results for the
/// identity check, and — on the last repetition only, so the counts cover
/// one pass of the suite — the speculation telemetry.
ModeOut RunMode(const workload::Suite& suite, const MachineConfig& m,
                const std::vector<MIIInfo>& mii,
                const core::MirsOptions& mirs, int reps) {
  ModeOut out;
  out.per_loop.assign(suite.size(), 0.0);
  out.results.reserve(suite.size());
  core::MirsOptions opt = mirs;
  for (int rep = 0; rep < reps; ++rep) {
    const bool last = rep == reps - 1;
    for (size_t i = 0; i < suite.size(); ++i) {
      opt.precomputed_mii = mii[i];
      const Clock::time_point t0 = Clock::now();
      core::ScheduleResult res = core::MirsHC(suite[i].ddg, m, opt);
      const double dt = Seconds(t0, Clock::now());
      out.seconds += dt;
      out.per_loop[i] += dt;
      out.placements += res.stats.attempts;
      out.ejections += res.stats.ejections;
      if (last) {
        out.raced += res.spec.raced;
        out.wins += res.spec.raced_wins;
        out.cancelled += res.spec.cancelled;
        out.discarded += res.spec.discarded;
        out.attempt_seconds += res.spec.attempt_seconds;
        out.results.push_back(std::move(res));
      }
    }
  }
  for (double& s : out.per_loop) s /= reps;
  return out;
}

/// Dump-level identity of two modes' results; counts unschedulable loops
/// once via `failed` (only from the first comparison, against `count_fails`).
void CompareResults(const std::vector<core::ScheduleResult>& ref,
                    const std::vector<core::ScheduleResult>& alt,
                    bool count_fails, BenchCase& c) {
  for (size_t i = 0; i < ref.size(); ++i) {
    const core::ScheduleResult& a = ref[i];
    const core::ScheduleResult& b = alt[i];
    if (a.ok != b.ok) {
      c.identical = false;
      continue;
    }
    if (!a.ok) {
      if (count_fails) ++c.failed;
      continue;
    }
    if (io::DumpResult(a) != io::DumpResult(b)) c.identical = false;
  }
}

BenchCase RunCase(const std::string& suite_name,
                  const workload::Suite& suite, const std::string& rf_name,
                  int reps, int speculate_k, bool speculate_eager) {
  BenchCase c;
  c.suite = suite_name;
  c.rf = rf_name;
  c.loops = static_cast<int>(suite.size());
  c.reps = reps;

  const MachineConfig m = BenchMachine(rf_name);
  std::vector<MIIInfo> mii;
  mii.reserve(suite.size());
  for (size_t i = 0; i < suite.size(); ++i) {
    mii.push_back(CachedMii(suite[i].ddg, m));
  }

  core::MirsOptions mirs;
  mirs.incremental = false;
  const ModeOut ref = RunMode(suite, m, mii, mirs, reps);
  c.reference_seconds = ref.seconds;

  mirs.incremental = true;
  const ModeOut inc = RunMode(suite, m, mii, mirs, reps);
  c.incremental_seconds = inc.seconds;
  c.placements = inc.placements;
  c.ejections = inc.ejections;
  c.serial_latency = ComputeQuantiles(inc.per_loop);
  CompareResults(ref.results, inc.results, /*count_fails=*/true, c);

  if (speculate_k >= 2) {
    mirs.speculate_k = speculate_k;
    mirs.speculate_eager = speculate_eager;
    const ModeOut spec = RunMode(suite, m, mii, mirs, reps);
    c.speculative_seconds = spec.seconds;
    c.speculative_latency = ComputeQuantiles(spec.per_loop);
    c.spec_raced = spec.raced;
    c.spec_wins = spec.wins;
    c.spec_losses = spec.discarded;
    c.spec_cancelled = spec.cancelled;
    c.spec_attempt_seconds = spec.attempt_seconds;
    CompareResults(inc.results, spec.results, /*count_fails=*/false, c);
  }
  return c;
}

/// One loop of the delta leg, prepared outside the timed region: the
/// unperturbed base schedule (the warm-start seed), the single-load
/// perturbation, and the perturbed MII handed to both timed modes.
struct DeltaLoop {
  size_t index = 0;
  std::shared_ptr<const core::ScheduleResult> base;
  sched::LatencyOverrides overrides;
  MIIInfo mii;
};

DeltaCase RunDeltaCase(const workload::Suite& suite,
                       const std::string& rf_name, int reps) {
  DeltaCase d;
  d.rf = rf_name;
  d.reps = reps;
  const MachineConfig m = BenchMachine(rf_name);

  core::MirsOptions opt;
  opt.incremental = true;

  // Prepare (untimed): base schedules and one hardened load per loop.
  // Hardening (raising the first load's producer latency toward — at
  // least past — its hit latency) only shrinks the feasible-II set, so
  // warm II <= cold II is guaranteed analytically, not just measured.
  std::vector<DeltaLoop> prepared;
  for (size_t i = 0; i < suite.size(); ++i) {
    const DDG& ddg = suite[i].ddg;
    NodeId load = -1;
    for (NodeId v = 0; v < ddg.NumSlots(); ++v) {
      if (ddg.IsAlive(v) && ddg.node(v).op == OpClass::kLoad) {
        load = v;
        break;
      }
    }
    if (load < 0) {
      ++d.skipped;
      continue;
    }
    DeltaLoop dl;
    dl.index = i;
    opt.precomputed_mii = CachedMii(ddg, m);
    opt.warm_start = nullptr;
    core::ScheduleResult base = core::MirsHC(ddg, m, opt);
    if (!base.ok) {
      ++d.skipped;
      continue;
    }
    dl.base = std::make_shared<const core::ScheduleResult>(std::move(base));
    dl.overrides.producer_latency.assign(
        static_cast<size_t>(ddg.NumSlots()), 0);
    dl.overrides.producer_latency[static_cast<size_t>(load)] =
        std::max(m.lat.load_miss, m.lat.load_hit + 1);
    dl.mii = CachedMii(ddg, m, dl.overrides);
    prepared.push_back(std::move(dl));
  }
  d.loops = static_cast<int>(prepared.size());
  if (prepared.empty()) return d;

  std::vector<double> cold_loop(prepared.size(), 0.0);
  std::vector<double> warm_loop(prepared.size(), 0.0);
  for (int rep = 0; rep < reps; ++rep) {
    const bool last = rep == reps - 1;
    for (size_t j = 0; j < prepared.size(); ++j) {
      const DeltaLoop& dl = prepared[j];
      const DDG& ddg = suite[dl.index].ddg;
      opt.precomputed_mii = dl.mii;

      opt.warm_start = nullptr;
      Clock::time_point t0 = Clock::now();
      const core::ScheduleResult cold =
          core::MirsHC(ddg, m, opt, dl.overrides);
      double dt = Seconds(t0, Clock::now());
      d.cold_seconds += dt;
      cold_loop[j] += dt;
      d.rebuild_placements += cold.stats.attempts;

      opt.warm_start = dl.base;
      t0 = Clock::now();
      const core::ScheduleResult warm =
          core::MirsHC(ddg, m, opt, dl.overrides);
      dt = Seconds(t0, Clock::now());
      d.warm_seconds += dt;
      warm_loop[j] += dt;
      d.repair_placements += warm.stats.attempts;

      if (last) {
        d.seeded += warm.warm.seeded;
        if (warm.warm.fallback) ++d.fallbacks;
        if (cold.ok != warm.ok || (cold.ok && warm.ii > cold.ii)) {
          d.ii_never_worse = false;
        }
      }
    }
  }
  opt.warm_start = nullptr;
  for (double& s : cold_loop) s /= reps;
  for (double& s : warm_loop) s /= reps;
  d.cold_latency = ComputeQuantiles(cold_loop);
  d.warm_latency = ComputeQuantiles(warm_loop);
  return d;
}

void AppendQuantiles(std::string& out, const char* key,
                     const LatencyQuantiles& q) {
  out += std::string("\"") + key + "\": {\"p50\": " + io::FormatDouble(q.p50) +
         ", \"p95\": " + io::FormatDouble(q.p95) +
         ", \"p99\": " + io::FormatDouble(q.p99) +
         ", \"max\": " + io::FormatDouble(q.max) + "}";
}

void Append(std::string& out, const BenchCase& c) {
  out += "    {\"suite\": \"" + c.suite + "\", \"rf\": \"" + c.rf + "\",\n";
  out += "     \"loops\": " + std::to_string(c.loops) +
         ", \"reps\": " + std::to_string(c.reps) +
         ", \"failed\": " + std::to_string(c.failed) + ",\n";
  out += "     \"identical\": " + std::string(c.identical ? "true" : "false") +
         ",\n";
  out += "     \"reference_seconds\": " + io::FormatDouble(c.reference_seconds) +
         ",\n";
  out += "     \"incremental_seconds\": " +
         io::FormatDouble(c.incremental_seconds) + ",\n";
  out += "     \"speculative_seconds\": " +
         io::FormatDouble(c.speculative_seconds) + ",\n";
  out += "     \"speedup\": " + io::FormatDouble(c.Speedup()) + ",\n";
  out += "     \"latency\": {";
  AppendQuantiles(out, "serial", c.serial_latency);
  out += ",\n                 ";
  AppendQuantiles(out, "speculative", c.speculative_latency);
  out += ",\n                 \"p95_speedup\": " +
         io::FormatDouble(c.SpecP95Speedup()) + "},\n";
  out += "     \"speculation\": {\"raced\": " + std::to_string(c.spec_raced) +
         ", \"wins\": " + std::to_string(c.spec_wins) +
         ", \"losses\": " + std::to_string(c.spec_losses) +
         ", \"cancelled\": " + std::to_string(c.spec_cancelled) + ",\n" +
         "                     \"attempt_seconds\": " +
         io::FormatDouble(c.spec_attempt_seconds) +
         ", \"effective_parallelism\": " +
         io::FormatDouble(c.EffectiveParallelism()) + "},\n";
  out += "     \"placements\": " + std::to_string(c.placements) +
         ", \"ejections\": " + std::to_string(c.ejections) + ",\n";
  out += "     \"placements_per_sec\": " +
         io::FormatDouble(c.incremental_seconds > 0
                              ? static_cast<double>(c.placements) /
                                    c.incremental_seconds
                              : 0.0) +
         ",\n";
  out += "     \"ejections_per_sec\": " +
         io::FormatDouble(c.incremental_seconds > 0
                              ? static_cast<double>(c.ejections) /
                                    c.incremental_seconds
                              : 0.0) +
         "}";
}

}  // namespace

BenchReport RunBench(const BenchOptions& opt) {
  BenchReport report;

  const workload::Suite& kernels = workload::SharedKernelSuite();
  const workload::Suite& synth_full = workload::SharedSyntheticSuite();

  // Explicit options always win; smoke only shrinks the unset knobs.
  std::vector<std::string> orgs = opt.rf_names;
  if (orgs.empty()) {
    orgs = opt.smoke
               ? std::vector<std::string>{"4C16S64/2-1"}
               : std::vector<std::string>{"4C16S64/2-1", "4C32/1-1", "S64"};
  }
  const int kernel_reps =
      opt.kernel_reps > 0 ? opt.kernel_reps : (opt.smoke ? 5 : 60);
  const int synth_reps = opt.synth_reps > 0 ? opt.synth_reps : 1;
  int synth_loops = opt.synth_loops;
  if (synth_loops <= 0 && opt.smoke) synth_loops = 64;
  workload::Suite synth_slice;
  const workload::Suite* synth = &synth_full;
  if (synth_loops > 0) {
    synth_slice =
        workload::SuiteSlice(synth_full, static_cast<size_t>(synth_loops));
    synth = &synth_slice;
  }

  for (const std::string& rf : orgs) {
    report.cases.push_back(RunCase("kernels", kernels, rf, kernel_reps,
                                   opt.speculate_k, opt.speculate_eager));
    report.cases.push_back(RunCase("synth", *synth, rf, synth_reps,
                                   opt.speculate_k, opt.speculate_eager));
    report.delta.push_back(RunDeltaCase(kernels, rf, kernel_reps));
  }

  for (const BenchCase& c : report.cases) {
    report.reference_seconds += c.reference_seconds;
    report.incremental_seconds += c.incremental_seconds;
    report.speculative_seconds += c.speculative_seconds;
    report.placements += c.placements;
    report.ejections += c.ejections;
    if (!c.identical) report.identical = false;
  }
  report.speculate_k = opt.speculate_k;
  report.speculate_eager = opt.speculate_eager;
  report.speculation_pool_workers =
      opt.speculate_k >= 2 ? SpeculationPool::Shared().num_workers() : 0;
  report.host = QueryHostInfo();
  report.mii_cache = GetMiiCacheStats();
  return report;
}

HostInfo QueryHostInfo() {
  HostInfo h;
  h.hardware_concurrency = std::thread::hardware_concurrency();
  h.thread_pool_workers = ThreadPool::Shared().num_workers();
  h.speculation_pool_workers = SpeculationPool::Shared().num_workers();
  h.degraded = h.speculation_pool_workers == 0;
#ifdef NDEBUG
  h.build_type = "release";
#else
  h.build_type = "debug";
#endif
  return h;
}

std::string BenchJson(const BenchReport& report) {
  std::string out = "{\n";
  out += "  \"format\": \"hcrf-bench-4\",\n";
  out += "  \"generated_by\": \"hcrf_sched bench\",\n";
  out += "  \"host\": {\"hardware_concurrency\": " +
         std::to_string(report.host.hardware_concurrency) +
         ", \"thread_pool_workers\": " +
         std::to_string(report.host.thread_pool_workers) +
         ", \"speculation_pool_workers\": " +
         std::to_string(report.host.speculation_pool_workers) +
         ",\n           \"degraded\": " +
         std::string(report.host.degraded ? "true" : "false") +
         ", \"build_type\": \"" + report.host.build_type + "\"},\n";
  out += "  \"threads\": 1,\n";
  out += "  \"speculate_k\": " + std::to_string(report.speculate_k) + ",\n";
  out += "  \"speculate_eager\": " +
         std::string(report.speculate_eager ? "true" : "false") + ",\n";
  out += "  \"speculation_pool_workers\": " +
         std::to_string(report.speculation_pool_workers) + ",\n";
  out += "  \"identical\": " +
         std::string(report.identical ? "true" : "false") + ",\n";
  out += "  \"cases\": [\n";
  for (size_t i = 0; i < report.cases.size(); ++i) {
    Append(out, report.cases[i]);
    out += i + 1 < report.cases.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"delta\": [\n";
  for (size_t i = 0; i < report.delta.size(); ++i) {
    const DeltaCase& d = report.delta[i];
    out += "    {\"rf\": \"" + d.rf + "\",\n";
    out += "     \"loops\": " + std::to_string(d.loops) +
           ", \"skipped\": " + std::to_string(d.skipped) +
           ", \"reps\": " + std::to_string(d.reps) +
           ", \"fallbacks\": " + std::to_string(d.fallbacks) + ",\n";
    out += "     \"cold_seconds\": " + io::FormatDouble(d.cold_seconds) +
           ", \"warm_seconds\": " + io::FormatDouble(d.warm_seconds) + ",\n";
    out += "     \"latency\": {";
    AppendQuantiles(out, "cold", d.cold_latency);
    out += ",\n                 ";
    AppendQuantiles(out, "warm", d.warm_latency);
    out += ",\n                 \"p50_speedup\": " +
           io::FormatDouble(d.P50Speedup()) + ", \"p95_speedup\": " +
           io::FormatDouble(d.P95Speedup()) + "},\n";
    out += "     \"rebuild_placements\": " +
           std::to_string(d.rebuild_placements) +
           ", \"repair_placements\": " + std::to_string(d.repair_placements) +
           ", \"seeded\": " + std::to_string(d.seeded) + ",\n";
    out += "     \"ii_never_worse\": " +
           std::string(d.ii_never_worse ? "true" : "false") + "}";
    out += i + 1 < report.delta.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  if (report.pre_pr.present) {
    std::string note = report.pre_pr.note;
    for (char& ch : note) {
      if (ch == '"' || ch == '\\') ch = '\'';
    }
    out += "  \"pre_pr\": {\n";
    out += "    \"baseline_seconds\": " +
           io::FormatDouble(report.pre_pr.baseline_seconds) + ",\n";
    out += "    \"current_seconds\": " +
           io::FormatDouble(report.pre_pr.current_seconds) + ",\n";
    out += "    \"speedup\": " + io::FormatDouble(report.pre_pr.Speedup()) +
           ",\n";
    out += "    \"note\": \"" + note + "\"\n";
    out += "  },\n";
  }
  out += "  \"totals\": {\n";
  out += "    \"reference_seconds\": " +
         io::FormatDouble(report.reference_seconds) + ",\n";
  out += "    \"incremental_seconds\": " +
         io::FormatDouble(report.incremental_seconds) + ",\n";
  out += "    \"speculative_seconds\": " +
         io::FormatDouble(report.speculative_seconds) + ",\n";
  out += "    \"speedup\": " + io::FormatDouble(report.Speedup()) + ",\n";
  out += "    \"speculative_speedup\": " +
         io::FormatDouble(report.SpecSpeedup()) + ",\n";
  out += "    \"placements\": " + std::to_string(report.placements) + ",\n";
  out += "    \"ejections\": " + std::to_string(report.ejections) + ",\n";
  out += "    \"placements_per_sec\": " +
         io::FormatDouble(report.incremental_seconds > 0
                              ? static_cast<double>(report.placements) /
                                    report.incremental_seconds
                              : 0.0) +
         ",\n";
  out += "    \"ejections_per_sec\": " +
         io::FormatDouble(report.incremental_seconds > 0
                              ? static_cast<double>(report.ejections) /
                                    report.incremental_seconds
                              : 0.0) +
         "\n  },\n";
  if (report.service.present) {
    const auto phases = [](const ServicePhaseSeconds& p) {
      return "{\"queue\": " + io::FormatDouble(p.queue) +
             ", \"cache_probe\": " + io::FormatDouble(p.cache_probe) +
             ", \"mii\": " + io::FormatDouble(p.mii) +
             ", \"schedule\": " + io::FormatDouble(p.schedule) +
             ", \"serialize\": " + io::FormatDouble(p.serialize) + "}";
    };
    out += "  \"service\": {\n";
    out += "    \"requests\": " + std::to_string(report.service.requests) +
           ", \"warm_hits\": " + std::to_string(report.service.warm_hits) +
           ",\n";
    out += "    \"cold_seconds\": " +
           io::FormatDouble(report.service.cold_seconds) +
           ", \"warm_seconds\": " +
           io::FormatDouble(report.service.warm_seconds) + ",\n";
    out += "    \"cold_phases\": " + phases(report.service.cold) + ",\n";
    out += "    \"warm_phases\": " + phases(report.service.warm) + "\n";
    out += "  },\n";
  }
  const long lookups = report.mii_cache.hits + report.mii_cache.misses;
  out += "  \"mii_cache\": {\"hits\": " + std::to_string(report.mii_cache.hits) +
         ", \"misses\": " + std::to_string(report.mii_cache.misses) +
         ", \"hit_rate\": " +
         io::FormatDouble(lookups > 0 ? static_cast<double>(
                                            report.mii_cache.hits) /
                                            static_cast<double>(lookups)
                                      : 0.0) +
         "}\n";
  out += "}\n";
  return out;
}

namespace {

/// Position of `key` within [from, to) of `s`, or npos. The baseline
/// scanner works on BenchJson's own deterministic output, so targeted
/// key searches are exact — no JSON library needed (or available).
std::size_t FindIn(const std::string& s, std::size_t from, std::size_t to,
                   const std::string& key) {
  const std::size_t p = s.find(key, from);
  return p == std::string::npos || p >= to ? std::string::npos : p;
}

/// Parses the number immediately following `key` within [from, to).
bool ScanNumber(const std::string& s, std::size_t from, std::size_t to,
                const std::string& key, double* out) {
  const std::size_t p = FindIn(s, from, to, key);
  if (p == std::string::npos) return false;
  *out = std::strtod(s.c_str() + p + key.size(), nullptr);
  return true;
}

/// Parses the quoted string opened right after `key` within [from, to).
bool ScanString(const std::string& s, std::size_t from, std::size_t to,
                const std::string& key, std::string* out) {
  const std::size_t p = FindIn(s, from, to, key);
  if (p == std::string::npos) return false;
  const std::size_t begin = p + key.size();
  const std::size_t quote = s.find('"', begin);
  if (quote == std::string::npos || quote > to) return false;
  *out = s.substr(begin, quote - begin);
  return true;
}

}  // namespace

BaselineCheck CompareAgainstBaseline(const BenchReport& current,
                                     const std::string& baseline_json,
                                     double tolerance) {
  BaselineCheck out;
  if (baseline_json.find("\"format\": \"hcrf-bench-") == std::string::npos) {
    out.error = "baseline is not an hcrf-bench JSON report";
    return out;
  }
  // The first occurrence is the host block's (the top-level copy of the
  // knob comes later in BenchJson's field order).
  double base_workers = 0;
  if (!ScanNumber(baseline_json, 0, baseline_json.size(),
                  "\"speculation_pool_workers\": ", &base_workers)) {
    out.error = "baseline has no host block";
    return out;
  }
  const bool base_spec = base_workers > 0;
  const bool cur_spec = current.host.speculation_pool_workers > 0;

  const std::size_t cases_at = baseline_json.find("\"cases\": [");
  if (cases_at == std::string::npos) {
    out.error = "baseline has no cases array";
    return out;
  }
  const std::size_t cases_end = baseline_json.find("\n  ]", cases_at);
  const std::size_t end =
      cases_end == std::string::npos ? baseline_json.size() : cases_end;

  std::size_t cursor = baseline_json.find("{\"suite\": \"", cases_at);
  while (cursor != std::string::npos && cursor < end) {
    std::size_t next = baseline_json.find("{\"suite\": \"", cursor + 1);
    if (next == std::string::npos || next > end) next = end;

    std::string suite;
    std::string rf;
    double serial_p95 = 0;
    double spec_p95 = 0;
    const bool named =
        ScanString(baseline_json, cursor, next, "\"suite\": \"", &suite) &&
        ScanString(baseline_json, cursor, next, "\"rf\": \"", &rf);
    const std::size_t serial_at =
        FindIn(baseline_json, cursor, next, "\"serial\": {");
    if (serial_at != std::string::npos) {
      ScanNumber(baseline_json, serial_at, next, "\"p95\": ", &serial_p95);
    }
    const std::size_t spec_at =
        FindIn(baseline_json, cursor, next, "\"speculative\": {");
    if (spec_at != std::string::npos) {
      ScanNumber(baseline_json, spec_at, next, "\"p95\": ", &spec_p95);
    }

    const BenchCase* cur = nullptr;
    if (named) {
      for (const BenchCase& c : current.cases) {
        if (c.suite == suite && c.rf == rf) {
          cur = &c;
          break;
        }
      }
    }
    if (cur != nullptr && serial_p95 > 0 && cur->serial_latency.p95 > 0) {
      BaselineCaseCheck chk;
      chk.suite = suite;
      chk.rf = rf;
      chk.metric = "serial_p95";
      chk.baseline = serial_p95;
      chk.current = cur->serial_latency.p95;
      chk.regressed = chk.current > chk.baseline * (1.0 + tolerance);
      ++out.compared;
      if (chk.regressed) ++out.regressions;
      out.checks.push_back(std::move(chk));
    }
    if (cur != nullptr && spec_p95 > 0 && cur->speculative_latency.p95 > 0) {
      BaselineCaseCheck chk;
      chk.suite = suite;
      chk.rf = rf;
      chk.metric = "speculative_p95";
      chk.baseline = spec_p95;
      chk.current = cur->speculative_latency.p95;
      if (!base_spec || !cur_spec) {
        // A degraded host (no speculation workers) races inline; its
        // speculative tail is not comparable to a parallel run's.
        chk.skipped = true;
        ++out.skipped;
      } else {
        chk.regressed = chk.current > chk.baseline * (1.0 + tolerance);
        ++out.compared;
        if (chk.regressed) ++out.regressions;
      }
      out.checks.push_back(std::move(chk));
    }
    cursor = next == end ? std::string::npos : next;
  }
  if (out.compared == 0) {
    out.error = "no comparable legs between baseline and current report";
    return out;
  }
  out.ok = true;
  return out;
}

}  // namespace hcrf::perf
