#include "perf/metrics.h"

namespace hcrf::perf {

SuiteMetrics Aggregate(const std::vector<LoopMetrics>& loops) {
  SuiteMetrics s;
  s.num_loops = static_cast<int>(loops.size());
  for (const LoopMetrics& lm : loops) {
    if (!lm.ok) {
      ++s.failed;
      continue;
    }
    s.sum_ii += lm.ii;
    if (lm.ii == lm.mii) ++s.loops_at_mii;
    s.useful_cycles += lm.useful_cycles;
    s.stall_cycles += lm.stall_cycles;
    s.mem_traffic += lm.mem_traffic;
    s.ops_executed += lm.ops_executed;
    s.sched_seconds += lm.sched_seconds;
    s.ejections += lm.ejections;
    s.spills_inserted += lm.spills_inserted;
    s.ii_restarts += lm.ii_restarts;
    s.budget_spent += lm.budget_spent;
    const auto b = static_cast<size_t>(lm.bound);
    ++s.bound_count[b];
    s.bound_cycles[b] += lm.ExecCycles();
  }
  return s;
}

}  // namespace hcrf::perf
