// Shared worker pool for the suite runner.
//
// The paper-reproduction benches run dozens of multi-configuration sweeps
// per process, each previously spawning (and joining) hardware_concurrency
// threads. This pool starts its workers once and feeds them a work queue;
// ParallelFor distributes item indices through an atomic cursor, the
// calling thread participates, and `max_workers` caps the parallelism of
// one call (1 = strictly serial on the caller, preserving the serial
// debugging path).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hcrf::perf {

class ThreadPool {
 public:
  /// The process-wide pool (hardware_concurrency workers, lazily started).
  static ThreadPool& Shared();

  /// `threads` = total parallelism including the calling thread (the pool
  /// starts threads-1 workers; the caller participates in every job);
  /// 0 = hardware concurrency.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(0) .. fn(n-1), distributing items across up to `max_workers`
  /// threads (including the caller; <= 1 runs serially on the caller).
  /// Returns when every item has finished. Concurrent ParallelFor calls
  /// from different threads are serialized.
  void ParallelFor(std::size_t n, int max_workers,
                   const std::function<void(std::size_t)>& fn);

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::size_t next = 0;       ///< Next item index to hand out.
    std::size_t remaining = 0;  ///< Items not yet finished.
    int entrants_left = 0;      ///< Worker-entry slots left (caps width).
    std::uint64_t generation = 0;
    bool active = false;
  };

  void WorkerLoop();
  /// Pulls items until the queue drains. Precondition: caller holds lk.
  void RunItems(std::unique_lock<std::mutex>& lk);

  std::mutex session_mu_;  ///< Serializes ParallelFor sessions.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Job job_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace hcrf::perf
