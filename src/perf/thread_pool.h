// Shared worker pool for the suite runner.
//
// The paper-reproduction benches run dozens of multi-configuration sweeps
// per process, each previously spawning (and joining) hardware_concurrency
// threads. This pool starts its workers once and feeds them a work queue;
// ParallelFor distributes item indices through an atomic cursor, the
// calling thread participates, and `max_workers` caps the parallelism of
// one call (1 = strictly serial on the caller, preserving the serial
// debugging path).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hcrf::perf {

class ThreadPool {
 public:
  /// The process-wide pool (hardware_concurrency workers, lazily started).
  static ThreadPool& Shared();

  /// `threads` = total parallelism including the calling thread (the pool
  /// starts threads-1 workers; the caller participates in every job);
  /// 0 = hardware concurrency.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(0) .. fn(n-1), distributing items across up to `max_workers`
  /// threads (including the caller; <= 1 runs serially on the caller).
  /// Returns when every item has finished. Concurrent ParallelFor calls
  /// from different threads are serialized.
  void ParallelFor(std::size_t n, int max_workers,
                   const std::function<void(std::size_t)>& fn);

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::size_t next = 0;       ///< Next item index to hand out.
    std::size_t remaining = 0;  ///< Items not yet finished.
    int entrants_left = 0;      ///< Worker-entry slots left (caps width).
    std::uint64_t generation = 0;
    bool active = false;
  };

  void WorkerLoop();
  /// Pulls items until the queue drains. Precondition: caller holds lk.
  void RunItems(std::unique_lock<std::mutex>& lk);

  std::mutex session_mu_;  ///< Serializes ParallelFor sessions.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Job job_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

class TaskGroup;

/// Bounded sub-pool for parallelism *inside* one scheduling request
/// (speculative II racing). ThreadPool::ParallelFor runs one job at a time
/// behind a session mutex, so submitting nested work from one of its
/// workers would deadlock; this pool instead keeps a plain multi-group task
/// queue that any thread — including a ThreadPool worker or one of its own
/// workers — may feed through a TaskGroup. Saturation can never deadlock:
/// a thread waiting on its group steals that group's still-queued tasks and
/// runs them inline, so a fully busy (or even worker-less) pool degrades to
/// serial execution on the submitter.
class SpeculationPool {
 public:
  /// The process-wide pool (hardware_concurrency - 1 workers — the
  /// submitting thread is the remaining lane — lazily started).
  static SpeculationPool& Shared();

  /// `threads` = worker-thread count. Unlike ThreadPool, the submitter is
  /// not counted here (it participates through TaskGroup::RunAndWait's
  /// stealing), so 0 is a valid, fully inline configuration; negative
  /// values select the hardware_concurrency - 1 default.
  explicit SpeculationPool(int threads = -1);
  ~SpeculationPool();

  SpeculationPool(const SpeculationPool&) = delete;
  SpeculationPool& operator=(const SpeculationPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  friend class TaskGroup;
  struct Task {
    TaskGroup* group;
    std::function<void()> fn;
  };

  void WorkerLoop();

  std::mutex mu_;  ///< Guards the queue and every group's pending count.
  std::condition_variable work_cv_;
  std::deque<Task> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// One fan-out of concurrent tasks on a SpeculationPool: Submit each task,
/// then RunAndWait — the calling thread runs its own still-queued tasks
/// while waiting, which is what makes nested submission (a pool task that
/// opens its own TaskGroup) safe at any saturation level. The group must
/// outlive its tasks; the destructor drains. Tasks must not Submit to
/// their own group.
class TaskGroup {
 public:
  explicit TaskGroup(SpeculationPool& pool) : pool_(pool) {}
  ~TaskGroup() { RunAndWait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `fn`; an idle worker (or the waiting submitter) will run it.
  void Submit(std::function<void()> fn);

  /// Runs queued tasks of this group on the calling thread until none are
  /// left, then blocks until the in-flight ones finish. Reentrant: the
  /// group is reusable for another Submit round afterwards.
  void RunAndWait();

 private:
  friend class SpeculationPool;
  SpeculationPool& pool_;
  int pending_ = 0;  ///< Submitted but unfinished; guarded by pool_.mu_.
  std::condition_variable done_cv_;
};

}  // namespace hcrf::perf
