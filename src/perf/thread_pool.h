// Shared worker pool for the suite runner.
//
// The paper-reproduction benches run dozens of multi-configuration sweeps
// per process, each previously spawning (and joining) hardware_concurrency
// threads. This pool starts its workers once and feeds them a work queue;
// ParallelFor distributes item indices through an atomic cursor, the
// calling thread participates, and `max_workers` caps the parallelism of
// one call (1 = strictly serial on the caller, preserving the serial
// debugging path).
//
// Lock discipline (machine-checked under clang -Wthread-safety): `mu_`
// guards the job slot and the stop flag; `session_mu_` serializes whole
// ParallelFor sessions and is always acquired before `mu_`. Blocking
// regions use explicit Mutex::lock/unlock pairs rather than scoped locks
// because the work loops drop the mutex around each item.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "core/thread_annotations.h"

namespace hcrf::perf {

class ThreadPool {
 public:
  /// The process-wide pool (hardware_concurrency workers, lazily started).
  static ThreadPool& Shared();

  /// `threads` = total parallelism including the calling thread (the pool
  /// starts threads-1 workers; the caller participates in every job);
  /// 0 = hardware concurrency.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(0) .. fn(n-1), distributing items across up to `max_workers`
  /// threads (including the caller; <= 1 runs serially on the caller).
  /// Returns when every item has finished. Concurrent ParallelFor calls
  /// from different threads are serialized. Must not be called from inside
  /// a pool job (the session mutex is not reentrant) — hence the EXCLUDES.
  void ParallelFor(std::size_t n, int max_workers,
                   const std::function<void(std::size_t)>& fn)
      HCRF_EXCLUDES(session_mu_, mu_);

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::size_t next = 0;       ///< Next item index to hand out.
    std::size_t remaining = 0;  ///< Items not yet finished.
    int entrants_left = 0;      ///< Worker-entry slots left (caps width).
    std::uint64_t generation = 0;
    bool active = false;
  };

  void WorkerLoop() HCRF_EXCLUDES(mu_);
  /// Pulls items until the queue drains; drops `mu_` around each item.
  void RunItems() HCRF_REQUIRES(mu_);

  Mutex session_mu_;  ///< Serializes ParallelFor sessions; outranks mu_.
  Mutex mu_;
  CondVar work_cv_;
  CondVar done_cv_;
  Job job_ HCRF_GUARDED_BY(mu_);
  bool stop_ HCRF_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;  ///< Written in ctor/dtor only.
};

class TaskGroup;

/// Bounded sub-pool for parallelism *inside* one scheduling request
/// (speculative II racing). ThreadPool::ParallelFor runs one job at a time
/// behind a session mutex, so submitting nested work from one of its
/// workers would deadlock; this pool instead keeps a plain multi-group task
/// queue that any thread — including a ThreadPool worker or one of its own
/// workers — may feed through a TaskGroup. Saturation can never deadlock:
/// a thread waiting on its group steals that group's still-queued tasks and
/// runs them inline, so a fully busy (or even worker-less) pool degrades to
/// serial execution on the submitter.
class SpeculationPool {
 public:
  /// The process-wide pool (hardware_concurrency - 1 workers — the
  /// submitting thread is the remaining lane — lazily started).
  static SpeculationPool& Shared();

  /// `threads` = worker-thread count. Unlike ThreadPool, the submitter is
  /// not counted here (it participates through TaskGroup::RunAndWait's
  /// stealing), so 0 is a valid, fully inline configuration; negative
  /// values select the hardware_concurrency - 1 default.
  explicit SpeculationPool(int threads = -1);
  ~SpeculationPool();

  SpeculationPool(const SpeculationPool&) = delete;
  SpeculationPool& operator=(const SpeculationPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  friend class TaskGroup;
  struct Task {
    TaskGroup* group;
    std::function<void()> fn;
  };

  void WorkerLoop() HCRF_EXCLUDES(mu_);

  Mutex mu_;  ///< Guards the queue and every group's pending count.
  CondVar work_cv_;
  std::deque<Task> queue_ HCRF_GUARDED_BY(mu_);
  bool stop_ HCRF_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;  ///< Written in ctor/dtor only.
};

/// One fan-out of concurrent tasks on a SpeculationPool: Submit each task,
/// then RunAndWait — the calling thread runs its own still-queued tasks
/// while waiting, which is what makes nested submission (a pool task that
/// opens its own TaskGroup) safe at any saturation level. The group must
/// outlive its tasks; the destructor drains. Tasks must not Submit to
/// their own group.
class TaskGroup {
 public:
  explicit TaskGroup(SpeculationPool& pool) : pool_(pool) {}
  ~TaskGroup() { RunAndWait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `fn`; an idle worker (or the waiting submitter) will run it.
  void Submit(std::function<void()> fn) HCRF_EXCLUDES(pool_.mu_);

  /// Runs queued tasks of this group on the calling thread until none are
  /// left, then blocks until the in-flight ones finish. Reentrant: the
  /// group is reusable for another Submit round afterwards.
  void RunAndWait() HCRF_EXCLUDES(pool_.mu_);

 private:
  friend class SpeculationPool;

  /// Completion bookkeeping for a task a pool worker just ran, called with
  /// the worker's pool mutex held. `pending_` is guarded by `pool_.mu_`,
  /// and the worker holds its own pool's `mu_` — the same object, because
  /// a task only ever sits in the queue of the pool its group was built
  /// on. The analysis cannot prove that aliasing across the Task pointer,
  /// hence the targeted opt-out; the invariant is enforced structurally
  /// (Submit pushes to `pool_.queue_` only).
  void FinishFromWorker() HCRF_NO_THREAD_SAFETY_ANALYSIS {
    if (--pending_ == 0) done_cv_.NotifyAll();
  }

  SpeculationPool& pool_;
  int pending_ HCRF_GUARDED_BY(pool_.mu_) = 0;  ///< Submitted, unfinished.
  CondVar done_cv_;
};

}  // namespace hcrf::perf
