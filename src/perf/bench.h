// Engine A/B/C bench: times the scheduling hot path in reference mode
// (full ComputePressure per spill check, linear priority scan), incremental
// mode (pressure tracker + indexed priority pick, MirsOptions::incremental)
// and speculative mode (incremental + II racing on the SpeculationPool,
// MirsOptions::speculate_k), asserts all modes produce bit-identical
// schedules on every loop, and reports speedups, per-loop latency tails and
// speculation telemetry.
//
// This is the measured perf trajectory behind the checked-in BENCH_*.json
// files: `hcrf_sched bench` writes one per PR, and CI runs `bench --smoke`
// so a schedule-identity regression (the incremental or speculative path
// drifting from the reference semantics) fails the build.
//
// Methodology notes:
//  * Per-(suite, organization) cases, fixed repetition counts; wall time
//    covers MirsHC only (suite construction, MII bounds and serialization
//    are outside the timed region). The reference and incremental legs are
//    single-threaded; the speculative leg uses the process SpeculationPool.
//  * Each loop's MII is precomputed once and handed to every mode via
//    MirsOptions::precomputed_mii, so the comparison isolates the engine.
//  * Latency quantiles are nearest-rank over the per-loop mean wall time
//    (seconds, averaged across the case's repetitions) — the per-loop tail
//    is what II racing attacks, and what suite totals hide.
//  * The identity check compares canonical result dumps (io::DumpResult)
//    of the modes pairwise, i.e. II, every placement, the transformed
//    graph and the stats block all have to match bit for bit.
#pragma once

#include <string>
#include <vector>

#include "perf/runner.h"
#include "workload/workload.h"

namespace hcrf::perf {

struct BenchOptions {
  /// RF organizations to bench on (paper notation). Empty = the default
  /// set: hierarchical clustered (the paper's proposal), pure clustered,
  /// and monolithic with tight registers — one per engine family; smoke
  /// mode defaults to the first of those only. Explicit values always
  /// win, smoke or not.
  std::vector<std::string> rf_names;
  /// Repetitions of the kernel suite per timed mode (the suite is tiny,
  /// so one pass is below timer noise). 0 = default (60; 5 in smoke).
  int kernel_reps = 0;
  /// Synthetic-suite loops per case. 0 = default (the whole shared suite;
  /// a 64-loop slice in smoke).
  int synth_loops = 0;
  /// Repetitions of the synthetic suite per timed mode (0 = 1).
  int synth_reps = 0;
  /// Candidate IIs per speculative wave (MirsOptions::speculate_k) for the
  /// speculative leg; values < 2 skip that leg entirely.
  int speculate_k = 4;
  /// Race the first wave too (MirsOptions::speculate_eager).
  bool speculate_eager = false;
  /// Smoke mode: shrink the unset knobs to CI cost — the identity
  /// assertions (incremental AND speculative vs reference) are unchanged.
  bool smoke = false;
};

/// Nearest-rank quantiles of per-loop scheduling latency (seconds).
struct LatencyQuantiles {
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};

struct BenchCase {
  std::string suite;  ///< "kernels" or "synth".
  std::string rf;     ///< Organization (paper notation).
  int loops = 0;
  int reps = 0;
  int failed = 0;          ///< Loops no mode can schedule (counted once).
  bool identical = true;   ///< Incremental and speculative dumps == reference.
  double reference_seconds = 0;
  double incremental_seconds = 0;
  double speculative_seconds = 0;  ///< 0 when the speculative leg is off.
  long placements = 0;  ///< Engine attempts over the incremental reps.
  long ejections = 0;   ///< Force-and-eject victims over the same reps.

  /// Per-loop latency tails (mean seconds per loop across reps).
  LatencyQuantiles serial_latency;       ///< Incremental serial mode.
  LatencyQuantiles speculative_latency;  ///< Speculative mode.

  // Speculation telemetry summed over one pass of the suite. The raced /
  // wins counts are deterministic; the cancelled vs losses split depends
  // on attempt timing.
  int spec_raced = 0;      ///< Attempts raced beyond the serial walk.
  int spec_wins = 0;       ///< Races won by a raced (non-primary) attempt.
  int spec_losses = 0;     ///< Raced attempts that finished above the winner.
  int spec_cancelled = 0;  ///< Raced attempts cancelled by a lower success.
  double spec_attempt_seconds = 0;  ///< Serial-equivalent attempt time.

  double Speedup() const {
    return incremental_seconds > 0 ? reference_seconds / incremental_seconds
                                   : 0.0;
  }
  /// Tail-latency gain of speculation: serial p95 over speculative p95.
  double SpecP95Speedup() const {
    return speculative_latency.p95 > 0
               ? serial_latency.p95 / speculative_latency.p95
               : 0.0;
  }
  /// Concurrent attempt-time per wall-second of the speculative leg
  /// (1.0 = no overlap; > 1 = racing actually ran in parallel).
  double EffectiveParallelism() const {
    return speculative_seconds > 0 ? spec_attempt_seconds / speculative_seconds
                                   : 0.0;
  }
};

/// Delta leg (warm-start re-scheduling): per (kernel corpus, organization),
/// schedule every loop cold to obtain a base result, perturb one producer
/// latency per loop (the first alive load, hardened toward its miss
/// latency), then schedule the perturbation cold vs warm-started from the
/// unperturbed base (MirsOptions::warm_start). Hardening perturbations
/// only shrink the feasible-II set, so the II-no-worse gate holds
/// analytically; `ii_never_worse` still records the measured check.
struct DeltaCase {
  std::string rf;     ///< Organization (paper notation).
  int loops = 0;      ///< Perturbed loops timed (alive-load loops only).
  int skipped = 0;    ///< Loops without an alive load (not timed).
  int reps = 0;
  int fallbacks = 0;  ///< Warm attempts that fell back to the cold path.
  double cold_seconds = 0;  ///< Perturbed loops, cold from MII.
  double warm_seconds = 0;  ///< Perturbed loops, seeded from the base.
  LatencyQuantiles cold_latency;  ///< Per-loop mean seconds across reps.
  LatencyQuantiles warm_latency;
  long rebuild_placements = 0;  ///< Engine attempts on the cold rebuilds.
  long repair_placements = 0;   ///< Engine attempts repairing the seeds.
  long seeded = 0;              ///< Placements replayed from the seeds.
  bool ii_never_worse = true;   ///< Warm II <= cold II on every loop.

  double P50Speedup() const {
    return warm_latency.p50 > 0 ? cold_latency.p50 / warm_latency.p50 : 0.0;
  }
  double P95Speedup() const {
    return warm_latency.p95 > 0 ? cold_latency.p95 / warm_latency.p95 : 0.0;
  }
};

/// One-off comparison against an *older binary* (the in-binary reference
/// mode only isolates the incremental engine; the rest of the PR's hot-path
/// work — allocation-free MRT, hoisted window scans, comm-GC candidate
/// lists, cached env flags — speeds both modes). Both numbers must come
/// from the same command run the same way; the note records the method.
struct BaselineComparison {
  bool present = false;
  double baseline_seconds = 0;  ///< Older binary, e.g. the pre-PR engine.
  double current_seconds = 0;   ///< This binary, same workload and method.
  std::string note;

  double Speedup() const {
    return current_seconds > 0 ? baseline_seconds / current_seconds : 0.0;
  }
};

/// Host/build metadata stamped into the bench JSON header. Without it the
/// checked-in numbers are not interpretable — a single-core host degrades
/// the speculative leg to inline racing (BENCH_PR6.json's numbers needed a
/// commit-message footnote to explain exactly that).
struct HostInfo {
  unsigned hardware_concurrency = 0;
  int thread_pool_workers = 0;
  int speculation_pool_workers = 0;
  std::string build_type;  ///< "release" (NDEBUG) or "debug".
  /// True when the speculation pool has no workers (single-core host):
  /// the speculative leg degrades to inline racing and its numbers are
  /// not comparable to a multi-core run. Stamped into the JSON so
  /// baseline comparison can skip the incomparable legs.
  bool degraded = false;
};

/// Returns the running process's HostInfo (pools lazily started).
HostInfo QueryHostInfo();

/// Summed per-request phase seconds of the service-timing leg. Mirror of
/// service::RequestTiming — the service layer sits above perf, so bench.h
/// cannot include it; tools/hcrf_sched runs the leg and copies the fields.
struct ServicePhaseSeconds {
  double queue = 0;
  double cache_probe = 0;
  double mii = 0;
  double schedule = 0;
  double serialize = 0;
};

/// Service-timing leg: the kernel corpus scheduled through service::RunBatch
/// against a fresh cache directory (cold), then again over the populated
/// cache (warm). Shows where a request's wall time goes on each path.
struct ServiceLeg {
  bool present = false;
  int requests = 0;   ///< Requests per pass.
  int warm_hits = 0;  ///< Cache hits observed in the warm pass.
  double cold_seconds = 0;  ///< Batch wall time, cold cache.
  double warm_seconds = 0;  ///< Batch wall time, warm cache.
  ServicePhaseSeconds cold;
  ServicePhaseSeconds warm;
};

struct BenchReport {
  std::vector<BenchCase> cases;
  std::vector<DeltaCase> delta;  ///< Warm-start delta leg, one per org.
  double reference_seconds = 0;
  double incremental_seconds = 0;
  double speculative_seconds = 0;
  long placements = 0;
  long ejections = 0;
  bool identical = true;  ///< All cases bit-identical across modes.
  int speculate_k = 0;
  bool speculate_eager = false;
  int speculation_pool_workers = 0;
  HostInfo host;
  ServiceLeg service;
  MiiCacheStats mii_cache;
  BaselineComparison pre_pr;

  double Speedup() const {
    return incremental_seconds > 0 ? reference_seconds / incremental_seconds
                                   : 0.0;
  }
  double SpecSpeedup() const {
    return speculative_seconds > 0 ? incremental_seconds / speculative_seconds
                                   : 0.0;
  }
};

/// Runs the A/B/C bench. Deterministic apart from wall times and the
/// cancelled-vs-losses telemetry split.
BenchReport RunBench(const BenchOptions& opt = {});

/// Serializes the report as deterministic, human-diffable JSON (the
/// BENCH_*.json format, "hcrf-bench-4"; see README.md).
std::string BenchJson(const BenchReport& report);

/// One (suite, rf) leg's verdict from a baseline comparison.
struct BaselineCaseCheck {
  std::string suite;
  std::string rf;
  std::string metric;  ///< "serial_p95" or "speculative_p95".
  double baseline = 0;  ///< Baseline p95 seconds.
  double current = 0;   ///< This report's p95 seconds.
  bool skipped = false;  ///< Incomparable (e.g. degraded speculation leg).
  bool regressed = false;  ///< current > baseline * (1 + tolerance).

  double Ratio() const { return baseline > 0 ? current / baseline : 0.0; }
};

/// Verdict of CompareAgainstBaseline: per-leg checks plus the rollup the
/// CLI turns into an exit code.
struct BaselineCheck {
  bool ok = false;  ///< Baseline parsed and at least one leg compared.
  std::string error;  ///< Set when the baseline JSON is unusable.
  std::vector<BaselineCaseCheck> checks;
  int compared = 0;
  int skipped = 0;
  int regressions = 0;
};

/// Compares `current` against a checked-in BENCH_*.json (the deterministic
/// output of BenchJson — this is a targeted scanner, not a JSON library,
/// and relies on that shape). Per (suite, rf) present in both reports it
/// checks the serial p95 and, when BOTH hosts ran with speculation pool
/// workers, the speculative p95; a leg is a regression when current p95 >
/// baseline p95 * (1 + tolerance). Legs whose host block makes them
/// incomparable (speculation_pool_workers == 0 on either side) are counted
/// as skipped, never as regressions.
BaselineCheck CompareAgainstBaseline(const BenchReport& current,
                                     const std::string& baseline_json,
                                     double tolerance = 0.15);

}  // namespace hcrf::perf
