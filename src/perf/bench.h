// Engine A/B bench: times the scheduling hot path in incremental mode
// (pressure tracker + indexed priority pick, MirsOptions::incremental) and
// reference mode (full ComputePressure per spill check, linear priority
// scan), asserts both produce bit-identical schedules on every loop, and
// reports the speedup plus throughput counters.
//
// This is the measured perf trajectory behind the checked-in BENCH_*.json
// files: `hcrf_sched bench` writes one per PR, and CI runs `bench --smoke`
// so a schedule-identity regression (the incremental path drifting from
// the reference semantics) fails the build.
//
// Methodology notes:
//  * Single-threaded, per-(suite, organization) cases, fixed repetition
//    counts; wall time covers MirsHC only (suite construction, MII bounds
//    and serialization are outside the timed region).
//  * Each loop's MII is precomputed once and handed to both modes via
//    MirsOptions::precomputed_mii, so the comparison isolates the engine.
//  * The identity check compares canonical result dumps (io::DumpResult)
//    of the two modes, i.e. II, every placement, the transformed graph and
//    the stats block all have to match bit for bit.
#pragma once

#include <string>
#include <vector>

#include "perf/runner.h"
#include "workload/workload.h"

namespace hcrf::perf {

struct BenchOptions {
  /// RF organizations to bench on (paper notation). Empty = the default
  /// set: hierarchical clustered (the paper's proposal), pure clustered,
  /// and monolithic with tight registers — one per engine family; smoke
  /// mode defaults to the first of those only. Explicit values always
  /// win, smoke or not.
  std::vector<std::string> rf_names;
  /// Repetitions of the kernel suite per timed mode (the suite is tiny,
  /// so one pass is below timer noise). 0 = default (60; 5 in smoke).
  int kernel_reps = 0;
  /// Synthetic-suite loops per case. 0 = default (the whole shared suite;
  /// a 64-loop slice in smoke).
  int synth_loops = 0;
  /// Repetitions of the synthetic suite per timed mode (0 = 1).
  int synth_reps = 0;
  /// Smoke mode: shrink the unset knobs to CI cost — the identity
  /// assertion is unchanged.
  bool smoke = false;
};

struct BenchCase {
  std::string suite;  ///< "kernels" or "synth".
  std::string rf;     ///< Organization (paper notation).
  int loops = 0;
  int reps = 0;
  int failed = 0;          ///< Loops no mode can schedule (counted once).
  bool identical = true;   ///< Incremental dumps == reference dumps.
  double reference_seconds = 0;
  double incremental_seconds = 0;
  long placements = 0;  ///< Engine attempts over the incremental reps.
  long ejections = 0;   ///< Force-and-eject victims over the same reps.

  double Speedup() const {
    return incremental_seconds > 0 ? reference_seconds / incremental_seconds
                                   : 0.0;
  }
};

/// One-off comparison against an *older binary* (the in-binary reference
/// mode only isolates the incremental engine; the rest of the PR's hot-path
/// work — allocation-free MRT, hoisted window scans, comm-GC candidate
/// lists, cached env flags — speeds both modes). Both numbers must come
/// from the same command run the same way; the note records the method.
struct BaselineComparison {
  bool present = false;
  double baseline_seconds = 0;  ///< Older binary, e.g. the pre-PR engine.
  double current_seconds = 0;   ///< This binary, same workload and method.
  std::string note;

  double Speedup() const {
    return current_seconds > 0 ? baseline_seconds / current_seconds : 0.0;
  }
};

struct BenchReport {
  std::vector<BenchCase> cases;
  double reference_seconds = 0;
  double incremental_seconds = 0;
  long placements = 0;
  long ejections = 0;
  bool identical = true;  ///< All cases bit-identical across modes.
  MiiCacheStats mii_cache;
  BaselineComparison pre_pr;

  double Speedup() const {
    return incremental_seconds > 0 ? reference_seconds / incremental_seconds
                                   : 0.0;
  }
};

/// Runs the A/B bench. Deterministic apart from wall times.
BenchReport RunBench(const BenchOptions& opt = {});

/// Serializes the report as deterministic, human-diffable JSON (the
/// BENCH_*.json format; see README.md).
std::string BenchJson(const BenchReport& report);

}  // namespace hcrf::perf
