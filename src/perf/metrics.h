// Performance metrics (paper Section 2.3):
//   ExecCycles = II * (N + (SC-1) * E) + StallCycles
//   MemTraffic = N * trf    (trf = memory ops per iteration, incl. spill)
//   ExecTime   = ExecCycles * clock
// plus the aggregate suite metrics the paper's tables report: sum of II,
// fraction of loops scheduled at MII, bound-class breakdown, IPC.
#pragma once

#include <array>
#include <vector>

#include "core/mirs.h"
#include "machine/machine_config.h"

namespace hcrf::perf {

struct LoopMetrics {
  bool ok = false;
  int ii = 0;
  int sc = 0;
  int mii = 0;
  core::BoundClass bound = core::BoundClass::kFU;
  long useful_cycles = 0;  ///< II*(N + (SC-1)*E).
  long stall_cycles = 0;   ///< From the memory simulation (0 when ideal).
  long mem_traffic = 0;    ///< N * trf.
  int trf = 0;             ///< Memory ops per iteration in the final graph.
  long ops_executed = 0;   ///< Original (useful) ops * N, for IPC.
  int comm_ops = 0;
  int loadr_ops = 0;   ///< LoadR nodes (shared->cluster copies).
  int storer_ops = 0;  ///< StoreR nodes (cluster->shared copies).
  int spill_memory_ops = 0;
  /// Wall time actually spent on this loop (MII lookup + scheduling).
  /// With the sweep cache warm (RunOptions::reuse_mii_cache) only the
  /// first configuration of a sweep pays ComputeMII; disable the cache
  /// for order-independent cross-configuration time comparisons.
  double sched_seconds = 0.0;

  // Scheduler-effort counters (core::ScheduleStats, see instrument.h).
  long ejections = 0;       ///< Force-and-eject victims.
  int spills_inserted = 0;  ///< Spill decisions (incl. reg-to-reg).
  int ii_restarts = 0;      ///< Achieved II minus MII.
  double budget_spent = 0;  ///< Attempts charged against the budget.

  long ExecCycles() const { return useful_cycles + stall_cycles; }
};

struct SuiteMetrics {
  int num_loops = 0;
  int failed = 0;
  long sum_ii = 0;           ///< The paper's Sigma-II.
  int loops_at_mii = 0;
  long useful_cycles = 0;
  long stall_cycles = 0;
  long mem_traffic = 0;
  long ops_executed = 0;
  double sched_seconds = 0.0;

  // Aggregated scheduler-effort counters (over scheduled loops).
  long ejections = 0;
  long spills_inserted = 0;
  long ii_restarts = 0;
  double budget_spent = 0;

  /// Per bound class: [FU, MemPort, Rec, Comm] loop counts and cycles.
  std::array<int, 4> bound_count{};
  std::array<long, 4> bound_cycles{};

  long ExecCycles() const { return useful_cycles + stall_cycles; }
  double PctAtMII() const {
    return num_loops > 0 ? 100.0 * loops_at_mii / num_loops : 0.0;
  }
  double IPC() const {
    return ExecCycles() > 0
               ? static_cast<double>(ops_executed) / ExecCycles()
               : 0.0;
  }
  double ExecTimeSeconds(double clock_ns) const {
    return static_cast<double>(ExecCycles()) * clock_ns * 1e-9;
  }
};

SuiteMetrics Aggregate(const std::vector<LoopMetrics>& loops);

}  // namespace hcrf::perf
