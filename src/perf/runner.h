// Suite runner: schedules every loop of a workload on a machine
// configuration and aggregates the paper's metrics.
//
// Scheduling is embarrassingly parallel across loops; the runner feeds the
// suite through the shared ThreadPool's work queue (thread_pool.h) instead
// of spawning threads per call. Multi-configuration sweeps (the tables /
// figures benches call RunSuite once per RF organization over the same
// suite) additionally reuse each loop's MII: the bound depends only on the
// graph, the latency table and the global FU / memory-port counts, all of
// which are shared across the RF organizations of one sweep, so the
// process-wide cache turns the per-configuration ComputeMII into a hash
// lookup.
#pragma once

#include <vector>

#include "ddg/mii.h"
#include "memsim/prefetch.h"
#include "perf/metrics.h"
#include "sched/lifetime.h"
#include "workload/workload.h"

namespace hcrf::perf {

struct RunOptions {
  core::MirsOptions mirs;
  memsim::PrefetchMode prefetch = memsim::PrefetchMode::kNone;
  /// Simulate the cache to obtain stall cycles (Figure 6's real-memory
  /// scenario); otherwise stalls are 0 (ideal memory).
  bool simulate_memory = false;
  /// Parallelism of one RunSuite call (including the calling thread);
  /// 0 = hardware concurrency, 1 = strictly serial. Widths beyond the
  /// shared pool's size are clamped to it (the pool never oversubscribes
  /// the machine; scheduling is CPU-bound).
  int threads = 0;
  /// Reuse per-loop MII computations across RunSuite calls (safe: the
  /// cache key covers everything the MII depends on). Disable to measure
  /// cold-start scheduling times.
  bool reuse_mii_cache = true;
};

/// Per-loop results, in suite order.
std::vector<LoopMetrics> RunSuiteDetailed(const workload::Suite& suite,
                                          const MachineConfig& m,
                                          const RunOptions& opt = {});

/// Derives a loop's metrics from an already-computed schedule: the
/// Section 2.3 formulas (useful cycles, memory traffic, ops executed) plus
/// the memory-simulation stall cycles when `simulate_memory` is set. This
/// is the post-scheduling half of the suite runner, shared with the
/// experiment layer, which obtains its ScheduleResults through the
/// cache-backed batch service instead of fresh MirsHC calls (a cache-served
/// result yields metrics bit-identical to a fresh one). `sched_seconds` is
/// left zero — wall time is the caller's to attribute.
LoopMetrics MetricsFromResult(const workload::Loop& loop,
                              const MachineConfig& m,
                              const core::ScheduleResult& result,
                              bool simulate_memory = false);

SuiteMetrics RunSuite(const workload::Suite& suite, const MachineConfig& m,
                      const RunOptions& opt = {});

/// Counters of the process-wide MII sweep cache (observability for the
/// benches and the sweep service; hits mean a configuration skipped
/// ComputeMII). `entries` is the current resident count, `evictions` how
/// many entries the size cap pushed out.
struct MiiCacheStats {
  long hits = 0;
  long misses = 0;
  long entries = 0;
  long evictions = 0;
};
MiiCacheStats GetMiiCacheStats();

/// Entry cap of the MII sweep cache. The cache is process-wide and a
/// long-lived sweep service would otherwise grow it without bound; beyond
/// the cap the oldest entry is evicted (FIFO). Returns the previous cap.
/// The default (4096) comfortably holds every (suite x latency-table)
/// combination of the paper benches.
long SetMiiCacheCapacity(long max_entries);

/// Shared MII sweep-cache lookup: returns the memoized MII of (g, m,
/// overrides), computing and inserting it on a miss. The key covers the
/// graph structure, the global resource counts, the latency table and the
/// producer-latency overrides. ComputeMII itself currently reads only the
/// latency table, but the key must cover everything the value *may*
/// depend on: keying the overrides guarantees a binding-prefetch run can
/// never be cross-served a base-latency entry (or vice versa), and keeps
/// the cache sound if RecMII ever honours the overridden load latencies.
MIIInfo CachedMii(const DDG& g, const MachineConfig& m,
                  const sched::LatencyOverrides& overrides = {});

}  // namespace hcrf::perf
