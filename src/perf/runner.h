// Suite runner: schedules every loop of a workload on a machine
// configuration (in parallel across loops; scheduling is embarrassingly
// parallel) and aggregates the paper's metrics.
#pragma once

#include <vector>

#include "memsim/prefetch.h"
#include "perf/metrics.h"
#include "workload/workload.h"

namespace hcrf::perf {

struct RunOptions {
  core::MirsOptions mirs;
  memsim::PrefetchMode prefetch = memsim::PrefetchMode::kNone;
  /// Simulate the cache to obtain stall cycles (Figure 6's real-memory
  /// scenario); otherwise stalls are 0 (ideal memory).
  bool simulate_memory = false;
  /// Worker threads; 0 = hardware concurrency.
  int threads = 0;
};

/// Per-loop results, in suite order.
std::vector<LoopMetrics> RunSuiteDetailed(const workload::Suite& suite,
                                          const MachineConfig& m,
                                          const RunOptions& opt = {});

SuiteMetrics RunSuite(const workload::Suite& suite, const MachineConfig& m,
                      const RunOptions& opt = {});

}  // namespace hcrf::perf
