#include "perf/runner.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "memsim/replay.h"

namespace hcrf::perf {

namespace {

LoopMetrics RunOne(const workload::Loop& loop, const MachineConfig& m,
                   const RunOptions& opt) {
  LoopMetrics lm;
  const sched::LatencyOverrides overrides = memsim::ClassifyBindingPrefetch(
      loop.ddg, m, loop.trip, opt.prefetch);

  const auto t0 = std::chrono::steady_clock::now();
  const core::ScheduleResult sr =
      core::MirsHC(loop.ddg, m, opt.mirs, overrides);
  const auto t1 = std::chrono::steady_clock::now();
  lm.sched_seconds =
      std::chrono::duration<double>(t1 - t0).count();

  lm.ok = sr.ok;
  if (!sr.ok) return lm;

  lm.ii = sr.ii;
  lm.sc = sr.sc;
  lm.mii = sr.mii;
  lm.bound = sr.bound;
  lm.trf = sr.mem_ops_per_iter;
  lm.comm_ops = sr.stats.comm_ops;
  lm.spill_memory_ops = sr.stats.spill_loads + sr.stats.spill_stores;

  const long n_total = loop.TotalIterations();
  lm.useful_cycles =
      static_cast<long>(sr.ii) *
      (n_total + static_cast<long>(sr.sc - 1) * loop.invocations);
  lm.mem_traffic = n_total * lm.trf;
  lm.ops_executed = static_cast<long>(loop.ddg.NumNodes()) * n_total;

  if (opt.simulate_memory) {
    const memsim::ReplayResult rr = memsim::ReplayLoop(loop, sr, m);
    lm.stall_cycles = rr.stall_cycles;
  }
  return lm;
}

}  // namespace

std::vector<LoopMetrics> RunSuiteDetailed(const workload::Suite& suite,
                                          const MachineConfig& m,
                                          const RunOptions& opt) {
  std::vector<LoopMetrics> out(suite.size());
  const int threads =
      opt.threads > 0
          ? opt.threads
          : static_cast<int>(
                std::max(1u, std::thread::hardware_concurrency()));
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    while (true) {
      const size_t i = next.fetch_add(1);
      if (i >= suite.size()) return;
      out[i] = RunOne(suite[i], m, opt);
    }
  };
  if (threads <= 1 || suite.size() < 2) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  return out;
}

SuiteMetrics RunSuite(const workload::Suite& suite, const MachineConfig& m,
                      const RunOptions& opt) {
  return Aggregate(RunSuiteDetailed(suite, m, opt));
}

}  // namespace hcrf::perf
