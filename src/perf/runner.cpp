#include "perf/runner.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <unordered_map>

#include "core/thread_annotations.h"
#include "ddg/mii.h"
#include "memsim/replay.h"
#include "obs/metrics.h"
#include "perf/dual_hash.h"
#include "perf/thread_pool.h"

namespace hcrf::perf {

namespace {

// ---------------------------------------------------------------------------
// MII sweep cache
// ---------------------------------------------------------------------------

// The MII of a loop depends on the graph structure, the latency table and
// the global resource counts (ResMII is cluster-agnostic; RecMII ignores
// resources entirely) -- NOT on the RF organization. A design-space sweep
// therefore recomputes the exact same MII once per configuration; this
// cache keys on a structural hash and shares it process-wide, bounded by
// a FIFO entry cap so a long-lived sweep service cannot grow it without
// limit. The key also mixes the producer-latency overrides: ComputeMII
// does not read them today, but runs with binding-prefetch overrides must
// never share entries with base-latency runs (see CachedMii in runner.h).

struct MiiKeyT {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  bool operator==(const MiiKeyT&) const = default;
};

struct MiiKeyHash {
  size_t operator()(const MiiKeyT& k) const {
    return static_cast<size_t>(k.a ^ (k.b * 0x9e3779b97f4a7c15ull));
  }
};

MiiKeyT MiiKey(const DDG& g, const MachineConfig& m,
               const sched::LatencyOverrides& overrides) {
  DualHash f;
  // Resources and latencies the bounds read.
  f.Mix(static_cast<std::uint64_t>(m.num_fus));
  f.Mix(static_cast<std::uint64_t>(m.num_mem_ports));
  const LatencyTable& lat = m.lat;
  for (int v : {lat.fadd, lat.fmul, lat.fdiv, lat.fsqrt, lat.load_hit,
                lat.store, lat.load_miss, lat.move, lat.loadr, lat.storer}) {
    f.Mix(static_cast<std::uint64_t>(v));
  }
  // Producer-latency overrides (binding prefetching). Only the positive
  // (index, value) pairs plus their count are mixed: trailing zero entries
  // are behaviorally inert, so padded vectors key identically to their
  // trimmed equivalents (and to empty for all-zero vectors).
  std::uint64_t active_overrides = 0;
  for (int v : overrides.producer_latency) {
    if (v > 0) ++active_overrides;
  }
  f.Mix(active_overrides);
  for (size_t i = 0; i < overrides.producer_latency.size(); ++i) {
    if (overrides.producer_latency[i] > 0) {
      f.Mix(static_cast<std::uint64_t>(i));
      f.Mix(static_cast<std::uint64_t>(overrides.producer_latency[i]));
    }
  }
  // Graph structure: ops and dependences (ids are stable, tombstones keep
  // their slot, so hashing alive slots in order is canonical).
  f.Mix(static_cast<std::uint64_t>(g.NumSlots()));
  for (NodeId v = 0; v < g.NumSlots(); ++v) {
    if (!g.IsAlive(v)) continue;
    f.Mix(static_cast<std::uint64_t>(v));
    f.Mix(static_cast<std::uint64_t>(g.node(v).op));
    for (const Edge& e : g.OutEdges(v)) {
      f.Mix(static_cast<std::uint64_t>(e.src));
      f.Mix(static_cast<std::uint64_t>(e.dst));
      f.Mix(static_cast<std::uint64_t>(e.kind));
      f.Mix(static_cast<std::uint64_t>(e.distance));
    }
  }
  return MiiKeyT{f.a, f.b};
}

class MiiCache {
 public:
  static MiiCache& Shared() {
    static MiiCache* cache = new MiiCache();
    return *cache;
  }

  MIIInfo Get(const DDG& g, const MachineConfig& m,
              const sched::LatencyOverrides& overrides) HCRF_EXCLUDES(mu_) {
    const MiiKeyT key = MiiKey(g, m, overrides);
    {
      MutexLock lk(mu_);
      auto it = map_.find(key);
      if (it != map_.end()) {
        hits_.Add(1);
        return it->second;
      }
    }
    const MIIInfo mii = ComputeMII(g, m);
    MutexLock lk(mu_);
    misses_.Add(1);
    if (map_.emplace(key, mii).second) {
      fifo_.push_back(key);
      while (static_cast<long>(map_.size()) > capacity_) {
        map_.erase(fifo_.front());
        fifo_.pop_front();
        evictions_.Add(1);
      }
      entries_.Set(static_cast<long>(map_.size()));
    }
    return mii;
  }

  long SetCapacity(long max_entries) HCRF_EXCLUDES(mu_) {
    MutexLock lk(mu_);
    const long previous = capacity_;
    capacity_ = max_entries > 0 ? max_entries : 1;
    while (static_cast<long>(map_.size()) > capacity_) {
      map_.erase(fifo_.front());
      fifo_.pop_front();
      evictions_.Add(1);
    }
    entries_.Set(static_cast<long>(map_.size()));
    return previous;
  }

  // The hit/miss/eviction counters live in the process-wide metrics
  // registry (sharded atomics, not fields guarded by mu_) so that
  // GetMiiCacheStats never races with — or contends against — runner
  // threads in the middle of a sweep; the entry count takes the lock (it
  // reads the map).
  MiiCacheStats stats() const HCRF_EXCLUDES(mu_) {
    MiiCacheStats s;
    s.hits = hits_.value();
    s.misses = misses_.value();
    s.evictions = evictions_.value();
    MutexLock lk(mu_);
    s.entries = static_cast<long>(map_.size());
    return s;
  }

 private:
  MiiCache()
      : hits_(obs::GetCounter("mii_cache.hits")),
        misses_(obs::GetCounter("mii_cache.misses")),
        evictions_(obs::GetCounter("mii_cache.evictions")),
        entries_(obs::GetGauge("mii_cache.entries")) {}

  mutable Mutex mu_;
  std::unordered_map<MiiKeyT, MIIInfo, MiiKeyHash> map_ HCRF_GUARDED_BY(mu_);
  /// Insertion order; front is evicted first.
  std::deque<MiiKeyT> fifo_ HCRF_GUARDED_BY(mu_);
  long capacity_ HCRF_GUARDED_BY(mu_) = 4096;
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& evictions_;
  obs::Gauge& entries_;
};

// ---------------------------------------------------------------------------
// Per-loop run
// ---------------------------------------------------------------------------

LoopMetrics RunOne(const workload::Loop& loop, const MachineConfig& m,
                   const RunOptions& opt) {
  LoopMetrics lm;
  const sched::LatencyOverrides overrides = memsim::ClassifyBindingPrefetch(
      loop.ddg, m, loop.trip, opt.prefetch);

  core::MirsOptions mirs = opt.mirs;
  // The MII lookup stays inside the timed region: sched_seconds reports
  // the time actually spent on this loop (ComputeMII on a cold miss, a
  // hash lookup on a sweep hit; see the LoopMetrics::sched_seconds doc).
  const auto t0 = std::chrono::steady_clock::now();
  if (opt.reuse_mii_cache && !mirs.precomputed_mii) {
    mirs.precomputed_mii = MiiCache::Shared().Get(loop.ddg, m, overrides);
  }
  const core::ScheduleResult sr = core::MirsHC(loop.ddg, m, mirs, overrides);
  const auto t1 = std::chrono::steady_clock::now();
  lm = MetricsFromResult(loop, m, sr, opt.simulate_memory);
  lm.sched_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  return lm;
}

}  // namespace

LoopMetrics MetricsFromResult(const workload::Loop& loop,
                              const MachineConfig& m,
                              const core::ScheduleResult& sr,
                              bool simulate_memory) {
  LoopMetrics lm;
  lm.ok = sr.ok;
  if (!sr.ok) return lm;

  lm.ii = sr.ii;
  lm.sc = sr.sc;
  lm.mii = sr.mii;
  lm.bound = sr.bound;
  lm.trf = sr.mem_ops_per_iter;
  lm.comm_ops = sr.stats.comm_ops;
  lm.loadr_ops = sr.stats.loadr_ops;
  lm.storer_ops = sr.stats.storer_ops;
  lm.spill_memory_ops = sr.stats.spill_loads + sr.stats.spill_stores;
  lm.ejections = sr.stats.ejections;
  lm.spills_inserted = sr.stats.spills_inserted;
  lm.ii_restarts = sr.stats.restarts;
  lm.budget_spent = sr.stats.budget_spent;

  const long n_total = loop.TotalIterations();
  lm.useful_cycles =
      static_cast<long>(sr.ii) *
      (n_total + static_cast<long>(sr.sc - 1) * loop.invocations);
  lm.mem_traffic = n_total * lm.trf;
  lm.ops_executed = static_cast<long>(loop.ddg.NumNodes()) * n_total;

  if (simulate_memory) {
    const memsim::ReplayResult rr = memsim::ReplayLoop(loop, sr, m);
    lm.stall_cycles = rr.stall_cycles;
  }
  return lm;
}

std::vector<LoopMetrics> RunSuiteDetailed(const workload::Suite& suite,
                                          const MachineConfig& m,
                                          const RunOptions& opt) {
  std::vector<LoopMetrics> out(suite.size());
  ThreadPool& pool = ThreadPool::Shared();
  const int max_workers =
      opt.threads > 0 ? opt.threads : pool.num_workers() + 1;
  pool.ParallelFor(suite.size(), max_workers,
                   [&](size_t i) { out[i] = RunOne(suite[i], m, opt); });
  return out;
}

SuiteMetrics RunSuite(const workload::Suite& suite, const MachineConfig& m,
                      const RunOptions& opt) {
  return Aggregate(RunSuiteDetailed(suite, m, opt));
}

MiiCacheStats GetMiiCacheStats() { return MiiCache::Shared().stats(); }

long SetMiiCacheCapacity(long max_entries) {
  return MiiCache::Shared().SetCapacity(max_entries);
}

MIIInfo CachedMii(const DDG& g, const MachineConfig& m,
                  const sched::LatencyOverrides& overrides) {
  return MiiCache::Shared().Get(g, m, overrides);
}

}  // namespace hcrf::perf
