#include "perf/thread_pool.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hcrf::perf {

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    auto* p = new ThreadPool();  // leaked: lives for the process
    obs::GetGauge("thread_pool.workers").Set(p->num_workers());
    return p;
  }();
  return *pool;
}

ThreadPool::ThreadPool(int threads) {
  const int n =
      threads > 0
          ? threads
          : static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  // The calling thread participates in every job, so n workers give n+1-way
  // parallelism; keep the worker count at n-1 to match the historical
  // "threads" semantics of RunOptions.
  workers_.reserve(static_cast<size_t>(std::max(0, n - 1)));
  for (int i = 0; i < n - 1; ++i) {
    workers_.emplace_back([this, i] {
      obs::Tracer::SetThreadName("pool-worker-" + std::to_string(i + 1));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunItems() {
  while (job_.active && job_.next < job_.n) {
    const std::size_t i = job_.next++;
    const auto* fn = job_.fn;
    mu_.unlock();
    (*fn)(i);
    mu_.lock();
    if (--job_.remaining == 0) done_cv_.NotifyAll();
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen = 0;
  mu_.lock();
  while (true) {
    while (!stop_ && !(job_.active && job_.generation != seen)) {
      work_cv_.Wait(mu_);
    }
    if (stop_) break;
    seen = job_.generation;
    if (job_.entrants_left <= 0) continue;  // width cap reached
    --job_.entrants_left;
    RunItems();
  }
  mu_.unlock();
}

void ThreadPool::ParallelFor(std::size_t n, int max_workers,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  static obs::Counter& jobs = obs::GetCounter("thread_pool.jobs");
  static obs::Counter& items = obs::GetCounter("thread_pool.items");
  jobs.Add(1);
  items.Add(static_cast<long>(n));
  if (max_workers <= 1 || n == 1 || workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  MutexLock session(session_mu_);
  mu_.lock();
  job_.fn = &fn;
  job_.n = n;
  job_.next = 0;
  job_.remaining = n;
  job_.entrants_left = max_workers - 1;  // the caller takes one slot
  ++job_.generation;
  job_.active = true;
  mu_.unlock();
  work_cv_.NotifyAll();
  mu_.lock();
  RunItems();
  while (job_.remaining != 0) done_cv_.Wait(mu_);
  job_.active = false;
  mu_.unlock();
}

// ---------------------------------------------------------------------------
// SpeculationPool / TaskGroup
// ---------------------------------------------------------------------------

SpeculationPool& SpeculationPool::Shared() {
  static SpeculationPool* pool = [] {
    auto* p = new SpeculationPool();  // leaked: lives for the process
    obs::GetGauge("spec_pool.workers").Set(p->num_workers());
    return p;
  }();
  return *pool;
}

SpeculationPool::SpeculationPool(int threads) {
  // Default: hardware_concurrency - 1 workers. The submitter participates
  // through TaskGroup::RunAndWait's stealing, so hw-1 workers + the caller
  // saturate the machine without oversubscribing it; on a single-core host
  // that is 0 workers and racing degrades to in-order inline execution
  // (above-winner candidates then cancel at entry, costing nothing).
  const int n =
      threads >= 0
          ? threads
          : static_cast<int>(std::max(1u, std::thread::hardware_concurrency())) -
                1;
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] {
      obs::Tracer::SetThreadName("spec-worker-" + std::to_string(i + 1));
      WorkerLoop();
    });
  }
}

SpeculationPool::~SpeculationPool() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void SpeculationPool::WorkerLoop() {
  mu_.lock();
  while (true) {
    while (!stop_ && queue_.empty()) work_cv_.Wait(mu_);
    if (stop_) break;
    Task t = std::move(queue_.front());
    queue_.pop_front();
    mu_.unlock();
    t.fn();
    mu_.lock();
    // The group outlives its tasks (RunAndWait cannot return while
    // pending_ > 0), so touching it under the pool mutex is safe.
    t.group->FinishFromWorker();
  }
  mu_.unlock();
}

void TaskGroup::Submit(std::function<void()> fn) {
  static obs::Counter& tasks = obs::GetCounter("spec_pool.tasks");
  tasks.Add(1);
  {
    MutexLock lk(pool_.mu_);
    pool_.queue_.push_back(SpeculationPool::Task{this, std::move(fn)});
    ++pending_;
  }
  pool_.work_cv_.NotifyOne();
}

void TaskGroup::RunAndWait() {
  pool_.mu_.lock();
  while (pending_ > 0) {
    // Steal one of our own still-queued tasks and run it inline. This is
    // the no-deadlock guarantee: whatever the pool's saturation, every
    // queued task of this group is runnable by the thread that waits on it.
    auto it = pool_.queue_.begin();
    for (; it != pool_.queue_.end(); ++it) {
      if (it->group == this) break;
    }
    if (it != pool_.queue_.end()) {
      static obs::Counter& steals = obs::GetCounter("spec_pool.inline_steals");
      steals.Add(1);
      std::function<void()> fn = std::move(it->fn);
      pool_.queue_.erase(it);
      pool_.mu_.unlock();
      fn();
      pool_.mu_.lock();
      --pending_;  // our own completion; no one else waits on this group
      continue;
    }
    done_cv_.Wait(pool_.mu_);
  }
  pool_.mu_.unlock();
}

}  // namespace hcrf::perf
