// Clang thread-safety annotations and the annotated mutex vocabulary.
//
// The concurrency machinery (perf::ThreadPool, perf::SpeculationPool, the
// MII sweep cache, the metrics registry, the tracer) documents its lock
// discipline with these macros; under clang, `-Wthread-safety` then proves
// at compile time that every access to a HCRF_GUARDED_BY member happens
// with the right mutex held and that every HCRF_REQUIRES contract is met
// at each call site. Under GCC (which has no thread-safety analysis) every
// macro expands to nothing and hcrf::Mutex compiles down to a plain
// std::mutex wrapper, so annotations are free to sprinkle everywhere.
//
// Vocabulary (mirrors the Abseil/Clang canonical set):
//  * HCRF_CAPABILITY / HCRF_SCOPED_CAPABILITY — class-level markers.
//  * HCRF_GUARDED_BY(mu) — member readable/writable only with mu held.
//  * HCRF_REQUIRES(mu)   — function demands mu held by the caller.
//  * HCRF_ACQUIRE / HCRF_RELEASE / HCRF_TRY_ACQUIRE — lock transitions.
//  * HCRF_EXCLUDES(mu)   — function must NOT be entered with mu held
//                          (deadlock documentation, e.g. re-entrancy bans).
//  * HCRF_NO_THREAD_SAFETY_ANALYSIS — per-function opt-out. Every use must
//    carry a comment justifying why the analysis cannot see the invariant.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define HCRF_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HCRF_THREAD_ANNOTATION(x)  // GCC: annotations compile away.
#endif

#define HCRF_CAPABILITY(x) HCRF_THREAD_ANNOTATION(capability(x))
#define HCRF_SCOPED_CAPABILITY HCRF_THREAD_ANNOTATION(scoped_lockable)
#define HCRF_GUARDED_BY(x) HCRF_THREAD_ANNOTATION(guarded_by(x))
#define HCRF_PT_GUARDED_BY(x) HCRF_THREAD_ANNOTATION(pt_guarded_by(x))
#define HCRF_REQUIRES(...) \
  HCRF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define HCRF_REQUIRES_SHARED(...) \
  HCRF_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define HCRF_ACQUIRE(...) \
  HCRF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define HCRF_RELEASE(...) \
  HCRF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define HCRF_TRY_ACQUIRE(...) \
  HCRF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define HCRF_EXCLUDES(...) HCRF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define HCRF_ASSERT_CAPABILITY(x) \
  HCRF_THREAD_ANNOTATION(assert_capability(x))
#define HCRF_RETURN_CAPABILITY(x) HCRF_THREAD_ANNOTATION(lock_returned(x))
#define HCRF_NO_THREAD_SAFETY_ANALYSIS \
  HCRF_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace hcrf {

/// std::mutex with the capability attribute the analysis needs. The
/// lock/unlock surface is deliberately the standard BasicLockable one so
/// the wrapper interoperates with std:: lock machinery where annotations
/// are not needed.
class HCRF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HCRF_ACQUIRE() { mu_.lock(); }
  void unlock() HCRF_RELEASE() { mu_.unlock(); }
  bool try_lock() HCRF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for the scope-shaped critical sections (the std::lock_guard
/// replacement). Non-relockable: code that must drop and re-take the mutex
/// around a blocking region (the pools' work loops) uses explicit
/// Mutex::lock/unlock pairs instead, which the analysis tracks just as
/// precisely.
class HCRF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HCRF_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() HCRF_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable that waits directly on an hcrf::Mutex, so waiting
/// code keeps a single annotated capability instead of smuggling the lock
/// through an opaque std::unique_lock the analysis cannot follow. Wait
/// requires the mutex held and returns with it held (it is released only
/// inside the wait, which is invisible to — and safely over-approximated
/// by — the analysis). Built on condition_variable_any; the extra internal
/// hop vs. std::condition_variable sits on the blocking slow path only.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) HCRF_REQUIRES(mu) { cv_.wait(mu); }
  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace hcrf
