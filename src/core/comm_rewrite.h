// Communication-rewrite module: splits flow dependences that cross register
// banks into chains of communication operations, and restores them when
// ejection unwinds the work.
//
// For hierarchical organizations a mismatched edge producer->consumer
// becomes producer -> [StoreR] -> [LoadR] -> consumer (each hop only when
// the corresponding side is not already in the shared bank); for pure
// clustered organizations it becomes producer -> Move -> consumer. Chain
// nodes are reused across consumers on the same cluster when their
// placement is compatible. Every rewrite is recorded as a CommFix so that
// ejecting either endpoint can remove the chain edge and restore the
// original dependence exactly (the round-trip property tested in
// tests/test_comm_rewrite.cpp).
//
// The module owns no placement logic: creating and scheduling chain nodes
// goes through the NodePlacer interface, implemented by the engine driver
// (which charges budget and may force-and-eject).
#pragma once

#include <vector>

#include "core/instrument.h"
#include "core/sched_state.h"
#include "ddg/ddg.h"
#include "sched/banks.h"

namespace hcrf::core {

/// Record of one rewritten flow dependence.
struct CommFix {
  Edge original;    ///< The removed direct edge.
  Edge final_edge;  ///< The chain edge that replaced it at the consumer.
};

/// Node creation + placement services the rewriter (and the spill engine)
/// obtain from the engine driver.
class NodePlacer {
 public:
  virtual ~NodePlacer() = default;
  /// Creates a scheduler-inserted node: registers it with the priority list
  /// and grants the iterative algorithm's per-node budget.
  virtual NodeId CreateNode(Node n, double priority) = 0;
  /// Schedules `node` on `cluster` (window scan; force-and-eject in
  /// iterative mode). Returns false when no placement was possible.
  virtual bool PlaceNode(NodeId node, int cluster, int src_cluster) = 0;
};

class CommRewriter {
 public:
  CommRewriter(SchedState& st, NodePlacer& placer, Instrumentation& instr)
      : st_(st), placer_(placer), instr_(instr) {}

  /// Clears the fix records (fresh II attempt).
  void Reset() {
    fixes_.clear();
    chain_nodes_.clear();
  }

  const std::vector<CommFix>& fixes() const { return fixes_; }

  /// Inserts and schedules communication chains for mismatched flow edges
  /// between `u` (about to be placed on `cluster`) and its scheduled
  /// neighbours. Returns false if a chain could not be scheduled
  /// (non-iterative mode only).
  bool EnsureCommunication(NodeId u, int cluster);

  /// Unwinds every fix whose original edge touches `v`: removes the chain
  /// edge at the consumer and restores the direct edge.
  void UndoFixesTouching(NodeId v);

  /// Removes chain nodes that lost all their consumers (after undos).
  void GarbageCollectComm();

  /// Consumers whose communication chain runs through the chain node
  /// `victim`; ejecting the chain node means re-communicating them.
  std::vector<NodeId> ConsumersThrough(NodeId victim) const;

 private:
  bool FixEdge(const Edge& e, sched::BankId def_bank, sched::BankId read_bank);
  bool RedirectEdge(
      const Edge& e, NodeId last, int final_distance,
      std::vector<std::pair<NodeId, std::pair<int, int>>>& to_schedule,
      bool consumer_scheduled);
  bool ReuseFeasible(NodeId candidate, const Edge& consumer_edge) const;
  NodeId FindReusable(NodeId producer, OpClass op, int cluster, int distance,
                      const Edge& consumer_edge) const;

  SchedState& st_;
  NodePlacer& placer_;
  Instrumentation& instr_;
  std::vector<CommFix> fixes_;
  /// Every chain node this rewriter created, ascending id (tombstoned ids
  /// are pruned lazily). Only chain nodes are ever garbage-collected, so
  /// GarbageCollectComm scans this short list instead of every graph slot
  /// once per ejection.
  std::vector<NodeId> chain_nodes_;
  /// Edge snapshots of EnsureCommunication (FixEdge mutates the adjacency
  /// lists it iterates). Members, not locals: EnsureCommunication runs once
  /// per placement and is non-reentrant, so reusing the buffers keeps the
  /// hot loop allocation-free.
  std::vector<Edge> in_scratch_;
  std::vector<Edge> out_scratch_;
};

}  // namespace hcrf::core
