// Integrated register-spilling engine (paper Section 5): watches bank
// pressure as the schedule grows and splits the most profitable lifetimes
// when a bank exceeds its capacity.
//
// Spill destination depends on the organization: cluster banks of
// hierarchical organizations spill into the shared bank (StoreR/LoadR
// copies, free of memory traffic); the shared bank and the banks of
// monolithic / pure clustered organizations spill to memory (Load/Store
// with a dedicated spill array). Loop invariants are un-pinned from an
// overflowing bank by rematerializing per-use reloads.
//
// Victim ranking is delegated to the SpillVictimPolicy (policies.h); node
// creation goes through the NodePlacer so budget accounting stays with the
// engine driver.
#pragma once

#include <cstdint>
#include <set>
#include <utility>

#include "core/comm_rewrite.h"
#include "core/instrument.h"
#include "core/policies.h"
#include "core/sched_state.h"
#include "sched/banks.h"
#include "sched/lifetime.h"

namespace hcrf::core {

/// Memory "array" ids used for spill slots; high enough to never collide
/// with workload arrays.
inline constexpr std::int32_t kSpillArrayBase = 1 << 20;

class SpillEngine {
 public:
  SpillEngine(SchedState& st, NodePlacer& placer,
              const SpillVictimPolicy& policy, Instrumentation& instr)
      : st_(st), placer_(placer), policy_(policy), instr_(instr) {}

  /// Forgets all spill decisions (fresh II attempt).
  void Reset();

  /// Checks every bounded bank against its MaxLive and spills while over.
  void CheckAndInsert();

  /// Re-places every reload-style copy (spill loads, LoadR) at the latest
  /// feasible slot inside its dependence window. Ejection churn can strand
  /// a reload far from the consumers it feeds, which recreates exactly the
  /// long register lifetime the spill was meant to remove; sinking is cheap
  /// and always legal (the old slot stays feasible).
  void SinkReloads();

 private:
  bool SpillFromBank(sched::BankId bank, const sched::PressureReport& pr);
  bool SpillInvariantFromBank(sched::BankId bank);

  SchedState& st_;
  NodePlacer& placer_;
  const SpillVictimPolicy& policy_;
  Instrumentation& instr_;

  std::set<NodeId> spilled_;
  std::set<std::pair<std::int32_t, sched::BankId>> spilled_invariants_;
  std::int32_t next_spill_array_ = kSpillArrayBase;
};

}  // namespace hcrf::core
