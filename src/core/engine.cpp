#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>

#include "core/check.h"
#include "core/debug.h"
#include "ddg/mii.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perf/thread_pool.h"
#include "sched/banks.h"
#include "sched/mrt.h"
#include "sched/validate.h"

namespace hcrf::core {

using sched::BankId;
using sched::kSharedBank;

namespace {

/// Field-wise merge of per-attempt stat deltas. Escalation-order merging of
/// exact per-attempt sums reproduces the serial driver's running totals
/// bit-for-bit: the long counters trivially, and the doubles because every
/// increment (1.0 spends, budget_ratio-multiple grants) is exactly
/// representable at workload magnitudes, making the sums associative.
void Accumulate(ScheduleStats& into, const ScheduleStats& d) {
  into.attempts += d.attempts;
  into.ejections += d.ejections;
  into.force_places += d.force_places;
  into.restarts += d.restarts;
  into.comm_ops += d.comm_ops;
  into.spill_stores += d.spill_stores;
  into.spill_loads += d.spill_loads;
  into.storer_ops += d.storer_ops;
  into.loadr_ops += d.loadr_ops;
  into.move_ops += d.move_ops;
  into.spills_inserted += d.spills_inserted;
  into.chains_built += d.chains_built;
  into.chains_undone += d.chains_undone;
  into.budget_spent += d.budget_spent;
  into.budget_granted += d.budget_granted;
}

}  // namespace

// ---------------------------------------------------------------------------
// AttemptContext
// ---------------------------------------------------------------------------

AttemptContext::AttemptContext(const DDG& original, const MachineConfig& m,
                               const MirsOptions& opt,
                               const sched::LatencyOverrides& base_overrides,
                               const std::vector<NodeId>& order)
    : original_(original),
      m_(m),
      opt_(opt),
      base_overrides_(base_overrides),
      order_(order),
      st_(m),
      instr_(opt.event_sink),
      comm_(st_, *this, instr_),
      spill_policy_(opt.spill_policy
                        ? opt.spill_policy
                        : std::make_shared<const LongestPerUseSpillPolicy>()),
      spill_(st_, *this, *spill_policy_, instr_),
      selector_(opt.cluster_selector ? opt.cluster_selector()
                                     : MakeClusterSelector(opt.cluster_policy)) {
}

// ---------------------------------------------------------------------------
// NodePlacer services
// ---------------------------------------------------------------------------

NodeId AttemptContext::CreateNode(Node n, double priority) {
  n.inserted = true;
  const NodeId id = st_.g.AddNode(std::move(n));
  st_.GrowTo(id);
  st_.priority[static_cast<size_t>(id)] = priority;
  st_.MarkUnscheduled(id);
  // The paper grants Budget_Ratio extra attempts per inserted node (the
  // total grant is capped, see BudgetAccount).
  instr_.BudgetGranted(budget_.Grant(opt_.budget_ratio));
  return id;
}

bool AttemptContext::PlaceNode(NodeId u, int cluster, int src_cluster) {
  if (budget_.exhausted()) return false;
  const int ii = st_.ii();
  const auto needs =
      sched::ResourceNeeds(st_.g.node(u).op, cluster, src_cluster, m_);
  // Structurally impossible placements (e.g. Move with no buses).
  for (const auto& need : needs) {
    if (st_.mrt->Capacity(need.kind, need.cluster) <= 0) return false;
  }

  const Window w = st_.ComputeWindow(u);
  // Scan direction per HRMS: top-down when predecessors anchor the node,
  // bottom-up when only successors do. Reload-style copies (spill loads,
  // LoadR) are also placed as late as possible even when both sides are
  // anchored: their input lives in memory or the capacious shared bank, so
  // a late placement minimizes the register lifetime of their value.
  const OpClass op_u = st_.g.node(u).op;
  const bool late_biased =
      op_u == OpClass::kLoadR ||
      (st_.g.node(u).spill && op_u == OpClass::kLoad);
  // Window scans via the MRT's hoisted probe (kNoSlot and kNoCycle are the
  // same sentinel).
  static_assert(sched::ModuloReservationTable::kNoSlot == kNoCycle);
  int found;
  if (w.has_succ && (!w.has_pred || late_biased)) {
    const int lo = w.has_pred ? std::max(w.early, w.late - ii + 1)
                              : w.late - ii + 1;
    found = st_.mrt->FindFirstSlotDown(needs, w.late, lo);
  } else {
    const int hi =
        w.has_succ ? std::min(w.late, w.early + ii - 1) : w.early + ii - 1;
    found = st_.mrt->FindFirstSlotUp(needs, w.early, hi);
  }

  if (found == kNoCycle) {
    if (!opt_.iterative) return false;
    // Lazily armed: this runs once per forced placement (ejection-heavy
    // organizations force hundreds of thousands per second), so the
    // untraced path must pay one relaxed load, not a span's member setup.
    std::optional<obs::TraceSpan> cascade_span;
    if (obs::TraceEnabled()) {
      cascade_span.emplace("phase", "eject-cascade", ii, u);
    }
    // Force placement. Following iterative modulo scheduling, the forced
    // cycle advances past the previous placement of the node so repeated
    // forcing makes progress.
    // The forced cycle marches monotonically from the window edge. It
    // normally stays inside the dependence window, but a node that keeps
    // being ejected is allowed to land outside it: the violated
    // predecessors/successors are ejected too, which is the paper's escape
    // hatch from zero-slack chains on saturated ports.
    const bool desperate =
        static_cast<size_t>(u) < st_.eject_count.size() &&
        st_.eject_count[static_cast<size_t>(u)] > 12;
    int t;
    if (w.has_succ && (!w.has_pred || late_biased)) {
      t = st_.prev_cycle[static_cast<size_t>(u)] == kNoCycle
              ? w.late
              : std::min(w.late, st_.prev_cycle[static_cast<size_t>(u)] - 1);
      if (w.has_pred && !desperate) t = std::max(t, w.early);
    } else {
      t = st_.prev_cycle[static_cast<size_t>(u)] == kNoCycle
              ? w.early
              : std::max(w.early, st_.prev_cycle[static_cast<size_t>(u)] + 1);
    }
    // Eject resource conflicts.
    st_.mrt->ConflictingNodes(needs, t, conflicts_scratch_);
    for (NodeId victim : conflicts_scratch_) Eject(victim);
    // Ejecting a victim can undo the communication chain u itself belongs
    // to, garbage-collecting u. Placing the tombstone would permanently
    // hold its MRT slots and serialize a "placement of undefined node"
    // that the strict result parser (and so the schedule cache) rejects;
    // there is nothing left to place, which is not a failure.
    if (!st_.g.IsAlive(u)) return true;
    if (!st_.mrt->CanPlace(needs, t)) {
      // A comm-node ejection rerouted a chain and refilled the slot; give
      // up on this attempt (budget will drive an II bump).
      return false;
    }
    st_.mrt->Place(u, needs, t);
    st_.Assign(u, {t, cluster, src_cluster, true});
    st_.MarkScheduled(u);
    st_.prev_cycle[static_cast<size_t>(u)] = t;
    // Eject scheduled neighbours whose dependences the forced placement
    // violates.
    violated_scratch_.clear();
    for (const Edge& e : st_.g.InEdges(u)) {
      if (!st_.sched->IsScheduled(e.src) || e.src == u) continue;
      if (st_.sched->CycleOf(e.src) + st_.LatOf(e) > t + e.distance * ii) {
        violated_scratch_.push_back(e.src);
      }
    }
    for (const Edge& e : st_.g.OutEdges(u)) {
      if (!st_.sched->IsScheduled(e.dst) || e.dst == u) continue;
      if (t + st_.LatOf(e) > st_.sched->CycleOf(e.dst) + e.distance * ii) {
        violated_scratch_.push_back(e.dst);
      }
    }
    for (NodeId v : violated_scratch_) Eject(v);
    instr_.NodeForced(u, ii);
  } else {
    st_.mrt->Place(u, needs, found);
    st_.Assign(u, {found, cluster, src_cluster, true});
    st_.MarkScheduled(u);
    st_.prev_cycle[static_cast<size_t>(u)] = found;
    instr_.NodePlaced(u, ii);
  }

  budget_.Spend(1.0);
  instr_.BudgetSpent(1.0);
  return true;
}

// ---------------------------------------------------------------------------
// Ejection
// ---------------------------------------------------------------------------

void AttemptContext::Eject(NodeId victim) {
  if (!st_.g.IsAlive(victim)) return;
  if (st_.IsCommChainNode(victim)) {
    // Ejecting a communication node means redoing the consumer's
    // communication: eject every consumer whose chain runs through it.
    for (NodeId c : comm_.ConsumersThrough(victim)) Eject(c);
    return;
  }
  EjectScheduledNode(victim);
}

void AttemptContext::EjectScheduledNode(NodeId v) {
  if (!st_.sched->IsScheduled(v)) return;
  st_.Unplace(v);
  st_.MarkUnscheduled(v);
  instr_.NodeEjected(v, st_.ii());
  if (static_cast<size_t>(v) < st_.eject_count.size()) {
    if (++st_.eject_count[static_cast<size_t>(v)] > 60) st_.churning = true;
    if (st_.eject_count[static_cast<size_t>(v)] == 30 &&
        DebugEnabled()) {
      const Window w = st_.ComputeWindow(v);
      std::fprintf(stderr,
                   "   [30th eject] node %d (%s%s) cluster %d prev %d "
                   "window [%d,%d] pred=%d succ=%d II=%d\n",
                   v, ToString(st_.g.node(v).op).data(),
                   st_.g.node(v).spill ? ",spill" : "",
                   st_.sched->Of(v).cluster,
                   st_.prev_cycle[static_cast<size_t>(v)], w.early, w.late,
                   w.has_pred, w.has_succ, st_.ii());
    }
  }
  comm_.UndoFixesTouching(v);
  comm_.GarbageCollectComm();
}

// ---------------------------------------------------------------------------
// Cluster selection (structural constraints, then policy)
// ---------------------------------------------------------------------------

int AttemptContext::SelectCluster(NodeId u) {
  const RFConfig& rf = m_.rf;
  if (!rf.HasClusters()) return 0;
  const Node& n = st_.g.node(u);

  // Communication and spill copies have their cluster dictated by the
  // scheduled endpoint they serve; the policy only decides for free nodes.
  if (n.op == OpClass::kLoadR) {
    for (const Edge& e : st_.g.FlowConsumers(u)) {
      if (st_.sched->IsScheduled(e.dst)) {
        const BankId b = sched::ReadBank(st_.g.node(e.dst).op,
                                         st_.sched->ClusterOf(e.dst), rf);
        if (b != kSharedBank) return b;
      }
    }
    return structural_fallback_.Select(st_, u);
  }
  if (n.op == OpClass::kStoreR) {
    for (const Edge& e : st_.g.FlowProducers(u)) {
      if (st_.sched->IsScheduled(e.src)) {
        const BankId b = sched::DefBank(st_.g.node(e.src).op,
                                        st_.sched->ClusterOf(e.src), rf);
        if (b != kSharedBank) return b;
      }
    }
    return structural_fallback_.Select(st_, u);
  }
  if (rf.IsPureClustered() && n.spill && IsMemory(n.op)) {
    // Spill stores read the producer's cluster; spill loads feed consumers.
    if (n.op == OpClass::kStore) {
      for (const Edge& e : st_.g.FlowProducers(u)) {
        if (st_.sched->IsScheduled(e.src)) return st_.sched->ClusterOf(e.src);
      }
    } else {
      for (const Edge& e : st_.g.FlowConsumers(u)) {
        if (st_.sched->IsScheduled(e.dst)) return st_.sched->ClusterOf(e.dst);
      }
    }
    return structural_fallback_.Select(st_, u);
  }

  return selector_->Select(st_, u);
}

// ---------------------------------------------------------------------------
// One II attempt
// ---------------------------------------------------------------------------

AttemptStatus AttemptContext::TryII(int ii, const SpeculationToken* cancel) {
  if (!obs::TraceEnabled()) return RunAttempt(ii, cancel);
  obs::TraceSpan span("sched", "attempt", ii);
  const AttemptStatus st = RunAttempt(ii, cancel);
  span.set_detail(std::string(ToString(st)));
  if (st == AttemptStatus::kCancelled) {
    obs::Tracer::Shared().Instant("spec", "cancelled", ii,
                                  static_cast<int>(kNoNode));
  }
  return st;
}

AttemptStatus AttemptContext::TryIISeeded(const ScheduleResult& seed, int ii,
                                          int* seeded_out) {
  obs::TraceSpan span("sched", "warm-attempt", ii);
  BeginAttempt(ii);
  const int seeded = SeedFrom(seed);
  if (seeded_out != nullptr) *seeded_out = seeded;
  const AttemptStatus st = FinishAttempt(ii, nullptr);
  span.set_detail(std::string(ToString(st)) + " seeded=" +
                  std::to_string(seeded));
  return st;
}

int AttemptContext::SeedFrom(const ScheduleResult& seed) {
  int seeded = 0;
  const DDG& sg = seed.graph;
  // Walk in priority order — the same order the cold placement loop uses —
  // so the incremental window checks below see each node's highest-priority
  // neighbours first, exactly like a conflict-free cold run would.
  for (NodeId v : order_) {
    // Seed-compat gate, per node. Only original nodes replay: inserted
    // comm/spill nodes have seed-specific ids and are re-derived by
    // EnsureCommunication / the spill fixpoint during repair.
    if (static_cast<size_t>(v) >= static_cast<size_t>(sg.NumSlots())) continue;
    if (!sg.IsAlive(v) || sg.node(v).inserted) continue;
    if (!seed.schedule.IsScheduled(v)) continue;
    if (!st_.g.IsAlive(v) || st_.sched->IsScheduled(v)) continue;
    if (sg.node(v).op != st_.g.node(v).op) continue;
    const sched::Placement p = seed.schedule.Of(v);
    if (p.cluster < 0 ||
        (m_.rf.HasClusters() ? p.cluster >= m_.rf.clusters : p.cluster != 0)) {
      continue;  // seed from a different clustering: not replayable
    }
    // Cross-bank flows need their communication chains rebuilt before the
    // consumer lands (the seed's own chains were skipped above). A chain
    // the rewriter cannot build ends the seeding; the repair cascade
    // re-derives whatever is left.
    if (!comm_.EnsureCommunication(v, p.cluster)) break;
    // Chain force-placements may have ejected or garbage-collected v.
    if (!st_.g.IsAlive(v) || st_.sched->IsScheduled(v)) continue;
    const auto needs =
        sched::ResourceNeeds(st_.g.node(v).op, p.cluster, p.src_cluster, m_);
    bool impossible = false;
    for (const auto& need : needs) {
      if (st_.mrt->Capacity(need.kind, need.cluster) <= 0) {
        impossible = true;
        break;
      }
    }
    if (impossible) continue;
    // Re-check the dependence window under the CURRENT latencies and edges:
    // a node whose constraints changed since the seed (the perturbation
    // itself, or a neighbour the walk already skipped) is left unscheduled
    // for the repair cascade instead of replayed into a violation.
    const Window w = st_.ComputeWindow(v);
    if (w.has_pred && p.cycle < w.early) continue;
    if (w.has_succ && p.cycle > w.late) continue;
    if (!st_.mrt->CanPlace(needs, p.cycle)) continue;
    // Same funnel sequence as PlaceNode's free-slot path, minus the
    // instrumentation and budget spend: replayed placements are not
    // attempts, so ScheduleStats keeps measuring repair work only.
    st_.mrt->Place(v, needs, p.cycle);
    st_.Assign(v, {p.cycle, p.cluster, p.src_cluster, true});
    st_.MarkScheduled(v);
    st_.prev_cycle[static_cast<size_t>(v)] = p.cycle;
    ++seeded;
  }
  return seeded;
}

AttemptStatus AttemptContext::RunAttempt(int ii,
                                         const SpeculationToken* cancel) {
  if (cancel != nullptr && cancel->Cancels(ii)) return AttemptStatus::kCancelled;
  BeginAttempt(ii);
  return FinishAttempt(ii, cancel);
}

void AttemptContext::BeginAttempt(int ii) {
  st_.Reset(original_, base_overrides_, ii, opt_.incremental);
  comm_.Reset();
  spill_.Reset();
  selector_->Reset();
  since_spill_check_ = 0;

  for (size_t r = 0; r < order_.size(); ++r) {
    st_.priority[static_cast<size_t>(order_[r])] =
        static_cast<double>(order_.size() - r);
  }
  for (NodeId v : order_) st_.MarkUnscheduled(v);
  budget_.Start(opt_.budget_ratio * st_.g.NumNodes(),
                8.0 * opt_.budget_ratio * std::max(4, original_.NumNodes()));
}

AttemptStatus AttemptContext::FinishAttempt(int ii,
                                            const SpeculationToken* cancel) {
  while (true) {
    {
    // One "placement" span per drain of the priority list (a spill fixpoint
    // iteration that reschedules reloads opens another).
    obs::TraceSpan place_span("phase", "placement", ii);
    while (st_.num_unscheduled > 0) {
      // Cancellation point: once a strictly lower II has validated this
      // attempt is moot, wherever it stands — including mid-ejection-cascade
      // (the next TryII resets the context wholesale).
      if (cancel != nullptr && cancel->Cancels(ii)) {
        return AttemptStatus::kCancelled;
      }
      if (st_.churning) {
        return AttemptStatus::kFailed;  // livelocked ping-pong: bump the II
      }
      if (budget_.exhausted()) {
        if (DebugEnabled()) {
          std::fprintf(stderr, "[hcrf] %s II=%d budget exhausted (%d left)\n",
                       original_.name().c_str(), ii, st_.num_unscheduled);
          for (NodeId v = 0; v < st_.g.NumSlots() && v < 4096; ++v) {
            if (st_.eject_count[static_cast<size_t>(v)] > 20) {
              std::fprintf(stderr, "   node %d (%s%s%s) ejected %ld times\n",
                           v, ToString(st_.g.node(v).op).data(),
                           st_.g.node(v).inserted ? ",ins" : "",
                           st_.g.node(v).spill ? ",spill" : "",
                           st_.eject_count[static_cast<size_t>(v)]);
            }
          }
        }
        return AttemptStatus::kFailed;
      }
      const NodeId u = st_.PickHighestPriority();
      HCRF_CHECK(u != kNoNode,
                 "priority-list desync: %d node(s) marked unscheduled but "
                 "none alive in graph '%s' (II=%d, %d slots)",
                 st_.num_unscheduled, original_.name().c_str(), ii,
                 st_.g.NumSlots());
      const int cluster = SelectCluster(u);
      int src_cluster = 0;
      if (st_.g.node(u).op == OpClass::kMove) {
        // Re-scheduled move: the source side is its producer's bank.
        const auto producers = st_.g.FlowProducers(u);
        if (!producers.empty() &&
            st_.sched->IsScheduled(producers.front().src)) {
          src_cluster = st_.sched->ClusterOf(producers.front().src);
        }
      }
      {
        // Lazily armed (one comm rewrite per placed node; see the
        // eject-cascade span).
        std::optional<obs::TraceSpan> comm_span;
        if (obs::TraceEnabled()) {
          comm_span.emplace("phase", "comm-rewrite", ii, static_cast<int>(u));
        }
        if (!comm_.EnsureCommunication(u, cluster)) {
          return AttemptStatus::kFailed;
        }
      }
      // Building u's communication can force-place chain nodes, whose
      // ejection cascade may dissolve the very chain u belongs to and
      // garbage-collect u. A tombstoned node must not be placed: the
      // stale placement would hold MRT slots forever and serialize as a
      // "placement of undefined node" that the strict result parser (and
      // so the schedule cache) rejects.
      if (!st_.g.IsAlive(u)) continue;
      if (!PlaceNode(u, cluster, src_cluster)) return AttemptStatus::kFailed;
      // Register-pressure checks are O(values); checking every few
      // placements (and always when the list drains) keeps the paper's
      // incremental-spill behaviour at a fraction of the cost.
      if (++since_spill_check_ >= 4 || st_.num_unscheduled == 0) {
        since_spill_check_ = 0;
        spill_.CheckAndInsert();
      }
    }
    }

    // Sink reloads towards their consumers. Sinking can lengthen
    // shared-bank residencies (that is its purpose: the shared bank absorbs
    // the carried distances), which may in turn require further spilling of
    // shared values to memory -- so iterate sink -> spill -> schedule to a
    // fixpoint (bounded: each value spills at most once per attempt).
    {
      obs::TraceSpan spill_span("phase", "spill", ii);
      spill_.SinkReloads();
      spill_.CheckAndInsert();
    }
    if (st_.num_unscheduled > 0) {
      if (budget_.exhausted()) return AttemptStatus::kFailed;
      continue;
    }
    break;
  }

  // Final register allocation check: every bank within capacity.
  obs::TraceSpan validate_span("phase", "validate", ii);
  const RFConfig& rf = m_.rf;
  const bool shared_bounded = rf.HasSharedBank() && !rf.UnboundedSharedRegs();
  const bool cluster_bounded = !rf.UnboundedClusterRegs() && rf.clusters > 0;
  if (shared_bounded || cluster_bounded) {
    if (st_.pressure.attached() && PressureCrossCheckEnabled()) {
      st_.pressure.CrossValidate("AttemptContext::TryII final check");
    }
    const sched::PressureReport pr =
        st_.pressure.attached()
            ? st_.pressure.Report()
            : sched::ComputePressure(st_.g, *st_.sched, m_, st_.overrides);
    if (shared_bounded &&
        pr.shared_maxlive > sched::BankCapacity(kSharedBank, rf)) {
      if (DebugEnabled()) {
        std::fprintf(stderr,
                     "[hcrf] %s II=%d shared over capacity: %d > %ld\n",
                     original_.name().c_str(), ii, pr.shared_maxlive,
                     sched::BankCapacity(kSharedBank, rf));
        if (DebugLifetimesEnabled()) {
          for (const auto& v : pr.values) {
            if (v.bank != kSharedBank || v.Length() <= 0) continue;
            std::fprintf(stderr, "   def %d (%s%s) [%d,%d) len %d uses %d\n",
                         v.def, ToString(st_.g.node(v.def).op).data(),
                         st_.g.node(v.def).spill ? ",spill" : "", v.start,
                         v.end, v.Length(), v.uses);
          }
        }
      }
      return AttemptStatus::kFailed;
    }
    for (int c = 0; cluster_bounded && c < rf.clusters; ++c) {
      if (pr.cluster_maxlive[static_cast<size_t>(c)] >
          sched::BankCapacity(c, rf)) {
        if (DebugEnabled()) {
          std::fprintf(stderr,
                       "[hcrf] %s II=%d cluster %d over capacity: %d\n",
                       original_.name().c_str(), ii, c,
                       pr.cluster_maxlive[static_cast<size_t>(c)]);
        }
        return AttemptStatus::kFailed;
      }
    }
  }

  const sched::ValidationResult vr =
      sched::Validate(st_.g, *st_.sched, m_, st_.overrides);
  if (!vr.ok && DebugEnabled()) {
    std::fprintf(stderr, "[hcrf] %s II=%d validation failed: %s\n",
                 original_.name().c_str(), ii, vr.error.c_str());
  }
  return vr.ok ? AttemptStatus::kScheduled : AttemptStatus::kFailed;
}

ScheduleResult AttemptContext::Finalize(const MIIInfo& mii, int ii) {
  ScheduleResult res;
  res.ok = true;
  res.ii = ii;
  res.res_mii = mii.res_mii;
  res.rec_mii = mii.rec_mii;
  res.mii = mii.MII();
  // Scheduling is done: stop tracking before Normalize shifts cycles
  // and the graph/schedule are moved into the result.
  st_.pressure.Detach();
  st_.sched->Normalize();
  res.sc = st_.sched->StageCount();
  res.stats = instr_.stats();
  res.stats.restarts = ii - res.mii;
  // Count communication and memory ops in the final graph.
  res.stats.comm_ops = 0;
  res.stats.loadr_ops = 0;
  res.stats.storer_ops = 0;
  res.stats.move_ops = 0;
  res.stats.spill_loads = 0;
  res.stats.spill_stores = 0;
  res.mem_ops_per_iter = 0;
  for (NodeId v = 0; v < st_.g.NumSlots(); ++v) {
    if (!st_.g.IsAlive(v)) continue;
    const Node& n = st_.g.node(v);
    if (IsCommunication(n.op)) {
      ++res.stats.comm_ops;
      if (n.op == OpClass::kLoadR) ++res.stats.loadr_ops;
      if (n.op == OpClass::kStoreR) ++res.stats.storer_ops;
      if (n.op == OpClass::kMove) ++res.stats.move_ops;
    }
    if (IsMemory(n.op)) {
      ++res.mem_ops_per_iter;
      if (n.spill) {
        if (n.op == OpClass::kLoad) ++res.stats.spill_loads;
        if (n.op == OpClass::kStore) ++res.stats.spill_stores;
      }
    }
  }
  const int rec_final = RecMII(st_.g, m_.lat);
  res.bound = ClassifyBound(st_.g, m_, ii, rec_final);
  res.graph = std::move(st_.g);
  res.schedule = std::move(*st_.sched);
  res.overrides = std::move(st_.overrides);
  return res;
}

// ---------------------------------------------------------------------------
// EngineDriver: serial escalation and speculative II racing
// ---------------------------------------------------------------------------

EngineDriver::EngineDriver(const DDG& loop, const MachineConfig& m,
                           const MirsOptions& opt,
                           const sched::LatencyOverrides& base_overrides)
    : original_(loop),
      m_(m),
      opt_(opt),
      base_overrides_(base_overrides),
      ordering_(opt.ordering ? opt.ordering
                             : std::make_shared<const HrmsOrderPolicy>()) {
  // Canonicalize the overrides: trailing zero entries are behaviorally
  // inert (LatencyOverrides::For falls back) but would leak into the
  // serialized result, and the schedule cache keys padding-equivalent
  // requests together, so their dumps must be bit-identical.
  std::vector<int>& pl = base_overrides_.producer_latency;
  while (!pl.empty() && pl.back() <= 0) pl.pop_back();
}

ScheduleResult EngineDriver::Run() {
  obs::TraceSpan loop_span("sched", "loop");
  loop_span.set_detail(original_.name());
  MIIInfo mii;
  if (opt_.precomputed_mii) {
    mii = *opt_.precomputed_mii;
  } else {
    obs::TraceSpan mii_span("phase", "mii");
    mii = ComputeMII(original_, m_);
  }
  {
    obs::TraceSpan order_span("phase", "ordering");
    order_ = ordering_->Order(original_, m_);
  }
  // Warm-start gate: one seeded attempt before the cold dispatch. A failed
  // (or rejected) seed falls through to the regular path with the fallback
  // counted on the result — never silent.
  WarmStartTelemetry warm;
  if (opt_.warm_start != nullptr && opt_.warm_start->ok) {
    if (std::optional<ScheduleResult> res = RunWarm(mii)) return *res;
    warm.attempted = true;
    warm.fallback = true;
  }
  // An attached event sink no longer forces the serial path: the
  // speculative driver captures each attempt's sink events and replays
  // them in escalation order after the wave commits (the same protocol
  // that keeps the per-attempt stats deltas serial-identical), so the sink
  // stays single-threaded and attempt-ordered while attempts race.
  ScheduleResult res =
      opt_.speculate_k >= 2 ? RunSpeculative(mii) : RunSerial(mii);
  res.warm = warm;
  return res;
}

std::optional<ScheduleResult> EngineDriver::RunWarm(const MIIInfo& mii) {
  static obs::Counter& used_counter = obs::GetCounter("engine.warm.used");
  static obs::Counter& fallback_counter =
      obs::GetCounter("engine.warm.fallback");
  const ScheduleResult& seed = *opt_.warm_start;
  // The escalation loop starts at the seed's II instead of MII (never below
  // the current MII: the perturbed loop cannot schedule there, and the
  // seeded MRT would not even hold the replayed rows).
  const int start_ii = std::max(mii.MII(), seed.ii);
  if (start_ii <= opt_.max_ii) {
    AttemptContext ctx(original_, m_, opt_, base_overrides_, order_);
    int seeded = 0;
    if (ctx.TryIISeeded(seed, start_ii, &seeded) ==
        AttemptStatus::kScheduled) {
      // The attempt passed the full validation gate (register pressure +
      // sched::Validate) inside FinishAttempt, like any cold attempt.
      ScheduleResult res = ctx.Finalize(mii, start_ii);
      res.warm.attempted = true;
      res.warm.used = true;
      res.warm.seeded = seeded;
      res.warm.repaired = static_cast<int>(res.stats.attempts);
      used_counter.Add(1);
      return res;
    }
  }
  fallback_counter.Add(1);
  return std::nullopt;
}

ScheduleResult EngineDriver::FailResult(const MIIInfo& mii,
                                        const ScheduleStats& stats) const {
  ScheduleResult res;
  res.ok = false;
  res.res_mii = mii.res_mii;
  res.rec_mii = mii.rec_mii;
  res.mii = mii.MII();
  res.stats = stats;
  return res;
}

ScheduleResult EngineDriver::RunSerial(const MIIInfo& mii) {
  AttemptContext ctx(original_, m_, opt_, base_overrides_, order_);
  int failures = 0;
  for (int ii = mii.MII(); ii <= opt_.max_ii;) {
    if (ctx.TryII(ii) == AttemptStatus::kScheduled) {
      return ctx.Finalize(mii, ii);
    }
    ++failures;
    const int next = NextCandidateII(ii, failures);
    ctx.instr().IIRestart(next);
    ii = next;
  }
  return FailResult(mii, ctx.instr().stats());
}

ScheduleResult EngineDriver::RunSpeculative(const MIIInfo& mii) {
  perf::SpeculationPool& pool = perf::SpeculationPool::Shared();
  // On a worker-less pool every attempt runs on this thread anyway, so all
  // slots share ONE context — the serial driver's cache behaviour (one hot
  // working graph + MRT) instead of cycling k cold ones.
  const bool inline_serial = pool.num_workers() == 0;
  std::vector<std::unique_ptr<AttemptContext>> ctxs;  // reused across waves
  SpeculationTelemetry spec;
  // Stats of the failed waves so far, merged in escalation order (the
  // serial driver's running totals at the same point of the walk).
  ScheduleStats carry;

  // Per-wave buffers, reused so the escalation loop of a deep walk does
  // not allocate per wave.
  std::vector<int> wave;
  std::vector<AttemptStatus> status;
  std::vector<ScheduleStats> attempt_stats;
  std::vector<std::vector<SinkEvent>> attempt_events;
  std::vector<double> seconds;

  // With a sink attached, each attempt captures its events privately and
  // the driver replays them below in escalation order — the sink observes
  // the exact serial sequence (attempt events, then the restart separator)
  // while the attempts themselves race.
  const bool capture = opt_.event_sink != nullptr;
  const auto replay_log = [&](size_t i) {
    for (const SinkEvent& ev : attempt_events[i]) {
      opt_.event_sink->OnEvent(ev.e, ev.node, ev.ii);
    }
  };
  // The restart separator between candidates. The serial driver emits it
  // through Instrumentation (sink + trace instant); here the attempts are
  // already done, so the driver emits both itself.
  const auto emit_restart = [&](int next) {
    if (capture) {
      opt_.event_sink->OnEvent(SchedEvent::kIIRestart, kNoNode, next);
    }
    if (obs::TraceEnabled()) {
      obs::Tracer::Shared().Instant("sched", "restart", next,
                                    static_cast<int>(kNoNode));
    }
  };

  int failures = 0;
  int next_ii = mii.MII();
  bool first_wave = true;
  while (next_ii <= opt_.max_ii) {
    // Assemble the wave: the next `width` candidates of the serial
    // escalation sequence. The first wave tries MII alone unless eager
    // racing is requested — most loops schedule at MII and racing them
    // would only burn pool slots.
    const int width = (first_wave && !opt_.speculate_eager)
                          ? 1
                          : std::max(2, opt_.speculate_k);
    first_wave = false;
    wave.clear();
    int ii = next_ii;
    int f = failures;
    while (static_cast<int>(wave.size()) < width && ii <= opt_.max_ii) {
      wave.push_back(ii);
      ++f;
      ii = NextCandidateII(wave.back(), f);
    }
    const size_t n = wave.size();
    const size_t slots = inline_serial ? 1 : n;
    if (ctxs.size() < slots) ctxs.resize(slots);  // slots fill lazily below

    status.assign(n, AttemptStatus::kFailed);
    attempt_stats.assign(n, ScheduleStats{});
    attempt_events.assign(n, {});
    seconds.assign(n, 0.0);
    SpeculationToken token;
    const auto run_one = [&](size_t i, const SpeculationToken* cancel) {
      // Cancelled before starting (a lower II already validated while this
      // slot sat in the queue): skip even the context construction — on an
      // undersubscribed pool the above-winner slots cost nothing.
      if (cancel != nullptr && cancel->Cancels(wave[i])) {
        status[i] = AttemptStatus::kCancelled;
        if (obs::TraceEnabled()) {
          obs::Tracer::Shared().Instant("spec", "cancelled", wave[i],
                                        static_cast<int>(kNoNode));
        }
        return;
      }
      const auto t0 = std::chrono::steady_clock::now();
      std::unique_ptr<AttemptContext>& slot = ctxs[inline_serial ? 0 : i];
      if (slot == nullptr) {
        // Each slot index is touched by exactly one task of the wave, so
        // the lazy fill is race-free.
        slot = std::make_unique<AttemptContext>(original_, m_, opt_,
                                                base_overrides_, order_);
      }
      slot->instr().ResetStats();  // capture this attempt's deltas only
      if (capture) slot->BeginSinkCapture();
      status[i] = slot->TryII(wave[i], cancel);
      attempt_stats[i] = slot->instr().stats();
      if (capture) attempt_events[i] = slot->TakeSinkEvents();
      if (status[i] == AttemptStatus::kScheduled) token.Commit(wave[i]);
      seconds[i] = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    };
    if (n == 1) {
      run_one(0, nullptr);
    } else if (pool.num_workers() == 0) {
      // Worker-less pool (single-core host): racing degrades to the serial
      // walk — run the candidates ascending on this thread; once one
      // validates, the slots above it cancel at entry, so the queue
      // round-trip would buy nothing.
      spec.raced += static_cast<int>(n) - 1;
      for (size_t i = 0; i < n; ++i) run_one(i, &token);
    } else {
      spec.raced += static_cast<int>(n) - 1;
      perf::TaskGroup group(pool);
      for (size_t i = 1; i < n; ++i) {
        group.Submit([&run_one, &token, i] { run_one(i, &token); });
      }
      // The lowest candidate — the one most likely to be the answer — runs
      // on the calling thread; RunAndWait then steals any still-queued
      // sibling, so a saturated pool degrades to serial.
      run_one(0, &token);
      group.RunAndWait();
    }
    for (double s : seconds) spec.attempt_seconds += s;

    size_t win = n;
    for (size_t i = 0; i < n; ++i) {
      if (status[i] == AttemptStatus::kScheduled) {
        win = i;
        break;
      }
    }
    if (win < n) {
      if (n > 1 && win > 0) ++spec.raced_wins;
      if (n > 1 && obs::TraceEnabled()) {
        obs::Tracer::Shared().Instant("spec", "win", wave[win],
                                      static_cast<int>(kNoNode));
      }
      // Commit: merge the failed candidates below the winner, then the
      // winner itself, onto the carried totals — exactly the serial walk's
      // accumulation order — and let the winner's context finalize. The
      // captured sink events replay in the same order, restart separators
      // between candidates, none after the winner.
      ScheduleStats merged = carry;
      for (size_t i = 0; i < win; ++i) {
        HCRF_CHECK(status[i] == AttemptStatus::kFailed,
                   "attempt below the winning II was cancelled (ii=%d, "
                   "winner=%d): cancellation requires a success strictly "
                   "below, which the winner refutes",
                   wave[i], wave[win]);
        Accumulate(merged, attempt_stats[i]);
        if (capture) replay_log(i);
        emit_restart(wave[i + 1]);
      }
      Accumulate(merged, attempt_stats[win]);
      if (capture) replay_log(win);
      for (size_t i = win + 1; i < n; ++i) {
        if (status[i] == AttemptStatus::kCancelled) {
          ++spec.cancelled;
        } else {
          ++spec.discarded;
        }
      }
      // The context that ran the winning attempt (shared slot 0 when the
      // pool is worker-less: slots above the winner cancelled at entry, so
      // its last TryII is the winner's).
      AttemptContext& wctx = *ctxs[inline_serial ? 0 : win];
      wctx.instr().stats() = merged;
      ScheduleResult res = wctx.Finalize(mii, wave[win]);
      res.spec = spec;
      return res;
    }

    // Whole wave failed: carry every attempt's stats forward (and replay
    // its events, each followed by the restart the serial walk would emit —
    // the last one names the post-wave candidate), then continue the
    // escalation where the serial walk would.
    for (size_t i = 0; i < n; ++i) {
      HCRF_CHECK(status[i] == AttemptStatus::kFailed,
                 "attempt at II=%d cancelled without any success in the wave",
                 wave[i]);
      Accumulate(carry, attempt_stats[i]);
      if (capture) replay_log(i);
      emit_restart(i + 1 < n ? wave[i + 1] : ii);
    }
    failures = f;
    next_ii = ii;
  }
  ScheduleResult res = FailResult(mii, carry);
  res.spec = spec;
  return res;
}

}  // namespace hcrf::core
