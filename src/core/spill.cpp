#include "core/spill.h"

#include <algorithm>
#include <limits>
#include <map>
#include <vector>

#include "core/check.h"
#include "core/debug.h"

namespace hcrf::core {

using sched::BankId;
using sched::kSharedBank;

void SpillEngine::Reset() {
  spilled_.clear();
  spilled_invariants_.clear();
  next_spill_array_ = kSpillArrayBase;
}

void SpillEngine::SinkReloads() {
  const int ii = st_.ii();
  for (NodeId v = 0; v < st_.g.NumSlots(); ++v) {
    if (!st_.g.IsAlive(v) || !st_.sched->IsScheduled(v)) continue;
    const Node& n = st_.g.node(v);
    const bool reload =
        n.op == OpClass::kLoadR || (n.spill && n.op == OpClass::kLoad);
    if (!reload) continue;
    const sched::Placement old = st_.sched->Of(v);
    const auto needs =
        sched::ResourceNeeds(n.op, old.cluster, old.src_cluster, st_.m);
    st_.mrt->Remove(v);
    st_.Unassign(v);
    const Window w = st_.ComputeWindow(v);
    int t = old.cycle;
    if (w.has_succ) {
      const int lo = w.has_pred ? std::max(w.early, w.late - ii + 1)
                                : w.late - ii + 1;
      const int cand = st_.mrt->FindFirstSlotDown(needs, w.late, lo);
      if (cand != sched::ModuloReservationTable::kNoSlot) t = cand;
    }
    if (!st_.mrt->CanPlace(needs, t)) t = old.cycle;
    st_.mrt->Place(v, needs, t);
    st_.Assign(v, {t, old.cluster, old.src_cluster, true});
  }
}

void SpillEngine::CheckAndInsert() {
  const RFConfig& rf = st_.m.rf;
  const bool cluster_bounded = rf.HasClusters() && !rf.UnboundedClusterRegs();
  const bool shared_bounded = rf.HasSharedBank() && !rf.UnboundedSharedRegs();
  if (!cluster_bounded && !shared_bounded) return;

  if (st_.pressure.attached()) {
    // O(1)-amortized fast path: consult the incrementally maintained
    // MaxLive. Only when some bank is over capacity do we pay for the full
    // report (the spill policy ranks ValueLifetimes, which the tracker
    // does not materialize) — and the decisions below are then identical
    // to the reference path's, since the tracker agrees with
    // ComputePressure bank for bank (cross-validated here in debug
    // builds and under HCRF_CHECK_PRESSURE).
    if (PressureCrossCheckEnabled()) {
      st_.pressure.CrossValidate("SpillEngine::CheckAndInsert");
    }
    bool over = false;
    if (cluster_bounded) {
      for (int c = 0; c < rf.clusters && !over; ++c) {
        over = st_.pressure.MaxLive(c) > sched::BankCapacity(c, rf);
      }
    }
    if (!over && shared_bounded) {
      over = st_.pressure.MaxLive(kSharedBank) >
             sched::BankCapacity(kSharedBank, rf);
    }
    if (!over) return;
  }

  // Over capacity (or reference path): the victim policies rank the full
  // ValueLifetime list. The tracker materializes a report identical to
  // ComputePressure's at O(values); the reference path recomputes it from
  // the graph.
  const sched::PressureReport pr =
      st_.pressure.attached()
          ? st_.pressure.Report()
          : sched::ComputePressure(st_.g, *st_.sched, st_.m, st_.overrides);

  if (cluster_bounded) {
    for (int c = 0; c < rf.clusters; ++c) {
      if (pr.cluster_maxlive[static_cast<size_t>(c)] >
          sched::BankCapacity(c, rf)) {
        if (!SpillFromBank(c, pr)) SpillInvariantFromBank(c);
      }
    }
  }
  if (shared_bounded &&
      pr.shared_maxlive > sched::BankCapacity(kSharedBank, rf)) {
    if (!SpillFromBank(kSharedBank, pr)) SpillInvariantFromBank(kSharedBank);
  }
}

bool SpillEngine::SpillFromBank(BankId bank, const sched::PressureReport& pr) {
  const RFConfig& rf = st_.m.rf;
  // Spill destination: cluster banks of hierarchical organizations spill
  // into the shared bank (StoreR/LoadR, no memory traffic); everything else
  // spills to memory.
  const bool to_shared = rf.IsHierarchical() && bank != kSharedBank;

  const int min_len =
      to_shared ? st_.m.lat.storer + st_.m.lat.loadr + 2
                : 2 * (st_.m.lat.store + st_.m.lat.load_hit + 2);

  // Filter to legal victims; the policy ranks them.
  std::vector<const sched::ValueLifetime*> candidates;
  for (const sched::ValueLifetime& v : pr.values) {
    if (v.bank != bank || v.uses < 1 || v.Length() <= min_len) continue;
    if (spilled_.contains(v.def)) continue;
    const Node& nd = st_.g.node(v.def);
    // Never spill a communication chain's value: chains are owned by the
    // fix records and are re-routed by ejection, not by the spill engine
    // (rewiring a chain edge would orphan its fix record).
    if (st_.IsCommChainNode(v.def)) continue;
    // Never spill a spill copy of the same level again.
    if (nd.spill && to_shared && nd.op == OpClass::kLoadR) continue;
    if (nd.spill && !to_shared && nd.op == OpClass::kLoad) continue;
    candidates.push_back(&v);
  }
  const sched::ValueLifetime* best = policy_.Pick(candidates);
  if (best == nullptr) return false;

  const NodeId def = best->def;
  spilled_.insert(def);

  // Consumers to reroute: every flow consumer except the earliest
  // scheduled one (keeping one direct use preserves the short head of the
  // lifetime) -- unless even that earliest read is far away, in which case
  // everything goes through the reload so the spill actually pays off.
  std::vector<Edge> consumers;
  Edge keep{kNoNode, kNoNode, DepKind::kFlow, 0};
  int keep_time = std::numeric_limits<int>::max();
  for (const Edge& e : st_.g.FlowConsumers(def)) {
    // Chain nodes stay wired to the value's home; only original and spill
    // consumers are re-routed through the reload (see candidate filter).
    if (st_.IsCommChainNode(e.dst)) continue;
    consumers.push_back(e);
    if (st_.sched->IsScheduled(e.dst)) {
      const int read = st_.sched->CycleOf(e.dst) + e.distance * st_.ii();
      if (read < keep_time) {
        keep_time = read;
        keep = e;
      }
    }
  }
  if (keep.src != kNoNode &&
      (consumers.size() <= 1 || keep_time - best->start > 2 * min_len)) {
    // A single (or uniformly distant) consumer still benefits: split the
    // whole lifetime.
    keep = Edge{kNoNode, kNoNode, DepKind::kFlow, 0};
  }

  const double base_prio = st_.priority[static_cast<size_t>(def)];
  // Reloads must schedule *after* every consumer they feed, so their
  // bottom-up placement is anchored by the consumers' slots; otherwise the
  // reload lands early and recreates the long lifetime it was meant to cut.
  double reload_prio = base_prio - 0.6;
  for (const Edge& e : consumers) {
    reload_prio =
        std::min(reload_prio, st_.priority[static_cast<size_t>(e.dst)] - 0.1);
  }
  // One store-side copy; one reload per distinct loop-carried distance
  // among the rerouted consumers. The carried distance rides the hop into
  // the spill home (shared bank or memory), so the post-reload register
  // lifetime is short -- this is what makes spilling effective for the
  // long cross-iteration lifetimes of software-pipelined loops.
  NodeId s;
  if (to_shared) {
    Node ns;
    ns.op = OpClass::kStoreR;
    ns.spill = true;
    s = placer_.CreateNode(std::move(ns), base_prio - 0.3);
    st_.g.AddFlow(def, s, 0);
    ++instr_.stats().storer_ops;
  } else {
    Node ns;
    ns.op = OpClass::kStore;
    ns.spill = true;
    ns.mem = MemRef{next_spill_array_, 0, 8};
    s = placer_.CreateNode(std::move(ns), base_prio - 0.3);
    st_.g.AddFlow(def, s, 0);
    ++instr_.stats().spill_stores;
  }

  std::map<int, NodeId> reload_by_distance;
  auto reload_for = [&](int distance) {
    auto it = reload_by_distance.find(distance);
    if (it != reload_by_distance.end()) return it->second;
    NodeId l;
    if (to_shared) {
      Node nl;
      nl.op = OpClass::kLoadR;
      nl.spill = true;
      l = placer_.CreateNode(std::move(nl), reload_prio);
      st_.g.AddFlow(s, l, distance);
      ++instr_.stats().loadr_ops;
    } else {
      Node nl;
      nl.op = OpClass::kLoad;
      nl.spill = true;
      nl.mem = MemRef{next_spill_array_, 0, 8};
      l = placer_.CreateNode(std::move(nl), reload_prio);
      st_.g.AddEdge(s, l, DepKind::kMem, distance);
      ++instr_.stats().spill_loads;
    }
    reload_by_distance.emplace(distance, l);
    return l;
  };

  for (const Edge& e : consumers) {
    if (e.src == keep.src && e.dst == keep.dst && e.distance == keep.distance &&
        e.kind == keep.kind) {
      continue;
    }
    const bool removed = st_.g.RemoveEdge(e.src, e.dst, e.kind, e.distance);
    HCRF_CHECK(removed,
               "spill reroute lost the consumer edge %d->%d (kind %s, "
               "distance %d) of spilled def %d; graph '%s', bank %d, II=%d",
               e.src, e.dst, std::string(ToString(e.kind)).c_str(), e.distance,
               def, st_.g.name().c_str(), bank, st_.ii());
    st_.g.AddEdge(reload_for(e.distance), e.dst, DepKind::kFlow, 0);
  }
  if (!to_shared) ++next_spill_array_;
  instr_.SpillInserted(def, st_.ii());
  return true;
}

bool SpillEngine::SpillInvariantFromBank(BankId bank) {
  const RFConfig& rf = st_.m.rf;
  // Hierarchical master copies are not spilled (the shared bank is the
  // invariant's home); monolithic organizations reload from memory.
  if (bank == kSharedBank && !rf.IsMonolithic()) return false;
  // Pick the first invariant with scheduled consumers reading this bank.
  for (std::int32_t inv = 0; inv < st_.g.num_invariants(); ++inv) {
    if (spilled_invariants_.contains({inv, bank})) continue;
    std::vector<NodeId> users;
    for (NodeId v = 0; v < st_.g.NumSlots(); ++v) {
      if (!st_.g.IsAlive(v)) continue;
      const Node& n = st_.g.node(v);
      if (std::find(n.invariant_uses.begin(), n.invariant_uses.end(), inv) ==
          n.invariant_uses.end()) {
        continue;
      }
      if (!st_.sched->IsScheduled(v)) continue;
      if (sched::ReadBank(n.op, st_.sched->ClusterOf(v), rf) != bank) continue;
      users.push_back(v);
    }
    if (users.empty()) continue;
    spilled_invariants_.insert({inv, bank});

    for (NodeId w : users) {
      Node nl;
      nl.spill = true;
      if (rf.IsHierarchical()) {
        // Reload from the shared master copy.
        nl.op = OpClass::kLoadR;
        nl.invariant_uses = {inv};
      } else {
        // Reload from memory (stride 0: the invariant's home location).
        nl.op = OpClass::kLoad;
        nl.mem = MemRef{next_spill_array_, 0, 0};
        ++instr_.stats().spill_loads;
      }
      const NodeId l = placer_.CreateNode(
          std::move(nl), st_.priority[static_cast<size_t>(w)] + 0.1);
      auto& uses = st_.g.node(w).invariant_uses;
      uses.erase(std::find(uses.begin(), uses.end(), inv));
      // invariant_uses was edited in place on a scheduled node; re-derive
      // its pins or the tracker would keep counting the removed read.
      st_.pressure.ResyncInvariantReads(w);
      st_.g.AddFlow(l, w, 0);
    }
    if (!rf.IsHierarchical()) ++next_spill_array_;
    instr_.SpillInserted(kNoNode, st_.ii());
    return true;
  }
  return false;
}

}  // namespace hcrf::core
