// Engine driver of MIRS_HC: owns the II-escalation loop, the budget
// accounting of the iterative algorithm, and the force-and-eject
// backtracking. The heuristics live in the policy layer (policies.h),
// cross-bank edge rewriting in the communication rewriter (comm_rewrite.h),
// register-pressure handling in the spill engine (spill.h), and counters /
// events in the instrumentation layer (instrument.h). The driver is the
// only layer that mutates the reservation table through placement, so it
// implements NodePlacer for the others.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "core/comm_rewrite.h"
#include "core/instrument.h"
#include "core/mirs.h"
#include "core/policies.h"
#include "core/sched_state.h"
#include "core/spill.h"
#include "ddg/ddg.h"
#include "machine/machine_config.h"
#include "sched/lifetime.h"

namespace hcrf::core {

/// Budget of the iterative algorithm (the paper's Budget_Ratio): the run
/// starts with budget_ratio attempts per original node, every inserted
/// communication/spill node grants budget_ratio more, and each placement
/// spends one. The total grant is capped: an eject/re-insert churn cycle
/// would otherwise grant budget faster than scheduling spends it (beyond
/// the cap the attempt fails and the II is bumped, which is the paper's
/// escape hatch anyway).
struct BudgetAccount {
  double remaining = 0;
  double granted = 0;
  double grant_cap = 0;

  void Start(double initial, double cap) {
    remaining = initial;
    granted = 0;
    grant_cap = cap;
  }
  /// Returns the amount actually granted: `amount` clamped to the cap's
  /// remaining headroom (0 once the cap is reached), so the total grant
  /// never overshoots grant_cap.
  double Grant(double amount) {
    const double clamped = std::min(amount, grant_cap - granted);
    if (clamped <= 0) return 0;
    remaining += clamped;
    granted += clamped;
    return clamped;
  }
  bool exhausted() const { return remaining <= 0; }
  void Spend(double amount) { remaining -= amount; }
};

class EngineDriver : public NodePlacer {
 public:
  EngineDriver(const DDG& loop, const MachineConfig& m, const MirsOptions& opt,
               const sched::LatencyOverrides& base_overrides);

  /// Runs the II-escalation loop from MII to opt.max_ii.
  ScheduleResult Run();

  // NodePlacer (services for the comm rewriter and spill engine).
  NodeId CreateNode(Node n, double priority) override;
  bool PlaceNode(NodeId u, int cluster, int src_cluster) override;

 private:
  bool TryII(int ii);

  void Eject(NodeId victim);
  void EjectScheduledNode(NodeId v);

  /// Structural cluster constraints (communication and spill copies follow
  /// the scheduled endpoint they serve); defers to the selector policy for
  /// unconstrained nodes.
  int SelectCluster(NodeId u);

  // ---- immutable inputs ------------------------------------------------
  const DDG& original_;
  MachineConfig m_;
  MirsOptions opt_;
  sched::LatencyOverrides base_overrides_;

  // ---- layers ----------------------------------------------------------
  SchedState st_;
  Instrumentation instr_;
  CommRewriter comm_;
  std::shared_ptr<const SpillVictimPolicy> spill_policy_;
  SpillEngine spill_;
  std::shared_ptr<const NodeOrderPolicy> ordering_;
  std::unique_ptr<ClusterSelector> selector_;
  BalancedClusterSelector structural_fallback_;

  // ---- per-run state ---------------------------------------------------
  std::vector<NodeId> order_;  ///< Ordering, computed once per run.
  BudgetAccount budget_;
  int since_spill_check_ = 0;

  // Scratch buffers reused across (non-reentrant) forced placements so the
  // hot loop never allocates.
  std::vector<NodeId> conflicts_scratch_;
  std::vector<NodeId> violated_scratch_;
};

}  // namespace hcrf::core
