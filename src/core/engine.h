// Engine driver of MIRS_HC: owns the II-escalation loop, the budget
// accounting of the iterative algorithm, and the force-and-eject
// backtracking. The heuristics live in the policy layer (policies.h),
// cross-bank edge rewriting in the communication rewriter (comm_rewrite.h),
// register-pressure handling in the spill engine (spill.h), and counters /
// events in the instrumentation layer (instrument.h).
//
// Since PR 6 the per-attempt machinery is packaged as an AttemptContext: a
// fully self-contained bundle of everything one II attempt mutates (working
// graph, schedule/MRT, priority list, comm rewriter, spill engine, cluster
// selector, budget, instrumentation, scratch buffers). The serial driver
// reuses one context across the escalation walk exactly as before; the
// speculative driver races several contexts — one per candidate II — on the
// process-wide perf::SpeculationPool and commits the lowest II that
// validates, with bit-identical schedules AND stats (every candidate below
// the winner still runs and its counters merge in escalation order).
#pragma once

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "core/comm_rewrite.h"
#include "core/instrument.h"
#include "core/mirs.h"
#include "core/policies.h"
#include "core/sched_state.h"
#include "core/spill.h"
#include "ddg/ddg.h"
#include "machine/machine_config.h"
#include "sched/lifetime.h"

namespace hcrf::core {

/// Budget of the iterative algorithm (the paper's Budget_Ratio): the run
/// starts with budget_ratio attempts per original node, every inserted
/// communication/spill node grants budget_ratio more, and each placement
/// spends one. The total grant is capped: an eject/re-insert churn cycle
/// would otherwise grant budget faster than scheduling spends it (beyond
/// the cap the attempt fails and the II is bumped, which is the paper's
/// escape hatch anyway).
struct BudgetAccount {
  double remaining = 0;
  double granted = 0;
  double grant_cap = 0;

  void Start(double initial, double cap) {
    remaining = initial;
    granted = 0;
    grant_cap = cap;
  }
  /// Returns the amount actually granted: `amount` clamped to the cap's
  /// remaining headroom (0 once the cap is reached), so the total grant
  /// never overshoots grant_cap.
  double Grant(double amount) {
    const double clamped = std::min(amount, grant_cap - granted);
    if (clamped <= 0) return 0;
    remaining += clamped;
    granted += clamped;
    return clamped;
  }
  bool exhausted() const { return remaining <= 0; }
  void Spend(double amount) { remaining -= amount; }
};

/// Cancellation token shared by the attempts of one speculative race: the
/// lowest II that has validated so far. An attempt at a higher II is moot
/// once a lower one succeeds, so it aborts at its next scheduling step —
/// including in the middle of an ejection cascade (the context is simply
/// Reset by its next TryII). Attempts at IIs *below* every success are
/// never cancelled: their failure is part of the serial-equivalent stats.
class SpeculationToken {
 public:
  /// True when a strictly lower II has already validated.
  bool Cancels(int ii) const {
    return best_ii_.load(std::memory_order_relaxed) < ii;
  }
  /// Records a validated II (keeps the minimum).
  void Commit(int ii) {
    int cur = best_ii_.load(std::memory_order_relaxed);
    while (ii < cur &&
           !best_ii_.compare_exchange_weak(cur, ii,
                                           std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<int> best_ii_{std::numeric_limits<int>::max()};
};

/// Outcome of one II attempt.
enum class AttemptStatus : std::uint8_t { kScheduled, kFailed, kCancelled };

constexpr std::string_view ToString(AttemptStatus s) {
  switch (s) {
    case AttemptStatus::kScheduled: return "scheduled";
    case AttemptStatus::kFailed: return "failed";
    case AttemptStatus::kCancelled: return "cancelled";
  }
  return "?";
}

/// Everything one II attempt owns and mutates. A context is reusable
/// (TryII resets it) and fully self-contained — no state is shared between
/// two contexts beyond the immutable inputs (original graph, machine,
/// options, canonicalized overrides, node order), which is what makes
/// racing contexts on concurrent threads sound. The context is the only
/// layer that mutates the reservation table through placement, so it
/// implements NodePlacer for the comm rewriter and spill engine it owns.
class AttemptContext : public NodePlacer {
 public:
  AttemptContext(const DDG& original, const MachineConfig& m,
                 const MirsOptions& opt,
                 const sched::LatencyOverrides& base_overrides,
                 const std::vector<NodeId>& order);

  /// Runs one scheduling attempt at `ii` from a fresh state. `cancel`
  /// (optional) aborts the attempt as soon as a strictly lower II commits.
  AttemptStatus TryII(int ii, const SpeculationToken* cancel = nullptr);

  /// Warm-started attempt: resets to a fresh state, replays the seed's
  /// compatible placements (SeedFrom), then runs the normal placement /
  /// eject / spill cascade to repair whatever the seed could not cover.
  /// `seeded_out` (optional) receives the number of replayed placements.
  /// Failure semantics are identical to TryII — the caller falls back to
  /// the cold escalation walk.
  AttemptStatus TryIISeeded(const ScheduleResult& seed, int ii,
                            int* seeded_out = nullptr);

  /// Redirects this context's sink callbacks into an internal per-attempt
  /// buffer. The speculative driver captures each attempt and replays the
  /// buffers to the user's sink in escalation order after the wave commits
  /// (same protocol as the per-attempt stats deltas), so the sink observes
  /// the exact serial event sequence while attempts race concurrently.
  void BeginSinkCapture() {
    event_log_.clear();
    instr_.CaptureTo(&event_log_);
  }
  /// Takes the captured events of the last attempt (the capture buffer
  /// stays attached and is cleared by the next BeginSinkCapture).
  std::vector<SinkEvent> TakeSinkEvents() { return std::move(event_log_); }

  /// Builds the final ScheduleResult from a successful TryII (normalizes
  /// the schedule, recounts ops, classifies the bound; moves the graph and
  /// schedule out, so the context must be Reset by TryII before reuse).
  ScheduleResult Finalize(const MIIInfo& mii, int ii);

  Instrumentation& instr() { return instr_; }

  // NodePlacer (services for the comm rewriter and spill engine).
  NodeId CreateNode(Node n, double priority) override;
  bool PlaceNode(NodeId u, int cluster, int src_cluster) override;

 private:
  /// TryII's body (TryII itself is a thin wrapper that brackets the body
  /// in an "attempt" trace span carrying the outcome).
  AttemptStatus RunAttempt(int ii, const SpeculationToken* cancel);

  /// Resets every layer for an attempt at `ii` and refills the priority
  /// list — the common prologue of RunAttempt and TryIISeeded.
  void BeginAttempt(int ii);
  /// The placement / eject / spill cascade through final validation: the
  /// remainder of an attempt after BeginAttempt (and optional seeding).
  AttemptStatus FinishAttempt(int ii, const SpeculationToken* cancel);
  /// Replays `seed`'s placements that are still compatible with the
  /// current graph, machine and latencies (window re-checked against the
  /// live SchedState, so nodes whose constraints changed are skipped and
  /// left to the repair cascade). Placements go through the SchedState
  /// Assign funnel — the pressure tracker absorbs them as regular deltas —
  /// but spend no budget and count as no attempts: ScheduleStats keeps
  /// measuring repair work only. Returns the number of seeded placements.
  int SeedFrom(const ScheduleResult& seed);

  void Eject(NodeId victim);
  void EjectScheduledNode(NodeId v);

  /// Structural cluster constraints (communication and spill copies follow
  /// the scheduled endpoint they serve); defers to the selector policy for
  /// unconstrained nodes.
  int SelectCluster(NodeId u);

  // ---- immutable inputs (shared across racing contexts) ----------------
  const DDG& original_;
  const MachineConfig& m_;
  const MirsOptions& opt_;
  const sched::LatencyOverrides& base_overrides_;
  const std::vector<NodeId>& order_;  ///< Ordering, computed once per run.

  // ---- layers ----------------------------------------------------------
  SchedState st_;
  Instrumentation instr_;
  CommRewriter comm_;
  std::shared_ptr<const SpillVictimPolicy> spill_policy_;
  SpillEngine spill_;
  std::unique_ptr<ClusterSelector> selector_;
  BalancedClusterSelector structural_fallback_;

  // ---- per-attempt state -----------------------------------------------
  BudgetAccount budget_;
  int since_spill_check_ = 0;
  std::vector<SinkEvent> event_log_;  ///< Capture buffer (BeginSinkCapture).

  // Scratch buffers reused across (non-reentrant) forced placements so the
  // hot loop never allocates.
  std::vector<NodeId> conflicts_scratch_;
  std::vector<NodeId> violated_scratch_;
};

class EngineDriver {
 public:
  EngineDriver(const DDG& loop, const MachineConfig& m, const MirsOptions& opt,
               const sched::LatencyOverrides& base_overrides);

  /// Runs the II-escalation loop from MII to opt.max_ii — serially, or
  /// racing candidate IIs when opt.speculate_k >= 2.
  ScheduleResult Run();

  /// Next candidate II of the escalation sequence once `failures` attempts
  /// have failed (escalation accelerates after 24 consecutive failures).
  /// Shared by the serial and speculative drivers so they can never
  /// diverge on which IIs get attempted.
  static int NextCandidateII(int ii, int failures) {
    return ii + (failures > 24 ? std::max(1, ii / 8) : 1);
  }

 private:
  ScheduleResult RunSerial(const MIIInfo& mii);
  ScheduleResult RunSpeculative(const MIIInfo& mii);
  /// Warm-start gate: one seeded attempt at max(MII, seed.ii). Returns the
  /// finalized result when it validates (warm.used); nullopt sends the
  /// caller down the cold path with warm.fallback stamped on its result.
  /// The II-no-worse half of the gate holds whenever seed.ii <= the cold
  /// II — always true for seed.ii <= MII, and analytically true for
  /// hardening perturbations (latency increases shrink the feasible-II
  /// set); see ARCHITECTURE.md for the contract.
  std::optional<ScheduleResult> RunWarm(const MIIInfo& mii);
  ScheduleResult FailResult(const MIIInfo& mii,
                            const ScheduleStats& stats) const;

  // ---- immutable inputs ------------------------------------------------
  const DDG& original_;
  MachineConfig m_;
  MirsOptions opt_;
  sched::LatencyOverrides base_overrides_;

  std::shared_ptr<const NodeOrderPolicy> ordering_;
  std::vector<NodeId> order_;  ///< Ordering, computed once per run.
};

}  // namespace hcrf::core
