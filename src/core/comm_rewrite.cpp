#include "core/comm_rewrite.h"

#include <algorithm>
#include <cstdio>

#include "core/check.h"
#include "core/debug.h"

namespace hcrf::core {

using sched::BankId;
using sched::kSharedBank;

// Reuse requires the candidate's placement to be compatible with the new
// consumer: when the consumer is already scheduled, the candidate must be
// able to feed it in the consumer's own iteration (the final chain edge
// always has distance 0).
bool CommRewriter::ReuseFeasible(NodeId candidate,
                                 const Edge& consumer_edge) const {
  if (!st_.sched->IsScheduled(consumer_edge.dst)) return true;
  const int lat =
      st_.overrides.For(candidate, st_.m.lat.Of(st_.g.node(candidate).op));
  return st_.sched->CycleOf(candidate) + lat <=
         st_.sched->CycleOf(consumer_edge.dst);
}

// Finds a scheduled chain node of kind `op` on `cluster` fed by `producer`
// over an edge with the given distance.
NodeId CommRewriter::FindReusable(NodeId producer, OpClass op, int cluster,
                                  int distance,
                                  const Edge& consumer_edge) const {
  for (const Edge& e : st_.g.FlowConsumers(producer)) {
    if (e.distance != distance) continue;
    const Node& n = st_.g.node(e.dst);
    if (n.op == op && n.inserted && !n.spill &&
        st_.sched->IsScheduled(e.dst) &&
        st_.sched->ClusterOf(e.dst) == cluster &&
        ReuseFeasible(e.dst, consumer_edge)) {
      return e.dst;
    }
  }
  return kNoNode;
}

bool CommRewriter::FixEdge(const Edge& e, BankId def_bank, BankId read_bank) {
  const RFConfig& rf = st_.m.rf;
  const bool consumer_scheduled = st_.sched->IsScheduled(e.dst);

  // Assemble the chain: reuse scheduled chain nodes where legal, create the
  // rest (unscheduled for now). Loop-carried distances ride the hop into
  // the capacious bank (shared bank for hierarchical organizations, the
  // producer's bank for bus moves); the final edge to the consumer is
  // always distance 0, so the consumer-side copy lives only briefly.
  NodeId last = e.src;
  std::vector<std::pair<NodeId, std::pair<int, int>>> to_schedule;
  if (rf.IsHierarchical()) {
    if (def_bank != kSharedBank) {
      NodeId s = FindReusable(last, OpClass::kStoreR, def_bank, 0, e);
      if (s == kNoNode) {
        Node n;
        n.op = OpClass::kStoreR;
        s = placer_.CreateNode(std::move(n),
                               st_.priority[static_cast<size_t>(last)] - 0.1);
        chain_nodes_.push_back(s);
        st_.g.AddFlow(last, s, 0);
        to_schedule.push_back({s, {def_bank, 0}});
      }
      last = s;
    }
    if (read_bank != kSharedBank) {
      // The shared-bank copy carries the loop distance; the LoadR's value
      // is read in the consumer's own iteration.
      NodeId l = FindReusable(last, OpClass::kLoadR, read_bank, e.distance, e);
      if (l == kNoNode) {
        Node n;
        n.op = OpClass::kLoadR;
        l = placer_.CreateNode(std::move(n),
                               st_.priority[static_cast<size_t>(e.src)] - 0.2);
        chain_nodes_.push_back(l);
        st_.g.AddFlow(last, l, e.distance);
        to_schedule.push_back({l, {read_bank, 0}});
      }
      last = l;
      return RedirectEdge(e, last, 0, to_schedule, consumer_scheduled);
    }
    // The consumer reads the shared bank directly (Store): the carried
    // distance stays on the final edge; the shared bank absorbs it.
    return RedirectEdge(e, last, e.distance, to_schedule, consumer_scheduled);
  }

  // Pure clustered: a Move over the buses; the producer's bank holds the
  // value across the carried distance.
  NodeId mv = FindReusable(e.src, OpClass::kMove, read_bank, e.distance, e);
  if (mv == kNoNode) {
    Node n;
    n.op = OpClass::kMove;
    mv = placer_.CreateNode(std::move(n),
                            st_.priority[static_cast<size_t>(e.src)] - 0.1);
    chain_nodes_.push_back(mv);
    st_.g.AddFlow(e.src, mv, e.distance);
    to_schedule.push_back({mv, {read_bank, def_bank}});
  }
  last = mv;
  return RedirectEdge(e, last, 0, to_schedule, consumer_scheduled);
}

bool CommRewriter::RedirectEdge(
    const Edge& e, NodeId last, int final_distance,
    std::vector<std::pair<NodeId, std::pair<int, int>>>& to_schedule,
    bool consumer_scheduled) {
  // Redirect the consumer edge through the chain and record the fix before
  // scheduling: ejection cascades triggered while placing chain nodes must
  // be able to unwind it.
  const bool removed = st_.g.RemoveEdge(e.src, e.dst, e.kind, e.distance);
  HCRF_CHECK(removed,
             "comm rewrite lost the direct edge %d->%d (kind %s, distance "
             "%d) it was about to replace; graph '%s', II=%d",
             e.src, e.dst, std::string(ToString(e.kind)).c_str(), e.distance,
             st_.g.name().c_str(), st_.ii());
  st_.g.AddEdge(last, e.dst, DepKind::kFlow, final_distance);
  if (DebugEnabled()) {
    if (st_.IsCommChainNode(e.src) || st_.IsCommChainNode(e.dst)) {
      std::fprintf(stderr,
                   "[hcrf BUG?] fix with comm endpoint: %d(%s)->%d(%s)\n",
                   e.src, ToString(st_.g.node(e.src).op).data(), e.dst,
                   ToString(st_.g.node(e.dst).op).data());
    }
  }
  fixes_.push_back(
      CommFix{e, Edge{last, e.dst, DepKind::kFlow, final_distance}});

  // Schedule the new chain nodes. When the consumer anchors the chain
  // (consumer-side fix), place the consumer-adjacent node first so each
  // node sees its constraint; otherwise producer-adjacent first.
  if (consumer_scheduled) {
    std::reverse(to_schedule.begin(), to_schedule.end());
  }
  for (const auto& [node, where] : to_schedule) {
    if (!st_.g.IsAlive(node)) return true;  // chain dissolved by a cascade
    if (st_.sched->IsScheduled(node)) continue;
    if (!placer_.PlaceNode(node, where.first, where.second)) return false;
  }
  instr_.ChainBuilt(e.dst, st_.ii());
  return true;
}

bool CommRewriter::EnsureCommunication(NodeId u, int cluster) {
  const RFConfig& rf = st_.m.rf;
  if (rf.IsMonolithic()) return true;
  // NOTE: FixEdge mutates the graph (node vector may reallocate), so this
  // function must not hold Node references across calls; ops are copied.
  const OpClass op_u = st_.g.node(u).op;

  // Operand side: producers already scheduled.
  if (op_u != OpClass::kMove) {  // moves read the producer bank directly
    in_scratch_.assign(st_.g.InEdges(u).begin(), st_.g.InEdges(u).end());
    for (const Edge& e : in_scratch_) {
      if (e.kind != DepKind::kFlow || !st_.sched->IsScheduled(e.src)) continue;
      const BankId def = sched::DefBank(st_.g.node(e.src).op,
                                        st_.sched->ClusterOf(e.src), rf);
      const BankId read = sched::ReadBank(op_u, cluster, rf);
      if (def == read) continue;
      if (!FixEdge(e, def, read)) return false;
    }
  }

  // Consumer side: consumers already scheduled.
  if (!DefinesValue(op_u)) return true;
  const BankId def = sched::DefBank(op_u, cluster, rf);
  out_scratch_.assign(st_.g.OutEdges(u).begin(), st_.g.OutEdges(u).end());
  for (const Edge& e : out_scratch_) {
    if (e.kind != DepKind::kFlow || !st_.sched->IsScheduled(e.dst)) continue;
    const OpClass op_c = st_.g.node(e.dst).op;
    BankId read;
    if (op_c == OpClass::kMove) {
      // The move will read whatever bank we define in; it only matters that
      // it is a cluster bank (moves cannot read the shared bank).
      if (def != kSharedBank) continue;
      read = st_.sched->ClusterOf(e.dst);
    } else {
      read = sched::ReadBank(op_c, st_.sched->ClusterOf(e.dst), rf);
    }
    if (def == read) continue;
    if (!FixEdge(e, def, read)) return false;
  }
  return true;
}

void CommRewriter::UndoFixesTouching(NodeId v) {
  for (size_t i = fixes_.size(); i-- > 0;) {
    const CommFix& f = fixes_[i];
    if (f.original.src != v && f.original.dst != v) continue;
    // Remove the chain edge at the consumer and restore the direct edge.
    st_.g.RemoveEdge(f.final_edge.src, f.final_edge.dst, f.final_edge.kind,
                     f.final_edge.distance);
    if ((!st_.g.IsAlive(f.original.src) || !st_.g.IsAlive(f.original.dst)) &&
        DebugEnabled()) {
      std::fprintf(stderr,
                   "[hcrf BUG] undo fix with dead endpoint: orig %d(%d)->%d(%d)"
                   " final %d->%d\n",
                   f.original.src, (int)st_.g.IsAlive(f.original.src),
                   f.original.dst, (int)st_.g.IsAlive(f.original.dst),
                   f.final_edge.src, f.final_edge.dst);
    }
    st_.g.AddEdge(f.original.src, f.original.dst, f.original.kind,
                  f.original.distance);
    instr_.ChainUndone(f.original.dst, st_.ii());
    fixes_.erase(fixes_.begin() + static_cast<long>(i));
  }
}

void CommRewriter::GarbageCollectComm() {
  // Only chain nodes are ever collected, so scanning chain_nodes_ (short,
  // ascending id) visits the same candidates as a full slot scan; the
  // fixpoint is order-independent (removing a node only un-feeds its
  // producers, picked up by the next pass).
  bool changed = true;
  bool any_dead = false;
  while (changed) {
    changed = false;
    for (NodeId v : chain_nodes_) {
      if (!st_.g.IsAlive(v)) {
        any_dead = true;
        continue;
      }
      // Spill copies never enter chain_nodes_, so IsCommChainNode holds
      // for every alive entry. Allocation-free consumer probe
      // (FlowConsumers would materialize a vector).
      bool has_consumer = false;
      for (const Edge& e : st_.g.OutEdges(v)) {
        if (e.kind == DepKind::kFlow) {
          has_consumer = true;
          break;
        }
      }
      if (has_consumer) continue;
      st_.Unplace(v);
      st_.MarkScheduled(v);  // drop from the unscheduled list before removal
      st_.g.RemoveNode(v);
      changed = true;
      any_dead = true;
    }
  }
  if (any_dead) {
    std::erase_if(chain_nodes_,
                  [this](NodeId v) { return !st_.g.IsAlive(v); });
  }
}

std::vector<NodeId> CommRewriter::ConsumersThrough(NodeId victim) const {
  std::vector<NodeId> consumers;
  for (const CommFix& f : fixes_) {
    // Walk the chain backwards from the consumer-side edge.
    NodeId c = f.final_edge.src;
    bool through = false;
    while (true) {
      if (c == victim) {
        through = true;
        break;
      }
      if (!st_.IsCommChainNode(c)) break;
      const auto producers = st_.g.FlowProducers(c);
      if (producers.empty()) break;
      c = producers.front().src;
    }
    if (through) consumers.push_back(f.original.dst);
  }
  return consumers;
}

}  // namespace hcrf::core
