// Once-per-process cached debug switches for the scheduling engine.
//
// The engine used to call getenv("HCRF_DEBUG") inside its hottest loops
// (the per-placement budget check and the per-ejection bookkeeping), which
// is a libc hash walk per placement probe. The environment of a scheduler
// process does not change after startup, so each flag is read exactly once
// and cached in a function-local static.
#pragma once

#include <cstdlib>

namespace hcrf::core {

/// True when HCRF_DEBUG is set: verbose per-attempt diagnostics on stderr.
inline bool DebugEnabled() {
  static const bool enabled = std::getenv("HCRF_DEBUG") != nullptr;
  return enabled;
}

/// True when HCRF_DEBUG_LIFETIMES is set: per-value lifetime dumps when a
/// bank ends an attempt over capacity (implies reading HCRF_DEBUG output).
inline bool DebugLifetimesEnabled() {
  static const bool enabled = std::getenv("HCRF_DEBUG_LIFETIMES") != nullptr;
  return enabled;
}

/// True when the incremental pressure tracker must be cross-validated
/// against the full ComputePressure recompute at every spill check: always
/// in debug (!NDEBUG) builds, and in release builds when
/// HCRF_CHECK_PRESSURE is set (used by the differential tests and the
/// bench self-check).
inline bool PressureCrossCheckEnabled() {
#ifndef NDEBUG
  return true;
#else
  static const bool enabled = std::getenv("HCRF_CHECK_PRESSURE") != nullptr;
  return enabled;
#endif
}

}  // namespace hcrf::core
