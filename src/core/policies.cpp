#include "core/policies.h"

#include <limits>

#include "sched/banks.h"
#include "sched/ordering.h"

namespace hcrf::core {

using sched::BankId;

std::string_view ToString(ClusterPolicy p) {
  switch (p) {
    case ClusterPolicy::kBalanced: return "balanced";
    case ClusterPolicy::kRoundRobin: return "round-robin";
    case ClusterPolicy::kFirstFit: return "first-fit";
  }
  return "?";
}

std::vector<NodeId> HrmsOrderPolicy::Order(const DDG& g,
                                           const MachineConfig& m) const {
  return sched::HrmsOrder(g, m.lat);
}

// ---------------------------------------------------------------------------
// Cluster selection
// ---------------------------------------------------------------------------

int BalancedClusterSelector::Select(const SchedState& st, NodeId u) {
  const RFConfig& rf = st.m.rf;
  const int x = rf.clusters;
  const int ii = st.ii();
  const Node& n = st.g.node(u);
  const Window w = st.ComputeWindow(u);

  // Per-cluster usage of FUs (cheap balance proxy) and def counts
  // (register-pressure proxy), maintained incrementally by the SchedState
  // assign/unassign funnels (this selector runs before every placement and
  // used to rescan every slot).
  const std::vector<int>& fu_use = st.cluster_fu_use;
  const std::vector<int>& defs = st.cluster_defs;

  double best_cost = std::numeric_limits<double>::max();
  int best = 0;
  for (int c = 0; c < x; ++c) {
    // Communication the placement would require.
    int comm = 0;
    for (const Edge& e : st.g.InEdges(u)) {
      if (e.kind != DepKind::kFlow || !st.sched->IsScheduled(e.src)) continue;
      const BankId def =
          sched::DefBank(st.g.node(e.src).op, st.sched->ClusterOf(e.src), rf);
      const BankId read = sched::ReadBank(n.op, c, rf);
      if (def != read) ++comm;
    }
    if (DefinesValue(n.op)) {
      const BankId def = sched::DefBank(n.op, c, rf);
      for (const Edge& e : st.g.OutEdges(u)) {
        if (e.kind != DepKind::kFlow || !st.sched->IsScheduled(e.dst)) {
          continue;
        }
        const Node& nc = st.g.node(e.dst);
        if (nc.op == OpClass::kMove) continue;
        const BankId read =
            sched::ReadBank(nc.op, st.sched->ClusterOf(e.dst), rf);
        if (def != read) ++comm;
      }
    }
    // Slot availability inside the dependence window.
    bool free_slot = false;
    {
      const auto needs = sched::ResourceNeeds(n.op, c, 0, st.m);
      const bool bottom_up = w.has_succ && !w.has_pred;
      const int lo = bottom_up ? w.late - ii + 1 : w.early;
      const int hi = bottom_up
                         ? w.late
                         : (w.has_succ ? std::min(w.late, w.early + ii - 1)
                                       : w.early + ii - 1);
      free_slot = st.mrt->FindFirstSlotUp(needs, lo, hi) !=
                  sched::ModuloReservationTable::kNoSlot;
    }
    const double fu_cap = static_cast<double>(st.m.FusPerCluster()) * ii;
    const double reg_cap =
        rf.UnboundedClusterRegs() ? 1e9 : static_cast<double>(rf.cluster_regs);
    // A missing slot almost certainly means forcing and ejection, so it
    // outweighs a couple of communication operations; communication in turn
    // outweighs the soft balancing terms.
    const double cost = 3.0 * comm + 8.0 * (free_slot ? 0 : 1) +
                        fu_use[static_cast<size_t>(c)] / fu_cap +
                        defs[static_cast<size_t>(c)] / reg_cap;
    if (cost < best_cost) {
      best_cost = cost;
      best = c;
    }
  }
  return best;
}

int RoundRobinClusterSelector::Select(const SchedState& st, NodeId u) {
  (void)u;
  return (next_++) % st.m.rf.clusters;
}

int FirstFitClusterSelector::Select(const SchedState& st, NodeId u) {
  const Node& n = st.g.node(u);
  for (int c = 0; c < st.m.rf.clusters; ++c) {
    const auto needs = sched::ResourceNeeds(n.op, c, 0, st.m);
    const Window w = st.ComputeWindow(u);
    const int hi =
        w.has_succ && !w.has_pred ? w.late : w.early + st.ii() - 1;
    const int lo =
        w.has_succ && !w.has_pred ? w.late - st.ii() + 1 : w.early;
    if (st.mrt->FindFirstSlotUp(needs, lo, hi) !=
        sched::ModuloReservationTable::kNoSlot) {
      return c;
    }
  }
  return 0;
}

std::unique_ptr<ClusterSelector> MakeClusterSelector(ClusterPolicy p) {
  switch (p) {
    case ClusterPolicy::kBalanced:
      return std::make_unique<BalancedClusterSelector>();
    case ClusterPolicy::kRoundRobin:
      return std::make_unique<RoundRobinClusterSelector>();
    case ClusterPolicy::kFirstFit:
      return std::make_unique<FirstFitClusterSelector>();
  }
  return std::make_unique<BalancedClusterSelector>();
}

ClusterSelectorFactory MakeClusterSelectorFactory(ClusterPolicy p) {
  return [p] { return MakeClusterSelector(p); };
}

// ---------------------------------------------------------------------------
// Spill victim selection
// ---------------------------------------------------------------------------

const sched::ValueLifetime* LongestPerUseSpillPolicy::Pick(
    const std::vector<const sched::ValueLifetime*>& candidates) const {
  const sched::ValueLifetime* best = nullptr;
  double best_score = 0.0;
  for (const sched::ValueLifetime* v : candidates) {
    const double score = static_cast<double>(v->Length()) / (v->uses + 1);
    if (best == nullptr || score > best_score) {
      best = v;
      best_score = score;
    }
  }
  return best;
}

}  // namespace hcrf::core
