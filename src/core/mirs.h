// MIRS_HC: Modulo scheduling with Integrated Register Spilling for
// Hierarchical Clustered VLIW architectures (the paper's Section 5), and
// its specializations for monolithic (MIRS [38]), clustered (MIRS for
// clustered RFs [37]) and hierarchical non-clustered RFs. One engine
// handles all four organization families, selected by MachineConfig::rf.
//
// The scheduler simultaneously performs:
//  * instruction scheduling (HRMS-style register-sensitive ordering),
//  * cluster selection (balancing slots, communication and registers),
//  * insertion of communication ops (Move for pure clustered organizations,
//    StoreR/LoadR for hierarchical ones) whenever a flow dependence crosses
//    banks,
//  * register allocation per bank (MaxLive vs capacity after every
//    placement),
//  * spill insertion: cluster bank -> shared bank (hierarchical; free of
//    memory traffic) and shared bank / cluster bank -> memory.
//
// It is iterative with backtracking: when no free slot exists the node is
// force-placed and the conflicting and dependence-violating nodes are
// ejected back into the priority list (their communication ops are removed
// and their original edges restored). The process is governed by a Budget
// of Budget_Ratio attempts per node; exhausting it restarts the schedule
// at II+1.
#pragma once

#include <cstdint>
#include <string>

#include "ddg/ddg.h"
#include "machine/machine_config.h"
#include "sched/lifetime.h"
#include "sched/schedule.h"

namespace hcrf::core {

enum class ClusterPolicy : std::uint8_t {
  kBalanced,    ///< Paper's heuristic: slots + communication + registers.
  kRoundRobin,  ///< Ablation: cyclic assignment.
  kFirstFit,    ///< Ablation: lowest-index cluster with a free slot.
};

std::string_view ToString(ClusterPolicy p);

struct MirsOptions {
  /// Attempts the iterative algorithm may spend per node (Budget_Ratio).
  double budget_ratio = 6.0;
  /// Hard II ceiling (fail the loop beyond it; generously above any MII in
  /// the workload).
  int max_ii = 2048;
  /// false selects the non-iterative baseline in the style of [36]: no
  /// force-and-eject backtracking, spill inserted only between whole
  /// scheduling passes; used as the Table 4 comparator.
  bool iterative = true;
  ClusterPolicy cluster_policy = ClusterPolicy::kBalanced;
};

/// How a loop's achieved II is bounded (Table 1's classification).
enum class BoundClass : std::uint8_t { kFU, kMemPort, kRecurrence, kComm };

std::string_view ToString(BoundClass b);

struct ScheduleStats {
  long attempts = 0;    ///< Budget spent (nodes scheduled, incl. rescheds).
  long ejections = 0;   ///< Nodes kicked out by force-and-eject.
  int restarts = 0;     ///< II increments over MII.
  int comm_ops = 0;     ///< Move/LoadR/StoreR nodes in the final graph.
  int spill_stores = 0; ///< Spill stores to memory (adds traffic).
  int spill_loads = 0;  ///< Spill loads from memory (adds traffic).
  int storer_ops = 0;   ///< StoreR nodes (cluster->shared copies).
  int loadr_ops = 0;    ///< LoadR nodes (shared->cluster copies).
  int move_ops = 0;     ///< Move nodes (bus copies).
};

struct ScheduleResult {
  bool ok = false;
  int ii = 0;
  int sc = 0;  ///< Stage count of the final schedule.
  int mii = 0;
  int res_mii = 0;
  int rec_mii = 0;
  /// Transformed graph: original operations plus communication and spill
  /// nodes. Original node ids are preserved.
  DDG graph;
  sched::PartialSchedule schedule{1};
  /// Flow-latency overrides actually used (binding prefetching), indexed
  /// by ids of `graph`.
  sched::LatencyOverrides overrides;
  ScheduleStats stats;
  BoundClass bound = BoundClass::kFU;
  /// Loads+stores per iteration in the final graph: the paper's `trf`
  /// factor of the memory-traffic metric (N * trf).
  int mem_ops_per_iter = 0;
};

/// Schedules one loop on the given machine. `load_overrides` (optional)
/// gives per-load producer latencies on the ids of `loop` — the mechanism
/// behind binding prefetching (schedule selected loads with miss latency).
ScheduleResult MirsHC(const DDG& loop, const MachineConfig& m,
                      const MirsOptions& opt = {},
                      const sched::LatencyOverrides& load_overrides = {});

/// Classification of the achieved II against its component bounds,
/// computed on the final transformed graph.
BoundClass ClassifyBound(const DDG& final_graph, const MachineConfig& m,
                         int achieved_ii, int rec_mii);

}  // namespace hcrf::core
