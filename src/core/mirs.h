// MIRS_HC: Modulo scheduling with Integrated Register Spilling for
// Hierarchical Clustered VLIW architectures (the paper's Section 5), and
// its specializations for monolithic (MIRS [38]), clustered (MIRS for
// clustered RFs [37]) and hierarchical non-clustered RFs. One engine
// handles all four organization families, selected by MachineConfig::rf.
//
// The scheduler simultaneously performs:
//  * instruction scheduling (HRMS-style register-sensitive ordering),
//  * cluster selection (balancing slots, communication and registers),
//  * insertion of communication ops (Move for pure clustered organizations,
//    StoreR/LoadR for hierarchical ones) whenever a flow dependence crosses
//    banks,
//  * register allocation per bank (MaxLive vs capacity after every
//    placement),
//  * spill insertion: cluster bank -> shared bank (hierarchical; free of
//    memory traffic) and shared bank / cluster bank -> memory.
//
// It is iterative with backtracking: when no free slot exists the node is
// force-placed and the conflicting and dependence-violating nodes are
// ejected back into the priority list (their communication ops are removed
// and their original edges restored). The process is governed by a Budget
// of Budget_Ratio attempts per node; exhausting it restarts the schedule
// at II+1.
//
// This header is the stable entry point. The implementation is layered
// (see ARCHITECTURE.md): engine driver (engine.h), policies (policies.h),
// communication rewriting (comm_rewrite.h), spilling (spill.h) and
// instrumentation (instrument.h).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/instrument.h"
#include "core/policies.h"
#include "ddg/ddg.h"
#include "machine/machine_config.h"
#include "sched/lifetime.h"
#include "sched/schedule.h"

namespace hcrf::core {

struct ScheduleResult;

struct MirsOptions {
  /// Attempts the iterative algorithm may spend per node (Budget_Ratio).
  double budget_ratio = 6.0;
  /// Hard II ceiling (fail the loop beyond it; generously above any MII in
  /// the workload).
  int max_ii = 2048;
  /// false selects the non-iterative baseline in the style of [36]: no
  /// force-and-eject backtracking, spill inserted only between whole
  /// scheduling passes; used as the Table 4 comparator.
  bool iterative = true;
  /// Incremental hot path: per-bank MaxLive maintained under place / eject
  /// / spill deltas (sched/pressure_tracker.h) and an indexed priority
  /// pick. false selects the reference path (full ComputePressure at every
  /// spill check, linear priority scan) — schedules are bit-identical
  /// either way; `hcrf_sched bench` runs both and asserts it.
  bool incremental = true;
  /// Speculative II racing: values >= 2 race that many candidate IIs of
  /// the serial escalation sequence concurrently on the process-wide
  /// perf::SpeculationPool, each on its own self-contained AttemptContext,
  /// and commit the lowest II that validates (losing attempts above it are
  /// cancelled early). Schedules AND stats are bit-identical to the serial
  /// path — every candidate below the winner is still attempted and its
  /// per-attempt counters merged in escalation order — so the mode is
  /// outside the schedule cache key, like `incremental`. 0/1 = serial.
  /// Composes with event_sink: each racing attempt captures its events
  /// privately and the driver replays them to the sink in escalation
  /// order after the wave commits, so the sink observes the exact serial
  /// sequence on a single thread.
  int speculate_k = 0;
  /// Race eagerly: the very first wave already has speculate_k candidates
  /// (MII included) instead of trying MII alone first. Cuts the latency of
  /// loops known to fail their first attempts at the price of wasted raced
  /// attempts on loops that schedule at MII.
  bool speculate_eager = false;
  ClusterPolicy cluster_policy = ClusterPolicy::kBalanced;

  // ---- policy-layer hooks (null = defaults from the enums above) -------
  /// Creates the per-run cluster selector; overrides `cluster_policy` when
  /// set. A factory (not an instance) so one MirsOptions value can be
  /// shared across the parallel suite runner's concurrent runs.
  ClusterSelectorFactory cluster_selector;
  /// Node-ordering policy (default: HRMS ordering).
  std::shared_ptr<const NodeOrderPolicy> ordering;
  /// Spill-victim ranking (default: longest lifetime per use).
  std::shared_ptr<const SpillVictimPolicy> spill_policy;
  /// Optional observer of scheduler events (tests, tracing). Non-owning;
  /// must outlive the MirsHC call. Callbacks run on the scheduling thread.
  EventSink* event_sink = nullptr;

  /// Precomputed MII of the loop (the suite runner's sweep cache); when
  /// set, the engine skips its own ComputeMII. Must match the loop/machine.
  std::optional<MIIInfo> precomputed_mii;

  /// Warm-start seed: a prior result for the same original loop (typically
  /// the same graph under slightly different latencies / options, served by
  /// the tier stack's near-key lookup). The driver replays the compatible
  /// placements and lets the force-and-eject cascade repair the rest; an
  /// incompatible or failing seed falls back to the cold path (see
  /// ScheduleResult::warm — the fallback is counted, never silent). Like
  /// `precomputed_mii` this is runtime-only: outside serialization and the
  /// schedule cache key.
  std::shared_ptr<const ScheduleResult> warm_start;
};

/// How a loop's achieved II is bounded (Table 1's classification).
enum class BoundClass : std::uint8_t { kFU, kMemPort, kRecurrence, kComm };

std::string_view ToString(BoundClass b);

/// Telemetry of the speculative II-racing driver (all zero in serial mode).
/// Deliberately NOT serialized into `.hcl` result dumps: the speculative
/// and serial paths must stay bit-identical on disk, and a cache-served
/// result reports no speculation of its own.
struct SpeculationTelemetry {
  int raced = 0;      ///< Attempts run concurrently beyond the serial walk.
  int raced_wins = 0;  ///< Races whose committed schedule came from a raced
                       ///< attempt (the serial walk would have reached it
                       ///< only after failing the candidates below).
  int cancelled = 0;  ///< Raced attempts aborted by a lower-II success.
  int discarded = 0;  ///< Raced attempts finished above the winning II.
  double attempt_seconds = 0;  ///< Summed wall time of every II attempt
                               ///< (the serial-equivalent work).
};

/// Telemetry of the warm-start path (all zero on a cold run). Like
/// SpeculationTelemetry it is deliberately NOT serialized into `.hcl`
/// result dumps: a fallback result must stay bit-identical to a cold run,
/// and warm-started results never enter the exact-key cache anyway (the
/// cache contract serves only cold bytes).
struct WarmStartTelemetry {
  bool attempted = false;  ///< A usable seed was offered to the engine.
  bool used = false;      ///< The seeded attempt validated and was kept.
  bool fallback = false;  ///< Seed rejected / seeded attempt failed; the
                          ///< result below came from the cold path.
  int seeded = 0;    ///< Placements replayed verbatim from the seed.
  int repaired = 0;  ///< Placement attempts spent repairing conflicts
                     ///< (the cascade's work after seeding).
};

struct ScheduleResult {
  bool ok = false;
  int ii = 0;
  int sc = 0;  ///< Stage count of the final schedule.
  int mii = 0;
  int res_mii = 0;
  int rec_mii = 0;
  /// Transformed graph: original operations plus communication and spill
  /// nodes. Original node ids are preserved.
  DDG graph;
  sched::PartialSchedule schedule{1};
  /// Flow-latency overrides actually used (binding prefetching), indexed
  /// by ids of `graph`.
  sched::LatencyOverrides overrides;
  ScheduleStats stats;
  BoundClass bound = BoundClass::kFU;
  /// Loads+stores per iteration in the final graph: the paper's `trf`
  /// factor of the memory-traffic metric (N * trf).
  int mem_ops_per_iter = 0;
  SpeculationTelemetry spec;
  WarmStartTelemetry warm;
};

/// Schedules one loop on the given machine. `load_overrides` (optional)
/// gives per-load producer latencies on the ids of `loop` — the mechanism
/// behind binding prefetching (schedule selected loads with miss latency).
ScheduleResult MirsHC(const DDG& loop, const MachineConfig& m,
                      const MirsOptions& opt = {},
                      const sched::LatencyOverrides& load_overrides = {});

/// Classification of the achieved II against its component bounds,
/// computed on the final transformed graph.
BoundClass ClassifyBound(const DDG& final_graph, const MachineConfig& m,
                         int achieved_ii, int rec_mii);

}  // namespace hcrf::core
