// Release-mode invariant checking for the scheduling engine.
//
// The engine maintains bookkeeping invariants (edge rewrites must find the
// edge they remove, the priority list must never desync from the graph)
// whose violation means a bug, not a recoverable condition. A plain
// assert() compiles away in release builds, which is exactly where the
// large design-space sweeps run -- so violations would surface later as
// corrupt schedules. HCRF_CHECK always fires and prints diagnostic context
// before aborting.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace hcrf::core::internal {

[[noreturn]] inline void InvariantFailure(const char* file, int line,
                                          const char* cond, const char* fmt,
                                          ...) {
  std::fprintf(stderr, "[hcrf invariant] %s:%d: check `%s` failed: ", file,
               line, cond);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace hcrf::core::internal

/// Invariant check that fires in all build modes. `...` is a printf-style
/// message giving the diagnostic context (node ids, edge endpoints, II).
#define HCRF_CHECK(cond, ...)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::hcrf::core::internal::InvariantFailure(__FILE__, __LINE__, #cond,  \
                                               __VA_ARGS__);               \
    }                                                                      \
  } while (0)
