// Scheduler instrumentation layer: counters and events describing the work
// the iterative engine performed (placements, force-and-eject churn, spill
// decisions, budget consumption, II escalation).
//
// The counters are the quantitative side (surfaced through ScheduleResult
// and aggregated into perf::SuiteMetrics); the optional EventSink is the
// qualitative side for tests and tracing. The engine funnels every state
// change through Instrumentation so the two can never disagree.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "ddg/ddg.h"
#include "obs/trace.h"

namespace hcrf::core {

/// State changes the engine reports while scheduling one loop.
enum class SchedEvent : std::uint8_t {
  kNodePlaced,    ///< A node was placed in a free slot.
  kNodeForced,    ///< A node was force-placed (conflicts ejected).
  kNodeEjected,   ///< A scheduled node was kicked back to the priority list.
  kChainBuilt,    ///< A communication chain replaced a mismatched flow edge.
  kChainUndone,   ///< A chain was unwound and the direct edge restored.
  kSpillInserted, ///< The spill engine split a lifetime (or an invariant).
  kIIRestart,     ///< The current II failed; the engine escalates.
};

constexpr std::string_view ToString(SchedEvent e) {
  switch (e) {
    case SchedEvent::kNodePlaced: return "place";
    case SchedEvent::kNodeForced: return "force";
    case SchedEvent::kNodeEjected: return "eject";
    case SchedEvent::kChainBuilt: return "chain+";
    case SchedEvent::kChainUndone: return "chain-";
    case SchedEvent::kSpillInserted: return "spill";
    case SchedEvent::kIIRestart: return "restart";
  }
  return "?";
}

/// Observer of scheduler events. Callbacks run synchronously on the
/// scheduling thread and must be cheap; `node` is kNoNode for events that
/// concern the whole attempt (kIIRestart), and `ii` is the II in effect.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void OnEvent(SchedEvent e, NodeId node, int ii) = 0;
};

/// One buffered sink callback. The speculative driver records each
/// attempt's events into a private log and replays the logs to the user's
/// sink in escalation order after the wave commits — the same protocol
/// that keeps the per-attempt ScheduleStats deltas bit-identical to the
/// serial walk.
struct SinkEvent {
  SchedEvent e;
  NodeId node;
  int ii;
};

/// Counters accumulated over one MirsHC run (all II attempts).
struct ScheduleStats {
  long attempts = 0;    ///< Budget spent (nodes scheduled, incl. rescheds).
  long ejections = 0;   ///< Nodes kicked out by force-and-eject.
  long force_places = 0;  ///< Placements that needed Force_and_Eject.
  int restarts = 0;     ///< II increments over MII.
  int comm_ops = 0;     ///< Move/LoadR/StoreR nodes in the final graph.
  int spill_stores = 0; ///< Spill stores to memory (adds traffic).
  int spill_loads = 0;  ///< Spill loads from memory (adds traffic).
  int storer_ops = 0;   ///< StoreR nodes (cluster->shared copies).
  int loadr_ops = 0;    ///< LoadR nodes (shared->cluster copies).
  int move_ops = 0;     ///< Move nodes (bus copies).
  int spills_inserted = 0;  ///< Spill decisions taken (incl. reg-to-reg).
  long chains_built = 0;    ///< Communication chains created.
  long chains_undone = 0;   ///< Chains unwound by ejection.
  double budget_spent = 0;  ///< Total attempts charged against the budget.
  double budget_granted = 0;  ///< Budget granted by inserted nodes.
};

/// The engine's single funnel for counters + events.
class Instrumentation {
 public:
  Instrumentation() = default;
  explicit Instrumentation(EventSink* sink) : user_sink_(sink), sink_(sink) {}

  ScheduleStats& stats() { return stats_; }
  const ScheduleStats& stats() const { return stats_; }

  /// Zeroes the counters. The serial engine driver accumulates across II
  /// attempts (a MirsHC run's stats cover every attempt); the speculative
  /// driver instead captures per-attempt deltas from reused contexts and
  /// re-merges them in escalation order, so it resets before each attempt.
  void ResetStats() { stats_ = ScheduleStats{}; }

  void NodePlaced(NodeId n, int ii) {
    ++stats_.attempts;
    Emit(SchedEvent::kNodePlaced, n, ii);
  }
  void NodeForced(NodeId n, int ii) {
    ++stats_.attempts;
    ++stats_.force_places;
    Emit(SchedEvent::kNodeForced, n, ii);
  }
  void NodeEjected(NodeId n, int ii) {
    ++stats_.ejections;
    Emit(SchedEvent::kNodeEjected, n, ii);
  }
  void ChainBuilt(NodeId consumer, int ii) {
    // Communication work is part of the effort budget (the seed engine
    // charged one attempt per chain).
    ++stats_.attempts;
    ++stats_.chains_built;
    Emit(SchedEvent::kChainBuilt, consumer, ii);
  }
  void ChainUndone(NodeId consumer, int ii) {
    ++stats_.chains_undone;
    Emit(SchedEvent::kChainUndone, consumer, ii);
  }
  void SpillInserted(NodeId def, int ii) {
    ++stats_.spills_inserted;
    Emit(SchedEvent::kSpillInserted, def, ii);
  }
  void IIRestart(int next_ii) {
    Emit(SchedEvent::kIIRestart, kNoNode, next_ii);
  }
  void BudgetSpent(double amount) { stats_.budget_spent += amount; }
  void BudgetGranted(double amount) { stats_.budget_granted += amount; }

  /// Redirects sink callbacks into `log` (pass nullptr to restore direct
  /// delivery). While capturing, the attached sink sees nothing; the
  /// owner replays the log later. Tracer instants are NOT captured — they
  /// carry real timestamps and belong on the thread that did the work.
  ///
  /// Implemented by swapping `sink_` to an internal buffering sink so the
  /// hot Emit path keeps a single branch; an Instrumentation must not be
  /// copied or moved while a capture is installed (sink_ would alias the
  /// source's buffer). The engine owns its Instrumentation by value and
  /// never moves it, so this never bites in practice.
  void CaptureTo(std::vector<SinkEvent>* log) {
    if (log != nullptr) {
      capture_.log = log;
      sink_ = &capture_;
    } else {
      capture_.log = nullptr;
      sink_ = user_sink_;
    }
  }

 private:
  /// Buffers callbacks during speculative capture (see CaptureTo).
  class CaptureSink final : public EventSink {
   public:
    void OnEvent(SchedEvent e, NodeId node, int ii) override {
      log->push_back(SinkEvent{e, node, ii});
    }
    std::vector<SinkEvent>* log = nullptr;
  };

  void Emit(SchedEvent e, NodeId n, int ii) {
    if (sink_ != nullptr) {
      sink_->OnEvent(e, n, ii);
    }
    if (obs::TraceEnabled()) {
      obs::Tracer::Shared().Instant("sched", ToString(e).data(), ii,
                                    static_cast<int>(n));
    }
  }

  ScheduleStats stats_;
  EventSink* user_sink_ = nullptr;  ///< The externally attached sink.
  EventSink* sink_ = nullptr;       ///< Active target: user_sink_ or capture_.
  CaptureSink capture_;
};

}  // namespace hcrf::core
