// Shared mutable state of one II attempt of the iterative engine.
//
// Everything the engine layers (driver, cluster/spill policies,
// communication rewriter, spill engine) read and write while scheduling
// lives here: the working graph (original nodes plus inserted
// communication/spill copies), the partial schedule and reservation table,
// the priority list, and the per-node bookkeeping that force-and-eject
// needs (last placement cycle, ejection counts). The layers communicate
// only through this state and the NodePlacer interface (comm_rewrite.h), so
// each can be tested in isolation.
#pragma once

#include <limits>
#include <memory>
#include <vector>

#include "ddg/ddg.h"
#include "machine/machine_config.h"
#include "sched/lifetime.h"
#include "sched/mrt.h"
#include "sched/schedule.h"

namespace hcrf::core {

inline constexpr int kNoCycle = std::numeric_limits<int>::min();

/// Dependence window of a node w.r.t. its scheduled neighbours.
struct Window {
  int early = kNoCycle;  ///< max over scheduled predecessors.
  int late = kNoCycle;   ///< min over scheduled successors (kNoCycle=none).
  bool has_pred = false;
  bool has_succ = false;
};

struct SchedState {
  explicit SchedState(const MachineConfig& machine) : m(machine) {}

  // Non-copyable: the layers hold references into this state.
  SchedState(const SchedState&) = delete;
  SchedState& operator=(const SchedState&) = delete;

  /// Rebuilds the state for a fresh attempt at the given II: working graph
  /// reset to the original, empty schedule/MRT, bookkeeping cleared. The
  /// caller (engine driver) fills in priorities and the unscheduled set
  /// from its ordering policy.
  void Reset(const DDG& original, const sched::LatencyOverrides& base, int ii);

  int ii() const { return sched->ii(); }

  /// Dependence latency of an edge under the active latency overrides.
  int LatOf(const Edge& e) const {
    return sched::DependenceLatency(g, e, m.lat, overrides);
  }

  Window ComputeWindow(NodeId u) const;

  /// Grows the per-node arrays to cover `id` (newly inserted nodes).
  void GrowTo(NodeId id);

  void MarkUnscheduled(NodeId v);
  void MarkScheduled(NodeId v);

  /// Removes `v` from the MRT and schedule, remembering its last cycle so a
  /// forced re-placement makes progress.
  void Unplace(NodeId v);

  NodeId PickHighestPriority() const;

  /// True for scheduler-inserted communication chain nodes (owned by the
  /// communication rewriter; spill copies are not chain nodes).
  bool IsCommChainNode(NodeId v) const {
    const Node& n = g.node(v);
    return IsCommunication(n.op) && n.inserted && !n.spill;
  }

  // ---- immutable over the attempt --------------------------------------
  const MachineConfig& m;

  // ---- per-attempt state -----------------------------------------------
  DDG g;
  sched::LatencyOverrides overrides;
  std::unique_ptr<sched::ModuloReservationTable> mrt;
  std::unique_ptr<sched::PartialSchedule> sched;
  std::vector<double> priority;
  std::vector<char> unscheduled;
  int num_unscheduled = 0;
  std::vector<int> prev_cycle;  ///< Last placement cycle (kNoCycle = never).
  std::vector<long> eject_count;
  bool churning = false;  ///< Livelocked eject ping-pong detected.
};

}  // namespace hcrf::core
