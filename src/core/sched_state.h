// Shared mutable state of one II attempt of the iterative engine.
//
// Everything the engine layers (driver, cluster/spill policies,
// communication rewriter, spill engine) read and write while scheduling
// lives here: the working graph (original nodes plus inserted
// communication/spill copies), the partial schedule and reservation table,
// the priority list, and the per-node bookkeeping that force-and-eject
// needs (last placement cycle, ejection counts). The layers communicate
// only through this state and the NodePlacer interface (comm_rewrite.h), so
// each can be tested in isolation.
#pragma once

#include <limits>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "ddg/ddg.h"
#include "machine/machine_config.h"
#include "sched/lifetime.h"
#include "sched/mrt.h"
#include "sched/pressure_tracker.h"
#include "sched/schedule.h"

namespace hcrf::core {

inline constexpr int kNoCycle = std::numeric_limits<int>::min();

/// Dependence window of a node w.r.t. its scheduled neighbours.
struct Window {
  int early = kNoCycle;  ///< max over scheduled predecessors.
  int late = kNoCycle;   ///< min over scheduled successors (kNoCycle=none).
  bool has_pred = false;
  bool has_succ = false;
};

struct SchedState {
  explicit SchedState(const MachineConfig& machine) : m(machine) {}

  // Non-copyable: the layers hold references into this state.
  SchedState(const SchedState&) = delete;
  SchedState& operator=(const SchedState&) = delete;

  /// Rebuilds the state for a fresh attempt at the given II: working graph
  /// reset to the original, empty schedule/MRT, bookkeeping cleared. The
  /// caller (engine driver) fills in priorities and the unscheduled set
  /// from its ordering policy. `incremental` selects the incremental
  /// pressure tracker + indexed priority pick; false is the reference path
  /// (full ComputePressure per spill check, linear priority scan) that
  /// `hcrf_sched bench` runs to prove both produce bit-identical
  /// schedules.
  void Reset(const DDG& original, const sched::LatencyOverrides& base, int ii,
             bool use_incremental = true);

  int ii() const { return sched->ii(); }

  /// Dependence latency of an edge under the active latency overrides.
  int LatOf(const Edge& e) const {
    return sched::DependenceLatency(g, e, m.lat, overrides);
  }

  Window ComputeWindow(NodeId u) const;

  /// Grows the per-node arrays to cover `id` (newly inserted nodes).
  void GrowTo(NodeId id);

  void MarkUnscheduled(NodeId v);
  void MarkScheduled(NodeId v);

  /// Schedule-mutation funnels: every placement and removal goes through
  /// these so the incremental pressure tracker and the per-cluster usage
  /// counters can never miss a delta.
  void Assign(NodeId u, sched::Placement p) {
    sched->Assign(u, p);
    BumpClusterUse(u, p.cluster, +1);
    pressure.OnPlaced(u);
  }
  void Unassign(NodeId u) {
    if (!sched->IsScheduled(u)) return;
    const int cluster = sched->ClusterOf(u);
    sched->Unassign(u);
    BumpClusterUse(u, cluster, -1);
    pressure.OnUnplaced(u);
  }

  /// Removes `v` from the MRT and schedule, remembering its last cycle so a
  /// forced re-placement makes progress.
  void Unplace(NodeId v);

  NodeId PickHighestPriority() const;

  /// True for scheduler-inserted communication chain nodes (owned by the
  /// communication rewriter; spill copies are not chain nodes).
  bool IsCommChainNode(NodeId v) const {
    const Node& n = g.node(v);
    return IsCommunication(n.op) && n.inserted && !n.spill;
  }

  // ---- immutable over the attempt --------------------------------------
  const MachineConfig& m;

  // ---- per-attempt state -----------------------------------------------
  DDG g;
  sched::LatencyOverrides overrides;
  std::unique_ptr<sched::ModuloReservationTable> mrt;
  std::unique_ptr<sched::PartialSchedule> sched;
  std::vector<double> priority;
  std::vector<char> unscheduled;
  int num_unscheduled = 0;
  std::vector<int> prev_cycle;  ///< Last placement cycle (kNoCycle = never).
  std::vector<long> eject_count;
  bool churning = false;  ///< Livelocked eject ping-pong detected.

  /// Scheduled compute ops / cluster-bank defs per cluster, maintained by
  /// the Assign/Unassign funnels. The balanced cluster selector's soft
  /// balancing terms used to rescan every slot per selection; these are
  /// the same sums kept incrementally.
  std::vector<int> cluster_fu_use;
  std::vector<int> cluster_defs;

  /// Incremental per-bank MaxLive (attached to `g`/`sched` while
  /// `incremental` is set; detached and inert on the reference path).
  sched::PressureTracker pressure;
  /// Incremental fast paths enabled (see Reset).
  bool incremental = true;
  /// Use the lazy pick-heap instead of the linear priority scan. Both pick
  /// the same node always; the heap only pays off once the linear scan has
  /// enough slots to walk, so small graphs keep the scan (set by Reset).
  bool indexed_pick = false;

 private:
  void BumpClusterUse(NodeId u, int cluster, int delta) {
    if (cluster < 0 || static_cast<size_t>(cluster) >= cluster_fu_use.size()) {
      return;
    }
    const OpClass op = g.node(u).op;
    if (IsCompute(op)) cluster_fu_use[static_cast<size_t>(cluster)] += delta;
    if (DefinesValue(op) &&
        sched::DefBank(op, cluster, m.rf) == static_cast<sched::BankId>(cluster)) {
      cluster_defs[static_cast<size_t>(cluster)] += delta;
    }
  }

  /// Lazy max-heap over (priority, node): top is the highest-priority,
  /// lowest-id unscheduled node — exactly what the reference linear scan
  /// picks. Entries are pushed by MarkUnscheduled and validated against
  /// the live state on pop, so stale entries (scheduled or tombstoned
  /// since) are simply discarded.
  struct PickOrder {
    bool operator()(const std::pair<double, NodeId>& a,
                    const std::pair<double, NodeId>& b) const {
      if (a.first != b.first) return a.first < b.first;
      return a.second > b.second;
    }
  };
  mutable std::priority_queue<std::pair<double, NodeId>,
                              std::vector<std::pair<double, NodeId>>,
                              PickOrder>
      pick_heap_;
};

}  // namespace hcrf::core
