#include "core/sched_state.h"

namespace hcrf::core {

void SchedState::Reset(const DDG& original,
                       const sched::LatencyOverrides& base, int ii,
                       bool use_incremental) {
  // The previous attempt only wrote eject counts for its own node ids, so
  // re-zeroing that prefix is enough (the full 4096-entry window would be
  // a 32 KB memset on every II attempt).
  const size_t prev_used = std::min(eject_count.size(), priority.size());
  if (eject_count.empty()) {
    eject_count.assign(4096, 0);
  } else {
    std::fill_n(eject_count.begin(), prev_used, 0);
  }

  g = original;
  overrides = base;
  if (mrt != nullptr) {
    mrt->Rebind(ii);
  } else {
    mrt = std::make_unique<sched::ModuloReservationTable>(m, ii);
  }
  if (sched != nullptr) {
    sched->Reset(ii);
  } else {
    sched = std::make_unique<sched::PartialSchedule>(ii);
  }
  priority.assign(static_cast<size_t>(g.NumSlots()), 0.0);
  unscheduled.assign(static_cast<size_t>(g.NumSlots()), 0);
  prev_cycle.assign(static_cast<size_t>(g.NumSlots()), kNoCycle);
  num_unscheduled = 0;
  cluster_fu_use.assign(static_cast<size_t>(m.rf.clusters), 0);
  cluster_defs.assign(static_cast<size_t>(m.rf.clusters), 0);
  churning = false;
  incremental = use_incremental;
  // On small graphs the linear scan beats the heap's push/pop-per-event
  // bookkeeping (eject churn floods the heap with lazy entries); 96 slots
  // is comfortably past the crossover measured by `hcrf_sched bench`.
  indexed_pick = incremental && g.NumSlots() > 96;
  pick_heap_ = {};
  // Pressure is only ever consulted for bounded banks (the spill engine
  // and the final capacity check early-out otherwise), so organizations
  // with unbounded register files skip the tracker entirely.
  const RFConfig& rf = m.rf;
  const bool bounded = (rf.HasClusters() && !rf.UnboundedClusterRegs()) ||
                       (rf.HasSharedBank() && !rf.UnboundedSharedRegs());
  if (incremental && bounded) {
    pressure.Attach(g, *sched, m, overrides);
  } else {
    pressure.Detach();
  }
}

Window SchedState::ComputeWindow(NodeId u) const {
  Window w;
  const int ii = sched->ii();
  for (const Edge& e : g.InEdges(u)) {
    if (!sched->IsScheduled(e.src)) continue;
    const int es = sched->CycleOf(e.src) + LatOf(e) - e.distance * ii;
    if (!w.has_pred || es > w.early) w.early = es;
    w.has_pred = true;
  }
  for (const Edge& e : g.OutEdges(u)) {
    if (!sched->IsScheduled(e.dst)) continue;
    const int ls = sched->CycleOf(e.dst) - LatOf(e) + e.distance * ii;
    if (!w.has_succ || ls < w.late) w.late = ls;
    w.has_succ = true;
  }
  if (!w.has_pred) w.early = 0;
  return w;
}

void SchedState::GrowTo(NodeId id) {
  if (static_cast<size_t>(id) >= priority.size()) {
    priority.resize(static_cast<size_t>(id) + 1, 0.0);
    unscheduled.resize(static_cast<size_t>(id) + 1, 0);
    prev_cycle.resize(static_cast<size_t>(id) + 1, kNoCycle);
  }
}

void SchedState::MarkUnscheduled(NodeId v) {
  if (!unscheduled[static_cast<size_t>(v)]) {
    unscheduled[static_cast<size_t>(v)] = 1;
    ++num_unscheduled;
    if (indexed_pick) {
      pick_heap_.emplace(priority[static_cast<size_t>(v)], v);
    }
  }
}

void SchedState::MarkScheduled(NodeId v) {
  if (unscheduled[static_cast<size_t>(v)]) {
    unscheduled[static_cast<size_t>(v)] = 0;
    --num_unscheduled;
  }
}

void SchedState::Unplace(NodeId v) {
  if (sched->IsScheduled(v)) {
    prev_cycle[static_cast<size_t>(v)] = sched->CycleOf(v);
    mrt->Remove(v);
    Unassign(v);
  }
}

NodeId SchedState::PickHighestPriority() const {
  if (indexed_pick) {
    // Discard entries invalidated since their push (scheduled again,
    // priority re-seeded by a later MarkUnscheduled, or tombstoned); the
    // first live entry is the answer and stays queued until it really
    // leaves the unscheduled set.
    while (!pick_heap_.empty()) {
      const auto& [prio, v] = pick_heap_.top();
      if (g.IsAlive(v) && unscheduled[static_cast<size_t>(v)] &&
          priority[static_cast<size_t>(v)] == prio) {
        return v;
      }
      pick_heap_.pop();
    }
    return kNoNode;
  }
  NodeId best = kNoNode;
  for (NodeId v = 0; v < g.NumSlots(); ++v) {
    if (!g.IsAlive(v) || !unscheduled[static_cast<size_t>(v)]) continue;
    if (best == kNoNode ||
        priority[static_cast<size_t>(v)] > priority[static_cast<size_t>(best)]) {
      best = v;
    }
  }
  return best;
}

}  // namespace hcrf::core
