#include "core/sched_state.h"

namespace hcrf::core {

void SchedState::Reset(const DDG& original,
                       const sched::LatencyOverrides& base, int ii) {
  g = original;
  overrides = base;
  mrt = std::make_unique<sched::ModuloReservationTable>(m, ii);
  sched = std::make_unique<sched::PartialSchedule>(ii);
  priority.assign(static_cast<size_t>(g.NumSlots()), 0.0);
  unscheduled.assign(static_cast<size_t>(g.NumSlots()), 0);
  prev_cycle.assign(static_cast<size_t>(g.NumSlots()), kNoCycle);
  num_unscheduled = 0;
  eject_count.assign(4096, 0);
  churning = false;
}

Window SchedState::ComputeWindow(NodeId u) const {
  Window w;
  const int ii = sched->ii();
  for (const Edge& e : g.InEdges(u)) {
    if (!sched->IsScheduled(e.src)) continue;
    const int es = sched->CycleOf(e.src) + LatOf(e) - e.distance * ii;
    if (!w.has_pred || es > w.early) w.early = es;
    w.has_pred = true;
  }
  for (const Edge& e : g.OutEdges(u)) {
    if (!sched->IsScheduled(e.dst)) continue;
    const int ls = sched->CycleOf(e.dst) - LatOf(e) + e.distance * ii;
    if (!w.has_succ || ls < w.late) w.late = ls;
    w.has_succ = true;
  }
  if (!w.has_pred) w.early = 0;
  return w;
}

void SchedState::GrowTo(NodeId id) {
  if (static_cast<size_t>(id) >= priority.size()) {
    priority.resize(static_cast<size_t>(id) + 1, 0.0);
    unscheduled.resize(static_cast<size_t>(id) + 1, 0);
    prev_cycle.resize(static_cast<size_t>(id) + 1, kNoCycle);
  }
}

void SchedState::MarkUnscheduled(NodeId v) {
  if (!unscheduled[static_cast<size_t>(v)]) {
    unscheduled[static_cast<size_t>(v)] = 1;
    ++num_unscheduled;
  }
}

void SchedState::MarkScheduled(NodeId v) {
  if (unscheduled[static_cast<size_t>(v)]) {
    unscheduled[static_cast<size_t>(v)] = 0;
    --num_unscheduled;
  }
}

void SchedState::Unplace(NodeId v) {
  if (sched->IsScheduled(v)) {
    prev_cycle[static_cast<size_t>(v)] = sched->CycleOf(v);
    mrt->Remove(v);
    sched->Unassign(v);
  }
}

NodeId SchedState::PickHighestPriority() const {
  NodeId best = kNoNode;
  for (NodeId v = 0; v < g.NumSlots(); ++v) {
    if (!g.IsAlive(v) || !unscheduled[static_cast<size_t>(v)]) continue;
    if (best == kNoNode ||
        priority[static_cast<size_t>(v)] > priority[static_cast<size_t>(best)]) {
      best = v;
    }
  }
  return best;
}

}  // namespace hcrf::core
