#include "core/mirs.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "ddg/mii.h"
#include "sched/banks.h"
#include "sched/mrt.h"
#include "sched/ordering.h"
#include "sched/validate.h"

namespace hcrf::core {

using sched::BankId;
using sched::kSharedBank;

std::string_view ToString(ClusterPolicy p) {
  switch (p) {
    case ClusterPolicy::kBalanced: return "balanced";
    case ClusterPolicy::kRoundRobin: return "round-robin";
    case ClusterPolicy::kFirstFit: return "first-fit";
  }
  return "?";
}

std::string_view ToString(BoundClass b) {
  switch (b) {
    case BoundClass::kFU: return "FU";
    case BoundClass::kMemPort: return "MemPort";
    case BoundClass::kRecurrence: return "Rec";
    case BoundClass::kComm: return "Com";
  }
  return "?";
}

namespace {

constexpr int kNoCycle = std::numeric_limits<int>::min();

/// Memory "array" ids used for spill slots; high enough to never collide
/// with workload arrays.
constexpr std::int32_t kSpillArrayBase = 1 << 20;

class Scheduler {
 public:
  Scheduler(const DDG& loop, const MachineConfig& m, const MirsOptions& opt,
            const sched::LatencyOverrides& base_overrides)
      : original_(loop), m_(m), opt_(opt), base_overrides_(base_overrides) {}

  ScheduleResult Run();

 private:
  // ---- one-II attempt state -------------------------------------------
  struct CommFix {
    Edge original;    ///< The removed direct edge.
    Edge final_edge;  ///< The chain edge that replaced it at the consumer.
  };

  bool TryII(int ii);

  // Scheduling of a single node (window scan + force-and-eject).
  bool ScheduleNode(NodeId u, int cluster, int src_cluster);
  // Inserts and schedules communication chains for mismatched flow edges
  // between `u` (about to be placed on `cluster`) and its scheduled
  // neighbours. Returns false if a chain could not be scheduled
  // (non-iterative mode only).
  bool EnsureCommunication(NodeId u, int cluster);
  bool FixEdge(const Edge& e, BankId def_bank, BankId read_bank);
  bool RedirectEdge(
      const Edge& e, NodeId last, int final_distance,
      std::vector<std::pair<NodeId, std::pair<int, int>>>& to_schedule,
      bool consumer_scheduled);
  bool ReuseFeasible(NodeId candidate, const Edge& consumer_edge) const;
  NodeId FindReusable(NodeId producer, OpClass op, int cluster, int distance,
                      const Edge& consumer_edge) const;

  void Eject(NodeId victim);
  void EjectScheduledNode(NodeId v);
  void UndoFixesTouching(NodeId v);
  void GarbageCollectComm();
  void Unplace(NodeId v);

  // Register pressure / spill.
  void CheckAndInsertSpill();
  void SinkReloads();
  bool SpillFromBank(BankId bank, const sched::PressureReport& pr);
  bool SpillInvariantFromBank(BankId bank);

  // Cluster selection.
  int SelectCluster(NodeId u);
  int BalancedCluster(NodeId u);

  // Dependence windows.
  struct Window {
    int early = kNoCycle;  ///< max over scheduled predecessors.
    int late = kNoCycle;   ///< min over scheduled successors (kNoCycle=none).
    bool has_pred = false;
    bool has_succ = false;
  };
  Window ComputeWindow(NodeId u) const;

  int LatOf(const Edge& e) const {
    return sched::DependenceLatency(g_, e, m_.lat, overrides_);
  }

  NodeId PickHighestPriority() const;
  NodeId NewNode(Node n, double priority);
  void MarkUnscheduled(NodeId v);
  void MarkScheduled(NodeId v);

  // ---- immutable inputs ------------------------------------------------
  const DDG& original_;
  MachineConfig m_;
  MirsOptions opt_;
  sched::LatencyOverrides base_overrides_;

  // ---- per-attempt state -----------------------------------------------
  DDG g_;
  sched::LatencyOverrides overrides_;
  std::unique_ptr<sched::ModuloReservationTable> mrt_;
  std::unique_ptr<sched::PartialSchedule> sched_;
  std::vector<double> priority_;
  std::vector<char> unscheduled_;
  int num_unscheduled_ = 0;
  double budget_ = 0;
  double budget_granted_ = 0;
  std::vector<CommFix> fixes_;
  std::vector<int> prev_cycle_;  ///< Last placement cycle (kNoCycle = never).
  std::set<NodeId> spilled_;
  std::set<std::pair<std::int32_t, BankId>> spilled_invariants_;
  std::int32_t next_spill_array_ = kSpillArrayBase;
  int round_robin_ = 0;
  int since_spill_check_ = 0;
  bool churning_ = false;
  std::vector<long> eject_count_;

  // ---- accumulated over the whole run ------------------------------------
  ScheduleStats stats_;
};

// ---------------------------------------------------------------------------
// Small state helpers
// ---------------------------------------------------------------------------

NodeId Scheduler::NewNode(Node n, double priority) {
  n.inserted = true;
  const NodeId id = g_.AddNode(std::move(n));
  if (static_cast<size_t>(id) >= priority_.size()) {
    priority_.resize(static_cast<size_t>(id) + 1, 0.0);
    unscheduled_.resize(static_cast<size_t>(id) + 1, 0);
    prev_cycle_.resize(static_cast<size_t>(id) + 1, kNoCycle);
  }
  priority_[static_cast<size_t>(id)] = priority;
  unscheduled_[static_cast<size_t>(id)] = 1;
  ++num_unscheduled_;
  // The paper grants Budget_Ratio extra attempts per inserted node. An
  // eject/re-insert churn cycle would grant budget faster than scheduling
  // spends it, so the total grant is capped (beyond it the attempt fails
  // and the II is bumped, which is the paper's escape hatch anyway).
  const double grant_cap =
      8.0 * opt_.budget_ratio * std::max(4, original_.NumNodes());
  if (budget_granted_ < grant_cap) {
    budget_ += opt_.budget_ratio;
    budget_granted_ += opt_.budget_ratio;
  }
  return id;
}

void Scheduler::MarkUnscheduled(NodeId v) {
  if (!unscheduled_[static_cast<size_t>(v)]) {
    unscheduled_[static_cast<size_t>(v)] = 1;
    ++num_unscheduled_;
  }
}

void Scheduler::MarkScheduled(NodeId v) {
  if (unscheduled_[static_cast<size_t>(v)]) {
    unscheduled_[static_cast<size_t>(v)] = 0;
    --num_unscheduled_;
  }
}

NodeId Scheduler::PickHighestPriority() const {
  NodeId best = kNoNode;
  for (NodeId v = 0; v < g_.NumSlots(); ++v) {
    if (!g_.IsAlive(v) || !unscheduled_[static_cast<size_t>(v)]) continue;
    if (best == kNoNode ||
        priority_[static_cast<size_t>(v)] > priority_[static_cast<size_t>(best)]) {
      best = v;
    }
  }
  return best;
}

void Scheduler::Unplace(NodeId v) {
  if (sched_->IsScheduled(v)) {
    prev_cycle_[static_cast<size_t>(v)] = sched_->CycleOf(v);
    mrt_->Remove(v);
    sched_->Unassign(v);
  }
}

// ---------------------------------------------------------------------------
// Dependence window
// ---------------------------------------------------------------------------

Scheduler::Window Scheduler::ComputeWindow(NodeId u) const {
  Window w;
  const int ii = sched_->ii();
  for (const Edge& e : g_.InEdges(u)) {
    if (!sched_->IsScheduled(e.src)) continue;
    const int es = sched_->CycleOf(e.src) + LatOf(e) - e.distance * ii;
    if (!w.has_pred || es > w.early) w.early = es;
    w.has_pred = true;
  }
  for (const Edge& e : g_.OutEdges(u)) {
    if (!sched_->IsScheduled(e.dst)) continue;
    const int ls = sched_->CycleOf(e.dst) - LatOf(e) + e.distance * ii;
    if (!w.has_succ || ls < w.late) w.late = ls;
    w.has_succ = true;
  }
  if (!w.has_pred) w.early = 0;
  return w;
}

// ---------------------------------------------------------------------------
// Node scheduling with force-and-eject
// ---------------------------------------------------------------------------

bool Scheduler::ScheduleNode(NodeId u, int cluster, int src_cluster) {
  if (budget_ <= 0) return false;
  const int ii = sched_->ii();
  const auto needs =
      sched::ResourceNeeds(g_.node(u).op, cluster, src_cluster, m_);
  // Structurally impossible placements (e.g. Move with no buses).
  for (const auto& need : needs) {
    if (mrt_->Capacity(need.kind, need.cluster) <= 0) return false;
  }

  const Window w = ComputeWindow(u);
  // Scan direction per HRMS: top-down when predecessors anchor the node,
  // bottom-up when only successors do. Reload-style copies (spill loads,
  // LoadR) are also placed as late as possible even when both sides are
  // anchored: their input lives in memory or the capacious shared bank, so
  // a late placement minimizes the register lifetime of their value.
  const OpClass op_u = g_.node(u).op;
  const bool late_biased =
      op_u == OpClass::kLoadR || (g_.node(u).spill && op_u == OpClass::kLoad);
  int found = kNoCycle;
  if (w.has_succ && (!w.has_pred || late_biased)) {
    const int hi = w.late;
    const int lo = w.has_pred ? std::max(w.early, w.late - ii + 1)
                              : w.late - ii + 1;
    for (int t = hi; t >= lo; --t) {
      if (mrt_->CanPlace(needs, t)) {
        found = t;
        break;
      }
    }
  } else {
    const int hi =
        w.has_succ ? std::min(w.late, w.early + ii - 1) : w.early + ii - 1;
    for (int t = w.early; t <= hi; ++t) {
      if (mrt_->CanPlace(needs, t)) {
        found = t;
        break;
      }
    }
  }

  if (found == kNoCycle) {
    if (!opt_.iterative) return false;
    // Force placement. Following iterative modulo scheduling, the forced
    // cycle advances past the previous placement of the node so repeated
    // forcing makes progress.
    // The forced cycle marches monotonically from the window edge. It
    // normally stays inside the dependence window, but a node that keeps
    // being ejected is allowed to land outside it: the violated
    // predecessors/successors are ejected too, which is the paper's escape
    // hatch from zero-slack chains on saturated ports.
    const bool desperate =
        static_cast<size_t>(u) < eject_count_.size() &&
        eject_count_[static_cast<size_t>(u)] > 12;
    int t;
    if (w.has_succ && (!w.has_pred || late_biased)) {
      t = prev_cycle_[static_cast<size_t>(u)] == kNoCycle
              ? w.late
              : std::min(w.late, prev_cycle_[static_cast<size_t>(u)] - 1);
      if (w.has_pred && !desperate) t = std::max(t, w.early);
    } else {
      t = prev_cycle_[static_cast<size_t>(u)] == kNoCycle
              ? w.early
              : std::max(w.early, prev_cycle_[static_cast<size_t>(u)] + 1);
    }
    // Eject resource conflicts.
    for (NodeId victim : mrt_->ConflictingNodes(needs, t)) {
      Eject(victim);
    }
    if (!mrt_->CanPlace(needs, t)) {
      // A comm-node ejection rerouted a chain and refilled the slot; give
      // up on this attempt (budget will drive an II bump).
      return false;
    }
    mrt_->Place(u, needs, t);
    sched_->Assign(u, {t, cluster, src_cluster, true});
    MarkScheduled(u);
    prev_cycle_[static_cast<size_t>(u)] = t;
    // Eject scheduled neighbours whose dependences the forced placement
    // violates.
    std::vector<NodeId> violated;
    for (const Edge& e : g_.InEdges(u)) {
      if (!sched_->IsScheduled(e.src) || e.src == u) continue;
      if (sched_->CycleOf(e.src) + LatOf(e) > t + e.distance * ii) {
        violated.push_back(e.src);
      }
    }
    for (const Edge& e : g_.OutEdges(u)) {
      if (!sched_->IsScheduled(e.dst) || e.dst == u) continue;
      if (t + LatOf(e) > sched_->CycleOf(e.dst) + e.distance * ii) {
        violated.push_back(e.dst);
      }
    }
    for (NodeId v : violated) Eject(v);
  } else {
    mrt_->Place(u, needs, found);
    sched_->Assign(u, {found, cluster, src_cluster, true});
    MarkScheduled(u);
    prev_cycle_[static_cast<size_t>(u)] = found;
  }

  budget_ -= 1.0;
  ++stats_.attempts;
  return true;
}

// ---------------------------------------------------------------------------
// Ejection
// ---------------------------------------------------------------------------

void Scheduler::Eject(NodeId victim) {
  if (!g_.IsAlive(victim)) return;
  const Node& n = g_.node(victim);
  if (IsCommunication(n.op) && n.inserted && !n.spill) {
    // Ejecting a communication node means redoing the consumer's
    // communication: eject every consumer whose chain runs through it.
    std::vector<NodeId> consumers;
    for (const CommFix& f : fixes_) {
      // Walk the chain backwards from the consumer-side edge.
      NodeId c = f.final_edge.src;
      bool through = false;
      while (true) {
        if (c == victim) {
          through = true;
          break;
        }
        const Node& cn = g_.node(c);
        if (!(IsCommunication(cn.op) && cn.inserted && !cn.spill)) break;
        const auto producers = g_.FlowProducers(c);
        if (producers.empty()) break;
        c = producers.front().src;
      }
      if (through) consumers.push_back(f.original.dst);
    }
    for (NodeId c : consumers) Eject(c);
    return;
  }
  EjectScheduledNode(victim);
}

void Scheduler::EjectScheduledNode(NodeId v) {
  if (!sched_->IsScheduled(v)) return;
  Unplace(v);
  MarkUnscheduled(v);
  ++stats_.ejections;
  if (static_cast<size_t>(v) < eject_count_.size()) {
    if (++eject_count_[static_cast<size_t>(v)] > 60) churning_ = true;
    if (eject_count_[static_cast<size_t>(v)] == 30 &&
        std::getenv("HCRF_DEBUG") != nullptr) {
      const Window w = ComputeWindow(v);
      std::fprintf(stderr,
                   "   [30th eject] node %d (%s%s) cluster %d prev %d "
                   "window [%d,%d] pred=%d succ=%d II=%d\n",
                   v, ToString(g_.node(v).op).data(),
                   g_.node(v).spill ? ",spill" : "", sched_->Of(v).cluster,
                   prev_cycle_[static_cast<size_t>(v)], w.early, w.late,
                   w.has_pred, w.has_succ, sched_->ii());
    }
  }
  UndoFixesTouching(v);
  GarbageCollectComm();
}

void Scheduler::UndoFixesTouching(NodeId v) {
  for (size_t i = fixes_.size(); i-- > 0;) {
    const CommFix& f = fixes_[i];
    if (f.original.src != v && f.original.dst != v) continue;
    // Remove the chain edge at the consumer and restore the direct edge.
    g_.RemoveEdge(f.final_edge.src, f.final_edge.dst, f.final_edge.kind,
                  f.final_edge.distance);
    if ((!g_.IsAlive(f.original.src) || !g_.IsAlive(f.original.dst)) &&
        std::getenv("HCRF_DEBUG") != nullptr) {
      std::fprintf(stderr,
                   "[hcrf BUG] undo fix with dead endpoint: orig %d(%d)->%d(%d)"
                   " final %d->%d\n",
                   f.original.src, (int)g_.IsAlive(f.original.src),
                   f.original.dst, (int)g_.IsAlive(f.original.dst),
                   f.final_edge.src, f.final_edge.dst);
    }
    g_.AddEdge(f.original.src, f.original.dst, f.original.kind,
               f.original.distance);
    fixes_.erase(fixes_.begin() + static_cast<long>(i));
  }
}

void Scheduler::GarbageCollectComm() {
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId v = 0; v < g_.NumSlots(); ++v) {
      if (!g_.IsAlive(v)) continue;
      const Node& n = g_.node(v);
      if (!(IsCommunication(n.op) && n.inserted && !n.spill)) continue;
      if (!g_.FlowConsumers(v).empty()) continue;
      Unplace(v);
      MarkScheduled(v);  // drop from the unscheduled list before removal
      g_.RemoveNode(v);
      changed = true;
    }
  }
}

// ---------------------------------------------------------------------------
// Communication insertion
// ---------------------------------------------------------------------------

// Reuse requires the candidate's placement to be compatible with the new
// consumer: when the consumer is already scheduled, the candidate must be
// able to feed it in the consumer's own iteration (the final chain edge
// always has distance 0).
bool Scheduler::ReuseFeasible(NodeId candidate, const Edge& consumer_edge) const {
  if (!sched_->IsScheduled(consumer_edge.dst)) return true;
  const int lat = overrides_.For(candidate, m_.lat.Of(g_.node(candidate).op));
  return sched_->CycleOf(candidate) + lat <= sched_->CycleOf(consumer_edge.dst);
}

// Finds a scheduled chain node of kind `op` on `cluster` fed by `producer`
// over an edge with the given distance.
NodeId Scheduler::FindReusable(NodeId producer, OpClass op, int cluster,
                               int distance, const Edge& consumer_edge) const {
  for (const Edge& e : g_.FlowConsumers(producer)) {
    if (e.distance != distance) continue;
    const Node& n = g_.node(e.dst);
    if (n.op == op && n.inserted && !n.spill && sched_->IsScheduled(e.dst) &&
        sched_->ClusterOf(e.dst) == cluster &&
        ReuseFeasible(e.dst, consumer_edge)) {
      return e.dst;
    }
  }
  return kNoNode;
}

bool Scheduler::FixEdge(const Edge& e, BankId def_bank, BankId read_bank) {
  const RFConfig& rf = m_.rf;
  const bool consumer_scheduled = sched_->IsScheduled(e.dst);

  // Assemble the chain: reuse scheduled chain nodes where legal, create the
  // rest (unscheduled for now). Loop-carried distances ride the hop into
  // the capacious bank (shared bank for hierarchical organizations, the
  // producer's bank for bus moves); the final edge to the consumer is
  // always distance 0, so the consumer-side copy lives only briefly.
  NodeId last = e.src;
  std::vector<std::pair<NodeId, std::pair<int, int>>> to_schedule;  // node -> (cluster, src_cluster)
  if (rf.IsHierarchical()) {
    if (def_bank != kSharedBank) {
      NodeId s = FindReusable(last, OpClass::kStoreR, def_bank, 0, e);
      if (s == kNoNode) {
        Node n;
        n.op = OpClass::kStoreR;
        s = NewNode(std::move(n), priority_[static_cast<size_t>(last)] - 0.1);
        g_.AddFlow(last, s, 0);
        to_schedule.push_back({s, {def_bank, 0}});
      }
      last = s;
    }
    if (read_bank != kSharedBank) {
      // The shared-bank copy carries the loop distance; the LoadR's value
      // is read in the consumer's own iteration.
      NodeId l = FindReusable(last, OpClass::kLoadR, read_bank, e.distance, e);
      if (l == kNoNode) {
        Node n;
        n.op = OpClass::kLoadR;
        l = NewNode(std::move(n), priority_[static_cast<size_t>(e.src)] - 0.2);
        g_.AddFlow(last, l, e.distance);
        to_schedule.push_back({l, {read_bank, 0}});
      }
      last = l;
      return RedirectEdge(e, last, 0, to_schedule, consumer_scheduled);
    }
    // The consumer reads the shared bank directly (Store): the carried
    // distance stays on the final edge; the shared bank absorbs it.
    return RedirectEdge(e, last, e.distance, to_schedule, consumer_scheduled);
  }

  // Pure clustered: a Move over the buses; the producer's bank holds the
  // value across the carried distance.
  NodeId mv = FindReusable(e.src, OpClass::kMove, read_bank, e.distance, e);
  if (mv == kNoNode) {
    Node n;
    n.op = OpClass::kMove;
    mv = NewNode(std::move(n), priority_[static_cast<size_t>(e.src)] - 0.1);
    g_.AddFlow(e.src, mv, e.distance);
    to_schedule.push_back({mv, {read_bank, def_bank}});
  }
  last = mv;
  return RedirectEdge(e, last, 0, to_schedule, consumer_scheduled);
}

bool Scheduler::RedirectEdge(
    const Edge& e, NodeId last, int final_distance,
    std::vector<std::pair<NodeId, std::pair<int, int>>>& to_schedule,
    bool consumer_scheduled) {
  // Redirect the consumer edge through the chain and record the fix before
  // scheduling: ejection cascades triggered while placing chain nodes must
  // be able to unwind it.
  const bool removed = g_.RemoveEdge(e.src, e.dst, e.kind, e.distance);
  assert(removed);
  (void)removed;
  g_.AddEdge(last, e.dst, DepKind::kFlow, final_distance);
  if (std::getenv("HCRF_DEBUG") != nullptr) {
    auto is_comm = [&](NodeId n) {
      const Node& nn = g_.node(n);
      return IsCommunication(nn.op) && nn.inserted && !nn.spill;
    };
    if (is_comm(e.src) || is_comm(e.dst)) {
      std::fprintf(stderr,
                   "[hcrf BUG?] fix with comm endpoint: %d(%s)->%d(%s)\n",
                   e.src, ToString(g_.node(e.src).op).data(), e.dst,
                   ToString(g_.node(e.dst).op).data());
    }
  }
  fixes_.push_back(CommFix{e, Edge{last, e.dst, DepKind::kFlow, final_distance}});

  // Schedule the new chain nodes. When the consumer anchors the chain
  // (consumer-side fix), place the consumer-adjacent node first so each
  // node sees its constraint; otherwise producer-adjacent first.
  if (consumer_scheduled) {
    std::reverse(to_schedule.begin(), to_schedule.end());
  }
  for (const auto& [node, where] : to_schedule) {
    if (!g_.IsAlive(node)) return true;  // chain dissolved by a cascade
    if (sched_->IsScheduled(node)) continue;
    if (!ScheduleNode(node, where.first, where.second)) return false;
  }
  ++stats_.attempts;  // communication work is part of the effort budget
  return true;
}

bool Scheduler::EnsureCommunication(NodeId u, int cluster) {
  const RFConfig& rf = m_.rf;
  if (rf.IsMonolithic()) return true;
  // NOTE: FixEdge mutates the graph (node vector may reallocate), so this
  // function must not hold Node references across calls; ops are copied.
  const OpClass op_u = g_.node(u).op;

  // Operand side: producers already scheduled.
  if (op_u != OpClass::kMove) {  // moves read the producer bank directly
    for (const Edge& e : std::vector<Edge>(g_.InEdges(u))) {
      if (e.kind != DepKind::kFlow || !sched_->IsScheduled(e.src)) continue;
      const BankId def =
          sched::DefBank(g_.node(e.src).op, sched_->ClusterOf(e.src), rf);
      const BankId read = sched::ReadBank(op_u, cluster, rf);
      if (def == read) continue;
      if (!FixEdge(e, def, read)) return false;
    }
  }

  // Consumer side: consumers already scheduled.
  if (!DefinesValue(op_u)) return true;
  const BankId def = sched::DefBank(op_u, cluster, rf);
  for (const Edge& e : std::vector<Edge>(g_.OutEdges(u))) {
    if (e.kind != DepKind::kFlow || !sched_->IsScheduled(e.dst)) continue;
    const OpClass op_c = g_.node(e.dst).op;
    BankId read;
    if (op_c == OpClass::kMove) {
      // The move will read whatever bank we define in; it only matters that
      // it is a cluster bank (moves cannot read the shared bank).
      if (def != kSharedBank) continue;
      read = sched_->ClusterOf(e.dst);
    } else {
      read = sched::ReadBank(op_c, sched_->ClusterOf(e.dst), rf);
    }
    if (def == read) continue;
    if (!FixEdge(e, def, read)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Cluster selection
// ---------------------------------------------------------------------------

int Scheduler::SelectCluster(NodeId u) {
  const RFConfig& rf = m_.rf;
  if (!rf.HasClusters()) return 0;
  const int x = rf.clusters;
  const Node& n = g_.node(u);

  // Communication and spill copies have their cluster dictated by the
  // scheduled endpoint they serve.
  if (n.op == OpClass::kLoadR) {
    for (const Edge& e : g_.FlowConsumers(u)) {
      if (sched_->IsScheduled(e.dst)) {
        const BankId b = sched::ReadBank(g_.node(e.dst).op,
                                         sched_->ClusterOf(e.dst), rf);
        if (b != kSharedBank) return b;
      }
    }
    return BalancedCluster(u);
  }
  if (n.op == OpClass::kStoreR) {
    for (const Edge& e : g_.FlowProducers(u)) {
      if (sched_->IsScheduled(e.src)) {
        const BankId b =
            sched::DefBank(g_.node(e.src).op, sched_->ClusterOf(e.src), rf);
        if (b != kSharedBank) return b;
      }
    }
    return BalancedCluster(u);
  }
  if (rf.IsPureClustered() && n.spill && IsMemory(n.op)) {
    // Spill stores read the producer's cluster; spill loads feed consumers.
    if (n.op == OpClass::kStore) {
      for (const Edge& e : g_.FlowProducers(u)) {
        if (sched_->IsScheduled(e.src)) return sched_->ClusterOf(e.src);
      }
    } else {
      for (const Edge& e : g_.FlowConsumers(u)) {
        if (sched_->IsScheduled(e.dst)) return sched_->ClusterOf(e.dst);
      }
    }
    return BalancedCluster(u);
  }

  switch (opt_.cluster_policy) {
    case ClusterPolicy::kRoundRobin:
      return (round_robin_++) % x;
    case ClusterPolicy::kFirstFit: {
      for (int c = 0; c < x; ++c) {
        const auto needs = sched::ResourceNeeds(n.op, c, 0, m_);
        const Window w = ComputeWindow(u);
        const int hi = w.has_succ && !w.has_pred ? w.late : w.early + sched_->ii() - 1;
        const int lo = w.has_succ && !w.has_pred ? w.late - sched_->ii() + 1 : w.early;
        for (int t = lo; t <= hi; ++t) {
          if (mrt_->CanPlace(needs, t)) return c;
        }
      }
      return 0;
    }
    case ClusterPolicy::kBalanced:
      return BalancedCluster(u);
  }
  return 0;
}

int Scheduler::BalancedCluster(NodeId u) {
  const RFConfig& rf = m_.rf;
  const int x = rf.clusters;
  const int ii = sched_->ii();
  const Node& n = g_.node(u);
  const Window w = ComputeWindow(u);

  // Per-cluster usage of FUs (cheap balance proxy) and def counts
  // (register-pressure proxy).
  std::vector<int> fu_use(static_cast<size_t>(x), 0);
  std::vector<int> defs(static_cast<size_t>(x), 0);
  for (NodeId v = 0; v < g_.NumSlots(); ++v) {
    if (!g_.IsAlive(v) || !sched_->IsScheduled(v)) continue;
    const int c = sched_->ClusterOf(v);
    if (c < 0 || c >= x) continue;
    if (IsCompute(g_.node(v).op)) ++fu_use[static_cast<size_t>(c)];
    const Node& nv = g_.node(v);
    if (DefinesValue(nv.op) &&
        sched::DefBank(nv.op, c, rf) == static_cast<BankId>(c)) {
      ++defs[static_cast<size_t>(c)];
    }
  }

  double best_cost = std::numeric_limits<double>::max();
  int best = 0;
  for (int c = 0; c < x; ++c) {
    // Communication the placement would require.
    int comm = 0;
    for (const Edge& e : g_.InEdges(u)) {
      if (e.kind != DepKind::kFlow || !sched_->IsScheduled(e.src)) continue;
      const BankId def =
          sched::DefBank(g_.node(e.src).op, sched_->ClusterOf(e.src), rf);
      const BankId read = sched::ReadBank(n.op, c, rf);
      if (def != read) ++comm;
    }
    if (DefinesValue(n.op)) {
      const BankId def = sched::DefBank(n.op, c, rf);
      for (const Edge& e : g_.OutEdges(u)) {
        if (e.kind != DepKind::kFlow || !sched_->IsScheduled(e.dst)) continue;
        const Node& nc = g_.node(e.dst);
        if (nc.op == OpClass::kMove) continue;
        const BankId read =
            sched::ReadBank(nc.op, sched_->ClusterOf(e.dst), rf);
        if (def != read) ++comm;
      }
    }
    // Slot availability inside the dependence window.
    bool free_slot = false;
    {
      const auto needs = sched::ResourceNeeds(n.op, c, 0, m_);
      const bool bottom_up = w.has_succ && !w.has_pred;
      const int lo = bottom_up ? w.late - ii + 1 : w.early;
      const int hi = bottom_up
                         ? w.late
                         : (w.has_succ ? std::min(w.late, w.early + ii - 1)
                                       : w.early + ii - 1);
      for (int t = lo; t <= hi; ++t) {
        if (mrt_->CanPlace(needs, t)) {
          free_slot = true;
          break;
        }
      }
    }
    const double fu_cap = static_cast<double>(m_.FusPerCluster()) * ii;
    const double reg_cap =
        rf.UnboundedClusterRegs() ? 1e9 : static_cast<double>(rf.cluster_regs);
    // A missing slot almost certainly means forcing and ejection, so it
    // outweighs a couple of communication operations; communication in turn
    // outweighs the soft balancing terms.
    const double cost = 3.0 * comm + 8.0 * (free_slot ? 0 : 1) +
                        fu_use[static_cast<size_t>(c)] / fu_cap +
                        defs[static_cast<size_t>(c)] / reg_cap;
    if (cost < best_cost) {
      best_cost = cost;
      best = c;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Spilling
// ---------------------------------------------------------------------------

// Re-places every reload-style copy (spill loads, LoadR) at the latest
// feasible slot inside its dependence window. Ejection churn during the
// iterative process can strand a reload far from the consumers it feeds,
// which recreates exactly the long register lifetime the spill was meant to
// remove; sinking is cheap and always legal (the old slot stays feasible).
void Scheduler::SinkReloads() {
  const int ii = sched_->ii();
  for (NodeId v = 0; v < g_.NumSlots(); ++v) {
    if (!g_.IsAlive(v) || !sched_->IsScheduled(v)) continue;
    const Node& n = g_.node(v);
    const bool reload =
        n.op == OpClass::kLoadR || (n.spill && n.op == OpClass::kLoad);
    if (!reload) continue;
    const sched::Placement old = sched_->Of(v);
    const auto needs =
        sched::ResourceNeeds(n.op, old.cluster, old.src_cluster, m_);
    mrt_->Remove(v);
    sched_->Unassign(v);
    const Window w = ComputeWindow(v);
    int t = old.cycle;
    if (w.has_succ) {
      const int lo = w.has_pred ? std::max(w.early, w.late - ii + 1)
                                : w.late - ii + 1;
      for (int cand = w.late; cand >= lo; --cand) {
        if (mrt_->CanPlace(needs, cand)) {
          t = cand;
          break;
        }
      }
    }
    if (!mrt_->CanPlace(needs, t)) t = old.cycle;
    mrt_->Place(v, needs, t);
    sched_->Assign(v, {t, old.cluster, old.src_cluster, true});
  }
}

void Scheduler::CheckAndInsertSpill() {
  const RFConfig& rf = m_.rf;
  const bool cluster_bounded = rf.HasClusters() && !rf.UnboundedClusterRegs();
  const bool shared_bounded = rf.HasSharedBank() && !rf.UnboundedSharedRegs();
  if (!cluster_bounded && !shared_bounded) return;

  const sched::PressureReport pr =
      sched::ComputePressure(g_, *sched_, m_, overrides_);

  if (cluster_bounded) {
    for (int c = 0; c < rf.clusters; ++c) {
      if (pr.cluster_maxlive[static_cast<size_t>(c)] >
          sched::BankCapacity(c, rf)) {
        if (!SpillFromBank(c, pr)) SpillInvariantFromBank(c);
      }
    }
  }
  if (shared_bounded &&
      pr.shared_maxlive > sched::BankCapacity(kSharedBank, rf)) {
    if (!SpillFromBank(kSharedBank, pr)) SpillInvariantFromBank(kSharedBank);
  }
}

bool Scheduler::SpillFromBank(BankId bank, const sched::PressureReport& pr) {
  const RFConfig& rf = m_.rf;
  // Spill destination: cluster banks of hierarchical organizations spill
  // into the shared bank (StoreR/LoadR, no memory traffic); everything else
  // spills to memory.
  const bool to_shared = rf.IsHierarchical() && bank != kSharedBank;

  const int min_len =
      to_shared ? m_.lat.storer + m_.lat.loadr + 2
                : 2 * (m_.lat.store + m_.lat.load_hit + 2);

  const sched::ValueLifetime* best = nullptr;
  double best_score = 0.0;
  for (const sched::ValueLifetime& v : pr.values) {
    if (v.bank != bank || v.uses < 1 || v.Length() <= min_len) continue;
    if (spilled_.contains(v.def)) continue;
    const Node& nd = g_.node(v.def);
    // Never spill a communication chain's value: chains are owned by the
    // fix records and are re-routed by ejection, not by the spill engine
    // (rewiring a chain edge would orphan its fix record).
    if (IsCommunication(nd.op) && nd.inserted && !nd.spill) continue;
    // Never spill a spill copy of the same level again.
    if (nd.spill && to_shared && nd.op == OpClass::kLoadR) continue;
    if (nd.spill && !to_shared && nd.op == OpClass::kLoad) continue;
    const double score = static_cast<double>(v.Length()) / (v.uses + 1);
    if (best == nullptr || score > best_score) {
      best = &v;
      best_score = score;
    }
  }
  if (best == nullptr) return false;

  const NodeId def = best->def;
  spilled_.insert(def);

  // Consumers to reroute: every flow consumer except the earliest
  // scheduled one (keeping one direct use preserves the short head of the
  // lifetime) -- unless even that earliest read is far away, in which case
  // everything goes through the reload so the spill actually pays off.
  std::vector<Edge> consumers;
  Edge keep{kNoNode, kNoNode, DepKind::kFlow, 0};
  int keep_time = std::numeric_limits<int>::max();
  for (const Edge& e : g_.FlowConsumers(def)) {
    // Chain nodes stay wired to the value's home; only original and spill
    // consumers are re-routed through the reload (see candidate filter).
    const Node& nc = g_.node(e.dst);
    if (IsCommunication(nc.op) && nc.inserted && !nc.spill) continue;
    consumers.push_back(e);
    if (sched_->IsScheduled(e.dst)) {
      const int read = sched_->CycleOf(e.dst) + e.distance * sched_->ii();
      if (read < keep_time) {
        keep_time = read;
        keep = e;
      }
    }
  }
  if (keep.src != kNoNode &&
      (consumers.size() <= 1 || keep_time - best->start > 2 * min_len)) {
    // A single (or uniformly distant) consumer still benefits: split the
    // whole lifetime.
    keep = Edge{kNoNode, kNoNode, DepKind::kFlow, 0};
  }

  const double base_prio = priority_[static_cast<size_t>(def)];
  // Reloads must schedule *after* every consumer they feed, so their
  // bottom-up placement is anchored by the consumers' slots; otherwise the
  // reload lands early and recreates the long lifetime it was meant to cut.
  double reload_prio = base_prio - 0.6;
  for (const Edge& e : consumers) {
    reload_prio =
        std::min(reload_prio, priority_[static_cast<size_t>(e.dst)] - 0.1);
  }
  // One store-side copy; one reload per distinct loop-carried distance
  // among the rerouted consumers. The carried distance rides the hop into
  // the spill home (shared bank or memory), so the post-reload register
  // lifetime is short -- this is what makes spilling effective for the
  // long cross-iteration lifetimes of software-pipelined loops.
  NodeId s;
  if (to_shared) {
    Node ns;
    ns.op = OpClass::kStoreR;
    ns.spill = true;
    s = NewNode(std::move(ns), base_prio - 0.3);
    g_.AddFlow(def, s, 0);
    ++stats_.storer_ops;
  } else {
    Node ns;
    ns.op = OpClass::kStore;
    ns.spill = true;
    ns.mem = MemRef{next_spill_array_, 0, 8};
    s = NewNode(std::move(ns), base_prio - 0.3);
    g_.AddFlow(def, s, 0);
    ++stats_.spill_stores;
  }

  std::map<int, NodeId> reload_by_distance;
  auto reload_for = [&](int distance) {
    auto it = reload_by_distance.find(distance);
    if (it != reload_by_distance.end()) return it->second;
    NodeId l;
    if (to_shared) {
      Node nl;
      nl.op = OpClass::kLoadR;
      nl.spill = true;
      l = NewNode(std::move(nl), reload_prio);
      g_.AddFlow(s, l, distance);
      ++stats_.loadr_ops;
    } else {
      Node nl;
      nl.op = OpClass::kLoad;
      nl.spill = true;
      nl.mem = MemRef{next_spill_array_, 0, 8};
      l = NewNode(std::move(nl), reload_prio);
      g_.AddEdge(s, l, DepKind::kMem, distance);
      ++stats_.spill_loads;
    }
    reload_by_distance.emplace(distance, l);
    return l;
  };

  for (const Edge& e : consumers) {
    if (e.src == keep.src && e.dst == keep.dst && e.distance == keep.distance &&
        e.kind == keep.kind) {
      continue;
    }
    const bool removed = g_.RemoveEdge(e.src, e.dst, e.kind, e.distance);
    assert(removed);
    (void)removed;
    g_.AddEdge(reload_for(e.distance), e.dst, DepKind::kFlow, 0);
  }
  if (!to_shared) ++next_spill_array_;
  return true;
}

bool Scheduler::SpillInvariantFromBank(BankId bank) {
  const RFConfig& rf = m_.rf;
  // Hierarchical master copies are not spilled (the shared bank is the
  // invariant's home); monolithic organizations reload from memory.
  if (bank == kSharedBank && !rf.IsMonolithic()) return false;
  // Pick the first invariant with scheduled consumers reading this bank.
  for (std::int32_t inv = 0; inv < g_.num_invariants(); ++inv) {
    if (spilled_invariants_.contains({inv, bank})) continue;
    std::vector<NodeId> users;
    for (NodeId v = 0; v < g_.NumSlots(); ++v) {
      if (!g_.IsAlive(v)) continue;
      const Node& n = g_.node(v);
      if (std::find(n.invariant_uses.begin(), n.invariant_uses.end(), inv) ==
          n.invariant_uses.end()) {
        continue;
      }
      if (!sched_->IsScheduled(v)) continue;
      if (sched::ReadBank(n.op, sched_->ClusterOf(v), rf) != bank) continue;
      users.push_back(v);
    }
    if (users.empty()) continue;
    spilled_invariants_.insert({inv, bank});

    for (NodeId w : users) {
      Node nl;
      nl.spill = true;
      if (rf.IsHierarchical()) {
        // Reload from the shared master copy.
        nl.op = OpClass::kLoadR;
        nl.invariant_uses = {inv};
      } else {
        // Reload from memory (stride 0: the invariant's home location).
        nl.op = OpClass::kLoad;
        nl.mem = MemRef{next_spill_array_, 0, 0};
        ++stats_.spill_loads;
      }
      const NodeId l =
          NewNode(std::move(nl), priority_[static_cast<size_t>(w)] + 0.1);
      auto& uses = g_.node(w).invariant_uses;
      uses.erase(std::find(uses.begin(), uses.end(), inv));
      g_.AddFlow(l, w, 0);
    }
    if (!rf.IsHierarchical()) ++next_spill_array_;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Main loops
// ---------------------------------------------------------------------------

bool Scheduler::TryII(int ii) {
  g_ = original_;
  overrides_ = base_overrides_;
  mrt_ = std::make_unique<sched::ModuloReservationTable>(m_, ii);
  sched_ = std::make_unique<sched::PartialSchedule>(ii);
  fixes_.clear();
  spilled_.clear();
  since_spill_check_ = 0;
  churning_ = false;
  eject_count_.assign(4096, 0);
  spilled_invariants_.clear();
  next_spill_array_ = kSpillArrayBase;
  round_robin_ = 0;

  const std::vector<NodeId> order = sched::HrmsOrder(g_, m_.lat);
  priority_.assign(static_cast<size_t>(g_.NumSlots()), 0.0);
  unscheduled_.assign(static_cast<size_t>(g_.NumSlots()), 0);
  prev_cycle_.assign(static_cast<size_t>(g_.NumSlots()), kNoCycle);
  num_unscheduled_ = 0;
  for (size_t r = 0; r < order.size(); ++r) {
    priority_[static_cast<size_t>(order[r])] =
        static_cast<double>(order.size() - r);
  }
  for (NodeId v : order) {
    unscheduled_[static_cast<size_t>(v)] = 1;
    ++num_unscheduled_;
  }
  budget_ = opt_.budget_ratio * g_.NumNodes();
  budget_granted_ = 0;

  while (true) {
  while (num_unscheduled_ > 0) {
    if (churning_) return false;  // livelocked eject ping-pong: bump the II
    if (budget_ <= 0) {
      if (std::getenv("HCRF_DEBUG") != nullptr) {
        std::fprintf(stderr, "[hcrf] %s II=%d budget exhausted (%d left)\n",
                     original_.name().c_str(), ii, num_unscheduled_);
        for (NodeId v = 0; v < g_.NumSlots() && v < 4096; ++v) {
          if (eject_count_[static_cast<size_t>(v)] > 20) {
            std::fprintf(stderr, "   node %d (%s%s%s) ejected %ld times\n", v,
                         ToString(g_.node(v).op).data(),
                         g_.node(v).inserted ? ",ins" : "",
                         g_.node(v).spill ? ",spill" : "",
                         eject_count_[static_cast<size_t>(v)]);
          }
        }
      }
      return false;
    }
    const NodeId u = PickHighestPriority();
    assert(u != kNoNode);
    if (u == kNoNode) return false;  // defensive: bookkeeping desync
    const int cluster = SelectCluster(u);
    int src_cluster = 0;
    if (g_.node(u).op == OpClass::kMove) {
      // Re-scheduled move: the source side is its producer's bank.
      const auto producers = g_.FlowProducers(u);
      if (!producers.empty() && sched_->IsScheduled(producers.front().src)) {
        src_cluster = sched_->ClusterOf(producers.front().src);
      }
    }
    if (!EnsureCommunication(u, cluster)) return false;
    if (!ScheduleNode(u, cluster, src_cluster)) return false;
    // Register-pressure checks are O(values); checking every few
    // placements (and always when the list drains) keeps the paper's
    // incremental-spill behaviour at a fraction of the cost.
    if (++since_spill_check_ >= 4 || num_unscheduled_ == 0) {
      since_spill_check_ = 0;
      CheckAndInsertSpill();
    }
  }

  // Sink reloads towards their consumers. Sinking can lengthen shared-bank
  // residencies (that is its purpose: the shared bank absorbs the carried
  // distances), which may in turn require further spilling of shared
  // values to memory -- so iterate sink -> spill -> schedule to a fixpoint
  // (bounded: each value spills at most once per attempt).
  SinkReloads();
  CheckAndInsertSpill();
  if (num_unscheduled_ > 0) {
    if (budget_ <= 0) return false;
    continue;
  }
  break;
  }

  // Final register allocation check: every bank within capacity.
  const sched::PressureReport pr =
      sched::ComputePressure(g_, *sched_, m_, overrides_);
  const RFConfig& rf = m_.rf;
  if (rf.HasSharedBank() && !rf.UnboundedSharedRegs() &&
      pr.shared_maxlive > sched::BankCapacity(kSharedBank, rf)) {
    if (std::getenv("HCRF_DEBUG") != nullptr) {
      std::fprintf(stderr, "[hcrf] %s II=%d shared over capacity: %d > %ld\n",
                   original_.name().c_str(), ii, pr.shared_maxlive,
                   sched::BankCapacity(kSharedBank, rf));
      if (std::getenv("HCRF_DEBUG_LIFETIMES") != nullptr) {
        for (const auto& v : pr.values) {
          if (v.bank != kSharedBank || v.Length() <= 0) continue;
          std::fprintf(stderr, "   def %d (%s%s) [%d,%d) len %d uses %d%s\n",
                       v.def, ToString(g_.node(v.def).op).data(),
                       g_.node(v.def).spill ? ",spill" : "", v.start, v.end,
                       v.Length(), v.uses,
                       spilled_.contains(v.def) ? " SPILLED" : "");
        }
      }
    }
    return false;
  }
  for (int c = 0; c < rf.clusters; ++c) {
    if (!rf.UnboundedClusterRegs() &&
        pr.cluster_maxlive[static_cast<size_t>(c)] >
            sched::BankCapacity(c, rf)) {
      if (std::getenv("HCRF_DEBUG") != nullptr) {
        std::fprintf(stderr, "[hcrf] %s II=%d cluster %d over capacity: %d\n",
                     original_.name().c_str(), ii, c,
                     pr.cluster_maxlive[static_cast<size_t>(c)]);
      }
      return false;
    }
  }

  const sched::ValidationResult vr =
      sched::Validate(g_, *sched_, m_, overrides_);
  if (!vr.ok && std::getenv("HCRF_DEBUG") != nullptr) {
    std::fprintf(stderr, "[hcrf] %s II=%d validation failed: %s\n",
                 original_.name().c_str(), ii, vr.error.c_str());
  }
  return vr.ok;
}

ScheduleResult Scheduler::Run() {
  ScheduleResult res;
  const MIIInfo mii = ComputeMII(original_, m_);
  res.res_mii = mii.res_mii;
  res.rec_mii = mii.rec_mii;
  res.mii = mii.MII();

  int consecutive_failures = 0;
  for (int ii = res.mii; ii <= opt_.max_ii;
       ii += consecutive_failures > 24 ? std::max(1, ii / 8) : 1) {
    if (TryII(ii)) {
      res.ok = true;
      res.ii = ii;
      sched_->Normalize();
      res.sc = sched_->StageCount();
      res.stats = stats_;
      res.stats.restarts = ii - res.mii;
      // Count communication and memory ops in the final graph.
      res.stats.comm_ops = 0;
      res.stats.loadr_ops = 0;
      res.stats.storer_ops = 0;
      res.stats.move_ops = 0;
      res.stats.spill_loads = 0;
      res.stats.spill_stores = 0;
      res.mem_ops_per_iter = 0;
      for (NodeId v = 0; v < g_.NumSlots(); ++v) {
        if (!g_.IsAlive(v)) continue;
        const Node& n = g_.node(v);
        if (IsCommunication(n.op)) {
          ++res.stats.comm_ops;
          if (n.op == OpClass::kLoadR) ++res.stats.loadr_ops;
          if (n.op == OpClass::kStoreR) ++res.stats.storer_ops;
          if (n.op == OpClass::kMove) ++res.stats.move_ops;
        }
        if (IsMemory(n.op)) {
          ++res.mem_ops_per_iter;
          if (n.spill) {
            if (n.op == OpClass::kLoad) ++res.stats.spill_loads;
            if (n.op == OpClass::kStore) ++res.stats.spill_stores;
          }
        }
      }
      const int rec_final = RecMII(g_, m_.lat);
      res.bound = ClassifyBound(g_, m_, ii, rec_final);
      res.graph = std::move(g_);
      res.schedule = std::move(*sched_);
      res.overrides = std::move(overrides_);
      return res;
    }
    ++consecutive_failures;
  }
  res.ok = false;
  res.stats = stats_;
  return res;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

ScheduleResult MirsHC(const DDG& loop, const MachineConfig& m,
                      const MirsOptions& opt,
                      const sched::LatencyOverrides& load_overrides) {
  Scheduler s(loop, m, opt, load_overrides);
  return s.Run();
}

BoundClass ClassifyBound(const DDG& final_graph, const MachineConfig& m,
                         int achieved_ii, int rec_mii) {
  const DDG::OpCounts c = final_graph.CountOps(m.lat);
  const double ii = achieved_ii;
  const double fu_frac =
      static_cast<double>(c.compute_occupancy) / (m.num_fus * ii);
  const double mem_frac =
      static_cast<double>(c.memory) / (m.num_mem_ports * ii);
  double comm_frac = 0.0;
  const RFConfig& rf = m.rf;
  if (rf.HasClusters()) {
    int loadrs = 0;
    int storers = 0;
    int moves = 0;
    for (NodeId v = 0; v < final_graph.NumSlots(); ++v) {
      if (!final_graph.IsAlive(v)) continue;
      switch (final_graph.node(v).op) {
        case OpClass::kLoadR: ++loadrs; break;
        case OpClass::kStoreR: ++storers; break;
        case OpClass::kMove: ++moves; break;
        default: break;
      }
    }
    auto frac = [&](int count, long bandwidth) {
      if (bandwidth <= 0) return 0.0;
      return static_cast<double>(count) / (static_cast<double>(bandwidth) * ii);
    };
    if (rf.IsHierarchical()) {
      const long lp_bw = rf.UnboundedPorts()
                             ? 1L << 20
                             : static_cast<long>(rf.clusters) * rf.lp;
      const long sp_bw = rf.UnboundedPorts()
                             ? 1L << 20
                             : static_cast<long>(rf.clusters) * rf.sp;
      comm_frac = std::max(frac(loadrs, lp_bw), frac(storers, sp_bw));
    } else {
      comm_frac = frac(moves, rf.buses);
    }
  }
  const double rec_frac = rec_mii > 1 ? rec_mii / ii : 0.0;

  // Winner = the component closest to saturating the achieved II.
  double best = mem_frac;
  BoundClass cls = BoundClass::kMemPort;
  if (fu_frac > best) {
    best = fu_frac;
    cls = BoundClass::kFU;
  }
  if (rec_frac > best) {
    best = rec_frac;
    cls = BoundClass::kRecurrence;
  }
  if (comm_frac > best) {
    best = comm_frac;
    cls = BoundClass::kComm;
  }
  return cls;
}

}  // namespace hcrf::core
