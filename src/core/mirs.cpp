#include "core/mirs.h"

#include <algorithm>

#include "core/engine.h"
#include "ddg/mii.h"

namespace hcrf::core {

std::string_view ToString(BoundClass b) {
  switch (b) {
    case BoundClass::kFU: return "FU";
    case BoundClass::kMemPort: return "MemPort";
    case BoundClass::kRecurrence: return "Rec";
    case BoundClass::kComm: return "Com";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

ScheduleResult MirsHC(const DDG& loop, const MachineConfig& m,
                      const MirsOptions& opt,
                      const sched::LatencyOverrides& load_overrides) {
  EngineDriver engine(loop, m, opt, load_overrides);
  return engine.Run();
}

BoundClass ClassifyBound(const DDG& final_graph, const MachineConfig& m,
                         int achieved_ii, int rec_mii) {
  const DDG::OpCounts c = final_graph.CountOps(m.lat);
  const double ii = achieved_ii;
  const double fu_frac =
      static_cast<double>(c.compute_occupancy) / (m.num_fus * ii);
  const double mem_frac =
      static_cast<double>(c.memory) / (m.num_mem_ports * ii);
  double comm_frac = 0.0;
  const RFConfig& rf = m.rf;
  if (rf.HasClusters()) {
    int loadrs = 0;
    int storers = 0;
    int moves = 0;
    for (NodeId v = 0; v < final_graph.NumSlots(); ++v) {
      if (!final_graph.IsAlive(v)) continue;
      switch (final_graph.node(v).op) {
        case OpClass::kLoadR: ++loadrs; break;
        case OpClass::kStoreR: ++storers; break;
        case OpClass::kMove: ++moves; break;
        default: break;
      }
    }
    auto frac = [&](int count, long bandwidth) {
      if (bandwidth <= 0) return 0.0;
      return static_cast<double>(count) / (static_cast<double>(bandwidth) * ii);
    };
    if (rf.IsHierarchical()) {
      const long lp_bw = rf.UnboundedPorts()
                             ? 1L << 20
                             : static_cast<long>(rf.clusters) * rf.lp;
      const long sp_bw = rf.UnboundedPorts()
                             ? 1L << 20
                             : static_cast<long>(rf.clusters) * rf.sp;
      comm_frac = std::max(frac(loadrs, lp_bw), frac(storers, sp_bw));
    } else {
      comm_frac = frac(moves, rf.buses);
    }
  }
  const double rec_frac = rec_mii > 1 ? rec_mii / ii : 0.0;

  // Winner = the component closest to saturating the achieved II.
  double best = mem_frac;
  BoundClass cls = BoundClass::kMemPort;
  if (fu_frac > best) {
    best = fu_frac;
    cls = BoundClass::kFU;
  }
  if (rec_frac > best) {
    best = rec_frac;
    cls = BoundClass::kRecurrence;
  }
  if (comm_frac > best) {
    best = comm_frac;
    cls = BoundClass::kComm;
  }
  return cls;
}

}  // namespace hcrf::core
