#include "core/mirs.h"

#include <algorithm>
#include <chrono>

#include "core/engine.h"
#include "ddg/mii.h"
#include "obs/metrics.h"

namespace hcrf::core {

namespace {

/// Mirrors one finished run's counters into the process-wide registry —
/// once, from the final ScheduleResult, so the registry totals reconcile
/// exactly with the summed ScheduleStats of every MirsHC call (asserted in
/// test_obs.cpp). The engine's hot path never touches the registry.
void RecordRunMetrics(const ScheduleResult& res, double seconds) {
  static obs::Counter& runs = obs::GetCounter("engine.runs");
  static obs::Counter& failed = obs::GetCounter("engine.failed_runs");
  static obs::Counter& attempts = obs::GetCounter("engine.attempts");
  static obs::Counter& ejections = obs::GetCounter("engine.ejections");
  static obs::Counter& forced = obs::GetCounter("engine.force_places");
  static obs::Counter& restarts = obs::GetCounter("engine.restarts");
  static obs::Counter& spills = obs::GetCounter("engine.spills_inserted");
  static obs::Counter& chains_built = obs::GetCounter("engine.chains_built");
  static obs::Counter& chains_undone = obs::GetCounter("engine.chains_undone");
  static obs::Counter& raced = obs::GetCounter("engine.spec_raced");
  static obs::Counter& raced_wins = obs::GetCounter("engine.spec_raced_wins");
  static obs::Counter& cancelled = obs::GetCounter("engine.spec_cancelled");
  static obs::Histogram& latency = obs::GetHistogram("engine.schedule_seconds");
  runs.Add(1);
  if (!res.ok) failed.Add(1);
  attempts.Add(res.stats.attempts);
  ejections.Add(res.stats.ejections);
  forced.Add(res.stats.force_places);
  restarts.Add(res.stats.restarts);
  spills.Add(res.stats.spills_inserted);
  chains_built.Add(res.stats.chains_built);
  chains_undone.Add(res.stats.chains_undone);
  raced.Add(res.spec.raced);
  raced_wins.Add(res.spec.raced_wins);
  cancelled.Add(res.spec.cancelled);
  latency.Record(seconds);
}

}  // namespace

std::string_view ToString(BoundClass b) {
  switch (b) {
    case BoundClass::kFU: return "FU";
    case BoundClass::kMemPort: return "MemPort";
    case BoundClass::kRecurrence: return "Rec";
    case BoundClass::kComm: return "Com";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

ScheduleResult MirsHC(const DDG& loop, const MachineConfig& m,
                      const MirsOptions& opt,
                      const sched::LatencyOverrides& load_overrides) {
  const auto t0 = std::chrono::steady_clock::now();
  EngineDriver engine(loop, m, opt, load_overrides);
  ScheduleResult res = engine.Run();
  RecordRunMetrics(res, std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
  return res;
}

BoundClass ClassifyBound(const DDG& final_graph, const MachineConfig& m,
                         int achieved_ii, int rec_mii) {
  const DDG::OpCounts c = final_graph.CountOps(m.lat);
  const double ii = achieved_ii;
  const double fu_frac =
      static_cast<double>(c.compute_occupancy) / (m.num_fus * ii);
  const double mem_frac =
      static_cast<double>(c.memory) / (m.num_mem_ports * ii);
  double comm_frac = 0.0;
  const RFConfig& rf = m.rf;
  if (rf.HasClusters()) {
    int loadrs = 0;
    int storers = 0;
    int moves = 0;
    for (NodeId v = 0; v < final_graph.NumSlots(); ++v) {
      if (!final_graph.IsAlive(v)) continue;
      switch (final_graph.node(v).op) {
        case OpClass::kLoadR: ++loadrs; break;
        case OpClass::kStoreR: ++storers; break;
        case OpClass::kMove: ++moves; break;
        default: break;
      }
    }
    auto frac = [&](int count, long bandwidth) {
      if (bandwidth <= 0) return 0.0;
      return static_cast<double>(count) / (static_cast<double>(bandwidth) * ii);
    };
    if (rf.IsHierarchical()) {
      const long lp_bw = rf.UnboundedPorts()
                             ? 1L << 20
                             : static_cast<long>(rf.clusters) * rf.lp;
      const long sp_bw = rf.UnboundedPorts()
                             ? 1L << 20
                             : static_cast<long>(rf.clusters) * rf.sp;
      comm_frac = std::max(frac(loadrs, lp_bw), frac(storers, sp_bw));
    } else {
      comm_frac = frac(moves, rf.buses);
    }
  }
  const double rec_frac = rec_mii > 1 ? rec_mii / ii : 0.0;

  // Winner = the component closest to saturating the achieved II.
  double best = mem_frac;
  BoundClass cls = BoundClass::kMemPort;
  if (fu_frac > best) {
    best = fu_frac;
    cls = BoundClass::kFU;
  }
  if (rec_frac > best) {
    best = rec_frac;
    cls = BoundClass::kRecurrence;
  }
  if (comm_frac > best) {
    best = comm_frac;
    cls = BoundClass::kComm;
  }
  return cls;
}

}  // namespace hcrf::core
