// Policy layer of the scheduling engine: the pluggable heuristics of
// MIRS_HC, separated from the engine driver that applies them.
//
//  * NodeOrderPolicy     -- scheduling order / priorities (default: the
//                           HRMS-style register-sensitive ordering).
//  * ClusterSelector     -- which cluster a structurally unconstrained node
//                           goes to (paper's Select_Cluster heuristic vs
//                           round-robin / first-fit ablations).
//  * SpillVictimPolicy   -- which lifetime to split when a bank overflows.
//
// Selectors may keep per-run state (round-robin's counter); the engine
// creates one instance per MirsHC run from a factory, so a MirsOptions
// value holding a factory stays shareable across threads (the parallel
// suite runner copies one RunOptions into many concurrent runs).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "core/sched_state.h"
#include "ddg/ddg.h"
#include "machine/machine_config.h"
#include "sched/lifetime.h"

namespace hcrf::core {

enum class ClusterPolicy : std::uint8_t {
  kBalanced,    ///< Paper's heuristic: slots + communication + registers.
  kRoundRobin,  ///< Ablation: cyclic assignment.
  kFirstFit,    ///< Ablation: lowest-index cluster with a free slot.
};

std::string_view ToString(ClusterPolicy p);

// ---------------------------------------------------------------------------
// Node ordering
// ---------------------------------------------------------------------------

class NodeOrderPolicy {
 public:
  virtual ~NodeOrderPolicy() = default;
  virtual std::string_view name() const = 0;
  /// Scheduling order of the original graph, front = highest priority.
  /// Computed once per run and reused across II attempts (the working graph
  /// starts every attempt as a fresh copy of the original).
  virtual std::vector<NodeId> Order(const DDG& g,
                                    const MachineConfig& m) const = 0;
};

/// The HRMS/Swing ordering of the paper (sched::HrmsOrder).
class HrmsOrderPolicy : public NodeOrderPolicy {
 public:
  std::string_view name() const override { return "hrms"; }
  std::vector<NodeId> Order(const DDG& g,
                            const MachineConfig& m) const override;
};

// ---------------------------------------------------------------------------
// Cluster selection
// ---------------------------------------------------------------------------

class ClusterSelector {
 public:
  virtual ~ClusterSelector() = default;
  virtual std::string_view name() const = 0;
  /// Picks the cluster for a node with no structural constraint (the
  /// engine routes communication/spill copies to the cluster dictated by
  /// the scheduled endpoint they serve before consulting the policy).
  virtual int Select(const SchedState& st, NodeId u) = 0;
  /// Called at the start of every II attempt (per-attempt state reset).
  virtual void Reset() {}
};

/// Paper Section 5.1: cost = communication ops the placement would create,
/// a penalty for having no free slot in the dependence window, and soft
/// FU-usage / register-pressure balancing terms.
class BalancedClusterSelector : public ClusterSelector {
 public:
  std::string_view name() const override { return "balanced"; }
  int Select(const SchedState& st, NodeId u) override;
};

class RoundRobinClusterSelector : public ClusterSelector {
 public:
  std::string_view name() const override { return "round-robin"; }
  int Select(const SchedState& st, NodeId u) override;
  void Reset() override { next_ = 0; }

 private:
  int next_ = 0;
};

class FirstFitClusterSelector : public ClusterSelector {
 public:
  std::string_view name() const override { return "first-fit"; }
  int Select(const SchedState& st, NodeId u) override;
};

/// Factory creating a fresh selector per run (thread-safe to share).
using ClusterSelectorFactory =
    std::function<std::unique_ptr<ClusterSelector>()>;

std::unique_ptr<ClusterSelector> MakeClusterSelector(ClusterPolicy p);
ClusterSelectorFactory MakeClusterSelectorFactory(ClusterPolicy p);

// ---------------------------------------------------------------------------
// Spill victim selection
// ---------------------------------------------------------------------------

class SpillVictimPolicy {
 public:
  virtual ~SpillVictimPolicy() = default;
  virtual std::string_view name() const = 0;
  /// Picks the lifetime to spill among `candidates` (already filtered to
  /// legal victims of the overflowing bank). nullptr = decline, the engine
  /// falls back to invariant spilling.
  virtual const sched::ValueLifetime* Pick(
      const std::vector<const sched::ValueLifetime*>& candidates) const = 0;
};

/// The paper's heuristic: maximize lifetime length per use (long, rarely
/// read values free the most registers per added memory/copy op).
class LongestPerUseSpillPolicy : public SpillVictimPolicy {
 public:
  std::string_view name() const override { return "longest-per-use"; }
  const sched::ValueLifetime* Pick(
      const std::vector<const sched::ValueLifetime*>& candidates)
      const override;
};

}  // namespace hcrf::core
