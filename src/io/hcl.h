// The .hcl interchange format: a versioned, line-oriented textual
// serialization of everything the scheduler consumes and produces —
// dependence graphs with their execution profile (loops), machine / RF
// configurations, scheduling options and schedule results.
//
// Design rules:
//  * Every document starts with `hcl <version> <kind>` and ends with `end`.
//  * Dumps are canonical: a fixed line order, node ids ascending, edges in
//    the graph's out-edge insertion order, doubles in shortest round-trip
//    form. Loading a canonical dump and dumping it again is byte-identical
//    (the round-trip property the corpus tools and the persistent schedule
//    cache rely on; unit-tested in tests/test_hcl_io.cpp).
//  * The loader is strict: unknown directives, unknown op/dependence
//    classes, dangling edges, duplicate ids and version mismatches are
//    rejected with an HclError carrying the offending line number.
//  * `#` starts a comment line; blank lines are ignored. Neither survives
//    a round-trip (the canonical dump emits none).
//  * Graph names are one token: the dumper replaces whitespace/control
//    characters (and a leading '#') with '_' so every dump reparses.
//
// Node ids are preserved exactly, including tombstones: a loop document
// declares `slots N` and lists only alive nodes; the loader re-tombstones
// the missing ids, so graphs that went through the scheduler's insert /
// remove churn serialize faithfully.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/mirs.h"
#include "machine/machine_config.h"
#include "workload/workload.h"

namespace hcrf::io {

/// Format version accepted and emitted by this build.
inline constexpr int kHclVersion = 1;

/// Parse failure: `what()` is "<file>:<line>: <message>".
class HclError : public std::runtime_error {
 public:
  HclError(std::string_view file, int line, const std::string& message);
  int line() const { return line_; }
  const std::string& message() const { return message_; }

 private:
  int line_;
  std::string message_;
};

// ---------------------------------------------------------------------------
// Loops (dependence graph + execution profile): `hcl 1 loop`.
// ---------------------------------------------------------------------------

std::string DumpLoop(const workload::Loop& loop);
workload::Loop ParseLoop(std::string_view text,
                         std::string_view filename = "<hcl>");

// ---------------------------------------------------------------------------
// Machine configurations: `hcl 1 machine`.
// ---------------------------------------------------------------------------

std::string DumpMachine(const MachineConfig& m);
MachineConfig ParseMachine(std::string_view text,
                           std::string_view filename = "<hcl>");

// ---------------------------------------------------------------------------
// Scheduling options: `hcl 1 options`.
//
// Serializes the value-typed subset of core::MirsOptions (budget_ratio,
// max_ii, iterative, cluster_policy). Injected policy objects, event sinks
// and precomputed MIIs are runtime-only and never serialized.
// ---------------------------------------------------------------------------

std::string DumpOptions(const core::MirsOptions& opt);
core::MirsOptions ParseOptions(std::string_view text,
                               std::string_view filename = "<hcl>");

/// ClusterPolicy by its ToString name ("balanced", "round-robin",
/// "first-fit"); nullopt when unknown. The single lookup shared by the
/// options parser, the manifest parser and the CLI.
std::optional<core::ClusterPolicy> ClusterPolicyFromName(
    std::string_view name);

// ---------------------------------------------------------------------------
// Schedule results: `hcl 1 result`.
//
// A full core::ScheduleResult: outcome, II/SC/MII breakdown, stats, the
// transformed graph (embedded loop-less graph section), latency overrides
// and the placement of every scheduled node. DumpResult(ParseResult(
// DumpResult(r))) == DumpResult(r), which is what makes cached schedules
// bit-identical to fresh ones.
// ---------------------------------------------------------------------------

std::string DumpResult(const core::ScheduleResult& result);
core::ScheduleResult ParseResult(std::string_view text,
                                 std::string_view filename = "<hcl>");

/// Shortest decimal representation that parses back to the exact same
/// double — the formatting every canonical .hcl dump (and the sweep spec
/// dumper) uses, so documents round-trip byte-identically.
std::string FormatDouble(double v);

// ---------------------------------------------------------------------------
// Strict whole-token numeric parsing. Unlike std::stol / std::stod, the
// entire token must be consumed: "4abc" and "1.5x" are rejected instead of
// silently truncated. Shared by the .hcl scanners and the CLI's validated
// flag parsing. Returns std::nullopt on any parse failure.
// ---------------------------------------------------------------------------

std::optional<long> TryParseLong(std::string_view tok);
std::optional<double> TryParseDouble(std::string_view tok);

// ---------------------------------------------------------------------------
// File helpers (thin wrappers; Parse* filenames feed error messages).
// ---------------------------------------------------------------------------

/// Reads a whole file; throws std::runtime_error on I/O failure.
std::string ReadFile(const std::string& path);
/// Writes atomically (temp file + rename) so concurrent readers never see
/// a torn document; throws std::runtime_error on I/O failure.
void WriteFileAtomic(const std::string& path, std::string_view text);

workload::Loop LoadLoopFile(const std::string& path);
MachineConfig LoadMachineFile(const std::string& path);
core::ScheduleResult LoadResultFile(const std::string& path);

}  // namespace hcrf::io
