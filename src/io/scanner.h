// Shared lexing layer of the .hcl family of formats: whitespace
// tokenization with 1-based line numbers, comment/blank skipping, and
// strict token -> number conversions that fail with line-carrying
// HclErrors. Used by the document parsers in hcl.cpp and the manifest
// parser in service/batch.cpp so the two cannot drift.
#pragma once

#include <string_view>
#include <vector>

#include "io/hcl.h"

namespace hcrf::io {

/// One non-blank, non-comment input line, split on spaces/tabs.
struct TokLine {
  int number = 0;  ///< 1-based line number in the source text.
  std::vector<std::string_view> toks;
};

/// Tokenized document with a cursor. Views point into the source text,
/// which must outlive the scanner.
struct Scanner {
  std::string_view file;
  std::vector<TokLine> lines;
  size_t pos = 0;

  bool Done() const { return pos >= lines.size(); }
  const TokLine& Peek() const { return lines[pos]; }
  const TokLine& Next() { return lines[pos++]; }
  /// Line number to blame when input ends unexpectedly.
  int LastLine() const { return lines.empty() ? 1 : lines.back().number; }
};

/// Splits `text` into token lines; `#`-prefixed and blank lines are
/// dropped (their numbers still count).
Scanner Tokenize(std::string_view text, std::string_view file);

[[noreturn]] void Fail(std::string_view file, int line,
                       const std::string& message);

/// Strict conversions: the whole token must parse.
long ScanLong(const Scanner& sc, int line, std::string_view tok,
              std::string_view what);
int ScanInt(const Scanner& sc, int line, std::string_view tok,
            std::string_view what);
double ScanDouble(const Scanner& sc, int line, std::string_view tok,
                  std::string_view what);

/// Enforces the exact operand count of a directive line.
void WantToks(const Scanner& sc, const TokLine& tl, size_t n);

/// Checks and consumes the `hcl <version> <kind>` header line (version
/// must be kHclVersion); shared by every document parser and the
/// manifest parser.
void ExpectHeader(Scanner& sc, std::string_view kind);

}  // namespace hcrf::io
