#include "io/hcl.h"

#include <unistd.h>

#include <atomic>

#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "io/scanner.h"

namespace hcrf::io {

// ---------------------------------------------------------------------------
// Scanner implementation (declared in io/scanner.h; shared with the
// manifest parser in service/batch.cpp)
// ---------------------------------------------------------------------------

[[noreturn]] void Fail(std::string_view file, int line,
                       const std::string& message) {
  throw HclError(file, line, message);
}

Scanner Tokenize(std::string_view text, std::string_view file) {
  Scanner sc;
  sc.file = file;
  int number = 0;
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t nl = text.find('\n', begin);
    const size_t end = nl == std::string_view::npos ? text.size() : nl;
    std::string_view line = text.substr(begin, end - begin);
    ++number;
    begin = end + 1;
    if (nl == std::string_view::npos && line.empty()) break;

    TokLine tl;
    tl.number = number;
    size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                                 line[i] == '\r')) {
        ++i;
      }
      size_t start = i;
      while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
             line[i] != '\r') {
        ++i;
      }
      if (i > start) tl.toks.push_back(line.substr(start, i - start));
    }
    if (tl.toks.empty() || tl.toks[0].front() == '#') continue;
    sc.lines.push_back(std::move(tl));
    if (nl == std::string_view::npos) break;
  }
  return sc;
}

std::optional<long> TryParseLong(std::string_view tok) {
  long v = 0;
  auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc() || ptr != tok.data() + tok.size() || tok.empty()) {
    return std::nullopt;
  }
  return v;
}

std::optional<double> TryParseDouble(std::string_view tok) {
  double v = 0;
  auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc() || ptr != tok.data() + tok.size() || tok.empty()) {
    return std::nullopt;
  }
  return v;
}

long ScanLong(const Scanner& sc, int line, std::string_view tok,
              std::string_view what) {
  const std::optional<long> v = TryParseLong(tok);
  if (!v) {
    Fail(sc.file, line,
         "expected integer for " + std::string(what) + ", got '" +
             std::string(tok) + "'");
  }
  return *v;
}

int ScanInt(const Scanner& sc, int line, std::string_view tok,
            std::string_view what) {
  const long v = ScanLong(sc, line, tok, what);
  if (v < INT32_MIN || v > INT32_MAX) {
    Fail(sc.file, line, std::string(what) + " out of range");
  }
  return static_cast<int>(v);
}

double ScanDouble(const Scanner& sc, int line, std::string_view tok,
                  std::string_view what) {
  const std::optional<double> v = TryParseDouble(tok);
  if (!v) {
    Fail(sc.file, line,
         "expected number for " + std::string(what) + ", got '" +
             std::string(tok) + "'");
  }
  return *v;
}

void WantToks(const Scanner& sc, const TokLine& tl, size_t n) {
  if (tl.toks.size() != n) {
    Fail(sc.file, tl.number,
         "directive '" + std::string(tl.toks[0]) + "' expects " +
             std::to_string(n - 1) + " operand(s), got " +
             std::to_string(tl.toks.size() - 1));
  }
}

void ExpectHeader(Scanner& sc, std::string_view kind) {
  if (sc.Done()) Fail(sc.file, 1, "empty document");
  const TokLine& tl = sc.Next();
  if (tl.toks[0] != "hcl" || tl.toks.size() != 3) {
    Fail(sc.file, tl.number, "expected header 'hcl <version> <kind>'");
  }
  const int version = ScanInt(sc, tl.number, tl.toks[1], "version");
  if (version != kHclVersion) {
    Fail(sc.file, tl.number,
         "unsupported hcl version " + std::to_string(version) +
             " (this build reads version " + std::to_string(kHclVersion) +
             ")");
  }
  if (tl.toks[2] != kind) {
    Fail(sc.file, tl.number,
         "expected a '" + std::string(kind) + "' document, got '" +
             std::string(tl.toks[2]) + "'");
  }
}

std::string FormatDouble(double v) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  return std::string(buf, ptr);
}

namespace {

OpClass ParseOpClass(const Scanner& sc, int line, std::string_view tok) {
  for (int i = 0; i < kNumOpClasses; ++i) {
    const OpClass op = static_cast<OpClass>(i);
    if (tok == ToString(op)) return op;
  }
  Fail(sc.file, line, "unknown op class '" + std::string(tok) + "'");
}

DepKind ParseDepKind(const Scanner& sc, int line, std::string_view tok) {
  for (DepKind k : {DepKind::kFlow, DepKind::kAnti, DepKind::kOutput,
                    DepKind::kMem}) {
    if (tok == ToString(k)) return k;
  }
  Fail(sc.file, line, "unknown dependence kind '" + std::string(tok) + "'");
}

core::BoundClass ParseBound(const Scanner& sc, int line,
                            std::string_view tok) {
  for (core::BoundClass b :
       {core::BoundClass::kFU, core::BoundClass::kMemPort,
        core::BoundClass::kRecurrence, core::BoundClass::kComm}) {
    if (tok == core::ToString(b)) return b;
  }
  Fail(sc.file, line, "unknown bound class '" + std::string(tok) + "'");
}

core::ClusterPolicy ParsePolicy(const Scanner& sc, int line,
                                std::string_view tok) {
  if (std::optional<core::ClusterPolicy> p = ClusterPolicyFromName(tok)) {
    return *p;
  }
  Fail(sc.file, line, "unknown cluster policy '" + std::string(tok) + "'");
}

// ---------------------------------------------------------------------------
// Graph body: shared between loop documents and embedded result graphs.
// ---------------------------------------------------------------------------

// Graph names are serialized as a single token: whitespace/control
// characters become '_' (and a leading '#' would read as a comment), so
// every dump reparses. Kernel and synthetic names are already clean.
std::string TokenSafeName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (static_cast<unsigned char>(c) <= ' ') c = '_';
  }
  if (!out.empty() && out[0] == '#') out[0] = '_';
  return out;
}

void DumpGraphBody(const DDG& g, std::string& out) {
  if (!g.name().empty()) out += "name " + TokenSafeName(g.name()) + "\n";
  out += "invariants " + std::to_string(g.num_invariants()) + "\n";
  out += "slots " + std::to_string(g.NumSlots()) + "\n";
  for (NodeId v = 0; v < g.NumSlots(); ++v) {
    if (!g.IsAlive(v)) continue;
    const Node& n = g.node(v);
    out += "node " + std::to_string(v) + " " + std::string(ToString(n.op));
    if (n.mem.has_value()) {
      out += " mem " + std::to_string(n.mem->array_id) + " " +
             std::to_string(n.mem->base) + " " + std::to_string(n.mem->stride);
    }
    if (!n.invariant_uses.empty()) {
      out += " inv " + std::to_string(n.invariant_uses.size());
      for (std::int32_t inv : n.invariant_uses) {
        out += " " + std::to_string(inv);
      }
    }
    if (n.inserted) out += " inserted";
    if (n.spill) out += " spill";
    out += "\n";
  }
  for (NodeId v = 0; v < g.NumSlots(); ++v) {
    if (!g.IsAlive(v)) continue;
    for (const Edge& e : g.OutEdges(v)) {
      out += "edge " + std::to_string(e.src) + " " + std::to_string(e.dst) +
             " " + std::string(ToString(e.kind)) + " " +
             std::to_string(e.distance) + "\n";
    }
  }
}

/// Accumulates graph directives and materializes the DDG (with tombstones
/// re-created and edges validated) when the section terminator is reached.
struct GraphBuilder {
  std::string name;
  int invariants = 0;
  int slots = -1;  ///< -1 until declared; must precede node/edge lines.
  struct NodeRec {
    Node node;
    bool defined = false;
  };
  std::vector<NodeRec> nodes;
  struct EdgeRec {
    NodeId src, dst;
    DepKind kind;
    int distance;
    int line;
  };
  std::vector<EdgeRec> edges;

  /// Returns true when the directive belongs to the graph body.
  bool Consume(const Scanner& sc, const TokLine& tl) {
    const std::string_view d = tl.toks[0];
    if (d == "name") {
      WantToks(sc, tl, 2);
      name = std::string(tl.toks[1]);
      return true;
    }
    if (d == "invariants") {
      WantToks(sc, tl, 2);
      invariants = ScanInt(sc, tl.number, tl.toks[1], "invariants");
      if (invariants < 0) Fail(sc.file, tl.number, "invariants < 0");
      return true;
    }
    if (d == "slots") {
      WantToks(sc, tl, 2);
      slots = ScanInt(sc, tl.number, tl.toks[1], "slots");
      if (slots < 0) Fail(sc.file, tl.number, "slots < 0");
      nodes.assign(static_cast<size_t>(slots), NodeRec{});
      return true;
    }
    if (d == "node") {
      ConsumeNode(sc, tl);
      return true;
    }
    if (d == "edge") {
      WantToks(sc, tl, 5);
      EdgeRec e{};
      e.src = ScanInt(sc, tl.number, tl.toks[1], "edge src");
      e.dst = ScanInt(sc, tl.number, tl.toks[2], "edge dst");
      e.kind = ParseDepKind(sc, tl.number, tl.toks[3]);
      e.distance = ScanInt(sc, tl.number, tl.toks[4], "edge distance");
      e.line = tl.number;
      edges.push_back(e);
      return true;
    }
    return false;
  }

  void ConsumeNode(const Scanner& sc, const TokLine& tl) {
    if (slots < 0) {
      Fail(sc.file, tl.number, "'node' before 'slots' declaration");
    }
    if (tl.toks.size() < 3) {
      Fail(sc.file, tl.number, "'node' expects '<id> <op> [attrs...]'");
    }
    const int id = ScanInt(sc, tl.number, tl.toks[1], "node id");
    if (id < 0 || id >= slots) {
      Fail(sc.file, tl.number,
           "node id " + std::to_string(id) + " outside [0, " +
               std::to_string(slots) + ")");
    }
    NodeRec& rec = nodes[static_cast<size_t>(id)];
    if (rec.defined) {
      Fail(sc.file, tl.number, "duplicate node id " + std::to_string(id));
    }
    rec.defined = true;
    rec.node.op = ParseOpClass(sc, tl.number, tl.toks[2]);
    size_t i = 3;
    while (i < tl.toks.size()) {
      const std::string_view attr = tl.toks[i];
      if (attr == "mem") {
        if (tl.toks.size() < i + 4) {
          Fail(sc.file, tl.number, "'mem' expects '<array> <base> <stride>'");
        }
        MemRef mr;
        mr.array_id = ScanInt(sc, tl.number, tl.toks[i + 1], "mem array");
        mr.base = ScanLong(sc, tl.number, tl.toks[i + 2], "mem base");
        mr.stride = ScanLong(sc, tl.number, tl.toks[i + 3], "mem stride");
        rec.node.mem = mr;
        i += 4;
      } else if (attr == "inv") {
        if (i + 1 >= tl.toks.size()) {
          Fail(sc.file, tl.number, "'inv' expects '<count> <ids...>'");
        }
        const int count = ScanInt(sc, tl.number, tl.toks[i + 1], "inv count");
        if (count < 0 || i + 2 + static_cast<size_t>(count) > tl.toks.size()) {
          Fail(sc.file, tl.number, "'inv' id list shorter than its count");
        }
        for (int k = 0; k < count; ++k) {
          rec.node.invariant_uses.push_back(
              ScanInt(sc, tl.number, tl.toks[i + 2 + k], "invariant id"));
        }
        i += 2 + static_cast<size_t>(count);
      } else if (attr == "inserted") {
        rec.node.inserted = true;
        ++i;
      } else if (attr == "spill") {
        rec.node.spill = true;
        ++i;
      } else {
        Fail(sc.file, tl.number,
             "unknown node attribute '" + std::string(attr) + "'");
      }
    }
  }

  DDG Build(const Scanner& sc, int end_line) const {
    if (slots < 0) Fail(sc.file, end_line, "graph missing 'slots'");
    DDG g(name);
    for (int i = 0; i < invariants; ++i) g.AddInvariant();
    for (int id = 0; id < slots; ++id) {
      g.AddNode(nodes[static_cast<size_t>(id)].node);
      if (!nodes[static_cast<size_t>(id)].defined) {
        g.RemoveNode(id, /*force=*/true);
      }
    }
    for (const EdgeRec& e : edges) {
      auto check_endpoint = [&](NodeId v, const char* which) {
        if (v < 0 || v >= slots ||
            !nodes[static_cast<size_t>(v)].defined) {
          Fail(sc.file, e.line,
               std::string("dangling edge: ") + which + " node " +
                   std::to_string(v) + " is not defined");
        }
      };
      check_endpoint(e.src, "source");
      check_endpoint(e.dst, "destination");
      if (e.distance < 0) Fail(sc.file, e.line, "edge distance < 0");
      if (e.src == e.dst && e.distance == 0) {
        Fail(sc.file, e.line, "zero-distance self edge");
      }
      g.AddEdge(e.src, e.dst, e.kind, e.distance);
    }
    for (int id = 0; id < slots; ++id) {
      for (std::int32_t inv : nodes[static_cast<size_t>(id)].node.invariant_uses) {
        if (inv < 0 || inv >= invariants) {
          Fail(sc.file, end_line,
               "node " + std::to_string(id) + " uses invariant " +
                   std::to_string(inv) + " outside [0, " +
                   std::to_string(invariants) + ")");
        }
      }
    }
    std::string why;
    if (!g.Check(&why)) {
      Fail(sc.file, end_line, "graph check failed: " + why);
    }
    return g;
  }
};

}  // namespace

HclError::HclError(std::string_view file, int line, const std::string& message)
    : std::runtime_error(std::string(file) + ":" + std::to_string(line) +
                         ": " + message),
      line_(line),
      message_(message) {}

std::optional<core::ClusterPolicy> ClusterPolicyFromName(
    std::string_view name) {
  for (core::ClusterPolicy p :
       {core::ClusterPolicy::kBalanced, core::ClusterPolicy::kRoundRobin,
        core::ClusterPolicy::kFirstFit}) {
    if (name == core::ToString(p)) return p;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Loops
// ---------------------------------------------------------------------------

std::string DumpLoop(const workload::Loop& loop) {
  std::string out = "hcl 1 loop\n";
  out += "trip " + std::to_string(loop.trip) + "\n";
  out += "invocations " + std::to_string(loop.invocations) + "\n";
  DumpGraphBody(loop.ddg, out);
  out += "end\n";
  return out;
}

workload::Loop ParseLoop(std::string_view text, std::string_view filename) {
  Scanner sc = Tokenize(text, filename);
  ExpectHeader(sc, "loop");
  workload::Loop loop;
  GraphBuilder gb;
  while (true) {
    if (sc.Done()) Fail(sc.file, sc.LastLine(), "missing 'end'");
    const TokLine& tl = sc.Next();
    const std::string_view d = tl.toks[0];
    if (d == "end") {
      loop.ddg = gb.Build(sc, tl.number);
      if (!sc.Done()) {
        Fail(sc.file, sc.Peek().number, "content after 'end'");
      }
      return loop;
    }
    if (d == "trip") {
      WantToks(sc, tl, 2);
      loop.trip = ScanLong(sc, tl.number, tl.toks[1], "trip");
      if (loop.trip <= 0) Fail(sc.file, tl.number, "trip must be positive");
    } else if (d == "invocations") {
      WantToks(sc, tl, 2);
      loop.invocations =
          ScanLong(sc, tl.number, tl.toks[1], "invocations");
      if (loop.invocations <= 0) {
        Fail(sc.file, tl.number, "invocations must be positive");
      }
    } else if (!gb.Consume(sc, tl)) {
      Fail(sc.file, tl.number, "unknown directive '" + std::string(d) + "'");
    }
  }
}

// ---------------------------------------------------------------------------
// Machine configurations
// ---------------------------------------------------------------------------

std::string DumpMachine(const MachineConfig& m) {
  std::string out = "hcl 1 machine\n";
  out += "fus " + std::to_string(m.num_fus) + "\n";
  out += "mem_ports " + std::to_string(m.num_mem_ports) + "\n";
  out += "rf clusters " + std::to_string(m.rf.clusters) + " cregs " +
         std::to_string(m.rf.cluster_regs) + " sregs " +
         std::to_string(m.rf.shared_regs) + " lp " + std::to_string(m.rf.lp) +
         " sp " + std::to_string(m.rf.sp) + " buses " +
         std::to_string(m.rf.buses) + "\n";
  out += "clock_ns " + FormatDouble(m.clock_ns) + "\n";
  const LatencyTable& lat = m.lat;
  out += "lat fadd " + std::to_string(lat.fadd) + " fmul " +
         std::to_string(lat.fmul) + " fdiv " + std::to_string(lat.fdiv) +
         " fsqrt " + std::to_string(lat.fsqrt) + " load_hit " +
         std::to_string(lat.load_hit) + " store " + std::to_string(lat.store) +
         " load_miss " + std::to_string(lat.load_miss) + " move " +
         std::to_string(lat.move) + " loadr " + std::to_string(lat.loadr) +
         " storer " + std::to_string(lat.storer) + "\n";
  out += "end\n";
  return out;
}

MachineConfig ParseMachine(std::string_view text, std::string_view filename) {
  Scanner sc = Tokenize(text, filename);
  ExpectHeader(sc, "machine");
  MachineConfig m;
  while (true) {
    if (sc.Done()) Fail(sc.file, sc.LastLine(), "missing 'end'");
    const TokLine& tl = sc.Next();
    const std::string_view d = tl.toks[0];
    if (d == "end") {
      std::string why;
      if (!m.IsValid(&why)) {
        Fail(sc.file, tl.number, "invalid machine configuration: " + why);
      }
      if (!sc.Done()) Fail(sc.file, sc.Peek().number, "content after 'end'");
      return m;
    }
    if (d == "fus") {
      WantToks(sc, tl, 2);
      m.num_fus = ScanInt(sc, tl.number, tl.toks[1], "fus");
    } else if (d == "mem_ports") {
      WantToks(sc, tl, 2);
      m.num_mem_ports = ScanInt(sc, tl.number, tl.toks[1], "mem_ports");
    } else if (d == "rf") {
      if (tl.toks.size() == 3 && tl.toks[1] == "name") {
        try {
          m.rf = RFConfig::Parse(tl.toks[2]);
        } catch (const std::invalid_argument& e) {
          Fail(sc.file, tl.number, e.what());
        }
      } else {
        WantToks(sc, tl, 13);
        RFConfig rf;
        for (size_t i = 1; i + 1 < tl.toks.size(); i += 2) {
          const std::string_view key = tl.toks[i];
          const int v = ScanInt(sc, tl.number, tl.toks[i + 1], key);
          if (key == "clusters") rf.clusters = v;
          else if (key == "cregs") rf.cluster_regs = v;
          else if (key == "sregs") rf.shared_regs = v;
          else if (key == "lp") rf.lp = v;
          else if (key == "sp") rf.sp = v;
          else if (key == "buses") rf.buses = v;
          else Fail(sc.file, tl.number, "unknown rf field '" + std::string(key) + "'");
        }
        m.rf = rf;
      }
    } else if (d == "clock_ns") {
      WantToks(sc, tl, 2);
      m.clock_ns = ScanDouble(sc, tl.number, tl.toks[1], "clock_ns");
    } else if (d == "lat") {
      if (tl.toks.size() % 2 == 0) {
        Fail(sc.file, tl.number, "'lat' expects key/value pairs");
      }
      for (size_t i = 1; i + 1 < tl.toks.size(); i += 2) {
        const std::string_view key = tl.toks[i];
        const int v = ScanInt(sc, tl.number, tl.toks[i + 1], key);
        if (key == "fadd") m.lat.fadd = v;
        else if (key == "fmul") m.lat.fmul = v;
        else if (key == "fdiv") m.lat.fdiv = v;
        else if (key == "fsqrt") m.lat.fsqrt = v;
        else if (key == "load_hit") m.lat.load_hit = v;
        else if (key == "store") m.lat.store = v;
        else if (key == "load_miss") m.lat.load_miss = v;
        else if (key == "move") m.lat.move = v;
        else if (key == "loadr") m.lat.loadr = v;
        else if (key == "storer") m.lat.storer = v;
        else Fail(sc.file, tl.number, "unknown latency '" + std::string(key) + "'");
      }
    } else {
      Fail(sc.file, tl.number, "unknown directive '" + std::string(d) + "'");
    }
  }
}

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

std::string DumpOptions(const core::MirsOptions& opt) {
  std::string out = "hcl 1 options\n";
  out += "budget_ratio " + FormatDouble(opt.budget_ratio) + "\n";
  out += "max_ii " + std::to_string(opt.max_ii) + "\n";
  out += "iterative " + std::to_string(opt.iterative ? 1 : 0) + "\n";
  out += "cluster_policy " + std::string(core::ToString(opt.cluster_policy)) +
         "\n";
  out += "end\n";
  return out;
}

core::MirsOptions ParseOptions(std::string_view text,
                               std::string_view filename) {
  Scanner sc = Tokenize(text, filename);
  ExpectHeader(sc, "options");
  core::MirsOptions opt;
  while (true) {
    if (sc.Done()) Fail(sc.file, sc.LastLine(), "missing 'end'");
    const TokLine& tl = sc.Next();
    const std::string_view d = tl.toks[0];
    if (d == "end") {
      if (!sc.Done()) Fail(sc.file, sc.Peek().number, "content after 'end'");
      return opt;
    }
    if (d == "budget_ratio") {
      WantToks(sc, tl, 2);
      opt.budget_ratio = ScanDouble(sc, tl.number, tl.toks[1], d);
    } else if (d == "max_ii") {
      WantToks(sc, tl, 2);
      opt.max_ii = ScanInt(sc, tl.number, tl.toks[1], d);
    } else if (d == "iterative") {
      WantToks(sc, tl, 2);
      opt.iterative = ScanInt(sc, tl.number, tl.toks[1], d) != 0;
    } else if (d == "cluster_policy") {
      WantToks(sc, tl, 2);
      opt.cluster_policy = ParsePolicy(sc, tl.number, tl.toks[1]);
    } else {
      Fail(sc.file, tl.number, "unknown directive '" + std::string(d) + "'");
    }
  }
}

// ---------------------------------------------------------------------------
// Schedule results
// ---------------------------------------------------------------------------

std::string DumpResult(const core::ScheduleResult& r) {
  std::string out = "hcl 1 result\n";
  out += "ok " + std::to_string(r.ok ? 1 : 0) + "\n";
  out += "ii " + std::to_string(r.ii) + "\n";
  out += "sc " + std::to_string(r.sc) + "\n";
  out += "mii " + std::to_string(r.mii) + "\n";
  out += "res_mii " + std::to_string(r.res_mii) + "\n";
  out += "rec_mii " + std::to_string(r.rec_mii) + "\n";
  out += "bound " + std::string(core::ToString(r.bound)) + "\n";
  out += "mem_ops_per_iter " + std::to_string(r.mem_ops_per_iter) + "\n";
  const core::ScheduleStats& s = r.stats;
  out += "stats attempts " + std::to_string(s.attempts) + " ejections " +
         std::to_string(s.ejections) + " force_places " +
         std::to_string(s.force_places) + " restarts " +
         std::to_string(s.restarts) + " comm_ops " +
         std::to_string(s.comm_ops) + " spill_stores " +
         std::to_string(s.spill_stores) + " spill_loads " +
         std::to_string(s.spill_loads) + " storer_ops " +
         std::to_string(s.storer_ops) + " loadr_ops " +
         std::to_string(s.loadr_ops) + " move_ops " +
         std::to_string(s.move_ops) + " spills_inserted " +
         std::to_string(s.spills_inserted) + " chains_built " +
         std::to_string(s.chains_built) + " chains_undone " +
         std::to_string(s.chains_undone) + " budget_spent " +
         FormatDouble(s.budget_spent) + " budget_granted " +
         FormatDouble(s.budget_granted) + "\n";
  out += "overrides " + std::to_string(r.overrides.producer_latency.size()) +
         "\n";
  for (size_t i = 0; i < r.overrides.producer_latency.size(); ++i) {
    if (r.overrides.producer_latency[i] > 0) {
      out += "override " + std::to_string(i) + " " +
             std::to_string(r.overrides.producer_latency[i]) + "\n";
    }
  }
  out += "graph\n";
  DumpGraphBody(r.graph, out);
  out += "endgraph\n";
  out += "schedule " + std::to_string(r.schedule.ii()) + "\n";
  for (NodeId v = 0; v < r.graph.NumSlots(); ++v) {
    if (!r.schedule.IsScheduled(v)) continue;
    const sched::Placement& p = r.schedule.Of(v);
    out += "place " + std::to_string(v) + " " + std::to_string(p.cycle) +
           " " + std::to_string(p.cluster) + " " +
           std::to_string(p.src_cluster) + "\n";
  }
  out += "end\n";
  return out;
}

core::ScheduleResult ParseResult(std::string_view text,
                                 std::string_view filename) {
  Scanner sc = Tokenize(text, filename);
  ExpectHeader(sc, "result");
  core::ScheduleResult r;
  bool have_graph = false;
  int schedule_ii = 0;
  struct Place {
    NodeId node;
    sched::Placement p;
  };
  std::vector<Place> places;
  bool have_schedule = false;
  while (true) {
    if (sc.Done()) Fail(sc.file, sc.LastLine(), "missing 'end'");
    const TokLine& tl = sc.Next();
    const std::string_view d = tl.toks[0];
    if (d == "end") {
      if (!sc.Done()) Fail(sc.file, sc.Peek().number, "content after 'end'");
      r.schedule = sched::PartialSchedule(have_schedule ? schedule_ii : 1);
      for (const Place& pl : places) {
        if (pl.node < 0 || pl.node >= r.graph.NumSlots() ||
            !r.graph.IsAlive(pl.node)) {
          Fail(sc.file, tl.number,
               "placement of undefined node " + std::to_string(pl.node));
        }
        r.schedule.Assign(pl.node, pl.p);
      }
      return r;
    }
    if (d == "ok") {
      WantToks(sc, tl, 2);
      r.ok = ScanInt(sc, tl.number, tl.toks[1], d) != 0;
    } else if (d == "ii") {
      WantToks(sc, tl, 2);
      r.ii = ScanInt(sc, tl.number, tl.toks[1], d);
    } else if (d == "sc") {
      WantToks(sc, tl, 2);
      r.sc = ScanInt(sc, tl.number, tl.toks[1], d);
    } else if (d == "mii") {
      WantToks(sc, tl, 2);
      r.mii = ScanInt(sc, tl.number, tl.toks[1], d);
    } else if (d == "res_mii") {
      WantToks(sc, tl, 2);
      r.res_mii = ScanInt(sc, tl.number, tl.toks[1], d);
    } else if (d == "rec_mii") {
      WantToks(sc, tl, 2);
      r.rec_mii = ScanInt(sc, tl.number, tl.toks[1], d);
    } else if (d == "bound") {
      WantToks(sc, tl, 2);
      r.bound = ParseBound(sc, tl.number, tl.toks[1]);
    } else if (d == "mem_ops_per_iter") {
      WantToks(sc, tl, 2);
      r.mem_ops_per_iter = ScanInt(sc, tl.number, tl.toks[1], d);
    } else if (d == "stats") {
      if (tl.toks.size() % 2 == 0) {
        Fail(sc.file, tl.number, "'stats' expects key/value pairs");
      }
      core::ScheduleStats& s = r.stats;
      for (size_t i = 1; i + 1 < tl.toks.size(); i += 2) {
        const std::string_view key = tl.toks[i];
        const std::string_view val = tl.toks[i + 1];
        if (key == "attempts") s.attempts = ScanLong(sc, tl.number, val, key);
        else if (key == "ejections") s.ejections = ScanLong(sc, tl.number, val, key);
        else if (key == "force_places") s.force_places = ScanLong(sc, tl.number, val, key);
        else if (key == "restarts") s.restarts = ScanInt(sc, tl.number, val, key);
        else if (key == "comm_ops") s.comm_ops = ScanInt(sc, tl.number, val, key);
        else if (key == "spill_stores") s.spill_stores = ScanInt(sc, tl.number, val, key);
        else if (key == "spill_loads") s.spill_loads = ScanInt(sc, tl.number, val, key);
        else if (key == "storer_ops") s.storer_ops = ScanInt(sc, tl.number, val, key);
        else if (key == "loadr_ops") s.loadr_ops = ScanInt(sc, tl.number, val, key);
        else if (key == "move_ops") s.move_ops = ScanInt(sc, tl.number, val, key);
        else if (key == "spills_inserted") s.spills_inserted = ScanInt(sc, tl.number, val, key);
        else if (key == "chains_built") s.chains_built = ScanLong(sc, tl.number, val, key);
        else if (key == "chains_undone") s.chains_undone = ScanLong(sc, tl.number, val, key);
        else if (key == "budget_spent") s.budget_spent = ScanDouble(sc, tl.number, val, key);
        else if (key == "budget_granted") s.budget_granted = ScanDouble(sc, tl.number, val, key);
        else Fail(sc.file, tl.number, "unknown stat '" + std::string(key) + "'");
      }
    } else if (d == "overrides") {
      WantToks(sc, tl, 2);
      const int n = ScanInt(sc, tl.number, tl.toks[1], d);
      if (n < 0) Fail(sc.file, tl.number, "overrides size < 0");
      r.overrides.producer_latency.assign(static_cast<size_t>(n), 0);
    } else if (d == "override") {
      WantToks(sc, tl, 3);
      const int id = ScanInt(sc, tl.number, tl.toks[1], "override node");
      const int lat = ScanInt(sc, tl.number, tl.toks[2], "override latency");
      if (id < 0 ||
          static_cast<size_t>(id) >= r.overrides.producer_latency.size()) {
        Fail(sc.file, tl.number,
             "override node " + std::to_string(id) +
                 " outside the declared 'overrides' size");
      }
      r.overrides.producer_latency[static_cast<size_t>(id)] = lat;
    } else if (d == "graph") {
      WantToks(sc, tl, 1);
      GraphBuilder gb;
      while (true) {
        if (sc.Done()) Fail(sc.file, sc.LastLine(), "missing 'endgraph'");
        const TokLine& gl = sc.Next();
        if (gl.toks[0] == "endgraph") {
          r.graph = gb.Build(sc, gl.number);
          have_graph = true;
          break;
        }
        if (!gb.Consume(sc, gl)) {
          Fail(sc.file, gl.number,
               "unknown graph directive '" + std::string(gl.toks[0]) + "'");
        }
      }
    } else if (d == "schedule") {
      WantToks(sc, tl, 2);
      schedule_ii = ScanInt(sc, tl.number, tl.toks[1], "schedule ii");
      if (schedule_ii < 1) Fail(sc.file, tl.number, "schedule ii < 1");
      if (!have_graph) {
        Fail(sc.file, tl.number, "'schedule' before 'graph' section");
      }
      have_schedule = true;
    } else if (d == "place") {
      WantToks(sc, tl, 5);
      if (!have_schedule) {
        Fail(sc.file, tl.number, "'place' before 'schedule' declaration");
      }
      Place pl;
      pl.node = ScanInt(sc, tl.number, tl.toks[1], "place node");
      pl.p.cycle = ScanInt(sc, tl.number, tl.toks[2], "place cycle");
      pl.p.cluster = ScanInt(sc, tl.number, tl.toks[3], "place cluster");
      pl.p.src_cluster =
          ScanInt(sc, tl.number, tl.toks[4], "place src_cluster");
      places.push_back(pl);
    } else {
      Fail(sc.file, tl.number, "unknown directive '" + std::string(d) + "'");
    }
  }
}

// ---------------------------------------------------------------------------
// File helpers
// ---------------------------------------------------------------------------

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) throw std::runtime_error("error reading " + path);
  return ss.str();
}

void WriteFileAtomic(const std::string& path, std::string_view text) {
  namespace fs = std::filesystem;
  const fs::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(target.parent_path(), ec);
  }
  // The temp name must be unique per *call*, not just per path: pool
  // threads can write the same cache entry concurrently, and sharing a
  // temp file would let one thread rename the other's half-written data
  // into place.
  static std::atomic<unsigned long> write_seq{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<unsigned long>(::getpid())) +
      "." + std::to_string(write_seq.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot create " + tmp);
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    if (!out) {
      throw std::runtime_error("error writing " + tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw std::runtime_error("cannot rename " + tmp + " to " + path);
  }
}

workload::Loop LoadLoopFile(const std::string& path) {
  return ParseLoop(ReadFile(path), path);
}

MachineConfig LoadMachineFile(const std::string& path) {
  return ParseMachine(ReadFile(path), path);
}

core::ScheduleResult LoadResultFile(const std::string& path) {
  return ParseResult(ReadFile(path), path);
}

}  // namespace hcrf::io
