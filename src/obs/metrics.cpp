#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <thread>
#include <vector>

namespace hcrf::obs {
namespace {

// obs sits below io in the layering (core depends on obs), so it carries
// its own minimal JSON formatting instead of pulling in io/json.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

unsigned Counter::ShardIndex() {
  // One hash per thread: the shard assignment must be stable so a thread's
  // increments always hit the same cacheline.
  thread_local const unsigned shard = static_cast<unsigned>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards);
  return shard;
}

void Histogram::Record(double seconds) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(std::llround(std::max(0.0, seconds) * 1e9),
                    std::memory_order_relaxed);
  // Smallest bucket whose upper bound covers the sample: bucket 0 up to
  // 1 us, bucket i up to 2^i us (the documented (2^(i-1), 2^i] ranges,
  // exact at the power-of-two boundaries).
  int idx = 0;
  const double us = seconds * 1e6;
  double upper = 1.0;
  while (idx < kBuckets - 1 && us > upper) {
    upper *= 2.0;
    ++idx;
  }
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::BucketUpperSeconds(int i) {
  return std::ldexp(1e-6, i);  // 2^i microseconds
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Registry& Registry::Shared() {
  static Registry* r = new Registry();  // leaked: lives for the process
  return *r;
}

Counter& Registry::counter(std::string_view name) {
  MutexLock lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  MutexLock lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  MutexLock lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::unique_ptr<Histogram>(
                                             new Histogram(std::string(name))))
             .first;
  }
  return *it->second;
}

std::string Registry::Table() const {
  MutexLock lk(mu_);
  std::string out;
  std::size_t width = 0;
  for (const auto& [name, c] : counters_) width = std::max(width, name.size());
  for (const auto& [name, g] : gauges_) width = std::max(width, name.size());
  for (const auto& [name, h] : histograms_)
    width = std::max(width, name.size());
  const auto pad = [&](const std::string& name) {
    return name + std::string(width + 2 - name.size(), ' ');
  };
  if (!counters_.empty()) {
    out += "counters:\n";
    for (const auto& [name, c] : counters_) {
      out += "  " + pad(name) + std::to_string(c->value()) + "\n";
    }
  }
  if (!gauges_.empty()) {
    out += "gauges:\n";
    for (const auto& [name, g] : gauges_) {
      out += "  " + pad(name) + std::to_string(g->value()) + "\n";
    }
  }
  if (!histograms_.empty()) {
    out += "histograms:\n";
    for (const auto& [name, h] : histograms_) {
      const long n = h->count();
      const double sum = h->sum_seconds();
      out += "  " + pad(name) + "count " + std::to_string(n) + "  sum " +
             FormatDouble(sum) + "s";
      if (n > 0) out += "  mean " + FormatDouble(sum / n) + "s";
      out += "\n";
    }
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

std::string Registry::Json() const {
  MutexLock lk(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) + "\": " + std::to_string(c->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) + "\": " + std::to_string(g->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    const long n = h->count();
    const double sum = h->sum_seconds();
    out += "    \"" + JsonEscape(name) + "\": {\"count\": " +
           std::to_string(n) + ", \"sum_seconds\": " + FormatDouble(sum);
    if (n > 0) out += ", \"mean_seconds\": " + FormatDouble(sum / n);
    out += ", \"buckets\": [";
    bool bfirst = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const long b = h->bucket(i);
      if (b == 0) continue;
      if (!bfirst) out += ", ";
      bfirst = false;
      out += "[" + FormatDouble(Histogram::BucketUpperSeconds(i)) + ", " +
             std::to_string(b) + "]";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void Registry::ResetForTest() {
  MutexLock lk(mu_);
  for (const auto& [name, c] : counters_) c->Reset();
  for (const auto& [name, g] : gauges_) g->Reset();
  for (const auto& [name, h] : histograms_) h->Reset();
}

Counter& GetCounter(std::string_view name) {
  return Registry::Shared().counter(name);
}

Gauge& GetGauge(std::string_view name) {
  return Registry::Shared().gauge(name);
}

Histogram& GetHistogram(std::string_view name) {
  return Registry::Shared().histogram(name);
}

}  // namespace hcrf::obs
