// Span-based flight recorder with Chrome trace_event JSON export.
//
// The scheduling stack is instrumented with RAII `TraceSpan`s (loop,
// II attempt, placement / spill / validate / eject-cascade phases) and
// instant events (the SchedEvent funnel, speculation win/cancel markers).
// When the tracer is stopped — the default — every instrumentation site
// collapses to one relaxed atomic load, so tracing support costs nothing
// on the hot path. When started, each thread appends to its own private
// buffer (no locks, no cross-thread cacheline traffic), and ExportJson
// renders everything in the Chrome `trace_event` format that
// chrome://tracing and https://ui.perfetto.dev load directly: one track
// per thread, speculative II attempts visible side by side on the worker
// tracks.
//
// Concurrency contract: Start / Stop / ExportJson / Snapshot require
// quiescence — no thread may be inside an instrumented region while the
// tracer is being started, stopped or exported. The CLI guarantees this
// by starting the tracer before any scheduling work and stopping it after
// all pools are idle. SetThreadName may be called from any thread at any
// time (worker threads name themselves at startup).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_annotations.h"

namespace hcrf::obs {

namespace internal {
extern std::atomic<bool> g_trace_enabled;
}  // namespace internal

/// True while the process-wide tracer is recording. One acquire load —
/// free on x86, and it pairs with the release store in Tracer::Start() so
/// a long-lived pool worker that observes `true` also observes the epoch
/// and clock base written just before (without this, TSan rightly flags
/// the worker's NowUs() read of the clock base as racing Start()'s write).
/// Cheap enough for per-placement call sites.
inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_acquire);
}

/// One recorded event. `cat` and `name` must be string literals (they are
/// stored as raw pointers and rendered at export time).
struct TraceEvent {
  char ph = 'X';          ///< 'X' complete span, 'i' instant.
  const char* cat = "";   ///< Category (trace viewers filter on it).
  const char* name = "";  ///< Event name.
  double ts_us = 0;       ///< Microseconds since Start().
  double dur_us = 0;      ///< Span duration ('X' only).
  int ii = -1;            ///< Rendered as args.ii when >= 0.
  int node = -1;          ///< Rendered as args.node when >= 0.
  std::string detail;     ///< Rendered as args.detail when non-empty.
};

class Tracer {
 public:
  static Tracer& Shared();

  /// Discards any previous recording and starts a new one. Threads
  /// re-register their buffers lazily on their next event (an epoch bump
  /// invalidates cached per-thread buffer pointers).
  void Start() HCRF_EXCLUDES(mu_);
  /// Stops recording; the events stay buffered for ExportJson/Snapshot.
  void Stop();

  /// Microseconds since Start() on the tracer's monotonic clock.
  double NowUs() const;

  /// Appends a completed span to the calling thread's buffer.
  void Complete(const char* cat, const char* name, double ts_us, double dur_us,
                int ii, int node, std::string detail);
  /// Appends a thread-scoped instant event at the current time.
  void Instant(const char* cat, const char* name, int ii, int node);

  /// Names the calling thread's track ("main", "spec-worker-2", ...).
  /// Unnamed threads render as "thread-N" in registration order.
  static void SetThreadName(std::string name);

  /// The whole recording as a Chrome trace_event JSON document
  /// ({"traceEvents": [...]}), with one 'M' thread_name metadata record
  /// per thread track.
  std::string ExportJson() const;

  /// Structured view of the recording for tests: per-thread event lists in
  /// append order (append order is completion order for spans, so children
  /// precede their parents).
  struct ThreadSnapshot {
    int tid = 0;
    std::string name;
    std::vector<TraceEvent> events;
  };
  std::vector<ThreadSnapshot> Snapshot() const;

 private:
  struct ThreadLog {
    int tid = 0;
    std::string name;
    std::vector<TraceEvent> events;
  };

  Tracer() = default;
  /// The calling thread's buffer for the current epoch (registers one on
  /// first use after each Start()).
  ThreadLog* LocalLog() HCRF_EXCLUDES(mu_);

  // mu_ guards registration state: the log list and the thread-name map.
  // The ThreadLogs themselves are single-writer by construction (each
  // thread appends to its own buffer with no lock); readers (ExportJson /
  // Snapshot) rely on the documented quiescence contract, not on mu_.
  // `start_` is deliberately unguarded: it is written by Start() under the
  // same quiescence contract and read on every hot-path NowUs() call —
  // publication happens through the g_trace_enabled release store in
  // Start() paired with the acquire load in TraceEnabled().
  mutable Mutex mu_;
  std::atomic<std::uint64_t> epoch_{0};
  std::chrono::steady_clock::time_point start_{};
  std::vector<std::unique_ptr<ThreadLog>> logs_ HCRF_GUARDED_BY(mu_);
  std::map<std::thread::id, std::string> names_ HCRF_GUARDED_BY(mu_);
};

/// RAII span: samples the clock at construction if tracing is on, records
/// a complete event at destruction. Constructing one while tracing is off
/// costs a single relaxed load. Nested spans on one thread close inner-
/// first, which is exactly the containment the trace viewers (and the
/// nesting tests) expect.
class TraceSpan {
 public:
  explicit TraceSpan(const char* cat, const char* name, int ii = -1,
                     int node = -1)
      : armed_(TraceEnabled()), cat_(cat), name_(name), ii_(ii), node_(node) {
    if (armed_) t0_ = Tracer::Shared().NowUs();
  }
  ~TraceSpan() {
    if (armed_) Finish();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool armed() const { return armed_; }
  /// Attaches args.detail to the span (no-op when not armed).
  void set_detail(std::string detail) {
    if (armed_) detail_ = std::move(detail);
  }
  void set_ii(int ii) { ii_ = ii; }

 private:
  void Finish();

  bool armed_;
  const char* cat_;
  const char* name_;
  int ii_;
  int node_;
  double t0_ = 0;
  std::string detail_;
};

}  // namespace hcrf::obs
