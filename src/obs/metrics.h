// Process-wide metrics registry: named counters, gauges and histograms.
//
// This is the quantitative half of the observability layer (the tracer in
// obs/trace.h is the temporal half). Components register an instrument
// once by name — `obs::GetCounter("mii_cache.hits")` — and bump it on the
// hot path; `hcrf_sched stats` (and the `--stats` flag of the service
// commands) dumps the whole registry as an aligned table or JSON.
//
// Design constraints, in order:
//  * Hot-path increments must be cheap and contention-free: Counter is
//    sharded over cacheline-aligned relaxed atomics (threads hash to a
//    shard, so concurrent scheduling workers never bounce one line).
//  * Instruments are process-lived: the registry never deletes an entry,
//    so a `Counter&` obtained once (typically cached in a function-local
//    static) stays valid forever. ResetForTest zeroes values in place and
//    keeps every reference valid.
//  * Dumps are deterministic: instruments render in name order, doubles
//    through one fixed format.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "core/thread_annotations.h"

namespace hcrf::obs {

/// Monotonic counter, sharded to keep concurrent increments off one
/// cacheline. `value()` sums the shards (racy reads are fine: every
/// increment is relaxed and the sum is only consumed by reporting).
class Counter {
 public:
  void Add(long delta = 1) {
    shards_[ShardIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  long value() const {
    long sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }
  /// The calling thread's shard (hashed thread id, computed once per
  /// thread).
  static unsigned ShardIndex();

  struct alignas(64) Shard {
    std::atomic<long> v{0};
  };
  static constexpr unsigned kShards = 8;

  std::string name_;
  Shard shards_[kShards];
};

/// Last-write-wins instantaneous value (pool worker counts, cache
/// residency).
class Gauge {
 public:
  void Set(long v) { v_.store(v, std::memory_order_relaxed); }
  void Add(long delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  long value() const { return v_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void Reset() { v_.store(0, std::memory_order_relaxed); }

  std::string name_;
  std::atomic<long> v_{0};
};

/// Log-scale latency histogram over seconds. Bucket 0 holds samples up to
/// 1 microsecond; bucket i (i >= 1) holds (2^(i-1), 2^i] microseconds, so
/// 28 buckets span ~1 us to ~2 minutes. The sum is kept in integer
/// nanoseconds: additions stay exact and order-independent.
class Histogram {
 public:
  static constexpr int kBuckets = 28;

  void Record(double seconds);

  long count() const { return count_.load(std::memory_order_relaxed); }
  double sum_seconds() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }
  long bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound of bucket i, in seconds.
  static double BucketUpperSeconds(int i);
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Histogram(std::string name) : name_(std::move(name)) {}
  void Reset();

  std::string name_;
  std::atomic<long> count_{0};
  std::atomic<long> sum_ns_{0};
  std::atomic<long> buckets_[kBuckets]{};
};

/// The process-wide instrument registry. Lookup is mutex-guarded (cache
/// the returned reference; it never dangles), iteration for dumps is in
/// name order.
class Registry {
 public:
  static Registry& Shared();

  Counter& counter(std::string_view name) HCRF_EXCLUDES(mu_);
  Gauge& gauge(std::string_view name) HCRF_EXCLUDES(mu_);
  Histogram& histogram(std::string_view name) HCRF_EXCLUDES(mu_);

  /// Aligned human-readable dump, instruments in name order.
  std::string Table() const HCRF_EXCLUDES(mu_);
  /// Deterministic JSON: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum_seconds, mean_seconds,
  /// buckets: [[upper_seconds, count], ...nonzero...]}}}.
  std::string Json() const HCRF_EXCLUDES(mu_);

  /// Zeroes every instrument in place (references stay valid); entries are
  /// never removed. Test isolation only.
  void ResetForTest() HCRF_EXCLUDES(mu_);

 private:
  Registry() = default;

  // mu_ guards the name→instrument maps only; the instruments themselves
  // are lock-free (sharded / plain atomics) and outlive the lookup.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      HCRF_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      HCRF_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      HCRF_GUARDED_BY(mu_);
};

/// Shared-registry shorthands. The returned references are process-lived;
/// hot paths should capture them once (function-local static) instead of
/// re-looking-up per event.
Counter& GetCounter(std::string_view name);
Gauge& GetGauge(std::string_view name);
Histogram& GetHistogram(std::string_view name);

}  // namespace hcrf::obs
