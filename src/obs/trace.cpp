#include "obs/trace.h"

#include <cstdio>
#include <string_view>

namespace hcrf::obs {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {

// Same rationale as in metrics.cpp: obs is below io in the layering, so it
// formats its own JSON.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendTs(std::string& out, double us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  out += buf;
}

}  // namespace

Tracer& Tracer::Shared() {
  static Tracer* tracer = new Tracer();  // leaked: lives for the process
  return *tracer;
}

void Tracer::Start() {
  MutexLock lk(mu_);
  logs_.clear();
  start_ = std::chrono::steady_clock::now();
  // Bumping the epoch invalidates every thread's cached buffer pointer.
  // The enable store must come last: it is the release half of the
  // publication pair with TraceEnabled()'s acquire load, making the epoch
  // bump and the clock-base write above visible to any thread that
  // observes tracing as on (long-lived pool workers have no other
  // happens-before edge with this call).
  epoch_.fetch_add(1, std::memory_order_release);
  internal::g_trace_enabled.store(true, std::memory_order_release);
}

void Tracer::Stop() {
  internal::g_trace_enabled.store(false, std::memory_order_release);
}

double Tracer::NowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

Tracer::ThreadLog* Tracer::LocalLog() {
  struct Cache {
    ThreadLog* log = nullptr;
    std::uint64_t epoch = 0;
  };
  thread_local Cache cache;
  const std::uint64_t ep = epoch_.load(std::memory_order_acquire);
  if (cache.log == nullptr || cache.epoch != ep) {
    MutexLock lk(mu_);
    logs_.push_back(std::make_unique<ThreadLog>());
    ThreadLog* log = logs_.back().get();
    log->tid = static_cast<int>(logs_.size());
    const auto it = names_.find(std::this_thread::get_id());
    log->name = it != names_.end() ? it->second
                                   : "thread-" + std::to_string(log->tid);
    cache.log = log;
    cache.epoch = ep;
  }
  return cache.log;
}

void Tracer::Complete(const char* cat, const char* name, double ts_us,
                      double dur_us, int ii, int node, std::string detail) {
  TraceEvent ev;
  ev.ph = 'X';
  ev.cat = cat;
  ev.name = name;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.ii = ii;
  ev.node = node;
  ev.detail = std::move(detail);
  LocalLog()->events.push_back(std::move(ev));
}

void Tracer::Instant(const char* cat, const char* name, int ii, int node) {
  TraceEvent ev;
  ev.ph = 'i';
  ev.cat = cat;
  ev.name = name;
  ev.ts_us = NowUs();
  ev.ii = ii;
  ev.node = node;
  LocalLog()->events.push_back(std::move(ev));
}

std::string Tracer::ExportJson() const {
  MutexLock lk(mu_);
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  const auto sep = [&] {
    out += first ? "\n" : ",\n";
    first = false;
  };
  for (const auto& log : logs_) {
    sep();
    out += "{\"ph\": \"M\", \"pid\": 1, \"tid\": " + std::to_string(log->tid) +
           ", \"name\": \"thread_name\", \"args\": {\"name\": \"" +
           JsonEscape(log->name) + "\"}}";
    for (const TraceEvent& ev : log->events) {
      sep();
      out += "{\"ph\": \"";
      out += ev.ph;
      out += "\", \"pid\": 1, \"tid\": " + std::to_string(log->tid) +
             ", \"cat\": \"" + JsonEscape(ev.cat) + "\", \"name\": \"" +
             JsonEscape(ev.name) + "\", \"ts\": ";
      AppendTs(out, ev.ts_us);
      if (ev.ph == 'X') {
        out += ", \"dur\": ";
        AppendTs(out, ev.dur_us);
      } else if (ev.ph == 'i') {
        out += ", \"s\": \"t\"";  // thread-scoped instant
      }
      std::string args;
      if (ev.ii >= 0) args += "\"ii\": " + std::to_string(ev.ii);
      if (ev.node >= 0) {
        if (!args.empty()) args += ", ";
        args += "\"node\": " + std::to_string(ev.node);
      }
      if (!ev.detail.empty()) {
        if (!args.empty()) args += ", ";
        args += "\"detail\": \"" + JsonEscape(ev.detail) + "\"";
      }
      if (!args.empty()) out += ", \"args\": {" + args + "}";
      out += "}";
    }
  }
  out += "\n]}\n";
  return out;
}

std::vector<Tracer::ThreadSnapshot> Tracer::Snapshot() const {
  MutexLock lk(mu_);
  std::vector<ThreadSnapshot> out;
  out.reserve(logs_.size());
  for (const auto& log : logs_) {
    out.push_back(ThreadSnapshot{log->tid, log->name, log->events});
  }
  return out;
}

void Tracer::SetThreadName(std::string name) {
  Tracer& t = Shared();
  MutexLock lk(t.mu_);
  t.names_[std::this_thread::get_id()] = std::move(name);
}

void TraceSpan::Finish() {
  Tracer& t = Tracer::Shared();
  t.Complete(cat_, name_, t0_, t.NowUs() - t0_, ii_, node_,
             std::move(detail_));
}

}  // namespace hcrf::obs
