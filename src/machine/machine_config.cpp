#include "machine/machine_config.h"

#include <string>

namespace hcrf {

std::string_view ToString(OpClass op) {
  switch (op) {
    case OpClass::kFAdd: return "fadd";
    case OpClass::kFMul: return "fmul";
    case OpClass::kFDiv: return "fdiv";
    case OpClass::kFSqrt: return "fsqrt";
    case OpClass::kLoad: return "load";
    case OpClass::kStore: return "store";
    case OpClass::kMove: return "move";
    case OpClass::kLoadR: return "loadr";
    case OpClass::kStoreR: return "storer";
  }
  return "?";
}

int LatencyTable::Of(OpClass op) const {
  switch (op) {
    case OpClass::kFAdd: return fadd;
    case OpClass::kFMul: return fmul;
    case OpClass::kFDiv: return fdiv;
    case OpClass::kFSqrt: return fsqrt;
    case OpClass::kLoad: return load_hit;
    case OpClass::kStore: return store;
    case OpClass::kMove: return move;
    case OpClass::kLoadR: return loadr;
    case OpClass::kStoreR: return storer;
  }
  return 1;
}

bool MachineConfig::IsValid(std::string* why) const {
  auto fail = [&](const char* msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (num_fus <= 0) return fail("num_fus must be positive");
  if (num_mem_ports <= 0) return fail("num_mem_ports must be positive");
  if (rf.clusters > 0 && num_fus % rf.clusters != 0) {
    return fail("clusters must divide num_fus evenly");
  }
  if (rf.IsPureClustered()) {
    if (rf.clusters > num_mem_ports) {
      return fail(
          "pure clustered organizations cannot have more clusters than "
          "memory ports (each cluster needs memory access)");
    }
    if (num_mem_ports % rf.clusters != 0) {
      return fail("clusters must divide num_mem_ports evenly");
    }
  }
  if (rf.clusters > 0 && rf.cluster_regs <= 0) {
    return fail("cluster banks must have registers");
  }
  return true;
}

MachineConfig MachineConfig::Baseline() { return MachineConfig{}; }

MachineConfig MachineConfig::WithRF(const RFConfig& rf) {
  MachineConfig m;
  m.rf = rf;
  return m;
}

std::string MachineConfig::Name() const {
  return std::to_string(num_fus) + "+" + std::to_string(num_mem_ports) + " " +
         rf.Name();
}

}  // namespace hcrf
