#include "machine/rf_config.h"

#include <algorithm>
#include <charconv>
#include <stdexcept>

namespace hcrf {

namespace {

// Parses either a decimal integer or the token "inf"; advances `s`.
int ParseCount(std::string_view& s, std::string_view what) {
  if (s.substr(0, 3) == "inf") {
    s.remove_prefix(3);
    return RFConfig::kUnbounded;
  }
  int value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr == begin) {
    throw std::invalid_argument("RFConfig::Parse: expected number for " +
                                std::string(what) + " in '" + std::string(s) +
                                "'");
  }
  s.remove_prefix(static_cast<std::size_t>(ptr - begin));
  if (value <= 0) {
    throw std::invalid_argument("RFConfig::Parse: " + std::string(what) +
                                " must be positive");
  }
  return value;
}

std::string CountToString(int v) {
  return v >= RFConfig::kUnbounded ? "inf" : std::to_string(v);
}

}  // namespace

std::string_view ToString(RFKind kind) {
  switch (kind) {
    case RFKind::kMonolithic: return "monolithic";
    case RFKind::kClustered: return "clustered";
    case RFKind::kHierarchical: return "hierarchical";
    case RFKind::kHierarchicalClustered: return "hierarchical-clustered";
  }
  return "?";
}

RFKind RFConfig::Kind() const {
  if (clusters == 0) return RFKind::kMonolithic;
  if (shared_regs == 0) return RFKind::kClustered;
  if (clusters == 1) return RFKind::kHierarchical;
  return RFKind::kHierarchicalClustered;
}

int RFConfig::DefaultLp(int clusters, bool hierarchical) {
  if (!hierarchical) return 1;  // bus input ports, Table 5 uses 1-1
  switch (clusters) {
    case 1: return 4;
    case 2: return 3;
    case 4: return 2;
    default: return 1;
  }
}

int RFConfig::DefaultSp(int clusters, bool hierarchical) {
  if (!hierarchical) return 1;
  switch (clusters) {
    case 1: return 2;
    default: return 1;
  }
}

RFConfig RFConfig::Parse(std::string_view name) {
  std::string_view s = name;
  RFConfig cfg;
  if (s.empty()) throw std::invalid_argument("RFConfig::Parse: empty name");

  if (s.front() != 'S') {
    cfg.clusters = ParseCount(s, "cluster count");
    if (s.empty() || s.front() != 'C') {
      throw std::invalid_argument("RFConfig::Parse: expected 'C' in '" +
                                  std::string(name) + "'");
    }
    s.remove_prefix(1);
    cfg.cluster_regs = ParseCount(s, "cluster registers");
  }
  if (!s.empty() && s.front() == 'S') {
    s.remove_prefix(1);
    cfg.shared_regs = ParseCount(s, "shared registers");
  }
  if (cfg.clusters == 0 && cfg.shared_regs == 0) {
    throw std::invalid_argument("RFConfig::Parse: no banks in '" +
                                std::string(name) + "'");
  }

  if (!s.empty() && s.front() == '/') {
    s.remove_prefix(1);
    cfg.lp = ParseCount(s, "lp");
    if (s.empty() || s.front() != '-') {
      throw std::invalid_argument("RFConfig::Parse: expected '-' in port "
                                  "suffix of '" + std::string(name) + "'");
    }
    s.remove_prefix(1);
    cfg.sp = ParseCount(s, "sp");
  } else {
    cfg.lp = DefaultLp(cfg.clusters, cfg.IsHierarchical() || cfg.IsMonolithic());
    cfg.sp = DefaultSp(cfg.clusters, cfg.IsHierarchical() || cfg.IsMonolithic());
  }
  if (!s.empty()) {
    throw std::invalid_argument("RFConfig::Parse: trailing characters in '" +
                                std::string(name) + "'");
  }
  if (cfg.IsPureClustered()) {
    cfg.buses = cfg.UnboundedPorts() ? kUnbounded
                                     : std::max(1, cfg.clusters / 2);
  }
  return cfg;
}

std::string RFConfig::ShortName() const {
  std::string out;
  if (clusters > 0) {
    out += CountToString(clusters);
    out += 'C';
    out += CountToString(cluster_regs);
  }
  if (shared_regs > 0) {
    out += 'S';
    out += CountToString(shared_regs);
  }
  return out;
}

std::string RFConfig::Name() const {
  std::string out = ShortName();
  if (clusters > 0) {
    out += '/';
    out += CountToString(lp);
    out += '-';
    out += CountToString(sp);
  }
  return out;
}

BankPorts RFConfig::ClusterBankPorts(int num_fus, int num_mem_ports) const {
  if (clusters == 0) return {0, 0};
  const int fus = num_fus / clusters;
  BankPorts p;
  p.reads = 2 * fus;
  p.writes = fus;
  if (IsPureClustered()) {
    const int mem = num_mem_ports / clusters;
    p.reads += mem;   // store data reads
    p.writes += mem;  // load result writes
    p.reads += std::min(sp, kUnbounded);   // bus output drivers
    p.writes += std::min(lp, kUnbounded);  // bus input receivers
  } else {
    p.reads += std::min(sp, kUnbounded);   // StoreR reads the cluster bank
    p.writes += std::min(lp, kUnbounded);  // LoadR writes the cluster bank
  }
  return p;
}

BankPorts RFConfig::SharedBankPorts(int num_fus, int num_mem_ports) const {
  if (!HasSharedBank()) return {0, 0};
  BankPorts p;
  if (IsMonolithic()) {
    p.reads = 2 * num_fus + num_mem_ports;
    p.writes = num_fus + num_mem_ports;
  } else {
    // LoadR reads the shared bank (lp per cluster); stores to memory read it.
    p.reads = clusters * std::min(lp, kUnbounded) + num_mem_ports;
    // StoreR writes the shared bank (sp per cluster); loads from memory
    // write it.
    p.writes = clusters * std::min(sp, kUnbounded) + num_mem_ports;
  }
  return p;
}

long RFConfig::TotalRegs() const {
  const long cluster_total =
      clusters > 0
          ? static_cast<long>(clusters) *
                std::min(cluster_regs, kUnbounded)
          : 0L;
  const long total = cluster_total + std::min(shared_regs, kUnbounded);
  return std::min<long>(total, kUnbounded);
}

}  // namespace hcrf
