// The VLIW machine model: functional units, memory ports and per-operation
// latencies (which depend on the register-file configuration through the
// cycle time, see src/hwmodel).
#pragma once

#include <string>

#include "machine/op.h"
#include "machine/rf_config.h"

namespace hcrf {

/// Per-operation latencies (in cycles of the configuration's clock).
///
/// The baseline values are the paper's Section 2.2 numbers for the
/// monolithic S128 clock: add/mul 4, div 17, sqrt 30; memory read hit 2,
/// write 1. For other configurations the hardware model rescales them
/// (Table 5's "Mem/FU latencies" column).
struct LatencyTable {
  int fadd = 4;
  int fmul = 4;
  int fdiv = 17;
  int fsqrt = 30;
  int load_hit = 2;    ///< L1 read hit latency.
  int store = 1;       ///< L1 write (hit) latency.
  int load_miss = 10;  ///< L1 read miss latency, in cycles (10 ns scaled).
  int move = 1;        ///< Inter-cluster Move over a bus.
  int loadr = 1;       ///< Shared bank -> cluster bank.
  int storer = 1;      ///< Cluster bank -> shared bank.

  /// Latency of `op` when it hits in the cache (loads).
  int Of(OpClass op) const;

  bool operator==(const LatencyTable&) const = default;
};

/// A complete machine configuration: resources + RF organization + clock.
struct MachineConfig {
  int num_fus = 8;        ///< General-purpose (FP) functional units.
  int num_mem_ports = 4;  ///< Load/store units.
  RFConfig rf = RFConfig::Parse("S128");
  LatencyTable lat;
  /// Cycle time in nanoseconds; filled in by hwmodel::Characterize. The
  /// default corresponds to the paper's S128 baseline clock.
  double clock_ns = 1.181;

  /// Functional units per cluster (all FUs for monolithic organizations).
  int FusPerCluster() const {
    return rf.clusters > 0 ? num_fus / rf.clusters : num_fus;
  }
  /// Memory ports per cluster for pure clustered organizations; for
  /// monolithic/hierarchical organizations all ports are global.
  int MemPortsPerCluster() const {
    return rf.IsPureClustered() ? num_mem_ports / rf.clusters : num_mem_ports;
  }
  /// Number of scheduling clusters (1 for monolithic organizations).
  int NumClusters() const { return rf.clusters > 0 ? rf.clusters : 1; }

  /// True when the cluster count divides the resources evenly, as the paper
  /// requires for homogeneous clustering, and when pure clustered
  /// organizations do not exceed one cluster per memoryory port.
  bool IsValid(std::string* why = nullptr) const;

  /// The paper's baseline: 8 FUs + 4 memory ports, monolithic S128.
  static MachineConfig Baseline();
  /// Baseline resources with the given RF configuration (latencies are NOT
  /// rescaled; call hwmodel::Characterize for that).
  static MachineConfig WithRF(const RFConfig& rf);

  std::string Name() const;
};

}  // namespace hcrf
