// Register-file organization descriptor: the paper's xCy-Sz taxonomy.
//
// A configuration has x clusters of y registers each plus an optional shared
// second-level bank of z registers:
//   * "S128"     - monolithic: one shared bank feeds all FUs and mem ports;
//   * "4C32"     - pure clustered: 4 banks of 32 registers, FUs and memory
//                  ports split evenly among the clusters, inter-cluster
//                  communication over buses (Move operations);
//   * "1C64S64"  - hierarchical (non-clustered): all FUs on one 64-register
//                  first-level bank, a 64-register shared bank above it owns
//                  the memory ports (LoadR/StoreR traffic between levels);
//   * "4C16S64"  - hierarchical clustered: the paper's proposal.
//
// `lp` and `sp` are the per-cluster-bank input (LoadR) and output (StoreR)
// port counts towards the shared bank; for pure clustered organizations they
// are the per-bank bus-input/bus-output port counts used by Move operations.
#pragma once

#include <limits>
#include <string>
#include <string_view>

namespace hcrf {

/// The four organization families distinguished by the paper.
enum class RFKind {
  kMonolithic,            ///< Sz: one shared bank, no clusters.
  kClustered,             ///< xCy: clusters only, bus communication.
  kHierarchical,          ///< 1CySz: one cluster plus shared bank.
  kHierarchicalClustered  ///< xCySz, x>1: the proposed organization.
};

std::string_view ToString(RFKind kind);

/// Number of read/write ports of one physical register bank; the input to
/// the hardware timing/area model.
struct BankPorts {
  int reads = 0;
  int writes = 0;
  int Total() const { return reads + writes; }
};

/// A parsed register-file configuration.
///
/// Register counts may be `kUnbounded` to reproduce the paper's "infinite
/// registers" static experiments (Table 3, Figure 4); port counts may be
/// `kUnbounded` for the unbounded-bandwidth columns.
struct RFConfig {
  /// Sentinel for "infinite" capacities/bandwidth in static experiments.
  static constexpr int kUnbounded = std::numeric_limits<int>::max() / 4;

  int clusters = 0;      ///< x; 0 for a monolithic organization.
  int cluster_regs = 0;  ///< y, registers per first-level bank.
  int shared_regs = 0;   ///< z, registers in the shared bank (0 = none).
  int lp = 0;            ///< LoadR (bank-input) ports per cluster bank.
  int sp = 0;            ///< StoreR (bank-output) ports per cluster bank.
  /// Number of inter-cluster buses for pure clustered organizations.
  /// The paper does not publish nb; we default to max(1, x/2), which
  /// reproduces Table 1's qualitative effect (clustering converts
  /// compute-bound loops into communication-bound ones). Exposed as an
  /// ablation knob (see bench/ablation_cluster_sel).
  int buses = 0;

  RFKind Kind() const;

  bool IsMonolithic() const { return clusters == 0; }
  bool HasSharedBank() const { return shared_regs > 0 || clusters == 0; }
  bool HasClusters() const { return clusters > 0; }
  /// Pure clustered organization: communication by Move over buses and the
  /// memory ports are distributed among the clusters.
  bool IsPureClustered() const { return clusters > 0 && shared_regs == 0; }
  /// Any organization with a shared bank above cluster banks (LoadR/StoreR).
  bool IsHierarchical() const { return clusters > 0 && shared_regs > 0; }

  bool UnboundedClusterRegs() const { return cluster_regs >= kUnbounded; }
  bool UnboundedSharedRegs() const { return shared_regs >= kUnbounded; }
  bool UnboundedPorts() const { return lp >= kUnbounded || sp >= kUnbounded; }

  /// Parses the paper's notation. Accepts:
  ///   "S128", "4C32", "1C64S64", "4C16S64"
  ///   "inf" for any register count ("Sinf", "2CinfSinf", "4Cinf"),
  ///   an optional "/lp-sp" suffix ("1C64S32/3-2"); "inf" also allowed
  ///   there ("2CinfSinf/inf-inf").
  /// Without a suffix, DefaultLp/DefaultSp for the cluster count are used.
  /// Throws std::invalid_argument on malformed names.
  static RFConfig Parse(std::string_view name);

  /// Canonical name in the paper's notation ("4C16S64/2-1").
  std::string Name() const;
  /// Name without the port suffix ("4C16S64"), as printed in paper tables.
  std::string ShortName() const;

  /// The paper's design rule (Section 4, Figure 4): ports chosen so >95% of
  /// loops are not communication limited: 1 cluster -> lp=4 sp=2,
  /// 2 -> 3/1, 4 -> 2/1, 8 -> 1/1. Pure clustered organizations use 1/1.
  static int DefaultLp(int clusters, bool hierarchical);
  static int DefaultSp(int clusters, bool hierarchical);

  /// Port counts of a first-level (cluster) bank given the machine shape.
  /// Reads: 2 per FU in the cluster (+1 per local memory port in pure
  /// clustered organizations) + sp outputs. Writes: 1 per FU (+1 per local
  /// memory port in pure clustered) + lp inputs.
  BankPorts ClusterBankPorts(int num_fus, int num_mem_ports) const;

  /// Port counts of the shared bank.
  /// Monolithic: 2 reads/FU + 1 read/mem port; 1 write/FU + 1 write/port.
  /// Hierarchical: x*lp reads + mem-port reads (stores); x*sp writes +
  /// mem-port writes (loads).
  BankPorts SharedBankPorts(int num_fus, int num_mem_ports) const;

  /// Total registers across all banks (the paper compares equal-capacity
  /// organizations in Section 3). Unbounded counts saturate at kUnbounded.
  long TotalRegs() const;

  bool operator==(const RFConfig&) const = default;
};

}  // namespace hcrf
