// Operation classes executed by the VLIW core modelled in this library.
//
// The paper's machine executes floating-point arithmetic on general-purpose
// functional units, memory accesses on load/store units (memory ports), and
// two kinds of data-movement operations introduced by the register-file
// organization itself:
//   * Move    - inter-cluster copy over a bus (pure clustered organizations),
//   * LoadR   - copy shared-bank register -> cluster-bank register,
//   * StoreR  - copy cluster-bank register -> shared-bank register.
#pragma once

#include <cstdint>
#include <string_view>

namespace hcrf {

/// Classes of operations known to the scheduler and the machine model.
enum class OpClass : std::uint8_t {
  kFAdd,    ///< FP addition/subtraction (fully pipelined).
  kFMul,    ///< FP multiplication (fully pipelined).
  kFDiv,    ///< FP division (not pipelined).
  kFSqrt,   ///< FP square root (not pipelined).
  kLoad,    ///< Memory load through a memory port.
  kStore,   ///< Memory store through a memory port.
  kMove,    ///< Inter-cluster register copy over a bus (clustered RFs).
  kLoadR,   ///< Shared bank -> cluster bank copy (hierarchical RFs).
  kStoreR,  ///< Cluster bank -> shared bank copy (hierarchical RFs).
};

inline constexpr int kNumOpClasses = 9;

/// True for operations executed on a general-purpose functional unit.
constexpr bool IsCompute(OpClass op) {
  return op == OpClass::kFAdd || op == OpClass::kFMul || op == OpClass::kFDiv ||
         op == OpClass::kFSqrt;
}

/// True for operations that use a memory port (access the L1 cache).
constexpr bool IsMemory(OpClass op) {
  return op == OpClass::kLoad || op == OpClass::kStore;
}

/// True for data-movement operations inserted by the scheduler to satisfy
/// the register-file organization (they use neither FUs nor memory ports).
constexpr bool IsCommunication(OpClass op) {
  return op == OpClass::kMove || op == OpClass::kLoadR ||
         op == OpClass::kStoreR;
}

/// True for operations whose result defines a register value. StoreR
/// defines one too: the copy of its operand in the shared bank.
constexpr bool DefinesValue(OpClass op) { return op != OpClass::kStore; }

/// True for operations that occupy their resource for the full latency
/// (division and square root are not pipelined in the paper's machine).
constexpr bool IsUnpipelined(OpClass op) {
  return op == OpClass::kFDiv || op == OpClass::kFSqrt;
}

/// Short mnemonic used by the code generator and debug dumps.
std::string_view ToString(OpClass op);

}  // namespace hcrf
