#include "service/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "io/hcl.h"

namespace hcrf::service {

namespace {

[[noreturn]] void FailErrno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Reads the `hcrf 1 <verb> ...` reply line; throws on EOF.
std::vector<std::string> ReadReplyLine(wire::Conn& conn) {
  std::string line;
  if (!conn.ReadLine(&line)) {
    throw wire::WireError("connection closed before a reply");
  }
  std::vector<std::string> toks = wire::SplitTokens(line);
  if (toks.size() < 3 || toks[0] != "hcrf" || toks[1] != "1") {
    throw wire::WireError("bad reply line: " + line);
  }
  return toks;
}

/// Decodes the replies every verb can get: `busy` (returns true) and
/// `error <bytes>` (throws with the server's message).
bool HandleCommonReply(wire::Conn& conn, const std::vector<std::string>& toks) {
  if (toks[2] == "busy") return true;
  if (toks[2] == "error" && toks.size() == 4) {
    const std::optional<long> bytes = io::TryParseLong(toks[3]);
    if (bytes && *bytes >= 0 && *bytes <= wire::kMaxPayloadBytes) {
      std::string message;
      conn.ReadExact(static_cast<std::size_t>(*bytes), &message);
      throw std::runtime_error("server error: " + message);
    }
    throw wire::WireError("bad error reply byte count");
  }
  return false;
}

/// Reads the sized payload of a `hcrf 1 <verb> <bytes>` reply.
std::string ReadReplyPayload(wire::Conn& conn,
                             const std::vector<std::string>& toks) {
  if (toks.size() != 4) {
    throw wire::WireError("expected a sized reply, got verb '" + toks[2] +
                          "' with " + std::to_string(toks.size()) +
                          " tokens");
  }
  const std::optional<long> bytes = io::TryParseLong(toks[3]);
  if (!bytes || *bytes < 0 || *bytes > wire::kMaxPayloadBytes) {
    throw wire::WireError("bad reply byte count: " + toks[3]);
  }
  std::string payload;
  conn.ReadExact(static_cast<std::size_t>(*bytes), &payload);
  return payload;
}

}  // namespace

Client::Client(std::string socket_path, int read_timeout_ms)
    : socket_path_(std::move(socket_path)),
      read_timeout_ms_(read_timeout_ms) {}

int Client::Connect() const {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("submit: socket path too long: " + socket_path_);
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) FailErrno("submit: socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    FailErrno("submit: connect " + socket_path_);
  }
  if (read_timeout_ms_ > 0) {
    timeval tv{};
    tv.tv_sec = read_timeout_ms_ / 1000;
    tv.tv_usec = (read_timeout_ms_ % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  return fd;
}

bool Client::Ping() {
  wire::Conn conn(Connect());
  if (!conn.WriteAll("hcrf 1 ping\n")) {
    throw std::runtime_error("submit: connection lost while pinging");
  }
  const std::vector<std::string> toks = ReadReplyLine(conn);
  if (HandleCommonReply(conn, toks)) return false;
  if (toks[2] != "ok") throw wire::WireError("unexpected ping reply");
  return true;
}

SubmitReply Client::Submit(const std::vector<BatchRequest>& requests) {
  return SubmitVerb("submit", requests);
}

SubmitReply Client::SubmitDelta(const std::vector<BatchRequest>& requests) {
  return SubmitVerb("delta", requests);
}

SubmitReply Client::SubmitVerb(const std::string& verb,
                               const std::vector<BatchRequest>& requests) {
  if (static_cast<long>(requests.size()) > wire::kMaxBatchRequests) {
    throw wire::WireError("batch exceeds the protocol request cap");
  }
  wire::Conn conn(Connect());
  if (!conn.WriteAll("hcrf 1 " + verb + " " + std::to_string(requests.size()) +
                     "\n")) {
    throw std::runtime_error(verb + ": connection lost while submitting");
  }
  for (const BatchRequest& req : requests) {
    if (verb == "delta") {
      wire::WriteDeltaRequest(conn, req);
    } else {
      wire::WriteRequest(conn, req);
    }
  }

  SubmitReply reply;
  const std::vector<std::string> toks = ReadReplyLine(conn);
  if (HandleCommonReply(conn, toks)) {
    reply.busy = true;
    return reply;
  }
  if (toks[2] != "results" || toks.size() != 4) {
    throw wire::WireError("unexpected submit reply verb: " + toks[2]);
  }
  const std::optional<long> n = io::TryParseLong(toks[3]);
  if (!n || *n < 0 || *n > wire::kMaxBatchRequests) {
    throw wire::WireError("bad results count: " + toks[3]);
  }
  reply.items.reserve(static_cast<std::size_t>(*n));
  for (long i = 0; i < *n; ++i) {
    reply.items.push_back(wire::ReadItem(conn));
  }
  std::string end_line;
  if (!conn.ReadLine(&end_line) || end_line != "end") {
    throw wire::WireError("missing 'end' after results");
  }
  return reply;
}

std::string Client::Stats() {
  wire::Conn conn(Connect());
  if (!conn.WriteAll("hcrf 1 stats\n")) {
    throw std::runtime_error("submit: connection lost requesting stats");
  }
  const std::vector<std::string> toks = ReadReplyLine(conn);
  if (HandleCommonReply(conn, toks)) {
    throw std::runtime_error("server busy; stats unavailable");
  }
  if (toks[2] != "stats") {
    throw wire::WireError("unexpected stats reply verb: " + toks[2]);
  }
  return ReadReplyPayload(conn, toks);
}

std::string Client::CacheStats() {
  wire::Conn conn(Connect());
  if (!conn.WriteAll("hcrf 1 cache-stats\n")) {
    throw std::runtime_error("submit: connection lost requesting stats");
  }
  const std::vector<std::string> toks = ReadReplyLine(conn);
  if (HandleCommonReply(conn, toks)) {
    throw std::runtime_error("server busy; cache-stats unavailable");
  }
  if (toks[2] != "cache-stats") {
    throw wire::WireError("unexpected cache-stats reply verb: " + toks[2]);
  }
  return ReadReplyPayload(conn, toks);
}

}  // namespace hcrf::service
