#include "service/sweep.h"

#include <filesystem>
#include <map>
#include <memory>
#include <stdexcept>

#include "io/hcl.h"
#include "io/scanner.h"
#include "perf/tables.h"
#include "service/session.h"
#include "workload/suite_cache.h"

namespace hcrf::service {

namespace {

namespace fs = std::filesystem;

// Suite names a spec may reference; must stay in sync with
// workload::SharedSuiteByName (the executor resolves through it).
bool IsKnownSuite(std::string_view name) {
  return name == "kernels" || name == "synth";
}

std::string JoinInts(const std::vector<int>& values) {
  std::string out;
  for (int v : values) {
    out += ' ';
    out += std::to_string(v);
  }
  return out;
}

void ParseGridAxis(const io::Scanner& sc, const io::TokLine& tl,
                   std::vector<int>* axis, int min_value) {
  if (!axis->empty()) {
    io::Fail(sc.file, tl.number,
             "duplicate 'grid " + std::string(tl.toks[1]) + "' axis");
  }
  if (tl.toks.size() < 3) {
    io::Fail(sc.file, tl.number, "'grid' axis needs at least one value");
  }
  for (size_t i = 2; i < tl.toks.size(); ++i) {
    const int v = io::ScanInt(sc, tl.number, tl.toks[i], "grid value");
    if (v < min_value) {
      io::Fail(sc.file, tl.number,
               "grid value " + std::to_string(v) + " below minimum " +
                   std::to_string(min_value));
    }
    axis->push_back(v);
  }
}

}  // namespace

SweepSpec ParseSweepSpec(std::string_view text, std::string_view filename) {
  io::Scanner sc = io::Tokenize(text, filename);
  io::ExpectHeader(sc, "sweep");
  SweepSpec spec;
  int first_grid_line = 0;
  while (true) {
    if (sc.Done()) io::Fail(filename, sc.LastLine(), "missing 'end'");
    const io::TokLine& tl = sc.Next();
    const std::string_view d = tl.toks[0];
    if (d == "end") {
      io::WantToks(sc, tl, 1);
      if (!sc.Done()) {
        io::Fail(filename, sc.Peek().number, "content after 'end'");
      }
      break;
    }
    if (d == "name") {
      io::WantToks(sc, tl, 2);
      spec.name = std::string(tl.toks[1]);
    } else if (d == "suite") {
      io::WantToks(sc, tl, 2);
      if (!IsKnownSuite(tl.toks[1])) {
        io::Fail(filename, tl.number,
                 "unknown suite '" + std::string(tl.toks[1]) +
                     "' (expected kernels or synth)");
      }
      spec.suites.emplace_back(tl.toks[1]);
    } else if (d == "graph") {
      io::WantToks(sc, tl, 2);
      spec.graphs.emplace_back(tl.toks[1]);
    } else if (d == "rf") {
      io::WantToks(sc, tl, 2);
      try {
        RFConfig::Parse(tl.toks[1]);
      } catch (const std::invalid_argument& e) {
        io::Fail(filename, tl.number, e.what());
      }
      spec.rfs.emplace_back(tl.toks[1]);
    } else if (d == "grid") {
      if (tl.toks.size() < 2) {
        io::Fail(filename, tl.number, "'grid' needs an axis name");
      }
      if (first_grid_line == 0) first_grid_line = tl.number;
      if (tl.toks[1] == "clusters") {
        ParseGridAxis(sc, tl, &spec.grid_clusters, 1);
      } else if (tl.toks[1] == "cluster_regs") {
        ParseGridAxis(sc, tl, &spec.grid_cluster_regs, 1);
      } else if (tl.toks[1] == "shared_regs") {
        ParseGridAxis(sc, tl, &spec.grid_shared_regs, 0);
      } else {
        io::Fail(filename, tl.number,
                 "unknown grid axis '" + std::string(tl.toks[1]) + "'");
      }
    } else if (d == "fus") {
      io::WantToks(sc, tl, 2);
      spec.num_fus = io::ScanInt(sc, tl.number, tl.toks[1], d);
    } else if (d == "mem_ports") {
      io::WantToks(sc, tl, 2);
      spec.num_mem_ports = io::ScanInt(sc, tl.number, tl.toks[1], d);
    } else if (d == "characterize") {
      io::WantToks(sc, tl, 2);
      spec.characterize = io::ScanInt(sc, tl.number, tl.toks[1], d) != 0;
    } else if (d == "budget") {
      io::WantToks(sc, tl, 2);
      spec.budget_ratio = io::ScanDouble(sc, tl.number, tl.toks[1], d);
    } else if (d == "max_ii") {
      io::WantToks(sc, tl, 2);
      spec.max_ii = io::ScanInt(sc, tl.number, tl.toks[1], d);
    } else if (d == "iterative") {
      io::WantToks(sc, tl, 2);
      spec.iterative = io::ScanInt(sc, tl.number, tl.toks[1], d) != 0;
    } else if (d == "policy") {
      io::WantToks(sc, tl, 2);
      spec.policy = io::ClusterPolicyFromName(tl.toks[1]);
      if (!spec.policy) {
        io::Fail(filename, tl.number,
                 "unknown cluster policy '" + std::string(tl.toks[1]) + "'");
      }
    } else {
      io::Fail(filename, tl.number,
               "unknown directive '" + std::string(d) + "'");
    }
  }

  const bool has_grid = !spec.grid_clusters.empty() ||
                        !spec.grid_cluster_regs.empty() ||
                        !spec.grid_shared_regs.empty();
  if (has_grid && (spec.grid_clusters.empty() ||
                   spec.grid_cluster_regs.empty() ||
                   spec.grid_shared_regs.empty())) {
    io::Fail(filename, first_grid_line,
             "a grid needs all three axes (clusters, cluster_regs, "
             "shared_regs)");
  }
  if (spec.suites.empty() && spec.graphs.empty()) {
    io::Fail(filename, sc.LastLine(),
             "a sweep needs at least one 'suite' or 'graph'");
  }
  if (spec.rfs.empty() && !has_grid) {
    io::Fail(filename, sc.LastLine(),
             "a sweep needs at least one 'rf' or a grid");
  }
  return spec;
}

std::string DumpSweepSpec(const SweepSpec& spec) {
  std::string out = "hcl 1 sweep\n";
  if (!spec.name.empty()) out += "name " + spec.name + "\n";
  for (const std::string& s : spec.suites) out += "suite " + s + "\n";
  for (const std::string& g : spec.graphs) out += "graph " + g + "\n";
  for (const std::string& rf : spec.rfs) out += "rf " + rf + "\n";
  if (!spec.grid_clusters.empty()) {
    out += "grid clusters" + JoinInts(spec.grid_clusters) + "\n";
    out += "grid cluster_regs" + JoinInts(spec.grid_cluster_regs) + "\n";
    out += "grid shared_regs" + JoinInts(spec.grid_shared_regs) + "\n";
  }
  if (spec.num_fus) out += "fus " + std::to_string(*spec.num_fus) + "\n";
  if (spec.num_mem_ports) {
    out += "mem_ports " + std::to_string(*spec.num_mem_ports) + "\n";
  }
  out += std::string("characterize ") + (spec.characterize ? "1" : "0") + "\n";
  if (spec.budget_ratio) {
    out += "budget " + io::FormatDouble(*spec.budget_ratio) + "\n";
  }
  if (spec.max_ii) out += "max_ii " + std::to_string(*spec.max_ii) + "\n";
  if (spec.iterative) {
    out += std::string("iterative ") + (*spec.iterative ? "1" : "0") + "\n";
  }
  if (spec.policy) {
    out += "policy " + std::string(core::ToString(*spec.policy)) + "\n";
  }
  out += "end\n";
  return out;
}

SweepSpec LoadSweepSpecFile(const std::string& path) {
  return ParseSweepSpec(io::ReadFile(path), path);
}

SweepPlan ExpandSweepMachines(const SweepSpec& spec,
                              hw::RFModelMode rf_model) {
  MachineConfig base;
  if (spec.num_fus) base.num_fus = *spec.num_fus;
  if (spec.num_mem_ports) base.num_mem_ports = *spec.num_mem_ports;

  // The organization axis: explicit names first, then the grid cross
  // product. Grid entries go through RFConfig::Parse on a constructed
  // name so port defaults and bus counts stay single-sourced.
  std::vector<RFConfig> rfs;
  for (const std::string& name : spec.rfs) rfs.push_back(RFConfig::Parse(name));
  for (int c : spec.grid_clusters) {
    for (int y : spec.grid_cluster_regs) {
      for (int z : spec.grid_shared_regs) {
        std::string name = std::to_string(c) + "C" + std::to_string(y);
        if (z > 0) {
          name += 'S';
          name += std::to_string(z);
        }
        rfs.push_back(RFConfig::Parse(name));
      }
    }
  }

  SweepPlan plan;
  for (const RFConfig& rf : rfs) {
    bool duplicate = false;
    for (const SweepMachine& sm : plan.machines) {
      if (sm.machine.rf == rf) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;

    MachineConfig m = base;
    m.rf = rf;
    std::string why;
    if (!m.IsValid(&why)) {
      plan.skipped.push_back(rf.Name() + ": " + why);
      continue;
    }
    if (spec.characterize && !rf.UnboundedClusterRegs() &&
        !rf.UnboundedSharedRegs()) {
      try {
        m = hw::ApplyCharacterization(m, rf_model);
      } catch (const std::exception& e) {
        plan.skipped.push_back(rf.Name() + ": " + e.what());
        continue;
      }
    }
    plan.machines.push_back(SweepMachine{rf.Name(), std::move(m)});
  }
  return plan;
}

SweepReport RunSweep(const SweepSpec& spec, const std::string& base_dir,
                     SchedulerService& session) {
  const SweepPlan plan =
      ExpandSweepMachines(spec, session.config().rf_model);
  if (plan.machines.empty()) {
    std::string msg = "sweep expands to no valid organizations";
    for (const std::string& s : plan.skipped) msg += "\n  skipped " + s;
    throw std::runtime_error(msg);
  }

  // The workload axis: shared suites, then explicit graph files. One
  // shared instance per loop serves the whole organization grid (the
  // batch requests alias it, so memory stays O(loops), not O(cells)).
  std::vector<std::shared_ptr<const workload::Loop>> loops;
  std::vector<std::string> labels;
  for (const std::string& name : spec.suites) {
    const workload::Suite* suite = workload::SharedSuiteByName(name);
    if (suite == nullptr) {
      throw std::runtime_error("unknown suite '" + name + "'");
    }
    for (size_t i = 0; i < suite->size(); ++i) {
      const workload::Loop& loop = (*suite)[i];
      // Shared suites are process-static: alias, never copy.
      loops.push_back(std::shared_ptr<const workload::Loop>(
          std::shared_ptr<const void>(), &loop));
      labels.push_back(loop.ddg.name().empty()
                           ? name + "-" + std::to_string(i)
                           : loop.ddg.name());
    }
  }
  for (const std::string& rel : spec.graphs) {
    const std::string path = (fs::path(base_dir) / rel).string();
    auto loop = std::make_shared<const workload::Loop>(io::LoadLoopFile(path));
    labels.push_back(loop->ddg.name().empty()
                         ? fs::path(rel).stem().string()
                         : loop->ddg.name());
    loops.push_back(std::move(loop));
  }
  if (loops.empty()) {
    throw std::runtime_error("sweep workload is empty");
  }

  // Organization-major expansion: one flat batch keeps the thread pool
  // saturated across the whole grid instead of per-organization waves.
  std::vector<BatchRequest> requests;
  requests.reserve(plan.machines.size() * loops.size());
  for (const SweepMachine& sm : plan.machines) {
    for (size_t i = 0; i < loops.size(); ++i) {
      BatchRequest req;
      req.id = sm.org + "/" + labels[i];
      req.loop = loops[i];
      req.machine = sm.machine;
      if (spec.budget_ratio) req.options.budget_ratio = *spec.budget_ratio;
      if (spec.max_ii) req.options.max_ii = *spec.max_ii;
      if (spec.iterative) req.options.iterative = *spec.iterative;
      if (spec.policy) req.options.cluster_policy = *spec.policy;
      requests.push_back(std::move(req));
    }
  }

  const BatchReport batch = session.RunBatch(requests);

  SweepReport report;
  report.name = spec.name.empty() ? "sweep" : spec.name;
  for (const SweepMachine& sm : plan.machines) report.orgs.push_back(sm.org);
  report.loops = labels;
  report.skipped = plan.skipped;
  report.cache = batch.cache;
  report.scheduled = batch.scheduled;
  report.hits = batch.hits;
  report.failed = batch.failed;
  report.seconds = batch.seconds;
  report.cells.reserve(batch.items.size());
  for (size_t m = 0; m < plan.machines.size(); ++m) {
    for (size_t i = 0; i < loops.size(); ++i) {
      const BatchItem& item = batch.items[m * loops.size() + i];
      SweepCell cell;
      cell.org = plan.machines[m].org;
      cell.loop = labels[i];
      cell.ok = item.ok;
      cell.cache_hit = item.cache_hit;
      cell.error = item.error;
      const core::ScheduleResult& r = item.result;
      cell.ii = r.ii;
      cell.mii = r.mii;
      cell.sc = r.sc;
      cell.bound = r.bound;
      cell.comm_ops = r.stats.comm_ops;
      cell.spill_ops = r.stats.spill_loads + r.stats.spill_stores;
      report.cells.push_back(std::move(cell));
    }
  }
  return report;
}

SweepReport RunSweep(const SweepSpec& spec, const std::string& base_dir,
                     const SweepOptions& opt) {
  ServiceConfig config;
  config.cache_dir = opt.cache_dir;
  config.cache_mem_entries = opt.cache_mem_entries;
  config.cache_mem_bytes = opt.cache_mem_bytes;
  config.threads = opt.threads;
  config.rf_model = opt.rf_model;
  SchedulerService session(config);
  SweepReport report = RunSweep(spec, base_dir, session);
  session.Drain();
  if (session.has_cache()) report.cache = session.cache_stats();
  return report;
}

std::string SweepCsv(const SweepReport& report) {
  std::string out = "org,loop,status,ii,mii,sc,bound,comm_ops,spill_ops\n";
  for (const SweepCell& c : report.cells) {
    out += c.org + "," + c.loop + "," + (c.ok ? "ok" : "failed") + "," +
           std::to_string(c.ii) + "," + std::to_string(c.mii) + "," +
           std::to_string(c.sc) + "," + std::string(core::ToString(c.bound)) +
           "," + std::to_string(c.comm_ops) + "," +
           std::to_string(c.spill_ops) + "\n";
  }
  return out;
}

std::string SweepMarkdown(const SweepReport& report) {
  std::string out = "# Sweep: " + report.name + "\n\n";
  out += std::to_string(report.orgs.size()) + " organizations x " +
         std::to_string(report.loops.size()) + " loops\n\n";

  // Per-organization aggregates over the ok cells.
  struct OrgAgg {
    long ok = 0, failed = 0;
    long sum_ii = 0, sum_mii = 0;
    double sum_ratio = 0.0;
    long bound[4] = {0, 0, 0, 0};
    long comm_ops = 0, spill_ops = 0;
  };
  std::map<std::string, OrgAgg> aggs;
  for (const SweepCell& c : report.cells) {
    OrgAgg& a = aggs[c.org];
    if (!c.ok) {
      ++a.failed;
      continue;
    }
    ++a.ok;
    a.sum_ii += c.ii;
    a.sum_mii += c.mii;
    a.sum_ratio += c.mii > 0 ? static_cast<double>(c.ii) / c.mii : 1.0;
    ++a.bound[static_cast<int>(c.bound)];
    a.comm_ops += c.comm_ops;
    a.spill_ops += c.spill_ops;
  }
  out +=
      "| organization | ok | failed | avg II/MII | sum II | sum MII | "
      "fu | mem | rec | comm | comm ops | spill ops |\n"
      "|---|---|---|---|---|---|---|---|---|---|---|---|\n";
  for (const std::string& org : report.orgs) {
    const OrgAgg& a = aggs[org];
    out += "| " + org + " | " + std::to_string(a.ok) + " | " +
           std::to_string(a.failed) + " | " +
           (a.ok > 0
                ? perf::Table::Num(a.sum_ratio / static_cast<double>(a.ok), 3)
                : "-") +
           " | " + std::to_string(a.sum_ii) + " | " +
           std::to_string(a.sum_mii) + " | " + std::to_string(a.bound[0]) +
           " | " + std::to_string(a.bound[1]) + " | " +
           std::to_string(a.bound[2]) + " | " + std::to_string(a.bound[3]) +
           " | " + std::to_string(a.comm_ops) + " | " +
           std::to_string(a.spill_ops) + " |\n";
  }

  // The II matrix: the shape of the paper's Tables 2/5.
  out += "\n## Achieved II (MII) per loop\n\n| loop |";
  for (const std::string& org : report.orgs) out += " " + org + " |";
  out += "\n|---|";
  for (size_t m = 0; m < report.orgs.size(); ++m) out += "---|";
  out += "\n";
  for (size_t i = 0; i < report.loops.size(); ++i) {
    out += "| " + report.loops[i] + " |";
    for (size_t m = 0; m < report.orgs.size(); ++m) {
      const SweepCell& c = report.cells[m * report.loops.size() + i];
      if (c.ok) {
        out += ' ';
        out += std::to_string(c.ii);
        out += " (";
        out += std::to_string(c.mii);
        out += ") |";
      } else {
        out += " failed |";
      }
    }
    out += "\n";
  }

  if (!report.skipped.empty()) {
    out += "\n## Skipped grid combinations\n\n";
    for (const std::string& s : report.skipped) {
      out += "- ";
      out += s;
      out += '\n';
    }
  }
  return out;
}

}  // namespace hcrf::service
