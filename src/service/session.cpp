#include "service/session.h"

#include <chrono>
#include <filesystem>

#include "core/mirs.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perf/runner.h"
#include "perf/thread_pool.h"

namespace hcrf::service {

namespace {

namespace fs = std::filesystem;

/// The legacy four-field view of a stack-level TierStats.
ScheduleCache::Stats StackStats(const TierStats& t) {
  ScheduleCache::Stats s;
  s.hits = t.hits;
  s.misses = t.misses;
  s.rejects = t.rejects;
  s.writes = t.writes;
  return s;
}

TierStats FlowDelta(const TierStats& after, const TierStats& before) {
  TierStats d = after;
  d.hits -= before.hits;
  d.misses -= before.misses;
  d.rejects -= before.rejects;
  d.writes -= before.writes;
  d.evictions -= before.evictions;
  d.oversize -= before.oversize;
  d.near_hits -= before.near_hits;
  d.near_misses -= before.near_misses;
  // entries/bytes are residency, not flow: keep the `after` footprint.
  return d;
}

}  // namespace

ServiceConfig ServiceConfig::FromBatch(const BatchOptions& opt) {
  ServiceConfig c;
  c.cache_dir = opt.cache_dir;
  c.cache_mem_entries = opt.cache_mem_entries;
  c.cache_mem_bytes = opt.cache_mem_bytes;
  c.threads = opt.threads;
  c.rf_model = opt.rf_model;
  c.speculate_k = opt.speculate_k;
  c.speculate_eager = opt.speculate_eager;
  return c;
}

SchedulerService::SchedulerService(const ServiceConfig& config)
    : config_(config) {
  const bool want_mem = config_.cache_mem_entries > 0;
  const bool want_disk = !config_.cache_dir.empty();
  if (want_mem) {
    MemoryTier::Config mc;
    mc.max_entries = config_.cache_mem_entries;
    mc.max_bytes = config_.cache_mem_bytes;
    auto mem = std::make_unique<MemoryTier>(mc);
    memory_ = mem.get();
    if (want_disk) {
      auto disk = std::make_unique<DiskTier>(config_.cache_dir);
      disk_ = disk.get();
      cache_ = std::make_unique<TieredCache>(std::move(mem), std::move(disk),
                                             config_.write_behind);
    } else {
      cache_ = std::move(mem);
    }
  } else if (want_disk) {
    auto disk = std::make_unique<DiskTier>(config_.cache_dir);
    disk_ = disk.get();
    cache_ = std::move(disk);
  }
}

SchedulerService::~SchedulerService() { Drain(); }

void SchedulerService::Drain() {
  if (cache_) cache_->Drain();
}

ScheduleCache::Stats SchedulerService::cache_stats() const {
  return StackStats(tier_stats());
}

TierStats SchedulerService::tier_stats() const {
  return cache_ ? cache_->tier_stats() : TierStats{};
}

TierStats SchedulerService::memory_stats() const {
  return memory_ != nullptr ? memory_->tier_stats() : TierStats{};
}

BatchReport SchedulerService::RunBatch(
    const std::vector<BatchRequest>& requests) {
  BatchReport report;
  report.items.resize(requests.size());

  CacheTier* cache = cache_.get();
  const TierStats stack_before = tier_stats();
  const TierStats mem_before = memory_stats();

  const auto wall0 = std::chrono::steady_clock::now();
  perf::ThreadPool& pool = perf::ThreadPool::Shared();
  const int max_workers =
      config_.threads > 0 ? config_.threads : pool.num_workers() + 1;
  pool.ParallelFor(requests.size(), max_workers, [&](size_t i) {
    static obs::Counter& req_count = obs::GetCounter("service.requests");
    static obs::Counter& hit_count = obs::GetCounter("service.cache_hits");
    static obs::Histogram& req_hist =
        obs::GetHistogram("service.request_seconds");
    const BatchRequest& req = requests[i];
    BatchItem& item = report.items[i];
    item.id = req.id;
    const auto t0 = std::chrono::steady_clock::now();
    item.timing.queue_seconds =
        std::chrono::duration<double>(t0 - wall0).count();
    obs::TraceSpan req_span("service", "request");
    req_span.set_detail(req.id);
    const auto phase_seconds = [](const auto& since) {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           since)
          .count();
    };
    CacheKey key{};
    std::uint64_t structural = 0;
    if (cache != nullptr) {
      obs::TraceSpan probe_span("phase", "cache-probe");
      const auto p0 = std::chrono::steady_clock::now();
      key = MakeCacheKey(req.loop->ddg, req.machine, req.options,
                         req.overrides);
      structural = MakeStructuralHash(req.loop->ddg, req.machine);
      if (std::optional<core::ScheduleResult> hit = cache->Get(key)) {
        item.result = *std::move(hit);
        item.ok = item.result.ok;
        item.cache_hit = true;
        // A resident exact entry is a valid future seed for this loop ×
        // machine cell: keep the near index current even on pure hits, so
        // a cold sweep primes later `delta` submissions.
        cache->NoteStructural(structural, key);
      }
      item.timing.cache_probe_seconds = phase_seconds(p0);
    }
    if (!item.cache_hit) {
      core::MirsOptions mirs = req.options;
      // Execution strategy, not request semantics (see BatchOptions): the
      // speculative engine commits bit-identical results, and the nested
      // racing rides the SpeculationPool, so a 1-thread batch still races.
      // Session-level knob wins when set; otherwise the request's own
      // value (e.g. from `hcrf_sched schedule --speculate`) stands.
      if (config_.speculate_k > 0) {
        mirs.speculate_k = config_.speculate_k;
        mirs.speculate_eager = config_.speculate_eager;
      }
      if (req.allow_warm_start && cache != nullptr) {
        // Near-key probe: the closest resident entry for the same loop ×
        // machine (differing options/overrides) seeds the engine, which
        // replays the compatible placements and repairs the rest — or
        // falls back cold, counted on the result, never silent.
        obs::TraceSpan near_span("phase", "near-probe");
        if (std::optional<core::ScheduleResult> seed =
                cache->GetNear(structural, key)) {
          if (seed->ok) {
            mirs.warm_start = std::make_shared<const core::ScheduleResult>(
                *std::move(seed));
          }
        }
      }
      if (!mirs.precomputed_mii) {
        // The MII depends on the graph, the latency table and the global
        // resource counts — not the RF organization — so the process-wide
        // sweep cache shares it across the configurations of a
        // design-space sweep (and across repeated batches in-process).
        const auto m0 = std::chrono::steady_clock::now();
        mirs.precomputed_mii =
            perf::CachedMii(req.loop->ddg, req.machine, req.overrides);
        item.timing.mii_seconds = phase_seconds(m0);
      }
      const auto s0 = std::chrono::steady_clock::now();
      item.result =
          core::MirsHC(req.loop->ddg, req.machine, mirs, req.overrides);
      item.timing.schedule_seconds = phase_seconds(s0);
      item.ok = item.result.ok;
      if (cache != nullptr && !item.result.warm.used) {
        // Cold results only: the exact-key cache serves bytes that are
        // bit-identical to a cold schedule, and a warm-started result
        // carries the seed's placement history. Fallback results ARE cold
        // results and cache normally.
        obs::TraceSpan write_span("phase", "serialize");
        const auto w0 = std::chrono::steady_clock::now();
        cache->Put(key, item.result);
        cache->NoteStructural(structural, key);
        item.timing.serialize_seconds = phase_seconds(w0);
      }
    }
    if (!item.ok && item.error.empty()) {
      item.error = "scheduling failed (no II <= max_ii admitted a schedule)";
    }
    item.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    req_count.Add(1);
    if (item.cache_hit) hit_count.Add(1);
    req_hist.Record(item.seconds);
  });
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();

  for (const BatchItem& item : report.items) {
    if (item.cache_hit) {
      ++report.hits;
    } else {
      ++report.scheduled;
      if (item.result.warm.used) ++report.warm_starts;
    }
    if (!item.ok) ++report.failed;
    report.timing.Accumulate(item.timing);
  }
  if (cache != nullptr) {
    // Per-batch deltas of the session-lifetime counters. With write-behind
    // on, disk `writes` queued by this batch may still be in flight; the
    // one-shot wrappers Drain() and re-snapshot for exact totals.
    report.cache = StackStats(FlowDelta(tier_stats(), stack_before));
    report.mem_cache = FlowDelta(memory_stats(), mem_before);
  }
  return report;
}

BatchReport SchedulerService::RunManifest(const std::string& manifest_path) {
  const std::vector<ManifestEntry> entries = LoadManifestFile(manifest_path);
  const std::string base = fs::path(manifest_path).parent_path().string();

  std::vector<BatchRequest> requests;
  std::vector<size_t> request_slot;  // maps run items back to report slots
  requests.reserve(entries.size());

  BatchReport report;
  report.items.resize(entries.size());

  for (size_t i = 0; i < entries.size(); ++i) {
    const ManifestEntry& e = entries[i];
    BatchItem& item = report.items[i];
    item.id = e.graph;
    try {
      BatchRequest req = ResolveManifestEntry(e, base, config_.rf_model);
      item.id = req.id;
      requests.push_back(std::move(req));
      request_slot.push_back(i);
    } catch (const std::exception& ex) {
      item.ok = false;
      item.error = ex.what();
      ++report.failed;
    }
  }

  BatchReport run = RunBatch(requests);
  for (size_t r = 0; r < run.items.size(); ++r) {
    report.items[request_slot[r]] = std::move(run.items[r]);
  }
  report.cache = run.cache;
  report.mem_cache = run.mem_cache;
  report.scheduled = run.scheduled;
  report.hits = run.hits;
  report.warm_starts = run.warm_starts;
  report.failed += run.failed;
  report.seconds = run.seconds;
  report.timing = run.timing;
  return report;
}

}  // namespace hcrf::service
