// Persistent, content-addressed schedule cache: the durable disk tier.
//
// Extends the in-memory MII sweep cache idea (src/perf/runner.cpp) to whole
// schedules on disk: the key is a structural hash of everything a schedule
// depends on — the dependence graph, the machine / RF configuration and the
// value-typed scheduling options (see service/cache_tier.h for CacheKey) —
// and the value is the full core::ScheduleResult in its canonical .hcl
// serialization. Repeated sweeps over the same corpus therefore skip
// scheduling entirely, and a cached result is bit-identical to a fresh one
// (io::DumpResult round-trip).
//
// Entry files are self-describing:
//     hclc 1 <32-hex-digit key>
//     <canonical `hcl 1 result` document>
//     checksum <16-hex-digit fnv1a over the document>
// A key mismatch (stale entry, e.g. a truncated-hash collision or a file
// renamed by hand) or checksum/parse failure is counted as a reject and
// falls through to a fresh schedule; corrupt entries never surface.
//
// Thread safety: Get/Put may be called concurrently (the batch scheduler
// runs requests on the shared thread pool). Counters are atomics; writes
// go through io::WriteFileAtomic (temp + rename), so readers never observe
// torn entries. Two threads writing the same key write identical bytes.
#pragma once

#include <atomic>
#include <optional>
#include <string>

#include "core/mirs.h"
#include "service/cache_tier.h"

namespace hcrf::service {

class DiskTier : public CacheTier {
 public:
  /// `dir` is created lazily on first Put.
  explicit DiskTier(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Returns the cached result for `key`, or nullopt (miss or reject).
  std::optional<core::ScheduleResult> Get(const CacheKey& key) override;

  /// Stores `result` under `key` (atomic write; errors are swallowed —
  /// the cache is an accelerator, never a correctness dependency).
  void Put(const CacheKey& key, const core::ScheduleResult& result) override;

  /// Put with the canonical `hcl 1 result` document already serialized;
  /// the tiered stack dumps once and shares the bytes with the memory
  /// tier's size accounting.
  void PutBody(const CacheKey& key, const std::string& body);

  struct Stats {
    long hits = 0;
    long misses = 0;
    long rejects = 0;  ///< Stale key, bad checksum or unparsable entry.
    long writes = 0;
  };
  Stats stats() const;
  TierStats tier_stats() const override;

  /// Offline directory census for `hcrf_sched cache-stats`.
  struct DirStats {
    long entries = 0;
    long bytes = 0;
  };
  static DirStats Scan(const std::string& dir);

 private:
  std::string EntryPath(const CacheKey& key) const;

  std::string dir_;
  std::atomic<long> hits_{0};
  std::atomic<long> misses_{0};
  std::atomic<long> rejects_{0};
  std::atomic<long> writes_{0};
};

/// Historical name: the disk store predates the tier stack, and the batch /
/// sweep / repro layers (and their tests) refer to it as ScheduleCache.
using ScheduleCache = DiskTier;

}  // namespace hcrf::service
