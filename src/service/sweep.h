// Design-space sweep service: the paper's central experiment — the same
// loops scheduled by MIRS_HC under monolithic, clustered and hierarchical
// register-file organizations (Tables 2/5) — as a batch service.
//
// A sweep spec (`hcl 1 sweep`) names the workload (whole suites and/or
// graph files) and a grid of RF organizations: explicit paper-notation
// names plus an optional generative cross product of cluster counts ×
// per-cluster register capacities × shared-bank capacities. The executor
// expands the grid into per-(loop, machine) requests, dispatches them
// through the batch scheduler (shared perf::ThreadPool + persistent
// ScheduleCache, so a warm rerun is fully cache-served and the shared MII
// cache amortizes across configurations), and aggregates the results into
// per-organization comparison tables — achieved II vs MII, bound-class
// breakdown, communication / spill op counts — emitted as CSV and
// markdown.
//
// Spec grammar (canonical dump order; `#` comments allowed):
//     hcl 1 sweep
//     name <token>
//     suite <kernels|synth>          (zero or more)
//     graph <path>                   (zero or more; relative to the spec)
//     rf <organization>              (zero or more, paper notation)
//     grid clusters <n>...           (all three axes or none)
//     grid cluster_regs <n>...
//     grid shared_regs <n>...        (0 = no shared bank: pure clustered)
//     fus <n>            mem_ports <n>
//     characterize <0|1> budget <x>  max_ii <n>  iterative <0|1>
//     policy <name>
//     end
// Reports are deterministic: no timings or cache-hit flags, so a cold and
// a warm run of the same spec emit byte-identical CSV/markdown (the sweep
// acceptance criterion).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/mirs.h"
#include "hwmodel/characterize.h"
#include "machine/machine_config.h"
#include "service/batch.h"

namespace hcrf::service {

/// A parsed sweep specification (the grid, not its expansion).
struct SweepSpec {
  std::string name;                 ///< Report title; defaults to "sweep".
  std::vector<std::string> suites;  ///< Shared suites ("kernels", "synth").
  std::vector<std::string> graphs;  ///< Loop files, relative to the spec.
  std::vector<std::string> rfs;     ///< Explicit organizations.
  // Generative axes: the cross product clusters x cluster_regs x
  // shared_regs appended after the explicit `rfs` (ports from the paper's
  // design rule, RFConfig::DefaultLp/DefaultSp). Either all three axes are
  // present or none.
  std::vector<int> grid_clusters;
  std::vector<int> grid_cluster_regs;
  std::vector<int> grid_shared_regs;
  std::optional<int> num_fus;        ///< Baseline resources when unset.
  std::optional<int> num_mem_ports;
  bool characterize = true;  ///< Run organizations through the hw model.
  std::optional<double> budget_ratio;
  std::optional<int> max_ii;
  std::optional<bool> iterative;
  std::optional<core::ClusterPolicy> policy;
};

/// Parses / canonically dumps a sweep spec. Dump(Parse(Dump(s))) ==
/// Dump(s); the checked-in corpus/sweeps/ files are canonical.
SweepSpec ParseSweepSpec(std::string_view text,
                         std::string_view filename = "<hcl>");
std::string DumpSweepSpec(const SweepSpec& spec);
SweepSpec LoadSweepSpecFile(const std::string& path);

/// One expanded RF organization of the grid, ready to schedule on.
struct SweepMachine {
  std::string org;  ///< Canonical organization name (RFConfig::Name).
  MachineConfig machine;
};

/// The expanded organization axis: explicit `rf` entries first, then the
/// grid cross product (clusters-major), deduplicated by RF equality.
/// Combinations the machine model rejects (uneven resource split, more
/// pure clusters than memory ports, ...) are skipped, not errors — a
/// grid naturally sweeps past validity edges — and recorded as
/// "<org>: <reason>" so no part of the grid is dropped silently.
struct SweepPlan {
  std::vector<SweepMachine> machines;
  std::vector<std::string> skipped;
};
SweepPlan ExpandSweepMachines(const SweepSpec& spec,
                              hw::RFModelMode rf_model);

struct SweepOptions {
  /// Persistent schedule cache directory; empty disables caching.
  std::string cache_dir;
  /// Memory-tier entry bound (`--cache-mem`); 0 disables the hot tier.
  long cache_mem_entries = 0;
  /// Memory-tier byte bound; 0 = the MemoryTier default.
  long cache_mem_bytes = 0;
  /// Parallelism (perf::RunOptions convention: 0 = hardware concurrency).
  int threads = 0;
  hw::RFModelMode rf_model = hw::RFModelMode::kPaperTable;
};

/// One (organization, loop) cell of the sweep matrix — the deterministic
/// subset of a ScheduleResult the reports are built from.
struct SweepCell {
  std::string org;
  std::string loop;
  bool ok = false;
  bool cache_hit = false;  ///< Run metadata; never emitted in reports.
  std::string error;
  int ii = 0;
  int mii = 0;
  int sc = 0;
  core::BoundClass bound = core::BoundClass::kFU;
  int comm_ops = 0;
  int spill_ops = 0;  ///< Spill loads + stores (memory traffic added).
};

struct SweepReport {
  std::string name;
  std::vector<std::string> orgs;    ///< Expansion order.
  std::vector<std::string> loops;   ///< Workload order.
  std::vector<std::string> skipped; ///< Invalid grid combinations.
  std::vector<SweepCell> cells;     ///< Organization-major, loop-minor.
  ScheduleCache::Stats cache;       ///< Zeroes when caching is disabled.
  int scheduled = 0;
  int hits = 0;
  int failed = 0;
  double seconds = 0.0;
};

class SchedulerService;

/// Expands `spec` (graph paths resolved against `base_dir`, the spec
/// file's directory) and schedules every (organization, loop) pair
/// through the batch scheduler. Throws on an unloadable workload or an
/// empty expansion; per-cell scheduling failures surface as failed cells.
/// The session form schedules through an existing resident session (its
/// cache stack and parallelism config; report.cache is the per-call
/// delta); the options form wraps a transient, drained session.
SweepReport RunSweep(const SweepSpec& spec, const std::string& base_dir,
                     SchedulerService& session);
SweepReport RunSweep(const SweepSpec& spec, const std::string& base_dir,
                     const SweepOptions& opt);

/// Deterministic report renderings (identical for cold and warm runs).
/// CSV: one row per cell — org,loop,status,ii,mii,sc,bound,comm_ops,
/// spill_ops. Markdown: per-organization aggregate table, the II matrix
/// (loops x organizations) and the skipped-combination list.
std::string SweepCsv(const SweepReport& report);
std::string SweepMarkdown(const SweepReport& report);

}  // namespace hcrf::service
