// Resident scheduling daemon: a line-framed request protocol over a Unix
// domain socket, serving batch submissions from one long-lived
// SchedulerService session.
//
// Wire protocol (version 1). Every frame is a text line; binary-free,
// and every variable-length payload is preceded by its exact byte count,
// so the stream parses without lookahead. Payload documents reuse the
// strict .hcl parser/dumper (io/hcl.h) — the daemon accepts exactly what
// the files on disk contain, with the same error discipline.
//
//   client -> server (one request per connection):
//     hcrf 1 ping
//     hcrf 1 stats                       # obs registry as JSON
//     hcrf 1 cache-stats                 # tier + disk-census counters
//     hcrf 1 submit <n>                  # n scheduling requests follow
//       request <id>                     # then, per request:
//       loop <bytes>\n<hcl 1 loop doc>
//       machine <bytes>\n<hcl 1 machine doc>
//       options <bytes>\n<hcl 1 options doc>
//     hcrf 1 delta <n>                   # what-if: request blocks as in
//       ... request block ...            # submit, each followed by its
//       overrides <k>                    # perturbation list; the session
//       override <node> <latency>  (xk)  # warm-starts from near-key seeds
//
//   server -> client:
//     hcrf 1 ok                          # ping
//     hcrf 1 busy                        # admission control (see below)
//     hcrf 1 error <bytes>\n<message>    # malformed request
//     hcrf 1 stats <bytes>\n<json>
//     hcrf 1 cache-stats <bytes>\n<hcl 1 cache-stats doc>
//     hcrf 1 results <n>                 # then, per item:
//       item <index> <ok|failed> <hit|fresh>
//       result <bytes>\n<hcl 1 result doc>   # xor, on a failed load:
//       error <bytes>\n<message>
//     end
//
// Admission control / backpressure: at most `max_inflight` connections
// are in service at once. The check happens at accept time on the poll
// loop — a saturated server answers `hcrf 1 busy` and closes instead of
// queueing, so clients get an explicit signal rather than unbounded
// latency. Unix sockets accept in FIFO order, which makes the busy path
// deterministic to test: fill the slots with stalled submissions, and
// the next connection must bounce.
//
// Concurrency model: accepted connections run as TaskGroup tasks on a
// SpeculationPool the server owns, sized to `max_inflight` — NOT the
// process-shared pool, whose hardware_concurrency - 1 sizing is zero
// workers on a single-core host (tasks would then only run when the
// drain path steals them, i.e. never while serving). A dedicated pool
// guarantees every admitted connection a lane and keeps connection
// handling out of the speculative-II racing lanes. Handlers schedule
// through the shared SchedulerService; concurrent RunBatch calls
// serialize on the ThreadPool's session mutex, so batches execute back
// to back while their connections overlap on parsing and serialization.
//
// Drain semantics: RequestStop() is async-signal-safe (it only writes
// the self-pipe; the CLI wires SIGTERM/SIGINT to it). The poll loop then
// stops accepting, unlinks the socket path, finishes every in-flight
// connection, and settles the cache write-behind queue before Serve()
// returns — after a clean drain the disk tier holds every entry the
// session produced.
#pragma once

#include <atomic>
#include <string>

#include "perf/thread_pool.h"
#include "service/session.h"

namespace hcrf::service {

struct ServerOptions {
  /// Filesystem path of the listening socket. Created on Start();
  /// unlinked on drain. Start() fails if the path is already in use.
  std::string socket_path;
  /// Connections in service at once; further accepts answer `busy`.
  int max_inflight = 4;
  /// Per-recv timeout: a wedged client cannot hold a slot (or the drain)
  /// hostage forever. 0 = no timeout.
  int read_timeout_ms = 30000;
  /// The resident session's configuration (cache stack, parallelism,
  /// speculation).
  ServiceConfig service;
};

class Server {
 public:
  explicit Server(const ServerOptions& opt);
  ~Server();  ///< Stops and drains if Serve() is still running.

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens on `socket_path`. Throws std::runtime_error on
  /// socket/bind/listen failure (including a path already in use).
  void Start();

  /// Accepts and serves until RequestStop(); returns after every
  /// in-flight connection finished and the cache drained. Call Start()
  /// first.
  void Serve();

  /// Requests a graceful drain. Async-signal-safe (one write() to the
  /// self-pipe); callable from any thread or a signal handler, before or
  /// during Serve().
  void RequestStop();

  SchedulerService& session() { return session_; }
  const ServerOptions& options() const { return opt_; }

  /// Connections fully served (any verb) since Start().
  long served() const { return served_.load(std::memory_order_relaxed); }
  /// Connections bounced with `busy` since Start().
  long bounced() const { return bounced_.load(std::memory_order_relaxed); }

 private:
  void HandleConnection(int fd);

  ServerOptions opt_;
  SchedulerService session_;
  /// One worker per admission slot, so an admitted connection always has
  /// a thread even where the shared pools have none (see file comment).
  perf::SpeculationPool conn_pool_;
  int listen_fd_ = -1;
  /// True only once bind() succeeded, i.e. this process created the
  /// socket file. Gates every unlink: a Start() that lost the bind race
  /// (EADDRINUSE) must not tear down the running daemon's socket.
  bool owns_socket_ = false;
  int stop_pipe_[2] = {-1, -1};  ///< [read, write]; write side is the
                                 ///< async-signal-safe stop request.
  std::atomic<int> inflight_{0};
  std::atomic<long> served_{0};
  std::atomic<long> bounced_{0};
};

}  // namespace hcrf::service
