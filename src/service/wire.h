// Framing helpers for the daemon's wire protocol (see service/server.h
// for the grammar). Shared by the server and the client so the two ends
// can never drift: one buffered line/payload reader over a connected
// socket fd, and one encoder/decoder pair per protocol block.
//
// The reader is deliberately byte-exact: a line is everything up to '\n',
// a payload is exactly the announced byte count — no lookahead, no
// resynchronization. A malformed or truncated stream throws WireError;
// the server answers it with `hcrf 1 error`, the client surfaces it.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "service/batch.h"

namespace hcrf::service::wire {

/// Protocol violation: bad framing, oversized payload, truncated stream.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Sanity caps: a submit larger than this (or a single document bigger
/// than this) is a protocol error, not a workload.
inline constexpr long kMaxBatchRequests = 4096;
inline constexpr long kMaxPayloadBytes = 64L * 1024 * 1024;

/// Buffered reader/writer over a connected stream socket. Owns the fd
/// (closed on destruction). Reads use plain ::read and honor the
/// SO_RCVTIMEO configured by the acceptor/connector; short writes are
/// retried until complete.
class Conn {
 public:
  explicit Conn(int fd) : fd_(fd) {}
  ~Conn();

  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  /// Reads up to the next '\n' (consumed, not returned). Returns false
  /// on clean EOF before any byte; throws WireError on EOF mid-line or
  /// a read error/timeout.
  bool ReadLine(std::string* line);

  /// Reads exactly `n` bytes. Throws WireError on EOF or error.
  void ReadExact(std::size_t n, std::string* out);

  /// Writes all of `text`; returns false on a write error (connection
  /// gone — callers treat the reply as undeliverable, never fatal).
  /// Sends with MSG_NOSIGNAL, so a peer closing mid-write yields EPIPE
  /// here instead of delivering SIGPIPE to the process.
  bool WriteAll(std::string_view text);

  int fd() const { return fd_; }

 private:
  int fd_;
  std::string buf_;       ///< Bytes read but not yet consumed.
  std::size_t pos_ = 0;   ///< Consumption cursor into buf_.
};

/// Splits on single spaces (the protocol never uses other whitespace).
std::vector<std::string> SplitTokens(std::string_view line);

/// Reads `<keyword> <bytes>` + payload; enforces kMaxPayloadBytes.
std::string ReadPayload(Conn& conn, const std::string& keyword);
/// Writes `<keyword> <bytes>\n` + payload.
void WritePayload(Conn& conn, const std::string& keyword,
                  std::string_view payload);

/// One `request` block: encode on the client, decode on the server.
/// Latency overrides are not part of the wire format; WriteRequest
/// throws WireError when a request carries active override entries
/// (explicit refusal over silent loss).
void WriteRequest(Conn& conn, const BatchRequest& request);
BatchRequest ReadRequest(Conn& conn);

/// One `delta` request block: a regular request block followed by its
/// perturbation list (`overrides <k>` then k `override <node> <latency>`
/// lines — only active entries travel). Unlike WriteRequest this pair
/// DOES transmit latency overrides: a what-if delta is exactly a base
/// request plus perturbations. The decoder validates node ids against
/// the loop and leaves warm-start policy to the server's verb handler.
void WriteDeltaRequest(Conn& conn, const BatchRequest& request);
BatchRequest ReadDeltaRequest(Conn& conn);

/// One `item` result block of a `results` reply.
struct ReplyItem {
  std::string id;  ///< Request index rendered by the server ("0", "1", …).
  bool ok = false;
  bool cache_hit = false;
  std::string error;  ///< Set on failed items (no result payload then).
  core::ScheduleResult result;
};
void WriteItem(Conn& conn, std::size_t index, const BatchItem& item);
ReplyItem ReadItem(Conn& conn);

}  // namespace hcrf::service::wire
