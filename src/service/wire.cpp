#include "service/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "io/hcl.h"

namespace hcrf::service::wire {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

[[noreturn]] void FailTruncated(const std::string& what) {
  throw WireError("truncated stream while reading " + what);
}

}  // namespace

Conn::~Conn() {
  if (fd_ >= 0) ::close(fd_);
}

bool Conn::ReadLine(std::string* line) {
  line->clear();
  while (true) {
    const std::size_t nl = buf_.find('\n', pos_);
    if (nl != std::string::npos) {
      line->assign(buf_, pos_, nl - pos_);
      pos_ = nl + 1;
      if (pos_ == buf_.size()) {
        buf_.clear();
        pos_ = 0;
      }
      return true;
    }
    char chunk[kReadChunk];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n == 0) {
      if (buf_.size() == pos_) return false;  // clean EOF between frames
      FailTruncated("a line");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("read: ") + std::strerror(errno));
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

void Conn::ReadExact(std::size_t n, std::string* out) {
  out->clear();
  out->reserve(n);
  // Drain the lookahead buffer first, then read the remainder directly.
  const std::size_t buffered = std::min(n, buf_.size() - pos_);
  out->append(buf_, pos_, buffered);
  pos_ += buffered;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  while (out->size() < n) {
    char chunk[kReadChunk];
    const std::size_t want = std::min(n - out->size(), sizeof(chunk));
    const ssize_t got = ::read(fd_, chunk, want);
    if (got == 0) FailTruncated("a payload");
    if (got < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("read: ") + std::strerror(errno));
    }
    out->append(chunk, static_cast<std::size_t>(got));
  }
}

bool Conn::WriteAll(std::string_view text) {
  std::size_t off = 0;
  while (off < text.size()) {
    // MSG_NOSIGNAL: a peer that closed mid-write must surface as an
    // EPIPE return (-> false), not a process-killing SIGPIPE — WriteAll
    // is documented "never fatal" and both ends rely on that.
    const ssize_t n = ::send(fd_, text.data() + off, text.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::vector<std::string> SplitTokens(std::string_view line) {
  std::vector<std::string> toks;
  std::size_t i = 0;
  while (i < line.size()) {
    const std::size_t sp = line.find(' ', i);
    if (sp == std::string_view::npos) {
      toks.emplace_back(line.substr(i));
      break;
    }
    toks.emplace_back(line.substr(i, sp - i));
    i = sp + 1;
  }
  return toks;
}

std::string ReadPayload(Conn& conn, const std::string& keyword) {
  std::string line;
  if (!conn.ReadLine(&line)) FailTruncated("'" + keyword + "' frame");
  const std::vector<std::string> toks = SplitTokens(line);
  if (toks.size() != 2 || toks[0] != keyword) {
    throw WireError("expected '" + keyword + " <bytes>', got: " + line);
  }
  const std::optional<long> bytes = io::TryParseLong(toks[1]);
  if (!bytes || *bytes < 0 || *bytes > kMaxPayloadBytes) {
    throw WireError("bad '" + keyword + "' byte count: " + toks[1]);
  }
  std::string payload;
  conn.ReadExact(static_cast<std::size_t>(*bytes), &payload);
  return payload;
}

void WritePayload(Conn& conn, const std::string& keyword,
                  std::string_view payload) {
  conn.WriteAll(keyword + " " + std::to_string(payload.size()) + "\n");
  conn.WriteAll(payload);
}

void WriteRequest(Conn& conn, const BatchRequest& request) {
  for (int v : request.overrides.producer_latency) {
    if (v > 0) {
      throw WireError("request '" + request.id +
                      "' carries latency overrides, which the wire format "
                      "does not transmit");
    }
  }
  conn.WriteAll("request " + request.id + "\n");
  WritePayload(conn, "loop", io::DumpLoop(*request.loop));
  WritePayload(conn, "machine", io::DumpMachine(request.machine));
  WritePayload(conn, "options", io::DumpOptions(request.options));
}

BatchRequest ReadRequest(Conn& conn) {
  std::string line;
  if (!conn.ReadLine(&line)) FailTruncated("a 'request' block");
  if (line.rfind("request ", 0) != 0 || line.size() <= 8) {
    throw WireError("expected 'request <id>', got: " + line);
  }
  BatchRequest req;
  req.id = line.substr(8);
  const std::string loop_doc = ReadPayload(conn, "loop");
  const std::string machine_doc = ReadPayload(conn, "machine");
  const std::string options_doc = ReadPayload(conn, "options");
  // The strict .hcl parsers do the real validation; their HclErrors
  // propagate and become an `error` reply for this connection.
  req.loop = std::make_shared<workload::Loop>(
      io::ParseLoop(loop_doc, "<wire:" + req.id + ">"));
  req.machine = io::ParseMachine(machine_doc, "<wire:" + req.id + ">");
  req.options = io::ParseOptions(options_doc, "<wire:" + req.id + ">");
  return req;
}

void WriteDeltaRequest(Conn& conn, const BatchRequest& request) {
  conn.WriteAll("request " + request.id + "\n");
  WritePayload(conn, "loop", io::DumpLoop(*request.loop));
  WritePayload(conn, "machine", io::DumpMachine(request.machine));
  WritePayload(conn, "options", io::DumpOptions(request.options));
  // Only the active (index, latency) pairs travel: zero entries are
  // behaviorally inert (LatencyOverrides::For falls back), and the server
  // re-canonicalizes anyway.
  const std::vector<int>& pl = request.overrides.producer_latency;
  long active = 0;
  for (int v : pl) {
    if (v > 0) ++active;
  }
  conn.WriteAll("overrides " + std::to_string(active) + "\n");
  for (std::size_t i = 0; i < pl.size(); ++i) {
    if (pl[i] > 0) {
      conn.WriteAll("override " + std::to_string(i) + " " +
                    std::to_string(pl[i]) + "\n");
    }
  }
}

BatchRequest ReadDeltaRequest(Conn& conn) {
  BatchRequest req = ReadRequest(conn);
  std::string line;
  if (!conn.ReadLine(&line)) FailTruncated("an 'overrides' count");
  std::vector<std::string> toks = SplitTokens(line);
  const int num_slots = req.loop->ddg.NumSlots();
  std::optional<long> count;
  if (toks.size() == 2 && toks[0] == "overrides") {
    count = io::TryParseLong(toks[1]);
  }
  if (!count || *count < 0 || *count > num_slots) {
    throw WireError("expected 'overrides <count <= " +
                    std::to_string(num_slots) + ">', got: " + line);
  }
  for (long k = 0; k < *count; ++k) {
    if (!conn.ReadLine(&line)) FailTruncated("an 'override' entry");
    toks = SplitTokens(line);
    std::optional<long> index;
    std::optional<long> latency;
    if (toks.size() == 3 && toks[0] == "override") {
      index = io::TryParseLong(toks[1]);
      latency = io::TryParseLong(toks[2]);
    }
    // Latencies are bounded by the payload cap's spirit: a perturbation
    // beyond 1M cycles is a protocol error, not a machine.
    if (!index || *index < 0 || *index >= num_slots || !latency ||
        *latency <= 0 || *latency > 1'000'000) {
      throw WireError("expected 'override <node < " +
                      std::to_string(num_slots) +
                      "> <latency in [1, 1000000]>', got: " + line);
    }
    std::vector<int>& pl = req.overrides.producer_latency;
    if (static_cast<long>(pl.size()) <= *index) {
      pl.resize(static_cast<std::size_t>(*index) + 1, 0);
    }
    pl[static_cast<std::size_t>(*index)] = static_cast<int>(*latency);
  }
  return req;
}

void WriteItem(Conn& conn, std::size_t index, const BatchItem& item) {
  conn.WriteAll("item " + std::to_string(index) + " " +
                (item.ok ? "ok" : "failed") + " " +
                (item.cache_hit ? "hit" : "fresh") + "\n");
  if (!item.error.empty()) {
    WritePayload(conn, "error", item.error);
  } else {
    WritePayload(conn, "result", io::DumpResult(item.result));
  }
}

ReplyItem ReadItem(Conn& conn) {
  std::string line;
  if (!conn.ReadLine(&line)) FailTruncated("an 'item' block");
  const std::vector<std::string> toks = SplitTokens(line);
  if (toks.size() != 4 || toks[0] != "item" ||
      (toks[2] != "ok" && toks[2] != "failed") ||
      (toks[3] != "hit" && toks[3] != "fresh")) {
    throw WireError("expected 'item <i> <ok|failed> <hit|fresh>', got: " +
                    line);
  }
  ReplyItem item;
  item.id = toks[1];
  item.ok = toks[2] == "ok";
  item.cache_hit = toks[3] == "hit";
  // The payload keyword discriminates: items with an error message carry
  // it verbatim; everything else carries the result document.
  std::string header;
  if (!conn.ReadLine(&header)) FailTruncated("an item payload");
  const std::vector<std::string> htoks = SplitTokens(header);
  if (htoks.size() != 2 || (htoks[0] != "result" && htoks[0] != "error")) {
    throw WireError("expected 'result'/'error' payload, got: " + header);
  }
  const std::optional<long> bytes = io::TryParseLong(htoks[1]);
  if (!bytes || *bytes < 0 || *bytes > kMaxPayloadBytes) {
    throw WireError("bad item payload byte count: " + htoks[1]);
  }
  std::string payload;
  conn.ReadExact(static_cast<std::size_t>(*bytes), &payload);
  if (htoks[0] == "error") {
    item.error = payload;
  } else {
    item.result = io::ParseResult(payload, "<wire:item " + item.id + ">");
  }
  return item;
}

}  // namespace hcrf::service::wire
