// Batch scheduling front-end: scheduling as a service over .hcl files.
//
// A manifest (`hcl 1 manifest`) lists scheduling requests — a dependence
// graph file plus the machine configuration and options to schedule it
// under. The batch scheduler loads the requests, dispatches them through
// the shared perf::ThreadPool, and backs them with the persistent
// ScheduleCache so repeated sweeps over a corpus skip scheduling entirely.
//
// Manifest grammar (one request per line, `#` comments allowed):
//     hcl 1 manifest
//     request graph <path> [rf <name>] [machine <path>] [characterize 0|1]
//             [budget <x>] [max_ii <n>] [iterative 0|1] [policy <name>]
//     end
// `graph` paths (and `machine` paths) are resolved relative to the
// manifest's directory. `rf` names a paper-notation RF organization that
// is applied to baseline resources and, unless `characterize 0`, run
// through the hardware model (hw::ApplyCharacterization) exactly as the
// benches do; `machine` loads a full `hcl 1 machine` document instead and
// is mutually exclusive with `rf`/`characterize`.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/mirs.h"
#include "hwmodel/characterize.h"
#include "machine/machine_config.h"
#include "sched/lifetime.h"
#include "service/sched_cache.h"
#include "workload/workload.h"

namespace hcrf::service {

/// One parsed manifest line (before graph/machine files are loaded).
struct ManifestEntry {
  std::string graph;    ///< As written in the manifest.
  std::string machine;  ///< Machine-document path; empty = use `rf`.
  std::string rf = "S128";
  bool characterize = true;
  /// Whether rf/characterize appeared explicitly (the parser rejects
  /// combining either with `machine`, even at their default values).
  bool rf_set = false;
  bool characterize_set = false;
  std::optional<double> budget_ratio;
  std::optional<int> max_ii;
  std::optional<bool> iterative;
  std::optional<core::ClusterPolicy> policy;
  int line = 0;  ///< Manifest line, for error reporting.
};

/// Parses a manifest document. Throws io::HclError with line numbers.
std::vector<ManifestEntry> ParseManifest(std::string_view text,
                                         std::string_view filename);
std::vector<ManifestEntry> LoadManifestFile(const std::string& path);

/// A fully-resolved scheduling request. The loop is shared, not owned: a
/// design-space sweep schedules the same loop under every organization of
/// its grid, and per-request copies of whole dependence graphs would
/// scale as organizations x loops.
struct BatchRequest {
  std::string id;  ///< Label for reports (graph name or file stem).
  std::shared_ptr<const workload::Loop> loop;
  MachineConfig machine;
  core::MirsOptions options;
  /// Per-load producer-latency overrides (binding prefetching, see
  /// memsim::ClassifyBindingPrefetch) on the ids of `loop`. Part of the
  /// cache key: a prefetch run must never share an entry with a
  /// base-latency run of the same loop.
  sched::LatencyOverrides overrides;
  /// Warm-start policy: on an exact cache miss, probe the tier stack's
  /// near-key index (same loop + machine, differing options/overrides) and
  /// seed the engine with the closest entry. Set by `delta` submissions;
  /// warm-started results stay out of the exact-key cache (the cache
  /// contract serves cold bytes only), so the flag never changes what
  /// later exact hits return.
  bool allow_warm_start = false;
};

struct BatchOptions {
  /// Persistent cache directory; empty disables caching.
  std::string cache_dir;
  /// In-memory hot-tier bound in entries; 0 disables the memory tier
  /// (`--cache-mem=N`). When both tiers are on they stack as a
  /// TieredCache with write-behind to disk.
  long cache_mem_entries = 0;
  /// Memory-tier byte bound; 0 = the MemoryTier default (64 MiB).
  long cache_mem_bytes = 0;
  /// Parallelism (perf::RunOptions convention: 0 = hardware concurrency,
  /// 1 = strictly serial on the caller).
  int threads = 0;
  /// Hardware model used when a manifest entry asks for characterization.
  hw::RFModelMode rf_model = hw::RFModelMode::kPaperTable;
  /// Speculative II racing inside each request (MirsOptions::speculate_k;
  /// >= 2 races that many candidate IIs on the process SpeculationPool).
  /// An execution-strategy knob like `threads`, not part of the request:
  /// schedules are bit-identical either way, so it stays outside the
  /// cache key and cache entries are shared across modes.
  int speculate_k = 0;
  bool speculate_eager = false;
};

/// Wall-clock decomposition of one request's trip through the service.
/// Phases that did not run stay zero (mii/schedule/serialize on a cache
/// hit; cache_probe/serialize when caching is disabled).
struct RequestTiming {
  double queue_seconds = 0;  ///< Batch start until a worker picked it up.
  double cache_probe_seconds = 0;  ///< Cache key + persistent-cache Get.
  double mii_seconds = 0;       ///< MII bound (sweep-cache probe/compute).
  double schedule_seconds = 0;  ///< The MirsHC run itself.
  double serialize_seconds = 0;  ///< Result serialization + cache write.

  double Total() const {
    return queue_seconds + cache_probe_seconds + mii_seconds +
           schedule_seconds + serialize_seconds;
  }
  void Accumulate(const RequestTiming& d) {
    queue_seconds += d.queue_seconds;
    cache_probe_seconds += d.cache_probe_seconds;
    mii_seconds += d.mii_seconds;
    schedule_seconds += d.schedule_seconds;
    serialize_seconds += d.serialize_seconds;
  }
};

struct BatchItem {
  std::string id;
  bool ok = false;
  bool cache_hit = false;
  std::string error;  ///< Load/schedule failure; empty on success.
  core::ScheduleResult result;
  double seconds = 0.0;   ///< Wall time spent on this request.
  RequestTiming timing;   ///< Phase decomposition of `seconds` (+ queue).
};

struct BatchReport {
  std::vector<BatchItem> items;  ///< In request order.
  /// Whole-stack cache counters for this batch (hits from any tier;
  /// misses/writes at the durable boundary). Zeroes when caching is
  /// disabled.
  ScheduleCache::Stats cache;
  /// Memory-tier counters for this batch; zeroes without `--cache-mem`.
  /// entries/bytes are the residency at batch end, not a delta.
  TierStats mem_cache;
  int scheduled = 0;             ///< Fresh MirsHC runs.
  int hits = 0;                  ///< Requests served from the cache.
  int warm_starts = 0;           ///< Fresh runs seeded via near-key lookup.
  int failed = 0;
  double seconds = 0.0;   ///< Wall time of the whole batch.
  RequestTiming timing;   ///< Summed per-request phase timings.
};

/// Resolves one manifest entry into a dispatchable request: loads the
/// graph (and machine document, if named) relative to `base_dir`, applies
/// the RF organization + hardware characterization otherwise, and folds
/// the per-entry option overrides in. Throws on unloadable files.
BatchRequest ResolveManifestEntry(const ManifestEntry& entry,
                                  const std::string& base_dir,
                                  hw::RFModelMode rf_model);

/// Schedules every request (in parallel, cache-backed) on a transient
/// single-batch session (see service/session.h for the resident form).
/// Never throws for per-request failures; they surface as failed items.
BatchReport RunBatch(const std::vector<BatchRequest>& requests,
                     const BatchOptions& opt);

/// Loads `manifest_path`, resolves its requests and runs them. Entries
/// whose graph/machine files fail to load become failed items (the rest
/// of the batch still runs); a malformed manifest itself throws.
BatchReport RunManifest(const std::string& manifest_path,
                        const BatchOptions& opt);

}  // namespace hcrf::service
