#include "service/sched_cache.h"

#include <cstdio>
#include <filesystem>

#include "io/hcl.h"
#include "obs/metrics.h"
#include "perf/dual_hash.h"

namespace hcrf::service {

// The per-instance atomic counters stay (a cache object's stats() must
// describe that instance — RunBatch reports them per batch); the shared
// metrics registry additionally accumulates the process-wide view under
// `sched_cache.*`.

namespace {

namespace fs = std::filesystem;

using perf::Fnv1a;

std::string ToHex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

}  // namespace

DiskTier::DiskTier(std::string dir) : dir_(std::move(dir)) {}

std::string DiskTier::EntryPath(const CacheKey& key) const {
  return (fs::path(dir_) / (key.Hex() + ".hclc")).string();
}

std::optional<core::ScheduleResult> DiskTier::Get(const CacheKey& key) {
  const std::string path = EntryPath(key);
  std::string text;
  try {
    text = io::ReadFile(path);
  } catch (const std::runtime_error&) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs::GetCounter("sched_cache.misses").Add(1);
    return std::nullopt;
  }
  const auto reject = [&]() {
    rejects_.fetch_add(1, std::memory_order_relaxed);
    obs::GetCounter("sched_cache.rejects").Add(1);
    return std::nullopt;
  };

  // Header line: `hclc 1 <hex>`.
  const size_t header_end = text.find('\n');
  if (header_end == std::string::npos) return reject();
  const std::string header = text.substr(0, header_end);
  const std::string want = "hclc 1 " + key.Hex();
  if (header != want) return reject();  // stale key or foreign format

  // Trailer line: `checksum <hex>` over the body between them.
  size_t trailer_begin = text.rfind("\nchecksum ");
  if (trailer_begin == std::string::npos ||
      trailer_begin < header_end) {
    return reject();
  }
  ++trailer_begin;  // skip the '\n' that belongs to the body
  const std::string_view body(text.data() + header_end + 1,
                              trailer_begin - header_end - 1);
  std::string trailer = text.substr(trailer_begin);
  while (!trailer.empty() &&
         (trailer.back() == '\n' || trailer.back() == '\r')) {
    trailer.pop_back();
  }
  if (trailer != "checksum " + ToHex(Fnv1a(body))) return reject();

  try {
    core::ScheduleResult r = io::ParseResult(body, path);
    hits_.fetch_add(1, std::memory_order_relaxed);
    obs::GetCounter("sched_cache.hits").Add(1);
    return r;
  } catch (const io::HclError&) {
    return reject();
  }
}

void DiskTier::Put(const CacheKey& key, const core::ScheduleResult& result) {
  PutBody(key, io::DumpResult(result));
}

void DiskTier::PutBody(const CacheKey& key, const std::string& body) {
  std::string text = "hclc 1 " + key.Hex() + "\n";
  text += body;
  text += "checksum " + ToHex(Fnv1a(body)) + "\n";
  try {
    io::WriteFileAtomic(EntryPath(key), text);
    writes_.fetch_add(1, std::memory_order_relaxed);
    obs::GetCounter("sched_cache.writes").Add(1);
  } catch (const std::runtime_error&) {
    // Cache writes are best-effort; the schedule itself already exists.
  }
}

DiskTier::Stats DiskTier::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.rejects = rejects_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  return s;
}

TierStats DiskTier::tier_stats() const {
  const Stats s = stats();
  TierStats t;
  t.hits = s.hits;
  t.misses = s.misses;
  t.rejects = s.rejects;
  t.writes = s.writes;
  return t;
}

DiskTier::DirStats DiskTier::Scan(const std::string& dir) {
  DirStats ds;
  // Error-code overloads throughout: the directory may be mutated (or an
  // entry unlinked) while we scan, and a census must not throw over it.
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  const fs::directory_iterator end;
  while (!ec && it != end) {
    const fs::directory_entry& entry = *it;
    std::error_code entry_ec;
    if (entry.is_regular_file(entry_ec) && !entry_ec &&
        entry.path().extension() == ".hclc") {
      const std::uintmax_t size = entry.file_size(entry_ec);
      if (!entry_ec) {
        ++ds.entries;
        ds.bytes += static_cast<long>(size);
      }
    }
    it.increment(ec);
  }
  return ds;
}

}  // namespace hcrf::service
