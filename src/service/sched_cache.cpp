#include "service/sched_cache.h"

#include <cstdio>
#include <filesystem>

#include "io/hcl.h"
#include "obs/metrics.h"
#include "perf/dual_hash.h"

namespace hcrf::service {

// The per-instance atomic counters stay (a cache object's stats() must
// describe that instance — RunBatch reports them per batch); the shared
// metrics registry additionally accumulates the process-wide view under
// `sched_cache.*`.

namespace {

namespace fs = std::filesystem;

using perf::DualHash;
using perf::Fnv1a;

// Bumped whenever the serialized result format or the hashed content set
// changes; salts every key so stale-format entries read as misses.
constexpr std::uint64_t kCacheFormatSalt = 3;

std::string ToHex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

}  // namespace

std::string CacheKey::Hex() const { return ToHex(a) + ToHex(b); }

CacheKey MakeCacheKey(const DDG& g, const MachineConfig& m,
                      const core::MirsOptions& opt,
                      const sched::LatencyOverrides& overrides) {
  DualHash f;
  f.Mix(kCacheFormatSalt);

  // Machine: resources, RF organization, latencies, clock.
  f.Mix(static_cast<std::uint64_t>(m.num_fus));
  f.Mix(static_cast<std::uint64_t>(m.num_mem_ports));
  for (int v : {m.rf.clusters, m.rf.cluster_regs, m.rf.shared_regs, m.rf.lp,
                m.rf.sp, m.rf.buses}) {
    f.Mix(static_cast<std::uint64_t>(v));
  }
  for (int v : {m.lat.fadd, m.lat.fmul, m.lat.fdiv, m.lat.fsqrt,
                m.lat.load_hit, m.lat.store, m.lat.load_miss, m.lat.move,
                m.lat.loadr, m.lat.storer}) {
    f.Mix(static_cast<std::uint64_t>(v));
  }
  f.MixDouble(m.clock_ns);

  // Options (the serializable subset; injected policy objects are the
  // caller's responsibility and keyed out by convention).
  f.MixDouble(opt.budget_ratio);
  f.Mix(static_cast<std::uint64_t>(opt.max_ii));
  f.Mix(static_cast<std::uint64_t>(opt.iterative ? 1 : 2));
  f.Mix(static_cast<std::uint64_t>(opt.cluster_policy));

  // Loop identity: the cached result document embeds the graph name, so
  // structurally identical twins under different names must not share an
  // entry — a hit has to be bit-identical to a fresh schedule.
  f.Mix(static_cast<std::uint64_t>(g.name().size()));
  f.Mix(Fnv1a(g.name()));

  // Graph structure. Ids are stable and tombstones keep their slot, so
  // hashing alive slots in ascending order is canonical.
  f.Mix(static_cast<std::uint64_t>(g.NumSlots()));
  f.Mix(static_cast<std::uint64_t>(g.num_invariants()));
  for (NodeId v = 0; v < g.NumSlots(); ++v) {
    if (!g.IsAlive(v)) continue;
    const Node& n = g.node(v);
    f.Mix(static_cast<std::uint64_t>(v));
    f.Mix(static_cast<std::uint64_t>(n.op));
    f.Mix((n.inserted ? 1u : 0u) | (n.spill ? 2u : 0u) |
          (n.mem.has_value() ? 4u : 0u));
    if (n.mem.has_value()) {
      f.Mix(static_cast<std::uint64_t>(n.mem->array_id));
      f.Mix(static_cast<std::uint64_t>(n.mem->base));
      f.Mix(static_cast<std::uint64_t>(n.mem->stride));
    }
    f.Mix(static_cast<std::uint64_t>(n.invariant_uses.size()));
    for (std::int32_t inv : n.invariant_uses) {
      f.Mix(static_cast<std::uint64_t>(inv));
    }
    for (const Edge& e : g.OutEdges(v)) {
      f.Mix(static_cast<std::uint64_t>(e.src));
      f.Mix(static_cast<std::uint64_t>(e.dst));
      f.Mix(static_cast<std::uint64_t>(e.kind));
      f.Mix(static_cast<std::uint64_t>(e.distance));
    }
  }

  // Binding-prefetch latency overrides (empty in the common service path).
  // Only the positive (index, value) pairs and their count are mixed:
  // zero entries are behaviorally inert (LatencyOverrides::For falls back),
  // so two equivalent vectors that differ only in trailing-zero padding —
  // or an all-zero vector and an empty one — must key identically.
  std::uint64_t active_overrides = 0;
  for (int v : overrides.producer_latency) {
    if (v > 0) ++active_overrides;
  }
  f.Mix(active_overrides);
  for (size_t i = 0; i < overrides.producer_latency.size(); ++i) {
    if (overrides.producer_latency[i] > 0) {
      f.Mix(static_cast<std::uint64_t>(i));
      f.Mix(static_cast<std::uint64_t>(overrides.producer_latency[i]));
    }
  }
  return CacheKey{f.a, f.b};
}

ScheduleCache::ScheduleCache(std::string dir) : dir_(std::move(dir)) {}

std::string ScheduleCache::EntryPath(const CacheKey& key) const {
  return (fs::path(dir_) / (key.Hex() + ".hclc")).string();
}

std::optional<core::ScheduleResult> ScheduleCache::Get(const CacheKey& key) {
  const std::string path = EntryPath(key);
  std::string text;
  try {
    text = io::ReadFile(path);
  } catch (const std::runtime_error&) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs::GetCounter("sched_cache.misses").Add(1);
    return std::nullopt;
  }
  const auto reject = [&]() {
    rejects_.fetch_add(1, std::memory_order_relaxed);
    obs::GetCounter("sched_cache.rejects").Add(1);
    return std::nullopt;
  };

  // Header line: `hclc 1 <hex>`.
  const size_t header_end = text.find('\n');
  if (header_end == std::string::npos) return reject();
  const std::string header = text.substr(0, header_end);
  const std::string want = "hclc 1 " + key.Hex();
  if (header != want) return reject();  // stale key or foreign format

  // Trailer line: `checksum <hex>` over the body between them.
  size_t trailer_begin = text.rfind("\nchecksum ");
  if (trailer_begin == std::string::npos ||
      trailer_begin < header_end) {
    return reject();
  }
  ++trailer_begin;  // skip the '\n' that belongs to the body
  const std::string_view body(text.data() + header_end + 1,
                              trailer_begin - header_end - 1);
  std::string trailer = text.substr(trailer_begin);
  while (!trailer.empty() &&
         (trailer.back() == '\n' || trailer.back() == '\r')) {
    trailer.pop_back();
  }
  if (trailer != "checksum " + ToHex(Fnv1a(body))) return reject();

  try {
    core::ScheduleResult r = io::ParseResult(body, path);
    hits_.fetch_add(1, std::memory_order_relaxed);
    obs::GetCounter("sched_cache.hits").Add(1);
    return r;
  } catch (const io::HclError&) {
    return reject();
  }
}

void ScheduleCache::Put(const CacheKey& key,
                        const core::ScheduleResult& result) {
  const std::string body = io::DumpResult(result);
  std::string text = "hclc 1 " + key.Hex() + "\n";
  text += body;
  text += "checksum " + ToHex(Fnv1a(body)) + "\n";
  try {
    io::WriteFileAtomic(EntryPath(key), text);
    writes_.fetch_add(1, std::memory_order_relaxed);
    obs::GetCounter("sched_cache.writes").Add(1);
  } catch (const std::runtime_error&) {
    // Cache writes are best-effort; the schedule itself already exists.
  }
}

ScheduleCache::Stats ScheduleCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.rejects = rejects_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  return s;
}

ScheduleCache::DirStats ScheduleCache::Scan(const std::string& dir) {
  DirStats ds;
  // Error-code overloads throughout: the directory may be mutated (or an
  // entry unlinked) while we scan, and a census must not throw over it.
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  const fs::directory_iterator end;
  while (!ec && it != end) {
    const fs::directory_entry& entry = *it;
    std::error_code entry_ec;
    if (entry.is_regular_file(entry_ec) && !entry_ec &&
        entry.path().extension() == ".hclc") {
      const std::uintmax_t size = entry.file_size(entry_ec);
      if (!entry_ec) {
        ++ds.entries;
        ds.bytes += static_cast<long>(size);
      }
    }
    it.increment(ec);
  }
  return ds;
}

}  // namespace hcrf::service
