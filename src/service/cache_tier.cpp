#include "service/cache_tier.h"

#include <cstdio>

#include "io/hcl.h"
#include "obs/metrics.h"
#include "perf/dual_hash.h"
#include "service/sched_cache.h"

namespace hcrf::service {

namespace {

using perf::DualHash;
using perf::Fnv1a;

// Bumped whenever the serialized result format or the hashed content set
// changes; salts every key so stale-format entries read as misses.
// 3 -> 4: the mix order moved the options block behind the graph so the
// structural prefix (salt + machine + graph) is shared with
// MakeStructuralHash — old entries must read as misses.
constexpr std::uint64_t kCacheFormatSalt = 4;

constexpr long kDefaultMemBytes = 64L * 1024 * 1024;

std::string ToHex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

/// The structural prefix shared by MakeCacheKey and MakeStructuralHash:
/// format salt, machine (resources, RF organization, latencies, clock)
/// and graph (name + structure) — everything except options/overrides.
void MixStructural(DualHash& f, const DDG& g, const MachineConfig& m) {
  f.Mix(kCacheFormatSalt);

  // Machine: resources, RF organization, latencies, clock.
  f.Mix(static_cast<std::uint64_t>(m.num_fus));
  f.Mix(static_cast<std::uint64_t>(m.num_mem_ports));
  for (int v : {m.rf.clusters, m.rf.cluster_regs, m.rf.shared_regs, m.rf.lp,
                m.rf.sp, m.rf.buses}) {
    f.Mix(static_cast<std::uint64_t>(v));
  }
  for (int v : {m.lat.fadd, m.lat.fmul, m.lat.fdiv, m.lat.fsqrt,
                m.lat.load_hit, m.lat.store, m.lat.load_miss, m.lat.move,
                m.lat.loadr, m.lat.storer}) {
    f.Mix(static_cast<std::uint64_t>(v));
  }
  f.MixDouble(m.clock_ns);

  // Loop identity: the cached result document embeds the graph name, so
  // structurally identical twins under different names must not share an
  // entry — a hit has to be bit-identical to a fresh schedule.
  f.Mix(static_cast<std::uint64_t>(g.name().size()));
  f.Mix(Fnv1a(g.name()));

  // Graph structure. Ids are stable and tombstones keep their slot, so
  // hashing alive slots in ascending order is canonical.
  f.Mix(static_cast<std::uint64_t>(g.NumSlots()));
  f.Mix(static_cast<std::uint64_t>(g.num_invariants()));
  for (NodeId v = 0; v < g.NumSlots(); ++v) {
    if (!g.IsAlive(v)) continue;
    const Node& n = g.node(v);
    f.Mix(static_cast<std::uint64_t>(v));
    f.Mix(static_cast<std::uint64_t>(n.op));
    f.Mix((n.inserted ? 1u : 0u) | (n.spill ? 2u : 0u) |
          (n.mem.has_value() ? 4u : 0u));
    if (n.mem.has_value()) {
      f.Mix(static_cast<std::uint64_t>(n.mem->array_id));
      f.Mix(static_cast<std::uint64_t>(n.mem->base));
      f.Mix(static_cast<std::uint64_t>(n.mem->stride));
    }
    f.Mix(static_cast<std::uint64_t>(n.invariant_uses.size()));
    for (std::int32_t inv : n.invariant_uses) {
      f.Mix(static_cast<std::uint64_t>(inv));
    }
    for (const Edge& e : g.OutEdges(v)) {
      f.Mix(static_cast<std::uint64_t>(e.src));
      f.Mix(static_cast<std::uint64_t>(e.dst));
      f.Mix(static_cast<std::uint64_t>(e.kind));
      f.Mix(static_cast<std::uint64_t>(e.distance));
    }
  }
}

}  // namespace

std::string CacheKey::Hex() const { return ToHex(a) + ToHex(b); }

std::uint64_t MakeStructuralHash(const DDG& g, const MachineConfig& m) {
  DualHash f;
  MixStructural(f, g, m);
  // Same fold as CacheKeyHash: both words' entropy survives truncation.
  return f.a ^ (f.b * 0x9e3779b97f4a7c15ull);
}

CacheKey MakeCacheKey(const DDG& g, const MachineConfig& m,
                      const core::MirsOptions& opt,
                      const sched::LatencyOverrides& overrides) {
  DualHash f;
  MixStructural(f, g, m);

  // Options (the serializable subset; injected policy objects are the
  // caller's responsibility and keyed out by convention).
  f.MixDouble(opt.budget_ratio);
  f.Mix(static_cast<std::uint64_t>(opt.max_ii));
  f.Mix(static_cast<std::uint64_t>(opt.iterative ? 1 : 2));
  f.Mix(static_cast<std::uint64_t>(opt.cluster_policy));

  // Binding-prefetch latency overrides (empty in the common service path).
  // Only the positive (index, value) pairs and their count are mixed:
  // zero entries are behaviorally inert (LatencyOverrides::For falls back),
  // so two equivalent vectors that differ only in trailing-zero padding —
  // or an all-zero vector and an empty one — must key identically.
  std::uint64_t active_overrides = 0;
  for (int v : overrides.producer_latency) {
    if (v > 0) ++active_overrides;
  }
  f.Mix(active_overrides);
  for (size_t i = 0; i < overrides.producer_latency.size(); ++i) {
    if (overrides.producer_latency[i] > 0) {
      f.Mix(static_cast<std::uint64_t>(i));
      f.Mix(static_cast<std::uint64_t>(overrides.producer_latency[i]));
    }
  }
  return CacheKey{f.a, f.b};
}

// ---------------------------------------------------------------------------
// MemoryTier
// ---------------------------------------------------------------------------

MemoryTier::MemoryTier(const Config& config) {
  max_entries_ = config.max_entries > 0 ? config.max_entries : 1;
  max_bytes_ = config.max_bytes > 0 ? config.max_bytes : kDefaultMemBytes;

  // Round the shard count down to a power of two so the prefix mask is
  // exact, and clamp to [1, max_entries] so every shard holds >= 1 entry.
  long shards = config.shards > 0 ? config.shards : 1;
  if (shards > max_entries_) shards = max_entries_;
  long pow2 = 1;
  while (pow2 * 2 <= shards) pow2 *= 2;

  shard_max_entries_ = max_entries_ / pow2;
  shard_max_bytes_ = max_bytes_ / pow2;
  if (shard_max_bytes_ < 1) shard_max_bytes_ = 1;

  int log2 = 0;
  for (long p = pow2; p > 1; p /= 2) ++log2;
  // pow2 == 1 masks to shard 0 regardless; 63 keeps the shift defined.
  shard_shift_ = log2 > 0 ? 64 - log2 : 63;

  shards_ = std::vector<Shard>(static_cast<std::size_t>(pow2));
}

std::optional<core::ScheduleResult> MemoryTier::Get(const CacheKey& key) {
  Shard& s = ShardFor(key);
  std::optional<core::ScheduleResult> out;
  {
    MutexLock lock(s.mu);
    auto it = s.index.find(key);
    if (it != s.index.end()) {
      s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh recency
      out = it->second->result;
    }
  }
  if (out.has_value()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    obs::GetCounter("mem_cache.hits").Add(1);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs::GetCounter("mem_cache.misses").Add(1);
  }
  return out;
}

void MemoryTier::Put(const CacheKey& key, const core::ScheduleResult& result) {
  // Standalone use (no disk tier sharing a serialization): dump once to
  // price the entry. The dump is canonical, so this is the same byte count
  // the tiered stack passes through PutSized.
  PutSized(key, result, static_cast<long>(io::DumpResult(result).size()));
}

void MemoryTier::PutSized(const CacheKey& key,
                          const core::ScheduleResult& result, long bytes) {
  if (bytes > shard_max_bytes_) {
    // Admitting it would force the shard to hold this entry alone (or not
    // at all); count and skip rather than churn the whole shard.
    oversize_.fetch_add(1, std::memory_order_relaxed);
    obs::GetCounter("mem_cache.oversize").Add(1);
    return;
  }
  Shard& s = ShardFor(key);
  int evicted = 0;
  bool inserted = false;
  {
    MutexLock lock(s.mu);
    auto it = s.index.find(key);
    if (it != s.index.end()) {
      // Same key ⇒ identical bytes (the cache contract); just refresh.
      s.lru.splice(s.lru.begin(), s.lru, it->second);
    } else {
      evicted = EvictToFit(s, bytes);
      s.lru.push_front(Entry{key, result, bytes});
      s.index.emplace(key, s.lru.begin());
      s.bytes += bytes;
      inserted = true;
    }
  }
  if (inserted) {
    writes_.fetch_add(1, std::memory_order_relaxed);
    entries_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
    obs::GetCounter("mem_cache.writes").Add(1);
  }
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    obs::GetCounter("mem_cache.evictions").Add(evicted);
  }
  obs::GetGauge("mem_cache.entries")
      .Set(entries_.load(std::memory_order_relaxed));
  obs::GetGauge("mem_cache.bytes").Set(bytes_.load(std::memory_order_relaxed));
}

int MemoryTier::EvictToFit(Shard& s, long incoming_bytes) {
  int evicted = 0;
  while (!s.lru.empty() &&
         (static_cast<long>(s.lru.size()) >= shard_max_entries_ ||
          s.bytes + incoming_bytes > shard_max_bytes_)) {
    const Entry& victim = s.lru.back();
    s.bytes -= victim.bytes;
    entries_.fetch_sub(1, std::memory_order_relaxed);
    bytes_.fetch_sub(victim.bytes, std::memory_order_relaxed);
    s.index.erase(victim.key);
    s.lru.pop_back();
    ++evicted;
  }
  return evicted;
}

TierStats MemoryTier::tier_stats() const {
  TierStats t;
  t.hits = hits_.load(std::memory_order_relaxed);
  t.misses = misses_.load(std::memory_order_relaxed);
  t.writes = writes_.load(std::memory_order_relaxed);
  t.evictions = evictions_.load(std::memory_order_relaxed);
  t.oversize = oversize_.load(std::memory_order_relaxed);
  t.entries = entries_.load(std::memory_order_relaxed);
  t.bytes = bytes_.load(std::memory_order_relaxed);
  t.near_hits = near_hits_.load(std::memory_order_relaxed);
  t.near_misses = near_misses_.load(std::memory_order_relaxed);
  return t;
}

void MemoryTier::NoteStructural(std::uint64_t structural,
                                const CacheKey& key) {
  MutexLock lock(near_mu_);
  if (static_cast<long>(near_.size()) >= 4 * max_entries_ &&
      near_.find(structural) == near_.end()) {
    // The index outgrew the tier it serves (keys churning faster than
    // entries): drop it wholesale. Cheap, and only future seeds are lost.
    near_.clear();
  }
  near_[structural] = key;  // latest exact key wins on collision
}

std::optional<CacheKey> MemoryTier::StructuralLookup(
    std::uint64_t structural, const CacheKey& exclude) const {
  MutexLock lock(near_mu_);
  auto it = near_.find(structural);
  if (it == near_.end() || it->second == exclude) return std::nullopt;
  return it->second;
}

void MemoryTier::CountNear(bool hit) {
  if (hit) {
    near_hits_.fetch_add(1, std::memory_order_relaxed);
    obs::GetCounter("mem_cache.near_hits").Add(1);
  } else {
    near_misses_.fetch_add(1, std::memory_order_relaxed);
    obs::GetCounter("mem_cache.near_misses").Add(1);
  }
}

std::optional<core::ScheduleResult> MemoryTier::GetNear(
    std::uint64_t structural, const CacheKey& exclude) {
  std::optional<core::ScheduleResult> out;
  if (std::optional<CacheKey> key = StructuralLookup(structural, exclude)) {
    out = Get(*key);  // may miss: the LRU can have evicted the entry
  }
  CountNear(out.has_value());
  return out;
}

// ---------------------------------------------------------------------------
// TieredCache
// ---------------------------------------------------------------------------

TieredCache::TieredCache(std::unique_ptr<MemoryTier> memory,
                         std::unique_ptr<DiskTier> disk, bool write_behind)
    : memory_(std::move(memory)),
      disk_(std::move(disk)),
      write_behind_(write_behind) {}

TieredCache::~TieredCache() { Drain(); }

std::optional<core::ScheduleResult> TieredCache::Get(const CacheKey& key) {
  if (auto hot = memory_->Get(key)) return hot;
  auto cold = disk_->Get(key);
  if (cold.has_value()) {
    // Promote: the next Get for this key is memory-served. Sizing dumps
    // the result once, but only on this cold path.
    memory_->PutSized(key, *cold,
                      static_cast<long>(io::DumpResult(*cold).size()));
  }
  return cold;
}

void TieredCache::Put(const CacheKey& key, const core::ScheduleResult& result) {
  const std::string body = io::DumpResult(result);
  memory_->PutSized(key, result, static_cast<long>(body.size()));
  if (write_behind_) {
    // The scheduling worker returns immediately; the filesystem write runs
    // on the speculation pool (safe to feed from any thread, including
    // pool workers). Racing writers of one key produce identical bytes and
    // DiskTier writes are atomic, so ordering does not matter.
    DiskTier* disk = disk_.get();
    writes_.Submit([disk, key, body] { disk->PutBody(key, body); });
  } else {
    disk_->PutBody(key, body);
  }
}

void TieredCache::Drain() { writes_.RunAndWait(); }

void TieredCache::NoteStructural(std::uint64_t structural,
                                 const CacheKey& key) {
  memory_->NoteStructural(structural, key);
}

std::optional<core::ScheduleResult> TieredCache::GetNear(
    std::uint64_t structural, const CacheKey& exclude) {
  std::optional<core::ScheduleResult> out;
  if (std::optional<CacheKey> key =
          memory_->StructuralLookup(structural, exclude)) {
    // Resolve through the stack's own Get: a memory hit refreshes the LRU,
    // and a key the memory tier evicted is served from disk and promoted —
    // the index never strands on eviction.
    out = Get(*key);
  }
  memory_->CountNear(out.has_value());
  return out;
}

TierStats TieredCache::tier_stats() const {
  const TierStats mem = memory_->tier_stats();
  const TierStats disk = disk_->tier_stats();
  TierStats t;
  t.hits = mem.hits + disk.hits;  // served from any tier
  t.misses = disk.misses;         // a memory miss that hits disk is not a miss
  t.rejects = disk.rejects;
  t.writes = disk.writes;
  t.evictions = mem.evictions;
  t.oversize = mem.oversize;
  t.entries = mem.entries;
  t.bytes = mem.bytes;
  t.near_hits = mem.near_hits;
  t.near_misses = mem.near_misses;
  return t;
}

}  // namespace hcrf::service
