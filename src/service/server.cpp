#include "service/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/check.h"
#include "io/hcl.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perf/thread_pool.h"
#include "service/wire.h"

namespace hcrf::service {

namespace {

[[noreturn]] void FailErrno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// The cache-stats payload: one `hcl 1 cache-stats` document combining
/// the session's stack counters with an on-the-spot disk census, so one
/// endpoint answers both "how is this session doing" and "what is on
/// disk" — the two views the one-shot CLI used to compute from different
/// cache instances.
std::string CacheStatsDoc(SchedulerService& session) {
  const TierStats stack = session.tier_stats();
  const TierStats mem = session.memory_stats();
  DiskTier::DirStats census;
  if (session.disk_tier() != nullptr) {
    census = DiskTier::Scan(session.disk_tier()->dir());
  }
  std::string doc = "hcl 1 cache-stats\n";
  const auto field = [&doc](const char* name, long v) {
    doc += name;
    doc += ' ';
    doc += std::to_string(v);
    doc += '\n';
  };
  field("hits", stack.hits);
  field("misses", stack.misses);
  field("rejects", stack.rejects);
  field("writes", stack.writes);
  field("evictions", stack.evictions);
  field("oversize", stack.oversize);
  field("entries", stack.entries);
  field("bytes", stack.bytes);
  field("mem_hits", mem.hits);
  field("near_hits", mem.near_hits);
  field("near_misses", mem.near_misses);
  field("disk_entries", census.entries);
  field("disk_bytes", census.bytes);
  doc += "end\n";
  return doc;
}

}  // namespace

Server::Server(const ServerOptions& opt)
    : opt_(opt),
      session_(opt.service),
      conn_pool_(opt.max_inflight > 0 ? opt.max_inflight : 1) {}

Server::~Server() {
  RequestStop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  // Unlink only a socket this process bound: if Start() lost the bind
  // race (EADDRINUSE), the path belongs to the daemon that won it.
  if (owns_socket_) ::unlink(opt_.socket_path.c_str());
  for (int fd : stop_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

void Server::Start() {
  HCRF_CHECK(listen_fd_ < 0, "Start() called twice");
  if (opt_.socket_path.empty()) {
    throw std::runtime_error("serve: socket path is empty");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opt_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: socket path too long: " +
                             opt_.socket_path);
  }
  std::memcpy(addr.sun_path, opt_.socket_path.c_str(),
              opt_.socket_path.size() + 1);

  if (::pipe(stop_pipe_) != 0) FailErrno("serve: pipe");
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) FailErrno("serve: socket");
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    FailErrno("serve: bind " + opt_.socket_path);
  }
  owns_socket_ = true;  // the socket file on disk is now ours to unlink
  if (::listen(listen_fd_, 64) != 0) FailErrno("serve: listen");
}

void Server::RequestStop() {
  // Async-signal-safe: one write(), no locks, no allocation. Serve()'s
  // poll wakes on the pipe; repeated requests are harmless.
  if (stop_pipe_[1] >= 0) {
    const char b = 's';
    [[maybe_unused]] ssize_t n = ::write(stop_pipe_[1], &b, 1);
  }
}

void Server::Serve() {
  HCRF_CHECK(listen_fd_ >= 0, "Serve() without Start()");
  obs::GetGauge("server.max_inflight").Set(opt_.max_inflight);

  // Connection handlers ride the server's own pool (one worker per
  // admission slot — see server.h); the drain below (RunAndWait) steals
  // queued handlers inline, so even a wedged pool cannot deadlock the
  // shutdown.
  perf::TaskGroup conns(conn_pool_);

  bool stopping = false;
  while (!stopping) {
    pollfd fds[2];
    fds[0] = {stop_pipe_[0], POLLIN, 0};
    fds[1] = {listen_fd_, POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;  // signal: re-check the stop pipe
      FailErrno("serve: poll");
    }
    if ((fds[0].revents & POLLIN) != 0) {
      stopping = true;
      break;
    }
    // An error condition on either fd is permanent: poll would keep
    // reporting it immediately, so `continue` would spin at 100% CPU.
    // Fail loudly instead; the caller still runs the drain below.
    constexpr short kBadRevents = POLLERR | POLLHUP | POLLNVAL;
    if ((fds[0].revents & kBadRevents) != 0 ||
        (fds[1].revents & kBadRevents) != 0) {
      throw std::runtime_error(
          "serve: poll reported an error condition on the " +
          std::string((fds[0].revents & kBadRevents) != 0 ? "stop pipe"
                                                          : "listen socket"));
    }
    if ((fds[1].revents & POLLIN) == 0) continue;

    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // Resource exhaustion is transient load, not a broken listener:
      // shed this connection (the client sees a refused/reset connect),
      // back off briefly so the loop cannot hot-spin, and keep serving.
      if (errno == EMFILE || errno == ENFILE || errno == ENOMEM ||
          errno == ENOBUFS) {
        obs::GetCounter("server.accept_overload").Add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      FailErrno("serve: accept");
    }
    if (opt_.read_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = opt_.read_timeout_ms / 1000;
      tv.tv_usec = (opt_.read_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }

    // Admission control at accept time, on this thread: the in-flight
    // count is exact (handlers decrement only after their slot's work is
    // done), so saturation answers `busy` deterministically instead of
    // queueing the connection behind a full pool.
    int inflight = inflight_.load(std::memory_order_relaxed);
    bool admitted = false;
    while (inflight < opt_.max_inflight) {
      if (inflight_.compare_exchange_weak(inflight, inflight + 1,
                                          std::memory_order_relaxed)) {
        admitted = true;
        break;
      }
    }
    if (!admitted) {
      bounced_.fetch_add(1, std::memory_order_relaxed);
      obs::GetCounter("server.busy").Add(1);
      wire::Conn conn(fd);  // takes ownership; closes on scope exit
      conn.WriteAll("hcrf 1 busy\n");
      continue;
    }
    conns.Submit([this, fd] {
      HandleConnection(fd);
      inflight_.fetch_sub(1, std::memory_order_relaxed);
    });
  }

  // Graceful drain: stop accepting (unlink first, so new connect()s fail
  // fast instead of queueing on a dying socket), finish every admitted
  // connection, then settle the cache write-behind queue.
  if (owns_socket_) {
    ::unlink(opt_.socket_path.c_str());
    owns_socket_ = false;
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  conns.RunAndWait();
  session_.Drain();
  obs::GetGauge("server.draining").Set(0);
}

void Server::HandleConnection(int fd) {
  wire::Conn conn(fd);
  obs::TraceSpan span("server", "connection");
  static obs::Counter& conn_count = obs::GetCounter("server.connections");
  conn_count.Add(1);

  const auto send_error = [&conn](const std::string& message) {
    conn.WriteAll("hcrf 1 error " + std::to_string(message.size()) + "\n" +
                  message);
  };

  try {
    std::string line;
    if (!conn.ReadLine(&line)) return;  // closed or timed out: no reply
    std::vector<std::string> toks = wire::SplitTokens(line);
    if (toks.size() < 3 || toks[0] != "hcrf" || toks[1] != "1") {
      send_error("bad request line: " + line);
      return;
    }
    const std::string& verb = toks[2];

    if (verb == "ping" && toks.size() == 3) {
      conn.WriteAll("hcrf 1 ok\n");
    } else if (verb == "stats" && toks.size() == 3) {
      const std::string json = obs::Registry::Shared().Json();
      conn.WriteAll("hcrf 1 stats " + std::to_string(json.size()) + "\n" +
                    json);
    } else if (verb == "cache-stats" && toks.size() == 3) {
      const std::string doc = CacheStatsDoc(session_);
      conn.WriteAll("hcrf 1 cache-stats " + std::to_string(doc.size()) +
                    "\n" + doc);
    } else if ((verb == "submit" || verb == "delta") && toks.size() == 4) {
      const std::optional<long> n = io::TryParseLong(toks[3]);
      if (!n || *n < 0 || *n > wire::kMaxBatchRequests) {
        send_error("bad " + verb + " count: " + toks[3]);
        return;
      }
      std::vector<BatchRequest> requests;
      requests.reserve(static_cast<size_t>(*n));
      for (long i = 0; i < *n; ++i) {
        // Both readers throw WireError; a delta block additionally carries
        // its perturbation list and opts the request into warm-start
        // seeding from the session's near-key index.
        if (verb == "delta") {
          requests.push_back(wire::ReadDeltaRequest(conn));
          requests.back().allow_warm_start = true;
        } else {
          requests.push_back(wire::ReadRequest(conn));
        }
      }
      span.set_detail(verb + " " + std::to_string(*n));
      const BatchReport report = session_.RunBatch(requests);
      std::string head =
          "hcrf 1 results " + std::to_string(report.items.size()) + "\n";
      conn.WriteAll(head);
      for (size_t i = 0; i < report.items.size(); ++i) {
        wire::WriteItem(conn, i, report.items[i]);
      }
      conn.WriteAll("end\n");
    } else {
      send_error("unknown verb: " + verb);
      return;
    }
    served_.fetch_add(1, std::memory_order_relaxed);
  } catch (const wire::WireError& e) {
    send_error(e.what());
  } catch (const std::exception& e) {
    // Parser errors from a payload document (io::HclError et al.) are the
    // client's mistake, reported on its own connection; the daemon lives.
    send_error(e.what());
  }
}

}  // namespace hcrf::service
