#include "service/batch.h"

#include <filesystem>
#include <memory>

#include "io/hcl.h"
#include "io/scanner.h"
#include "service/session.h"

namespace hcrf::service {

namespace {

namespace fs = std::filesystem;

ManifestEntry ParseRequestLine(const io::Scanner& sc, const io::TokLine& tl) {
  if (tl.toks.size() % 2 != 1) {
    io::Fail(sc.file, tl.number, "'request' expects key/value pairs");
  }
  ManifestEntry e;
  e.line = tl.number;
  for (size_t i = 1; i + 1 < tl.toks.size(); i += 2) {
    const std::string_view key = tl.toks[i];
    const std::string_view val = tl.toks[i + 1];
    if (key == "graph") {
      e.graph = std::string(val);
    } else if (key == "machine") {
      e.machine = std::string(val);
    } else if (key == "rf") {
      e.rf = std::string(val);
      e.rf_set = true;
    } else if (key == "characterize") {
      e.characterize = io::ScanInt(sc, tl.number, val, key) != 0;
      e.characterize_set = true;
    } else if (key == "budget") {
      e.budget_ratio = io::ScanDouble(sc, tl.number, val, key);
    } else if (key == "max_ii") {
      e.max_ii = io::ScanInt(sc, tl.number, val, key);
    } else if (key == "iterative") {
      e.iterative = io::ScanInt(sc, tl.number, val, key) != 0;
    } else if (key == "policy") {
      e.policy = io::ClusterPolicyFromName(val);
      if (!e.policy) {
        io::Fail(sc.file, tl.number,
                 "unknown cluster policy '" + std::string(val) + "'");
      }
    } else {
      io::Fail(sc.file, tl.number,
               "unknown request field '" + std::string(key) + "'");
    }
  }
  if (e.graph.empty()) {
    io::Fail(sc.file, tl.number, "'request' missing the 'graph' field");
  }
  if (!e.machine.empty() && (e.rf_set || e.characterize_set)) {
    io::Fail(sc.file, tl.number,
             "'machine' is mutually exclusive with 'rf'/'characterize'");
  }
  return e;
}

}  // namespace

std::vector<ManifestEntry> ParseManifest(std::string_view text,
                                         std::string_view filename) {
  io::Scanner sc = io::Tokenize(text, filename);
  io::ExpectHeader(sc, "manifest");
  std::vector<ManifestEntry> entries;
  while (true) {
    if (sc.Done()) io::Fail(filename, sc.LastLine(), "missing 'end'");
    const io::TokLine& tl = sc.Next();
    if (tl.toks[0] == "end") {
      io::WantToks(sc, tl, 1);
      if (!sc.Done()) {
        io::Fail(filename, sc.Peek().number, "content after 'end'");
      }
      return entries;
    }
    if (tl.toks[0] != "request") {
      io::Fail(filename, tl.number,
               "unknown directive '" + std::string(tl.toks[0]) + "'");
    }
    entries.push_back(ParseRequestLine(sc, tl));
  }
}

std::vector<ManifestEntry> LoadManifestFile(const std::string& path) {
  return ParseManifest(io::ReadFile(path), path);
}

BatchRequest ResolveManifestEntry(const ManifestEntry& e,
                                  const std::string& base_dir,
                                  hw::RFModelMode rf_model) {
  const fs::path base(base_dir);
  BatchRequest req;
  req.loop = std::make_shared<workload::Loop>(
      io::LoadLoopFile((base / e.graph).string()));
  req.id = req.loop->ddg.name().empty() ? e.graph : req.loop->ddg.name();
  if (!e.machine.empty()) {
    req.machine = io::LoadMachineFile((base / e.machine).string());
  } else {
    req.machine = MachineConfig::WithRF(RFConfig::Parse(e.rf));
    if (e.characterize && !req.machine.rf.UnboundedClusterRegs() &&
        !req.machine.rf.UnboundedSharedRegs()) {
      req.machine = hw::ApplyCharacterization(req.machine, rf_model);
    }
  }
  if (e.budget_ratio) req.options.budget_ratio = *e.budget_ratio;
  if (e.max_ii) req.options.max_ii = *e.max_ii;
  if (e.iterative) req.options.iterative = *e.iterative;
  if (e.policy) req.options.cluster_policy = *e.policy;
  return req;
}

// The free functions are the transient-session form: one SchedulerService
// per call, drained before reporting so the counters are exact even with
// write-behind (a fresh session's lifetime totals ARE the batch totals).

BatchReport RunBatch(const std::vector<BatchRequest>& requests,
                     const BatchOptions& opt) {
  SchedulerService session(ServiceConfig::FromBatch(opt));
  BatchReport report = session.RunBatch(requests);
  session.Drain();
  if (session.has_cache()) {
    report.cache = session.cache_stats();
    report.mem_cache = session.memory_stats();
  }
  return report;
}

BatchReport RunManifest(const std::string& manifest_path,
                        const BatchOptions& opt) {
  SchedulerService session(ServiceConfig::FromBatch(opt));
  BatchReport report = session.RunManifest(manifest_path);
  session.Drain();
  if (session.has_cache()) {
    report.cache = session.cache_stats();
    report.mem_cache = session.memory_stats();
  }
  return report;
}

}  // namespace hcrf::service
