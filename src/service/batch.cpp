#include "service/batch.h"

#include <chrono>
#include <filesystem>
#include <memory>

#include "io/hcl.h"
#include "io/scanner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perf/runner.h"
#include "perf/thread_pool.h"

namespace hcrf::service {

namespace {

namespace fs = std::filesystem;

ManifestEntry ParseRequestLine(const io::Scanner& sc, const io::TokLine& tl) {
  if (tl.toks.size() % 2 != 1) {
    io::Fail(sc.file, tl.number, "'request' expects key/value pairs");
  }
  ManifestEntry e;
  e.line = tl.number;
  for (size_t i = 1; i + 1 < tl.toks.size(); i += 2) {
    const std::string_view key = tl.toks[i];
    const std::string_view val = tl.toks[i + 1];
    if (key == "graph") {
      e.graph = std::string(val);
    } else if (key == "machine") {
      e.machine = std::string(val);
    } else if (key == "rf") {
      e.rf = std::string(val);
      e.rf_set = true;
    } else if (key == "characterize") {
      e.characterize = io::ScanInt(sc, tl.number, val, key) != 0;
      e.characterize_set = true;
    } else if (key == "budget") {
      e.budget_ratio = io::ScanDouble(sc, tl.number, val, key);
    } else if (key == "max_ii") {
      e.max_ii = io::ScanInt(sc, tl.number, val, key);
    } else if (key == "iterative") {
      e.iterative = io::ScanInt(sc, tl.number, val, key) != 0;
    } else if (key == "policy") {
      e.policy = io::ClusterPolicyFromName(val);
      if (!e.policy) {
        io::Fail(sc.file, tl.number,
                 "unknown cluster policy '" + std::string(val) + "'");
      }
    } else {
      io::Fail(sc.file, tl.number,
               "unknown request field '" + std::string(key) + "'");
    }
  }
  if (e.graph.empty()) {
    io::Fail(sc.file, tl.number, "'request' missing the 'graph' field");
  }
  if (!e.machine.empty() && (e.rf_set || e.characterize_set)) {
    io::Fail(sc.file, tl.number,
             "'machine' is mutually exclusive with 'rf'/'characterize'");
  }
  return e;
}

}  // namespace

std::vector<ManifestEntry> ParseManifest(std::string_view text,
                                         std::string_view filename) {
  io::Scanner sc = io::Tokenize(text, filename);
  io::ExpectHeader(sc, "manifest");
  std::vector<ManifestEntry> entries;
  while (true) {
    if (sc.Done()) io::Fail(filename, sc.LastLine(), "missing 'end'");
    const io::TokLine& tl = sc.Next();
    if (tl.toks[0] == "end") {
      io::WantToks(sc, tl, 1);
      if (!sc.Done()) {
        io::Fail(filename, sc.Peek().number, "content after 'end'");
      }
      return entries;
    }
    if (tl.toks[0] != "request") {
      io::Fail(filename, tl.number,
               "unknown directive '" + std::string(tl.toks[0]) + "'");
    }
    entries.push_back(ParseRequestLine(sc, tl));
  }
}

std::vector<ManifestEntry> LoadManifestFile(const std::string& path) {
  return ParseManifest(io::ReadFile(path), path);
}

BatchReport RunBatch(const std::vector<BatchRequest>& requests,
                     const BatchOptions& opt) {
  BatchReport report;
  report.items.resize(requests.size());

  std::unique_ptr<ScheduleCache> cache;
  if (!opt.cache_dir.empty()) {
    cache = std::make_unique<ScheduleCache>(opt.cache_dir);
  }

  const auto wall0 = std::chrono::steady_clock::now();
  perf::ThreadPool& pool = perf::ThreadPool::Shared();
  const int max_workers =
      opt.threads > 0 ? opt.threads : pool.num_workers() + 1;
  pool.ParallelFor(requests.size(), max_workers, [&](size_t i) {
    static obs::Counter& req_count = obs::GetCounter("service.requests");
    static obs::Counter& hit_count = obs::GetCounter("service.cache_hits");
    static obs::Histogram& req_hist =
        obs::GetHistogram("service.request_seconds");
    const BatchRequest& req = requests[i];
    BatchItem& item = report.items[i];
    item.id = req.id;
    const auto t0 = std::chrono::steady_clock::now();
    item.timing.queue_seconds =
        std::chrono::duration<double>(t0 - wall0).count();
    obs::TraceSpan req_span("service", "request");
    req_span.set_detail(req.id);
    const auto phase_seconds = [](const auto& since) {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           since)
          .count();
    };
    CacheKey key{};
    if (cache) {
      obs::TraceSpan probe_span("phase", "cache-probe");
      const auto p0 = std::chrono::steady_clock::now();
      key = MakeCacheKey(req.loop->ddg, req.machine, req.options,
                         req.overrides);
      if (std::optional<core::ScheduleResult> hit = cache->Get(key)) {
        item.result = *std::move(hit);
        item.ok = item.result.ok;
        item.cache_hit = true;
      }
      item.timing.cache_probe_seconds = phase_seconds(p0);
    }
    if (!item.cache_hit) {
      core::MirsOptions mirs = req.options;
      // Execution strategy, not request semantics (see BatchOptions): the
      // speculative engine commits bit-identical results, and the nested
      // racing rides the SpeculationPool, so a 1-thread batch still races.
      // Batch-level knob wins when set; otherwise the request's own value
      // (e.g. from `hcrf_sched schedule --speculate`) stands.
      if (opt.speculate_k > 0) {
        mirs.speculate_k = opt.speculate_k;
        mirs.speculate_eager = opt.speculate_eager;
      }
      if (!mirs.precomputed_mii) {
        // The MII depends on the graph, the latency table and the global
        // resource counts — not the RF organization — so the process-wide
        // sweep cache shares it across the configurations of a
        // design-space sweep (and across repeated batches in-process).
        const auto m0 = std::chrono::steady_clock::now();
        mirs.precomputed_mii =
            perf::CachedMii(req.loop->ddg, req.machine, req.overrides);
        item.timing.mii_seconds = phase_seconds(m0);
      }
      const auto s0 = std::chrono::steady_clock::now();
      item.result =
          core::MirsHC(req.loop->ddg, req.machine, mirs, req.overrides);
      item.timing.schedule_seconds = phase_seconds(s0);
      item.ok = item.result.ok;
      if (cache) {
        obs::TraceSpan write_span("phase", "serialize");
        const auto w0 = std::chrono::steady_clock::now();
        cache->Put(key, item.result);
        item.timing.serialize_seconds = phase_seconds(w0);
      }
    }
    if (!item.ok && item.error.empty()) {
      item.error = "scheduling failed (no II <= max_ii admitted a schedule)";
    }
    item.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    req_count.Add(1);
    if (item.cache_hit) hit_count.Add(1);
    req_hist.Record(item.seconds);
  });
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();

  for (const BatchItem& item : report.items) {
    if (item.cache_hit) {
      ++report.hits;
    } else {
      ++report.scheduled;
    }
    if (!item.ok) ++report.failed;
    report.timing.Accumulate(item.timing);
  }
  if (cache) report.cache = cache->stats();
  return report;
}

BatchReport RunManifest(const std::string& manifest_path,
                        const BatchOptions& opt) {
  const std::vector<ManifestEntry> entries = LoadManifestFile(manifest_path);
  const fs::path base = fs::path(manifest_path).parent_path();

  std::vector<BatchRequest> requests;
  std::vector<size_t> request_slot;  // maps run items back to report slots
  requests.reserve(entries.size());

  BatchReport report;
  report.items.resize(entries.size());

  for (size_t i = 0; i < entries.size(); ++i) {
    const ManifestEntry& e = entries[i];
    BatchItem& item = report.items[i];
    const std::string graph_path = (base / e.graph).string();
    item.id = e.graph;
    try {
      BatchRequest req;
      req.loop = std::make_shared<workload::Loop>(io::LoadLoopFile(graph_path));
      req.id = req.loop->ddg.name().empty() ? e.graph : req.loop->ddg.name();
      if (!e.machine.empty()) {
        req.machine = io::LoadMachineFile((base / e.machine).string());
      } else {
        req.machine = MachineConfig::WithRF(RFConfig::Parse(e.rf));
        if (e.characterize && !req.machine.rf.UnboundedClusterRegs() &&
            !req.machine.rf.UnboundedSharedRegs()) {
          req.machine = hw::ApplyCharacterization(req.machine, opt.rf_model);
        }
      }
      if (e.budget_ratio) req.options.budget_ratio = *e.budget_ratio;
      if (e.max_ii) req.options.max_ii = *e.max_ii;
      if (e.iterative) req.options.iterative = *e.iterative;
      if (e.policy) req.options.cluster_policy = *e.policy;
      item.id = req.id;
      requests.push_back(std::move(req));
      request_slot.push_back(i);
    } catch (const std::exception& ex) {
      item.ok = false;
      item.error = ex.what();
      ++report.failed;
    }
  }

  BatchReport run = RunBatch(requests, opt);
  for (size_t r = 0; r < run.items.size(); ++r) {
    report.items[request_slot[r]] = std::move(run.items[r]);
  }
  report.cache = run.cache;
  report.scheduled = run.scheduled;
  report.hits = run.hits;
  report.failed += run.failed;
  report.seconds = run.seconds;
  report.timing = run.timing;
  return report;
}

}  // namespace hcrf::service
