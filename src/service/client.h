// Client for the resident scheduling daemon (service/server.h): connects
// to the Unix socket, speaks the line-framed wire protocol, and returns
// parsed results. One connection per call — the protocol is one request
// per connection, which keeps the daemon's admission control exact.
//
// Error model: connect/framing/parse failures throw std::runtime_error
// (WireError for protocol violations). Saturation is NOT an error — a
// `busy` reply surfaces as SubmitReply::busy so callers can back off and
// retry; per-request scheduling failures come back as failed items, the
// same contract as service::RunBatch.
#pragma once

#include <string>
#include <vector>

#include "service/batch.h"
#include "service/wire.h"

namespace hcrf::service {

struct SubmitReply {
  bool busy = false;  ///< Server saturated; no items. Back off and retry.
  std::vector<wire::ReplyItem> items;  ///< In request order.
};

class Client {
 public:
  /// `read_timeout_ms` bounds every blocking read (0 = no timeout).
  /// Batch submissions schedule on the far side before the reply, so the
  /// default is generous.
  explicit Client(std::string socket_path, int read_timeout_ms = 120000);

  const std::string& socket_path() const { return socket_path_; }

  /// True if the daemon answers `ok`; false when saturated (`busy`).
  /// Throws when the socket is unreachable.
  bool Ping();

  /// Submits `requests` for scheduling. Results are bit-identical to a
  /// local RunBatch of the same requests (the daemon schedules through
  /// the same engine and serialization). Requests carrying latency
  /// overrides are refused locally (WireError) — the wire format does
  /// not transmit them.
  SubmitReply Submit(const std::vector<BatchRequest>& requests);

  /// What-if submission: like Submit, but each request's latency
  /// overrides travel as an explicit perturbation list and the daemon
  /// warm-starts from its near-key cache index (seeding a neighbouring
  /// schedule and repairing the delta instead of rescheduling cold;
  /// falls back cold when no usable seed exists).
  SubmitReply SubmitDelta(const std::vector<BatchRequest>& requests);

  /// The daemon's obs metrics registry as JSON.
  std::string Stats();

  /// The daemon's cache counters + disk census as an `hcl 1 cache-stats`
  /// document.
  std::string CacheStats();

 private:
  /// Connects and returns the fd; throws std::runtime_error on failure.
  int Connect() const;
  /// Submit/SubmitDelta body: verb + request blocks, then the results
  /// reply.
  SubmitReply SubmitVerb(const std::string& verb,
                         const std::vector<BatchRequest>& requests);

  std::string socket_path_;
  int read_timeout_ms_;
};

}  // namespace hcrf::service
