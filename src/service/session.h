// SchedulerService: the resident scheduling session.
//
// Before this layer, every front-end call (`RunBatch`, `RunSweep`,
// `RunExperiments`, each CLI invocation) constructed its own
// ScheduleCache, read its own flags and flushed its own stats — process
// state lived as locals of one run. A resident daemon inverts that: the
// cache stack, the parallelism/speculation configuration and the stats
// views are fields of one long-lived SchedulerService, and every request
// path — one-shot CLI, sweep, repro, the Unix-socket server — schedules
// through the same session object. One code path, one set of counters,
// one drain point.
//
// Ownership model:
//  * The session owns the cache stack (MemoryTier / DiskTier /
//    TieredCache, per ServiceConfig) for its whole lifetime; batch calls
//    borrow it. Per-batch stats are deltas of the stack counters around
//    the call.
//  * The worker pools stay process-wide (perf::ThreadPool::Shared(),
//    perf::SpeculationPool::Shared()); the session only carries the
//    parallelism cap and speculation knobs applied per batch.
//  * Drain() settles the write-behind queue; the destructor drains too.
//    A one-shot wrapper drains before reporting (exact counters), the
//    daemon drains on SIGTERM.
//
// Thread safety: RunBatch may be called from multiple threads (the server
// dispatches concurrent submissions); calls serialize on the shared
// pool's session mutex, and the cache stack and stats snapshots are
// internally synchronized.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "service/batch.h"
#include "service/cache_tier.h"
#include "service/sched_cache.h"

namespace hcrf::service {

/// Durable configuration of a scheduling session — what used to arrive
/// as per-call BatchOptions, fixed at session construction.
struct ServiceConfig {
  /// Persistent cache directory; empty disables the disk tier.
  std::string cache_dir;
  /// Memory-tier entry bound; 0 disables the memory tier.
  long cache_mem_entries = 0;
  /// Memory-tier byte bound; 0 = the MemoryTier default (64 MiB).
  long cache_mem_bytes = 0;
  /// Disk writes ride the SpeculationPool (Drain() settles them). Tests
  /// that need deterministic write counts mid-run switch to synchronous.
  bool write_behind = true;
  /// Parallelism cap per batch (0 = hardware concurrency).
  int threads = 0;
  hw::RFModelMode rf_model = hw::RFModelMode::kPaperTable;
  /// Speculative II racing (MirsOptions::speculate_k) applied to every
  /// request of every batch when > 0.
  int speculate_k = 0;
  bool speculate_eager = false;

  static ServiceConfig FromBatch(const BatchOptions& opt);
};

class SchedulerService {
 public:
  explicit SchedulerService(const ServiceConfig& config);
  ~SchedulerService();  ///< Drains queued cache writes.

  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  const ServiceConfig& config() const { return config_; }

  /// Schedules every request in parallel against the session cache stack.
  /// Never throws for per-request failures; they surface as failed items.
  /// report.cache / report.mem_cache are deltas over this call; with
  /// write-behind on, `writes` may still be in flight at return (Drain()
  /// for exact totals — the one-shot wrappers do).
  BatchReport RunBatch(const std::vector<BatchRequest>& requests);

  /// Loads `manifest_path`, resolves its requests and runs them through
  /// this session. Unloadable entries become failed items; a malformed
  /// manifest throws.
  BatchReport RunManifest(const std::string& manifest_path);

  /// Settles the write-behind queue (no-op for synchronous stacks).
  void Drain();

  bool has_cache() const { return cache_ != nullptr; }
  /// The stack (or single tier); nullptr when caching is disabled.
  CacheTier* cache() { return cache_.get(); }
  /// Borrowed tier views; nullptr when that tier is not configured.
  MemoryTier* memory_tier() { return memory_; }
  DiskTier* disk_tier() { return disk_; }

  /// Whole-stack counters since session construction, in the legacy
  /// four-field shape (hits from any tier; misses/rejects/writes at the
  /// durable boundary).
  ScheduleCache::Stats cache_stats() const;
  /// Whole-stack counters since session construction.
  TierStats tier_stats() const;
  /// Memory-tier counters since session construction; zeroes when the
  /// memory tier is not configured.
  TierStats memory_stats() const;

 private:
  ServiceConfig config_;
  std::unique_ptr<CacheTier> cache_;  ///< Null = caching disabled.
  MemoryTier* memory_ = nullptr;      ///< View into cache_ (or null).
  DiskTier* disk_ = nullptr;          ///< View into cache_ (or null).
};

}  // namespace hcrf::service
