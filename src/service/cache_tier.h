// Tiered schedule-cache interface: the storage layers behind the
// scheduling service.
//
// PRs 2-7 grew one on-disk, content-addressed schedule store
// (service::ScheduleCache). The resident daemon needs that store to be a
// *tier* of a stack rather than a per-run local: a sharded in-memory hot
// tier absorbs the traffic of repeated submissions without lock
// contention or disk parses, and the on-disk tier keeps the durable,
// process-crossing view. This header extracts the common interface —
// CacheKey, Get/Put/Drain, per-tier counters — and provides the two new
// layers:
//
//  * MemoryTier — sharded by cache-key prefix (the top bits of the first
//    hash word pick the shard, so concurrent workers on different keys
//    never touch the same mutex), LRU-bounded by entry count AND resident
//    bytes. An entry's byte cost is its canonical serialized size, so the
//    bound means what an operator thinks it means.
//  * TieredCache — MemoryTier in front of DiskTier. Gets probe memory
//    first, then disk (promoting hits); Puts land in memory and are
//    written behind to disk on the process SpeculationPool, so the
//    scheduling worker never waits on the filesystem. Drain() settles
//    every queued write (the daemon calls it on SIGTERM; one-shot runs
//    drain before reporting).
//
// Correctness contract, inherited from the disk store: a result served
// from ANY tier is bit-identical (io::DumpResult) to a fresh schedule.
// The memory tier stores the exact core::ScheduleResult object and the
// dumps are canonical, so the existing cold/warm smoke checks gate the
// whole stack.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/mirs.h"
#include "core/thread_annotations.h"
#include "ddg/ddg.h"
#include "machine/machine_config.h"
#include "perf/thread_pool.h"
#include "sched/lifetime.h"

namespace hcrf::service {

/// 128-bit structural key (two independent 64-bit hashes; same rationale
/// as the MII sweep cache: collisions must stay negligible over long-lived
/// heavy-traffic processes).
struct CacheKey {
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  bool operator==(const CacheKey&) const = default;
  /// 32 lowercase hex digits; doubles as the entry's file stem.
  std::string Hex() const;
};

/// Hash adaptor for unordered containers: `a` is already a high-quality
/// hash, `b` folds in so truncation to size_t keeps both words' entropy.
struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    return static_cast<std::size_t>(k.a ^ (k.b * 0x9e3779b97f4a7c15ull));
  }
};

/// Hashes the schedule-relevant content: graph name and structure (ops,
/// flags, memory refs, invariant uses, edges), machine (resources, RF fields,
/// latencies, clock) and options (budget_ratio, max_ii, iterative,
/// cluster_policy), plus per-load latency overrides when binding
/// prefetching is in play (only the positive override entries count, so
/// trailing-zero padding does not split keys). A format-version salt
/// invalidates all entries when the serialization changes.
CacheKey MakeCacheKey(const DDG& graph, const MachineConfig& m,
                      const core::MirsOptions& opt,
                      const sched::LatencyOverrides& overrides = {});

/// The structural half of MakeCacheKey: graph + machine only, no options
/// and no overrides. Two requests share a structural hash exactly when
/// they schedule the same loop on the same machine — the equivalence the
/// near-key index uses to serve warm-start seeds across differing
/// options/override cells. Folded to 64 bits (same fold as CacheKeyHash).
std::uint64_t MakeStructuralHash(const DDG& graph, const MachineConfig& m);

/// Per-tier counters. Flow counters (hits/misses/rejects/writes/evictions/
/// oversize) are monotonic since construction; residency (entries/bytes)
/// is the current footprint — only the memory tier accounts residency
/// (the disk tier's census is an offline DiskTier::Scan).
struct TierStats {
  long hits = 0;
  long misses = 0;
  long rejects = 0;    ///< Corrupt/stale entries (disk tier only).
  long writes = 0;     ///< Entries stored (admissions, not updates).
  long evictions = 0;  ///< LRU victims (memory tier only).
  long oversize = 0;   ///< Entries too large to admit (memory tier only).
  long entries = 0;    ///< Resident entry count (memory tier only).
  long bytes = 0;      ///< Resident serialized bytes (memory tier only).
  long near_hits = 0;    ///< Near-key lookups that produced a seed.
  long near_misses = 0;  ///< Near-key lookups that found nothing usable.
};

/// One storage layer of the schedule-cache stack. Implementations must be
/// safe for concurrent Get/Put from the scheduling workers.
class CacheTier {
 public:
  virtual ~CacheTier() = default;

  /// Returns the cached result for `key`, or nullopt (miss or reject).
  virtual std::optional<core::ScheduleResult> Get(const CacheKey& key) = 0;

  /// Stores `result` under `key`. Best-effort: failures (I/O errors, an
  /// entry too large for the memory bound) are counted, never thrown —
  /// the cache is an accelerator, not a correctness dependency.
  virtual void Put(const CacheKey& key,
                   const core::ScheduleResult& result) = 0;

  /// Blocks until asynchronously queued work (write-behind) has settled.
  /// A no-op for synchronous tiers.
  virtual void Drain() {}

  /// Remembers `key` as the latest resident entry for structural hash
  /// `structural` (see MakeStructuralHash). Tiers without a near-key
  /// index ignore the note.
  virtual void NoteStructural(std::uint64_t structural,
                              const CacheKey& key) {
    (void)structural;
    (void)key;
  }

  /// Near-key lookup: the closest resident entry sharing `structural`
  /// (same graph + machine, differing options/overrides), excluding
  /// `exclude` (the requester's own exact key, already known to miss).
  /// Serves warm-start seeds; tiers without an index always miss.
  virtual std::optional<core::ScheduleResult> GetNear(
      std::uint64_t structural, const CacheKey& exclude) {
    (void)structural;
    (void)exclude;
    return std::nullopt;
  }

  /// Counters since construction (aggregated across sub-tiers for a
  /// stacked implementation).
  virtual TierStats tier_stats() const = 0;
};

class DiskTier;  // the on-disk store, declared in service/sched_cache.h

/// Sharded, LRU-bounded in-memory hot tier.
class MemoryTier : public CacheTier {
 public:
  struct Config {
    /// Maximum resident entries across all shards (>= 1).
    long max_entries = 4096;
    /// Maximum resident serialized bytes across all shards; 0 = derive
    /// the default (64 MiB).
    long max_bytes = 0;
    /// Shard count; rounded down to a power of two and clamped to
    /// [1, max_entries] so every shard can hold at least one entry.
    int shards = 16;
  };

  explicit MemoryTier(const Config& config);

  std::optional<core::ScheduleResult> Get(const CacheKey& key) override;
  void Put(const CacheKey& key, const core::ScheduleResult& result) override;
  /// Put with the entry's canonical serialized size already known — the
  /// tiered stack serializes once for the disk write-behind and shares
  /// the byte count instead of dumping twice.
  void PutSized(const CacheKey& key, const core::ScheduleResult& result,
                long bytes);
  TierStats tier_stats() const override;

  // ---- near-key index (warm-start seeds) -------------------------------
  /// structural-hash -> latest exact key noted for it (latest wins on
  /// collision: the newest neighbour is the freshest seed).
  void NoteStructural(std::uint64_t structural, const CacheKey& key) override;
  /// GetNear through this tier only: index lookup + memory Get. A stacked
  /// cache uses StructuralLookup/CountNear instead, so a remembered key
  /// whose entry was LRU-evicted from memory can still be served (and
  /// promoted) from disk.
  std::optional<core::ScheduleResult> GetNear(std::uint64_t structural,
                                              const CacheKey& exclude)
      override;
  /// The remembered key for `structural`, or nullopt (never `exclude`).
  /// Does not count a near hit/miss — the caller resolves the key against
  /// whatever tier(s) it fronts and reports the outcome via CountNear.
  std::optional<CacheKey> StructuralLookup(std::uint64_t structural,
                                           const CacheKey& exclude) const;
  /// Records the outcome of a near-key lookup (counters + obs registry).
  void CountNear(bool hit);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  long max_entries() const { return max_entries_; }
  long max_bytes() const { return max_bytes_; }

 private:
  struct Entry {
    CacheKey key;
    core::ScheduleResult result;
    long bytes = 0;
  };
  /// One shard: its own mutex, LRU list (front = most recent) and index.
  /// Per-shard capacity is the global bound divided by the shard count,
  /// so the sum across shards can never exceed the configured bounds.
  struct Shard {
    mutable Mutex mu;
    std::list<Entry> lru HCRF_GUARDED_BY(mu);
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
        index HCRF_GUARDED_BY(mu);
    long bytes HCRF_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const CacheKey& key) {
    // Key *prefix* selects the shard: the top bits of the first hash word
    // are the leading hex digits of the entry name.
    return shards_[(key.a >> shard_shift_) & (shards_.size() - 1)];
  }
  /// Evicts from the back of `s` until it fits its per-shard bounds with
  /// `incoming_bytes` about to be added. Returns evicted entry count.
  int EvictToFit(Shard& s, long incoming_bytes) HCRF_REQUIRES(s.mu);

  long max_entries_ = 0;        ///< Global bound (config).
  long max_bytes_ = 0;          ///< Global bound (config or default).
  long shard_max_entries_ = 0;  ///< Per-shard slice of max_entries_.
  long shard_max_bytes_ = 0;    ///< Per-shard slice of max_bytes_.
  int shard_shift_ = 0;         ///< 64 - log2(shards): prefix extraction.
  std::vector<Shard> shards_;

  std::atomic<long> hits_{0};
  std::atomic<long> misses_{0};
  std::atomic<long> writes_{0};
  std::atomic<long> evictions_{0};
  std::atomic<long> oversize_{0};
  std::atomic<long> entries_{0};
  std::atomic<long> bytes_{0};

  /// Near-key index. A single mutex (not sharded): NoteStructural runs
  /// once per fresh schedule and GetNear once per exact miss — both orders
  /// of magnitude rarer than Get — so contention is negligible. Bounded by
  /// wholesale clear at 4x max_entries_ (the index stores 32 bytes per
  /// slot; losing it only costs future seeds, never correctness).
  mutable Mutex near_mu_;
  std::unordered_map<std::uint64_t, CacheKey> near_ HCRF_GUARDED_BY(near_mu_);
  std::atomic<long> near_hits_{0};
  std::atomic<long> near_misses_{0};
};

/// MemoryTier stacked in front of DiskTier with write-behind. Both tiers
/// are required; single-tier configurations use the tier directly.
class TieredCache : public CacheTier {
 public:
  /// `write_behind` = false degrades disk writes to synchronous (used by
  /// tests that need deterministic write counts mid-run; the service
  /// default is asynchronous).
  TieredCache(std::unique_ptr<MemoryTier> memory,
              std::unique_ptr<DiskTier> disk, bool write_behind = true);
  ~TieredCache() override;  ///< Drains queued writes.

  std::optional<core::ScheduleResult> Get(const CacheKey& key) override;
  void Put(const CacheKey& key, const core::ScheduleResult& result) override;
  void Drain() override;
  /// Aggregate view: hits from any tier count, misses/rejects/writes are
  /// the disk tier's (a memory miss that hits disk is not a stack miss),
  /// evictions/oversize/entries/bytes are the memory tier's (near_hits/
  /// near_misses too — the index lives there).
  TierStats tier_stats() const override;

  /// The near index lives in the memory tier; notes route there.
  void NoteStructural(std::uint64_t structural, const CacheKey& key) override;
  /// Near lookup against the whole stack: the remembered key resolves
  /// through the stack's own Get, so an entry the memory LRU evicted is
  /// served from disk and promoted on the way — eviction never strands
  /// the index.
  std::optional<core::ScheduleResult> GetNear(std::uint64_t structural,
                                              const CacheKey& exclude)
      override;

  MemoryTier& memory() { return *memory_; }
  DiskTier& disk() { return *disk_; }
  const MemoryTier& memory() const { return *memory_; }
  const DiskTier& disk() const { return *disk_; }

 private:
  std::unique_ptr<MemoryTier> memory_;
  std::unique_ptr<DiskTier> disk_;
  bool write_behind_ = true;
  /// Queued disk writes; destructed (and therefore drained) before the
  /// tiers above it, so tasks never outlive the DiskTier they target.
  perf::TaskGroup writes_{perf::SpeculationPool::Shared()};
};

}  // namespace hcrf::service
