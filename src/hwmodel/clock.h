// Cycle-time model: converts a register-file access time into a pipeline
// logic depth (in FO4 units, after Hrishikesh et al. [17]) and a clock
// period, and rescales operation latencies to that clock.
//
// Rules recovered from the paper's Table 5 (they reproduce all 15 published
// configurations exactly: logic depth, clock, FU and memory latencies, and
// the LoadR/StoreR latencies):
//
//   depth      = round((access_ns - 48ps) / 35.9ps)        [>= 6 FO4]
//   clock_ns   = depth * 36ps + 65ps                        (latch+skew)
//   fadd/fmul  = max(4,  ceil(68  FO4 / depth))             (fully pipelined)
//   fdiv       = max(17, ceil(289 FO4 / depth))             (not pipelined)
//   fsqrt      = max(30, ceil(510 FO4 / depth))
//   load hit   = 1 + ceil(1.17ns / clock)                   (cache + RF write)
//   store      = load hit - 1
//   load miss  = ceil(10ns / clock)                         (Section 2.2)
//   LoadR/StoreR latency = max(1, ceil(shared access / clock))
#pragma once

#include "machine/machine_config.h"

namespace hcrf::hw {

/// FO4 inverter delay at 0.10 um drawn gate length, ns.
inline constexpr double kFo4Ns = 0.036;
/// Clock overhead (latch + skew), ns.
inline constexpr double kClockOverheadNs = 0.065;
/// Minimum useful logic depth per stage (Hrishikesh et al.).
inline constexpr int kMinLogicDepth = 6;

/// Pipeline logic depth implied by a register-file access time.
int LogicDepthFo4(double access_ns);

/// Clock period for a given logic depth.
double ClockNs(int logic_depth_fo4);

/// Operation latencies rescaled to the clock implied by `logic_depth`.
/// `shared_access_ns` sizes the LoadR/StoreR latency for hierarchical
/// organizations (pass 0 when there is no shared level above clusters).
LatencyTable ScaleLatencies(int logic_depth_fo4, double shared_access_ns);

}  // namespace hcrf::hw
