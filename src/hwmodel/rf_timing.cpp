#include "hwmodel/rf_timing.h"

#include <cmath>
#include <stdexcept>

namespace hcrf::hw {

namespace {

// Access-time model constants (ns), least-squares calibrated against the 22
// register banks of the paper's Tables 2/5 (see /tmp-free derivation in
// EXPERIMENTS.md "hardware model calibration").
constexpr double kT0 = 0.293749;       // sense amp + output driver
constexpr double kTDec = 0.005633;     // per decoder level (log2 N)
constexpr double kTPort = -0.001667;   // per-port line driver sizing credit
constexpr double kTWire = 0.002548;    // per (port * sqrt(N)) wire RC

// Area model constants (1e6 lambda^2): A = kA * N^kAlphaN * P^kBetaP.
constexpr double kA = 0.002564;
constexpr double kAlphaN = 0.476;
constexpr double kBetaP = 1.831;

struct PaperBank {
  int nregs;
  int reads;
  int writes;
  double access_ns;
  double area;
};

// Every distinct bank shape appearing in the paper's Tables 2 and 5.
// Port counts derived from the machine shape (8 FUs, 4 memory ports) and
// each configuration's lp-sp values; see RFConfig::{Cluster,Shared}BankPorts.
constexpr PaperBank kPaperBanks[] = {
    // monolithic banks (20 reads = 2*8 FU + 4 mem; 12 writes = 8 + 4)
    {128, 20, 12, 1.145, 14.91},
    {64, 20, 12, 1.021, 12.20},
    {32, 20, 12, 0.685, 7.50},
    // 1C64S32/3-2: cluster bank 64 regs, R=16+2, W=8+3; shared R=3+4, W=2+4
    {64, 18, 11, 0.943, 10.07},
    {32, 7, 6, 0.485, 1.31},
    // 1C32S64/4-2: cluster 32 regs R=16+2 W=8+4; shared 64 R=4+4 W=2+4
    {32, 18, 12, 0.666, 6.61},
    {64, 8, 6, 0.493, 1.50},
    // 2C64, 2C32 (bus 1-1): R=8+2+1, W=4+2+1
    {64, 11, 7, 0.686, 3.99},
    {32, 11, 7, 0.532, 2.44},
    // 2C64S32/2-1: cluster R=8+1 W=4+2; shared 32 R=2*2+4 W=2*1+4
    {64, 9, 6, 0.626, 2.81},
    {32, 8, 6, 0.493, 1.50},
    // 2C32S32/3-1: cluster R=8+1 W=4+3; shared R=2*3+4 W=2*1+4
    {32, 9, 7, 0.515, 1.95},
    {32, 10, 6, 0.510, 1.94},
    // 4C64, 4C32 (bus 1-1): R=4+1+1, W=2+1+1
    {64, 6, 4, 0.531, 1.30},
    {32, 6, 4, 0.475, 1.07},
    // 4C32S16/1-1: cluster R=4+1 W=2+1; shared 16 R=4+4 W=4+4
    {32, 5, 3, 0.442, 0.70},
    {16, 8, 8, 0.456, 1.57},
    // 4C16S16/2-1: cluster R=4+1 W=2+2; shared R=4*2+4 W=4*1+4
    {16, 5, 4, 0.393, 0.52},
    {16, 12, 8, 0.483, 2.42},
    // 8C32S16, 8C16S16 (1-1): cluster R=2+1 W=1+1; shared R=8+4 W=8+4
    {32, 3, 2, 0.400, 0.30},
    {16, 3, 2, 0.360, 0.17},
    {16, 12, 12, 0.532, 3.45},
};

}  // namespace

std::optional<BankCharacteristics> PaperBankValue(int nregs, BankPorts ports) {
  for (const PaperBank& b : kPaperBanks) {
    if (b.nregs == nregs && b.reads == ports.reads && b.writes == ports.writes) {
      return BankCharacteristics{b.access_ns, b.area};
    }
  }
  return std::nullopt;
}

BankCharacteristics CharacterizeBank(int nregs, BankPorts ports,
                                     RFModelMode mode) {
  if (nregs <= 0) {
    throw std::invalid_argument("CharacterizeBank: nregs must be positive");
  }
  if (ports.reads <= 0 || ports.writes <= 0) {
    throw std::invalid_argument("CharacterizeBank: bank needs R and W ports");
  }
  if (mode == RFModelMode::kPaperTable) {
    if (auto v = PaperBankValue(nregs, ports)) return *v;
  }
  const double n = static_cast<double>(nregs);
  const double p = static_cast<double>(ports.Total());
  BankCharacteristics out;
  out.access_ns =
      kT0 + kTDec * std::log2(n) + kTPort * p + kTWire * p * std::sqrt(n);
  out.area_mlambda2 = kA * std::pow(n, kAlphaN) * std::pow(p, kBetaP);
  return out;
}

}  // namespace hcrf::hw
