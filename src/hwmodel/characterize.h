// End-to-end hardware characterization of a machine configuration:
// bank timings/areas -> cycle time -> rescaled latencies. This produces
// exactly the columns of the paper's Table 5.
#pragma once

#include "hwmodel/clock.h"
#include "hwmodel/rf_timing.h"
#include "machine/machine_config.h"

namespace hcrf::hw {

/// Hardware view of one machine configuration (one row of Table 5).
struct Characterization {
  RFConfig rf;
  BankCharacteristics cluster_bank;  ///< Zeros when there are no clusters.
  BankCharacteristics shared_bank;   ///< Zeros when there is no shared bank.
  double critical_access_ns = 0.0;   ///< First-level access (sets the clock).
  double total_area_mlambda2 = 0.0;  ///< x * cluster area + shared area.
  int logic_depth_fo4 = 0;
  double clock_ns = 0.0;
  LatencyTable lat;  ///< Latencies in cycles of this configuration's clock.
};

/// Characterizes `m.rf` on `m`'s resource shape. Register counts must be
/// bounded (static "infinite register" experiments never ask for hardware
/// numbers); throws std::invalid_argument otherwise.
Characterization Characterize(const MachineConfig& m,
                              RFModelMode mode = RFModelMode::kAnalytic);

/// Returns a copy of `m` with clock_ns and the latency table replaced by
/// the characterization's values (the form the scheduler consumes).
MachineConfig ApplyCharacterization(const MachineConfig& m,
                                    RFModelMode mode = RFModelMode::kAnalytic);

}  // namespace hcrf::hw
