#include "hwmodel/clock.h"

#include <cmath>

namespace hcrf::hw {

namespace {
// Logic-depth fit constants (see header).
constexpr double kDepthOffsetNs = 0.048;
constexpr double kDepthUnitNs = 0.0359;
// Total FO4 of logic in each operation class.
constexpr double kFuFo4 = 68.0;
constexpr double kDivFo4 = 289.0;   // 68 * 17/4
constexpr double kSqrtFo4 = 510.0;  // 68 * 30/4
constexpr double kCacheNs = 1.17;
constexpr double kMissNs = 10.0;

int CeilDiv(double num, double den) {
  return static_cast<int>(std::ceil(num / den - 1e-9));
}
}  // namespace

int LogicDepthFo4(double access_ns) {
  const int depth = static_cast<int>(
      std::lround((access_ns - kDepthOffsetNs) / kDepthUnitNs));
  return depth < kMinLogicDepth ? kMinLogicDepth : depth;
}

double ClockNs(int logic_depth_fo4) {
  return static_cast<double>(logic_depth_fo4) * kFo4Ns + kClockOverheadNs;
}

LatencyTable ScaleLatencies(int logic_depth_fo4, double shared_access_ns) {
  const double depth = static_cast<double>(logic_depth_fo4);
  const double clock = ClockNs(logic_depth_fo4);
  LatencyTable lat;
  lat.fadd = std::max(4, CeilDiv(kFuFo4, depth));
  lat.fmul = lat.fadd;
  lat.fdiv = std::max(17, CeilDiv(kDivFo4, depth));
  lat.fsqrt = std::max(30, CeilDiv(kSqrtFo4, depth));
  lat.load_hit = 1 + CeilDiv(kCacheNs, clock);
  lat.store = lat.load_hit - 1;
  lat.load_miss = CeilDiv(kMissNs, clock);
  lat.move = 1;
  const int comm =
      shared_access_ns > 0.0 ? std::max(1, CeilDiv(shared_access_ns, clock))
                             : 1;
  lat.loadr = comm;
  lat.storer = comm;
  return lat;
}

}  // namespace hcrf::hw
