#include "hwmodel/characterize.h"

#include <stdexcept>

namespace hcrf::hw {

Characterization Characterize(const MachineConfig& m, RFModelMode mode) {
  const RFConfig& rf = m.rf;
  if (rf.UnboundedClusterRegs() || rf.UnboundedSharedRegs()) {
    throw std::invalid_argument(
        "Characterize: unbounded register files have no hardware realization");
  }
  Characterization c;
  c.rf = rf;

  if (rf.HasClusters()) {
    c.cluster_bank = CharacterizeBank(
        rf.cluster_regs, rf.ClusterBankPorts(m.num_fus, m.num_mem_ports),
        mode);
    c.total_area_mlambda2 += rf.clusters * c.cluster_bank.area_mlambda2;
  }
  if (rf.HasSharedBank()) {
    c.shared_bank = CharacterizeBank(
        rf.IsMonolithic() ? rf.shared_regs : rf.shared_regs,
        rf.SharedBankPorts(m.num_fus, m.num_mem_ports), mode);
    c.total_area_mlambda2 += c.shared_bank.area_mlambda2;
  }

  // The cycle time is set by the access time of the banks that feed the
  // functional units: the cluster banks when they exist, the shared bank in
  // a monolithic organization (Section 3).
  c.critical_access_ns = rf.HasClusters() ? c.cluster_bank.access_ns
                                          : c.shared_bank.access_ns;
  c.logic_depth_fo4 = LogicDepthFo4(c.critical_access_ns);
  c.clock_ns = ClockNs(c.logic_depth_fo4);
  const double shared_for_comm =
      rf.IsHierarchical() ? c.shared_bank.access_ns : 0.0;
  c.lat = ScaleLatencies(c.logic_depth_fo4, shared_for_comm);
  return c;
}

MachineConfig ApplyCharacterization(const MachineConfig& m, RFModelMode mode) {
  const Characterization c = Characterize(m, mode);
  MachineConfig out = m;
  out.clock_ns = c.clock_ns;
  out.lat = c.lat;
  return out;
}

}  // namespace hcrf::hw
