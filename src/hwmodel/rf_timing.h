// Register-file access-time and area model (CACTI-3.0 in the paper,
// adapted to register files: no tags, no TLB).
//
// CACTI itself is not available offline, so this module provides an
// analytic model of a multiported SRAM register bank at a minimum drawn
// gate length of 0.10 um, with the functional form of CACTI's components:
//
//   access time = t0                      (sense + output driver)
//               + t_dec * log2(Nregs)     (decoder depth)
//               + t_port * P              (bit/word-line loading per port)
//               + t_wire * P * sqrt(N)    (wire RC across the port-bloated
//                                          cell array)
//   area        = a0 * N^alpha * P^beta   (cell area grows ~quadratically
//                                          with ports; peripheral overhead
//                                          softens the N exponent)
//
// The five timing constants and three area constants were least-squares
// calibrated against the 22 distinct register banks published in the
// paper's Tables 2 and 5 (mean error 4.1% on access time, 10% on area; see
// EXPERIMENTS.md). A `kPaperTable` mode returns the published values
// exactly for those banks and falls back to the analytic model elsewhere,
// so paper exhibits can be reproduced with either source.
#pragma once

#include <optional>

#include "machine/rf_config.h"

namespace hcrf::hw {

/// Timing/area of one register bank.
struct BankCharacteristics {
  double access_ns = 0.0;   ///< Read access time, nanoseconds.
  double area_mlambda2 = 0.0;  ///< Area in 1e6 * lambda^2.
};

enum class RFModelMode {
  kAnalytic,    ///< Always use the calibrated analytic model.
  kPaperTable,  ///< Use the paper's published value when the bank shape
                ///< appears in Tables 2/5; analytic model otherwise.
};

/// Characterizes a bank of `nregs` registers (64-bit) with the given port
/// counts. `nregs` must be positive and finite (callers clamp unbounded
/// configurations before asking for hardware numbers).
BankCharacteristics CharacterizeBank(int nregs, BankPorts ports,
                                     RFModelMode mode = RFModelMode::kAnalytic);

/// The paper's published (access, area) for a bank shape, if it appears in
/// Tables 2/5. Keyed on (nregs, reads, writes).
std::optional<BankCharacteristics> PaperBankValue(int nregs, BankPorts ports);

}  // namespace hcrf::hw
