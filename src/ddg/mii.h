// Minimum initiation interval computation: ResMII (resource bound) and
// RecMII (recurrence bound), plus recurrence/SCC utilities used by the
// scheduler's priority ordering and the bound classification of loops.
#pragma once

#include <vector>

#include "ddg/ddg.h"
#include "machine/machine_config.h"

namespace hcrf {

/// Resource-constrained MII over the whole machine (cluster-agnostic; the
/// scheduler discovers the per-cluster constraints dynamically).
/// Unpipelined operations occupy their FU for their full latency.
int ResMII(const DDG& g, const MachineConfig& m);

/// Recurrence-constrained MII: the maximum over all dependence cycles of
/// ceil(sum latency / sum distance). Computed by binary search on II with a
/// positive-cycle (Bellman-Ford) feasibility test on edge weights
/// latency(e) - II * distance(e).
int RecMII(const DDG& g, const LatencyTable& lat);

MIIInfo ComputeMII(const DDG& g, const MachineConfig& m);

/// Strongly connected components (Tarjan). Components are returned in
/// reverse topological order; single nodes without self loops form trivial
/// components.
std::vector<std::vector<NodeId>> SCCs(const DDG& g);

/// Ids of nodes that belong to some dependence cycle (non-trivial SCC or
/// self loop). These are the "recurrence nodes" that HRMS prioritizes and
/// that selective binding prefetching schedules with hit latency.
std::vector<bool> NodesOnRecurrences(const DDG& g);

/// RecMII restricted to one SCC (used to order recurrences by criticality).
int SccRecMII(const DDG& g, const LatencyTable& lat,
              const std::vector<NodeId>& scc);

}  // namespace hcrf
