#include "ddg/ddg.h"

#include <algorithm>
#include <stdexcept>

#include "core/check.h"

namespace hcrf {

std::string_view ToString(DepKind kind) {
  switch (kind) {
    case DepKind::kFlow: return "flow";
    case DepKind::kAnti: return "anti";
    case DepKind::kOutput: return "output";
    case DepKind::kMem: return "mem";
  }
  return "?";
}

NodeId DDG::AddNode(Node node) {
  node.alive = true;
  nodes_.push_back(std::move(node));
  in_.emplace_back();
  out_.emplace_back();
  ++num_alive_;
  return static_cast<NodeId>(nodes_.size() - 1);
}

void DDG::AddEdge(NodeId src, NodeId dst, DepKind kind, int distance) {
  if (src < 0 || dst < 0 || src >= NumSlots() || dst >= NumSlots()) {
    throw std::out_of_range("DDG::AddEdge: node id out of range");
  }
  if (distance < 0) throw std::invalid_argument("DDG::AddEdge: distance < 0");
  if (src == dst && distance == 0) {
    throw std::invalid_argument("DDG::AddEdge: zero-distance self edge");
  }
  HCRF_CHECK(IsAlive(src) && IsAlive(dst),
             "AddEdge touching a dead node (src=%d dst=%d)", src, dst);
  const Edge e{src, dst, kind, distance};
  out_[static_cast<size_t>(src)].push_back(e);
  in_[static_cast<size_t>(dst)].push_back(e);
  ++num_edges_;
  if (kind == DepKind::kFlow) NotifyFlowEdgeAdded(e);
}

void DDG::RemoveNode(NodeId id, bool force) {
  Node& n = nodes_[static_cast<size_t>(id)];
  if (!n.alive) return;
  if (!n.inserted && !force) {
    throw std::logic_error(
        "DDG::RemoveNode: refusing to remove an original loop operation");
  }
  // Detach edges referencing this node from the adjacency of the peers.
  auto detach = [&](std::vector<Edge>& list) {
    std::erase_if(list, [id](const Edge& e) { return e.src == id || e.dst == id; });
  };
  for (const Edge& e : out_[static_cast<size_t>(id)]) {
    detach(in_[static_cast<size_t>(e.dst)]);
    --num_edges_;
  }
  for (const Edge& e : in_[static_cast<size_t>(id)]) {
    detach(out_[static_cast<size_t>(e.src)]);
    --num_edges_;
  }
  out_[static_cast<size_t>(id)].clear();
  n.alive = false;
  --num_alive_;
  // Producers losing a flow consumer are notified after their own
  // adjacency (everything a listener reads) is consistent again; the dead
  // node's in-list doubles as the pending-notification buffer so removal
  // allocates nothing on the ejection/GC path.
  for (const Edge& e : in_[static_cast<size_t>(id)]) {
    if (e.kind == DepKind::kFlow && e.src != id) NotifyFlowEdgeRemoved(e);
  }
  in_[static_cast<size_t>(id)].clear();
  if (listener_.ptr != nullptr) listener_.ptr->OnNodeRemoved(id);
}

bool DDG::RemoveEdge(NodeId src, NodeId dst, DepKind kind, int distance) {
  auto matches = [&](const Edge& e) {
    return e.src == src && e.dst == dst && e.kind == kind &&
           e.distance == distance;
  };
  auto& outs = out_[static_cast<size_t>(src)];
  auto out_it = std::find_if(outs.begin(), outs.end(), matches);
  if (out_it == outs.end()) return false;
  outs.erase(out_it);
  auto& ins = in_[static_cast<size_t>(dst)];
  auto in_it = std::find_if(ins.begin(), ins.end(), matches);
  HCRF_CHECK(in_it != ins.end(),
             "edge %d->%d present in out-list but missing from in-list",
             src, dst);
  ins.erase(in_it);
  --num_edges_;
  if (kind == DepKind::kFlow) {
    NotifyFlowEdgeRemoved(Edge{src, dst, kind, distance});
  }
  return true;
}

std::int32_t DDG::AddInvariant() { return num_invariants_++; }

std::vector<NodeId> DDG::AliveNodes() const {
  std::vector<NodeId> ids;
  ids.reserve(static_cast<size_t>(num_alive_));
  for (NodeId i = 0; i < NumSlots(); ++i) {
    if (nodes_[static_cast<size_t>(i)].alive) ids.push_back(i);
  }
  return ids;
}

std::vector<Edge> DDG::Edges() const {
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(num_edges_));
  for (NodeId i = 0; i < NumSlots(); ++i) {
    if (!nodes_[static_cast<size_t>(i)].alive) continue;
    for (const Edge& e : out_[static_cast<size_t>(i)]) edges.push_back(e);
  }
  return edges;
}

int DDG::EdgeLatency(const Edge& e, const LatencyTable& lat) const {
  switch (e.kind) {
    case DepKind::kFlow:
      return lat.Of(node(e.src).op);
    case DepKind::kAnti:
    case DepKind::kOutput:
    case DepKind::kMem:
      return 1;
  }
  return 1;
}

std::vector<Edge> DDG::FlowConsumers(NodeId id) const {
  std::vector<Edge> result;
  for (const Edge& e : out_[static_cast<size_t>(id)]) {
    if (e.kind == DepKind::kFlow) result.push_back(e);
  }
  return result;
}

std::vector<Edge> DDG::FlowProducers(NodeId id) const {
  std::vector<Edge> result;
  for (const Edge& e : in_[static_cast<size_t>(id)]) {
    if (e.kind == DepKind::kFlow) result.push_back(e);
  }
  return result;
}

DDG::OpCounts DDG::CountOps(const LatencyTable& lat) const {
  OpCounts c;
  for (NodeId i = 0; i < NumSlots(); ++i) {
    const Node& n = nodes_[static_cast<size_t>(i)];
    if (!n.alive) continue;
    if (IsCompute(n.op)) {
      ++c.compute;
      c.compute_occupancy += IsUnpipelined(n.op) ? lat.Of(n.op) : 1;
    } else if (IsMemory(n.op)) {
      ++c.memory;
    } else {
      ++c.comm;
    }
  }
  return c;
}

bool DDG::Check(std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  int alive = 0;
  int edges = 0;
  for (NodeId i = 0; i < NumSlots(); ++i) {
    const Node& n = nodes_[static_cast<size_t>(i)];
    if (!n.alive) {
      if (!in_[static_cast<size_t>(i)].empty() ||
          !out_[static_cast<size_t>(i)].empty()) {
        return fail("tombstoned node has edges");
      }
      continue;
    }
    ++alive;
    for (const Edge& e : out_[static_cast<size_t>(i)]) {
      ++edges;
      if (e.src != i) return fail("out edge with wrong src");
      if (!IsAlive(e.dst)) return fail("edge to dead node");
      if (e.distance < 0) return fail("negative distance");
      if (e.kind == DepKind::kFlow && !DefinesValue(node(e.src).op)) {
        return fail("flow edge from non-defining op");
      }
    }
    for (const Edge& e : in_[static_cast<size_t>(i)]) {
      if (e.dst != i) return fail("in edge with wrong dst");
      if (!IsAlive(e.src)) return fail("edge from dead node");
    }
  }
  if (alive != num_alive_) return fail("alive count mismatch");
  if (edges != num_edges_) return fail("edge count mismatch");
  return true;
}

}  // namespace hcrf
