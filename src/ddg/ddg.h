// Data dependence graph of one innermost loop, the scheduler's input.
//
// Nodes are operations of one loop iteration; edges are dependences with an
// iteration distance (0 = intra-iteration, d>0 = loop carried across d
// iterations). The paper's front end (ICTINEO over the Perfect Club) emits
// single-basic-block, if-converted innermost loops; src/workload generates
// equivalent graphs.
//
// The graph is mutable because MIRS_HC inserts and removes communication
// (Move/LoadR/StoreR) and spill (Load/Store) operations while scheduling.
// Node ids are stable: removal tombstones the node and its edges.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "machine/machine_config.h"
#include "machine/op.h"

namespace hcrf {

using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

/// Static description of a memory access for the cache simulator: the
/// address at iteration i is `base + stride * i` (bytes).
struct MemRef {
  std::int32_t array_id = 0;  ///< Disambiguated base array.
  std::int64_t base = 0;      ///< First-iteration byte address within array.
  std::int64_t stride = 8;    ///< Bytes advanced per iteration (0=invariant).
};

/// Dependence kinds. Flow dependences carry a register value (and define
/// lifetimes); Anti/Output order register reuse; Mem orders memory accesses
/// that may alias.
enum class DepKind : std::uint8_t { kFlow, kAnti, kOutput, kMem };

std::string_view ToString(DepKind kind);

struct Edge {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  DepKind kind = DepKind::kFlow;
  std::int32_t distance = 0;  ///< Iteration distance (>= 0).
};

struct Node {
  OpClass op = OpClass::kFAdd;
  /// Valid for kLoad/kStore nodes; used by the memory simulator.
  std::optional<MemRef> mem;
  /// Loop-invariant values (live-in for the whole loop) consumed by this
  /// node, by invariant id. Each referenced invariant pins one register in
  /// every bank from which it is read (paper Section 5.1).
  std::vector<std::int32_t> invariant_uses;
  bool alive = true;
  /// True for nodes inserted by the scheduler (communication/spill); they
  /// can be removed again on ejection.
  bool inserted = false;
  /// True for nodes inserted by the spill engine (spill loads/stores and
  /// hierarchical StoreR/LoadR spill copies). Distinguishes them from
  /// inter-cluster communication nodes, which are removed on ejection.
  bool spill = false;
};

/// Minimum initiation interval and its components (see mii.h).
struct MIIInfo {
  int res_mii = 1;
  int rec_mii = 1;
  int MII() const { return res_mii > rec_mii ? res_mii : rec_mii; }
};

/// Observer of graph mutations that affect value lifetimes. The scheduler's
/// incremental pressure tracker installs one on its working graph so edge
/// rewires (communication chains, spill reroutes) and node removals reach
/// it without every mutation site knowing about pressure. Edge callbacks
/// carry the exact edge so the listener can apply an O(1) delta when only
/// one consumer read changed. Callbacks run synchronously after the
/// mutation completes and must not mutate the graph.
class DdgListener {
 public:
  virtual ~DdgListener() = default;
  /// A flow edge was added: `e.src`'s value gained the consumer `e.dst`.
  virtual void OnFlowEdgeAdded(const Edge& e) = 0;
  /// A flow edge was removed (also fired for each flow in-edge detached by
  /// RemoveNode, with the pre-removal edge).
  virtual void OnFlowEdgeRemoved(const Edge& e) = 0;
  /// `v` was tombstoned (its flow producers are notified separately).
  virtual void OnNodeRemoved(NodeId v) = 0;
};

class DDG {
 public:
  DDG() = default;
  explicit DDG(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  NodeId AddNode(Node node);
  NodeId AddNode(OpClass op) {
    Node n;
    n.op = op;
    return AddNode(std::move(n));
  }
  /// Adds a dependence edge; self-edges (src==dst) require distance>0.
  void AddEdge(NodeId src, NodeId dst, DepKind kind, int distance = 0);
  void AddFlow(NodeId src, NodeId dst, int distance = 0) {
    AddEdge(src, dst, DepKind::kFlow, distance);
  }

  /// Tombstones the node and detaches all its edges. Asserts the node is an
  /// `inserted` node or that the caller passed force=true: original loop
  /// operations are never removed by the scheduler.
  void RemoveNode(NodeId id, bool force = false);

  /// Removes one edge matching (src, dst, kind, distance) exactly.
  /// Returns false if no such edge exists.
  bool RemoveEdge(NodeId src, NodeId dst, DepKind kind, int distance);

  /// Declares a loop-invariant live-in value; returns its id.
  std::int32_t AddInvariant();
  std::int32_t num_invariants() const { return num_invariants_; }

  bool IsAlive(NodeId id) const { return nodes_[static_cast<size_t>(id)].alive; }
  const Node& node(NodeId id) const { return nodes_[static_cast<size_t>(id)]; }
  Node& node(NodeId id) { return nodes_[static_cast<size_t>(id)]; }

  /// Total slots including tombstones; iterate with IsAlive guard.
  NodeId NumSlots() const { return static_cast<NodeId>(nodes_.size()); }
  /// Number of alive nodes.
  int NumNodes() const { return num_alive_; }
  /// Ids of all alive nodes, ascending.
  std::vector<NodeId> AliveNodes() const;

  /// Alive edges entering / leaving `id`.
  const std::vector<Edge>& InEdges(NodeId id) const {
    return in_[static_cast<size_t>(id)];
  }
  const std::vector<Edge>& OutEdges(NodeId id) const {
    return out_[static_cast<size_t>(id)];
  }
  /// All alive edges (materialized; O(E)).
  std::vector<Edge> Edges() const;
  int NumEdges() const { return num_edges_; }

  /// Dependence latency of an edge under the given latency table:
  /// Flow -> producer latency; Anti/Output/Mem -> 1.
  int EdgeLatency(const Edge& e, const LatencyTable& lat) const;

  /// Flow consumers of the value defined by `id` (alive flow out-edges).
  std::vector<Edge> FlowConsumers(NodeId id) const;
  /// Flow producers feeding `id`.
  std::vector<Edge> FlowProducers(NodeId id) const;

  /// Counts alive nodes per kind of resource: {compute, memory, comm}.
  struct OpCounts {
    int compute = 0;
    int memory = 0;
    int comm = 0;
    /// FU occupancy accounting for unpipelined div/sqrt.
    int compute_occupancy = 0;
  };
  OpCounts CountOps(const LatencyTable& lat) const;

  /// Simple structural sanity check (edge endpoints alive, distances >= 0).
  bool Check(std::string* why = nullptr) const;

  /// Installs (or clears, with nullptr) the mutation listener. The slot is
  /// deliberately excluded from copy and move: `g = original` at the start
  /// of an II attempt and moving the final graph into the ScheduleResult
  /// must never transplant a tracker wired to different state.
  void SetListener(DdgListener* listener) { listener_.ptr = listener; }
  DdgListener* listener() const { return listener_.ptr; }

 private:
  /// Pointer wrapper whose copy/move constructors produce an empty slot
  /// and whose assignments keep the destination's slot, so DDG's implicit
  /// special members never propagate a listener between graphs.
  struct ListenerSlot {
    DdgListener* ptr = nullptr;
    ListenerSlot() = default;
    ListenerSlot(const ListenerSlot&) noexcept {}
    ListenerSlot(ListenerSlot&&) noexcept {}
    ListenerSlot& operator=(const ListenerSlot&) noexcept { return *this; }
    ListenerSlot& operator=(ListenerSlot&&) noexcept { return *this; }
  };

  void NotifyFlowEdgeAdded(const Edge& e) {
    if (listener_.ptr != nullptr) listener_.ptr->OnFlowEdgeAdded(e);
  }
  void NotifyFlowEdgeRemoved(const Edge& e) {
    if (listener_.ptr != nullptr) listener_.ptr->OnFlowEdgeRemoved(e);
  }

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<std::vector<Edge>> in_;
  std::vector<std::vector<Edge>> out_;
  std::int32_t num_invariants_ = 0;
  int num_alive_ = 0;
  int num_edges_ = 0;
  ListenerSlot listener_;
};

}  // namespace hcrf
