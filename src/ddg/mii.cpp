#include "ddg/mii.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace hcrf {

namespace {

// Is there a cycle with positive total weight lat(e) - ii*dist(e) among the
// given nodes? Longest-path Bellman-Ford; returns true if relaxation does
// not converge in |V| rounds.
bool HasPositiveCycle(const DDG& g, const LatencyTable& lat,
                      const std::vector<NodeId>& nodes, int ii) {
  constexpr long kNegInf = std::numeric_limits<long>::min() / 4;
  std::vector<long> dist(static_cast<size_t>(g.NumSlots()), kNegInf);
  std::vector<char> member(static_cast<size_t>(g.NumSlots()), 0);
  for (NodeId v : nodes) {
    dist[static_cast<size_t>(v)] = 0;
    member[static_cast<size_t>(v)] = 1;
  }
  const int rounds = static_cast<int>(nodes.size());
  for (int round = 0; round <= rounds; ++round) {
    bool changed = false;
    for (NodeId v : nodes) {
      const long dv = dist[static_cast<size_t>(v)];
      if (dv == kNegInf) continue;
      for (const Edge& e : g.OutEdges(v)) {
        if (!member[static_cast<size_t>(e.dst)]) continue;
        const long w =
            g.EdgeLatency(e, lat) - static_cast<long>(ii) * e.distance;
        if (dv + w > dist[static_cast<size_t>(e.dst)]) {
          dist[static_cast<size_t>(e.dst)] = dv + w;
          changed = true;
        }
      }
    }
    if (!changed) return false;
  }
  return true;
}

int RecMIIOnNodes(const DDG& g, const LatencyTable& lat,
                  const std::vector<NodeId>& nodes) {
  if (nodes.empty()) return 1;
  // Upper bound: sum of all latencies inside the node set.
  long hi = 1;
  for (NodeId v : nodes) {
    hi += lat.Of(g.node(v).op);
  }
  long lo = 1;
  // RecMII is the smallest II such that no positive cycle exists; note that
  // a zero-weight cycle is fine (the recurrence exactly fits).
  while (lo < hi) {
    const long mid = lo + (hi - lo) / 2;
    if (HasPositiveCycle(g, lat, nodes, static_cast<int>(mid))) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<int>(lo);
}

}  // namespace

int ResMII(const DDG& g, const MachineConfig& m) {
  const DDG::OpCounts c = g.CountOps(m.lat);
  int mii = 1;
  if (c.compute_occupancy > 0) {
    mii = std::max(mii, (c.compute_occupancy + m.num_fus - 1) / m.num_fus);
  }
  if (c.memory > 0) {
    mii = std::max(mii, (c.memory + m.num_mem_ports - 1) / m.num_mem_ports);
  }
  return mii;
}

int RecMII(const DDG& g, const LatencyTable& lat) {
  int mii = 1;
  for (const std::vector<NodeId>& scc : SCCs(g)) {
    if (scc.size() == 1) {
      // Self loop?
      const NodeId v = scc.front();
      bool self = false;
      for (const Edge& e : g.OutEdges(v)) {
        if (e.dst == v) {
          self = true;
          break;
        }
      }
      if (!self) continue;
    }
    mii = std::max(mii, RecMIIOnNodes(g, lat, scc));
  }
  return mii;
}

MIIInfo ComputeMII(const DDG& g, const MachineConfig& m) {
  return MIIInfo{.res_mii = ResMII(g, m), .rec_mii = RecMII(g, m.lat)};
}

int SccRecMII(const DDG& g, const LatencyTable& lat,
              const std::vector<NodeId>& scc) {
  return RecMIIOnNodes(g, lat, scc);
}

std::vector<std::vector<NodeId>> SCCs(const DDG& g) {
  // Iterative Tarjan to avoid recursion depth limits on long chains.
  const NodeId n = g.NumSlots();
  std::vector<int> index(static_cast<size_t>(n), -1);
  std::vector<int> low(static_cast<size_t>(n), 0);
  std::vector<char> on_stack(static_cast<size_t>(n), 0);
  std::vector<NodeId> stack;
  std::vector<std::vector<NodeId>> sccs;
  int counter = 0;

  struct Frame {
    NodeId v;
    size_t edge_idx;
  };
  std::vector<Frame> call;

  for (NodeId root = 0; root < n; ++root) {
    if (!g.IsAlive(root) || index[static_cast<size_t>(root)] != -1) continue;
    call.push_back({root, 0});
    index[static_cast<size_t>(root)] = low[static_cast<size_t>(root)] =
        counter++;
    stack.push_back(root);
    on_stack[static_cast<size_t>(root)] = 1;

    while (!call.empty()) {
      Frame& f = call.back();
      const auto& edges = g.OutEdges(f.v);
      if (f.edge_idx < edges.size()) {
        const NodeId w = edges[f.edge_idx++].dst;
        if (index[static_cast<size_t>(w)] == -1) {
          index[static_cast<size_t>(w)] = low[static_cast<size_t>(w)] =
              counter++;
          stack.push_back(w);
          on_stack[static_cast<size_t>(w)] = 1;
          call.push_back({w, 0});
        } else if (on_stack[static_cast<size_t>(w)]) {
          low[static_cast<size_t>(f.v)] = std::min(
              low[static_cast<size_t>(f.v)], index[static_cast<size_t>(w)]);
        }
      } else {
        const NodeId v = f.v;
        call.pop_back();
        if (!call.empty()) {
          low[static_cast<size_t>(call.back().v)] =
              std::min(low[static_cast<size_t>(call.back().v)],
                       low[static_cast<size_t>(v)]);
        }
        if (low[static_cast<size_t>(v)] == index[static_cast<size_t>(v)]) {
          std::vector<NodeId> scc;
          NodeId w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[static_cast<size_t>(w)] = 0;
            scc.push_back(w);
          } while (w != v);
          sccs.push_back(std::move(scc));
        }
      }
    }
  }
  return sccs;
}

std::vector<bool> NodesOnRecurrences(const DDG& g) {
  std::vector<bool> result(static_cast<size_t>(g.NumSlots()), false);
  for (const std::vector<NodeId>& scc : SCCs(g)) {
    if (scc.size() > 1) {
      for (NodeId v : scc) result[static_cast<size_t>(v)] = true;
    } else {
      const NodeId v = scc.front();
      for (const Edge& e : g.OutEdges(v)) {
        if (e.dst == v) {
          result[static_cast<size_t>(v)] = true;
          break;
        }
      }
    }
  }
  return result;
}

}  // namespace hcrf
