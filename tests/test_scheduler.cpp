// Integration and property tests of MIRS_HC: every kernel loop must
// schedule on every organization family and pass the independent validator
// (dependences, resources, bank consistency, register capacities).
#include <gtest/gtest.h>

#include "core/mirs.h"
#include "ddg/mii.h"
#include "hwmodel/characterize.h"
#include "sched/validate.h"
#include "workload/kernels.h"
#include "workload/perfect_synth.h"

namespace hcrf::core {
namespace {

MachineConfig Machine(const std::string& rf) {
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse(rf));
  if (!m.rf.UnboundedClusterRegs() && !m.rf.UnboundedSharedRegs()) {
    m = hw::ApplyCharacterization(m, hw::RFModelMode::kPaperTable);
  }
  return m;
}

// ---------------------------------------------------------------------------
// Kernel x organization sweep: scheduling succeeds and validates.
// ---------------------------------------------------------------------------

struct SweepCase {
  const char* rf;
};

class KernelSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(KernelSweep, AllKernelsScheduleAndValidate) {
  const MachineConfig m = Machine(GetParam().rf);
  const workload::Suite kernel_suite = workload::KernelSuite();
  for (const auto& loop : kernel_suite.loops()) {
    const ScheduleResult sr = MirsHC(loop.ddg, m);
    ASSERT_TRUE(sr.ok) << loop.ddg.name() << " on " << GetParam().rf;
    EXPECT_GE(sr.ii, sr.mii) << loop.ddg.name();
    const auto vr = sched::Validate(sr.graph, sr.schedule, m, sr.overrides);
    EXPECT_TRUE(vr.ok) << loop.ddg.name() << " on " << GetParam().rf << ": "
                       << vr.error;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Organizations, KernelSweep,
    ::testing::Values(SweepCase{"S128"}, SweepCase{"S64"}, SweepCase{"S32"},
                      SweepCase{"2C64/1-1"}, SweepCase{"4C32/1-1"},
                      SweepCase{"1C64S64/4-2"}, SweepCase{"1C32S64/4-2"},
                      SweepCase{"2C32S32/3-1"}, SweepCase{"4C16S64/2-1"},
                      SweepCase{"4C32S16/1-1"}, SweepCase{"8C16S16/1-1"},
                      SweepCase{"8C32S16/1-1"}));

// ---------------------------------------------------------------------------
// Specific behaviours
// ---------------------------------------------------------------------------

TEST(MirsHC, MonolithicDaxpyAtMII) {
  const MachineConfig m = Machine("S128");
  const auto loop = workload::MakeDaxpy();
  const ScheduleResult sr = MirsHC(loop.ddg, m);
  ASSERT_TRUE(sr.ok);
  EXPECT_EQ(sr.ii, 1);  // 3 memory ops on 4 ports
  EXPECT_EQ(sr.stats.comm_ops, 0);
  EXPECT_EQ(sr.mem_ops_per_iter, 3);
}

TEST(MirsHC, HierarchicalInsertsLoadRStoreR) {
  const MachineConfig m = Machine("1C64S64/4-2");
  const auto loop = workload::MakeDaxpy();
  const ScheduleResult sr = MirsHC(loop.ddg, m);
  ASSERT_TRUE(sr.ok);
  // Two loads feeding compute need LoadR; the store needs a StoreR.
  EXPECT_EQ(sr.stats.loadr_ops, 2);
  EXPECT_EQ(sr.stats.storer_ops, 1);
  EXPECT_EQ(sr.stats.move_ops, 0);
}

TEST(MirsHC, PureClusteredUsesMoves) {
  const MachineConfig m = Machine("4C32/1-1");
  const auto loop = workload::MakeDaxpy();
  const ScheduleResult sr = MirsHC(loop.ddg, m);
  ASSERT_TRUE(sr.ok);
  EXPECT_EQ(sr.stats.loadr_ops, 0);
  EXPECT_EQ(sr.stats.storer_ops, 0);
  // Cross-cluster traffic appears iff the loop was actually split.
  const auto vr = sched::Validate(sr.graph, sr.schedule, m, sr.overrides);
  EXPECT_TRUE(vr.ok) << vr.error;
}

TEST(MirsHC, MemcpyLikeLoopNeedsNoCommOnHierarchical) {
  // b[i] = a[i]: load defines in shared, store reads shared -> no LoadR or
  // StoreR at all.
  DDG g("copy");
  Node ld;
  ld.op = OpClass::kLoad;
  ld.mem = MemRef{0, 0, 8};
  const NodeId l = g.AddNode(std::move(ld));
  Node st;
  st.op = OpClass::kStore;
  st.mem = MemRef{1, 0, 8};
  const NodeId s = g.AddNode(std::move(st));
  g.AddFlow(l, s, 0);

  const MachineConfig m = Machine("4C16S64/2-1");
  const ScheduleResult sr = MirsHC(g, m);
  ASSERT_TRUE(sr.ok);
  EXPECT_EQ(sr.stats.comm_ops, 0);
}

TEST(MirsHC, RecurrenceBoundLoopClassified) {
  const MachineConfig m = Machine("S128");
  const auto loop = workload::MakeFirstOrderRec();
  const ScheduleResult sr = MirsHC(loop.ddg, m);
  ASSERT_TRUE(sr.ok);
  EXPECT_EQ(sr.rec_mii, 8);
  EXPECT_EQ(sr.ii, 8);
  EXPECT_EQ(sr.bound, BoundClass::kRecurrence);
}

TEST(MirsHC, UnpipelinedDivisionRespected) {
  const MachineConfig m = Machine("S128");
  const auto loop = workload::MakeVdiv();
  const ScheduleResult sr = MirsHC(loop.ddg, m);
  ASSERT_TRUE(sr.ok);
  // One unpipelined 17-cycle division on 8 FUs: ResMII 3.
  EXPECT_GE(sr.ii, 3);
}

TEST(MirsHC, TightRegisterFileStaysWithinCapacity) {
  // A wide loop with loop-carried lifetimes on a tiny monolithic RF: the
  // scheduler must either spill or stretch placements/II, and in all cases
  // the validator's capacity check must hold. (HRMS-style ordering often
  // compresses the carried lifetimes without spilling -- that is a
  // feature; the suite-level spill behaviour is asserted below.)
  DDG g("wide");
  std::vector<NodeId> adds;
  for (int i = 0; i < 6; ++i) {
    const NodeId ld = [&] {
      Node n;
      n.op = OpClass::kLoad;
      n.mem = MemRef{i, 0, 8};
      return g.AddNode(std::move(n));
    }();
    const NodeId a = g.AddNode(OpClass::kFAdd);
    g.AddFlow(ld, a, 0);
    adds.push_back(a);
  }
  NodeId acc = adds[0];
  for (size_t i = 1; i < adds.size(); ++i) {
    const NodeId n = g.AddNode(OpClass::kFAdd);
    g.AddFlow(acc, n, 0);
    g.AddFlow(adds[i], n, 4);  // loop-carried: long lifetimes
    acc = n;
  }

  MachineConfig tiny = Machine("S128");
  tiny.rf = RFConfig::Parse("S12");
  const ScheduleResult sr = MirsHC(g, tiny);
  ASSERT_TRUE(sr.ok);
  const auto vr = sched::Validate(sr.graph, sr.schedule, tiny, sr.overrides);
  EXPECT_TRUE(vr.ok) << vr.error;
}

TEST(MirsHC, SuiteSpillsOnSmallMonolithicRF) {
  // Across a workload slice, 32 registers cannot hold every loop's
  // pressure: spill memory ops must appear (the source of the extra
  // memory traffic in Table 6's S32 row), and never on Sinf.
  workload::SynthParams p;
  p.num_loops = 80;
  const workload::Suite suite = workload::PerfectSynthetic(p);
  const MachineConfig s32 = Machine("S32");
  const MachineConfig sinf =
      MachineConfig::WithRF(RFConfig::Parse("Sinf"));
  long spills_s32 = 0;
  long spills_inf = 0;
  for (const auto& loop : suite.loops()) {
    const ScheduleResult a = MirsHC(loop.ddg, s32);
    if (a.ok) spills_s32 += a.stats.spill_loads + a.stats.spill_stores;
    const ScheduleResult b = MirsHC(loop.ddg, sinf);
    if (b.ok) spills_inf += b.stats.spill_loads + b.stats.spill_stores;
  }
  EXPECT_GT(spills_s32, 0);
  EXPECT_EQ(spills_inf, 0);
}

TEST(MirsHC, HierarchicalSpillAvoidsMemoryTraffic) {
  // Same wide loop on a hierarchical RF with tiny cluster banks but a
  // roomy shared bank: spilling should go StoreR/LoadR, not to memory.
  const auto loop = workload::MakeFir4();
  MachineConfig m = Machine("4C16S64/2-1");
  m.rf.cluster_regs = 8;  // squeeze the first level
  const ScheduleResult sr = MirsHC(loop.ddg, m);
  ASSERT_TRUE(sr.ok);
  EXPECT_EQ(sr.stats.spill_loads + sr.stats.spill_stores, 0);
  EXPECT_EQ(sr.mem_ops_per_iter, 5);  // 4 loads + 1 store, unchanged
}

TEST(MirsHC, BindingPrefetchRaisesSharedPressureNotFailure) {
  const auto loop = workload::MakeVadd();
  const MachineConfig m = Machine("4C16S64/2-1");
  sched::LatencyOverrides ov;
  ov.producer_latency.assign(static_cast<size_t>(loop.ddg.NumSlots()), 0);
  for (NodeId v = 0; v < loop.ddg.NumSlots(); ++v) {
    if (loop.ddg.node(v).op == OpClass::kLoad) {
      ov.producer_latency[static_cast<size_t>(v)] = m.lat.load_miss;
    }
  }
  const ScheduleResult sr = MirsHC(loop.ddg, m, {}, ov);
  ASSERT_TRUE(sr.ok);
  const auto vr = sched::Validate(sr.graph, sr.schedule, m, sr.overrides);
  EXPECT_TRUE(vr.ok) << vr.error;
}

TEST(MirsHC, NonIterativeNeverBeatsIterative) {
  const MachineConfig m = Machine("1C32S64/4-2");
  MirsOptions non;
  non.iterative = false;
  workload::SynthParams p;
  p.num_loops = 60;
  const workload::Suite synth_suite = workload::PerfectSynthetic(p);
  int iter_failed = 0;
  for (const auto& loop : synth_suite.loops()) {
    const ScheduleResult a = MirsHC(loop.ddg, m);
    const ScheduleResult b = MirsHC(loop.ddg, m, non);
    if (!a.ok) {
      ++iter_failed;
      continue;
    }
    if (b.ok) {
      // The iterative scheduler may win; it should rarely lose, and on
      // average must not be worse. Check the weak per-loop property here;
      // the aggregate is covered by bench/table4.
      EXPECT_LE(a.ii, b.ii + 2) << loop.ddg.name();
    }
  }
  EXPECT_LE(iter_failed, 2);  // extreme-pressure outliers only
}

TEST(MirsHC, FailsGracefullyOnImpossibleII) {
  const auto loop = workload::MakeDot();
  MachineConfig m = Machine("S128");
  MirsOptions opt;
  opt.max_ii = 2;  // RecMII is 4: unreachable
  const ScheduleResult sr = MirsHC(loop.ddg, m, opt);
  EXPECT_FALSE(sr.ok);
}

TEST(MirsHC, DeterministicAcrossRuns) {
  const MachineConfig m = Machine("4C16S64/2-1");
  workload::SynthParams p;
  p.num_loops = 20;
  const workload::Suite synth_suite = workload::PerfectSynthetic(p);
  for (const auto& loop : synth_suite.loops()) {
    const ScheduleResult a = MirsHC(loop.ddg, m);
    const ScheduleResult b = MirsHC(loop.ddg, m);
    ASSERT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.ii, b.ii);
    EXPECT_EQ(a.sc, b.sc);
    EXPECT_EQ(a.stats.comm_ops, b.stats.comm_ops);
  }
}

// ---------------------------------------------------------------------------
// Property sweep over the synthetic suite: validator is the oracle.
// ---------------------------------------------------------------------------

class SyntheticSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SyntheticSweep, ScheduleValidatesOn150Loops) {
  const MachineConfig m = Machine(GetParam().rf);
  workload::SynthParams p;
  p.num_loops = 150;
  int failures = 0;
  const workload::Suite synth_suite = workload::PerfectSynthetic(p);
  for (const auto& loop : synth_suite.loops()) {
    const ScheduleResult sr = MirsHC(loop.ddg, m);
    if (!sr.ok) {
      ++failures;
      continue;
    }
    const auto vr = sched::Validate(sr.graph, sr.schedule, m, sr.overrides);
    ASSERT_TRUE(vr.ok) << loop.ddg.name() << " on " << GetParam().rf << ": "
                       << vr.error;
  }
  // A small number of extreme-pressure loops may be unschedulable on the
  // tightest organizations (documented in EXPERIMENTS.md); everything that
  // schedules must validate.
  EXPECT_LE(failures, 4);
}

INSTANTIATE_TEST_SUITE_P(
    Organizations, SyntheticSweep,
    ::testing::Values(SweepCase{"S64"}, SweepCase{"S32"},
                      SweepCase{"2C32/1-1"}, SweepCase{"4C32/1-1"},
                      SweepCase{"1C32S64/4-2"}, SweepCase{"2C32S32/3-1"},
                      SweepCase{"4C16S16/2-1"}, SweepCase{"8C16S16/1-1"}));

}  // namespace
}  // namespace hcrf::core
