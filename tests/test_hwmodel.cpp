// Tests of the hardware model: the analytic register-file timing/area fit
// against the paper's published bank values, the FO4 clock rules, and the
// latency scaling that reproduces Table 5's Mem/FU column.
#include <gtest/gtest.h>

#include "hwmodel/characterize.h"
#include "hwmodel/clock.h"
#include "hwmodel/rf_timing.h"

namespace hcrf::hw {
namespace {

TEST(RFTiming, MonotoneInPortsAndCapacity) {
  const BankCharacteristics small = CharacterizeBank(32, {6, 4});
  const BankCharacteristics more_regs = CharacterizeBank(128, {6, 4});
  const BankCharacteristics more_ports = CharacterizeBank(32, {20, 12});
  EXPECT_GT(more_regs.access_ns, small.access_ns);
  EXPECT_GT(more_ports.access_ns, small.access_ns);
  EXPECT_GT(more_regs.area_mlambda2, small.area_mlambda2);
  EXPECT_GT(more_ports.area_mlambda2, small.area_mlambda2);
}

TEST(RFTiming, RejectsDegenerateBanks) {
  EXPECT_THROW(CharacterizeBank(0, {2, 1}), std::invalid_argument);
  EXPECT_THROW(CharacterizeBank(32, {0, 1}), std::invalid_argument);
}

TEST(RFTiming, PaperTableModeReturnsPublishedValues) {
  const auto v = CharacterizeBank(128, {20, 12}, RFModelMode::kPaperTable);
  EXPECT_DOUBLE_EQ(v.access_ns, 1.145);
  EXPECT_DOUBLE_EQ(v.area_mlambda2, 14.91);
  // Unknown shapes fall back to the analytic model.
  const auto w = CharacterizeBank(256, {20, 12}, RFModelMode::kPaperTable);
  EXPECT_GT(w.access_ns, 1.0);
}

// Analytic model accuracy against every bank the paper publishes.
struct BankCase {
  int nregs, reads, writes;
  double access, area;
};

class AnalyticFitTest : public ::testing::TestWithParam<BankCase> {};

TEST_P(AnalyticFitTest, WithinCalibratedTolerance) {
  const BankCase& b = GetParam();
  const BankCharacteristics c =
      CharacterizeBank(b.nregs, {b.reads, b.writes}, RFModelMode::kAnalytic);
  // Access time: fit quality from the calibration (mean 4.1%, max ~20%).
  EXPECT_NEAR(c.access_ns, b.access, 0.21 * b.access)
      << b.nregs << " regs " << b.reads << "R" << b.writes << "W";
  // Area: power-law fit (mean 10%, one outlier at ~56%).
  EXPECT_NEAR(c.area_mlambda2, b.area, 0.60 * b.area);
}

INSTANTIATE_TEST_SUITE_P(
    PaperBanks, AnalyticFitTest,
    ::testing::Values(BankCase{128, 20, 12, 1.145, 14.91},
                      BankCase{64, 20, 12, 1.021, 12.20},
                      BankCase{32, 20, 12, 0.685, 7.50},
                      BankCase{64, 18, 11, 0.943, 10.07},
                      BankCase{32, 7, 6, 0.485, 1.31},
                      BankCase{32, 18, 12, 0.666, 6.61},
                      BankCase{64, 8, 6, 0.493, 1.50},
                      BankCase{64, 11, 7, 0.686, 3.99},
                      BankCase{32, 11, 7, 0.532, 2.44},
                      BankCase{64, 9, 6, 0.626, 2.81},
                      BankCase{32, 9, 7, 0.515, 1.95},
                      BankCase{64, 6, 4, 0.531, 1.30},
                      BankCase{32, 6, 4, 0.475, 1.07},
                      BankCase{32, 5, 3, 0.442, 0.70},
                      BankCase{16, 8, 8, 0.456, 1.57},
                      BankCase{16, 5, 4, 0.393, 0.52},
                      BankCase{16, 12, 8, 0.483, 2.42},
                      BankCase{32, 3, 2, 0.400, 0.30},
                      BankCase{16, 3, 2, 0.360, 0.17},
                      BankCase{16, 12, 12, 0.532, 3.45}));

// Clock/latency rules reproduce the paper's Table 5 rows exactly when fed
// the published access times.
struct ClockCase {
  double access;          // critical (first-level) access time
  double shared_access;   // 0 when no shared level above clusters
  int depth;
  double clock;
  int mem, fu;
  int comm;               // LoadR/StoreR latency
};

class ClockRuleTest : public ::testing::TestWithParam<ClockCase> {};

TEST_P(ClockRuleTest, MatchesTable5) {
  const ClockCase& c = GetParam();
  const int depth = LogicDepthFo4(c.access);
  // Depth within one FO4 of the published value; clock and latencies exact
  // given the published depth.
  EXPECT_NEAR(depth, c.depth, 1);
  EXPECT_NEAR(ClockNs(c.depth), c.clock, 1e-9);
  const LatencyTable lat = ScaleLatencies(c.depth, c.shared_access);
  EXPECT_EQ(lat.load_hit, c.mem);
  EXPECT_EQ(lat.fadd, c.fu);
  EXPECT_EQ(lat.store, c.mem - 1);
  EXPECT_EQ(lat.loadr, c.comm);
  EXPECT_EQ(lat.storer, c.comm);
}

INSTANTIATE_TEST_SUITE_P(
    Table5Rows, ClockRuleTest,
    ::testing::Values(
        ClockCase{1.145, 0.0, 31, 1.181, 2, 4, 1},    // S128
        ClockCase{1.021, 0.0, 27, 1.037, 3, 4, 1},    // S64
        ClockCase{0.685, 0.0, 18, 0.713, 3, 4, 1},    // S32
        ClockCase{0.943, 0.485, 25, 0.965, 3, 4, 1},  // 1C64S32
        ClockCase{0.666, 0.493, 17, 0.677, 3, 4, 1},  // 1C32S64
        ClockCase{0.686, 0.0, 18, 0.713, 3, 4, 1},    // 2C64
        ClockCase{0.532, 0.0, 13, 0.533, 4, 6, 1},    // 2C32
        ClockCase{0.626, 0.493, 16, 0.641, 3, 5, 1},  // 2C64S32
        ClockCase{0.515, 0.510, 13, 0.533, 4, 6, 1},  // 2C32S32
        ClockCase{0.531, 0.0, 13, 0.533, 4, 6, 1},    // 4C64
        ClockCase{0.475, 0.0, 12, 0.497, 4, 6, 1},    // 4C32
        ClockCase{0.442, 0.456, 11, 0.461, 4, 7, 1},  // 4C32S16
        ClockCase{0.393, 0.483, 10, 0.425, 4, 7, 2},  // 4C16S16
        ClockCase{0.400, 0.532, 10, 0.425, 4, 7, 2},  // 8C32S16
        ClockCase{0.360, 0.532, 9, 0.389, 5, 8, 2})); // 8C16S16

TEST(ClockRule, MissLatencyScalesWithClock) {
  // 10 ns miss: S128 clock 1.181 -> 9 cycles; 8C16S16 clock 0.389 -> 26.
  EXPECT_EQ(ScaleLatencies(31, 0.0).load_miss, 9);
  EXPECT_EQ(ScaleLatencies(9, 0.5).load_miss, 26);
}

TEST(Characterize, Table5EndToEnd) {
  // End-to-end with the paper-table bank values: 8C16S16/1-1.
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("8C16S16/1-1"));
  const Characterization c = Characterize(m, RFModelMode::kPaperTable);
  EXPECT_EQ(c.logic_depth_fo4, 9);
  EXPECT_NEAR(c.clock_ns, 0.389, 1e-9);
  EXPECT_NEAR(c.total_area_mlambda2, 8 * 0.17 + 3.45, 1e-9);
  EXPECT_EQ(c.lat.fadd, 8);
  EXPECT_EQ(c.lat.load_hit, 5);
  EXPECT_EQ(c.lat.loadr, 2);  // shared access 0.532 > clock 0.389
}

TEST(Characterize, MonolithicUsesSharedAccess) {
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("S128"));
  const Characterization c = Characterize(m, RFModelMode::kPaperTable);
  EXPECT_NEAR(c.critical_access_ns, 1.145, 1e-9);
  EXPECT_EQ(c.logic_depth_fo4, 31);
  EXPECT_EQ(c.lat.loadr, 1);  // no hierarchy: comm latency defaults to 1
}

TEST(Characterize, RejectsUnbounded) {
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("Sinf"));
  EXPECT_THROW(Characterize(m), std::invalid_argument);
}

TEST(Characterize, ApplyUpdatesMachine) {
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("4C16S16/2-1"));
  const MachineConfig scaled = ApplyCharacterization(m, RFModelMode::kPaperTable);
  EXPECT_NEAR(scaled.clock_ns, 0.425, 1e-9);
  EXPECT_EQ(scaled.lat.fadd, 7);
  EXPECT_EQ(scaled.lat.loadr, 2);
}

}  // namespace
}  // namespace hcrf::hw
