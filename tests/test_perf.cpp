// Tests of the performance-metric layer: the paper's formulas, the
// aggregation, and the parallel suite runner's determinism.
#include <gtest/gtest.h>

#include "perf/runner.h"
#include "perf/tables.h"
#include "workload/kernels.h"
#include "workload/perfect_synth.h"

namespace hcrf::perf {
namespace {

TEST(Metrics, ExecCycleFormula) {
  // ExecCycles = II*(N + (SC-1)*E) + Stall.
  const MachineConfig m = MachineConfig::Baseline();
  workload::Loop loop = workload::MakeVadd(100);
  loop.invocations = 3;
  RunOptions opt;
  opt.threads = 1;
  workload::Suite suite;
  suite.Add(loop);
  const auto det = RunSuiteDetailed(suite, m, opt);
  ASSERT_EQ(det.size(), 1u);
  ASSERT_TRUE(det[0].ok);
  const long expected = static_cast<long>(det[0].ii) *
                        (300 + static_cast<long>(det[0].sc - 1) * 3);
  EXPECT_EQ(det[0].useful_cycles, expected);
  EXPECT_EQ(det[0].stall_cycles, 0);  // ideal memory by default
  EXPECT_EQ(det[0].mem_traffic, 300L * det[0].trf);
  EXPECT_EQ(det[0].trf, 3);  // 2 loads + 1 store, no spill on S128
}

TEST(Metrics, AggregateSumsAndClassifies) {
  std::vector<LoopMetrics> loops(3);
  loops[0].ok = true;
  loops[0].ii = 2;
  loops[0].mii = 2;
  loops[0].useful_cycles = 100;
  loops[0].bound = core::BoundClass::kMemPort;
  loops[1].ok = true;
  loops[1].ii = 5;
  loops[1].mii = 4;
  loops[1].useful_cycles = 50;
  loops[1].bound = core::BoundClass::kRecurrence;
  loops[2].ok = false;
  const SuiteMetrics sm = Aggregate(loops);
  EXPECT_EQ(sm.num_loops, 3);
  EXPECT_EQ(sm.failed, 1);
  EXPECT_EQ(sm.sum_ii, 7);
  EXPECT_EQ(sm.loops_at_mii, 1);
  EXPECT_DOUBLE_EQ(sm.PctAtMII(), 100.0 / 3.0);
  EXPECT_EQ(sm.ExecCycles(), 150);
  EXPECT_EQ(sm.bound_count[1], 1);  // MemPort
  EXPECT_EQ(sm.bound_count[2], 1);  // Rec
  EXPECT_EQ(sm.bound_cycles[1], 100);
}

TEST(Metrics, IPCUsesOriginalOps) {
  SuiteMetrics sm;
  sm.ops_executed = 600;
  sm.useful_cycles = 100;
  EXPECT_DOUBLE_EQ(sm.IPC(), 6.0);
}

TEST(Runner, ParallelMatchesSerial) {
  workload::SynthParams p;
  p.num_loops = 60;
  const workload::Suite suite = workload::PerfectSynthetic(p);
  const MachineConfig m = MachineConfig::Baseline();
  RunOptions serial;
  serial.threads = 1;
  RunOptions parallel;
  parallel.threads = 8;
  const auto a = RunSuiteDetailed(suite, m, serial);
  const auto b = RunSuiteDetailed(suite, m, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ok, b[i].ok) << i;
    EXPECT_EQ(a[i].ii, b[i].ii) << i;
    EXPECT_EQ(a[i].sc, b[i].sc) << i;
    EXPECT_EQ(a[i].mem_traffic, b[i].mem_traffic) << i;
  }
}

TEST(Runner, RealMemoryAddsStalls) {
  workload::Suite suite;
  suite.Add(workload::MakeVadd(512));
  const MachineConfig m = MachineConfig::Baseline();
  RunOptions ideal;
  RunOptions real;
  real.simulate_memory = true;
  const SuiteMetrics a = RunSuite(suite, m, ideal);
  const SuiteMetrics b = RunSuite(suite, m, real);
  EXPECT_EQ(a.stall_cycles, 0);
  EXPECT_GT(b.stall_cycles, 0);
  EXPECT_EQ(a.useful_cycles, b.useful_cycles);
}

TEST(Runner, PrefetchCutsStalls) {
  workload::Suite suite;
  suite.Add(workload::MakeVadd(512));
  const MachineConfig m = MachineConfig::Baseline();
  RunOptions none;
  none.simulate_memory = true;
  RunOptions sel;
  sel.simulate_memory = true;
  sel.prefetch = memsim::PrefetchMode::kSelective;
  const SuiteMetrics a = RunSuite(suite, m, none);
  const SuiteMetrics b = RunSuite(suite, m, sel);
  EXPECT_LT(b.stall_cycles, a.stall_cycles);
}

// The MII sweep cache must key producer-latency overrides: a binding-
// prefetch run must never share an entry with — and so never be
// cross-served from — a base-latency run of the same loop and machine.
TEST(MiiCache, OverridesArePartOfTheKey) {
  // A latency no other test uses keeps this test's keys to itself (the
  // cache is process-wide; all assertions are deltas).
  MachineConfig m = MachineConfig::Baseline();
  m.lat.fadd = 6;
  workload::Suite suite;
  suite.Add(workload::MakeVadd(512));
  RunOptions none;
  none.threads = 1;
  RunOptions all = none;
  all.prefetch = memsim::PrefetchMode::kAll;

  const MiiCacheStats s0 = GetMiiCacheStats();
  RunSuiteDetailed(suite, m, none);
  const MiiCacheStats s1 = GetMiiCacheStats();
  EXPECT_EQ(s1.misses, s0.misses + 1);

  // Non-empty overrides -> a distinct entry, not a hit on the plain one.
  RunSuiteDetailed(suite, m, all);
  const MiiCacheStats s2 = GetMiiCacheStats();
  EXPECT_EQ(s2.misses, s1.misses + 1);
  EXPECT_EQ(s2.hits, s1.hits);

  // Rerunning with the same overrides is served from its own entry.
  RunSuiteDetailed(suite, m, all);
  const MiiCacheStats s3 = GetMiiCacheStats();
  EXPECT_EQ(s3.misses, s2.misses);
  EXPECT_EQ(s3.hits, s2.hits + 1);
}

TEST(MiiCache, CapacityBoundsResidencyWithEviction) {
  const long old_cap = SetMiiCacheCapacity(4);
  const MiiCacheStats trimmed = GetMiiCacheStats();
  EXPECT_LE(trimmed.entries, 4);

  workload::Suite suite;
  suite.Add(workload::MakeDot());
  RunOptions opt;
  opt.threads = 1;
  for (int i = 0; i < 6; ++i) {
    MachineConfig m = MachineConfig::Baseline();
    m.lat.fmul = 40 + i;  // six distinct latency tables -> six keys
    RunSuiteDetailed(suite, m, opt);
  }
  const MiiCacheStats after = GetMiiCacheStats();
  EXPECT_EQ(after.misses, trimmed.misses + 6);
  EXPECT_EQ(after.entries, 4);  // six inserts into a cap of four
  EXPECT_GE(after.evictions, trimmed.evictions + 2);
  SetMiiCacheCapacity(old_cap);
}

TEST(Tables, Formatting) {
  EXPECT_EQ(Table::Num(1.2345, 2), "1.23");
  EXPECT_EQ(Table::VsPaper(1.5, 2.0, 1), "1.5 (2.0)");
  Table t({"a", "bb"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("bb"), std::string::npos);
  EXPECT_NE(os.str().find("---"), std::string::npos);
}

}  // namespace
}  // namespace hcrf::perf
