// Unit tests for lifetime / MaxLive analysis, including wrap-around
// lifetimes, loop-carried distances, bank mapping and invariants.
#include <gtest/gtest.h>

#include "sched/lifetime.h"

namespace hcrf::sched {
namespace {

MachineConfig Mono() { return MachineConfig::WithRF(RFConfig::Parse("S128")); }

// Regression: MaxLiveOf used to index cluster_maxlive unchecked — UB for
// monolithic organizations, whose report has no cluster banks at all. The
// guard must fail loudly instead.
TEST(Lifetime, MaxLiveOfChecksBankBounds) {
  DDG g;
  const NodeId ld = g.AddNode(OpClass::kLoad);
  const NodeId add = g.AddNode(OpClass::kFAdd);
  g.AddFlow(ld, add, 0);
  PartialSchedule s(2);
  s.Assign(ld, {0, 0, 0, true});
  s.Assign(add, {2, 0, 0, true});

  const PressureReport pr = ComputePressure(g, s, Mono());
  EXPECT_TRUE(pr.cluster_maxlive.empty());
  EXPECT_EQ(pr.MaxLiveOf(kSharedBank), pr.shared_maxlive);
  EXPECT_DEATH(pr.MaxLiveOf(0), "MaxLiveOf");
  EXPECT_DEATH(pr.MaxLiveOf(-7), "MaxLiveOf");

  const PressureReport clustered = ComputePressure(
      g, s, MachineConfig::WithRF(RFConfig::Parse("4C16S64/2-1")));
  ASSERT_EQ(clustered.cluster_maxlive.size(), 4u);
  EXPECT_EQ(clustered.MaxLiveOf(3), clustered.cluster_maxlive[3]);
  EXPECT_DEATH(clustered.MaxLiveOf(4), "MaxLiveOf");
}

TEST(Lifetime, SimpleChain) {
  DDG g;
  const NodeId ld = g.AddNode(OpClass::kLoad);
  const NodeId add = g.AddNode(OpClass::kFAdd);
  g.AddFlow(ld, add, 0);
  const MachineConfig m = Mono();

  PartialSchedule s(2);
  s.Assign(ld, {0, 0, 0, true});
  s.Assign(add, {2, 0, 0, true});  // load latency 2

  const PressureReport pr = ComputePressure(g, s, m);
  // ld's value: [0, 2) -> covers rows 0 and 1, one register.
  // add's value has no consumer -> empty.
  EXPECT_EQ(pr.shared_maxlive, 1);
  ASSERT_EQ(pr.values.size(), 2u);
}

TEST(Lifetime, LongLifetimeNeedsMultipleRegisters) {
  DDG g;
  const NodeId a = g.AddNode(OpClass::kFAdd);
  const NodeId b = g.AddNode(OpClass::kFAdd);
  g.AddFlow(a, b, 0);
  const MachineConfig m = Mono();

  PartialSchedule s(2);
  s.Assign(a, {0, 0, 0, true});
  s.Assign(b, {7, 0, 0, true});  // lifetime 7 at II=2 -> ceil(7/2)=4 copies
  const PressureReport pr = ComputePressure(g, s, m);
  EXPECT_EQ(pr.shared_maxlive, 4);
}

TEST(Lifetime, LoopCarriedDistanceExtends) {
  DDG g;
  const NodeId a = g.AddNode(OpClass::kFAdd);
  const NodeId b = g.AddNode(OpClass::kFAdd);
  g.AddFlow(a, b, 3);  // consumed 3 iterations later
  const MachineConfig m = Mono();

  PartialSchedule s(4);
  s.Assign(a, {0, 0, 0, true});
  s.Assign(b, {4, 0, 0, true});
  // end = 4 + 3*4 = 16; lifetime 16 at II=4 -> 4 registers.
  const PressureReport pr = ComputePressure(g, s, m);
  EXPECT_EQ(pr.shared_maxlive, 4);
}

TEST(Lifetime, ClusterBanksSeparate) {
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("2C32/1-1"));
  DDG g;
  const NodeId a = g.AddNode(OpClass::kFAdd);
  const NodeId b = g.AddNode(OpClass::kFAdd);
  const NodeId c = g.AddNode(OpClass::kFAdd);
  const NodeId d = g.AddNode(OpClass::kFAdd);
  g.AddFlow(a, b, 0);
  g.AddFlow(c, d, 0);

  PartialSchedule s(1);
  s.Assign(a, {0, 0, 0, true});
  s.Assign(b, {6, 0, 0, true});
  s.Assign(c, {0, 1, 0, true});
  s.Assign(d, {6, 1, 0, true});
  const PressureReport pr = ComputePressure(g, s, m);
  ASSERT_EQ(pr.cluster_maxlive.size(), 2u);
  EXPECT_EQ(pr.cluster_maxlive[0], 6);
  EXPECT_EQ(pr.cluster_maxlive[1], 6);
  EXPECT_EQ(pr.shared_maxlive, 0);
}

TEST(Lifetime, HierarchicalLoadLivesInShared) {
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("2C32S32/3-1"));
  DDG g;
  const NodeId ld = g.AddNode(OpClass::kLoad);
  Node lr;
  lr.op = OpClass::kLoadR;
  lr.inserted = true;
  const NodeId l = g.AddNode(std::move(lr));
  const NodeId add = g.AddNode(OpClass::kFAdd);
  g.AddFlow(ld, l, 0);
  g.AddFlow(l, add, 0);

  PartialSchedule s(2);
  s.Assign(ld, {0, 0, 0, true});
  s.Assign(l, {4, 1, 0, true});
  s.Assign(add, {6, 1, 0, true});
  const PressureReport pr = ComputePressure(g, s, m);
  // The shared bank is a decoupling buffer: the load's value occupies it
  // from ARRIVAL (cycle 2) to the LoadR read (cycle 4) -> 2 cycles at II=2
  // is one register. The LoadR's value lives [4,6) in cluster 1 (cluster
  // banks count from issue; no renaming).
  EXPECT_EQ(pr.shared_maxlive, 1);
  EXPECT_EQ(pr.cluster_maxlive[1], 1);
  EXPECT_EQ(pr.cluster_maxlive[0], 0);
}

TEST(Lifetime, InvariantsPinRegisters) {
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("2C32S32/3-1"));
  DDG g;
  const std::int32_t inv = g.AddInvariant();
  Node n;
  n.op = OpClass::kFMul;
  n.invariant_uses = {inv};
  const NodeId mul = g.AddNode(std::move(n));

  PartialSchedule s(3);
  s.Assign(mul, {0, 1, 0, true});
  const PressureReport pr = ComputePressure(g, s, m);
  // One register in cluster 1 (direct use) + master copy in shared.
  EXPECT_EQ(pr.cluster_maxlive[1], 1);
  EXPECT_EQ(pr.cluster_maxlive[0], 0);
  EXPECT_EQ(pr.shared_maxlive, 1);
}

TEST(Lifetime, UnscheduledInvariantUsersDoNotCount) {
  MachineConfig m = Mono();
  DDG g;
  const std::int32_t inv = g.AddInvariant();
  Node n;
  n.op = OpClass::kFMul;
  n.invariant_uses = {inv};
  g.AddNode(std::move(n));
  PartialSchedule s(2);
  const PressureReport pr = ComputePressure(g, s, m);
  EXPECT_EQ(pr.shared_maxlive, 0);
}

TEST(Lifetime, OverridesLengthenPrefetchedLoads) {
  MachineConfig m = Mono();
  DDG g;
  const NodeId ld = g.AddNode(OpClass::kLoad);
  const NodeId add = g.AddNode(OpClass::kFAdd);
  g.AddFlow(ld, add, 0);

  LatencyOverrides ov;
  ov.producer_latency.assign(2, 0);
  ov.producer_latency[0] = m.lat.load_miss;  // bound to miss latency

  EXPECT_EQ(ProducerLatency(g, ld, m.lat, ov), m.lat.load_miss);
  EXPECT_EQ(ProducerLatency(g, add, m.lat, ov), m.lat.fadd);
  const Edge e = g.OutEdges(ld).front();
  EXPECT_EQ(DependenceLatency(g, e, m.lat, ov), m.lat.load_miss);
}

}  // namespace
}  // namespace hcrf::sched
