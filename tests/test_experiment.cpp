// The experiment registry and runner: every registered experiment expands
// to a valid grid, the paper-reference table anchors real experiments and
// its tolerance checks pass and fail correctly, a --smoke run goes through
// the persistent cache cold-then-warm with bit-identical reports, and
// binding-prefetch overrides are keyed into the batch service's cache.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>

#include "experiment/experiment.h"
#include "experiment/paper_ref.h"
#include "experiment/run.h"
#include "memsim/prefetch.h"
#include "service/batch.h"
#include "workload/kernels.h"
#include "workload/suite_cache.h"

namespace hcrf {
namespace {

namespace fs = std::filesystem;
using experiment::Experiment;
using experiment::FindExperiment;
using experiment::PaperRef;
using experiment::PaperRefs;
using experiment::RefsFor;
using experiment::Registry;
using experiment::ReproCsv;
using experiment::ReproMarkdown;
using experiment::ReproOptions;
using experiment::ReproReport;
using experiment::RunExperiments;

std::string FreshDir(const std::string& stem) {
  const std::string dir =
      (fs::path(::testing::TempDir()) / (stem + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  return dir;
}

TEST(ExperimentRegistry, ThirteenExperimentsWithValidGrids) {
  const std::vector<Experiment>& reg = Registry();
  EXPECT_EQ(reg.size(), 13u);

  std::set<std::string> names;
  for (const Experiment& e : reg) {
    SCOPED_TRACE(e.name);
    EXPECT_TRUE(names.insert(e.name).second) << "duplicate experiment name";
    EXPECT_FALSE(e.title.empty());
    ASSERT_NE(e.aggregate, nullptr);

    if (e.workload.suite.empty()) {
      // Hardware-model-only experiments (tables 2 and 5) schedule nothing.
      EXPECT_EQ(e.CellsPerLoop(), 0u);
      continue;
    }
    EXPECT_NE(workload::SharedSuiteByName(e.workload.suite), nullptr);
    EXPECT_GT(e.workload.smoke_slice, 0u);
    ASSERT_FALSE(e.machines.empty());
    ASSERT_FALSE(e.engines.empty());
    std::set<std::string> labels;
    for (const experiment::MachineVariant& mv : e.machines) {
      SCOPED_TRACE(mv.label);
      EXPECT_TRUE(labels.insert(mv.label).second) << "duplicate machine";
      std::string why;
      EXPECT_TRUE(mv.machine.IsValid(&why)) << why;
    }
    std::set<std::string> engine_labels;
    for (const experiment::EngineVariant& ev : e.engines) {
      EXPECT_TRUE(engine_labels.insert(ev.label).second)
          << "duplicate engine label " << ev.label;
    }
  }
  EXPECT_NE(FindExperiment("table4"), nullptr);
  EXPECT_EQ(FindExperiment("nope"), nullptr);
}

TEST(ExperimentRegistry, PaperRefsAnchorRegisteredExperiments) {
  EXPECT_FALSE(PaperRefs().empty());
  for (const PaperRef& r : PaperRefs()) {
    SCOPED_TRACE(r.experiment + "/" + r.row + "/" + r.metric);
    EXPECT_NE(FindExperiment(r.experiment), nullptr);
    EXPECT_GE(r.tol_abs, 0.0);
    EXPECT_GE(r.tol_rel, 0.0);
    EXPECT_GT(r.tol_abs + r.tol_rel, 0.0) << "ref with no tolerance band";
  }
  // Every experiment with anchors resolves through RefsFor.
  EXPECT_FALSE(RefsFor("table4").empty());
  EXPECT_FALSE(RefsFor("table5").empty());
  EXPECT_TRUE(RefsFor("ablation_budget").empty());  // unpublished knob
}

TEST(ExperimentRegistry, ToleranceChecksPassAndFail) {
  PaperRef abs;
  abs.paper = 100.0;
  abs.tol_abs = 5.0;
  EXPECT_TRUE(abs.Pass(100.0));
  EXPECT_TRUE(abs.Pass(104.9));
  EXPECT_TRUE(abs.Pass(95.1));
  EXPECT_FALSE(abs.Pass(105.2));  // out of band high
  EXPECT_FALSE(abs.Pass(94.8));   // out of band low

  PaperRef rel;
  rel.paper = -40.0;
  rel.tol_rel = 0.25;  // band: +/- 10
  EXPECT_TRUE(rel.Pass(-40.0));
  EXPECT_TRUE(rel.Pass(-30.5));
  EXPECT_FALSE(rel.Pass(-29.0));
  EXPECT_FALSE(rel.Pass(-51.0));

  PaperRef both;
  both.paper = 10.0;
  both.tol_abs = 1.0;
  both.tol_rel = 0.1;  // band: +/- 2
  EXPECT_TRUE(both.Pass(12.0));
  EXPECT_FALSE(both.Pass(12.1));
}

// The hardware-model experiments are workload-independent: every one of
// their reference values must be found, enforced and in tolerance in both
// full and smoke modes (they gate CI).
TEST(ExperimentRun, HardwareModelRefsAllPass) {
  ReproOptions opt;
  opt.smoke = true;
  const ReproReport report = RunExperiments(
      {FindExperiment("table2"), FindExperiment("table5")}, opt);
  ASSERT_EQ(report.experiments.size(), 2u);
  EXPECT_EQ(report.requests, 0);  // nothing scheduled
  EXPECT_EQ(report.ref_failures, 0);
  int checked = 0;
  for (const experiment::ExperimentResult& e : report.experiments) {
    EXPECT_FALSE(e.rows.empty());
    for (const experiment::RefCheck& c : e.refs) {
      EXPECT_TRUE(c.found) << c.ref->row << "/" << c.ref->metric;
      EXPECT_TRUE(c.enforced);
      EXPECT_TRUE(c.passed)
          << c.ref->row << "/" << c.ref->metric << ": measured "
          << c.measured << " vs paper " << c.ref->paper;
      ++checked;
    }
  }
  EXPECT_GT(checked, 100);  // both Table 5 modes are anchored
}

// The acceptance path: a smoke run of scheduling experiments against a
// fresh cache, then a warm rerun — fully cache-served, byte-identical
// CSV/markdown, nonzero hit count.
TEST(ExperimentRun, SmokeColdThenWarmIsBitIdentical) {
  const std::string cache = FreshDir("hcrf-exp-cache-");
  ReproOptions opt;
  opt.smoke = true;
  opt.cache_dir = cache;
  const std::vector<const Experiment*> sel = {
      FindExperiment("table4"), FindExperiment("fig4"),
      FindExperiment("ablation_budget")};

  const ReproReport cold = RunExperiments(sel, opt);
  EXPECT_GT(cold.requests, 0);
  EXPECT_EQ(cold.hits, 0);
  EXPECT_EQ(cold.scheduled, cold.requests);

  const ReproReport warm = RunExperiments(sel, opt);
  EXPECT_EQ(warm.scheduled, 0);
  EXPECT_EQ(warm.hits, warm.requests);
  EXPECT_EQ(warm.requests, cold.requests);

  EXPECT_EQ(ReproCsv(cold), ReproCsv(warm));
  EXPECT_EQ(ReproMarkdown(cold), ReproMarkdown(warm));

  // Smoke bounds the workload and reports workload-dependent refs as n/a.
  for (const experiment::ExperimentResult& e : cold.experiments) {
    const Experiment* def = FindExperiment(e.name);
    EXPECT_LE(e.num_loops, def->workload.smoke_slice);
    for (const experiment::RefCheck& c : e.refs) {
      if (c.ref->workload_dependent) {
        EXPECT_EQ(c.verdict, "n/a");
        EXPECT_FALSE(c.enforced);
      }
    }
  }
  fs::remove_all(cache);
}

// Table 4's comparison must account for failures per engine, explicitly:
// the experiment emits a "failures" row (noniter_only / mirs_only / both /
// compared) and the compared count plus every failure class partitions
// the workload — no silently dropped rows.
TEST(ExperimentRun, ComparisonReportsPerEngineFailures) {
  ReproOptions opt;
  opt.smoke = false;  // slice below keeps this cheap
  const Experiment* table4 = FindExperiment("table4");
  ASSERT_NE(table4, nullptr);
  Experiment sliced = *table4;  // value copy; run on a bounded slice
  sliced.workload.slice = 64;
  const ReproReport report = RunExperiments({&sliced}, opt);
  ASSERT_EQ(report.experiments.size(), 1u);
  const experiment::ExperimentResult& res = report.experiments[0];

  double noniter_only = -1, mirs_only = -1, both = -1, compared = -1,
         total = -1;
  for (const experiment::MetricValue& mv : res.rows) {
    if (mv.row == "failures" && mv.metric == "noniter_only") {
      noniter_only = mv.value;
    }
    if (mv.row == "failures" && mv.metric == "mirs_only") mirs_only = mv.value;
    if (mv.row == "failures" && mv.metric == "both") both = mv.value;
    if (mv.row == "failures" && mv.metric == "compared") compared = mv.value;
    if (mv.row == "total" && mv.metric == "loops") total = mv.value;
  }
  ASSERT_GE(noniter_only, 0.0);
  ASSERT_GE(mirs_only, 0.0);
  ASSERT_GE(both, 0.0);
  ASSERT_GE(compared, 0.0);
  EXPECT_EQ(compared + noniter_only + mirs_only + both, total);
  EXPECT_EQ(total, 64.0);
}

// Binding-prefetch latency overrides are part of the batch request and its
// cache key: a prefetch run and a base-latency run of the same loop must
// not share entries, and each must warm-hit its own.
TEST(ExperimentRun, PrefetchOverridesAreKeyedIntoTheCache) {
  const std::string cache = FreshDir("hcrf-exp-ovr-");
  const auto loop =
      std::make_shared<const workload::Loop>(workload::MakeDaxpy());
  MachineConfig m = MachineConfig::Baseline();

  service::BatchRequest plain;
  plain.id = "plain";
  plain.loop = loop;
  plain.machine = m;

  service::BatchRequest prefetch = plain;
  prefetch.id = "prefetch";
  prefetch.overrides = memsim::ClassifyBindingPrefetch(
      loop->ddg, m, loop->trip, memsim::PrefetchMode::kAll);
  bool has_override = false;
  for (int v : prefetch.overrides.producer_latency) {
    if (v > 0) has_override = true;
  }
  ASSERT_TRUE(has_override) << "kAll should bind loads to miss latency";
  ASSERT_FALSE(service::MakeCacheKey(loop->ddg, m, plain.options,
                                     plain.overrides) ==
               service::MakeCacheKey(loop->ddg, m, prefetch.options,
                                     prefetch.overrides));

  service::BatchOptions bopt;
  bopt.cache_dir = cache;
  bopt.threads = 1;
  const service::BatchReport cold =
      service::RunBatch({plain, prefetch}, bopt);
  ASSERT_TRUE(cold.items[0].ok);
  ASSERT_TRUE(cold.items[1].ok);
  EXPECT_EQ(cold.scheduled, 2);
  // Miss-latency scheduling must actually differ from the hit-latency
  // schedule somewhere observable (here: the overrides echoed back).
  EXPECT_NE(cold.items[0].result.overrides.producer_latency,
            cold.items[1].result.overrides.producer_latency);

  const service::BatchReport warm =
      service::RunBatch({plain, prefetch}, bopt);
  EXPECT_EQ(warm.hits, 2);
  EXPECT_EQ(warm.scheduled, 0);
  EXPECT_EQ(warm.items[0].result.ii, cold.items[0].result.ii);
  EXPECT_EQ(warm.items[1].result.ii, cold.items[1].result.ii);
  fs::remove_all(cache);
}

}  // namespace
}  // namespace hcrf
