// Unit tests of the communication-rewrite module in isolation: edge
// splitting into StoreR/LoadR/Move chains, chain reuse, and the
// split->restore round-trip that ejection relies on. The module is driven
// through a minimal NodePlacer, proving it does not depend on the engine
// driver.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/comm_rewrite.h"
#include "core/instrument.h"
#include "core/sched_state.h"
#include "sched/mrt.h"

namespace hcrf::core {
namespace {

using sched::BankId;

/// Greedy placer: first feasible cycle in the dependence window. No
/// force-and-eject, no budget -- just enough to schedule chain nodes.
class TestPlacer : public NodePlacer {
 public:
  explicit TestPlacer(SchedState& st) : st_(st) {}

  NodeId CreateNode(Node n, double priority) override {
    n.inserted = true;
    const NodeId id = st_.g.AddNode(std::move(n));
    st_.GrowTo(id);
    st_.priority[static_cast<size_t>(id)] = priority;
    st_.unscheduled[static_cast<size_t>(id)] = 1;
    ++st_.num_unscheduled;
    return id;
  }

  bool PlaceNode(NodeId u, int cluster, int src_cluster) override {
    const auto needs =
        sched::ResourceNeeds(st_.g.node(u).op, cluster, src_cluster, st_.m);
    const Window w = st_.ComputeWindow(u);
    const int ii = st_.ii();
    if (w.has_succ && !w.has_pred) {
      for (int t = w.late; t >= w.late - ii + 1; --t) {
        if (st_.mrt->CanPlace(needs, t)) return Put(u, needs, t, cluster,
                                                    src_cluster);
      }
      return false;
    }
    const int hi =
        w.has_succ ? std::min(w.late, w.early + ii - 1) : w.early + ii - 1;
    for (int t = w.early; t <= hi; ++t) {
      if (st_.mrt->CanPlace(needs, t)) return Put(u, needs, t, cluster,
                                                  src_cluster);
    }
    return false;
  }

 private:
  bool Put(NodeId u, const sched::ResUseList& needs, int t,
           int cluster, int src_cluster) {
    st_.mrt->Place(u, needs, t);
    st_.Assign(u, {t, cluster, src_cluster, true});
    st_.MarkScheduled(u);
    st_.prev_cycle[static_cast<size_t>(u)] = t;
    return true;
  }

  SchedState& st_;
};

struct Rig {
  explicit Rig(const char* rf, const DDG& g, int ii)
      : m(MachineConfig::WithRF(RFConfig::Parse(rf))),
        st(m),
        placer(st),
        rewriter(st, placer, instr) {
    st.Reset(g, {}, ii);
    // Simple priorities: earlier ids first.
    for (NodeId v = 0; v < st.g.NumSlots(); ++v) {
      st.priority[static_cast<size_t>(v)] =
          static_cast<double>(st.g.NumSlots() - v);
      st.MarkUnscheduled(v);
    }
  }

  bool HasEdge(NodeId src, NodeId dst) const {
    const auto& in = st.g.InEdges(dst);
    return std::any_of(in.begin(), in.end(),
                       [&](const Edge& e) { return e.src == src; });
  }

  MachineConfig m;
  SchedState st;
  Instrumentation instr;
  TestPlacer placer;
  CommRewriter rewriter;
};

DDG LoadFeedsAdd() {
  DDG g("load_add");
  Node ld;
  ld.op = OpClass::kLoad;
  ld.mem = MemRef{0, 0, 8};
  const NodeId l = g.AddNode(std::move(ld));
  const NodeId a = g.AddNode(OpClass::kFAdd);
  g.AddFlow(l, a, 0);
  return g;
}

TEST(CommRewrite, HierarchicalEdgeSplitInsertsLoadR) {
  const DDG g = LoadFeedsAdd();
  Rig rig("1C32S64/4-2", g, /*ii=*/4);
  const NodeId load = 0, add = 1;

  ASSERT_TRUE(rig.placer.PlaceNode(load, 0, 0));
  // The load defines in the shared bank; the add reads its cluster bank.
  ASSERT_TRUE(rig.rewriter.EnsureCommunication(add, /*cluster=*/0));

  ASSERT_EQ(rig.rewriter.fixes().size(), 1u);
  EXPECT_FALSE(rig.HasEdge(load, add)) << "direct edge must be replaced";
  const NodeId loadr = rig.rewriter.fixes()[0].final_edge.src;
  EXPECT_EQ(rig.st.g.node(loadr).op, OpClass::kLoadR);
  EXPECT_TRUE(rig.st.g.node(loadr).inserted);
  EXPECT_TRUE(rig.HasEdge(load, loadr));
  EXPECT_TRUE(rig.HasEdge(loadr, add));
  EXPECT_TRUE(rig.st.sched->IsScheduled(loadr));
  EXPECT_EQ(rig.st.sched->ClusterOf(loadr), 0);
  EXPECT_EQ(rig.instr.stats().chains_built, 1);
}

TEST(CommRewrite, UndoRestoresOriginalEdgeAndCollectsChain) {
  const DDG g = LoadFeedsAdd();
  Rig rig("1C32S64/4-2", g, 4);
  const NodeId load = 0, add = 1;
  ASSERT_TRUE(rig.placer.PlaceNode(load, 0, 0));
  ASSERT_TRUE(rig.rewriter.EnsureCommunication(add, 0));
  const NodeId loadr = rig.rewriter.fixes()[0].final_edge.src;

  // Eject the consumer: its fixes unwind and the chain node, now
  // consumer-less, is garbage collected.
  rig.st.Unplace(add);
  rig.st.MarkUnscheduled(add);
  rig.rewriter.UndoFixesTouching(add);
  rig.rewriter.GarbageCollectComm();

  EXPECT_TRUE(rig.rewriter.fixes().empty());
  EXPECT_TRUE(rig.HasEdge(load, add)) << "direct edge must be restored";
  EXPECT_FALSE(rig.st.g.IsAlive(loadr)) << "orphan chain node must die";
  EXPECT_FALSE(rig.st.mrt->IsPlaced(loadr));
  EXPECT_EQ(rig.instr.stats().chains_undone, 1);
  // Round trip: original structure back (1 flow edge into the add).
  ASSERT_EQ(rig.st.g.InEdges(add).size(), 1u);
  EXPECT_EQ(rig.st.g.InEdges(add)[0].src, load);
  EXPECT_EQ(rig.st.g.InEdges(add)[0].distance, 0);
  EXPECT_EQ(rig.st.g.InEdges(add)[0].kind, DepKind::kFlow);
}

TEST(CommRewrite, PureClusteredMoveRoundTrip) {
  DDG g("cross");
  const NodeId a = g.AddNode(OpClass::kFAdd);
  const NodeId b = g.AddNode(OpClass::kFMul);
  g.AddFlow(a, b, 1);  // loop-carried: the distance rides into the move

  Rig rig("2C32/1-1", g, 4);
  ASSERT_TRUE(rig.placer.PlaceNode(a, /*cluster=*/0, 0));
  // Scheduling b on cluster 1 crosses banks: a Move must bridge it.
  ASSERT_TRUE(rig.rewriter.EnsureCommunication(b, /*cluster=*/1));

  ASSERT_EQ(rig.rewriter.fixes().size(), 1u);
  const NodeId mv = rig.rewriter.fixes()[0].final_edge.src;
  EXPECT_EQ(rig.st.g.node(mv).op, OpClass::kMove);
  EXPECT_EQ(rig.st.sched->ClusterOf(mv), 1);
  EXPECT_EQ(rig.st.sched->Of(mv).src_cluster, 0);
  // The carried distance moved onto the producer->move hop; the final edge
  // is intra-iteration.
  const auto& fix = rig.rewriter.fixes()[0];
  EXPECT_EQ(fix.final_edge.distance, 0);
  ASSERT_EQ(rig.st.g.InEdges(mv).size(), 1u);
  EXPECT_EQ(rig.st.g.InEdges(mv)[0].distance, 1);

  // Ejecting the producer also unwinds the fix (its edge touches `a`).
  rig.st.Unplace(a);
  rig.st.MarkUnscheduled(a);
  rig.rewriter.UndoFixesTouching(a);
  rig.rewriter.GarbageCollectComm();
  EXPECT_TRUE(rig.rewriter.fixes().empty());
  EXPECT_FALSE(rig.st.g.IsAlive(mv));
  ASSERT_EQ(rig.st.g.InEdges(b).size(), 1u);
  EXPECT_EQ(rig.st.g.InEdges(b)[0].src, a);
  EXPECT_EQ(rig.st.g.InEdges(b)[0].distance, 1);
}

TEST(CommRewrite, SecondConsumerReusesScheduledChainNode) {
  DDG g("fanout");
  Node ld;
  ld.op = OpClass::kLoad;
  ld.mem = MemRef{0, 0, 8};
  const NodeId l = g.AddNode(std::move(ld));
  const NodeId c1 = g.AddNode(OpClass::kFAdd);
  const NodeId c2 = g.AddNode(OpClass::kFMul);
  g.AddFlow(l, c1, 0);
  g.AddFlow(l, c2, 0);

  Rig rig("1C32S64/4-2", g, 4);
  ASSERT_TRUE(rig.placer.PlaceNode(l, 0, 0));
  ASSERT_TRUE(rig.rewriter.EnsureCommunication(c1, 0));
  ASSERT_TRUE(rig.rewriter.EnsureCommunication(c2, 0));

  ASSERT_EQ(rig.rewriter.fixes().size(), 2u);
  // Both consumers route through the same LoadR.
  EXPECT_EQ(rig.rewriter.fixes()[0].final_edge.src,
            rig.rewriter.fixes()[1].final_edge.src);
  int loadrs = 0;
  for (NodeId v = 0; v < rig.st.g.NumSlots(); ++v) {
    if (rig.st.g.IsAlive(v) && rig.st.g.node(v).op == OpClass::kLoadR) {
      ++loadrs;
    }
  }
  EXPECT_EQ(loadrs, 1);

  // Undoing one consumer keeps the chain alive for the other; undoing both
  // collects it.
  rig.rewriter.UndoFixesTouching(c1);
  rig.rewriter.GarbageCollectComm();
  ASSERT_EQ(rig.rewriter.fixes().size(), 1u);
  const NodeId loadr = rig.rewriter.fixes()[0].final_edge.src;
  EXPECT_TRUE(rig.st.g.IsAlive(loadr));
  rig.rewriter.UndoFixesTouching(c2);
  rig.rewriter.GarbageCollectComm();
  EXPECT_FALSE(rig.st.g.IsAlive(loadr));
  EXPECT_TRUE(rig.HasEdge(l, c1));
  EXPECT_TRUE(rig.HasEdge(l, c2));
}

TEST(CommRewrite, SharedBankConsumerNeedsNoChain) {
  // load -> store on a hierarchical RF: both ends live in the shared bank.
  DDG g("copy");
  Node ld;
  ld.op = OpClass::kLoad;
  ld.mem = MemRef{0, 0, 8};
  const NodeId l = g.AddNode(std::move(ld));
  Node st;
  st.op = OpClass::kStore;
  st.mem = MemRef{1, 0, 8};
  const NodeId s = g.AddNode(std::move(st));
  g.AddFlow(l, s, 0);

  Rig rig("4C16S64/2-1", g, 4);
  ASSERT_TRUE(rig.placer.PlaceNode(l, 0, 0));
  ASSERT_TRUE(rig.rewriter.EnsureCommunication(s, 2));
  EXPECT_TRUE(rig.rewriter.fixes().empty());
  EXPECT_TRUE(rig.HasEdge(l, s));
}

}  // namespace
}  // namespace hcrf::core
