// Observability layer: metrics-registry semantics (sharded counters,
// log-scale histograms, deterministic dumps), flight-recorder invariants
// (well-formed Chrome trace JSON, span nesting per thread track, the
// speculation markers), the pure-observer guarantee (tracing on or off,
// schedules and serialized stats stay bit-identical, including under
// racing), exact reconciliation of the engine.* registry counters with
// summed ScheduleStats, and the per-request timing decomposition of the
// batch service.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstddef>
#include <filesystem>
#include <iterator>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/mirs.h"
#include "hwmodel/characterize.h"
#include "io/hcl.h"
#include "machine/machine_config.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/batch.h"
#include "workload/suite_cache.h"

namespace hcrf {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// A minimal JSON well-formedness checker (objects, arrays, strings,
// numbers, literals). The exporters promise *parseable* JSON; this keeps
// the check in-tree instead of depending on an external parser.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(s_[pos_]) < 0x20) {
        return false;  // raw control characters must be escaped
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing '"'
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(std::string_view lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
};

MachineConfig OrgMachine(const std::string& rf) {
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse(rf));
  if (!m.rf.UnboundedClusterRegs() && !m.rf.UnboundedSharedRegs()) {
    m = hw::ApplyCharacterization(m, hw::RFModelMode::kPaperTable);
  }
  return m;
}

// RAII guard: every test that starts the tracer stops it on exit, so a
// failing assertion can't leave tracing armed for later tests.
struct TracerGuard {
  ~TracerGuard() { obs::Tracer::Shared().Stop(); }
};

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(Metrics, CounterSumsConcurrentIncrementsExactly) {
  obs::Counter& c = obs::GetCounter("test_obs.concurrent_counter");
  const long before = c.value();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value() - before, static_cast<long>(kThreads) * kPerThread);
}

TEST(Metrics, RegistryReturnsTheSameInstrumentForAName) {
  obs::Counter& a = obs::GetCounter("test_obs.same_instance");
  obs::Counter& b = obs::GetCounter("test_obs.same_instance");
  EXPECT_EQ(&a, &b);
  // ResetForTest zeroes in place: previously obtained references must
  // stay valid and observe the reset.
  a.Add(7);
  obs::Registry::Shared().ResetForTest();
  EXPECT_EQ(b.value(), 0);
  a.Add(2);
  EXPECT_EQ(b.value(), 2);
}

TEST(Metrics, HistogramBucketsFollowTheDocumentedRanges) {
  obs::Histogram& h = obs::GetHistogram("test_obs.histogram_ranges");
  obs::Registry::Shared().ResetForTest();
  // (sample seconds, expected bucket index): bucket 0 covers <= 1 us,
  // bucket i covers (2^(i-1), 2^i] us — exact at the boundaries.
  const struct { double seconds; int bucket; } cases[] = {
      {0.0, 0},      {0.4e-6, 0}, {1.0e-6, 0},  {1.5e-6, 1},
      {2.0e-6, 1},   {2.5e-6, 2}, {4.0e-6, 2},  {5.0e-6, 3},
      {1.0e-3, 10},  // 1024 us = 2^10
      {2.0, 21},     // 2 s < 2^21 us
  };
  long expected[obs::Histogram::kBuckets] = {};
  double sum = 0;
  for (const auto& c : cases) {
    h.Record(c.seconds);
    ++expected[c.bucket];
    sum += c.seconds;
  }
  EXPECT_EQ(h.count(), static_cast<long>(std::size(cases)));
  EXPECT_NEAR(h.sum_seconds(), sum, 1e-9 * std::size(cases));
  for (int i = 0; i < obs::Histogram::kBuckets; ++i) {
    EXPECT_EQ(h.bucket(i), expected[i]) << "bucket " << i;
  }
  // Upper bounds double per bucket.
  EXPECT_DOUBLE_EQ(obs::Histogram::BucketUpperSeconds(0), 1e-6);
  EXPECT_DOUBLE_EQ(obs::Histogram::BucketUpperSeconds(1), 2e-6);
  EXPECT_DOUBLE_EQ(obs::Histogram::BucketUpperSeconds(10), 1024e-6);
}

TEST(Metrics, DumpsAreDeterministicAndJsonIsWellFormed) {
  obs::Registry::Shared().ResetForTest();
  obs::GetCounter("test_obs.dump_counter").Add(3);
  obs::GetGauge("test_obs.dump_gauge").Set(-5);
  obs::GetHistogram("test_obs.dump_hist").Record(3e-6);

  const std::string table = obs::Registry::Shared().Table();
  EXPECT_NE(table.find("test_obs.dump_counter"), std::string::npos);
  EXPECT_NE(table.find("test_obs.dump_gauge"), std::string::npos);
  EXPECT_NE(table.find("test_obs.dump_hist"), std::string::npos);
  EXPECT_EQ(table, obs::Registry::Shared().Table());  // deterministic

  const std::string json = obs::Registry::Shared().Json();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"test_obs.dump_counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test_obs.dump_gauge\": -5"), std::string::npos);
  EXPECT_EQ(json, obs::Registry::Shared().Json());
}

// The hard reconciliation gate: engine.* registry counters are flushed
// once per MirsHC from the final ScheduleResult, so after a reset they
// must equal the summed ScheduleStats of every run — exactly, serial and
// speculative alike.
TEST(Metrics, EngineCountersReconcileExactlyWithScheduleStats) {
  const workload::Suite& kernels = workload::SharedKernelSuite();
  const MachineConfig m = OrgMachine("4C16S64/2-1");
  obs::Registry::Shared().ResetForTest();

  long runs = 0, attempts = 0, ejections = 0, force_places = 0, restarts = 0,
       spills = 0, chains_built = 0, chains_undone = 0, raced = 0,
       raced_wins = 0, cancelled = 0;
  for (size_t i = 0; i < kernels.size() && i < 6; ++i) {
    core::MirsOptions opt;
    if (i % 2 == 1) {
      opt.speculate_k = 4;
      opt.speculate_eager = true;
    }
    const core::ScheduleResult r = core::MirsHC(kernels[i].ddg, m, opt);
    ASSERT_TRUE(r.ok) << kernels[i].ddg.name();
    ++runs;
    attempts += r.stats.attempts;
    ejections += r.stats.ejections;
    force_places += r.stats.force_places;
    restarts += r.stats.restarts;
    spills += r.stats.spills_inserted;
    chains_built += r.stats.chains_built;
    chains_undone += r.stats.chains_undone;
    raced += r.spec.raced;
    raced_wins += r.spec.raced_wins;
    cancelled += r.spec.cancelled;
  }

  EXPECT_EQ(obs::GetCounter("engine.runs").value(), runs);
  EXPECT_EQ(obs::GetCounter("engine.failed_runs").value(), 0);
  EXPECT_EQ(obs::GetCounter("engine.attempts").value(), attempts);
  EXPECT_EQ(obs::GetCounter("engine.ejections").value(), ejections);
  EXPECT_EQ(obs::GetCounter("engine.force_places").value(), force_places);
  EXPECT_EQ(obs::GetCounter("engine.restarts").value(), restarts);
  EXPECT_EQ(obs::GetCounter("engine.spills_inserted").value(), spills);
  EXPECT_EQ(obs::GetCounter("engine.chains_built").value(), chains_built);
  EXPECT_EQ(obs::GetCounter("engine.chains_undone").value(), chains_undone);
  EXPECT_EQ(obs::GetCounter("engine.spec_raced").value(), raced);
  EXPECT_EQ(obs::GetCounter("engine.spec_raced_wins").value(), raced_wins);
  EXPECT_EQ(obs::GetCounter("engine.spec_cancelled").value(), cancelled);
  EXPECT_EQ(obs::GetHistogram("engine.schedule_seconds").count(), runs);
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(Trace, DisabledTracerRecordsNothing) {
  ASSERT_FALSE(obs::TraceEnabled());
  {
    obs::TraceSpan span("sched", "should-not-record");
    EXPECT_FALSE(span.armed());
  }
  obs::Tracer::Shared().Start();
  obs::Tracer::Shared().Stop();
  // Start() discarded any previous recording; the span above predates it.
  for (const auto& t : obs::Tracer::Shared().Snapshot()) {
    EXPECT_TRUE(t.events.empty());
  }
}

TEST(Trace, ExportIsWellFormedChromeTraceJson) {
  TracerGuard guard;
  const workload::Suite& kernels = workload::SharedKernelSuite();
  const MachineConfig m = OrgMachine("4C16S64/2-1");
  obs::Tracer::SetThreadName("main");
  obs::Tracer::Shared().Start();
  const core::ScheduleResult r = core::MirsHC(kernels[0].ddg, m, {});
  obs::Tracer::Shared().Stop();
  ASSERT_TRUE(r.ok);

  const std::string json = obs::Tracer::Shared().ExportJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 2000);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"main\""), std::string::npos);
  EXPECT_NE(json.find("\"loop\""), std::string::npos);
  EXPECT_NE(json.find("\"attempt\""), std::string::npos);
}

// Per-track containment: spans on one thread must nest. Sorting a track's
// 'X' events by (start asc, duration desc) yields parents before their
// children; walking with a stack, every span must lie inside the
// innermost open span that contains its start.
void ExpectSpansNest(const obs::Tracer::ThreadSnapshot& track) {
  std::vector<const obs::TraceEvent*> spans;
  for (const obs::TraceEvent& e : track.events) {
    if (e.ph == 'X') spans.push_back(&e);
  }
  std::sort(spans.begin(), spans.end(),
            [](const obs::TraceEvent* a, const obs::TraceEvent* b) {
              if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
              return a->dur_us > b->dur_us;
            });
  // Same monotonic clock on one thread, children close first, so true
  // containment is exact up to ts+dur floating-point reconstruction (far
  // below a nanosecond here); the epsilon only absorbs that. The pop
  // condition must treat a span starting at/after the top's end as a
  // sibling, not a child — siblings routinely open within a microsecond
  // of the previous close.
  constexpr double kEps = 0.01;  // us
  std::vector<const obs::TraceEvent*> stack;
  for (const obs::TraceEvent* e : spans) {
    while (!stack.empty() &&
           e->ts_us >= stack.back()->ts_us + stack.back()->dur_us - kEps) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      const obs::TraceEvent* top = stack.back();
      EXPECT_GE(e->ts_us + kEps, top->ts_us)
          << track.name << ": " << e->name << " starts before " << top->name;
      EXPECT_LE(e->ts_us + e->dur_us, top->ts_us + top->dur_us + kEps)
          << track.name << ": " << e->name << " outlives " << top->name;
    }
    stack.push_back(e);
  }
}

TEST(Trace, SpansNestAndSpeculationMarkersAppear) {
  TracerGuard guard;
  const workload::Suite& kernels = workload::SharedKernelSuite();
  // Ejection-heavy organization: the escalation walk restarts, so waves
  // race and the speculation markers actually appear.
  const MachineConfig m = OrgMachine("4C32/1-1");
  core::MirsOptions spec;
  spec.speculate_k = 4;
  spec.speculate_eager = true;

  obs::Tracer::SetThreadName("main");
  obs::Tracer::Shared().Start();
  int total_candidates = 0;  // serial-equivalent II attempts: restarts + 1
  int raced_wins = 0;
  for (size_t i = 0; i < kernels.size() && i < 6; ++i) {
    const core::ScheduleResult r = core::MirsHC(kernels[i].ddg, m, spec);
    ASSERT_TRUE(r.ok) << kernels[i].ddg.name();
    total_candidates += r.stats.restarts + 1;
    raced_wins += r.spec.raced_wins;
  }
  obs::Tracer::Shared().Stop();

  int loop_spans = 0;
  int attempt_spans = 0;
  int win_markers = 0;
  for (const auto& track : obs::Tracer::Shared().Snapshot()) {
    ExpectSpansNest(track);
    for (const obs::TraceEvent& e : track.events) {
      const std::string_view name = e.name;
      if (e.ph == 'X' && name == "loop") ++loop_spans;
      if (e.ph == 'X' && name == "attempt") {
        ++attempt_spans;
        EXPECT_GT(e.ii, 0) << "attempt span without an II";
        EXPECT_FALSE(e.detail.empty()) << "attempt span without a status";
      }
      if (e.ph == 'i' && std::string_view(e.cat) == "spec" && name == "win") {
        ++win_markers;
      }
    }
  }
  EXPECT_EQ(loop_spans, 6);
  // Racing tries at least every candidate II of the serial escalation
  // walk (cancelled raced attempts add more spans on worker tracks).
  EXPECT_GE(attempt_spans, total_candidates);
  if (raced_wins > 0) {
    EXPECT_GT(win_markers, 0);
  }
}

// The tentpole gate: tracing is a pure observer. With the tracer running
// or stopped, serial or speculative, every schedule and its serialized
// stats block must stay bit-identical.
TEST(Trace, TracingIsAPureObserverOfSchedulesAndStats) {
  TracerGuard guard;
  const workload::Suite& kernels = workload::SharedKernelSuite();
  const MachineConfig m = OrgMachine("4C16S64/2-1");
  core::MirsOptions spec;
  spec.speculate_k = 4;
  spec.speculate_eager = true;

  for (size_t i = 0; i < kernels.size() && i < 6; ++i) {
    const std::string what = kernels[i].ddg.name();
    const core::ScheduleResult serial = core::MirsHC(kernels[i].ddg, m, {});
    const core::ScheduleResult raced = core::MirsHC(kernels[i].ddg, m, spec);
    ASSERT_TRUE(serial.ok) << what;

    obs::Tracer::Shared().Start();
    const core::ScheduleResult traced_serial =
        core::MirsHC(kernels[i].ddg, m, {});
    const core::ScheduleResult traced_raced =
        core::MirsHC(kernels[i].ddg, m, spec);
    obs::Tracer::Shared().Stop();

    const std::string want = io::DumpResult(serial);
    EXPECT_EQ(io::DumpResult(raced), want) << what;
    EXPECT_EQ(io::DumpResult(traced_serial), want) << what;
    EXPECT_EQ(io::DumpResult(traced_raced), want) << what;
  }
}

// ---------------------------------------------------------------------------
// Per-request timing in the batch service
// ---------------------------------------------------------------------------

TEST(Service, RequestTimingDecomposesColdAndWarmPaths) {
  const workload::Suite& kernels = workload::SharedKernelSuite();
  const MachineConfig m = OrgMachine("4C16S64/2-1");
  std::vector<service::BatchRequest> reqs;
  for (size_t i = 0; i < kernels.size() && i < 4; ++i) {
    service::BatchRequest req;
    req.loop = std::make_shared<workload::Loop>(kernels[i]);
    req.id = kernels[i].ddg.name();
    req.machine = m;
    reqs.push_back(std::move(req));
  }

  service::BatchOptions opt;
  std::error_code ec;
  opt.cache_dir = (fs::temp_directory_path() /
                   ("hcrf-test-obs-" + std::to_string(::getpid())))
                      .string();
  fs::remove_all(opt.cache_dir, ec);

  const service::BatchReport cold = service::RunBatch(reqs, opt);
  const service::BatchReport warm = service::RunBatch(reqs, opt);
  fs::remove_all(opt.cache_dir, ec);

  ASSERT_EQ(cold.items.size(), reqs.size());
  double queue_sum = 0, probe_sum = 0, mii_sum = 0, sched_sum = 0,
         ser_sum = 0;
  for (const service::BatchItem& item : cold.items) {
    ASSERT_TRUE(item.ok) << item.id;
    EXPECT_FALSE(item.cache_hit) << item.id;
    // A fresh run visits every phase; the MII may be sweep-cache-served
    // but its probe is still timed.
    EXPECT_GT(item.timing.schedule_seconds, 0.0) << item.id;
    EXPECT_GT(item.timing.serialize_seconds, 0.0) << item.id;
    EXPECT_GE(item.timing.queue_seconds, 0.0) << item.id;
    queue_sum += item.timing.queue_seconds;
    probe_sum += item.timing.cache_probe_seconds;
    mii_sum += item.timing.mii_seconds;
    sched_sum += item.timing.schedule_seconds;
    ser_sum += item.timing.serialize_seconds;
  }
  EXPECT_DOUBLE_EQ(cold.timing.queue_seconds, queue_sum);
  EXPECT_DOUBLE_EQ(cold.timing.cache_probe_seconds, probe_sum);
  EXPECT_DOUBLE_EQ(cold.timing.mii_seconds, mii_sum);
  EXPECT_DOUBLE_EQ(cold.timing.schedule_seconds, sched_sum);
  EXPECT_DOUBLE_EQ(cold.timing.serialize_seconds, ser_sum);

  for (const service::BatchItem& item : warm.items) {
    ASSERT_TRUE(item.ok) << item.id;
    EXPECT_TRUE(item.cache_hit) << item.id;
    // A cache hit never schedules: those phases must read exactly zero.
    EXPECT_GT(item.timing.cache_probe_seconds, 0.0) << item.id;
    EXPECT_EQ(item.timing.mii_seconds, 0.0) << item.id;
    EXPECT_EQ(item.timing.schedule_seconds, 0.0) << item.id;
    EXPECT_EQ(item.timing.serialize_seconds, 0.0) << item.id;
  }
}

}  // namespace
}  // namespace hcrf
