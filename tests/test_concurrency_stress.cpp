// Sanitizer-shaped concurrency stress tests.
//
// These suites are the TSan gate for the lock-free trace buffers, the
// sharded metric counters and the SpeculationPool's queue / pending / CV
// machinery: they hammer exactly the cross-thread paths a race would
// corrupt, with enough iterations for TSan's happens-before engine to see
// every interleaving class. They run in the normal suite too (the
// assertions are meaningful without a sanitizer), just with sizes small
// enough to stay cheap. All randomness is a fixed-seed mt19937: a failing
// wave shape reproduces bit-identically.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "perf/thread_pool.h"

namespace hcrf {
namespace {

// N threads emit nested spans, instants, counter bumps and histogram
// samples concurrently while the tracer records. Start/Stop/Export happen
// at quiescence (threads joined) — the documented tracer contract — and
// several epochs exercise the per-thread buffer re-registration path
// (epoch invalidation of cached ThreadLog pointers).
TEST(ConcurrencyStress, TraceAndMetricsHammer) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 250;
  constexpr int kEpochs = 3;

  obs::Tracer& tracer = obs::Tracer::Shared();
  obs::Counter& hammer = obs::GetCounter("stress.trace_hammer");
  obs::Histogram& hist = obs::GetHistogram("stress.trace_hammer_seconds");
  const long hammer_before = hammer.value();
  const long hist_before = hist.count();

  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    tracer.Start();
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&tracer, &hammer, &hist, t] {
        obs::Tracer::SetThreadName("stress-" + std::to_string(t));
        for (int i = 0; i < kSpansPerThread; ++i) {
          obs::TraceSpan outer("stress", "outer", /*ii=*/i % 7);
          {
            obs::TraceSpan inner("stress", "inner");
            inner.set_detail("wave " + std::to_string(i));
          }
          if (i % 16 == 0) tracer.Instant("stress", "tick", -1, i);
          hammer.Add(1);
          hist.Record(1e-6 * static_cast<double>(i % 32));
        }
      });
    }
    for (std::thread& th : threads) th.join();
    tracer.Stop();

    // Every span of every thread must have landed in some thread buffer.
    long spans = 0;
    long instants = 0;
    for (const auto& ts : tracer.Snapshot()) {
      for (const auto& ev : ts.events) {
        if (ev.ph == 'X') ++spans;
        if (ev.ph == 'i') ++instants;
      }
    }
    EXPECT_EQ(spans, 2L * kThreads * kSpansPerThread);
    EXPECT_EQ(instants,
              static_cast<long>(kThreads) * ((kSpansPerThread + 15) / 16));
    const std::string json = tracer.ExportJson();
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"outer\""), std::string::npos);
  }

  // The sharded counter and the histogram must not have lost an increment.
  EXPECT_EQ(hammer.value() - hammer_before,
            static_cast<long>(kEpochs) * kThreads * kSpansPerThread);
  EXPECT_EQ(hist.count() - hist_before,
            static_cast<long>(kEpochs) * kThreads * kSpansPerThread);
}

// SpeculationPool drain stress with randomized wave shapes and a CAS-min
// cancellation token shaped like the engine's speculative II racing: every
// task tries to publish its candidate unless a strictly better one already
// won. Waves vary task count, candidate distribution and nesting (a task
// that opens its own TaskGroup on the same pool — the documented
// saturation-safe pattern), and groups are reused across rounds.
TEST(ConcurrencyStress, SpeculationPoolCancellationDrain) {
  std::mt19937 rng(0xC0FFEEu);
  perf::SpeculationPool pool(3);  // dedicated pool: also stresses teardown

  for (int wave = 0; wave < 30; ++wave) {
    const int tasks = 1 + static_cast<int>(rng() % 24);
    const bool nested = (rng() % 3) == 0;
    std::atomic<int> best{1 << 30};
    std::atomic<int> ran{0};
    int expected_min = 1 << 30;

    perf::TaskGroup group(pool);
    for (int i = 0; i < tasks; ++i) {
      const int candidate = static_cast<int>(rng() % 64);
      expected_min = std::min(expected_min, candidate);
      group.Submit([&pool, &best, &ran, candidate, nested] {
        ran.fetch_add(1, std::memory_order_relaxed);
        // CAS-min: cancelled (no publish) iff a strictly lower candidate
        // already won — the SpeculationToken discipline.
        int cur = best.load(std::memory_order_relaxed);
        while (candidate < cur &&
               !best.compare_exchange_weak(cur, candidate,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
        }
        if (nested) {
          // Nested fan-out from inside a pool task: must drain even when
          // every worker is busy (the submitter steals its own tasks).
          std::atomic<int> sub_ran{0};
          perf::TaskGroup sub(pool);
          for (int s = 0; s < 3; ++s) {
            sub.Submit([&sub_ran] {
              sub_ran.fetch_add(1, std::memory_order_relaxed);
            });
          }
          sub.RunAndWait();
          EXPECT_EQ(sub_ran.load(std::memory_order_relaxed), 3);
        }
      });
    }
    group.RunAndWait();
    EXPECT_EQ(ran.load(std::memory_order_relaxed), tasks);
    EXPECT_EQ(best.load(std::memory_order_relaxed), expected_min);

    // Reuse the drained group for a second round (the engine reuses one
    // group across II escalation rounds).
    std::atomic<int> second{0};
    const int extra = 1 + static_cast<int>(rng() % 8);
    for (int i = 0; i < extra; ++i) {
      group.Submit(
          [&second] { second.fetch_add(1, std::memory_order_relaxed); });
    }
    group.RunAndWait();
    EXPECT_EQ(second.load(std::memory_order_relaxed), extra);
  }
}

// A worker-less pool degrades to inline execution on the submitter; the
// drain logic must not deadlock waiting for workers that do not exist.
TEST(ConcurrencyStress, SpeculationPoolWorkerlessDrain) {
  perf::SpeculationPool pool(0);
  std::atomic<int> ran{0};
  perf::TaskGroup group(pool);
  for (int i = 0; i < 64; ++i) {
    group.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  group.RunAndWait();
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 64);
}

// Concurrent ParallelFor sessions from independent threads: sessions are
// serialized by the pool's session mutex, every item of every session must
// run exactly once, and item distribution races only through the guarded
// job slot. This is the TSan probe for the ThreadPool's job handoff. A
// dedicated 4-wide pool (not Shared()) guarantees real worker threads even
// on single-core hosts, where the shared pool is worker-less and would
// degrade every session to the serial fallback.
TEST(ConcurrencyStress, ThreadPoolConcurrentSessions) {
  constexpr int kCallers = 4;
  constexpr int kItems = 512;
  perf::ThreadPool pool(4);

  std::vector<std::thread> callers;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kItems);
    for (auto& c : h) c.store(0, std::memory_order_relaxed);
  }
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &hits, c] {
      pool.ParallelFor(kItems, /*max_workers=*/4, [&hits, c](std::size_t i) {
        hits[c][i].fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (std::thread& th : callers) th.join();
  for (int c = 0; c < kCallers; ++c) {
    for (int i = 0; i < kItems; ++i) {
      ASSERT_EQ(hits[c][i].load(std::memory_order_relaxed), 1)
          << "session " << c << " item " << i;
    }
  }
}

}  // namespace
}  // namespace hcrf
