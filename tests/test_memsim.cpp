// Unit tests for the cache model, the loop replay and the binding-prefetch
// classifier.
#include <gtest/gtest.h>

#include "core/mirs.h"
#include "memsim/cache.h"
#include "memsim/prefetch.h"
#include "memsim/replay.h"
#include "workload/kernels.h"

namespace hcrf::memsim {
namespace {

TEST(Cache, HitAfterFill) {
  Cache c;
  EXPECT_FALSE(c.Access(0x1000));
  EXPECT_TRUE(c.Access(0x1000));
  EXPECT_TRUE(c.Access(0x1008));  // same 32B line
  EXPECT_FALSE(c.Access(0x1020)); // next line
  EXPECT_EQ(c.misses(), 2);
  EXPECT_EQ(c.hits(), 2);
}

TEST(Cache, LruEviction) {
  CacheConfig cfg;
  cfg.size_bytes = 2 * 32 * 2;  // 2 sets, 2-way, 32B lines
  cfg.associativity = 2;
  Cache c(cfg);
  // Three lines mapping to set 0 (set stride = 2 lines = 64B).
  const std::uint64_t a = 0 * 64;
  const std::uint64_t b = 1 * 64 + 32;  // set 1 actually; use multiples of 64
  (void)b;
  const std::uint64_t l0 = 0;
  const std::uint64_t l1 = 64;
  const std::uint64_t l2 = 128;
  (void)a;
  EXPECT_FALSE(c.Access(l0));
  EXPECT_FALSE(c.Access(l1));
  EXPECT_FALSE(c.Access(l2));  // evicts l0 (LRU)
  EXPECT_FALSE(c.Access(l0)); // miss again
  EXPECT_TRUE(c.Access(l2));  // still resident
}

TEST(Cache, ProbeDoesNotMutate) {
  Cache c;
  EXPECT_FALSE(c.Probe(0x40));
  EXPECT_FALSE(c.Probe(0x40));
  c.Access(0x40);
  EXPECT_TRUE(c.Probe(0x40));
  EXPECT_EQ(c.misses(), 1);
}

TEST(Cache, ResetClears) {
  Cache c;
  c.Access(0x80);
  c.Reset();
  EXPECT_FALSE(c.Probe(0x80));
  EXPECT_EQ(c.misses(), 0);
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

TEST(Replay, UnitStrideLoopMostlyHits) {
  const MachineConfig m = MachineConfig::Baseline();
  workload::Loop loop = workload::MakeVadd(1024);
  const core::ScheduleResult sr = core::MirsHC(loop.ddg, m);
  ASSERT_TRUE(sr.ok);
  const ReplayResult rr = ReplayLoop(loop, sr, m);
  // 3 arrays * 8B stride: one miss per 4 accesses per array.
  EXPECT_GT(rr.accesses, 3000);
  EXPECT_NEAR(static_cast<double>(rr.misses) / rr.accesses, 0.25, 0.05);
  EXPECT_GT(rr.stall_cycles, 0);  // no prefetching: loads stall on miss
  EXPECT_GT(rr.useful_cycles, 0);
}

TEST(Replay, BindingPrefetchRemovesLoadStalls) {
  MachineConfig m = MachineConfig::Baseline();
  workload::Loop loop = workload::MakeVadd(1024);
  const sched::LatencyOverrides ov =
      ClassifyBindingPrefetch(loop.ddg, m, loop.trip, PrefetchMode::kAll);
  const core::ScheduleResult sr = core::MirsHC(loop.ddg, m, {}, ov);
  ASSERT_TRUE(sr.ok);
  const ReplayResult rr = ReplayLoop(loop, sr, m);
  EXPECT_EQ(rr.stall_cycles, 0);  // all loads bound to miss latency
}

TEST(Replay, WarmInvocationsStallLess) {
  const MachineConfig m = MachineConfig::Baseline();
  // Small working set: fits in 32KB, so invocations after the first hit.
  workload::Loop loop = workload::MakeVadd(256);
  loop.invocations = 10;
  const core::ScheduleResult sr = core::MirsHC(loop.ddg, m);
  ASSERT_TRUE(sr.ok);
  const ReplayResult rr = ReplayLoop(loop, sr, m);

  workload::Loop once = loop;
  once.invocations = 1;
  const ReplayResult r1 = ReplayLoop(once, sr, m);
  // Stalls grow far slower than 10x: the warm invocations hit.
  EXPECT_LT(rr.stall_cycles, 3 * r1.stall_cycles + 1);
}

TEST(Replay, StridedLoopMissesMore) {
  const MachineConfig m = MachineConfig::Baseline();
  workload::Loop unit = workload::MakeVadd(512);
  workload::Loop strided = workload::MakeVadd(512);
  for (NodeId v = 0; v < strided.ddg.NumSlots(); ++v) {
    Node& n = strided.ddg.node(v);
    if (n.mem.has_value()) n.mem->stride = 256;  // one line per access
  }
  const core::ScheduleResult s1 = core::MirsHC(unit.ddg, m);
  const core::ScheduleResult s2 = core::MirsHC(strided.ddg, m);
  ASSERT_TRUE(s1.ok);
  ASSERT_TRUE(s2.ok);
  const ReplayResult r1 = ReplayLoop(unit, s1, m);
  const ReplayResult r2 = ReplayLoop(strided, s2, m);
  EXPECT_GT(r2.misses, 3 * r1.misses);
}

// ---------------------------------------------------------------------------
// Prefetch classifier
// ---------------------------------------------------------------------------

TEST(Prefetch, NoneLeavesEverything) {
  const MachineConfig m = MachineConfig::Baseline();
  const auto loop = workload::MakeDot();
  const auto ov =
      ClassifyBindingPrefetch(loop.ddg, m, loop.trip, PrefetchMode::kNone);
  EXPECT_TRUE(ov.producer_latency.empty());
}

TEST(Prefetch, AllMarksEveryLoad) {
  const MachineConfig m = MachineConfig::Baseline();
  const auto loop = workload::MakeVadd();
  const auto ov =
      ClassifyBindingPrefetch(loop.ddg, m, loop.trip, PrefetchMode::kAll);
  int marked = 0;
  for (NodeId v = 0; v < loop.ddg.NumSlots(); ++v) {
    if (loop.ddg.node(v).op == OpClass::kLoad) {
      EXPECT_EQ(ov.For(v, 0), m.lat.load_miss);
      ++marked;
    }
  }
  EXPECT_EQ(marked, 2);
}

TEST(Prefetch, SelectiveSkipsRecurrenceLoads) {
  const MachineConfig m = MachineConfig::Baseline();
  // Memory-carried recurrence: store -> load cycle; its load must keep hit
  // latency under the selective policy.
  DDG g;
  Node ld;
  ld.op = OpClass::kLoad;
  ld.mem = MemRef{0, -8, 8};
  const NodeId l = g.AddNode(std::move(ld));
  const NodeId add = g.AddNode(OpClass::kFAdd);
  Node st;
  st.op = OpClass::kStore;
  st.mem = MemRef{0, 0, 8};
  const NodeId sid = g.AddNode(std::move(st));
  g.AddFlow(l, add, 0);
  g.AddFlow(add, sid, 0);
  g.AddEdge(sid, l, DepKind::kMem, 1);
  // A second, independent load.
  Node ld2;
  ld2.op = OpClass::kLoad;
  ld2.mem = MemRef{1, 0, 8};
  const NodeId l2 = g.AddNode(std::move(ld2));
  const NodeId add2 = g.AddNode(OpClass::kFAdd);
  g.AddFlow(l2, add2, 0);
  g.AddFlow(add, add2, 0);

  const auto ov = ClassifyBindingPrefetch(g, m, 1000, PrefetchMode::kSelective);
  EXPECT_EQ(ov.For(l, m.lat.load_hit), m.lat.load_hit);    // on recurrence
  EXPECT_EQ(ov.For(l2, m.lat.load_hit), m.lat.load_miss);  // free load
}

TEST(Prefetch, SelectiveSkipsShortTrips) {
  const MachineConfig m = MachineConfig::Baseline();
  const auto loop = workload::MakeVadd();
  const auto ov = ClassifyBindingPrefetch(loop.ddg, m, /*trip=*/8,
                                          PrefetchMode::kSelective);
  for (NodeId v = 0; v < loop.ddg.NumSlots(); ++v) {
    EXPECT_EQ(ov.For(v, 0), 0);  // nothing bound: trip below threshold
  }
}

}  // namespace
}  // namespace hcrf::memsim
