// Unit tests for the register-file configuration notation and port-count
// derivation (paper Sections 3-4).
#include <gtest/gtest.h>

#include "machine/machine_config.h"
#include "machine/rf_config.h"

namespace hcrf {
namespace {

TEST(RFConfigParse, Monolithic) {
  const RFConfig c = RFConfig::Parse("S128");
  EXPECT_EQ(c.Kind(), RFKind::kMonolithic);
  EXPECT_EQ(c.clusters, 0);
  EXPECT_EQ(c.shared_regs, 128);
  EXPECT_TRUE(c.IsMonolithic());
  EXPECT_TRUE(c.HasSharedBank());
  EXPECT_FALSE(c.IsHierarchical());
  EXPECT_EQ(c.TotalRegs(), 128);
  EXPECT_EQ(c.ShortName(), "S128");
}

TEST(RFConfigParse, PureClustered) {
  const RFConfig c = RFConfig::Parse("4C32");
  EXPECT_EQ(c.Kind(), RFKind::kClustered);
  EXPECT_EQ(c.clusters, 4);
  EXPECT_EQ(c.cluster_regs, 32);
  EXPECT_EQ(c.shared_regs, 0);
  EXPECT_TRUE(c.IsPureClustered());
  EXPECT_EQ(c.TotalRegs(), 128);
  EXPECT_EQ(c.buses, 2);  // default nb = x/2
}

TEST(RFConfigParse, Hierarchical) {
  const RFConfig c = RFConfig::Parse("1C64S64");
  EXPECT_EQ(c.Kind(), RFKind::kHierarchical);
  EXPECT_TRUE(c.IsHierarchical());
  EXPECT_EQ(c.TotalRegs(), 128);
  // Section 4 defaults for 1 cluster: lp=4, sp=2.
  EXPECT_EQ(c.lp, 4);
  EXPECT_EQ(c.sp, 2);
}

TEST(RFConfigParse, HierarchicalClustered) {
  const RFConfig c = RFConfig::Parse("4C16S64");
  EXPECT_EQ(c.Kind(), RFKind::kHierarchicalClustered);
  EXPECT_EQ(c.clusters, 4);
  EXPECT_EQ(c.cluster_regs, 16);
  EXPECT_EQ(c.shared_regs, 64);
  EXPECT_EQ(c.lp, 2);  // default for 4 clusters
  EXPECT_EQ(c.sp, 1);
}

TEST(RFConfigParse, ExplicitPorts) {
  const RFConfig c = RFConfig::Parse("1C64S32/3-2");
  EXPECT_EQ(c.lp, 3);
  EXPECT_EQ(c.sp, 2);
  EXPECT_EQ(c.Name(), "1C64S32/3-2");
}

TEST(RFConfigParse, Unbounded) {
  const RFConfig c = RFConfig::Parse("4CinfSinf");
  EXPECT_TRUE(c.UnboundedClusterRegs());
  EXPECT_TRUE(c.UnboundedSharedRegs());
  const RFConfig b = RFConfig::Parse("2CinfSinf/inf-inf");
  EXPECT_TRUE(b.UnboundedPorts());
}

TEST(RFConfigParse, RoundTrip) {
  for (const char* name :
       {"S128", "S32", "4C32/1-1", "1C64S64/4-2", "8C16S16/1-1",
        "2C32S32/3-1"}) {
    EXPECT_EQ(RFConfig::Parse(RFConfig::Parse(name).Name()).Name(),
              RFConfig::Parse(name).Name())
        << name;
  }
}

TEST(RFConfigParse, Malformed) {
  EXPECT_THROW(RFConfig::Parse(""), std::invalid_argument);
  EXPECT_THROW(RFConfig::Parse("X128"), std::invalid_argument);
  EXPECT_THROW(RFConfig::Parse("4C"), std::invalid_argument);
  EXPECT_THROW(RFConfig::Parse("4C32S"), std::invalid_argument);
  EXPECT_THROW(RFConfig::Parse("4C32/2"), std::invalid_argument);
  EXPECT_THROW(RFConfig::Parse("S128trailing"), std::invalid_argument);
  EXPECT_THROW(RFConfig::Parse("S0"), std::invalid_argument);
}

// Port counts must match the paper's Table 5 derivations (8 FUs, 4 ports).
struct PortCase {
  const char* name;
  int cluster_reads, cluster_writes;
  int shared_reads, shared_writes;
};

class PortCountTest : public ::testing::TestWithParam<PortCase> {};

TEST_P(PortCountTest, MatchesPaperDerivation) {
  const PortCase& pc = GetParam();
  const RFConfig c = RFConfig::Parse(pc.name);
  const BankPorts cb = c.ClusterBankPorts(8, 4);
  const BankPorts sb = c.SharedBankPorts(8, 4);
  EXPECT_EQ(cb.reads, pc.cluster_reads) << pc.name;
  EXPECT_EQ(cb.writes, pc.cluster_writes) << pc.name;
  EXPECT_EQ(sb.reads, pc.shared_reads) << pc.name;
  EXPECT_EQ(sb.writes, pc.shared_writes) << pc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Table5Shapes, PortCountTest,
    ::testing::Values(
        // Monolithic: 2R/FU + 1R/port = 20; 1W/FU + 1W/port = 12.
        PortCase{"S128", 0, 0, 20, 12},
        // 1C64S32/3-2: cluster R=16+2 W=8+3; shared R=1*3+4 W=1*2+4.
        PortCase{"1C64S32/3-2", 18, 11, 7, 6},
        // 1C32S64/4-2.
        PortCase{"1C32S64/4-2", 18, 12, 8, 6},
        // 2C64 bus 1-1: R=8+2+1, W=4+2+1.
        PortCase{"2C64/1-1", 11, 7, 0, 0},
        // 2C64S32/2-1: cluster R=8+1 W=4+2; shared R=2*2+4 W=2*1+4.
        PortCase{"2C64S32/2-1", 9, 6, 8, 6},
        // 2C32S32/3-1.
        PortCase{"2C32S32/3-1", 9, 7, 10, 6},
        // 4C32 bus 1-1: R=4+1+1 W=2+1+1.
        PortCase{"4C32/1-1", 6, 4, 0, 0},
        // 4C32S16/1-1: cluster R=4+1 W=2+1; shared R=4+4 W=4+4.
        PortCase{"4C32S16/1-1", 5, 3, 8, 8},
        // 4C16S16/2-1: cluster R=4+1 W=2+2; shared R=8+4 W=4+4.
        PortCase{"4C16S16/2-1", 5, 4, 12, 8},
        // 8C16S16/1-1: cluster R=2+1 W=1+1; shared R=8+4 W=8+4.
        PortCase{"8C16S16/1-1", 3, 2, 12, 12}));

TEST(MachineConfig, ValidityRules) {
  MachineConfig m = MachineConfig::Baseline();
  EXPECT_TRUE(m.IsValid());

  m.rf = RFConfig::Parse("8C16");  // 8 clusters, 4 mem ports: impossible
  std::string why;
  EXPECT_FALSE(m.IsValid(&why));
  EXPECT_NE(why.find("memory ports"), std::string::npos);

  // Hierarchical decoupling makes 8 clusters possible (the paper's point).
  m.rf = RFConfig::Parse("8C16S16");
  EXPECT_TRUE(m.IsValid());

  m.rf = RFConfig::Parse("3C16S16");  // 3 does not divide 8 FUs
  EXPECT_FALSE(m.IsValid());
}

TEST(MachineConfig, ClusterResourceSplit) {
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("4C32"));
  EXPECT_EQ(m.FusPerCluster(), 2);
  EXPECT_EQ(m.MemPortsPerCluster(), 1);
  m.rf = RFConfig::Parse("8C16S16");
  EXPECT_EQ(m.FusPerCluster(), 1);
  // Hierarchical: memory ports are global (attached to the shared bank).
  EXPECT_EQ(m.MemPortsPerCluster(), 4);
  EXPECT_EQ(m.NumClusters(), 8);
}

}  // namespace
}  // namespace hcrf
