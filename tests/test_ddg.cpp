// Unit tests for the dependence graph and MII computation.
#include <gtest/gtest.h>

#include "ddg/ddg.h"
#include "ddg/mii.h"
#include "workload/kernels.h"

namespace hcrf {
namespace {

TEST(DDG, AddNodesAndEdges) {
  DDG g("t");
  const NodeId a = g.AddNode(OpClass::kLoad);
  const NodeId b = g.AddNode(OpClass::kFAdd);
  g.AddFlow(a, b, 0);
  EXPECT_EQ(g.NumNodes(), 2);
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_EQ(g.OutEdges(a).size(), 1u);
  EXPECT_EQ(g.InEdges(b).size(), 1u);
  std::string why;
  EXPECT_TRUE(g.Check(&why)) << why;
}

TEST(DDG, RejectsBadEdges) {
  DDG g;
  const NodeId a = g.AddNode(OpClass::kFAdd);
  EXPECT_THROW(g.AddEdge(a, a, DepKind::kFlow, 0), std::invalid_argument);
  EXPECT_THROW(g.AddEdge(a, a, DepKind::kFlow, -1), std::invalid_argument);
  EXPECT_THROW(g.AddEdge(a, 99, DepKind::kFlow, 0), std::out_of_range);
  // Distance > 0 self edges are recurrences and are fine.
  g.AddEdge(a, a, DepKind::kFlow, 1);
  EXPECT_TRUE(g.Check());
}

TEST(DDG, RemoveNodeProtectsOriginals) {
  DDG g;
  const NodeId a = g.AddNode(OpClass::kFAdd);
  EXPECT_THROW(g.RemoveNode(a), std::logic_error);
  Node inserted;
  inserted.op = OpClass::kLoadR;
  inserted.inserted = true;
  const NodeId b = g.AddNode(std::move(inserted));
  g.AddFlow(a, b, 0);
  g.RemoveNode(b);
  EXPECT_FALSE(g.IsAlive(b));
  EXPECT_EQ(g.NumEdges(), 0);
  EXPECT_TRUE(g.OutEdges(a).empty());
  EXPECT_TRUE(g.Check());
}

TEST(DDG, RemoveEdge) {
  DDG g;
  const NodeId a = g.AddNode(OpClass::kLoad);
  const NodeId b = g.AddNode(OpClass::kFAdd);
  g.AddFlow(a, b, 0);
  g.AddFlow(a, b, 1);
  EXPECT_TRUE(g.RemoveEdge(a, b, DepKind::kFlow, 1));
  EXPECT_FALSE(g.RemoveEdge(a, b, DepKind::kFlow, 1));  // already gone
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_EQ(g.OutEdges(a).front().distance, 0);
  EXPECT_TRUE(g.Check());
}

TEST(MII, ResMIIByMemoryPorts) {
  // vadd: 2 loads + 1 store on 4 ports, 1 add on 8 FUs -> ResMII 1.
  const workload::Loop loop = workload::MakeVadd();
  const MachineConfig m = MachineConfig::Baseline();
  EXPECT_EQ(ResMII(loop.ddg, m), 1);

  // Narrow machine: 1 memory port -> ResMII 3.
  MachineConfig narrow = m;
  narrow.num_mem_ports = 1;
  EXPECT_EQ(ResMII(loop.ddg, narrow), 3);
}

TEST(MII, ResMIIUnpipelinedOccupancy) {
  // vdiv has one unpipelined division (latency 17) on 8 FUs:
  // occupancy 17 -> ceil(17/8) = 3.
  const workload::Loop loop = workload::MakeVdiv();
  const MachineConfig m = MachineConfig::Baseline();
  EXPECT_EQ(ResMII(loop.ddg, m), 3);
}

TEST(MII, RecMIIOfAccumulator) {
  // dot: s = s + x*y, distance-1 self edge on a latency-4 add -> RecMII 4.
  const workload::Loop loop = workload::MakeDot();
  const MachineConfig m = MachineConfig::Baseline();
  EXPECT_EQ(RecMII(loop.ddg, m.lat), 4);
}

TEST(MII, RecMIIOfTwoNodeCycle) {
  // x = a*x + b: mul(4) + add(4) over distance 1 -> RecMII 8.
  const workload::Loop loop = workload::MakeFirstOrderRec();
  const MachineConfig m = MachineConfig::Baseline();
  EXPECT_EQ(RecMII(loop.ddg, m.lat), 8);
}

TEST(MII, RecMIIScalesWithDistance) {
  DDG g;
  const NodeId a = g.AddNode(OpClass::kFAdd);
  const NodeId b = g.AddNode(OpClass::kFAdd);
  g.AddFlow(a, b, 0);
  g.AddFlow(b, a, 4);  // 8 cycles of latency over distance 4 -> RecMII 2
  const MachineConfig m = MachineConfig::Baseline();
  EXPECT_EQ(RecMII(g, m.lat), 2);
}

TEST(MII, AcyclicGraphHasRecMII1) {
  const workload::Loop loop = workload::MakeVadd();
  const MachineConfig m = MachineConfig::Baseline();
  EXPECT_EQ(RecMII(loop.ddg, m.lat), 1);
  const MIIInfo info = ComputeMII(loop.ddg, m);
  EXPECT_EQ(info.MII(), 1);
}

TEST(SCC, FindsRecurrences) {
  const workload::Loop loop = workload::MakeFirstOrderRec();
  const auto on_rec = NodesOnRecurrences(loop.ddg);
  int count = 0;
  for (NodeId v = 0; v < loop.ddg.NumSlots(); ++v) {
    if (on_rec[static_cast<size_t>(v)]) ++count;
  }
  EXPECT_EQ(count, 2);  // the mul+add cycle
}

TEST(SCC, TrivialComponentsForDag) {
  const workload::Loop loop = workload::MakeVadd();
  for (const auto& scc : SCCs(loop.ddg)) {
    EXPECT_EQ(scc.size(), 1u);
  }
}

TEST(Kernels, AllStructurallyValid) {
  const workload::Suite kernel_suite = workload::KernelSuite();
  for (const workload::Loop& loop : kernel_suite.loops()) {
    std::string why;
    EXPECT_TRUE(loop.ddg.Check(&why)) << loop.ddg.name() << ": " << why;
    EXPECT_GT(loop.ddg.NumNodes(), 0) << loop.ddg.name();
    EXPECT_GT(loop.trip, 0) << loop.ddg.name();
  }
}

}  // namespace
}  // namespace hcrf
